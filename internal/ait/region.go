package ait

import (
	"fmt"

	"spgcnn/internal/conv"
)

// Region is one of the six cells of the paper's Fig. 1 design space,
// spanned by AIT (which tracks ≈ 2 × output feature count) on one axis and
// sparsity on the other. Even regions are the dense column, odd regions
// the sparse column; rows descend from high AIT to low AIT.
type Region int

const (
	// Region0: high AIT, dense. Unfold+Parallel-GEMM scales and runs near
	// peak; nothing to fix.
	Region0 Region = iota
	// Region1: high AIT, sparse. Scales, high throughput, poor goodput →
	// Sparse-Kernel.
	Region1
	// Region2: moderate AIT, dense. Good single-core performance, poor
	// scalability → GEMM-in-Parallel.
	Region2
	// Region3: moderate AIT, sparse. Poor scalability and poor goodput →
	// GEMM-in-Parallel (FP) + Sparse-Kernel (BP).
	Region3
	// Region4: low AIT, dense. Poor single-core performance and poor
	// scalability → Stencil-Kernel.
	Region4
	// Region5: low AIT, sparse. Poor everything → Stencil-Kernel (FP) +
	// Sparse-Kernel (BP).
	Region5
)

// Fig. 1's axis thresholds, expressed in output-feature count (the paper
// notes AIT ≈ 2 × number of features) and sparsity fraction. The feature
// thresholds are the crossover points §4.4 reports for the paper's
// implementation and machine: Parallel-GEMM stops being competitive below
// 1024 features, and Stencil-Kernel wins below 128 output features. The
// sparsity threshold is §4.4's 75% crossover for Sparse-Kernel BP.
const (
	HighAITFeatures     = 1024
	ModerateAITFeatures = 128
	SparsityThreshold   = 0.75
)

// Classify places a convolution with the given dynamic sparsity (of its
// BP error gradients; pass 0 for a purely dense/FP analysis) into its
// Fig. 1 region.
func Classify(s conv.Spec, sparsity float64) Region {
	sparse := sparsity > SparsityThreshold
	switch {
	case s.Nf >= HighAITFeatures:
		if sparse {
			return Region1
		}
		return Region0
	case s.Nf >= ModerateAITFeatures:
		if sparse {
			return Region3
		}
		return Region2
	default:
		if sparse {
			return Region5
		}
		return Region4
	}
}

// DenseRegion and SparseRegion return the pair of regions a convolution
// occupies across a training run (dense early, sparse once gradients
// sparsify) — the "Region: 4,5"-style pairs of Table 1.
func DenseRegion(s conv.Spec) Region  { return Classify(s, 0) }
func SparseRegion(s conv.Spec) Region { return Classify(s, 1) }

// String returns "Region N".
func (r Region) String() string { return fmt.Sprintf("Region %d", int(r)) }

// Properties describes the Unfold+Parallel-GEMM performance
// characteristics of a region, per Fig. 1.
type Properties struct {
	Scalable        bool // Parallel-GEMM scales to all cores
	SingleCoreFast  bool // high AIT even after unfolding
	GoodputLimited  bool // sparse data wastes dense-kernel throughput
	Recommendations []string
}

// Props returns the region's characteristics and the spg-CNN techniques
// Fig. 1 prescribes for it.
func (r Region) Props() Properties {
	switch r {
	case Region0:
		return Properties{Scalable: true, SingleCoreFast: true,
			Recommendations: []string{"Parallel-GEMM"}}
	case Region1:
		return Properties{Scalable: true, SingleCoreFast: true, GoodputLimited: true,
			Recommendations: []string{"Parallel-GEMM (FP)", "Sparse-Kernel (BP)"}}
	case Region2:
		return Properties{SingleCoreFast: true,
			Recommendations: []string{"GEMM-in-Parallel"}}
	case Region3:
		return Properties{SingleCoreFast: true, GoodputLimited: true,
			Recommendations: []string{"GEMM-in-Parallel (FP)", "Sparse-Kernel (BP)"}}
	case Region4:
		return Properties{
			Recommendations: []string{"Stencil-Kernel (FP)", "GEMM-in-Parallel"}}
	case Region5:
		return Properties{GoodputLimited: true,
			Recommendations: []string{"Stencil-Kernel (FP)", "Sparse-Kernel (BP)"}}
	default:
		return Properties{}
	}
}

// Analysis bundles every static metric of one convolution — a row of the
// paper's Table 1.
type Analysis struct {
	Spec         conv.Spec
	IntrinsicAIT float64
	UnfoldAIT    float64
	Ratio        float64
	DenseRegion  Region
	SparseRegion Region
}

// Analyze computes the full static characterization of s.
func Analyze(s conv.Spec) Analysis {
	return Analysis{
		Spec:         s,
		IntrinsicAIT: Intrinsic(s),
		UnfoldAIT:    Unfold(s),
		Ratio:        Ratio(s),
		DenseRegion:  DenseRegion(s),
		SparseRegion: SparseRegion(s),
	}
}
