package gemm

import "spgcnn/internal/par"

// Parallel variants of the transpose multiplies, row-partitioned over the
// output matrix C the way a BLAS Parallel-GEMM partitions work. These are
// what the Unfold+Parallel-GEMM baseline uses for the three training GEMMs,
// and they inherit its §3.2 property: every worker reads the whole of one
// operand, so AIT per core shrinks with the worker count.

// ParallelMulTransB computes C = A·Bᵀ with rows of C (= rows of A) claimed
// dynamically by workers (par.ForDynamic): rows write disjoint output, so
// guided chunking is safe, and it absorbs the ragged tail a static split
// leaves on one core. Large operands share one packed-panel copy of Bᵀ.
func ParallelMulTransB(c, a, b *Matrix, workers int) {
	if a.Cols != b.Cols || c.Rows != a.Rows || c.Cols != b.Rows {
		panic("gemm: ParallelMulTransB dimension mismatch")
	}
	if usePacked(a.Rows, a.Cols, b.Rows) {
		buf := bufPool.Get().(*packBuf)
		panels := buf.panels(b.Cols * padUp(b.Rows))
		packPanelsTrans(panels, b)
		par.ForDynamic(a.Rows, workers, 1, func(lo, hi int) {
			packedMulRange(c, a, panels, b.Rows, lo, hi, false)
		})
		bufPool.Put(buf)
		return
	}
	par.ForDynamic(a.Rows, workers, 1, func(lo, hi int) {
		mulTransBRange(c, a, b, lo, hi)
	})
}

// mulTransBRange computes rows [lo, hi) of C = A·Bᵀ: eight B rows per
// dotRows8 call while they last, then four, then one. Each output element
// keeps a single k-ordered accumulator, so the 8/4/1 grouping is
// bit-identical to the scalar loop.
func mulTransBRange(c, a, b *Matrix, lo, hi int) {
	for i := lo; i < hi; i++ {
		arow := a.Row(i)
		crow := c.Row(i)
		j := 0
		for ; j+8 <= b.Rows; j += 8 {
			s0, s1, s2, s3, s4, s5, s6, s7 := dotRows8(arow,
				b.Row(j), b.Row(j+1), b.Row(j+2), b.Row(j+3),
				b.Row(j+4), b.Row(j+5), b.Row(j+6), b.Row(j+7))
			crow[j] = s0
			crow[j+1] = s1
			crow[j+2] = s2
			crow[j+3] = s3
			crow[j+4] = s4
			crow[j+5] = s5
			crow[j+6] = s6
			crow[j+7] = s7
		}
		if j+4 <= b.Rows {
			s0, s1, s2, s3 := dotRows4(arow, b.Row(j), b.Row(j+1), b.Row(j+2), b.Row(j+3))
			crow[j] = s0
			crow[j+1] = s1
			crow[j+2] = s2
			crow[j+3] = s3
			j += 4
		}
		for ; j < b.Rows; j++ {
			crow[j] = dotRow1(arow, b.Row(j))
		}
	}
}

// ParallelMulTransA computes C = Aᵀ·B with rows of C (= columns of A)
// divided across workers. Each worker walks all of A and B but writes only
// its row slice of C, so no synchronization is needed.
func ParallelMulTransA(c, a, b *Matrix, workers int) {
	if a.Rows != b.Rows || c.Rows != a.Cols || c.Cols != b.Cols {
		panic("gemm: ParallelMulTransA dimension mismatch")
	}
	par.ForChunked(c.Rows, workers, func(lo, hi int) {
		mulTransARange(c, a, b, lo, hi)
	})
}

// mulTransARange computes rows [lo, hi) of C = Aᵀ·B: for each source row k,
// scatter A[k][i]·B[k][*] into C rows i in [lo, hi).
func mulTransARange(c, a, b *Matrix, lo, hi int) {
	for i := lo; i < hi; i++ {
		crow := c.Row(i)
		for j := range crow {
			crow[j] = 0
		}
	}
	for k := 0; k < a.Rows; k++ {
		arow := a.Row(k)
		brow := b.Row(k)
		for i := lo; i < hi; i++ {
			aki := arow[i]
			if aki == 0 {
				continue
			}
			axpyAcc(c.Row(i), brow, aki)
		}
	}
}
