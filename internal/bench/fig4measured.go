package bench

import (
	"fmt"

	"spgcnn/internal/conv"
	"spgcnn/internal/rng"
	"spgcnn/internal/spkernel"
	"spgcnn/internal/stencil"
	"spgcnn/internal/unfoldgemm"
)

// RunFig4Measured produces the single-host executable analogues of
// Figs. 4d and 4f: real kernel timings comparing the Stencil-Kernel (FP)
// and the Sparse-Kernel (BP) against serial Unfold+GEMM on the (spatially
// scaled) Table 1 convolutions. These comparisons are single-core
// meaningful — the effects they measure (unfold memory traffic vs direct
// convolution; zero-skipping vs dense work) do not depend on core count —
// so this experiment runs real code rather than the machine model.
func RunFig4Measured(o Options) []Table {
	var maxFlops int64 = 30e6
	reps := 3
	if o.full() {
		maxFlops = 500e6
		reps = 5
	}
	r := rng.New(0x4D4F)

	fp := Table{
		Title: "Fig 4d analogue (measured): Stencil-Kernel FP speedup over serial Unfold+GEMM",
		Note: fmt.Sprintf("Table 1 convolutions, cost capped at %dM flops; >1 means stencil wins. "+
			"The cap keeps the unfolded matrix cache-resident, muting the stencil's "+
			"advantage — ablation-spatial measures the full-footprint regime",
			maxFlops/1e6),
		Columns: []string{"ID", "Spec (scaled)", "Nf", "Unfold ms", "Stencil ms", "Speedup"},
	}
	bp := Table{
		Title:   "Fig 4f analogue (measured): Sparse-Kernel BP speedup over serial Unfold+GEMM",
		Columns: sparsityCols("ID", Fig4fSparsities),
	}
	goodput := Table{
		Title:   "Fig 4e analogue (measured): Sparse-Kernel BP goodput (GFlops, single core)",
		Note:    "goodput = non-zero flops / elapsed, including layout transforms and CT-CSR build",
		Columns: sparsityCols("ID", SparsityLevels),
	}

	for _, row := range Table1() {
		s := ScaledForHost(row.Spec, maxFlops)
		in := conv.RandInput(r, s)
		w := conv.RandWeights(r, s)
		out := conv.NewOutput(s)
		ei := conv.NewInput(s)
		dw := conv.NewWeights(s)
		base := unfoldgemm.New(s, 1)
		stk := stencil.New(s)
		spk := spkernel.New(s, 0)

		tBase := minTime(reps, func() { base.Forward(out, in, w) })
		tStencil := minTime(reps, func() { stk.Forward(out, in, w) })
		fp.AddRow(row.ID, s.String(), s.Nf, tBase*1e3, tStencil*1e3, tBase/tStencil)

		// Dense BP baseline time (sparsity-independent).
		eoDense := conv.RandOutputError(r, s, 0)
		tDenseBP := minTime(reps, func() {
			base.BackwardInput(ei, eoDense, w)
			base.BackwardWeights(dw, eoDense, in)
		})
		spCells := []any{fmt.Sprintf("ID:%d", row.ID)}
		for _, sp := range Fig4fSparsities {
			eo := conv.RandOutputError(r, s, sp)
			tSparse := minTime(reps, func() {
				spk.BackwardInput(ei, eo, w)
				spk.BackwardWeights(dw, eo, in)
			})
			spCells = append(spCells, tDenseBP/tSparse)
		}
		bp.AddRow(spCells...)

		gpCells := []any{fmt.Sprintf("ID:%d", row.ID)}
		for _, sp := range SparsityLevels {
			eo := conv.RandOutputError(r, s, sp)
			tSparse := minTime(reps, func() {
				spk.BackwardInput(ei, eo, w)
				spk.BackwardWeights(dw, eo, in)
			})
			nzf := 2 * spkernel.NonZeroFlops(s, eo.NNZ()) // EI + dW
			gpCells = append(gpCells, float64(nzf)/tSparse/1e9)
		}
		goodput.AddRow(gpCells...)
	}
	return []Table{fp, goodput, bp}
}
