package nn

import (
	"strings"
	"testing"

	"spgcnn/internal/conv"
	"spgcnn/internal/core"
	"spgcnn/internal/exec"
	"spgcnn/internal/rng"
	"spgcnn/internal/tensor"
)

func convFixtures(r *rng.RNG, s conv.Spec) (ins, outs, eos, eis []*tensor.Tensor) {
	ins = []*tensor.Tensor{conv.RandInput(r, s)}
	outs = []*tensor.Tensor{conv.NewOutput(s)}
	eos = []*tensor.Tensor{conv.RandOutputError(r, s, 0.5)}
	eis = []*tensor.Tensor{conv.NewInput(s)}
	return
}

func TestConvLayerSpansFixedStrategy(t *testing.T) {
	s := conv.Square(8, 2, 2, 3, 1)
	ctx := exec.New(1)
	r := rng.New(1)
	st := core.FPStrategies(1)[1] // gemm-in-parallel
	c := NewConvFixedCtx("c0", s, st, ctx, r)
	ins, outs, eos, eis := convFixtures(r, s)

	c.Forward(outs, ins)
	c.Backward(eis, eos, ins)
	c.Forward(outs, ins)

	fp, ok := ctx.Probe().SpanStats("layer/c0/fp/gemm-in-parallel")
	if !ok || fp.Calls != 2 {
		t.Fatalf("fp span = %+v ok=%v, want 2 calls", fp, ok)
	}
	bp, ok := ctx.Probe().SpanStats("layer/c0/bp/gemm-in-parallel")
	if !ok || bp.Calls != 1 {
		t.Fatalf("bp span = %+v ok=%v, want 1 call", bp, ok)
	}
}

func TestConvLayerSpansAutoResolveToChosenStrategy(t *testing.T) {
	s := conv.Square(8, 2, 2, 3, 1)
	ctx := exec.New(1)
	r := rng.New(2)
	c := NewConvCtx("c1", s, ctx, r)
	ins, outs, eos, eis := convFixtures(r, s)

	c.Forward(outs, ins)
	c.Backward(eis, eos, ins)

	var fpSpan, bpSpan string
	for name := range ctx.Probe().Spans() {
		switch {
		case strings.HasPrefix(name, "layer/c1/fp/"):
			fpSpan = name
		case strings.HasPrefix(name, "layer/c1/bp/"):
			bpSpan = name
		}
	}
	if fpSpan == "" || bpSpan == "" {
		t.Fatalf("auto layer spans missing (got %v)", ctx.Probe().Spans())
	}
	// The tuning pass runs before the layer span is recorded, so the
	// strategy level must be the deployed name, never the placeholder.
	if strings.HasSuffix(fpSpan, "/tuning") || strings.HasSuffix(bpSpan, "/tuning") {
		t.Fatalf("span recorded under placeholder strategy: %s %s", fpSpan, bpSpan)
	}
}
