// Package spkernel implements the paper's Sparse-Kernel (§4.2): the
// back-propagation kernels that exploit the moderate (50–95%) sparsity of
// output-activation errors to raise goodput.
//
// The ingredients match §4.2 one for one:
//
//   - Sparse data representation: the error gradient EO is stored in
//     CT-CSR (column-tiled CSR, Fig. 5a) with the spatial positions as rows
//     and the features as tiled columns.
//   - Data-layout transformation: weights are transformed to [ky][kx][f][c]
//     (c fastest — Eq. 13's W'), EO and I to HWC (f/c fastest), and the
//     results EI/dW are produced channel-contiguous and transformed back.
//   - Pointer shifting (Eq. 15): each non-zero EO[y′,x′,f] is multiplied
//     against the contiguous weight vector W′[ky][kx][f][·] and accumulated
//     in place into the output vector EI[y′·sy+ky, x′·sx+kx, ·] — a series
//     of small dense vector operations, with no unfolding and nothing done
//     for zero gradients (Fig. 6).
//
// The delta-weight computation (Eq. 4) follows the same structure with the
// input activations in place of the weights.
package spkernel

import (
	"fmt"
	"sync"

	"spgcnn/internal/conv"
	"spgcnn/internal/engine"
	"spgcnn/internal/exec"
	"spgcnn/internal/sparse"
	"spgcnn/internal/tensor"
	"spgcnn/internal/unfoldgemm"
)

// Kernel is a generated sparse BP plan for one spec. Forward propagation
// is not this technique's job (the paper pairs Sparse-Kernel BP with
// GEMM-in-Parallel or Stencil-Kernel FP), so Forward delegates to a serial
// unfold+GEMM kernel for interface completeness.
//
// Layout-transform scratch comes from the execution context's arena per
// batch call; the CT-CSR skeleton (whose index arrays cannot live in the
// float arena) is recycled through a kernel-owned sync.Pool. One instance
// is safe for concurrent use through the batch entry points.
type Kernel struct {
	spec      conv.Spec
	tileWidth int

	// scratch pools CT-CSR skeletons whose Values/ColIdx/RowPtr arrays are
	// reused across steps via sparse.FromDenseCTInto.
	scratch sync.Pool

	fwd    *unfoldgemm.Kernel
	single engine.SingleOps
}

type ceoScratch struct {
	ceo sparse.CTCSR
}

// New generates a sparse kernel for s. tileWidth <= 0 selects the CT-CSR
// default tile width.
func New(s conv.Spec, tileWidth int) *Kernel {
	s.MustValidate()
	if tileWidth <= 0 {
		tileWidth = sparse.DefaultTileWidth
	}
	k := &Kernel{
		spec:      s,
		tileWidth: tileWidth,
		fwd:       unfoldgemm.New(s, 1),
	}
	k.scratch.New = func() any { return &ceoScratch{} }
	return k
}

// Name implements engine.Kernel.
func (k *Kernel) Name() string { return fmt.Sprintf("sparse(tile=%d)", k.tileWidth) }

// Spec implements engine.Kernel.
func (k *Kernel) Spec() conv.Spec { return k.spec }

// ForwardBatch delegates to serial unfold+GEMM (see type comment).
func (k *Kernel) ForwardBatch(c *exec.Ctx, outs, ins []*tensor.Tensor, w *tensor.Tensor) {
	k.fwd.ForwardBatch(c, outs, ins, w)
}

// buildEO transforms eo to feature-fastest layout in eoHWC and compresses
// it into the reusable CT-CSR: rows are the OutY·OutX spatial positions,
// columns the Nf features, tiled by tileWidth.
func (k *Kernel) buildEO(ceo *sparse.CTCSR, eoHWC, eo *tensor.Tensor) {
	tensor.CHWToHWCInto(eoHWC, eo)
	s := k.spec
	sparse.FromDenseCTInto(ceo, eoHWC.Data, s.OutY()*s.OutX(), s.Nf, k.tileWidth)
}

// BackwardInputBatch computes Eq. 3 by pointer shifting: for every stored
// non-zero of EO and every kernel coordinate, one dense axpy of length Nc
// lands directly at its shifted output position (Eq. 15). The weight
// transform is hoisted out of the per-sample loop.
func (k *Kernel) BackwardInputBatch(c *exec.Ctx, eis, eos []*tensor.Tensor, w *tensor.Tensor) {
	if len(eis) != len(eos) {
		panic("spkernel: BackwardInputBatch length mismatch")
	}
	s := k.spec
	conv.CheckWeights(s, w)
	if len(eos) == 0 {
		return
	}
	sc := k.scratch.Get().(*ceoScratch)
	eoHWC := c.GetTensor(s.OutY(), s.OutX(), s.Nf)
	wKKFC := c.GetTensor(s.Fy, s.Fx, s.Nf, s.Nc)
	eiHWC := c.GetTensor(s.Ny, s.Nx, s.Nc)
	tensor.FCKKToKKFCInto(wKKFC, w)
	for i := range eos {
		conv.CheckInput(s, eis[i])
		conv.CheckOutput(s, eos[i])
		k.buildEO(&sc.ceo, eoHWC, eos[i])
		eiHWC.Zero()
		k.scatterEI(&sc.ceo, wKKFC, eiHWC)
		tensor.HWCToCHWInto(eis[i], eiHWC)
	}
	c.PutTensor(eiHWC)
	c.PutTensor(wKKFC)
	c.PutTensor(eoHWC)
	k.scratch.Put(sc)
}

// scatterEI performs the Eq. 15 pointer-shifting scatter of every stored
// non-zero into the channel-contiguous EI scratch. Weights must already be
// in KKFC layout and eiHWC zeroed.
func (k *Kernel) scatterEI(ceo *sparse.CTCSR, wKKFC, eiHWC *tensor.Tensor) {
	s := k.spec
	nc := s.Nc
	ox := s.OutX()
	wdat := wKKFC.Data
	edat := eiHWC.Data
	for t := range ceo.Tiles {
		ceo.VisitTile(t, func(row, f int, v float32) {
			yq, xq := row/ox, row%ox
			yBase := yq * s.Sy
			xBase := xq * s.Sx
			for ky := 0; ky < s.Fy; ky++ {
				iy := yBase + ky
				rowBase := (iy*s.Nx + xBase) * nc
				for kx := 0; kx < s.Fx; kx++ {
					src := wdat[((ky*s.Fx+kx)*s.Nf+f)*nc:][:nc]
					dst := edat[rowBase+kx*nc:][:nc]
					axpy(dst, src, v)
				}
			}
		})
	}
}

// BackwardWeightsBatch computes dw = Σ_i grad(eos[i], ins[i]) (Eq. 4) with
// the same non-zero-driven structure: each stored EO non-zero contributes
// one Nc-length axpy of the input vector at its shifted position into the
// (ky, kx, f) weight-gradient row. The KKFC accumulator is zeroed once and
// summed over the whole batch, so the batch reduction is free. dw is
// overwritten.
func (k *Kernel) BackwardWeightsBatch(c *exec.Ctx, dw *tensor.Tensor, eos, ins []*tensor.Tensor) {
	if len(eos) != len(ins) {
		panic("spkernel: BackwardWeightsBatch length mismatch")
	}
	s := k.spec
	conv.CheckWeights(s, dw)
	sc := k.scratch.Get().(*ceoScratch)
	eoHWC := c.GetTensor(s.OutY(), s.OutX(), s.Nf)
	inHWC := c.GetTensor(s.Ny, s.Nx, s.Nc)
	dwKK := c.GetTensor(s.Fy, s.Fx, s.Nf, s.Nc)
	dwKK.Zero()
	for i := range eos {
		conv.CheckOutput(s, eos[i])
		conv.CheckInput(s, ins[i])
		k.buildEO(&sc.ceo, eoHWC, eos[i])
		tensor.CHWToHWCInto(inHWC, ins[i])
		k.scatterDW(&sc.ceo, inHWC, dwKK)
	}
	tensor.KKFCToFCKKInto(dw, dwKK)
	c.PutTensor(dwKK)
	c.PutTensor(inHWC)
	c.PutTensor(eoHWC)
	k.scratch.Put(sc)
}

// scatterDW accumulates every stored non-zero's input-vector contribution
// into the KKFC-layout weight-gradient scratch (Eq. 4, non-zero-driven).
// Inputs must already be in HWC layout; dwKK accumulates across calls.
func (k *Kernel) scatterDW(ceo *sparse.CTCSR, inHWC, dwKK *tensor.Tensor) {
	s := k.spec
	nc := s.Nc
	ox := s.OutX()
	idat := inHWC.Data
	ddat := dwKK.Data
	for t := range ceo.Tiles {
		ceo.VisitTile(t, func(row, f int, v float32) {
			yq, xq := row/ox, row%ox
			yBase := yq * s.Sy
			xBase := xq * s.Sx
			for ky := 0; ky < s.Fy; ky++ {
				iy := yBase + ky
				rowBase := (iy*s.Nx + xBase) * nc
				for kx := 0; kx < s.Fx; kx++ {
					src := idat[rowBase+kx*nc:][:nc]
					dst := ddat[((ky*s.Fx+kx)*s.Nf+f)*nc:][:nc]
					axpy(dst, src, v)
				}
			}
		})
	}
}

// Forward implements engine.SingleKernel by delegating to the serial
// unfold+GEMM kernel directly.
func (k *Kernel) Forward(out, in, w *tensor.Tensor) { k.fwd.Forward(out, in, w) }

// BackwardInput implements engine.SingleKernel.
func (k *Kernel) BackwardInput(ei, eo, w *tensor.Tensor) { k.single.BackwardInput(k, ei, eo, w) }

// BackwardWeights implements engine.SingleKernel.
func (k *Kernel) BackwardWeights(dw, eo, in *tensor.Tensor) {
	k.single.BackwardWeights(k, dw, eo, in)
}

// axpy computes dst += a*src for equal-length slices, 4-way unrolled.
func axpy(dst, src []float32, a float32) {
	n := len(dst)
	src = src[:n]
	x := 0
	for ; x+4 <= n; x += 4 {
		dst[x] += a * src[x]
		dst[x+1] += a * src[x+1]
		dst[x+2] += a * src[x+2]
		dst[x+3] += a * src[x+3]
	}
	for ; x < n; x++ {
		dst[x] += a * src[x]
	}
}

// NonZeroFlops returns the useful (non-zero) flop count of one BP pass of
// spec s when EO has nnz stored non-zeros: 2 flops per (non-zero, tap,
// channel) triple — the numerator of the paper's goodput (Eq. 9).
func NonZeroFlops(s conv.Spec, nnz int) int64 {
	return 2 * int64(nnz) * int64(s.Fy) * int64(s.Fx) * int64(s.Nc)
}

// Generator returns the engine.Generator for the sparse technique with the
// default CT-CSR tile width.
func Generator() engine.Generator {
	return engine.Generator{
		Name: "sparse",
		New:  func(s conv.Spec) engine.Kernel { return New(s, 0) },
		// The CT-CSR pointer-shifting loop nests are generated for plain
		// geometry (no padding/dilation/groups); decline generalized specs
		// so the planner prunes this candidate instead of crashing.
		Supports: engine.PlainOnly,
	}
}
