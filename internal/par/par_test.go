package par

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestForCoversAllIndices(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 4, 16} {
		for _, n := range []int{0, 1, 2, 7, 100, 1000} {
			hits := make([]int32, n)
			For(n, workers, func(i int) {
				atomic.AddInt32(&hits[i], 1)
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, h)
				}
			}
		}
	}
}

func TestForChunkedPartition(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8} {
		for _, n := range []int{1, 2, 5, 64, 101} {
			var mu sync.Mutex
			covered := make([]bool, n)
			ForChunked(n, workers, func(lo, hi int) {
				if lo < 0 || hi > n || lo > hi {
					t.Errorf("bad range [%d,%d) for n=%d", lo, hi, n)
					return
				}
				mu.Lock()
				defer mu.Unlock()
				for i := lo; i < hi; i++ {
					if covered[i] {
						t.Errorf("index %d covered twice", i)
					}
					covered[i] = true
				}
			})
			for i, c := range covered {
				if !c {
					t.Fatalf("workers=%d n=%d: index %d never covered", workers, n, i)
				}
			}
		}
	}
}

func TestForChunkedSequentialInline(t *testing.T) {
	calls := 0
	ForChunked(10, 1, func(lo, hi int) {
		calls++
		if lo != 0 || hi != 10 {
			t.Fatalf("sequential ForChunked got [%d,%d), want [0,10)", lo, hi)
		}
	})
	if calls != 1 {
		t.Fatalf("sequential ForChunked called fn %d times, want 1", calls)
	}
}

func TestForProperty(t *testing.T) {
	// Sum over parallel-for equals the closed form for arbitrary n, workers.
	if err := quick.Check(func(n8, w8 uint8) bool {
		n := int(n8)
		w := int(w8%8) + 1
		var sum int64
		For(n, w, func(i int) {
			atomic.AddInt64(&sum, int64(i))
		})
		return sum == int64(n)*int64(n-1)/2
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPoolMap(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var sum int64
	p.Map(1000, func(i int) {
		atomic.AddInt64(&sum, int64(i))
	})
	if sum != 499500 {
		t.Fatalf("sum = %d, want 499500", sum)
	}
}

func TestPoolReuse(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	for round := 0; round < 5; round++ {
		var count int64
		p.Map(100, func(int) { atomic.AddInt64(&count, 1) })
		if count != 100 {
			t.Fatalf("round %d: count = %d, want 100", round, count)
		}
	}
}

func TestPoolSubmitWait(t *testing.T) {
	p := NewPool(3)
	defer p.Close()
	var count int64
	for i := 0; i < 50; i++ {
		p.Submit(func() { atomic.AddInt64(&count, 1) })
	}
	p.Wait()
	if count != 50 {
		t.Fatalf("count = %d, want 50", count)
	}
}

func TestPoolCloseIdempotent(t *testing.T) {
	p := NewPool(1)
	p.Close()
	p.Close() // must not panic or deadlock
}

func TestPoolSubmitAfterClosePanics(t *testing.T) {
	p := NewPool(1)
	p.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("Submit after Close did not panic")
		}
	}()
	p.Submit(func() {})
}

func TestPoolMinWorkers(t *testing.T) {
	p := NewPool(0)
	defer p.Close()
	if p.Workers() != 1 {
		t.Fatalf("Workers() = %d, want 1", p.Workers())
	}
	done := false
	p.Submit(func() { done = true })
	p.Wait()
	if !done {
		t.Fatal("task did not run")
	}
}

func TestMaxWorkersPositive(t *testing.T) {
	if MaxWorkers() < 1 {
		t.Fatalf("MaxWorkers() = %d", MaxWorkers())
	}
}

func BenchmarkForOverheadTiny(b *testing.B) {
	for i := 0; i < b.N; i++ {
		For(8, 4, func(int) {})
	}
}

func BenchmarkPoolMapOverhead(b *testing.B) {
	p := NewPool(4)
	defer p.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Map(8, func(int) {})
	}
}
