// spg-train trains a CNN described by a netdef file (or a built-in
// benchmark network) on a synthetic dataset, reporting per-epoch loss,
// accuracy, throughput and error-gradient sparsity — a command-line
// driver for the whole training stack.
//
// Usage:
//
//	spg-train -net cifar -epochs 5 -examples 512
//	spg-train -file mynet.prototxt -dataset mnist -strategy stencil
//	spg-train -net mnist -strategy auto       # spg-CNN scheduler (default)
//	spg-train -net mnist -metrics-addr :8080  # live /metrics + pprof
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"spgcnn"
)

// Test seams: invoked (when non-nil) once the metrics endpoint is
// listening and after every recorded epoch, so an integration test can
// scrape the live endpoint at a deterministic mid-training moment.
var (
	metricsUpHook func(addr string)
	epochHook     func(epoch int)
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "spg-train: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("spg-train", flag.ContinueOnError)
	var (
		netName      = fs.String("net", "cifar", "built-in network: mnist, cifar, imagenet100")
		file         = fs.String("file", "", "netdef file (overrides -net)")
		dataset      = fs.String("dataset", "", "dataset: mnist, cifar, imagenet100 (default: matches -net)")
		epochs       = fs.Int("epochs", 3, "training epochs")
		examples     = fs.Int("examples", 256, "dataset size")
		batch        = fs.Int("batch", 16, "minibatch size")
		lr           = fs.Float64("lr", 0.01, "learning rate")
		workers      = fs.Int("workers", 0, "worker cores (0 = GOMAXPROCS)")
		strategy     = fs.String("strategy", "auto", "conv strategy: auto, parallel-gemm, gemm-in-parallel, stencil, sparse")
		seed         = fs.Uint64("seed", 42, "random seed")
		profile      = fs.Bool("profile", false, "print a per-layer time breakdown after training")
		savePath     = fs.String("save", "", "write a weight checkpoint here after training")
		loadPath     = fs.String("load", "", "restore a weight checkpoint before training")
		saveTune     = fs.String("savetune", "", "write the scheduler's per-layer choices (JSON) here after training")
		loadTune     = fs.String("loadtune", "", "deploy a saved tuning configuration instead of measuring")
		planCache    = fs.String("plan-cache", "", "persistent plan cache file: load cached strategy verdicts on start (skipping their measurement passes), save the updated cache on exit")
		metricsAddr  = fs.String("metrics-addr", "", "serve /metrics (Prometheus), /healthz and /debug/pprof on this address during training (e.g. :8080)")
		replicas     = fs.Int("replicas", 1, "data-parallel model replicas; N > 1 shards each global batch of -batch across N replicas with synchronous parameter averaging")
		allreduce    = fs.String("allreduce", "flat", "parameter-sync schedule with -replicas > 1: flat, ring, tree, or auto (cost-model ranked per round)")
		sparseSync   = fs.String("sparse-sync", "off", "gradient-delta exchange with -replicas > 1: off (dense), auto (ship CT-CSR deltas while dense enough to win, else dense), force (always ship deltas)")
		staleness    = fs.Int("staleness", 0, "bounded-staleness async mode with -replicas > 1: replicas may run K steps ahead of the slowest instead of barriering every step (0 = synchronous)")
		mitigate     = fs.Bool("mitigate", false, "straggler mitigation with -replicas > 1: re-chunk each step's shard assignment from measured per-replica throughput (slow replicas get fewer images)")
		injectSlow   = fs.Int("inject-slow-replica", -1, "TESTING: index of a replica to slow down artificially (sleeps -inject-slow-ms per image); -1 = off")
		injectSlowMS = fs.Float64("inject-slow-ms", 2, "per-image sleep in milliseconds for -inject-slow-replica")
		tracePath    = fs.String("trace", "", "write a Chrome/Perfetto trace-event JSON capture of the run here (open in ui.perfetto.dev, analyze with spg-trace)")
		traceMode    = fs.String("trace-mode", "ring", "trace capture mode: ring (bounded flight recorder, keeps the newest events) or full (everything up to a cap)")
		drift        = fs.Bool("drift", false, "run the plan-drift observatory: track model-vs-measured agreement per layer and re-tune automatically when a deployed strategy drifts")
		driftReport  = fs.String("drift-report", "", "write the observatory's agreement report (schema-versioned JSON, render with spg-doctor) here after training; implies -drift")
		driftThresh  = fs.Float64("drift-threshold", 0, "drift alarm factor: alarm when the smoothed agreement ratio leaves [baseline/t, baseline*t] (0 = default 1.5)")
		driftWindow  = fs.Int("drift-window", 0, "consecutive breaching observations before a drift event fires (0 = default 3)")
		injectEpoch  = fs.Int("drift-inject-epoch", 0, "TESTING: from the start of this epoch (1-based), scale every span time the observatory sees by -drift-inject-factor — a synthetic co-tenant; implies -drift")
		injectFac    = fs.Float64("drift-inject-factor", 2, "synthetic slowdown factor for -drift-inject-epoch")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	src, defaultData := builtin(*netName)
	if src == "" && *file == "" {
		return fmt.Errorf("unknown built-in network %q (want mnist, cifar, imagenet100)", *netName)
	}
	if *file != "" {
		b, err := os.ReadFile(*file)
		if err != nil {
			return err
		}
		src = string(b)
	}
	if *dataset == "" {
		*dataset = defaultData
	}

	def, err := spgcnn.ParseNet(src)
	if err != nil {
		return err
	}
	w := *workers
	if w < 1 {
		w = runtime.GOMAXPROCS(0)
	}
	// One execution context for the whole network: every layer draws
	// scratch from the same arena and reports into the same probe.
	ctx := spgcnn.NewCtx(w)

	// The metrics endpoint comes up before training starts, so a scrape at
	// any point during the run sees live per-layer spans and the goodput
	// series as they accumulate.
	var reg *spgcnn.MetricsRegistry
	if *metricsAddr != "" {
		reg = spgcnn.NewMetricsRegistry()
		spgcnn.BindMetrics(ctx, reg)
		spgcnn.BindRuntimeMetrics(reg)
		srv, err := spgcnn.ServeMetrics(*metricsAddr, reg)
		if err != nil {
			return fmt.Errorf("metrics endpoint: %w", err)
		}
		defer srv.Close()
		fmt.Fprintf(stdout, "metrics endpoint %s\n", srv.URL())
		if metricsUpHook != nil {
			metricsUpHook(srv.Addr())
		}
	}

	// One planner for the whole run: same-geometry layers tune once, and
	// with -plan-cache the verdicts persist across processes on this host.
	planner := spgcnn.NewPlanner(spgcnn.PlannerOptions{})
	if *planCache != "" {
		n, err := planner.LoadFile(*planCache)
		if err != nil {
			return fmt.Errorf("plan cache: %w", err)
		}
		if n > 0 {
			fmt.Fprintf(stdout, "plan cache: loaded %d entries from %s\n", n, *planCache)
		}
	}
	if reg != nil {
		spgcnn.BindPlannerMetrics(planner, reg)
	}

	// The trace recorder, when requested, captures the whole run: layer and
	// kernel spans, planner activity, arena growth, and (with -replicas)
	// per-replica steps and all-reduce barriers.
	var rec *spgcnn.TraceRecorder
	if *tracePath != "" {
		mode, err := spgcnn.ParseTraceMode(*traceMode)
		if err != nil {
			return err
		}
		rec = spgcnn.NewTraceRecorder(spgcnn.TraceOptions{Mode: mode})
		if reg != nil {
			spgcnn.BindTraceMetrics(rec, reg)
		}
	}

	// The drift observatory rides the same probe seam as the metrics
	// bridge and tracer; its coupler feeds re-tune triggers back into the
	// shared planner.
	var (
		obsv    *spgcnn.Observatory
		coupler *spgcnn.DriftCoupler
	)
	if *drift || *driftReport != "" || *injectEpoch > 0 {
		coupler = spgcnn.NewDriftCoupler(planner)
		oo := spgcnn.ObservatoryOptions{
			Workers:   w,
			Threshold: *driftThresh,
			Window:    *driftWindow,
			OnDrift:   coupler.OnDrift,
			Metrics:   reg,
		}
		if rec != nil {
			oo.Trace = rec.Emitter(-1, 0)
		}
		obsv = spgcnn.NewObservatory(oo)
	}

	opts := spgcnn.BuildOptions{Ctx: ctx, Seed: *seed, Planner: planner}
	if *strategy != "auto" {
		st, ok := findStrategy(*strategy, w)
		if !ok {
			return fmt.Errorf("unknown strategy %q", *strategy)
		}
		opts.FixedStrategy = &st
	}
	if *loadTune != "" {
		f, err := os.Open(*loadTune)
		if err != nil {
			return err
		}
		choices, err := spgcnn.LoadTuningChoices(f)
		f.Close()
		if err != nil {
			return err
		}
		opts.Choices = choices
		fmt.Fprintf(stdout, "deployed tuning configuration %s (%d layers)\n", *loadTune, len(choices))
	}
	ds := datasetByName(*dataset, *examples)
	if ds == nil {
		return fmt.Errorf("unknown dataset %q", *dataset)
	}

	fmt.Fprintf(stdout, "network %q, dataset %s (%d examples), strategy %s\n",
		def.Name, *dataset, *examples, *strategy)
	r := spgcnn.NewRNG(*seed)
	var net *spgcnn.Network
	if *replicas > 1 {
		var err error
		net, err = trainDataParallel(def, opts, dpFlags{
			replicas: *replicas, epochs: *epochs, batch: *batch, lr: *lr,
			loadPath: *loadPath, profile: *profile,
			injectEpoch: *injectEpoch, injectFactor: *injectFac,
			allreduce: *allreduce, sparseSync: *sparseSync,
			staleness: *staleness, mitigate: *mitigate,
			injectSlowReplica: *injectSlow, injectSlowMS: *injectSlowMS,
		}, ds, r, rec, reg, obsv, coupler, stdout)
		if err != nil {
			return err
		}
	} else {
		var err error
		net, err = spgcnn.BuildNet(def, opts)
		if err != nil {
			return err
		}
		if *loadPath != "" {
			f, err := os.Open(*loadPath)
			if err != nil {
				return err
			}
			err = net.Load(f)
			f.Close()
			if err != nil {
				return fmt.Errorf("restoring %s: %w", *loadPath, err)
			}
			fmt.Fprintf(stdout, "restored checkpoint %s\n", *loadPath)
		}
		if *profile {
			net.EnableProfiling()
		}

		tr := spgcnn.NewTrainer(net, float32(*lr), *batch)
		coord := rec.Emitter(-1, 0)
		if rec != nil {
			spgcnn.AttachTraceCtx(rec, ctx, 0)
			planner.SetTrace(coord)
			spgcnn.RegisterTraceLayers(rec, net)
			tr.OnStep = rec.SetStep
		}
		if obsv != nil {
			spgcnn.RegisterObservatoryLayers(obsv, coupler, net)
			obsv.SetBatch(*batch)
			ctx.Probe().AddSink(obsv)
			// OnStep runs on the training goroutine before every minibatch
			// — the safe point to apply queued re-tunes, so the very next
			// batch re-measures.
			prev := tr.OnStep
			tr.OnStep = func(step int64) {
				if prev != nil {
					prev(step)
				}
				coupler.Apply()
			}
		}
		for e := 0; e < *epochs; e++ {
			if obsv != nil && *injectEpoch > 0 && e+1 == *injectEpoch {
				obsv.SetSlowdown(*injectFac)
				fmt.Fprintf(stdout, "drift: injecting synthetic %.2fx slowdown from epoch %d\n", *injectFac, e+1)
			}
			stats := tr.TrainEpoch(ds, r)
			if obsv != nil {
				for name, s := range stats.ConvSparsity {
					obsv.SetSparsity(name, -1, s)
				}
			}
			if reg != nil {
				reg.RecordEpoch(epochSample(stats))
			}
			if rec != nil {
				coord.Instant("epoch", "epoch", "", float64(stats.Images))
				mean, n := 0.0, 0
				for name, s := range stats.ConvSparsity {
					coord.Instant("sparsity", "sparsity/"+name, name, s)
					mean, n = mean+s, n+1
				}
				if n > 0 {
					rec.SetBand(spgcnn.SparsityBand(mean / float64(n)))
				}
			}
			fmt.Fprintf(stdout, "epoch %2d  loss %.4f  acc %5.1f%%  %7.1f images/sec  conv %.2f GF (goodput %.2f)",
				stats.Epoch, stats.Loss, stats.Accuracy*100, stats.ImagesPerSec,
				stats.ConvGFlops, stats.ConvGoodputGFlops)
			if len(stats.ConvSparsity) > 0 {
				fmt.Fprintf(stdout, "  EO sparsity:")
				for _, c := range net.ConvLayers() {
					if s, ok := stats.ConvSparsity[c.Name()]; ok {
						fmt.Fprintf(stdout, " %s=%.2f", c.Name(), s)
					}
				}
			}
			fmt.Fprintln(stdout)
			if epochHook != nil {
				epochHook(e)
			}
		}
		if *profile {
			fmt.Fprint(stdout, "\nper-layer time breakdown:\n", net.ProfileReport())
		}
	}
	if rec != nil {
		if err := rec.WriteFile(*tracePath); err != nil {
			return fmt.Errorf("trace: %w", err)
		}
		ts := rec.Stats()
		fmt.Fprintf(stdout, "trace: wrote %d events to %s (mode %s, %d emitted, %d overwritten, %d dropped)\n",
			ts.Buffered, *tracePath, *traceMode, ts.Emitted, ts.Overwritten, ts.Dropped)
	}
	st := ctx.Arena().Stats()
	if st.Gets > 0 {
		fmt.Fprintf(stdout, "arena: %d scratch acquisitions, %.1f%% served from free lists, %d outstanding\n",
			st.Gets, 100*float64(st.Hits)/float64(st.Gets), st.Outstanding)
	}
	if choices := ctx.Probe().Choices(); len(choices) > 0 {
		fmt.Fprintf(stdout, "scheduler deployments:")
		for _, c := range choices {
			fmt.Fprintf(stdout, " %s=%s", c.Phase, c.Strategy)
		}
		fmt.Fprintln(stdout)
	}
	if pst := planner.Stats(); pst.Hits+pst.Misses > 0 {
		fmt.Fprintf(stdout, "plan cache: %d hits, %d misses, %d measurement passes",
			pst.Hits, pst.Misses, pst.Measurements)
		if pst.Pruned > 0 {
			fmt.Fprintf(stdout, ", %d candidates model-pruned", pst.Pruned)
		}
		if pst.ModelAgree+pst.ModelDisagree > 0 {
			fmt.Fprintf(stdout, ", model agreement %.0f%%", 100*pst.AgreementRate())
		}
		fmt.Fprintln(stdout)
	}
	if obsv != nil {
		evs := obsv.Events()
		fmt.Fprintf(stdout, "drift: %d events, %d re-tunes applied, %d plan entries invalidated\n",
			len(evs), coupler.Applied(), planner.Stats().Invalidations)
		for _, ev := range evs {
			fmt.Fprintf(stdout, "  %s\n", ev)
		}
		if *driftReport != "" {
			rep := obsv.Report()
			rep.Render(stdout)
			if err := rep.WriteFile(*driftReport); err != nil {
				return fmt.Errorf("drift report: %w", err)
			}
			fmt.Fprintf(stdout, "drift report: wrote %s (schema %d)\n", *driftReport, spgcnn.DriftReportSchemaVersion)
		}
	}
	if *planCache != "" {
		if err := planner.SaveFile(*planCache); err != nil {
			return fmt.Errorf("plan cache: %w", err)
		}
		fmt.Fprintf(stdout, "plan cache: saved %d entries to %s\n", planner.Entries(), *planCache)
	}
	if *saveTune != "" {
		choices := net.TuningChoices()
		if len(choices) == 0 {
			fmt.Fprintln(stdout, "no tuning choices to save (run with -strategy auto)")
		} else {
			f, err := os.Create(*saveTune)
			if err != nil {
				return err
			}
			err = choices.Save(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				return fmt.Errorf("saving %s: %w", *saveTune, err)
			}
			fmt.Fprintf(stdout, "saved tuning configuration %s\n", *saveTune)
		}
	}
	if *savePath != "" {
		f, err := os.Create(*savePath)
		if err != nil {
			return err
		}
		err = net.Save(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("saving %s: %w", *savePath, err)
		}
		fmt.Fprintf(stdout, "saved checkpoint %s\n", *savePath)
	}
	return nil
}

// dpFlags carries the replica-path command-line knobs.
type dpFlags struct {
	replicas, epochs, batch int
	lr                      float64
	loadPath                string
	profile                 bool
	injectEpoch             int
	injectFactor            float64
	allreduce               string
	sparseSync              string
	staleness               int
	mitigate                bool
	injectSlowReplica       int
	injectSlowMS            float64
}

// trainDataParallel runs the -replicas > 1 path: N model replicas share
// the planner, each global batch of -batch images shards across them, and
// parameters average after every step. Returns replica 0 — canonical
// after the final sync — for the shared epilogue (checkpoints, tuning
// choices).
func trainDataParallel(def *spgcnn.NetDef, opts spgcnn.BuildOptions, f dpFlags,
	ds spgcnn.Dataset, r *spgcnn.RNG, rec *spgcnn.TraceRecorder,
	reg *spgcnn.MetricsRegistry, obsv *spgcnn.Observatory, coupler *spgcnn.DriftCoupler,
	stdout io.Writer) (*spgcnn.Network, error) {
	if f.loadPath != "" {
		return nil, fmt.Errorf("-load is not supported with -replicas > 1")
	}
	if f.profile {
		return nil, fmt.Errorf("-profile is not supported with -replicas > 1")
	}
	method, err := spgcnn.ParseAllReduceMethod(f.allreduce)
	if err != nil {
		return nil, err
	}
	sparseMode, err := spgcnn.ParseSparseSyncMode(f.sparseSync)
	if err != nil {
		return nil, err
	}
	cfg := spgcnn.DataParallelConfig{
		Replicas: f.replicas, LR: float32(f.lr), GlobalBatch: f.batch, SyncEvery: 1,
		AllReduce: method, SparseSync: sparseMode,
		Staleness: f.staleness, Mitigate: f.mitigate,
	}
	if f.injectSlowReplica >= 0 {
		cfg.InjectSlowReplica = f.injectSlowReplica
		cfg.InjectSlowPerImage = time.Duration(f.injectSlowMS * float64(time.Millisecond))
	}
	dp, err := spgcnn.NewDataParallelFromDef(def, opts, cfg)
	if err != nil {
		return nil, err
	}
	dp.BindTrace(rec) // no-op when tracing is off
	if obsv != nil {
		// Replicas share one observatory stream per layer (symmetric
		// shards, shared planner) but every replica's layers register with
		// the coupler so a re-tune reaches all of them.
		for i := 0; i < f.replicas; i++ {
			spgcnn.RegisterObservatoryLayers(obsv, coupler, dp.Replica(i))
		}
		obsv.SetBatch(f.batch / f.replicas)
		dp.AddSink(obsv)
	}
	fmt.Fprintf(stdout, "data-parallel: %d replicas, global batch %d (shard %d), allreduce %s, sparse-sync %s\n",
		f.replicas, f.batch, f.batch/f.replicas, f.allreduce, f.sparseSync)
	if f.staleness > 0 {
		fmt.Fprintf(stdout, "data-parallel: bounded-staleness async, K=%d\n", f.staleness)
	}
	if f.mitigate {
		fmt.Fprintln(stdout, "data-parallel: straggler mitigation on (trace-driven re-chunking)")
	}
	if f.injectSlowReplica >= 0 {
		fmt.Fprintf(stdout, "data-parallel: injecting straggler: replica %d sleeps %.1fms/image\n",
			f.injectSlowReplica, f.injectSlowMS)
	}

	agg := make([]spgcnn.DataParallelReplicaStats, f.replicas)
	for e := 0; e < f.epochs; e++ {
		if obsv != nil && f.injectEpoch > 0 && e+1 == f.injectEpoch {
			obsv.SetSlowdown(f.injectFactor)
			fmt.Fprintf(stdout, "drift: injecting synthetic %.2fx slowdown from epoch %d\n", f.injectFactor, e+1)
		}
		stats := dp.TrainEpoch(ds, r)
		if obsv != nil {
			for name, s := range stats.ConvSparsity {
				obsv.SetSparsity(name, -1, s)
			}
			// Replicas are idle between epochs — the safe point to apply
			// queued re-tunes on this path.
			coupler.Apply()
		}
		if reg != nil {
			reg.RecordEpoch(dpEpochSample(e+1, stats))
			reg.RecordDataParallel(dpSample(e+1, f.replicas, stats))
		}
		fmt.Fprintf(stdout, "epoch %2d  loss %.4f  acc %5.1f%%  %7.1f images/sec  conv %.2f GF (goodput %.2f)  %d syncs\n",
			e+1, stats.Loss, stats.Accuracy*100, stats.ImagesPerSec,
			stats.ConvGFlops, stats.ConvGoodputGFlops, stats.Syncs)
		if stats.Syncs > 0 {
			line := fmt.Sprintf("          sync %s  %.2fms total  wire %.2f MB",
				stats.AllReduceMethod, stats.AllReduceSeconds*1e3, float64(stats.WireBytes)/1e6)
			if stats.SparseSyncs > 0 {
				line += fmt.Sprintf("  sparse %d/%d (density %.3f)",
					stats.SparseSyncs, stats.Syncs, stats.MeanDeltaDensity)
			}
			if stats.Rechunks > 0 {
				line += fmt.Sprintf("  rechunks %d", stats.Rechunks)
			}
			if stats.StalenessMax > 0 {
				line += fmt.Sprintf("  staleness max %d", stats.StalenessMax)
			}
			if stats.SkippedImages > 0 {
				line += fmt.Sprintf("  skipped %d images", stats.SkippedImages)
			}
			fmt.Fprintln(stdout, line)
		}
		for i, rs := range stats.Replicas {
			agg[i].Replica = rs.Replica
			agg[i].Steps += rs.Steps
			agg[i].Total += rs.Total
			agg[i].BarrierWait += rs.BarrierWait
			if agg[i].Max < rs.Max {
				agg[i].Max = rs.Max
			}
			if e == 0 || rs.Min < agg[i].Min {
				agg[i].Min = rs.Min
			}
		}
		if epochHook != nil {
			epochHook(e)
		}
	}
	fmt.Fprintln(stdout, "replica  steps  step min/mean/max (ms)  barrier wait (ms)")
	for _, rs := range agg {
		fmt.Fprintf(stdout, "%7d  %5d  %7.2f /%7.2f /%7.2f  %17.2f\n",
			rs.Replica, rs.Steps, rs.Min*1e3, rs.Mean()*1e3, rs.Max*1e3, rs.BarrierWait*1e3)
	}
	return dp.Replica(0), nil
}

// dpEpochSample converts data-parallel epoch statistics into the metrics
// form of the per-epoch goodput series.
func dpEpochSample(epoch int, stats spgcnn.DataParallelStats) spgcnn.EpochSample {
	var spSum float64
	for _, s := range stats.ConvSparsity {
		spSum += s
	}
	mean := 0.0
	if len(stats.ConvSparsity) > 0 {
		mean = spSum / float64(len(stats.ConvSparsity))
	}
	return spgcnn.EpochSample{
		Epoch:         epoch,
		Images:        stats.Images,
		Seconds:       stats.Seconds,
		ImagesPerSec:  stats.ImagesPerSec,
		Loss:          stats.Loss,
		Accuracy:      stats.Accuracy,
		DenseGFlops:   stats.ConvGFlops,
		GoodputGFlops: stats.ConvGoodputGFlops,
		MeanSparsity:  mean,
	}
}

// dpSample converts data-parallel epoch statistics into the scale-out
// metrics sample (spg_dp_* series).
func dpSample(epoch, replicas int, stats spgcnn.DataParallelStats) spgcnn.DataParallelSample {
	waits := make([]float64, len(stats.Replicas))
	shares := make([]int, len(stats.Replicas))
	for i, rs := range stats.Replicas {
		waits[i] = rs.BarrierWait
		shares[i] = rs.Share
	}
	return spgcnn.DataParallelSample{
		Epoch:            epoch,
		Replicas:         replicas,
		Syncs:            stats.Syncs,
		SparseSyncs:      stats.SparseSyncs,
		AllReduceSeconds: stats.AllReduceSeconds,
		AllReduceMethod:  stats.AllReduceMethod,
		MeanDeltaDensity: stats.MeanDeltaDensity,
		WireBytes:        stats.WireBytes,
		SkippedImages:    stats.SkippedImages,
		SkippedConvFlops: stats.SkippedConvFlops,
		Rechunks:         stats.Rechunks,
		StalenessMax:     stats.StalenessMax,
		BarrierWait:      waits,
		Shares:           shares,
	}
}

// epochSample converts trainer statistics into the metrics form of the
// per-epoch goodput series (Eq. 9).
func epochSample(stats spgcnn.TrainEpochStats) spgcnn.EpochSample {
	var spSum float64
	for _, s := range stats.ConvSparsity {
		spSum += s
	}
	mean := 0.0
	if len(stats.ConvSparsity) > 0 {
		mean = spSum / float64(len(stats.ConvSparsity))
	}
	return spgcnn.EpochSample{
		Epoch:         stats.Epoch,
		Images:        stats.Images,
		Seconds:       stats.Seconds,
		ImagesPerSec:  stats.ImagesPerSec,
		Loss:          stats.Loss,
		Accuracy:      stats.Accuracy,
		DenseGFlops:   stats.ConvGFlops,
		GoodputGFlops: stats.ConvGoodputGFlops,
		MeanSparsity:  mean,
	}
}

func builtin(name string) (src, dataset string) {
	switch name {
	case "mnist":
		return spgcnn.MNISTNet, "mnist"
	case "cifar":
		return spgcnn.CIFARNet, "cifar"
	case "imagenet100":
		return spgcnn.ImageNet100Net, "imagenet100"
	default:
		return "", ""
	}
}

func datasetByName(name string, n int) spgcnn.Dataset {
	switch name {
	case "mnist":
		return spgcnn.MNISTData(n)
	case "cifar":
		return spgcnn.CIFARData(n)
	case "imagenet100":
		return spgcnn.ImageNet100Data(n)
	default:
		return nil
	}
}

func findStrategy(name string, workers int) (spgcnn.Strategy, bool) {
	if workers < 1 {
		workers = 1
	}
	for _, st := range append(spgcnn.FPStrategies(workers), spgcnn.BPStrategies(workers)...) {
		if st.Name == name {
			return st, true
		}
	}
	return spgcnn.Strategy{}, false
}
