// spg-serve runs a trained network as an inference service: a forward-only
// model replicated across batch workers (one weight set in memory), an
// HTTP endpoint feeding a dynamic-batching admission queue, and the
// metrics/trace stack wired into the serving path. The deployed strategy
// and layout per batch-size bucket come from the planner, exactly like
// training — serving is a consumer of the same plan cache.
//
// Usage:
//
//	spg-train -net mnist -epochs 3 -save mnist.ckpt
//	spg-serve -net mnist -load mnist.ckpt -addr :8080 -max-batch 8 -max-delay 2ms
//	spg-load  -url http://127.0.0.1:8080 -c 8 -n 1000
//
// Endpoints: POST /v1/infer, GET /v1/spec, GET /metrics, /healthz,
// /debug/pprof.
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"syscall"
	"time"

	"spgcnn"
)

// Test seams: serveReadyHook fires once the listener is bound (with the
// concrete address); stopCh, when non-nil, shuts the server down as a
// signal would.
var (
	serveReadyHook func(addr string)
	stopCh         chan struct{}
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "spg-serve: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("spg-serve", flag.ContinueOnError)
	var (
		netName   = fs.String("net", "mnist", "built-in network: mnist, cifar, imagenet100")
		file      = fs.String("file", "", "netdef file (overrides -net)")
		loadPath  = fs.String("load", "", "weight checkpoint to serve (spg-train -save); omit to serve seeded random weights")
		addr      = fs.String("addr", "127.0.0.1:0", "listen address")
		addrFile  = fs.String("addr-file", "", "write the bound address to this file once listening (port discovery for scripts)")
		replicas  = fs.Int("replicas", 1, "batch-worker replicas sharing one weight set")
		threads   = fs.Int("threads", 1, "worker cores per replica (intra-batch parallelism)")
		maxBatch  = fs.Int("max-batch", 8, "max requests coalesced into one forward pass")
		maxDelay  = fs.Duration("max-delay", 2*time.Millisecond, "how long a partial batch waits for late arrivals (0 = greedy)")
		queueCap  = fs.Int("queue-cap", 0, "admission queue bound; overflow rejects with 503 (0 = 8 x max-batch)")
		strategy  = fs.String("strategy", "auto", "conv strategy: auto (planner, per-bucket) or a fixed FP strategy name")
		seed      = fs.Uint64("seed", 42, "weight init seed (only meaningful without -load)")
		warmup    = fs.Bool("warmup", true, "plan and run every batch bucket on every replica before accepting traffic")
		planCache = fs.String("plan-cache", "", "persistent plan cache file: reuse per-bucket strategy verdicts across restarts")
		tracePath = fs.String("trace", "", "write a Perfetto trace of the serving run here on shutdown")
		traceMode = fs.String("trace-mode", "ring", "trace capture mode: ring or full")
		drift     = fs.Bool("drift", false, "run the plan-drift observatory over the serving spans and render the agreement report on shutdown (predictions assume full -max-batch batches; partial buckets read as faster than predicted)")
		driftOut  = fs.String("drift-report", "", "write the agreement report (schema-versioned JSON) here on shutdown; implies -drift")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	src := builtin(*netName)
	if src == "" && *file == "" {
		return fmt.Errorf("unknown built-in network %q (want mnist, cifar, imagenet100)", *netName)
	}
	if *file != "" {
		b, err := os.ReadFile(*file)
		if err != nil {
			return err
		}
		src = string(b)
	}
	def, err := spgcnn.ParseNet(src)
	if err != nil {
		return err
	}

	// One planner shared by every replica: replica 0 measures a bucket
	// once, the rest deploy the cached verdict.
	planner := spgcnn.NewPlanner(spgcnn.PlannerOptions{})
	if *planCache != "" {
		n, err := planner.LoadFile(*planCache)
		if err != nil {
			return fmt.Errorf("plan cache: %w", err)
		}
		if n > 0 {
			fmt.Fprintf(stdout, "plan cache: loaded %d entries from %s\n", n, *planCache)
		}
	}

	mcfg := spgcnn.ServeModelConfig{
		Replicas: *replicas,
		Threads:  *threads,
		Buckets:  spgcnn.DefaultServeBuckets(*maxBatch),
		Planner:  planner,
		Seed:     *seed,
	}
	if *strategy != "auto" {
		st, ok := findFPStrategy(*strategy, *threads)
		if !ok {
			return fmt.Errorf("unknown strategy %q", *strategy)
		}
		mcfg.FixedStrategy = &st
	}
	model, err := spgcnn.NewServeModel(def, mcfg)
	if err != nil {
		return err
	}
	if *loadPath != "" {
		f, err := os.Open(*loadPath)
		if err != nil {
			return err
		}
		err = model.LoadWeights(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("restoring %s: %w", *loadPath, err)
		}
		fmt.Fprintf(stdout, "restored checkpoint %s\n", *loadPath)
	} else {
		fmt.Fprintf(stdout, "serving seeded random weights (no -load)\n")
	}

	reg := spgcnn.NewMetricsRegistry()
	// One replica's context feeds the kernel-span tree and arena gauges;
	// the serve-level series (queue, batches, goodput) cover all replicas.
	spgcnn.BindMetrics(model.Ctx(0), reg)
	spgcnn.BindRuntimeMetrics(reg)
	spgcnn.BindPlannerMetrics(planner, reg)

	// The drift observatory in serving is report-only: per-bucket verdicts
	// re-measure cheaply on restart, so there is no re-tune coupler; the
	// value is the live agreement series and the shutdown report.
	var obsv *spgcnn.Observatory
	if *drift || *driftOut != "" {
		obsv = spgcnn.NewObservatory(spgcnn.ObservatoryOptions{
			Workers: *threads,
			Metrics: reg,
		})
		for _, c := range model.ConvLayers() {
			obsv.RegisterLayer(c.Name(), c.Spec())
		}
		obsv.SetBatch(*maxBatch)
		for i := 0; i < model.Replicas(); i++ {
			model.Ctx(i).Probe().AddSink(obsv)
		}
	}

	var rec *spgcnn.TraceRecorder
	if *tracePath != "" {
		mode, err := spgcnn.ParseTraceMode(*traceMode)
		if err != nil {
			return err
		}
		rec = spgcnn.NewTraceRecorder(spgcnn.TraceOptions{Mode: mode})
		spgcnn.BindTraceMetrics(rec, reg)
		for i := 0; i < model.Replicas(); i++ {
			spgcnn.AttachTraceCtx(rec, model.Ctx(i), i)
		}
		planner.SetTrace(rec.Emitter(-1, 0))
	}

	if *warmup {
		t0 := time.Now()
		model.Warmup()
		fmt.Fprintf(stdout, "warmup: %d replicas x %v buckets planned in %v\n",
			model.Replicas(), model.Buckets(), time.Since(t0).Round(time.Millisecond))
	}

	srv, err := spgcnn.NewServer(spgcnn.ServeConfig{
		Model:    model,
		MaxBatch: *maxBatch,
		MaxDelay: *maxDelay,
		QueueCap: *queueCap,
		Metrics:  reg,
		Trace:    rec,
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	bound := ln.Addr().String()
	fmt.Fprintf(stdout, "serving %q on http://%s (replicas %d, max batch %d, max delay %v)\n",
		def.Name, bound, model.Replicas(), *maxBatch, *maxDelay)
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound+"\n"), 0o644); err != nil {
			ln.Close()
			return err
		}
	}
	if serveReadyHook != nil {
		serveReadyHook(bound)
	}

	httpSrv := &http.Server{Handler: srv.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)
	select {
	case s := <-sig:
		fmt.Fprintf(stdout, "signal %v: draining\n", s)
	case <-stopCh:
		fmt.Fprintf(stdout, "stop requested: draining\n")
	case err := <-errCh:
		srv.Close()
		return err
	}

	// Shutdown order: stop accepting (listener), drain the admission
	// queue (server close answers every admitted request), then report.
	httpSrv.Close()
	srv.Close()

	st := srv.Stats()
	fmt.Fprintf(stdout, "served %d requests in %d batches (mean batch %.2f), rejected %d, failed %d\n",
		st.Requests, st.Batches, st.MeanBatch(), st.Rejected, st.Failed)
	if st.Images > 0 {
		fmt.Fprintf(stdout, "goodput: %.1f%% of forward flops were real requests (%d padding rows)\n",
			100*st.GoodputRatio(), st.PaddingRows)
	}
	// Planner epilogue: what the scheduler deployed and how often the
	// cache answered for free — the serving counterpart of spg-train's
	// plan-cache summary.
	if pst := planner.Stats(); pst.Hits+pst.Misses > 0 {
		fmt.Fprintf(stdout, "plan cache: %d hits, %d misses, %d measurement passes",
			pst.Hits, pst.Misses, pst.Measurements)
		if pst.Invalidations > 0 {
			fmt.Fprintf(stdout, ", %d invalidated by re-tune triggers", pst.Invalidations)
		}
		fmt.Fprintln(stdout)
	}
	for _, c := range model.ConvLayers() {
		buckets := c.PlannedBuckets()
		if len(buckets) == 0 {
			continue
		}
		bks := make([]int, 0, len(buckets))
		for bk := range buckets {
			bks = append(bks, bk)
		}
		sort.Ints(bks)
		fmt.Fprintf(stdout, "deployed %s:", c.Name())
		for _, bk := range bks {
			fmt.Fprintf(stdout, " batch%d=%s", bk, buckets[bk])
		}
		fmt.Fprintln(stdout)
	}
	if obsv != nil {
		fmt.Fprintf(stdout, "drift: %d events\n", len(obsv.Events()))
		rep := obsv.Report()
		rep.Render(stdout)
		if *driftOut != "" {
			if err := rep.WriteFile(*driftOut); err != nil {
				return fmt.Errorf("drift report: %w", err)
			}
			fmt.Fprintf(stdout, "drift report: wrote %s (schema %d)\n", *driftOut, spgcnn.DriftReportSchemaVersion)
		}
	}
	if rec != nil {
		if err := rec.WriteFile(*tracePath); err != nil {
			return fmt.Errorf("trace: %w", err)
		}
		ts := rec.Stats()
		fmt.Fprintf(stdout, "trace: wrote %d events to %s\n", ts.Buffered, *tracePath)
	}
	if *planCache != "" {
		if err := planner.SaveFile(*planCache); err != nil {
			return fmt.Errorf("plan cache: %w", err)
		}
		fmt.Fprintf(stdout, "plan cache: saved %d entries to %s\n", planner.Entries(), *planCache)
	}
	return nil
}

func builtin(name string) string {
	switch name {
	case "mnist":
		return spgcnn.MNISTNet
	case "cifar":
		return spgcnn.CIFARNet
	case "imagenet100":
		return spgcnn.ImageNet100Net
	default:
		return ""
	}
}

// findFPStrategy resolves a forward-pass strategy by name — serving never
// runs backward, so only the FP set is searched.
func findFPStrategy(name string, workers int) (spgcnn.Strategy, bool) {
	if workers < 1 {
		workers = 1
	}
	for _, st := range spgcnn.FPStrategies(workers) {
		if st.Name == name {
			return st, true
		}
	}
	return spgcnn.Strategy{}, false
}
