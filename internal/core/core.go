// Package core is spg-CNN's scheduler (§4.4): given a convolution layer,
// it generates code for every candidate technique, measures each on sample
// inputs, and deploys the fastest — separately for forward propagation and
// back-propagation — then re-checks the BP choice periodically because
// error-gradient sparsity drifts as training converges (Fig. 3b).
//
// The candidate set matches the paper, plus the engines this repo has
// grown since (prepacked GEMM, the channel-blocked direct kernel, and the
// sparse-weight kernel for pruned layers):
//
//	FP: Parallel-GEMM, GEMM-in-Parallel, Stencil-Kernel, Packed, Blocked, Sparse-Weight
//	BP: Parallel-GEMM, GEMM-in-Parallel, Sparse-Kernel, Packed
package core

import (
	"fmt"
	"time"

	"spgcnn/internal/batchpar"
	"spgcnn/internal/blockedconv"
	"spgcnn/internal/conv"
	"spgcnn/internal/engine"
	"spgcnn/internal/exec"
	"spgcnn/internal/refconv"
	"spgcnn/internal/spkernel"
	"spgcnn/internal/spweight"
	"spgcnn/internal/stencil"
	"spgcnn/internal/tensor"
	"spgcnn/internal/unfoldgemm"
)

// Strategy is one complete way to execute a layer phase over a batch: a
// kernel generator plus a batch schedule. BatchParallel strategies run one
// single-threaded kernel per worker on different inputs (GEMM-in-Parallel
// scheduling); non-batch-parallel strategies process inputs sequentially
// with a kernel that parallelizes internally (Parallel-GEMM scheduling).
type Strategy struct {
	Name          string
	Gen           engine.Generator
	BatchParallel bool
	// Layout is the activation layout the strategy's kernel computes in.
	// Strategies that run natively on channel-blocked activations report
	// tensor.NCHW8; the zero value is the canonical NCHW. Reported by the
	// planner so layer layout is a planned property, not an engine detail.
	Layout tensor.Layout
}

// Supports reports whether the strategy's engine can execute the given
// geometry (the engine.Supports capability seam).
func (st Strategy) Supports(s conv.Spec) bool { return engine.Supports(st.Gen, s) }

// ReferenceStrategy returns the last-resort candidate: the conv reference
// oracle behind batch-parallel scheduling. It executes every valid spec —
// including padded/dilated/grouped geometry no optimized engine claims —
// so filtered candidate sets are never empty.
func ReferenceStrategy() Strategy {
	return Strategy{Name: refconv.Name, Gen: refconv.Generator(), BatchParallel: true}
}

// SupportedStrategies filters candidates down to those whose engines
// support s. When no candidate survives, the reference strategy is
// returned alone so every valid spec remains runnable.
func SupportedStrategies(candidates []Strategy, s conv.Spec) []Strategy {
	kept := make([]Strategy, 0, len(candidates))
	for _, st := range candidates {
		if st.Supports(s) {
			kept = append(kept, st)
		}
	}
	if len(kept) == 0 {
		kept = append(kept, ReferenceStrategy())
	}
	return kept
}

// FPStrategies returns the paper's forward-propagation candidates for the
// given worker count.
func FPStrategies(workers int) []Strategy {
	return []Strategy{
		{Name: "parallel-gemm", Gen: unfoldgemm.Generator(workers)},
		{Name: "gemm-in-parallel", Gen: unfoldgemm.Generator(1), BatchParallel: true},
		{Name: "stencil", Gen: stencil.Generator(), BatchParallel: true},
		// Appended after the paper's three so existing positional
		// references ([1] gemm-in-parallel, [2] stencil) stay stable.
		{Name: "gemm-packed", Gen: unfoldgemm.PackedGenerator(workers)},
		{Name: "blocked", Gen: blockedconv.Generator(), BatchParallel: true, Layout: tensor.NCHW8},
		{Name: "sparse-weight", Gen: spweight.Generator(), BatchParallel: true},
	}
}

// BPStrategies returns the paper's back-propagation candidates for the
// given worker count.
func BPStrategies(workers int) []Strategy {
	return []Strategy{
		{Name: "parallel-gemm", Gen: unfoldgemm.Generator(workers)},
		{Name: "gemm-in-parallel", Gen: unfoldgemm.Generator(1), BatchParallel: true},
		{Name: "sparse", Gen: spkernel.Generator(), BatchParallel: true},
		// Appended after the paper's three (see FPStrategies).
		{Name: "gemm-packed", Gen: unfoldgemm.PackedGenerator(workers)},
	}
}

// Exec executes one layer phase over batches according to a strategy. All
// scratch comes from the execution context's arena and every pass is timed
// into the context's probe, so deployed execs feed the same instrumentation
// the measurement pass uses.
type Exec struct {
	strategy Strategy
	spec     conv.Spec
	ctx      *exec.Ctx
	k        engine.Kernel

	// Precomputed span names keep the per-call probe path allocation-free.
	spanFP, spanBPI, spanBPW string
}

// NewExecCtx instantiates a strategy for a spec under an execution context.
func NewExecCtx(st Strategy, s conv.Spec, c *exec.Ctx) *Exec {
	s.MustValidate()
	if c == nil {
		c = exec.New(1)
	}
	e := &Exec{strategy: st, spec: s, ctx: c}
	if st.BatchParallel {
		e.k = batchpar.New(st.Gen, s)
	} else {
		e.k = st.Gen.New(s)
	}
	e.spanFP = "core/fp/" + st.Name
	e.spanBPI = "core/bpi/" + st.Name
	e.spanBPW = "core/bpw/" + st.Name
	return e
}

// NewExec instantiates a strategy for a spec with a private context of the
// given worker count.
func NewExec(st Strategy, s conv.Spec, workers int) *Exec {
	return NewExecCtx(st, s, exec.New(workers))
}

// Strategy returns the strategy this exec runs.
func (e *Exec) Strategy() Strategy { return e.strategy }

// Ctx returns the execution context this exec runs under.
func (e *Exec) Ctx() *exec.Ctx { return e.ctx }

// Kernel returns the underlying batch kernel.
func (e *Exec) Kernel() engine.Kernel { return e.k }

// Name describes the exec.
func (e *Exec) Name() string {
	return fmt.Sprintf("%s(p=%d)", e.strategy.Name, e.ctx.Workers())
}

// Forward computes outs[i] = conv(ins[i], w).
func (e *Exec) Forward(outs, ins []*tensor.Tensor, w *tensor.Tensor) {
	start := time.Now()
	e.k.ForwardBatch(e.ctx, outs, ins, w)
	e.ctx.Probe().Observe(e.spanFP, time.Since(start).Seconds())
}

// BackwardInput computes eis[i] = corr(eos[i], w).
func (e *Exec) BackwardInput(eis, eos []*tensor.Tensor, w *tensor.Tensor) {
	start := time.Now()
	e.k.BackwardInputBatch(e.ctx, eis, eos, w)
	e.ctx.Probe().Observe(e.spanBPI, time.Since(start).Seconds())
}

// BackwardWeights computes dw = Σ_i grad(eos[i], ins[i]). dw is
// overwritten.
func (e *Exec) BackwardWeights(dw *tensor.Tensor, eos, ins []*tensor.Tensor) {
	start := time.Now()
	e.k.BackwardWeightsBatch(e.ctx, dw, eos, ins)
	e.ctx.Probe().Observe(e.spanBPW, time.Since(start).Seconds())
}

// Timing records one candidate's measured cost.
type Timing struct {
	Strategy Strategy
	Seconds  float64
}

// Selection is the scheduler's verdict for one layer phase: the chosen
// exec plus the full measurement table (reported by spg-bench and Fig. 8).
type Selection struct {
	Chosen  *Exec
	Timings []Timing
}

// Best returns the winning timing entry.
func (s Selection) Best() Timing {
	best := s.Timings[0]
	for _, t := range s.Timings[1:] {
		if t.Seconds < best.Seconds {
			best = t
		}
	}
	return best
}

// TuneOptions configures the measurement pass.
type TuneOptions struct {
	// Reps is the number of timed repetitions per candidate (default 3).
	Reps int
	// Batch, when positive, names the batch-size bucket this selection is
	// for. It does not change how the measurement runs (the sample batch
	// already has the bucket's size) — it is the extra cache-key component
	// plan.Planner stores the verdict under, so inference deployments keyed
	// per batch-size bucket never collide with training verdicts (Batch 0).
	Batch int
}

func (o TuneOptions) reps() int {
	if o.Reps <= 0 {
		return 3
	}
	return o.Reps
}

// ChooseFP measures every FP strategy on the sample batch under ctx and
// returns the fastest, instantiated and ready to deploy. Every candidate is
// timed through ctx.Measure (spans "tune/fp/<name>") and the verdict is
// recorded as a probe choice.
func ChooseFP(strategies []Strategy, s conv.Spec, c *exec.Ctx,
	ins []*tensor.Tensor, w *tensor.Tensor, opts TuneOptions) Selection {
	if len(strategies) == 0 {
		panic("core: ChooseFP with no candidates")
	}
	if c == nil {
		c = exec.New(1)
	}
	outs := make([]*tensor.Tensor, len(ins))
	for i := range outs {
		outs[i] = conv.NewOutput(s)
	}
	var sel Selection
	var bestExec *Exec
	bestT := 0.0
	for _, st := range strategies {
		e := NewExecCtx(st, s, c)
		t := c.Measure("tune/fp/"+st.Name, opts.reps(), func() {
			e.k.ForwardBatch(c, outs, ins, w)
		})
		sel.Timings = append(sel.Timings, Timing{Strategy: st, Seconds: t})
		if bestExec == nil || t < bestT {
			bestExec, bestT = e, t
		}
	}
	sel.Chosen = bestExec
	c.Probe().RecordChoice("fp", bestExec.strategy.Name, bestT)
	return sel
}

// ChooseBP measures every BP strategy (input-error plus delta-weights, the
// two Eq. 3/Eq. 4 computations of one layer's backward pass) on sample
// error gradients whose sparsity reflects the current training phase.
func ChooseBP(strategies []Strategy, s conv.Spec, c *exec.Ctx,
	eos, ins []*tensor.Tensor, w *tensor.Tensor, opts TuneOptions) Selection {
	if len(strategies) == 0 {
		panic("core: ChooseBP with no candidates")
	}
	if c == nil {
		c = exec.New(1)
	}
	eis := make([]*tensor.Tensor, len(eos))
	for i := range eis {
		eis[i] = conv.NewInput(s)
	}
	dw := conv.NewWeights(s)
	var sel Selection
	var bestExec *Exec
	bestT := 0.0
	for _, st := range strategies {
		e := NewExecCtx(st, s, c)
		t := c.Measure("tune/bp/"+st.Name, opts.reps(), func() {
			e.k.BackwardInputBatch(c, eis, eos, w)
			e.k.BackwardWeightsBatch(c, dw, eos, ins)
		})
		sel.Timings = append(sel.Timings, Timing{Strategy: st, Seconds: t})
		if bestExec == nil || t < bestT {
			bestExec, bestT = e, t
		}
	}
	sel.Chosen = bestExec
	c.Probe().RecordChoice("bp", bestExec.strategy.Name, bestT)
	return sel
}
