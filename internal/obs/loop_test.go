package obs

import (
	"testing"

	"spgcnn/internal/conv"
	"spgcnn/internal/core"
	"spgcnn/internal/exec"
	"spgcnn/internal/nn"
	"spgcnn/internal/plan"
	"spgcnn/internal/rng"
	"spgcnn/internal/tensor"
)

// TestDriftRetuneLoop is the end-to-end acceptance test for the re-tune
// loop: a real planned layer trains under the observatory; a fake 2x
// slowdown injected into its spans must fire a drift event within the
// detector's window, invalidate the affected plan.Key, and cause a fresh
// measurement pass on the next batch. The control phase (no injection)
// must see zero events and zero extra measurement passes.
func TestDriftRetuneLoop(t *testing.T) {
	s := conv.Spec{Nx: 24, Ny: 24, Nc: 16, Nf: 32, Fx: 3, Fy: 3, Sx: 1, Sy: 1}
	const workers, batch = 2, 4
	ctx := exec.New(workers)
	pl := plan.New(plan.Options{Tune: core.TuneOptions{Reps: 1}})
	r := rng.New(7)
	layer := nn.NewConvPlannedCtx("c1", s, pl, ctx, r)

	cp := NewCoupler(pl)
	cp.Register(layer)
	o := New(Options{
		Workers: workers, Warmup: 5, Window: 3, Threshold: 1.6,
		OnDrift: cp.OnDrift,
	})
	o.RegisterLayer("c1", s)
	o.SetBatch(batch)
	ctx.Probe().AddSink(o)

	ins := make([]*tensor.Tensor, batch)
	outs := make([]*tensor.Tensor, batch)
	eos := make([]*tensor.Tensor, batch)
	eis := make([]*tensor.Tensor, batch)
	for i := 0; i < batch; i++ {
		ins[i] = tensor.New(s.Nc, s.Ny, s.Nx)
		ins[i].FillNormal(r, 0, 1)
		outs[i] = tensor.New(s.Nf, s.OutY(), s.OutX())
		eos[i] = tensor.New(s.Nf, s.OutY(), s.OutX())
		eos[i].FillNormal(r, 0, 1)
		eis[i] = tensor.New(s.Nc, s.Ny, s.Nx)
	}
	step := func() {
		layer.Forward(outs, ins)
		layer.Backward(eis, eos, ins)
		cp.Apply()
	}

	// Warm phase: deploy + settle the baselines.
	for i := 0; i < 10; i++ {
		step()
	}
	st0 := pl.Stats()
	if st0.Measurements == 0 {
		t.Fatal("no measurement passes during deployment")
	}

	// Control epoch: steady state, no injection. Zero drift events, zero
	// extra measurement passes — the epoch-end BP re-check must stay a
	// free in-band cache hit.
	for i := 0; i < 10; i++ {
		step()
	}
	layer.EpochEnd()
	layer.EpochEnd() // second epoch crosses the default RecheckEpochs=2
	step()
	st1 := pl.Stats()
	if n := len(o.Events()); n != 0 {
		t.Fatalf("control phase fired %d drift events: %v", n, o.Events())
	}
	if st1.Measurements != st0.Measurements {
		t.Fatalf("control phase re-measured: %d -> %d passes", st0.Measurements, st1.Measurements)
	}
	if st1.Invalidations != 0 {
		t.Fatalf("control phase invalidated %d entries", st1.Invalidations)
	}

	// Fault injection: a fake 2x host slowdown on every observed span.
	o.SetSlowdown(2)
	fired := -1
	for i := 0; i < 15; i++ {
		layer.Forward(outs, ins)
		layer.Backward(eis, eos, ins)
		if len(o.Events()) > 0 {
			fired = i + 1
			break
		}
	}
	if fired < 0 {
		t.Fatal("2x slowdown fired no drift event in 15 batches")
	}
	t.Logf("drift fired after %d slowed batches: %v", fired, o.Events()[0])

	// The trigger invalidated the drifting (spec, phase) keys...
	ev := o.Events()[0]
	st2 := pl.Stats()
	if st2.Invalidations == 0 {
		t.Fatal("drift event did not invalidate any plan entries")
	}
	key := plan.Key{Host: pl.Host(), Spec: s.Canon(), Workers: workers, Phase: ev.Phase, Band: 0}
	if _, ok := pl.Lookup(key); ok {
		t.Fatalf("drifting key %v still cached after the drift event", key)
	}

	// ...and the coupler's re-tune makes the next batch a fresh
	// measurement pass, not a free hit.
	cp.Apply()
	step()
	st3 := pl.Stats()
	if st3.Measurements <= st2.Measurements {
		t.Fatalf("no new measurement pass after re-tune: %d -> %d", st2.Measurements, st3.Measurements)
	}
	if _, ok := pl.Lookup(key); !ok {
		t.Fatalf("re-measured verdict for %v not re-cached", key)
	}
}
