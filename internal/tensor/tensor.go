// Package tensor implements the dense float32 multi-dimensional arrays that
// activations, weights and error gradients are stored in throughout spgcnn.
//
// Tensors are row-major over an explicit dimension list, matching the
// paper's indexing conventions: activations are [channels][height][width]
// (c, y, x with x fastest) and convolution weights are
// [features][channels][ky][kx]. The Sparse-Kernel and Stencil-Kernel code
// generators rely on the explicit layout-transform helpers in layout.go to
// move the vectorizable dimension into the fastest-varying position, exactly
// as §4.2/§4.3 of the paper describe.
package tensor

import (
	"fmt"
	"math"

	"spgcnn/internal/rng"
)

// Tensor is a dense row-major float32 array. Data has exactly
// prod(Dims) elements; the last dimension varies fastest.
type Tensor struct {
	Dims []int
	Data []float32

	// Layout tags how Data is arranged (blocked.go). The zero value is
	// the canonical NCHW row-major layout, so code that never opts into
	// blocking is unaffected. The tag is advisory shape metadata: the
	// layout transforms set it, engines with blocked entry points check
	// it, and it travels with Clone.
	Layout Layout

	// Ver is an opt-in version counter for caches of artifacts derived
	// from Data (packed GEMM operands, layout transforms). Zero means
	// untracked: consumers must re-derive on every use. Code that mutates
	// Data in place and wants such caches to engage calls Bump after each
	// mutation (the first Bump moves the tensor from untracked to
	// tracked).
	Ver uint64
}

// Bump advances the version counter after an in-place mutation of Data, so
// version-keyed caches of derived artifacts invalidate. A fresh (Ver == 0)
// tensor becomes tracked on its first Bump.
func (t *Tensor) Bump() { t.Ver++ }

// New allocates a zero-filled tensor with the given dimensions.
// It panics on negative dimensions.
func New(dims ...int) *Tensor {
	n := 1
	for _, d := range dims {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension %d in %v", d, dims))
		}
		n *= d
	}
	return &Tensor{Dims: append([]int(nil), dims...), Data: make([]float32, n)}
}

// FromSlice wraps data in a tensor with the given dimensions, without
// copying. It panics if len(data) does not match the shape.
func FromSlice(data []float32, dims ...int) *Tensor {
	n := 1
	for _, d := range dims {
		// Validate like New: a pair of negative dimensions multiplies
		// back to a positive product, so the length check alone can
		// coincidentally pass a nonsense shape.
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension %d in %v", d, dims))
		}
		n *= d
	}
	if n != len(data) {
		panic(fmt.Sprintf("tensor: data length %d does not match dims %v (need %d)", len(data), dims, n))
	}
	return &Tensor{Dims: append([]int(nil), dims...), Data: data}
}

// Len returns the total number of elements.
func (t *Tensor) Len() int { return len(t.Data) }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.Dims[i] }

// Rank returns the number of dimensions.
func (t *Tensor) Rank() int { return len(t.Dims) }

// Clone returns a deep copy (layout tag included).
func (t *Tensor) Clone() *Tensor {
	c := New(t.Dims...)
	c.Layout = t.Layout
	copy(c.Data, t.Data)
	return c
}

// Zero sets every element to 0.
func (t *Tensor) Zero() {
	for i := range t.Data {
		t.Data[i] = 0
	}
}

// SameShape reports whether t and o have identical dimension lists.
func (t *Tensor) SameShape(o *Tensor) bool {
	if len(t.Dims) != len(o.Dims) {
		return false
	}
	for i, d := range t.Dims {
		if o.Dims[i] != d {
			return false
		}
	}
	return true
}

// Reshape returns a view (shared data) with new dimensions. The element
// count must be preserved.
func (t *Tensor) Reshape(dims ...int) *Tensor {
	n := 1
	for _, d := range dims {
		n *= d
	}
	if n != len(t.Data) {
		panic(fmt.Sprintf("tensor: cannot reshape %v (%d elems) to %v (%d elems)", t.Dims, len(t.Data), dims, n))
	}
	return &Tensor{Dims: append([]int(nil), dims...), Data: t.Data}
}

// String summarizes the tensor for debugging.
func (t *Tensor) String() string {
	return fmt.Sprintf("Tensor%v[%d elems]", t.Dims, len(t.Data))
}

// index3 computes the flat offset of (a, b, c) in a rank-3 tensor.
func (t *Tensor) index3(a, b, c int) int {
	return (a*t.Dims[1]+b)*t.Dims[2] + c
}

// index4 computes the flat offset of (a, b, c, d) in a rank-4 tensor.
func (t *Tensor) index4(a, b, c, d int) int {
	return ((a*t.Dims[1]+b)*t.Dims[2]+c)*t.Dims[3] + d
}

// At3 returns element (a, b, c) of a rank-3 tensor.
func (t *Tensor) At3(a, b, c int) float32 { return t.Data[t.index3(a, b, c)] }

// Set3 assigns element (a, b, c) of a rank-3 tensor.
func (t *Tensor) Set3(a, b, c int, v float32) { t.Data[t.index3(a, b, c)] = v }

// Add3 accumulates into element (a, b, c) of a rank-3 tensor.
func (t *Tensor) Add3(a, b, c int, v float32) { t.Data[t.index3(a, b, c)] += v }

// At4 returns element (a, b, c, d) of a rank-4 tensor.
func (t *Tensor) At4(a, b, c, d int) float32 { return t.Data[t.index4(a, b, c, d)] }

// Set4 assigns element (a, b, c, d) of a rank-4 tensor.
func (t *Tensor) Set4(a, b, c, d int, v float32) { t.Data[t.index4(a, b, c, d)] = v }

// Add4 accumulates into element (a, b, c, d) of a rank-4 tensor.
func (t *Tensor) Add4(a, b, c, d int, v float32) { t.Data[t.index4(a, b, c, d)] += v }

// Row3 returns the contiguous innermost row at (a, b) of a rank-3 tensor,
// i.e. elements (a, b, 0..Dims[2]). The slice aliases the tensor's data.
func (t *Tensor) Row3(a, b int) []float32 {
	base := t.index3(a, b, 0)
	return t.Data[base : base+t.Dims[2]]
}

// FillUniform fills the tensor with values uniform in [lo, hi).
func (t *Tensor) FillUniform(r *rng.RNG, lo, hi float32) {
	scale := hi - lo
	for i := range t.Data {
		t.Data[i] = lo + scale*r.Float32()
	}
}

// FillNormal fills the tensor with N(mean, stddev²) values.
func (t *Tensor) FillNormal(r *rng.RNG, mean, stddev float32) {
	for i := range t.Data {
		t.Data[i] = mean + stddev*float32(r.NormFloat64())
	}
}

// Sparsify zeroes a uniformly random subset of elements so the resulting
// fraction of zeros is approximately the given sparsity in [0, 1]. It is
// how the benchmark harness manufactures the moderately sparse
// (50%–99%) error-gradient tensors the paper's §4.2 evaluation sweeps over.
func (t *Tensor) Sparsify(r *rng.RNG, sparsity float64) {
	if sparsity <= 0 {
		return
	}
	if sparsity >= 1 {
		t.Zero()
		return
	}
	for i := range t.Data {
		if r.Float64() < sparsity {
			t.Data[i] = 0
		}
	}
}

// Sparsity returns the fraction of exact zeros, the quantity the paper's
// goodput analysis (Eqs. 9–10) is defined over. An empty tensor has
// sparsity 0.
func (t *Tensor) Sparsity() float64 {
	if len(t.Data) == 0 {
		return 0
	}
	zeros := 0
	for _, v := range t.Data {
		if v == 0 {
			zeros++
		}
	}
	return float64(zeros) / float64(len(t.Data))
}

// NNZ returns the number of non-zero elements.
func (t *Tensor) NNZ() int {
	n := 0
	for _, v := range t.Data {
		if v != 0 {
			n++
		}
	}
	return n
}

// Scale multiplies every element by s.
func (t *Tensor) Scale(s float32) {
	for i := range t.Data {
		t.Data[i] *= s
	}
}

// AddScaled accumulates s*o into t. Shapes must match.
func (t *Tensor) AddScaled(o *Tensor, s float32) {
	if !t.SameShape(o) {
		panic(fmt.Sprintf("tensor: AddScaled shape mismatch %v vs %v", t.Dims, o.Dims))
	}
	for i, v := range o.Data {
		t.Data[i] += s * v
	}
}

// MaxAbsDiff returns max_i |t[i] - o[i]|. Shapes must match.
func MaxAbsDiff(a, b *Tensor) float64 {
	if !a.SameShape(b) {
		panic(fmt.Sprintf("tensor: MaxAbsDiff shape mismatch %v vs %v", a.Dims, b.Dims))
	}
	maxd := 0.0
	for i := range a.Data {
		d := math.Abs(float64(a.Data[i]) - float64(b.Data[i]))
		if d > maxd {
			maxd = d
		}
	}
	return maxd
}

// Identical reports whether the two tensors have the same shape and
// bit-identical elements (NaN != NaN, so any NaN makes tensors differ —
// exactly what reuse-determinism checks want).
func Identical(a, b *Tensor) bool {
	if !a.SameShape(b) {
		return false
	}
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			return false
		}
	}
	return true
}

// AlmostEqual reports whether the two tensors agree elementwise within tol,
// using a mixed absolute/relative criterion suitable for float32 kernels
// that accumulate in different orders.
func AlmostEqual(a, b *Tensor, tol float64) bool {
	if !a.SameShape(b) {
		return false
	}
	for i := range a.Data {
		x, y := float64(a.Data[i]), float64(b.Data[i])
		d := math.Abs(x - y)
		scale := math.Max(math.Abs(x), math.Abs(y))
		if d > tol && d > tol*scale {
			return false
		}
	}
	return true
}
