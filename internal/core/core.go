// Package core is spg-CNN's scheduler (§4.4): given a convolution layer,
// it generates code for every candidate technique, measures each on sample
// inputs, and deploys the fastest — separately for forward propagation and
// back-propagation — then re-checks the BP choice periodically because
// error-gradient sparsity drifts as training converges (Fig. 3b).
//
// The candidate set matches the paper:
//
//	FP: Parallel-GEMM, GEMM-in-Parallel, Stencil-Kernel
//	BP: Parallel-GEMM, GEMM-in-Parallel, Sparse-Kernel
package core

import (
	"fmt"
	"time"

	"spgcnn/internal/batchpar"
	"spgcnn/internal/conv"
	"spgcnn/internal/engine"
	"spgcnn/internal/spkernel"
	"spgcnn/internal/stencil"
	"spgcnn/internal/tensor"
	"spgcnn/internal/unfoldgemm"
)

// Strategy is one complete way to execute a layer phase over a batch: a
// kernel generator plus a batch schedule. BatchParallel strategies run one
// single-threaded kernel per worker on different inputs (GEMM-in-Parallel
// scheduling); non-batch-parallel strategies process inputs sequentially
// with a kernel that parallelizes internally (Parallel-GEMM scheduling).
type Strategy struct {
	Name          string
	Gen           engine.Generator
	BatchParallel bool
}

// FPStrategies returns the paper's forward-propagation candidates for the
// given worker count.
func FPStrategies(workers int) []Strategy {
	return []Strategy{
		{Name: "parallel-gemm", Gen: unfoldgemm.Generator(workers)},
		{Name: "gemm-in-parallel", Gen: unfoldgemm.Generator(1), BatchParallel: true},
		{Name: "stencil", Gen: stencil.Generator(), BatchParallel: true},
	}
}

// BPStrategies returns the paper's back-propagation candidates for the
// given worker count.
func BPStrategies(workers int) []Strategy {
	return []Strategy{
		{Name: "parallel-gemm", Gen: unfoldgemm.Generator(workers)},
		{Name: "gemm-in-parallel", Gen: unfoldgemm.Generator(1), BatchParallel: true},
		{Name: "sparse", Gen: spkernel.Generator(), BatchParallel: true},
	}
}

// Exec executes one layer phase over batches according to a strategy.
type Exec struct {
	strategy Strategy
	spec     conv.Spec
	workers  int

	batch  *batchpar.Executor // BatchParallel strategies
	single engine.Kernel      // sequential strategies
	dwTmp  *tensor.Tensor     // sequential BackwardWeights scratch
}

// NewExec instantiates a strategy for a spec.
func NewExec(st Strategy, s conv.Spec, workers int) *Exec {
	s.MustValidate()
	if workers < 1 {
		workers = 1
	}
	e := &Exec{strategy: st, spec: s, workers: workers}
	if st.BatchParallel {
		e.batch = batchpar.New(st.Gen, s, workers)
	} else {
		e.single = st.Gen.New(s)
		e.dwTmp = conv.NewWeights(s)
	}
	return e
}

// Strategy returns the strategy this exec runs.
func (e *Exec) Strategy() Strategy { return e.strategy }

// Name describes the exec.
func (e *Exec) Name() string {
	return fmt.Sprintf("%s(p=%d)", e.strategy.Name, e.workers)
}

// Forward computes outs[i] = conv(ins[i], w).
func (e *Exec) Forward(outs, ins []*tensor.Tensor, w *tensor.Tensor) {
	if e.batch != nil {
		e.batch.Forward(outs, ins, w)
		return
	}
	if len(outs) != len(ins) {
		panic("core: Forward batch length mismatch")
	}
	for i := range ins {
		e.single.Forward(outs[i], ins[i], w)
	}
}

// BackwardInput computes eis[i] = corr(eos[i], w).
func (e *Exec) BackwardInput(eis, eos []*tensor.Tensor, w *tensor.Tensor) {
	if e.batch != nil {
		e.batch.BackwardInput(eis, eos, w)
		return
	}
	if len(eis) != len(eos) {
		panic("core: BackwardInput batch length mismatch")
	}
	for i := range eos {
		e.single.BackwardInput(eis[i], eos[i], w)
	}
}

// BackwardWeights computes dw = Σ_i grad(eos[i], ins[i]). dw is
// overwritten.
func (e *Exec) BackwardWeights(dw *tensor.Tensor, eos, ins []*tensor.Tensor) {
	if e.batch != nil {
		e.batch.BackwardWeights(dw, eos, ins)
		return
	}
	if len(eos) != len(ins) {
		panic("core: BackwardWeights batch length mismatch")
	}
	dw.Zero()
	for i := range eos {
		e.single.BackwardWeights(e.dwTmp, eos[i], ins[i])
		dw.AddScaled(e.dwTmp, 1)
	}
}

// Timing records one candidate's measured cost.
type Timing struct {
	Strategy Strategy
	Seconds  float64
}

// Selection is the scheduler's verdict for one layer phase: the chosen
// exec plus the full measurement table (reported by spg-bench and Fig. 8).
type Selection struct {
	Chosen  *Exec
	Timings []Timing
}

// Best returns the winning timing entry.
func (s Selection) Best() Timing {
	best := s.Timings[0]
	for _, t := range s.Timings[1:] {
		if t.Seconds < best.Seconds {
			best = t
		}
	}
	return best
}

// measure times fn over `reps` runs after one warm-up and returns the
// minimum — the standard low-noise estimator for short kernels.
func measure(reps int, fn func()) float64 {
	fn() // warm-up: page in scratch, generate code paths
	best := 0.0
	for i := 0; i < reps; i++ {
		start := time.Now()
		fn()
		el := time.Since(start).Seconds()
		if i == 0 || el < best {
			best = el
		}
	}
	return best
}

// TuneOptions configures the measurement pass.
type TuneOptions struct {
	// Reps is the number of timed repetitions per candidate (default 3).
	Reps int
}

func (o TuneOptions) reps() int {
	if o.Reps <= 0 {
		return 3
	}
	return o.Reps
}

// ChooseFP measures every FP strategy on the sample batch and returns the
// fastest, instantiated and ready to deploy.
func ChooseFP(strategies []Strategy, s conv.Spec, workers int,
	ins []*tensor.Tensor, w *tensor.Tensor, opts TuneOptions) Selection {
	if len(strategies) == 0 {
		panic("core: ChooseFP with no candidates")
	}
	outs := make([]*tensor.Tensor, len(ins))
	for i := range outs {
		outs[i] = conv.NewOutput(s)
	}
	var sel Selection
	var bestExec *Exec
	bestT := 0.0
	for _, st := range strategies {
		e := NewExec(st, s, workers)
		t := measure(opts.reps(), func() { e.Forward(outs, ins, w) })
		sel.Timings = append(sel.Timings, Timing{Strategy: st, Seconds: t})
		if bestExec == nil || t < bestT {
			bestExec, bestT = e, t
		}
	}
	sel.Chosen = bestExec
	return sel
}

// ChooseBP measures every BP strategy (input-error plus delta-weights, the
// two Eq. 3/Eq. 4 computations of one layer's backward pass) on sample
// error gradients whose sparsity reflects the current training phase.
func ChooseBP(strategies []Strategy, s conv.Spec, workers int,
	eos, ins []*tensor.Tensor, w *tensor.Tensor, opts TuneOptions) Selection {
	if len(strategies) == 0 {
		panic("core: ChooseBP with no candidates")
	}
	eis := make([]*tensor.Tensor, len(eos))
	for i := range eis {
		eis[i] = conv.NewInput(s)
	}
	dw := conv.NewWeights(s)
	var sel Selection
	var bestExec *Exec
	bestT := 0.0
	for _, st := range strategies {
		e := NewExec(st, s, workers)
		t := measure(opts.reps(), func() {
			e.BackwardInput(eis, eos, w)
			e.BackwardWeights(dw, eos, ins)
		})
		sel.Timings = append(sel.Timings, Timing{Strategy: st, Seconds: t})
		if bestExec == nil || t < bestT {
			bestExec, bestT = e, t
		}
	}
	sel.Chosen = bestExec
	return sel
}
