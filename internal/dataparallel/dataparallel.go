// Package dataparallel implements synchronous data-parallel SGD across
// model replicas — the cluster-scale context the paper situates spg-CNN in
// (§1, §6: DistBelief and Adam train large CNNs with many multicore-CPU
// workers; spg-CNN raises each worker's throughput). Workers here are
// goroutines with full model replicas, which makes the scaling structure
// of data parallelism — shard compute, synchronize parameters — executable
// and testable on one machine.
//
// Every global minibatch is sharded across the replicas; each replica runs
// forward/backward on its shard and applies a locally-scaled SGD step, and
// every SyncEvery steps the replicas' parameters are averaged (an
// all-reduce). With SyncEvery = 1 and plain SGD this is mathematically
// identical to single-worker large-batch SGD (the averaging of
// per-shard-scaled steps reconstructs the global gradient average);
// SyncEvery > 1 is local SGD with periodic averaging, trading
// synchronization cost for gradient staleness exactly as the paper's §6
// discussion of parameter-synchronization latency describes.
package dataparallel

import (
	"fmt"
	"sync"
	"time"

	"spgcnn/internal/core"
	"spgcnn/internal/exec"
	"spgcnn/internal/netdef"
	"spgcnn/internal/nn"
	"spgcnn/internal/plan"
	"spgcnn/internal/rng"
	"spgcnn/internal/tensor"
)

// Config tunes the data-parallel run.
type Config struct {
	// Replicas is the worker count (>= 1).
	Replicas int
	// LR is the learning rate of the equivalent global-batch SGD.
	LR float32
	// GlobalBatch is the per-step minibatch size, sharded across replicas.
	GlobalBatch int
	// SyncEvery is the parameter-averaging period in steps (default 1 =
	// fully synchronous).
	SyncEvery int
}

// Trainer coordinates the replicas.
type Trainer struct {
	cfg      Config
	replicas []*nn.Network
	trainers []*shardState
	planner  core.Planner
	loss     nn.SoftmaxXent

	steps int
	syncs int
}

// shardState is one replica's working storage.
type shardState struct {
	inputs  []*tensor.Tensor
	dlogits []*tensor.Tensor
	loss    float64
	correct int
	images  int
}

// New builds a data-parallel trainer. The builder must return
// identically-initialized networks (call it with the same seed per
// replica); this is verified by comparing the first parameter tensor.
func New(build func(replica int) *nn.Network, cfg Config) (*Trainer, error) {
	if cfg.Replicas < 1 {
		return nil, fmt.Errorf("dataparallel: replicas %d < 1", cfg.Replicas)
	}
	if cfg.GlobalBatch < cfg.Replicas {
		return nil, fmt.Errorf("dataparallel: global batch %d smaller than replica count %d",
			cfg.GlobalBatch, cfg.Replicas)
	}
	if cfg.GlobalBatch%cfg.Replicas != 0 {
		return nil, fmt.Errorf("dataparallel: global batch %d not divisible by %d replicas",
			cfg.GlobalBatch, cfg.Replicas)
	}
	if cfg.SyncEvery < 1 {
		cfg.SyncEvery = 1
	}
	t := &Trainer{cfg: cfg}
	for i := 0; i < cfg.Replicas; i++ {
		net := build(i)
		if net == nil {
			return nil, fmt.Errorf("dataparallel: builder returned nil for replica %d", i)
		}
		t.replicas = append(t.replicas, net)
		t.trainers = append(t.trainers, &shardState{})
	}
	if err := t.checkAligned(); err != nil {
		return nil, err
	}
	return t, nil
}

// NewFromDef builds a data-parallel trainer whose replicas are constructed
// from one network description — the common case — with every replica
// sharing a single strategy planner. Replica 0's first measurement of each
// layer geometry is deployed verbatim to replicas 1..N-1 (and concurrent
// first-touch tuning is single-flighted), so an N-replica trainer pays for
// one tuning pass per distinct (geometry, phase, sparsity band), not N.
//
// Each replica still gets its own execution context: scratch arenas and
// probes must not be shared across goroutines that run concurrently. The
// Workers/Ctx fields of opts set the per-replica worker count; opts.Ctx,
// if non-nil, is used for replica 0 only and its worker count is cloned
// for the rest. If opts.Planner is nil a fresh shared plan.Planner is
// created (reachable afterward via Planner()).
func NewFromDef(def *netdef.NetDef, opts netdef.BuildOptions, cfg Config) (*Trainer, error) {
	if opts.Planner == nil {
		opts.Planner = plan.New(plan.Options{})
	}
	ctx0 := opts.Ctx
	workers := opts.Workers
	if ctx0 != nil {
		workers = ctx0.Workers()
	}
	var buildErr error
	t, err := New(func(replica int) *nn.Network {
		ro := opts
		if replica == 0 && ctx0 != nil {
			ro.Ctx = ctx0
		} else {
			ro.Ctx = exec.New(workers)
		}
		net, err := netdef.Build(def, ro)
		if err != nil {
			if buildErr == nil {
				buildErr = fmt.Errorf("dataparallel: replica %d: %w", replica, err)
			}
			return nil
		}
		return net
	}, cfg)
	if buildErr != nil {
		return nil, buildErr
	}
	if err != nil {
		return nil, err
	}
	t.planner = opts.Planner
	return t, nil
}

// Planner returns the strategy planner the replicas share (nil when the
// trainer was built with New and no planner was threaded through).
func (t *Trainer) Planner() core.Planner { return t.planner }

// checkAligned verifies the replicas start from identical parameters.
func (t *Trainer) checkAligned() error {
	if len(t.replicas) < 2 {
		return nil
	}
	ref := t.replicas[0].Parameters()
	for i := 1; i < len(t.replicas); i++ {
		ps := t.replicas[i].Parameters()
		if len(ps) != len(ref) {
			return fmt.Errorf("dataparallel: replica %d has %d parameters, replica 0 has %d",
				i, len(ps), len(ref))
		}
		for j := range ps {
			if ps[j].Name != ref[j].Name || !ps[j].Tensor.SameShape(ref[j].Tensor) {
				return fmt.Errorf("dataparallel: replica %d parameter %q mismatches replica 0", i, ps[j].Name)
			}
			if tensor.MaxAbsDiff(ps[j].Tensor, ref[j].Tensor) != 0 {
				return fmt.Errorf("dataparallel: replica %d parameter %q initialized differently "+
					"(the builder must use the same seed for every replica)", i, ps[j].Name)
			}
		}
	}
	return nil
}

// Stats reports one epoch.
type Stats struct {
	Loss         float64
	Accuracy     float64
	Images       int
	ImagesPerSec float64
	Steps        int
	Syncs        int
}

// TrainEpoch runs one shuffled pass over the dataset. Trailing examples
// that do not fill a whole global batch are skipped (every step must shard
// evenly); size datasets as multiples of GlobalBatch for exact epochs.
func (t *Trainer) TrainEpoch(ds nn.Dataset, r *rng.RNG) Stats {
	cfg := t.cfg
	shard := cfg.GlobalBatch / cfg.Replicas
	t.ensureBuffers(shard)
	order := r.Perm(ds.Len())
	start := time.Now()
	var totalLoss float64
	correct, images := 0, 0
	epochSyncs := 0

	for lo := 0; lo+cfg.GlobalBatch <= len(order); lo += cfg.GlobalBatch {
		var wg sync.WaitGroup
		wg.Add(cfg.Replicas)
		for w := 0; w < cfg.Replicas; w++ {
			go func(w int) {
				defer wg.Done()
				st := t.trainers[w]
				net := t.replicas[w]
				base := lo + w*shard
				for i := 0; i < shard; i++ {
					ds.Image(order[base+i], st.inputs[i])
				}
				logits := net.Forward(st.inputs[:shard])
				st.loss, st.correct = 0, 0
				for i := 0; i < shard; i++ {
					l, ok := t.loss.Loss(logits[i], ds.Label(order[base+i]), st.dlogits[i])
					st.loss += l
					if ok {
						st.correct++
					}
				}
				st.images = shard
				net.Backward(st.dlogits[:shard], st.inputs[:shard])
				// Locally-scaled step: lr/shard per replica; averaging
				// across replicas reconstructs the lr/GlobalBatch global
				// step (see package comment).
				net.ApplyGrads(cfg.LR, shard)
			}(w)
		}
		wg.Wait()
		for _, st := range t.trainers {
			totalLoss += st.loss
			correct += st.correct
			images += st.images
		}
		t.steps++
		if t.steps%cfg.SyncEvery == 0 {
			t.allReduce()
			t.syncs++
			epochSyncs++
		}
	}
	// Epoch boundary: run every replica's scheduler re-check (§4.4's
	// periodic BP re-measurement). Replicas share the planner, so at most
	// one re-measurement per distinct geometry actually runs; the rest
	// deploy the refreshed verdict from cache.
	for _, net := range t.replicas {
		net.EpochEnd()
	}
	elapsed := time.Since(start).Seconds()
	stats := Stats{
		Loss:     safeDiv(totalLoss, float64(images)),
		Accuracy: safeDiv(float64(correct), float64(images)),
		Images:   images,
		Steps:    t.steps,
		Syncs:    epochSyncs,
	}
	if elapsed > 0 {
		stats.ImagesPerSec = float64(images) / elapsed
	}
	return stats
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// allReduce averages every parameter across replicas and writes the mean
// back to all of them.
func (t *Trainer) allReduce() {
	if len(t.replicas) < 2 {
		return
	}
	params := make([][]nn.NamedParam, len(t.replicas))
	for i, net := range t.replicas {
		params[i] = net.Parameters()
	}
	inv := 1 / float32(len(t.replicas))
	for j := range params[0] {
		mean := params[0][j].Tensor
		for i := 1; i < len(t.replicas); i++ {
			mean.AddScaled(params[i][j].Tensor, 1)
		}
		mean.Scale(inv)
		for i := 1; i < len(t.replicas); i++ {
			copy(params[i][j].Tensor.Data, mean.Data)
		}
	}
}

// Replica returns replica i's network (replica 0 is the canonical model
// after a sync).
func (t *Trainer) Replica(i int) *nn.Network { return t.replicas[i] }

// Syncs returns the total number of all-reduce rounds performed.
func (t *Trainer) Syncs() int { return t.syncs }

func (t *Trainer) ensureBuffers(shard int) {
	in := t.replicas[0].InDims()
	out := t.replicas[0].OutDims()
	for _, st := range t.trainers {
		for len(st.inputs) < shard {
			st.inputs = append(st.inputs, tensor.New(in...))
			st.dlogits = append(st.dlogits, tensor.New(out...))
		}
	}
}
