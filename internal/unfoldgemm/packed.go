package unfoldgemm

import (
	"fmt"
	"sync"
	"time"

	"spgcnn/internal/conv"
	"spgcnn/internal/engine"
	"spgcnn/internal/exec"
	"spgcnn/internal/gemm"
	"spgcnn/internal/tensor"
	"spgcnn/internal/unfold"
)

// PackedKernel is the prepacked-operand flavour of unfold+GEMM: the weight
// matrix — the one operand that is constant across every image of a batch
// and across training steps until the optimizer writes it — is packed once
// into gemm panel layout (gemm.PackedB) and reused until its version
// changes.
//
// To make the constant operand the packable (B) side of each GEMM, the two
// weight-consuming computations run in the dot-friendly orientation:
//
//	FP:    Oᵀ[pix×Nf]   = U · Wmatᵀ   (plan: PackBTrans(Wmat), O transposed back)
//	BP-EI: U_E[pix×taps] = EOᵀ · Wmat (plan: PackB(Wmat), EO transposed per image)
//
// Both are bit-identical reorderings of the baseline GEMMs (one k-ordered
// accumulator per element; float multiply commutes bitwise), so the engine
// is a drop-in candidate. BP-dW has no constant operand and delegates to
// the per-call packing inside gemm.SerialAccum/ParallelAccum.
//
// The pack cache is keyed by (data pointer, length, tensor version). A
// weight tensor with Ver == 0 is untracked and repacks on every batch call —
// still amortized across the images of the batch; nn layers bump their
// weight version on every optimizer step so training reuses packs across
// steps and repacks only after updates.
type PackedKernel struct {
	spec    conv.Spec
	workers int
	single  engine.SingleOps

	mu    sync.Mutex
	wdata []float32     // identity of the cached weight tensor's Data
	wver  uint64        // its Ver at pack time (0 = nothing cached)
	fp    *gemm.PackedB // Wmatᵀ panels (FP)
	bp    *gemm.PackedB // Wmat panels (BP-EI)

	// Precomputed probe span names: pack time lands on the miss span, the
	// hit span's Calls count gives the cache hit rate per layer spec.
	spanHit, spanMiss string
}

// NewPacked builds a prepacked-weights kernel for s at the given GEMM
// fan-out.
func NewPacked(s conv.Spec, workers int) *PackedKernel {
	s.MustValidate()
	if workers < 1 {
		workers = 1
	}
	return &PackedKernel{
		spec:     s,
		workers:  workers,
		spanHit:  "pack/" + s.String() + "/hit",
		spanMiss: "pack/" + s.String() + "/miss",
	}
}

// Name implements engine.Kernel.
func (k *PackedKernel) Name() string {
	if k.workers <= 1 {
		return "unfold-packed-gemm(serial)"
	}
	return fmt.Sprintf("unfold-packed-gemm(p=%d)", k.workers)
}

// Spec implements engine.Kernel.
func (k *PackedKernel) Spec() conv.Spec { return k.spec }

// Workers reports the GEMM fan-out.
func (k *PackedKernel) Workers() int { return k.workers }

// plans returns the packed forms of w, packing (and recording a miss span
// with the pack time) when the cache is stale and counting a hit span
// otherwise. Packs live on the Go heap — they are long-lived per-layer
// artifacts, not per-call scratch — so their lifetime is independent of any
// execution context's arena.
func (k *PackedKernel) plans(c *exec.Ctx, w *tensor.Tensor) (fp, bp *gemm.PackedB) {
	s := k.spec
	cols := unfold.Cols(s)
	wmat := gemm.Matrix{Rows: s.Nf, Cols: cols, Data: w.Data}
	k.mu.Lock()
	defer k.mu.Unlock()
	if k.fp != nil && w.Ver != 0 && k.wver == w.Ver &&
		len(k.wdata) == len(w.Data) && &k.wdata[0] == &w.Data[0] {
		c.Probe().Observe(k.spanHit, 0)
		return k.fp, k.bp
	}
	start := time.Now()
	k.fp = gemm.PackBTrans(&wmat, nil)
	k.bp = gemm.PackB(&wmat, nil)
	k.wdata = w.Data
	k.wver = w.Ver
	c.Probe().Observe(k.spanMiss, time.Since(start).Seconds())
	return k.fp, k.bp
}

// ForwardBatch computes Eq. 2 as Oᵀ = U·Wmatᵀ against the prepacked
// transposed weights, then scatters Oᵀ back to the [Nf][pix] output layout.
func (k *PackedKernel) ForwardBatch(c *exec.Ctx, outs, ins []*tensor.Tensor, w *tensor.Tensor) {
	if len(outs) != len(ins) {
		panic("unfoldgemm: ForwardBatch length mismatch")
	}
	s := k.spec
	rows, cols := unfold.Rows(s), unfold.Cols(s)
	conv.CheckWeights(s, w)
	pfp, _ := k.plans(c, w)
	ubuf := c.Get(rows * cols)
	u := gemm.Matrix{Rows: rows, Cols: cols, Data: ubuf}
	otbuf := c.Get(rows * s.Nf)
	ot := gemm.Matrix{Rows: rows, Cols: s.Nf, Data: otbuf}
	for i := range ins {
		unfold.Im2col(s, &u, ins[i])
		conv.CheckOutput(s, outs[i])
		if k.workers <= 1 {
			gemm.MulPacked(&ot, &u, pfp)
		} else {
			gemm.ParallelMulPacked(&ot, &u, pfp, k.workers)
		}
		transposeInto(outs[i].Data, otbuf, rows, s.Nf)
	}
	c.Put(otbuf)
	c.Put(ubuf)
}

// transposeInto writes dst[f*rows+p] = src[p*nf+f] — the Oᵀ → O scatter.
// O(pix·Nf) moves against the GEMM's O(pix·Nf·taps) flops.
func transposeInto(dst, src []float32, rows, nf int) {
	for p := 0; p < rows; p++ {
		srow := src[p*nf : (p+1)*nf]
		for f, v := range srow {
			if f*rows+p >= len(dst) {
				break
			}
			dst[f*rows+p] = v
		}
	}
}

// BackwardInputBatch computes Eq. 3 as U_E = EOᵀ·Wmat against the prepacked
// weights: EO is transposed into scratch per image (O(pix·Nf) moves), the
// GEMM consumes the packed panels, and col2im folds the result.
func (k *PackedKernel) BackwardInputBatch(c *exec.Ctx, eis, eos []*tensor.Tensor, w *tensor.Tensor) {
	if len(eis) != len(eos) {
		panic("unfoldgemm: BackwardInputBatch length mismatch")
	}
	s := k.spec
	rows, cols := unfold.Rows(s), unfold.Cols(s)
	conv.CheckWeights(s, w)
	_, pbp := k.plans(c, w)
	uebuf := c.Get(rows * cols)
	ue := gemm.Matrix{Rows: rows, Cols: cols, Data: uebuf}
	eotbuf := c.Get(rows * s.Nf)
	eot := gemm.Matrix{Rows: rows, Cols: s.Nf, Data: eotbuf}
	for i := range eos {
		conv.CheckOutput(s, eos[i])
		transposeInto(eotbuf, eos[i].Data, s.Nf, rows)
		if k.workers <= 1 {
			gemm.MulPacked(&ue, &eot, pbp)
		} else {
			gemm.ParallelMulPacked(&ue, &eot, pbp, k.workers)
		}
		unfold.Col2im(s, eis[i], &ue)
	}
	c.Put(eotbuf)
	c.Put(uebuf)
}

// BackwardWeightsBatch has no constant operand (both EO and U vary per
// image); it delegates to the per-call packed path of the base kernel.
func (k *PackedKernel) BackwardWeightsBatch(c *exec.Ctx, dw *tensor.Tensor, eos, ins []*tensor.Tensor) {
	base := Kernel{spec: k.spec, workers: k.workers}
	base.BackwardWeightsBatch(c, dw, eos, ins)
}

// Forward implements engine.SingleKernel.
func (k *PackedKernel) Forward(out, in, w *tensor.Tensor) { k.single.Forward(k, out, in, w) }

// BackwardInput implements engine.SingleKernel.
func (k *PackedKernel) BackwardInput(ei, eo, w *tensor.Tensor) {
	k.single.BackwardInput(k, ei, eo, w)
}

// BackwardWeights implements engine.SingleKernel.
func (k *PackedKernel) BackwardWeights(dw, eo, in *tensor.Tensor) {
	k.single.BackwardWeights(k, dw, eo, in)
}

// PackedGenerator returns an engine.Generator for the prepacked-weights
// technique at the given fan-out.
func PackedGenerator(workers int) engine.Generator {
	return engine.Generator{
		Name: "unfold-packed-gemm",
		New:  func(s conv.Spec) engine.Kernel { return NewPacked(s, workers) },
		// Padding/dilation flow through the generalized im2col for free,
		// but the pack cache holds one panel set for the whole weight
		// matrix — grouped specs would need per-group packs, so decline
		// them.
		Supports: func(s conv.Spec) bool { return s.G() == 1 },
	}
}
