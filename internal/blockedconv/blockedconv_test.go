package blockedconv

import (
	"testing"

	"spgcnn/internal/conv"
	"spgcnn/internal/engine"
	"spgcnn/internal/engine/enginetest"
	"spgcnn/internal/exec"
	"spgcnn/internal/rng"
	"spgcnn/internal/tensor"
	"spgcnn/internal/unfoldgemm"
)

func TestConformance(t *testing.T) {
	enginetest.Run(t, Generator(), enginetest.Options{})
}

// TestDifferential fuzzes the blocked engine against the serial unfold+GEMM
// lowering over random geometries, stride > 1, odd shapes and weight
// sparsities up to 0.99 (the tentpole's bit-compatibility gate).
func TestDifferential(t *testing.T) {
	enginetest.RunDifferential(t, Generator(), unfoldgemm.Generator(1), enginetest.DiffOptions{
		WeightSparsities: []float64{0, 0.5, 0.9, 0.99},
		ExtraSpecs: []conv.Spec{
			conv.Square(36, 64, 3, 5, 1), // CIFAR L0: panel width 40
			conv.Square(16, 17, 9, 3, 1), // both channel axes with tail blocks
			conv.Square(12, 8, 16, 3, 2), // strided, exact blocks
			{Nx: 19, Ny: 9, Nc: 11, Nf: 13, Fx: 3, Fy: 2, Sx: 3, Sy: 2},
		},
	})
}

// TestNativeBlockedPath pins the engine.BlockedKernel seam: running FP on
// pre-blocked tensors must produce bit-identically the same values as the
// canonical NCHW entry point (both paths execute the same forwardBlocked).
func TestNativeBlockedPath(t *testing.T) {
	r := rng.New(7)
	c := exec.New(1)
	for _, s := range []conv.Spec{
		conv.Square(9, 3, 2, 3, 1),
		conv.Square(12, 16, 9, 3, 1),
		{Nx: 11, Ny: 7, Nc: 5, Nf: 10, Fx: 3, Fy: 2, Sx: 2, Sy: 1},
	} {
		k := New(s)
		in := conv.RandInput(r, s)
		w := conv.RandWeights(r, s)
		w.Bump()

		want := conv.NewOutput(s)
		k.ForwardBatch(c, []*tensor.Tensor{want}, []*tensor.Tensor{in}, w)

		inb := tensor.ToBlocked(in)
		outb := conv.NewBlockedOutput(s)
		k.ForwardBlockedBatch(c, []*tensor.Tensor{outb}, []*tensor.Tensor{inb}, w)
		got := tensor.FromBlocked(outb, s.Nf)
		if !tensor.Identical(got, want) {
			t.Fatalf("%v: native blocked FP differs from NCHW entry point", s)
		}
	}
}

// TestEndToEndBlockedPipeline chains two conv layers through the
// engine.BlockedKernel seam: the intermediate activation stays blocked and
// is never converted. The result must match the all-NCHW pipeline bitwise.
func TestEndToEndBlockedPipeline(t *testing.T) {
	r := rng.New(11)
	c := exec.New(1)
	s1 := conv.Square(14, 12, 3, 3, 1)                                         // 14x14x3 -> 12x12x12
	s2 := conv.Spec{Nx: 12, Ny: 12, Nc: 12, Nf: 5, Fx: 3, Fy: 3, Sx: 1, Sy: 1} // -> 10x10x5
	k1, k2 := New(s1), New(s2)
	in := conv.RandInput(r, s1)
	w1, w2 := conv.RandWeights(r, s1), conv.RandWeights(r, s2)
	w1.Bump()
	w2.Bump()

	// Reference: canonical NCHW at every seam.
	mid := conv.NewOutput(s1)
	want := conv.NewOutput(s2)
	k1.ForwardBatch(c, []*tensor.Tensor{mid}, []*tensor.Tensor{in}, w1)
	k2.ForwardBatch(c, []*tensor.Tensor{want}, []*tensor.Tensor{mid}, w2)

	// Blocked pipeline: convert only at ingest and egress, and drive both
	// layers through the interface the net-level executor would use.
	var b1, b2 engine.BlockedKernel = k1, k2
	inb := tensor.ToBlocked(in)
	midb := conv.NewBlockedOutput(s1)
	outb := conv.NewBlockedOutput(s2)
	b1.ForwardBlockedBatch(c, []*tensor.Tensor{midb}, []*tensor.Tensor{inb}, w1)
	b2.ForwardBlockedBatch(c, []*tensor.Tensor{outb}, []*tensor.Tensor{midb}, w2)
	got := tensor.FromBlocked(outb, s2.Nf)
	if !tensor.Identical(got, want) {
		t.Fatal("end-to-end blocked pipeline differs from NCHW pipeline")
	}
}

// TestWeightBlockCache verifies the per-Ver cache: repeated FP with the
// same weights blocks once; a Bump re-blocks.
func TestWeightBlockCache(t *testing.T) {
	r := rng.New(3)
	c := exec.New(1)
	s := conv.Square(9, 10, 5, 3, 1)
	k := New(s)
	in := conv.RandInput(r, s)
	w := conv.RandWeights(r, s)
	w.Bump()
	out := conv.NewOutput(s)
	for i := 0; i < 3; i++ {
		k.ForwardBatch(c, []*tensor.Tensor{out}, []*tensor.Tensor{in}, w)
	}
	hit, _ := c.Probe().SpanStats(k.spanHit)
	miss, _ := c.Probe().SpanStats(k.spanMiss)
	if miss.Calls != 1 || hit.Calls != 2 {
		t.Fatalf("after 3 calls: %d misses, %d hits (want 1, 2)", miss.Calls, hit.Calls)
	}
	w.Bump()
	k.ForwardBatch(c, []*tensor.Tensor{out}, []*tensor.Tensor{in}, w)
	if got, _ := c.Probe().SpanStats(k.spanMiss); got.Calls != 2 {
		t.Fatalf("Bump did not invalidate the weight-block cache: %d misses", got.Calls)
	}
}

func BenchmarkForwardBlocked(b *testing.B) {
	r := rng.New(1)
	c := exec.New(1)
	s := conv.Square(36, 64, 3, 5, 1)
	k := New(s)
	in := conv.RandInput(r, s)
	w := conv.RandWeights(r, s)
	w.Bump()
	out := conv.NewOutput(s)
	outs, ins := []*tensor.Tensor{out}, []*tensor.Tensor{in}
	k.ForwardBatch(c, outs, ins, w)
	b.SetBytes(int64(4 * len(in.Data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.ForwardBatch(c, outs, ins, w)
	}
}
