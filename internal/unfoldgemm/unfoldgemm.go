// Package unfoldgemm implements the state-of-the-art baseline the paper
// characterizes (§2.3): convolution by unfolding (im2col) followed by
// GEMM, in the two scheduling flavours §3–4 contrast:
//
//   - workers == 1: the single-threaded GEMM that GEMM-in-Parallel runs
//     many instances of.
//   - workers > 1: Unfold+Parallel-GEMM — each of the three training GEMMs
//     is row-partitioned across all workers, reproducing the per-core AIT
//     reduction of §3.2.
//
// The three computations lower to the GEMMs of Fig. 2c:
//
//	FP:   O[Nf×pix]      = Wmat[Nf×taps] · Uᵀ
//	BP-EI: U_E[pix×taps] = EOmatᵀ · Wmat, then fold (col2im)
//	BP-dW: dW[Nf×taps]   = EOmat[Nf×pix] · U[pix×taps]
package unfoldgemm

import (
	"fmt"

	"spgcnn/internal/conv"
	"spgcnn/internal/engine"
	"spgcnn/internal/gemm"
	"spgcnn/internal/tensor"
	"spgcnn/internal/unfold"
)

// Kernel is an unfold+GEMM convolution kernel for one spec. It owns the
// unfold scratch matrices, so it is not safe for concurrent use.
type Kernel struct {
	spec    conv.Spec
	workers int
	u       *gemm.Matrix // unfolded input, pix × taps
	ue      *gemm.Matrix // unfolded input-error, pix × taps
}

// New builds a kernel for s. workers selects Parallel-GEMM fan-out;
// workers <= 1 yields the single-threaded GEMM.
func New(s conv.Spec, workers int) *Kernel {
	s.MustValidate()
	if workers < 1 {
		workers = 1
	}
	return &Kernel{
		spec:    s,
		workers: workers,
		u:       unfold.NewU(s),
		ue:      unfold.NewU(s),
	}
}

// Name implements engine.Kernel.
func (k *Kernel) Name() string {
	if k.workers <= 1 {
		return "unfold-gemm(serial)"
	}
	return fmt.Sprintf("unfold-parallel-gemm(p=%d)", k.workers)
}

// Spec implements engine.Kernel.
func (k *Kernel) Spec() conv.Spec { return k.spec }

// Workers reports the GEMM fan-out.
func (k *Kernel) Workers() int { return k.workers }

// Forward computes Eq. 2 by O = Wmat · Uᵀ.
func (k *Kernel) Forward(out, in, w *tensor.Tensor) {
	s := k.spec
	unfold.Im2col(s, k.u, in)
	omat := unfold.OutputMatrix(s, out)
	wmat := unfold.WeightMatrix(s, w)
	if k.workers <= 1 {
		gemm.MulTransB(omat, wmat, k.u)
	} else {
		gemm.ParallelMulTransB(omat, wmat, k.u, k.workers)
	}
}

// BackwardInput computes Eq. 3 by U_E = EOmatᵀ · Wmat followed by col2im.
func (k *Kernel) BackwardInput(ei, eo, w *tensor.Tensor) {
	s := k.spec
	eomat := unfold.OutputMatrix(s, eo)
	wmat := unfold.WeightMatrix(s, w)
	if k.workers <= 1 {
		gemm.MulTransA(k.ue, eomat, wmat)
	} else {
		gemm.ParallelMulTransA(k.ue, eomat, wmat, k.workers)
	}
	unfold.Col2im(s, ei, k.ue)
}

// BackwardWeights computes Eq. 4 by dWmat = EOmat · U.
func (k *Kernel) BackwardWeights(dw, eo, in *tensor.Tensor) {
	s := k.spec
	conv.CheckWeights(s, dw)
	unfold.Im2col(s, k.u, in)
	eomat := unfold.OutputMatrix(s, eo)
	dwmat := gemm.FromSlice(dw.Data, s.Nf, unfold.Cols(s))
	if k.workers <= 1 {
		gemm.Serial(dwmat, eomat, k.u)
	} else {
		gemm.Parallel(dwmat, eomat, k.u, k.workers)
	}
}

// Generator returns an engine.Generator for this technique at the given
// fan-out. Name is "unfold-gemm" for workers <= 1 and
// "unfold-parallel-gemm" otherwise (the paper's Parallel-GEMM baseline).
func Generator(workers int) engine.Generator {
	name := "unfold-gemm"
	if workers > 1 {
		name = "unfold-parallel-gemm"
	}
	return engine.Generator{
		Name: name,
		New:  func(s conv.Spec) engine.Kernel { return New(s, workers) },
	}
}
