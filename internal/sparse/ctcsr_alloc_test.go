package sparse

import (
	"testing"

	"spgcnn/internal/rng"
)

// makeDelta fills buf with a density-d vector, deterministic per seed.
func makeDelta(buf []float32, density float64, seed uint64) {
	r := rng.New(seed)
	for i := range buf {
		if r.Float64() < density {
			buf[i] = r.Float32()*2 - 1
		} else {
			buf[i] = 0
		}
	}
}

// TestFromDenseCTIntoSteadyStateAllocs pins the property the sync path
// depends on: once the tile skeletons have grown to steady-state capacity,
// re-encoding a same-shaped vector allocates nothing — the data-parallel
// exchange calls this once per replica per sync round.
func TestFromDenseCTIntoSteadyStateAllocs(t *testing.T) {
	const l = 1 << 16
	buf := make([]float32, l)
	m := &CTCSR{}
	// Warm to worst-case capacity with a dense pass, then steady-state
	// re-encodes at shifting sparse contents.
	makeDelta(buf, 1.0, 1)
	FromDenseCTInto(m, buf, 1, l, DefaultTileWidth)
	seed := uint64(2)
	allocs := testing.AllocsPerRun(20, func() {
		makeDelta(buf, 0.05, seed)
		seed++
		FromDenseCTInto(m, buf, 1, l, DefaultTileWidth)
	})
	if allocs != 0 {
		t.Fatalf("steady-state re-encode allocates %v times per run, want 0", allocs)
	}
}

// TestFromDenseCTIntoRoundTrip checks the re-encode round-trips exactly
// across shrinking and growing contents in the same skeleton.
func TestFromDenseCTIntoRoundTrip(t *testing.T) {
	const l = 4*DefaultTileWidth + 17
	buf := make([]float32, l)
	m := &CTCSR{}
	for round, density := range []float64{0.5, 0.01, 0, 1.0, 0.1} {
		makeDelta(buf, density, uint64(round+1))
		FromDenseCTInto(m, buf, 1, l, DefaultTileWidth)
		got := m.ToDense()
		if len(got) != l {
			t.Fatalf("round %d: length %d, want %d", round, len(got), l)
		}
		nnz := 0
		for i := range buf {
			if got[i] != buf[i] {
				t.Fatalf("round %d: elem %d = %v, want %v", round, i, got[i], buf[i])
			}
			if buf[i] != 0 {
				nnz++
			}
		}
		if m.NNZ() != nnz {
			t.Fatalf("round %d: NNZ %d, want %d", round, m.NNZ(), nnz)
		}
	}
}

// BenchmarkFromDenseCTIntoReencode measures the per-round re-encode cost
// of the sparse gradient exchange at a typical delta density.
func BenchmarkFromDenseCTIntoReencode(b *testing.B) {
	const l = 1 << 18
	buf := make([]float32, l)
	makeDelta(buf, 0.05, 3)
	m := &CTCSR{}
	FromDenseCTInto(m, buf, 1, l, DefaultTileWidth)
	b.SetBytes(int64(l * 4))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FromDenseCTInto(m, buf, 1, l, DefaultTileWidth)
	}
}
