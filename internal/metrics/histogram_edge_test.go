package metrics

import (
	"math"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// TestHistogramOverflowUnderflowAccounting pins the boundary behavior of
// the fixed-bucket histogram: samples below the first bound, exactly ON
// each bound (bounds are inclusive upper bounds), between bounds, above
// the last bound (the implicit +Inf bucket), and pathological values.
func TestHistogramOverflowUnderflowAccounting(t *testing.T) {
	h := newHistogram([]float64{1, 10, 100})

	// Underflow: far below, negative, and exactly on the first bound all
	// land in bucket 0.
	for _, v := range []float64{-5, 0, 1} {
		h.Observe(v)
	}
	// Interior: just above a bound rolls into the NEXT bucket; exactly on
	// a bound stays inclusive.
	h.Observe(1.0000001)
	h.Observe(10)
	// Overflow: above the last bound goes to the +Inf catch-all, however
	// extreme the value.
	for _, v := range []float64{100.5, 1e300, math.MaxFloat64} {
		h.Observe(v)
	}

	s := h.Snapshot()
	if s.Count != 8 {
		t.Fatalf("count = %d, want 8", s.Count)
	}
	want := []uint64{3, 2, 0, 3}
	if len(s.Counts) != len(want) {
		t.Fatalf("bucket vector length = %d, want %d (3 bounds + Inf)", len(s.Counts), len(want))
	}
	for i := range want {
		if s.Counts[i] != want[i] {
			t.Fatalf("bucket %d = %d, want %d (counts %v)", i, s.Counts[i], want[i], s.Counts)
		}
	}
	// The +Inf bucket must be invisible in Bounds but present in Counts.
	if len(s.Bounds) != 3 {
		t.Fatalf("bounds = %v", s.Bounds)
	}
	// Bucket-count conservation: sum over buckets == Count, always.
	var total uint64
	for _, c := range s.Counts {
		total += c
	}
	if total != s.Count {
		t.Fatalf("bucket sum %d != count %d", total, s.Count)
	}
}

// TestHistogramExtremeValuesRender feeds boundary magnitudes and checks
// the Prometheus rendering stays well-formed: the le="+Inf" series must
// carry the full count and the cumulative counts must be monotone.
func TestHistogramExtremeValuesRender(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("edge_lat", "edge latencies", []float64{0.001, 1})
	for _, v := range []float64{-1, 0, 0.0005, 0.5, 2, 1e308} {
		h.Observe(v)
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, `edge_lat_bucket{le="+Inf"} 6`) {
		t.Fatalf("+Inf bucket must carry every observation:\n%s", out)
	}
	if !strings.Contains(out, "edge_lat_count 6") {
		t.Fatalf("count series wrong:\n%s", out)
	}
	// Cumulative bucket counts must be non-decreasing in bound order.
	prev, seen := uint64(0), 0
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "edge_lat_bucket{") {
			continue
		}
		fields := strings.Fields(line)
		c, err := strconv.ParseUint(fields[len(fields)-1], 10, 64)
		if err != nil {
			t.Fatalf("parsing %q: %v", line, err)
		}
		if c < prev {
			t.Fatalf("cumulative bucket counts decreased at %q", line)
		}
		prev, seen = c, seen+1
	}
	if seen != 3 {
		t.Fatalf("rendered %d bucket series, want 3", seen)
	}
}

// TestHistogramConcurrentObserveVsRender hammers one histogram from
// writer goroutines spanning under/in/overflow values while readers
// snapshot and render the registry until the writers finish. Run under
// -race (the CI suite does) this pins Observe vs Snapshot vs
// WritePrometheus as data-race free; the final tally must conserve every
// observation in its exact bucket.
func TestHistogramConcurrentObserveVsRender(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("conc_lat", "concurrent latencies", []float64{1, 10})

	const writers, perWriter = 4, 2000
	values := []float64{-1, 0.5, 1, 5, 10, 11, 1e12}
	bucketOf := map[float64]int{-1: 0, 0.5: 0, 1: 0, 5: 1, 10: 1, 11: 2, 1e12: 2}

	var writeWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		writeWG.Add(1)
		go func(seed int) {
			defer writeWG.Done()
			for i := 0; i < perWriter; i++ {
				h.Observe(values[(seed+i)%len(values)])
			}
		}(w)
	}

	stop := make(chan struct{})
	var readWG sync.WaitGroup
	errs := make(chan error, 2)
	for i := 0; i < 2; i++ {
		readWG.Add(1)
		go func() {
			defer readWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := h.Snapshot()
				var total uint64
				for _, c := range snap.Counts {
					total += c
				}
				if total != snap.Count {
					errs <- errTornSnapshot
					return
				}
				var sb strings.Builder
				if err := r.WritePrometheus(&sb); err != nil {
					errs <- err
					return
				}
			}
		}()
	}

	writeWG.Wait()
	close(stop)
	readWG.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}

	snap := h.Snapshot()
	if snap.Count != writers*perWriter {
		t.Fatalf("count = %d, want %d", snap.Count, writers*perWriter)
	}
	want := make([]uint64, 3)
	for w := 0; w < writers; w++ {
		for i := 0; i < perWriter; i++ {
			want[bucketOf[values[(w+i)%len(values)]]]++
		}
	}
	for i := range want {
		if snap.Counts[i] != want[i] {
			t.Fatalf("bucket %d = %d, want %d", i, snap.Counts[i], want[i])
		}
	}
}

var errTornSnapshot = &tornSnapshotErr{}

type tornSnapshotErr struct{}

func (*tornSnapshotErr) Error() string { return "torn snapshot: bucket sum != count" }
