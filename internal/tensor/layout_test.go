package tensor

import (
	"testing"
	"testing/quick"

	"spgcnn/internal/rng"
)

func randT(r *rng.RNG, dims ...int) *Tensor {
	t := New(dims...)
	t.FillUniform(r, -1, 1)
	return t
}

func TestCHWToHWCRoundTrip(t *testing.T) {
	r := rng.New(1)
	for _, dims := range [][3]int{{1, 1, 1}, {3, 5, 7}, {16, 8, 8}, {2, 1, 9}} {
		x := randT(r, dims[0], dims[1], dims[2])
		y := HWCToCHW(CHWToHWC(x))
		if MaxAbsDiff(x, y) != 0 {
			t.Fatalf("CHW->HWC->CHW not identity for %v", dims)
		}
	}
}

func TestCHWToHWCElementMapping(t *testing.T) {
	x := New(2, 3, 4) // C,H,W
	x.Set3(1, 2, 3, 42)
	y := CHWToHWC(x)
	if y.Dims[0] != 3 || y.Dims[1] != 4 || y.Dims[2] != 2 {
		t.Fatalf("HWC dims = %v, want [3 4 2]", y.Dims)
	}
	if y.At3(2, 3, 1) != 42 {
		t.Fatal("element (c=1,y=2,x=3) not mapped to (y=2,x=3,c=1)")
	}
}

func TestFCKKRoundTrip(t *testing.T) {
	r := rng.New(2)
	w := randT(r, 4, 3, 2, 5)
	back := KKFCToFCKK(FCKKToKKFC(w))
	if MaxAbsDiff(w, back) != 0 {
		t.Fatal("FCKK->KKFC->FCKK not identity")
	}
}

func TestFCKKToKKFCMapping(t *testing.T) {
	w := New(4, 3, 2, 5) // F,C,Ky,Kx
	w.Set4(2, 1, 0, 4, 7)
	y := FCKKToKKFC(w)
	if y.Dims[0] != 2 || y.Dims[1] != 5 || y.Dims[2] != 4 || y.Dims[3] != 3 {
		t.Fatalf("KKFC dims = %v, want [2 5 4 3]", y.Dims)
	}
	if y.At4(0, 4, 2, 1) != 7 {
		t.Fatal("element (f=2,c=1,ky=0,kx=4) not mapped to (ky=0,kx=4,f=2,c=1)")
	}
}

func TestStrideSplitRoundTrip(t *testing.T) {
	r := rng.New(3)
	for _, tc := range []struct{ c, h, w, sx int }{
		{1, 1, 1, 1}, {2, 4, 8, 2}, {3, 5, 7, 2}, {2, 3, 11, 4}, {1, 2, 9, 3},
	} {
		x := randT(r, tc.c, tc.h, tc.w)
		y := StrideMerge(StrideSplit(x, tc.sx), tc.w)
		if MaxAbsDiff(x, y) != 0 {
			t.Fatalf("StrideSplit/Merge not identity for %+v", tc)
		}
	}
}

func TestStrideSplitEq21(t *testing.T) {
	// Verify the paper's Eq. 21: I[c][y][x] -> I[c][y][x mod sx][x/sx].
	x := New(1, 1, 7)
	for i := 0; i < 7; i++ {
		x.Data[i] = float32(i)
	}
	y := StrideSplit(x, 3)
	// y dims: [1][1][3][3]
	if y.Dims[2] != 3 || y.Dims[3] != 3 {
		t.Fatalf("split dims = %v", y.Dims)
	}
	// x=5 -> s=2, x'=1
	if y.At4(0, 0, 2, 1) != 5 {
		t.Fatalf("element 5 mapped incorrectly: got %v", y.At4(0, 0, 2, 1))
	}
	// Zero padding at s=2, x'=2 (would be x=8, past the end).
	if y.At4(0, 0, 2, 2) != 0 {
		t.Fatal("padding not zero")
	}
}

func TestPadCropRoundTrip(t *testing.T) {
	r := rng.New(4)
	x := randT(r, 3, 5, 6)
	p := Pad(x, 2, 1)
	if p.Dims[1] != 9 || p.Dims[2] != 8 {
		t.Fatalf("padded dims = %v", p.Dims)
	}
	// Border must be zero.
	if p.At3(0, 0, 0) != 0 || p.At3(2, 8, 7) != 0 {
		t.Fatal("padding border not zero")
	}
	back := CropGrad(p, 2, 1)
	if MaxAbsDiff(x, back) != 0 {
		t.Fatal("Pad/CropGrad not identity on interior")
	}
}

func TestPadZeroIsIdentity(t *testing.T) {
	r := rng.New(5)
	x := randT(r, 2, 3, 4)
	p := Pad(x, 0, 0)
	if MaxAbsDiff(x, p) != 0 {
		t.Fatal("Pad(0,0) changed data")
	}
}

func TestLayoutPreservesSumProperty(t *testing.T) {
	// All layout transforms are permutations (possibly padding with
	// zeros), so the element sum is invariant.
	r := rng.New(6)
	sum := func(t *Tensor) float64 {
		s := 0.0
		for _, v := range t.Data {
			s += float64(v)
		}
		return s
	}
	if err := quick.Check(func(c4, h4, w4, s2 uint8) bool {
		c, h, w := int(c4%4)+1, int(h4%6)+1, int(w4%8)+1
		sx := int(s2%3) + 1
		x := randT(r, c, h, w)
		s0 := sum(x)
		near := func(a, b float64) bool { d := a - b; return d < 1e-3 && d > -1e-3 }
		return near(sum(CHWToHWC(x)), s0) && near(sum(StrideSplit(x, sx)), s0) && near(sum(Pad(x, 1, 2)), s0)
	}, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
