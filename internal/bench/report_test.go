package bench

import (
	"path/filepath"
	"strings"
	"testing"
)

func sampleReport(kind string) Report {
	e := Experiment{ID: "x", Desc: "d", Kind: kind}
	tab := Table{Title: "T", Note: "n", Columns: []string{"label", "value"}}
	tab.AddRow("row0", 10.0)
	tab.AddRow("row1", 20.0)
	return NewReport(e, Options{Scale: "quick", Workers: 2, Machine: "paper"}, []Table{tab})
}

func TestReportRoundTripAndValidate(t *testing.T) {
	r := sampleReport(KindAnalytical)
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "BENCH_x.json")
	if err := r.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Experiment != "x" || got.Schema != SchemaVersion || got.Kind != KindAnalytical {
		t.Fatalf("round trip lost identity: %+v", got)
	}
	if len(got.Tables) != 1 || len(got.Tables[0].Rows) != 2 {
		t.Fatalf("round trip lost tables: %+v", got.Tables)
	}
	if got.Host.OS == "" || got.Host.CPUs < 1 {
		t.Fatalf("host fingerprint missing: %+v", got.Host)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := map[string]func(*Report){
		"wrong schema":     func(r *Report) { r.Schema = 99 },
		"empty experiment": func(r *Report) { r.Experiment = "" },
		"bad kind":         func(r *Report) { r.Kind = "vibes" },
		"bad scale":        func(r *Report) { r.Scale = "huge" },
		"ragged row":       func(r *Report) { r.Tables[0].Rows[0] = []string{"only-one"} },
		"no tables":        func(r *Report) { r.Tables = nil },
	}
	for name, mutate := range cases {
		r := sampleReport(KindAnalytical)
		mutate(&r)
		if err := r.Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid report", name)
		}
	}
}

func TestCompareDeterministicTolerance(t *testing.T) {
	base := sampleReport(KindAnalytical)
	cur := sampleReport(KindAnalytical)
	if err := Compare(&base, &cur, 0.05); err != nil {
		t.Fatalf("identical reports rejected: %v", err)
	}
	// Inside tolerance: 10 -> 10.4 is 4% relative.
	cur.Tables[0].Rows[0][1] = "10.4"
	if err := Compare(&base, &cur, 0.05); err != nil {
		t.Fatalf("in-band drift rejected: %v", err)
	}
	// Outside tolerance.
	cur.Tables[0].Rows[0][1] = "13"
	err := Compare(&base, &cur, 0.05)
	if err == nil || !strings.Contains(err.Error(), "tolerance") {
		t.Fatalf("out-of-band drift accepted: %v", err)
	}
}

func TestCompareMeasuredIsStructural(t *testing.T) {
	base := sampleReport(KindMeasured)
	cur := sampleReport(KindMeasured)
	// Wildly different magnitude is fine for measured experiments...
	cur.Tables[0].Rows[0][1] = "123456"
	if err := Compare(&base, &cur, 0.05); err != nil {
		t.Fatalf("measured magnitude drift rejected: %v", err)
	}
	// ...but sign flips, label changes and shape changes are not.
	cur.Tables[0].Rows[0][1] = "-1"
	if err := Compare(&base, &cur, 0.05); err == nil {
		t.Fatal("sign flip accepted")
	}
	cur = sampleReport(KindMeasured)
	cur.Tables[0].Rows[1][0] = "renamed"
	if err := Compare(&base, &cur, 0.05); err == nil {
		t.Fatal("row label change accepted")
	}
	cur = sampleReport(KindMeasured)
	cur.Tables[0].Rows = cur.Tables[0].Rows[:1]
	if err := Compare(&base, &cur, 0.05); err == nil {
		t.Fatal("row count change accepted")
	}
	cur = sampleReport(KindMeasured)
	cur.Tables[0].Columns = []string{"label", "other"}
	if err := Compare(&base, &cur, 0.05); err == nil {
		t.Fatal("column header change accepted")
	}
}

func TestCompareCrossIdentityRejected(t *testing.T) {
	base := sampleReport(KindAnalytical)
	cur := sampleReport(KindAnalytical)
	cur.Experiment = "y"
	if err := Compare(&base, &cur, 0.05); err == nil {
		t.Fatal("different experiment ids compared as equal")
	}
	cur = sampleReport(KindAnalytical)
	cur.Scale = "full"
	if err := Compare(&base, &cur, 0.05); err == nil {
		t.Fatal("different scales compared as equal")
	}
}

func TestLookupAlias(t *testing.T) {
	e, err := Lookup("goodput-train")
	if err != nil {
		t.Fatal(err)
	}
	if e.ID != "goodput" {
		t.Fatalf("alias resolved to %q, want goodput", e.ID)
	}
}

func TestEveryExperimentHasKind(t *testing.T) {
	for _, e := range Experiments() {
		switch e.Kind {
		case KindAnalytical, KindModeled, KindMeasured, KindMixed:
		default:
			t.Errorf("experiment %s has invalid kind %q", e.ID, e.Kind)
		}
	}
}
