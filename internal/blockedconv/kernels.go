package blockedconv

// Hot loops of the blocked forward pass, written in the repo's
// bounds-check-eliminated streaming-slice idiom (see gemm/microkernel.go;
// this file is gated by scripts/bce_check.sh). The only compute kernel is
// gemm.MicroDot8 — the blocked layout's whole point is that the micro-
// kernel's packed-panel operands exist in memory without a packing pass.
// The per-row driver that feeds these loops lives in forward.go.

import "spgcnn/internal/gemm"

// accRow accumulates one output row of one feature block: for each output
// pixel the 8 feature lanes gain MicroDot8(in-window, panel). in advances
// by step (= Sx·8) per pixel; the window length is len(wp)/8 (= Fx·8).
func accRow(out, in, wp []float32, step int) {
	kw := len(wp) / 8
	for len(out) >= 8 && len(in) >= kw {
		s0, s1, s2, s3, s4, s5, s6, s7 := gemm.MicroDot8(in[:kw], wp)
		out[0] += s0
		out[1] += s1
		out[2] += s2
		out[3] += s3
		out[4] += s4
		out[5] += s5
		out[6] += s6
		out[7] += s7
		out = out[8:]
		if uint(step) <= uint(len(in)) {
			in = in[step:]
		} else {
			in = in[:0]
		}
	}
}

// zeroRow clears a buffer with an 8-wide streaming store.
func zeroRow(dst []float32) {
	for len(dst) >= 8 {
		dst[0] = 0
		dst[1] = 0
		dst[2] = 0
		dst[3] = 0
		dst[4] = 0
		dst[5] = 0
		dst[6] = 0
		dst[7] = 0
		dst = dst[8:]
	}
	for i := range dst {
		dst[i] = 0
	}
}
