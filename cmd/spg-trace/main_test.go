package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"spgcnn/internal/trace"
)

// update regenerates testdata/sample_trace.json and testdata/golden.txt
// from the in-test fixture:
//
//	go test ./cmd/spg-trace -run Golden -update
var update = flag.Bool("update", false, "rewrite testdata from the fixture")

// sampleCapture is a hand-stamped two-replica three-step capture: replica 1
// is the straggler twice (steps 1 and 3), conv0 runs a dense BP strategy
// (its Eq. 9 waste burns), conv1 runs the sparse kernel (waste recovered).
// Timestamps are literals, so the exported JSON is byte-deterministic.
func sampleCapture() trace.Capture {
	ms := int64(time.Millisecond)
	evs := []trace.Event{
		{Name: "step", Cat: "step", Phase: 'X', Ts: 0, Dur: 2 * ms, Replica: 0, Step: 1},
		{Name: "step", Cat: "step", Phase: 'X', Ts: 0, Dur: 5 * ms, Replica: 1, Step: 1},
		{Name: "allreduce", Cat: "sync", Phase: 'X', Ts: 5 * ms, Dur: ms, Replica: -1, Step: 1},
		{Name: "step", Cat: "step", Phase: 'X', Ts: 6 * ms, Dur: 6 * ms, Replica: 0, Step: 2},
		{Name: "step", Cat: "step", Phase: 'X', Ts: 6 * ms, Dur: 3 * ms, Replica: 1, Step: 2},
		{Name: "allreduce", Cat: "sync", Phase: 'X', Ts: 12 * ms, Dur: ms, Replica: -1, Step: 2},
		{Name: "step", Cat: "step", Phase: 'X', Ts: 13 * ms, Dur: 2 * ms, Replica: 0, Step: 3},
		{Name: "step", Cat: "step", Phase: 'X', Ts: 13 * ms, Dur: 4 * ms, Replica: 1, Step: 3},
		{Name: "allreduce", Cat: "sync", Phase: 'X', Ts: 17 * ms, Dur: ms, Replica: -1, Step: 3},
		{Name: "layer/conv0/fp/stencil", Cat: "layer", Phase: 'X', Ts: ms, Dur: ms, Replica: 0, Step: 1},
		{Name: "layer/conv0/bp/parallel-gemm", Cat: "layer", Phase: 'X', Ts: 2 * ms, Dur: 2 * ms, Replica: 0, Step: 1},
		{Name: "layer/conv1/fp/stencil", Cat: "layer", Phase: 'X', Ts: 3 * ms, Dur: ms, Replica: 0, Step: 1},
		{Name: "layer/conv1/bp/sparse", Cat: "layer", Phase: 'X', Ts: 4 * ms, Dur: ms, Replica: 0, Step: 1},
		{Name: "plan/bp/measure", Cat: "plan", Phase: 'X', Ts: 0, Dur: 3 * ms, Replica: -1, Step: 1,
			Detail: "sparse", Value: 0.001},
		{Name: "plan/bp/hit", Cat: "plan", Phase: 'i', Ts: 6 * ms, Replica: -1, Step: 2, Detail: "sparse"},
		{Name: "grow", Cat: "arena", Phase: 'i', Ts: ms, Replica: 0, Step: 1, Value: 4096},
		{Name: "epoch", Cat: "epoch", Phase: 'i', Ts: 18 * ms, Replica: -1, Step: 3, Value: 8},
		{Name: "sparsity/conv0", Cat: "sparsity", Phase: 'i', Ts: 18 * ms, Replica: -1, Step: 3,
			Detail: "conv0", Value: 0.5},
		{Name: "sparsity/conv1", Cat: "sparsity", Phase: 'i', Ts: 18 * ms, Replica: -1, Step: 3,
			Detail: "conv1", Value: 0.75},
	}
	return trace.Capture{
		Events: evs,
		Layers: []trace.LayerMeta{
			{Name: "conv0", FPFlops: 1000, BPFlops: 2000},
			{Name: "conv1", FPFlops: 500, BPFlops: 1000},
		},
		Mode:  "full",
		Stats: trace.Stats{Emitted: uint64(len(evs))},
	}
}

// TestSampleTraceInSync pins testdata/sample_trace.json as the exact
// deterministic export of the fixture, so the committed sample can never
// drift from the exporter.
func TestSampleTraceInSync(t *testing.T) {
	var buf bytes.Buffer
	if err := trace.WriteJSON(&buf, sampleCapture()); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "sample_trace.json")
	if *update {
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("testdata/sample_trace.json is stale; regenerate with -update\n--- exported ---\n%s", buf.String())
	}
}

// TestRunGolden pins the full report rendering byte-for-byte. The sample
// capture is deterministic, so any diff is an intentional format change:
// regenerate both files with
//
//	go test ./cmd/spg-trace -run Golden -update
func TestRunGolden(t *testing.T) {
	goldenPath := filepath.Join("testdata", "golden.txt")
	var out strings.Builder
	if err := run([]string{"-top", "5", filepath.Join("testdata", "sample_trace.json")}, &out); err != nil {
		t.Fatal(err)
	}
	if *update {
		if err := os.WriteFile(goldenPath, []byte(out.String()), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatal(err)
	}
	if out.String() != string(want) {
		t.Errorf("output diverged from testdata/golden.txt\n--- got ---\n%s\n--- want ---\n%s",
			out.String(), want)
	}
}

// TestRunJSONGolden pins the -json machine-readable summary byte-for-byte
// against testdata/golden.json; regenerate with -update as for the text
// golden. It also re-decodes the output to check it is valid JSON with the
// expected top-level accounting, so the golden can't silently pin garbage.
func TestRunJSONGolden(t *testing.T) {
	goldenPath := filepath.Join("testdata", "golden.json")
	var out strings.Builder
	if err := run([]string{"-json", "-top", "5", filepath.Join("testdata", "sample_trace.json")}, &out); err != nil {
		t.Fatal(err)
	}
	if *update {
		if err := os.WriteFile(goldenPath, []byte(out.String()), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatal(err)
	}
	if out.String() != string(want) {
		t.Errorf("-json output diverged from testdata/golden.json\n--- got ---\n%s\n--- want ---\n%s",
			out.String(), want)
	}
	var s jsonSummary
	if err := json.Unmarshal([]byte(out.String()), &s); err != nil {
		t.Fatalf("-json output is not valid JSON: %v", err)
	}
	if s.Schema != 1 || s.Events != 19 || s.Layers != 2 || s.Replicas != 2 {
		t.Errorf("summary header = %+v", s)
	}
	if len(s.TopSpans) != 5 {
		t.Errorf("top spans = %d, want 5", len(s.TopSpans))
	}
	if s.Stragglers == nil || len(s.Stragglers.Rows) != 2 || s.Stragglers.SlowestReplica != 1 {
		t.Errorf("stragglers = %+v", s.Stragglers)
	}
	if s.Waste == nil || len(s.Waste.Rows) != 2 {
		t.Fatalf("waste = %+v", s.Waste)
	}
	// conv0 runs a dense BP strategy: its Eq. 9 waste is burned. conv1's
	// sparse kernel recovers the gap.
	if r := s.Waste.Rows[0]; r.Layer != "conv0" || r.BurnedFlops != r.WastedFlops || r.WastedFlops == 0 {
		t.Errorf("conv0 waste row = %+v", r)
	}
	if r := s.Waste.Rows[1]; r.Layer != "conv1" || r.BurnedFlops != 0 || r.WastedFlops == 0 {
		t.Errorf("conv1 waste row = %+v", r)
	}
}

// TestRunCheck covers the validation-only mode used by scripts/trace_check.sh.
func TestRunCheck(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-check", filepath.Join("testdata", "sample_trace.json")}, &out); err != nil {
		t.Fatal(err)
	}
	if got, want := out.String(), "trace OK: 19 events, 2 layers, mode full\n"; got != want {
		t.Errorf("-check output = %q, want %q", got, want)
	}
}

// TestRunErrors verifies bad inputs surface as errors, not panics.
func TestRunErrors(t *testing.T) {
	var out strings.Builder
	if err := run([]string{}, &out); err == nil {
		t.Error("expected a usage error with no arguments")
	}
	if err := run([]string{filepath.Join("testdata", "nope.json")}, &out); err == nil {
		t.Error("expected an error for a missing file")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{bad}, &out); err == nil {
		t.Error("expected an error for malformed JSON")
	}
}
