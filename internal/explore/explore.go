// Package explore renders the paper's §3 design-space analysis for a whole
// network before any measurement: every conv layer characterized (AIT,
// unfold degradation, Fig. 1 region), its stencil register tile enumerated,
// and the planner's analytical strategy ranking printed — with the
// capability seam visible as candidates that decline the layer's
// generalized spec. The per-convolution analysis spg-plan always offered,
// automated over a parsed netdef.
package explore

import (
	"fmt"
	"io"
	"strings"

	"spgcnn/internal/ait"
	"spgcnn/internal/conv"
	"spgcnn/internal/core"
	"spgcnn/internal/machine"
	"spgcnn/internal/netdef"
	"spgcnn/internal/nn"
	"spgcnn/internal/plan"
	"spgcnn/internal/stencil"
)

// Options parameterizes the report. The zero value models the paper's
// machine: 16 cores, 85% BP error sparsity, dense weights.
type Options struct {
	// Workers is the core count the strategy ranking models (default 16,
	// the paper's Xeon).
	Workers int
	// Sparsity is the assumed BP error-gradient sparsity driving the
	// sparse-column region placement and the sparse BP candidate (default
	// 0.85; pass a negative value for an explicitly dense analysis).
	Sparsity float64
	// WSparsity is the assumed FP weight sparsity (default 0, dense).
	WSparsity float64
	// Machine is the model the ranking runs on (default machine.Paper()).
	Machine *machine.Machine
}

func (o Options) withDefaults() Options {
	if o.Workers < 1 {
		o.Workers = 16
	}
	if o.Sparsity == 0 {
		o.Sparsity = 0.85
	} else if o.Sparsity < 0 {
		o.Sparsity = 0
	}
	if o.Machine == nil {
		m := machine.Paper()
		o.Machine = &m
	}
	return o
}

// regionLabels names the six Fig. 1 cells with their axis coordinates.
var regionLabels = [6]string{
	"Region 0 (high AIT, dense)",
	"Region 1 (high AIT, sparse)",
	"Region 2 (moderate AIT, dense)",
	"Region 3 (moderate AIT, sparse)",
	"Region 4 (low AIT, dense)",
	"Region 5 (low AIT, sparse)",
}

// Report writes the design-space report for one parsed network. Everything
// printed is a pure function of the netdef and the options (the machine
// model defaults to the paper's), so the rendering is golden-testable.
func Report(w io.Writer, def *netdef.NetDef, opts Options) error {
	opts = opts.withDefaults()
	// Build propagates shapes layer to layer and runs the same spec
	// validation training would; one worker keeps it cheap — the ranking
	// models opts.Workers cores, no kernel ever runs.
	net, err := netdef.Build(def, netdef.BuildOptions{Workers: 1})
	if err != nil {
		return err
	}
	convs := net.ConvLayers()
	name := def.Name
	if name == "" {
		name = "(unnamed)"
	}
	fmt.Fprintf(w, "net %s  input %dx%dx%d  (%d conv layers of %d total)\n",
		name, def.Input.Channels, def.Input.Height, def.Input.Width,
		len(convs), len(net.Layers()))
	fmt.Fprintf(w, "modeled at p=%d, %.0f%% BP error sparsity, %.0f%% weight sparsity\n",
		opts.Workers, opts.Sparsity*100, opts.WSparsity*100)

	var totalFlops int64
	for _, c := range convs {
		totalFlops += c.Spec().FlopsFP()
		reportLayer(w, c, opts)
	}

	// The whole-net Fig. 1 placement: each conv appears in its dense-phase
	// cell and, when the assumed sparsity moves it, its sparse-phase cell.
	fmt.Fprintf(w, "\nFig. 1 placement (dense FP / BP at %.0f%% sparsity):\n", opts.Sparsity*100)
	var placed [6][]string
	for _, c := range convs {
		s := c.Spec()
		dense := ait.Classify(s, 0)
		placed[int(dense)] = append(placed[int(dense)], c.Name())
		if sparse := ait.Classify(s, opts.Sparsity); sparse != dense {
			placed[int(sparse)] = append(placed[int(sparse)], c.Name())
		}
	}
	for i, label := range regionLabels {
		members := "-"
		if len(placed[i]) > 0 {
			members = strings.Join(placed[i], ", ")
		}
		fmt.Fprintf(w, "  %-31s %s\n", label, members)
	}
	fmt.Fprintf(w, "total conv flops (FP, per image)  %d\n", totalFlops)
	return nil
}

func reportLayer(w io.Writer, c *nn.Conv, opts Options) {
	s := c.Spec()
	a := ait.Analyze(s)
	dense := ait.Classify(s, 0)
	sparse := ait.Classify(s, opts.Sparsity)
	fmt.Fprintf(w, "\nlayer %s  %v\n", c.Name(), s)
	fmt.Fprintf(w, "  flops (FP)      %d\n", s.FlopsFP())
	fmt.Fprintf(w, "  intrinsic AIT   %.1f   unfold+GEMM AIT %.1f  (r = %.3f)\n",
		a.IntrinsicAIT, a.UnfoldAIT, a.Ratio)
	fmt.Fprintf(w, "  region          dense %v, sparse %v\n", dense, sparse)
	fmt.Fprintf(w, "  prescribed      %v\n", sparse.Props().Recommendations)
	fmt.Fprintf(w, "  stencil tile    %v\n", stencil.ChoosePlan(s))
	rankPhase(w, "fp", s, opts.WSparsity, opts, core.FPStrategies(opts.Workers))
	rankPhase(w, "bp", s, opts.Sparsity, opts, core.BPStrategies(opts.Workers))
}

// rankPhase prints one phase's analytical candidate ranking, split by the
// capability seam: strategies whose engines decline the spec never rank —
// exactly the set the planner would refuse to measure.
func rankPhase(w io.Writer, phase string, s conv.Spec, sparsity float64,
	opts Options, cands []core.Strategy) {
	supported := make([]core.Strategy, 0, len(cands))
	var declined []string
	for _, st := range cands {
		if st.Supports(s) {
			supported = append(supported, st)
		} else {
			declined = append(declined, st.Name)
		}
	}
	names := make([]string, len(supported))
	for i, st := range supported {
		names[i] = st.Name
	}
	scores := plan.ModelRank(*opts.Machine, s, phase, sparsity, opts.Workers, names)
	plan.MarkPruned(supported, scores, plan.DefaultPruneRatio, s, sparsity)
	for i, sc := range scores {
		head := "  "
		if i == 0 {
			head = phase
		}
		note := ""
		if !sc.Modeled {
			note = "  (unmodeled)"
		} else if sc.Pruned {
			note = "  (pruned before measurement)"
		}
		fmt.Fprintf(w, "  %-3s %d. %-18s %8.1f%s\n", head, i+1, sc.Strategy, sc.GFlopsPerCore, note)
	}
	if len(declined) > 0 {
		fmt.Fprintf(w, "      declined: %s\n", strings.Join(declined, ", "))
	}
}
