package bench

import (
	"fmt"
	"time"

	"spgcnn/internal/ait"
	"spgcnn/internal/netdef"
	"spgcnn/internal/nn"
	"spgcnn/internal/rng"
	"spgcnn/internal/tensor"
)

// RunZoo trains every workload-zoo topology for a few steps under the
// planner and reports end-to-end step time plus the per-layer strategy
// verdicts — the generalized-spec counterpart of the Fig. 9 end-to-end
// table: depthwise/grouped, dilated, 1×1-heavy and residual geometries all
// schedule through the same capability-seam-filtered candidate set, so a
// spec no optimized engine claims still trains (via the reference
// fallback) instead of crashing.
func RunZoo(o Options) []Table {
	steps, batch := 2, 4
	if o.full() {
		steps, batch = 8, 8
	}
	w := o.workers()

	t1 := Table{
		Title: "Workload zoo: end-to-end training step under the planner (measured)",
		Note: fmt.Sprintf("%d timed steps after one warmup step (the planner measures and deploys "+
			"during warmup), batch %d, %d workers", steps, batch, w),
		Columns: []string{"Net", "convs", "step ms", "images/s", "conv flops/img"},
	}
	t2 := Table{
		Title: "Workload zoo: per-layer planner selections (measured)",
		Note: "regions are the Fig. 1 dense/sparse placement; strategies are this host's " +
			"measured verdicts over the capability-seam-filtered candidates",
		Columns: []string{"Layer", "spec", "region", "fp strategy", "bp strategy"},
	}

	for _, z := range netdef.Zoo() {
		net, elapsed, err := trainZooNet(z.Src, w, batch, steps)
		if err != nil {
			t1.AddRow(z.Name, "error: "+err.Error(), "", "", "")
			continue
		}
		convs := net.ConvLayers()
		var flops int64
		for _, c := range convs {
			flops += c.Spec().FlopsFP()
		}
		t1.AddRow(z.Name,
			len(convs),
			float64(elapsed)/float64(time.Millisecond)/float64(steps),
			float64(batch*steps)/elapsed.Seconds(),
			flops)
		choices := net.TuningChoices()
		for _, c := range convs {
			s := c.Spec()
			ch := choices[c.Name()]
			t2.AddRow(z.Name+"/"+c.Name(),
				s.String(),
				fmt.Sprintf("%v / %v", ait.Classify(s, 0), ait.Classify(s, 1)),
				ch.FP, ch.BP)
		}
	}
	return []Table{t1, t2}
}

// trainZooNet builds one zoo net and times `steps` full training steps
// after a warmup step that absorbs the planner's measurement passes.
func trainZooNet(src string, workers, batch, steps int) (*nn.Network, time.Duration, error) {
	def, err := netdef.Parse(src)
	if err != nil {
		return nil, 0, err
	}
	net, err := netdef.Build(def, netdef.BuildOptions{Workers: workers, Seed: 0x500})
	if err != nil {
		return nil, 0, err
	}
	r := rng.New(17)
	ins := make([]*tensor.Tensor, batch)
	ds := make([]*tensor.Tensor, batch)
	for i := range ins {
		ins[i] = tensor.New(net.InDims()...)
		ins[i].FillNormal(r, 0, 1)
		ds[i] = tensor.New(net.OutDims()...)
	}
	var loss nn.SoftmaxXent
	step := func() {
		logits := net.Forward(ins)
		for i := range logits {
			loss.Loss(logits[i], i%10, ds[i])
		}
		net.Backward(ds, ins)
		net.ApplyGrads(0.01, batch)
	}
	step()
	start := time.Now()
	for i := 0; i < steps; i++ {
		step()
	}
	return net, time.Since(start), nil
}
