// Package serve is spg-CNN's inference serving path: a forward-only model
// replicated across worker goroutines behind a dynamic-batching admission
// queue, exposed over HTTP.
//
// The queue is where the paper's §3 latency/goodput tradeoff becomes a
// serving policy: single-image requests coalesce into batches (flushed on
// size or deadline), larger batches amortize per-forward overhead and give
// the planner real batch-parallel work, and the padding a ragged batch
// needs is accounted as wasted flops — the serving analogue of Eq. 9's
// goodput discount. Backpressure is a bounded queue: overflow rejects with
// 503 + Retry-After rather than building an unbounded latency tail.
package serve

import (
	"errors"
	"sync"
	"time"
)

// ErrQueueFull rejects a Submit when the queue holds QueueCap requests —
// the backpressure signal the HTTP layer turns into 503 + Retry-After.
var ErrQueueFull = errors.New("serve: admission queue full")

// ErrClosed rejects a Submit after Close. Requests admitted before Close
// are still drained and completed.
var ErrClosed = errors.New("serve: server shutting down")

// queue is the dynamic-batching admission queue. Submitters append
// requests; batch workers call next, which blocks until a batch is ready:
// maxBatch requests are waiting (size trigger), the oldest waiting request
// is maxDelay old (deadline trigger), or the queue is closed (drain —
// whatever is pending flushes immediately).
type queue struct {
	maxBatch int
	maxDelay time.Duration
	cap      int

	mu      sync.Mutex
	cond    *sync.Cond
	pending []*request
	closed  bool
	timer   *time.Timer
}

func newQueue(maxBatch, capacity int, maxDelay time.Duration) *queue {
	if maxBatch < 1 {
		maxBatch = 1
	}
	if capacity < maxBatch {
		capacity = maxBatch
	}
	q := &queue{maxBatch: maxBatch, maxDelay: maxDelay, cap: capacity}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// submit admits one request, stamping its enqueue time.
func (q *queue) submit(r *request) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrClosed
	}
	if len(q.pending) >= q.cap {
		return ErrQueueFull
	}
	r.enq = time.Now()
	q.pending = append(q.pending, r)
	if len(q.pending) >= q.maxBatch {
		q.cond.Broadcast()
	} else if len(q.pending) == 1 {
		// First waiter: wake a batch worker so it can arm the deadline (or
		// cut immediately when maxDelay is zero — greedy batching).
		q.cond.Broadcast()
	}
	return nil
}

// next blocks until a batch is ready and returns it. ok is false only when
// the queue is closed AND drained: every admitted request is part of
// exactly one returned batch.
func (q *queue) next() (batch []*request, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if len(q.pending) > 0 {
			if q.closed || len(q.pending) >= q.maxBatch || q.deadlineReached() {
				return q.cut(), true
			}
			q.armTimer()
		} else if q.closed {
			return nil, false
		}
		q.cond.Wait()
	}
}

// deadlineReached reports whether the oldest pending request has waited
// out the coalescing delay. Called with q.mu held.
func (q *queue) deadlineReached() bool {
	if q.maxDelay <= 0 {
		return true // greedy: cut whatever accumulated while workers were busy
	}
	return time.Since(q.pending[0].enq) >= q.maxDelay
}

// armTimer (re)arms the flush timer for the oldest pending request's
// deadline. Called with q.mu held; the timer callback only broadcasts, so
// waiters re-evaluate the deadline themselves (a timer that fires a hair
// early just re-arms).
func (q *queue) armTimer() {
	d := q.maxDelay - time.Since(q.pending[0].enq)
	if d < 0 {
		d = 0
	}
	if q.timer == nil {
		q.timer = time.AfterFunc(d, func() {
			q.mu.Lock()
			q.cond.Broadcast()
			q.mu.Unlock()
		})
		return
	}
	q.timer.Reset(d)
}

// cut removes and returns the oldest min(pending, maxBatch) requests.
// Called with q.mu held.
func (q *queue) cut() []*request {
	n := len(q.pending)
	if n > q.maxBatch {
		n = q.maxBatch
	}
	batch := make([]*request, n)
	copy(batch, q.pending[:n])
	rest := copy(q.pending, q.pending[n:])
	for i := rest; i < len(q.pending); i++ {
		q.pending[i] = nil
	}
	q.pending = q.pending[:rest]
	if rest > 0 {
		// More work waiting: another worker may be able to cut right away.
		q.cond.Broadcast()
	}
	return batch
}

// close marks the queue draining: no new admissions, pending requests
// flush to workers immediately.
func (q *queue) close() {
	q.mu.Lock()
	q.closed = true
	if q.timer != nil {
		q.timer.Stop()
	}
	q.cond.Broadcast()
	q.mu.Unlock()
}

// depth reports how many requests are waiting (the queue-depth gauge).
func (q *queue) depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.pending)
}
