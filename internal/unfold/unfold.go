// Package unfold implements the input-unfolding step (im2col) of the
// paper's baseline execution method, Unfold+Parallel-GEMM (§2.3, Fig. 2b),
// together with its adjoint fold (col2im) needed by back-propagation.
//
// Unfolding flattens the inputs of each kernel application into a row
// vector and stacks the rows, turning the convolution into a matrix
// multiply O = W·Uᵀ (Fig. 2c). The cost — the reason §3.1 exists — is that
// each input element is replicated up to Fx·Fy times, inflating memory
// traffic and destroying the convolution's intrinsic arithmetic intensity.
//
// The generalized spec threads through here naturally: padding taps
// unfold as zeros, dilated taps gather strided input elements, and
// grouped convolution unfolds one U per group (Im2colGroup) whose columns
// cover only that group's channels — turning the convolution into G
// independent (Nf/G) × Cols GEMMs.
package unfold

import (
	"fmt"

	"spgcnn/internal/conv"
	"spgcnn/internal/gemm"
	"spgcnn/internal/tensor"
)

// Rows returns the number of rows of the unfolded matrix U: one per output
// pixel (OutY·OutX).
func Rows(s conv.Spec) int { return s.OutY() * s.OutX() }

// Cols returns the number of columns of U: one per (channel, ky, kx) tap
// of a single group, i.e. (Nc/G)·Fy·Fx (Nc·Fy·Fx when ungrouped).
func Cols(s conv.Spec) int { return s.GroupNc() * s.Fy * s.Fx }

func checkU(s conv.Spec, u *gemm.Matrix) {
	if u.Rows != Rows(s) || u.Cols != Cols(s) {
		panic(fmt.Sprintf("unfold: U is %dx%d, want %dx%d", u.Rows, u.Cols, Rows(s), Cols(s)))
	}
}

func checkGroup(s conv.Spec, g int) {
	if g < 0 || g >= s.G() {
		panic(fmt.Sprintf("unfold: group %d out of range for %v (G=%d)", g, s, s.G()))
	}
}

// Im2col unfolds input in ([Nc][Ny][Nx]) into the matrix U
// (Rows(s) × Cols(s)): row (y·OutX + x) holds, channel-major then ky then
// kx, the input window that produces output pixel (y, x). This matches the
// paper's Fig. 2b, where each channel's unfolded block is stacked
// left-to-right. Grouped specs must use Im2colGroup per group.
func Im2col(s conv.Spec, u *gemm.Matrix, in *tensor.Tensor) {
	if s.G() != 1 {
		panic(fmt.Sprintf("unfold: Im2col on grouped spec %v; use Im2colGroup", s))
	}
	Im2colGroup(s, 0, u, in)
}

// Im2colGroup unfolds group g's channels of input in into U
// (Rows(s) × Cols(s)): row (y·OutX + x) holds, group-relative-channel-major
// then ky then kx, the (possibly padded/dilated) input window feeding
// output pixel (y, x). Taps that fall outside the input unfold as zeros.
func Im2colGroup(s conv.Spec, g int, u *gemm.Matrix, in *tensor.Tensor) {
	s.MustValidate()
	conv.CheckInput(s, in)
	checkU(s, u)
	checkGroup(s, g)
	oy, ox := s.OutY(), s.OutX()
	gnc := s.GroupNc()
	cbase := g * gnc
	fxy := s.Fy * s.Fx
	dx, dy := s.DilX(), s.DilY()
	for y := 0; y < oy; y++ {
		for x := 0; x < ox; x++ {
			dst := u.Row(y*ox + x)
			ix0 := x*s.Sx - s.Px
			for cc := 0; cc < gnc; cc++ {
				base := cc * fxy
				for ky := 0; ky < s.Fy; ky++ {
					drow := dst[base+ky*s.Fx : base+(ky+1)*s.Fx]
					iy := y*s.Sy + ky*dy - s.Py
					if iy < 0 || iy >= s.Ny {
						zeroRow(drow)
						continue
					}
					irow := in.Row3(cbase+cc, iy)
					if dx == 1 && ix0 >= 0 && ix0+s.Fx <= s.Nx {
						copy(drow, irow[ix0:ix0+s.Fx])
						continue
					}
					for kx := 0; kx < s.Fx; kx++ {
						ix := ix0 + kx*dx
						if ix < 0 || ix >= s.Nx {
							drow[kx] = 0
						} else {
							drow[kx] = irow[ix]
						}
					}
				}
			}
		}
	}
}

// zeroRow clears one kernel row of an unfolded destination.
func zeroRow(dst []float32) {
	for i := range dst {
		dst[i] = 0
	}
}

// NewU allocates the unfolded matrix for s (one group's worth).
func NewU(s conv.Spec) *gemm.Matrix { return gemm.NewMatrix(Rows(s), Cols(s)) }

// Im2colBlocked unfolds a channel-blocked input ([ceil(Nc/8)][Ny][Nx][8],
// tensor.NCHW8) into the same canonical U matrix Im2col produces from an
// NCHW input — the gather-at-boundary adapter that lets the unfold+GEMM
// engines consume blocked activations without a separate layout round
// trip through input space. Column order stays (c, ky, kx), so downstream
// GEMM results are bit-identical to the NCHW path. Grouped specs use
// Im2colBlockedGroup per group.
func Im2colBlocked(s conv.Spec, u *gemm.Matrix, in *tensor.Tensor) {
	if s.G() != 1 {
		panic(fmt.Sprintf("unfold: Im2colBlocked on grouped spec %v; use Im2colBlockedGroup", s))
	}
	Im2colBlockedGroup(s, 0, u, in)
}

// Im2colBlockedGroup is Im2colGroup reading from channel-blocked (NCHW8)
// storage. Group channels are addressed by their global channel index, so
// a group boundary may fall inside an 8-lane block (and tail lanes past
// Nc are never read) — the lane gather handles both for free.
func Im2colBlockedGroup(s conv.Spec, g int, u *gemm.Matrix, in *tensor.Tensor) {
	s.MustValidate()
	conv.CheckBlockedInput(s, in)
	checkU(s, u)
	checkGroup(s, g)
	oy, ox := s.OutY(), s.OutX()
	gnc := s.GroupNc()
	cbase := g * gnc
	fxy := s.Fy * s.Fx
	dx, dy := s.DilX(), s.DilY()
	rowN := s.Nx * tensor.Block
	for y := 0; y < oy; y++ {
		for x := 0; x < ox; x++ {
			dst := u.Row(y*ox + x)
			ix0 := x*s.Sx - s.Px
			for cc := 0; cc < gnc; cc++ {
				c := cbase + cc
				cb, cl := c/tensor.Block, c%tensor.Block
				base := cc * fxy
				for ky := 0; ky < s.Fy; ky++ {
					drow := dst[base+ky*s.Fx : base+(ky+1)*s.Fx]
					iy := y*s.Sy + ky*dy - s.Py
					if iy < 0 || iy >= s.Ny {
						zeroRow(drow)
						continue
					}
					if dx == 1 && ix0 >= 0 && ix0+s.Fx <= s.Nx {
						iOff := (cb*s.Ny+iy)*rowN + ix0*tensor.Block + cl
						gatherLane(drow, in.Data[iOff:])
						continue
					}
					for kx := 0; kx < s.Fx; kx++ {
						ix := ix0 + kx*dx
						if ix < 0 || ix >= s.Nx {
							drow[kx] = 0
						} else {
							drow[kx] = in.Data[(cb*s.Ny+iy)*rowN+ix*tensor.Block+cl]
						}
					}
				}
			}
		}
	}
}

// gatherLane copies one channel lane out of blocked storage: dst[i] =
// src[i·Block], for len(dst) elements.
func gatherLane(dst, src []float32) {
	for len(dst) >= 1 && len(src) >= 1 {
		dst[0] = src[0]
		dst = dst[1:]
		if uint(tensor.Block) <= uint(len(src)) {
			src = src[tensor.Block:]
		} else {
			src = src[:0]
		}
	}
}

// Col2im folds the matrix U back into input space, ACCUMULATING overlapping
// windows: in[c, y·sy+ky·dy−py, x·sx+kx·dx−px] += U[(y,x), (c,ky,kx)]. It
// is the exact adjoint of Im2col (padding taps are dropped), which is what
// makes Unfold+GEMM back-propagation (EI = fold(Wᵀ·EO)) correct. The
// destination is zeroed first; grouped specs use Col2imGroup, which
// accumulates without zeroing so the caller zeroes once across groups.
func Col2im(s conv.Spec, in *tensor.Tensor, u *gemm.Matrix) {
	if s.G() != 1 {
		panic(fmt.Sprintf("unfold: Col2im on grouped spec %v; use Col2imGroup", s))
	}
	in.Zero()
	Col2imGroup(s, 0, in, u)
}

// Col2imGroup folds group g's unfolded matrix back into input space,
// accumulating into in WITHOUT zeroing it first (the caller zeroes once,
// then folds each group).
func Col2imGroup(s conv.Spec, g int, in *tensor.Tensor, u *gemm.Matrix) {
	s.MustValidate()
	conv.CheckInput(s, in)
	checkU(s, u)
	checkGroup(s, g)
	oy, ox := s.OutY(), s.OutX()
	gnc := s.GroupNc()
	cbase := g * gnc
	fxy := s.Fy * s.Fx
	dx, dy := s.DilX(), s.DilY()
	for y := 0; y < oy; y++ {
		for x := 0; x < ox; x++ {
			src := u.Row(y*ox + x)
			ix0 := x*s.Sx - s.Px
			for cc := 0; cc < gnc; cc++ {
				base := cc * fxy
				for ky := 0; ky < s.Fy; ky++ {
					iy := y*s.Sy + ky*dy - s.Py
					if iy < 0 || iy >= s.Ny {
						continue
					}
					irow := in.Row3(cbase+cc, iy)
					srow := src[base+ky*s.Fx:]
					if dx == 1 && ix0 >= 0 && ix0+s.Fx <= s.Nx {
						addTo(irow[ix0:ix0+s.Fx], srow)
						continue
					}
					for kx := 0; kx < s.Fx; kx++ {
						ix := ix0 + kx*dx
						if ix >= 0 && ix < s.Nx {
							irow[ix] += srow[kx]
						}
					}
				}
			}
		}
	}
}

// addTo accumulates dst[i] += src[i] over len(dst) elements in streaming
// form, so the element loop compiles with no bounds checks (src must be at
// least as long as dst).
func addTo(dst, src []float32) {
	n := len(dst)
	if n > len(src) {
		panic("unfold: addTo source too short")
	}
	src = src[:n]
	for len(dst) >= 4 && len(src) >= 4 {
		dst[0] += src[0]
		dst[1] += src[1]
		dst[2] += src[2]
		dst[3] += src[3]
		dst = dst[4:]
		src = src[4:]
	}
	for len(dst) >= 1 && len(src) >= 1 {
		dst[0] += src[0]
		dst = dst[1:]
		src = src[1:]
	}
}

// WeightMatrix flattens weights [Nf][Nc/G][Fy][Fx] into the Nf × Cols(s)
// matrix of Fig. 2c: row f is feature f's weights, channel-major. Because
// the canonical weight layout is already row-major in exactly this order,
// this is a reshape (the returned matrix aliases w's data). For grouped
// specs, rows [g·Nf/G, (g+1)·Nf/G) form group g's weight matrix.
func WeightMatrix(s conv.Spec, w *tensor.Tensor) *gemm.Matrix {
	conv.CheckWeights(s, w)
	return gemm.FromSlice(w.Data, s.Nf, Cols(s))
}

// GroupWeightMatrix views group g's slab of the weight tensor as its
// (Nf/G) × Cols(s) matrix (aliasing w's data).
func GroupWeightMatrix(s conv.Spec, g int, w *tensor.Tensor) *gemm.Matrix {
	conv.CheckWeights(s, w)
	checkGroup(s, g)
	gnf := s.GroupNf()
	stride := gnf * Cols(s)
	return gemm.FromSlice(w.Data[g*stride:(g+1)*stride], gnf, Cols(s))
}

// OutputMatrix views output tensor o ([Nf][OutY][OutX]) as the Nf × Rows(s)
// matrix O of Fig. 2c (aliasing o's data).
func OutputMatrix(s conv.Spec, o *tensor.Tensor) *gemm.Matrix {
	conv.CheckOutput(s, o)
	return gemm.FromSlice(o.Data, s.Nf, Rows(s))
}

// GroupOutputMatrix views feature group g's slab of output tensor o as its
// (Nf/G) × Rows(s) matrix (aliasing o's data).
func GroupOutputMatrix(s conv.Spec, g int, o *tensor.Tensor) *gemm.Matrix {
	conv.CheckOutput(s, o)
	checkGroup(s, g)
	gnf := s.GroupNf()
	stride := gnf * Rows(s)
	return gemm.FromSlice(o.Data[g*stride:(g+1)*stride], gnf, Rows(s))
}
