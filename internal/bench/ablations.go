package bench

import (
	"fmt"

	"spgcnn/internal/ait"
	"spgcnn/internal/conv"
	"spgcnn/internal/fftconv"
	"spgcnn/internal/machine"
	"spgcnn/internal/rng"
	"spgcnn/internal/spkernel"
	"spgcnn/internal/stencil"
	"spgcnn/internal/unfoldgemm"
)

// The ablation experiments isolate the design choices DESIGN.md §6 calls
// out. All but the machine-sensitivity study run real kernels.

// RunAblationSpatial measures stencil-vs-unfold FP speedup as the spatial
// extent grows with channels/features held fixed — isolating the unfolded
// matrix's cache footprint, which is where direct convolution's avoided
// memory traffic pays off (§3.1's |U| replication term). The crossover is
// the executable, scalar-Go counterpart of the paper's Fig. 4d advantage.
func RunAblationSpatial(o Options) []Table {
	reps := 3
	sizes := []int{16, 32, 64, 128, 256}
	if o.full() {
		reps = 5
		sizes = append(sizes, 384)
	}
	t := Table{
		Title:   "Ablation: Stencil vs Unfold+GEMM FP speedup vs spatial extent (measured)",
		Note:    "Nf=8, Nc=3, F=5, stride 1; |U| grows with N^2 and leaves cache while the stencil never materializes it",
		Columns: []string{"N", "|U| (KiB)", "Unfold ms", "Stencil ms", "Speedup"},
	}
	r := rng.New(0xAB1)
	for _, n := range sizes {
		s := conv.Square(n, 8, 3, 5, 1)
		in := conv.RandInput(r, s)
		w := conv.RandWeights(r, s)
		out := conv.NewOutput(s)
		base := unfoldgemm.New(s, 1)
		stk := stencil.New(s)
		tBase := minTime(reps, func() { base.Forward(out, in, w) })
		tStencil := minTime(reps, func() { stk.Forward(out, in, w) })
		t.AddRow(n, float64(s.UnfoldedSize()*4)/1024, tBase*1e3, tStencil*1e3, tBase/tStencil)
	}
	return []Table{t}
}

// RunAblationFFT measures the kernel-size trade-off between direct
// methods and FFT-based convolution (the related-work technique): the FFT
// amortizes its transforms over more taps as the kernel grows, closing the
// gap with — and for large enough kernels overtaking — direct convolution,
// while small kernels are firmly direct-method territory (why the paper's
// Stencil-Kernel, not an FFT, is the small-conv answer).
func RunAblationFFT(o Options) []Table {
	reps := 3
	if o.full() {
		reps = 5
	}
	t := Table{
		Title:   "Ablation: FFT vs direct convolution vs kernel size (measured ms, single core)",
		Note:    "64x64 input, 4 features, 4 channels, stride 1",
		Columns: []string{"F", "Unfold+GEMM", "Stencil", "FFT", "FFT/best-direct"},
	}
	r := rng.New(0xAB4)
	for _, f := range []int{3, 5, 9, 15, 21, 31} {
		s := conv.Square(64, 4, 4, f, 1)
		in := conv.RandInput(r, s)
		w := conv.RandWeights(r, s)
		out := conv.NewOutput(s)
		ug := unfoldgemm.New(s, 1)
		st := stencil.New(s)
		ff := fftconv.New(s)
		tU := minTime(reps, func() { ug.Forward(out, in, w) })
		tS := minTime(reps, func() { st.Forward(out, in, w) })
		tF := minTime(reps, func() { ff.Forward(out, in, w) })
		best := tU
		if tS < best {
			best = tS
		}
		t.AddRow(f, tU*1e3, tS*1e3, tF*1e3, tF/best)
	}
	return []Table{t}
}

// RunAblationRTile measures the stencil kernel at every register-tile
// height against the basic-block generator's choice — validating (or
// indicting) the §4.3 load-minimization model on this machine.
func RunAblationRTile(o Options) []Table {
	reps := 3
	if o.full() {
		reps = 5
	}
	t := Table{
		Title:   "Ablation: stencil register-tile height (measured GFlops, single core)",
		Note:    "chosen = the basic-block generator's pick for this implementation",
		Columns: []string{"Spec", "ry=1", "ry=2", "ry=3", "ry=4", "chosen"},
	}
	r := rng.New(0xAB2)
	specs := []conv.Spec{
		conv.Square(28, 20, 1, 5, 1), // MNIST L0
		conv.Square(36, 64, 3, 5, 1), // CIFAR L0
		conv.Square(64, 16, 8, 3, 1), // small-kernel case
	}
	for _, s := range specs {
		in := conv.RandInput(r, s)
		w := conv.RandWeights(r, s)
		out := conv.NewOutput(s)
		cells := []any{s.String()}
		for ry := 1; ry <= 4; ry++ {
			p := stencil.ChoosePlan(s)
			p.RY = ry
			k := stencil.NewWithPlan(p)
			el := minTime(reps, func() { k.Forward(out, in, w) })
			cells = append(cells, float64(s.FlopsFP())/el/1e9)
		}
		cells = append(cells, fmt.Sprintf("ry=%d", stencil.ChoosePlan(s).RY))
		t.AddRow(cells...)
	}
	return []Table{t}
}

// RunAblationCTCSR measures sparse BP time across CT-CSR column-tile
// widths (a huge width degenerates to plain CSR) — the locality argument
// behind Fig. 5a.
func RunAblationCTCSR(o Options) []Table {
	reps := 3
	if o.full() {
		reps = 5
	}
	const sparsity = 0.85
	widths := []int{8, 16, 32, 64, 128, 1 << 20}
	t := Table{
		Title: "Ablation: CT-CSR column-tile width, sparse BP time in ms (measured)",
		Note:  fmt.Sprintf("EO at %.0f%% sparsity; width 2^20 degenerates to plain CSR", sparsity*100),
		Columns: func() []string {
			cols := []string{"Spec"}
			for _, w := range widths {
				if w >= 1<<20 {
					cols = append(cols, "CSR")
				} else {
					cols = append(cols, fmt.Sprintf("tw=%d", w))
				}
			}
			return cols
		}(),
	}
	r := rng.New(0xAB3)
	specs := []conv.Spec{
		conv.Square(32, 32, 32, 4, 1),  // Table 1 ID 0
		conv.Square(16, 256, 16, 3, 1), // many features: tiling matters
		conv.Square(24, 128, 24, 5, 1),
	}
	for _, s := range specs {
		in := conv.RandInput(r, s)
		w := conv.RandWeights(r, s)
		eo := conv.RandOutputError(r, s, sparsity)
		ei := conv.NewInput(s)
		dw := conv.NewWeights(s)
		cells := []any{s.String()}
		for _, tw := range widths {
			k := spkernel.New(s, tw)
			el := minTime(reps, func() {
				k.BackwardInput(ei, eo, w)
				k.BackwardWeights(dw, eo, in)
			})
			cells = append(cells, el*1e3)
		}
		t.AddRow(cells...)
	}
	return []Table{t}
}

// RunAblationMachine is the §4.4 sensitivity study ("these numbers are
// sensitive to the parameters of the implementation and the machine"): it
// sweeps the machine model's roofline knee and shared bandwidth and
// reports how the GiP-over-Parallel-GEMM speedup at 16 cores moves for a
// moderate-AIT convolution (Table 1 ID 2).
func RunAblationMachine(Options) []Table {
	s := conv.Square(256, 256, 128, 3, 1)
	t := Table{
		Title:   "Ablation: machine-model sensitivity of the 16-core GiP/Parallel-GEMM speedup (ID 2)",
		Columns: []string{"HalfPerfAIT \\ SharedBW (GB/s)", "12.8", "25.6", "51.2"},
	}
	for _, knee := range []float64{30, 60, 120} {
		cells := []any{fmt.Sprintf("%.0f", knee)}
		for _, bw := range []float64{12.8, 25.6, 51.2} {
			m := machine.Paper()
			m.HalfPerfAIT = knee
			m.SharedBandwidthGBs = bw
			sp := m.GEMMInParallelTraining(s, 16) / m.ParallelGEMMTraining(s, 16)
			cells = append(cells, sp)
		}
		t.AddRow(cells...)
	}
	// Stencil crossover sensitivity: feature count at which GiP overtakes
	// the stencil, per load-cost setting.
	t2 := Table{
		Title:   "Ablation: stencil/GiP crossover feature count vs modeled load cost",
		Columns: []string{"StencilLoadCost", "crossover Nf (stencil wins below)"},
	}
	for _, lc := range []float64{1.5, 3.0, 6.0} {
		m := machine.Paper()
		m.StencilLoadCost = lc
		cross := 0
		for nf := 8; nf <= 2048; nf *= 2 {
			sp := conv.Square(64, nf, 32, 5, 1)
			if m.Stencil(sp, 16) > m.GEMMInParallel(sp, ait.FP, 16) {
				cross = nf
			}
		}
		t2.AddRow(lc, cross)
	}
	return []Table{t, t2}
}
