package engine

import (
	"testing"

	"spgcnn/internal/conv"
	"spgcnn/internal/exec"
	"spgcnn/internal/tensor"
)

type fakeKernel struct {
	s      conv.Spec
	single SingleOps
	calls  []string
}

func (f *fakeKernel) Name() string    { return "fake" }
func (f *fakeKernel) Spec() conv.Spec { return f.s }

func (f *fakeKernel) ForwardBatch(c *exec.Ctx, outs, ins []*tensor.Tensor, w *tensor.Tensor) {
	f.calls = append(f.calls, "fwd")
	for i := range outs {
		outs[i].Data[0] = ins[i].Data[0] + w.Data[0]
	}
}

func (f *fakeKernel) BackwardInputBatch(c *exec.Ctx, eis, eos []*tensor.Tensor, w *tensor.Tensor) {
	f.calls = append(f.calls, "bpi")
	for i := range eis {
		eis[i].Data[0] = eos[i].Data[0] * w.Data[0]
	}
}

func (f *fakeKernel) BackwardWeightsBatch(c *exec.Ctx, dw *tensor.Tensor, eos, ins []*tensor.Tensor) {
	f.calls = append(f.calls, "bpw")
	dw.Data[0] = 0
	for i := range eos {
		dw.Data[0] += eos[i].Data[0] * ins[i].Data[0]
	}
}

func (f *fakeKernel) Forward(out, in, w *tensor.Tensor) { f.single.Forward(f, out, in, w) }
func (f *fakeKernel) BackwardInput(ei, eo, w *tensor.Tensor) {
	f.single.BackwardInput(f, ei, eo, w)
}
func (f *fakeKernel) BackwardWeights(dw, eo, in *tensor.Tensor) {
	f.single.BackwardWeights(f, dw, eo, in)
}

func newFake(s conv.Spec) Kernel { return &fakeKernel{s: s} }

func scalar(v float32) *tensor.Tensor {
	t := tensor.New(1)
	t.Data[0] = v
	return t
}

func TestSingleOpsAdaptsBatchSeam(t *testing.T) {
	f := &fakeKernel{}
	out, in, w := scalar(0), scalar(3), scalar(5)
	f.Forward(out, in, w)
	if out.Data[0] != 8 {
		t.Fatalf("Forward via SingleOps: got %v, want 8", out.Data[0])
	}
	ei, eo := scalar(0), scalar(2)
	f.BackwardInput(ei, eo, w)
	if ei.Data[0] != 10 {
		t.Fatalf("BackwardInput via SingleOps: got %v, want 10", ei.Data[0])
	}
	dw := scalar(99)
	f.BackwardWeights(dw, eo, in)
	if dw.Data[0] != 6 {
		t.Fatalf("BackwardWeights via SingleOps: got %v, want 6 (overwrite semantics)", dw.Data[0])
	}
	want := []string{"fwd", "bpi", "bpw"}
	for i, c := range want {
		if f.calls[i] != c {
			t.Fatalf("calls = %v, want %v", f.calls, want)
		}
	}
	// The adapter's context is serial and stable across calls.
	if f.single.Ctx().Workers() != 1 || f.single.Ctx() != f.single.Ctx() {
		t.Fatal("SingleOps context must be a stable serial ctx")
	}
	// Batch slots are cleared after each call so tensors are not retained.
	if f.single.a[0] != nil || f.single.b[0] != nil {
		t.Fatal("SingleOps retained sample tensors after the call")
	}
}

func TestRegistryRegisterLookup(t *testing.T) {
	var r Registry
	r.Register(Generator{Name: "a", New: newFake})
	r.Register(Generator{Name: "b", New: newFake})
	if len(r.Generators()) != 2 {
		t.Fatalf("Generators = %d entries, want 2", len(r.Generators()))
	}
	g, ok := r.Lookup("b")
	if !ok || g.Name != "b" {
		t.Fatal("Lookup(b) failed")
	}
	if _, ok := r.Lookup("missing"); ok {
		t.Fatal("Lookup(missing) succeeded")
	}
	// Order preserved.
	if r.Generators()[0].Name != "a" {
		t.Fatal("registration order not preserved")
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	var r Registry
	g := Generator{Name: "a", New: newFake}
	r.Register(g)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Register did not panic")
		}
	}()
	r.Register(g)
}

func TestRegistryNilConstructorPanics(t *testing.T) {
	var r Registry
	defer func() {
		if recover() == nil {
			t.Fatal("nil constructor Register did not panic")
		}
	}()
	r.Register(Generator{Name: "x"})
}

func TestGeneratorsReturnsCopy(t *testing.T) {
	var r Registry
	r.Register(Generator{Name: "a", New: newFake})
	gens := r.Generators()
	gens[0].Name = "mutated"
	if g, _ := r.Lookup("a"); g.Name != "a" {
		t.Fatal("Generators exposed internal slice")
	}
}
