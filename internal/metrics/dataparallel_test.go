package metrics

import (
	"strings"
	"testing"
)

func TestRecordDataParallel(t *testing.T) {
	r := NewRegistry()
	r.RecordDataParallel(DPSample{
		Epoch: 1, Replicas: 4, Syncs: 8, SparseSyncs: 3,
		AllReduceSeconds: 0.5, AllReduceMethod: "ring+sparse",
		MeanDeltaDensity: 0.07, WireBytes: 1 << 20,
		SkippedImages: 5, SkippedConvFlops: 1e6,
		Rechunks: 2, StalenessMax: 1,
		BarrierWait: []float64{0.1, 0, 0.2, 0.3},
		Shares:      []int{9, 5, 9, 9},
	})
	r.RecordDataParallel(DPSample{
		Epoch: 2, Replicas: 4, Syncs: 8, SparseSyncs: 5,
		AllReduceSeconds: 0.25, AllReduceMethod: "ring+sparse",
		MeanDeltaDensity: 0.05, WireBytes: 1 << 19,
		SkippedImages: 5, Rechunks: 1,
		BarrierWait: []float64{0.1, 0, 0.2, 0.3},
		Shares:      []int{10, 4, 9, 9},
	})
	// Counters accumulate across epochs.
	if got := r.Counter("spg_dp_syncs_total", "").Value(); got != 16 {
		t.Fatalf("syncs_total = %v, want 16", got)
	}
	if got := r.Counter("spg_dp_sparse_syncs_total", "").Value(); got != 8 {
		t.Fatalf("sparse_syncs_total = %v, want 8", got)
	}
	if got := r.Counter("spg_dp_skipped_images_total", "").Value(); got != 10 {
		t.Fatalf("skipped_images_total = %v, want 10", got)
	}
	if got := r.Counter("spg_dp_rechunks_total", "").Value(); got != 3 {
		t.Fatalf("rechunks_total = %v, want 3", got)
	}
	if got := r.Counter("spg_dp_wire_bytes_total", "").Value(); got != float64(1<<20+1<<19) {
		t.Fatalf("wire_bytes_total = %v", got)
	}
	// Gauges hold the last epoch's state.
	if got := r.Gauge("spg_dp_delta_density", "").Value(); got != 0.05 {
		t.Fatalf("delta_density = %v, want 0.05", got)
	}
	if got := r.Gauge("spg_dp_share", "", "replica", "1").Value(); got != 4 {
		t.Fatalf("share{replica=1} = %v, want 4", got)
	}
	if got := r.Gauge("spg_dp_barrier_wait_seconds", "", "replica", "3").Value(); got != 0.3 {
		t.Fatalf("barrier_wait{replica=3} = %v, want 0.3", got)
	}
	if got := r.Gauge("spg_dp_allreduce_method", "", "method", "ring+sparse").Value(); got != 1 {
		t.Fatalf("allreduce_method = %v, want 1", got)
	}
}

func TestRecordDataParallelUnknownDensity(t *testing.T) {
	r := NewRegistry()
	r.RecordDataParallel(DPSample{Epoch: 1, Replicas: 2, Syncs: 4, MeanDeltaDensity: -1})
	// Density gauge must not be registered when no sync measured deltas.
	var buf strings.Builder
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "spg_dp_delta_density") {
		t.Fatal("density gauge exported for a dense-only run")
	}
	if !strings.Contains(buf.String(), "spg_dp_syncs_total 4") {
		t.Fatalf("syncs counter missing from export:\n%s", buf.String())
	}
}
