package gemm

import "spgcnn/internal/par"

// Parallel computes C = A·B with the M dimension (rows of C) statically
// partitioned across workers, the way MKL/OpenBLAS parallelize a GEMM.
//
// This is the paper's "Parallel-GEMM" baseline. Its defining property
// (§3.2) is that worker w computes rows [w·M/P, (w+1)·M/P) of C, which
// requires that slice of A and of C but the ENTIRE B matrix, so the
// arithmetic intensity per core falls as P grows:
//
//	AIT/core = (2·M·N·K/P) / (M·K/P + K·N + M·N/P)
//
// For the square case this is the paper's n/2 at P=2 versus 2n/3 serial.
// Workers <= 1 degrades to Serial.
func Parallel(c, a, b *Matrix, workers int) {
	checkMul(c, a, b)
	c.Zero()
	ParallelAccum(c, a, b, workers)
}

// ParallelAccum computes C += A·B with row partitioning across workers.
// Large operands take the packed Goto-style path per worker (each worker
// owns packing buffers and its contiguous row slice of A and C).
func ParallelAccum(c, a, b *Matrix, workers int) {
	checkMul(c, a, b)
	if a.Cols*b.Cols >= packedThreshold {
		par.ForChunked(a.Rows, workers, func(lo, hi int) {
			aView := FromSlice(a.Data[lo*a.Cols:hi*a.Cols], hi-lo, a.Cols)
			cView := FromSlice(c.Data[lo*c.Cols:hi*c.Cols], hi-lo, c.Cols)
			var buf packBuf
			PackedAccumWith(&buf, cView, aView, b)
		})
		return
	}
	par.ForChunked(a.Rows, workers, func(lo, hi int) {
		serialRange(c, a, b, lo, hi)
	})
}

// Batch runs one independent single-threaded GEMM per (c, a, b) triple,
// spreading the instances across workers. This is the execution primitive
// of GEMM-in-Parallel (§4.1): inputs are NOT divided across cores, so the
// per-core AIT — and therefore per-core performance — stays at the
// single-GEMM level no matter how many cores participate.
//
// All three slices must have equal length; instance i computes
// cs[i] = as[i]·bs[i].
func Batch(cs, as, bs []*Matrix, workers int) {
	if len(cs) != len(as) || len(cs) != len(bs) {
		panic("gemm: Batch slice length mismatch")
	}
	for i := range cs {
		checkMul(cs[i], as[i], bs[i])
	}
	par.For(len(cs), workers, func(i int) {
		Serial(cs[i], as[i], bs[i])
	})
}

// MulTransA computes C = Aᵀ·B without materializing the transpose:
// C[i][j] = Σ_k A[k][i]·B[k][j]. Used by the backward-weights GEMM where
// the unfolded input appears transposed.
func MulTransA(c, a, b *Matrix) {
	if a.Rows != b.Rows || c.Rows != a.Cols || c.Cols != b.Cols {
		panic("gemm: MulTransA dimension mismatch")
	}
	c.Zero()
	for k := 0; k < a.Rows; k++ {
		arow := a.Row(k)
		brow := b.Row(k)
		for i, aki := range arow {
			if aki == 0 {
				continue
			}
			crow := c.Row(i)
			for j, bkj := range brow {
				crow[j] += aki * bkj
			}
		}
	}
}

// MulTransB computes C = A·Bᵀ without materializing the transpose:
// C[i][j] = Σ_k A[i][k]·B[j][k]. The inner loop is a dot product of two
// contiguous rows, which the register blocking exploits four rows of B at
// a time.
func MulTransB(c, a, b *Matrix) {
	if a.Cols != b.Cols || c.Rows != a.Rows || c.Cols != b.Rows {
		panic("gemm: MulTransB dimension mismatch")
	}
	K := a.Cols
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		crow := c.Row(i)
		j := 0
		for ; j+4 <= b.Rows; j += 4 {
			b0, b1, b2, b3 := b.Row(j), b.Row(j+1), b.Row(j+2), b.Row(j+3)
			var s0, s1, s2, s3 float32
			for k := 0; k < K; k++ {
				av := arow[k]
				s0 += av * b0[k]
				s1 += av * b1[k]
				s2 += av * b2[k]
				s3 += av * b3[k]
			}
			crow[j] = s0
			crow[j+1] = s1
			crow[j+2] = s2
			crow[j+3] = s3
		}
		for ; j < b.Rows; j++ {
			brow := b.Row(j)
			var s float32
			for k := 0; k < K; k++ {
				s += arow[k] * brow[k]
			}
			crow[j] = s
		}
	}
}
