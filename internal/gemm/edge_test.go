package gemm

import (
	"testing"

	"spgcnn/internal/rng"
)

// Edge-case coverage: degenerate shapes every kernel must survive.

func TestEmptyMatrices(t *testing.T) {
	// M = 0: no output rows.
	c := NewMatrix(0, 5)
	a := NewMatrix(0, 3)
	b := NewMatrix(3, 5)
	Serial(c, a, b)
	Parallel(c, a, b, 4)
	PackedSerial(c, a, b)
	// N = 0: no output columns.
	c2 := NewMatrix(4, 0)
	a2 := NewMatrix(4, 3)
	b2 := NewMatrix(3, 0)
	Serial(c2, a2, b2)
	// Aᵀ·B with A 4x3 and B 4x0 -> C 3x0.
	MulTransA(NewMatrix(3, 0), a2, NewMatrix(4, 0))
}

func TestKZero(t *testing.T) {
	// K = 0: the product is all zeros.
	r := rng.New(1)
	c := randMatrix(r, 3, 4)
	a := NewMatrix(3, 0)
	b := NewMatrix(0, 4)
	Serial(c, a, b)
	for _, v := range c.Data {
		if v != 0 {
			t.Fatal("K=0 product not zero")
		}
	}
}

func TestSingleElement(t *testing.T) {
	a := FromSlice([]float32{3}, 1, 1)
	b := FromSlice([]float32{4}, 1, 1)
	c := NewMatrix(1, 1)
	for _, fn := range []func(c, a, b *Matrix){Serial, Naive, PackedSerial,
		func(c, a, b *Matrix) { Parallel(c, a, b, 8) }} {
		c.Zero()
		fn(c, a, b)
		if c.Data[0] != 12 {
			t.Fatalf("1x1 product = %v", c.Data[0])
		}
	}
}

func TestVectorShapes(t *testing.T) {
	// Row vector × matrix, matrix × column vector.
	r := rng.New(2)
	a := randMatrix(r, 1, 9)
	b := randMatrix(r, 9, 7)
	want := NewMatrix(1, 7)
	got := NewMatrix(1, 7)
	Naive(want, a, b)
	Serial(got, a, b)
	if !matricesClose(got, want, 1e-4) {
		t.Fatal("row-vector multiply wrong")
	}
	a2 := randMatrix(r, 7, 9)
	b2 := randMatrix(r, 9, 1)
	want2 := NewMatrix(7, 1)
	got2 := NewMatrix(7, 1)
	Naive(want2, a2, b2)
	Serial(got2, a2, b2)
	if !matricesClose(got2, want2, 1e-4) {
		t.Fatal("column-vector multiply wrong")
	}
}

func TestNegativeDimsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative dims accepted")
		}
	}()
	NewMatrix(-1, 2)
}

func TestBatchEmpty(t *testing.T) {
	Batch(nil, nil, nil, 4) // must be a no-op, not a panic
}

func TestPackedAtThreshold(t *testing.T) {
	// Shapes straddling packedThreshold take different code paths in
	// Serial; both must agree with Naive.
	r := rng.New(3)
	for _, kn := range []struct{ k, n int }{{300, 499}, {300, 501}, {1024, 147}} {
		a := randMatrix(r, 9, kn.k)
		b := randMatrix(r, kn.k, kn.n)
		want := NewMatrix(9, kn.n)
		got := NewMatrix(9, kn.n)
		Naive(want, a, b)
		Serial(got, a, b)
		if !matricesClose(got, want, 1e-3) {
			t.Fatalf("threshold shape %dx%d wrong", kn.k, kn.n)
		}
	}
}
