package conv

import (
	"strings"
	"testing"

	"spgcnn/internal/rng"
	"spgcnn/internal/tensor"
)

// Tests for the generalized spec: padding, dilation and groups through
// the geometry helpers, the validators and the reference oracles.

func TestGeneralGeometry(t *testing.T) {
	cases := []struct {
		s          Spec
		outX, outY int
		wLen       int
	}{
		// Same-padded 3×3: output extent preserved.
		{Spec{Nx: 8, Ny: 8, Nc: 2, Nf: 3, Fx: 3, Fy: 3, Sx: 1, Sy: 1, Px: 1, Py: 1}, 8, 8, 3 * 2 * 9},
		// Dilation 2 with pad 2: extent 5 kernel, output preserved.
		{Spec{Nx: 8, Ny: 8, Nc: 1, Nf: 1, Fx: 3, Fy: 3, Sx: 1, Sy: 1, Px: 2, Py: 2, Dx: 2, Dy: 2}, 8, 8, 9},
		// Grouped: weight tensor shrinks to Nc/G channels per feature.
		{Spec{Nx: 8, Ny: 8, Nc: 4, Nf: 6, Fx: 3, Fy: 3, Sx: 1, Sy: 1, Groups: 2}, 6, 6, 6 * 2 * 9},
		// Depthwise.
		{Spec{Nx: 5, Ny: 5, Nc: 3, Nf: 3, Fx: 3, Fy: 3, Sx: 1, Sy: 1, Px: 1, Py: 1, Groups: 3}, 5, 5, 3 * 9},
		// Strided, padded, rectangular.
		{Spec{Nx: 9, Ny: 7, Nc: 2, Nf: 4, Fx: 3, Fy: 3, Sx: 2, Sy: 2, Px: 2, Py: 1}, 6, 4, 4 * 2 * 9},
	}
	for _, tc := range cases {
		s := tc.s
		if err := s.Validate(); err != nil {
			t.Fatalf("%v: Validate: %v", s, err)
		}
		if got := s.OutX(); got != tc.outX {
			t.Errorf("%v: OutX = %d, want %d", s, got, tc.outX)
		}
		if got := s.OutY(); got != tc.outY {
			t.Errorf("%v: OutY = %d, want %d", s, got, tc.outY)
		}
		if got := s.WeightSize(); got != int64(tc.wLen) {
			t.Errorf("%v: WeightSize = %d, want %d", s, got, tc.wLen)
		}
		w := NewWeights(s)
		if w.Len() != tc.wLen {
			t.Errorf("%v: NewWeights len %d, want %d", s, w.Len(), tc.wLen)
		}
	}
}

func TestValidateGeneral(t *testing.T) {
	base := Spec{Nx: 8, Ny: 8, Nc: 4, Nf: 4, Fx: 3, Fy: 3, Sx: 1, Sy: 1}
	cases := []struct {
		mut     func(*Spec)
		wantSub string
	}{
		{func(s *Spec) { s.Px = -1 }, "padding"},
		{func(s *Spec) { s.Dx = -2 }, "dilation"},
		{func(s *Spec) { s.Groups = 3 }, "groups"},            // 3 does not divide Nc=4
		{func(s *Spec) { s.Nf = 6; s.Groups = 4 }, "groups"},  // 4 does not divide Nf=6
		{func(s *Spec) { s.Dx = 4 }, "effective kernel"},      // extent 9 > Nx 8
		{func(s *Spec) { s.Fx = 9; s.Px = 0 }, "larger than"}, // kernel > input, no pad
	}
	for _, tc := range cases {
		s := base
		tc.mut(&s)
		err := s.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.wantSub) {
			t.Errorf("%+v: Validate = %v, want error containing %q", s, err, tc.wantSub)
		}
	}
	// Padding can legalize a kernel larger than the raw input.
	s := base
	s.Fx, s.Px = 9, 1
	if err := s.Validate(); err != nil {
		t.Errorf("padded 9-wide kernel on 8-wide input should validate, got %v", err)
	}
}

func TestCanonAndPlain(t *testing.T) {
	spelled := Spec{Nx: 8, Ny: 8, Nc: 2, Nf: 2, Fx: 3, Fy: 3, Sx: 1, Sy: 1, Dx: 1, Dy: 1, Groups: 1}
	zero := Spec{Nx: 8, Ny: 8, Nc: 2, Nf: 2, Fx: 3, Fy: 3, Sx: 1, Sy: 1}
	if spelled.Canon() != zero {
		t.Errorf("Canon(%+v) = %+v, want %+v", spelled, spelled.Canon(), zero)
	}
	if !zero.Plain() || !spelled.Plain() {
		t.Error("default-general specs must be Plain")
	}
	general := zero
	general.Px = 1
	if general.Plain() {
		t.Error("padded spec reported Plain")
	}
}

func TestSpecStringGeneral(t *testing.T) {
	plain := Spec{Nx: 8, Ny: 8, Nc: 2, Nf: 3, Fx: 3, Fy: 3, Sx: 1, Sy: 1}
	if got := plain.String(); strings.ContainsAny(got, "pdg") {
		t.Errorf("plain spec String %q carries general suffixes", got)
	}
	g := Spec{Nx: 8, Ny: 8, Nc: 4, Nf: 4, Fx: 3, Fy: 3, Sx: 1, Sy: 1, Px: 1, Py: 2, Dx: 2, Dy: 2, Groups: 2}
	got := g.String()
	for _, sub := range []string{"p1x2", "d2", "g2"} {
		if !strings.Contains(got, sub) {
			t.Errorf("String %q missing %q", got, sub)
		}
	}
}

func TestScatterMatchesGatherGeneral(t *testing.T) {
	r := rng.New(21)
	for trial := 0; trial < 40; trial++ {
		s := RandSpecGeneral(r, 9)
		w := RandWeights(r, s)
		eo := NewOutput(s)
		eo.FillNormal(r, 0, 1)
		a, b := NewInput(s), NewInput(s)
		BackwardInputRef(s, a, eo, w)
		BackwardInputGatherRef(s, b, eo, w)
		if !tensor.AlmostEqual(a, b, 1e-4) {
			t.Fatalf("scatter/gather disagree for %v (max diff %g)", s, tensor.MaxAbsDiff(a, b))
		}
	}
}

// TestAdjointPropertyGeneral pins ⟨EO, Forward(I)⟩ = ⟨BackwardInput(EO), I⟩
// and ⟨EO, Forward(I)⟩ = ⟨dW, W⟩ on padded/dilated/grouped geometry — the
// generalized oracles must stay true adjoints.
func TestAdjointPropertyGeneral(t *testing.T) {
	r := rng.New(31)
	for trial := 0; trial < 40; trial++ {
		s := RandSpecGeneral(r, 9)
		in := RandInput(r, s)
		w := RandWeights(r, s)
		eo := NewOutput(s)
		eo.FillNormal(r, 0, 1)
		out := NewOutput(s)
		ForwardRef(s, out, in, w)
		ei := NewInput(s)
		BackwardInputRef(s, ei, eo, w)
		dw := NewWeights(s)
		BackwardWeightsRef(s, dw, eo, in)
		var lhs, rhsI, rhsW float64
		for i := range out.Data {
			lhs += float64(eo.Data[i]) * float64(out.Data[i])
		}
		for i := range in.Data {
			rhsI += float64(ei.Data[i]) * float64(in.Data[i])
		}
		for i := range w.Data {
			rhsW += float64(dw.Data[i]) * float64(w.Data[i])
		}
		scale := 1.0
		if l := lhs; l > scale {
			scale = l
		} else if -l > scale {
			scale = -l
		}
		if d := lhs - rhsI; d > 1e-3*scale || d < -1e-3*scale {
			t.Fatalf("%v: input adjoint broken: %v vs %v", s, lhs, rhsI)
		}
		if d := lhs - rhsW; d > 1e-3*scale || d < -1e-3*scale {
			t.Fatalf("%v: weight adjoint broken: %v vs %v", s, lhs, rhsW)
		}
	}
}

// TestGroupedMatchesMaskedDense cross-checks the grouped forward against
// an equivalent dense convolution whose weights are zero outside each
// feature's group slab.
func TestGroupedMatchesMaskedDense(t *testing.T) {
	r := rng.New(41)
	g := Spec{Nx: 6, Ny: 6, Nc: 4, Nf: 6, Fx: 3, Fy: 3, Sx: 1, Sy: 1, Px: 1, Py: 1, Groups: 2}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	dense := g
	dense.Groups = 0
	in := RandInput(r, g)
	wg := RandWeights(r, g)
	// Expand grouped weights into the dense layout with zeros off-slab.
	wd := NewWeights(dense)
	gnc, gnf := g.GroupNc(), g.GroupNf()
	for f := 0; f < g.Nf; f++ {
		cbase := (f / gnf) * gnc
		for cc := 0; cc < gnc; cc++ {
			for ky := 0; ky < g.Fy; ky++ {
				for kx := 0; kx < g.Fx; kx++ {
					src := ((f*gnc+cc)*g.Fy+ky)*g.Fx + kx
					dst := ((f*g.Nc+cbase+cc)*g.Fy+ky)*g.Fx + kx
					wd.Data[dst] = wg.Data[src]
				}
			}
		}
	}
	og, od := NewOutput(g), NewOutput(dense)
	ForwardRef(g, og, in, wg)
	ForwardRef(dense, od, in, wd)
	if !tensor.AlmostEqual(og, od, 1e-5) {
		t.Fatalf("grouped forward differs from masked dense (max diff %g)", tensor.MaxAbsDiff(og, od))
	}
}
