package refconv_test

import (
	"testing"

	"spgcnn/internal/conv"
	"spgcnn/internal/engine/enginetest"
	"spgcnn/internal/refconv"
)

// The reference kernel IS the oracle, so Run's value here is pinning the
// batch seam: lengths, dw overwrite semantics, arena discipline and the
// single-sample compat path.
func TestConformance(t *testing.T) {
	enginetest.Run(t, refconv.Generator(), enginetest.Options{Trials: 6, Seed: 5, MaxDim: 9})
}

func TestDifferentialVsItself(t *testing.T) {
	// The general sweep inside RunDifferential drives padded/dilated/
	// grouped specs through the kernel (Supports == nil claims them all).
	enginetest.RunDifferential(t, refconv.Generator(), refconv.Generator(),
		enginetest.DiffOptions{Trials: 4, Seed: 0x0EF, MaxDim: 8})
}

func TestNameAndSpec(t *testing.T) {
	s := conv.Spec{Nx: 6, Ny: 6, Nc: 2, Nf: 2, Fx: 3, Fy: 3, Sx: 1, Sy: 1, Px: 1, Py: 1}
	k := refconv.New(s)
	if k.Name() != refconv.Name || k.Name() != "reference" {
		t.Fatalf("Name = %q", k.Name())
	}
	if k.Spec() != s {
		t.Fatalf("Spec = %v", k.Spec())
	}
	if refconv.Generator().Supports != nil {
		t.Fatal("reference generator must claim every valid spec (Supports nil)")
	}
}
