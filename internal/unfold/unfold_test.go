package unfold

import (
	"testing"
	"testing/quick"

	"spgcnn/internal/conv"
	"spgcnn/internal/gemm"
	"spgcnn/internal/rng"
	"spgcnn/internal/tensor"
)

func TestDims(t *testing.T) {
	s := conv.Square(5, 2, 3, 2, 1)
	if Rows(s) != 16 {
		t.Fatalf("Rows = %d, want 16", Rows(s))
	}
	if Cols(s) != 12 {
		t.Fatalf("Cols = %d, want 12", Cols(s))
	}
}

func TestIm2colFig2b(t *testing.T) {
	// The paper's Fig. 2b example: a 3x3 image with two channels, unfolded
	// for a 2x2 kernel. Row r of U is the window of output pixel r with
	// channel 0's taps first, then channel 1's.
	s := conv.Square(3, 1, 2, 2, 1)
	in := conv.NewInput(s)
	// channel 0 = 1..9, channel 1 = 11..19 (row-major).
	for i := 0; i < 9; i++ {
		in.Data[i] = float32(1 + i)
		in.Data[9+i] = float32(11 + i)
	}
	u := NewU(s)
	Im2col(s, u, in)
	// Output pixel (0,0): window {1,2,4,5} from ch0 and {11,12,14,15} ch1.
	want0 := []float32{1, 2, 4, 5, 11, 12, 14, 15}
	for i, w := range want0 {
		if u.Row(0)[i] != w {
			t.Fatalf("U[0] = %v, want %v", u.Row(0), want0)
		}
	}
	// Output pixel (1,1) — last row: {5,6,8,9, 15,16,18,19}.
	want3 := []float32{5, 6, 8, 9, 15, 16, 18, 19}
	for i, w := range want3 {
		if u.Row(3)[i] != w {
			t.Fatalf("U[3] = %v, want %v", u.Row(3), want3)
		}
	}
}

func TestUnfoldGEMMMatchesForwardRef(t *testing.T) {
	// O = W·Uᵀ (Fig. 2c) must equal the direct convolution of Eq. 2.
	r := rng.New(1)
	for trial := 0; trial < 20; trial++ {
		s := conv.RandSpec(r, 10)
		in := conv.RandInput(r, s)
		w := conv.RandWeights(r, s)
		u := NewU(s)
		Im2col(s, u, in)
		out := conv.NewOutput(s)
		gemm.MulTransB(OutputMatrix(s, out), WeightMatrix(s, w), u)
		want := conv.NewOutput(s)
		conv.ForwardRef(s, want, in, w)
		if !tensor.AlmostEqual(out, want, 1e-4) {
			t.Fatalf("Unfold+GEMM FP differs from reference for %v (maxdiff %g)",
				s, tensor.MaxAbsDiff(out, want))
		}
	}
}

func TestCol2imAdjointOfIm2col(t *testing.T) {
	// ⟨U, im2col(I)⟩ == ⟨col2im(U), I⟩ for random U, I: the defining
	// property that makes Unfold-based BP correct.
	if err := quick.Check(func(seed uint32) bool {
		r := rng.New(uint64(seed))
		s := conv.RandSpec(r, 8)
		in := conv.RandInput(r, s)
		u := NewU(s)
		for i := range u.Data {
			u.Data[i] = float32(r.NormFloat64())
		}
		ucopy := NewU(s)
		Im2col(s, ucopy, in)
		folded := conv.NewInput(s)
		Col2im(s, folded, u)
		var lhs, rhs float64
		for i := range u.Data {
			lhs += float64(u.Data[i]) * float64(ucopy.Data[i])
		}
		for i := range in.Data {
			rhs += float64(folded.Data[i]) * float64(in.Data[i])
		}
		diff := lhs - rhs
		if diff < 0 {
			diff = -diff
		}
		scale := lhs
		if scale < 0 {
			scale = -scale
		}
		if scale < 1 {
			scale = 1
		}
		return diff <= 1e-3*scale
	}, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestCol2imAccumulatesOverlaps(t *testing.T) {
	// With a 2x2 kernel, stride 1 on a 3x3 input, the center input pixel
	// belongs to all 4 windows; folding all-ones U must give it count 4.
	s := conv.Square(3, 1, 1, 2, 1)
	u := NewU(s)
	for i := range u.Data {
		u.Data[i] = 1
	}
	in := conv.NewInput(s)
	Col2im(s, in, u)
	if in.At3(0, 1, 1) != 4 {
		t.Fatalf("center fold count = %v, want 4", in.At3(0, 1, 1))
	}
	if in.At3(0, 0, 0) != 1 {
		t.Fatalf("corner fold count = %v, want 1", in.At3(0, 0, 0))
	}
	if in.At3(0, 0, 1) != 2 {
		t.Fatalf("edge fold count = %v, want 2", in.At3(0, 0, 1))
	}
}

func TestStridedIm2colSkipsPixels(t *testing.T) {
	s := conv.Square(5, 1, 1, 2, 2) // stride 2: outputs at x in {0, 2}
	in := conv.NewInput(s)
	for i := 0; i < 25; i++ {
		in.Data[i] = float32(i)
	}
	u := NewU(s)
	Im2col(s, u, in)
	if Rows(s) != 4 {
		t.Fatalf("Rows = %d, want 4", Rows(s))
	}
	// Output (0,1) covers input columns 2..3, rows 0..1: {2,3,7,8}.
	want := []float32{2, 3, 7, 8}
	for i, w := range want {
		if u.Row(1)[i] != w {
			t.Fatalf("strided U[1] = %v, want %v", u.Row(1), want)
		}
	}
}

func TestWeightMatrixAliases(t *testing.T) {
	s := conv.Square(4, 2, 3, 2, 1)
	w := conv.NewWeights(s)
	m := WeightMatrix(s, w)
	if m.Rows != 2 || m.Cols != 12 {
		t.Fatalf("weight matrix %dx%d, want 2x12", m.Rows, m.Cols)
	}
	m.Set(1, 3, 42)
	if w.Data[12+3] != 42 {
		t.Fatal("WeightMatrix does not alias weight tensor")
	}
}

func TestUnfoldSizeMatchesSpec(t *testing.T) {
	r := rng.New(9)
	for i := 0; i < 10; i++ {
		s := conv.RandSpec(r, 12)
		if int64(Rows(s))*int64(Cols(s)) != s.UnfoldedSize() {
			t.Fatalf("U size %d disagrees with Spec.UnfoldedSize %d for %v",
				Rows(s)*Cols(s), s.UnfoldedSize(), s)
		}
	}
}

func BenchmarkIm2colCIFARL1(b *testing.B) {
	s := conv.Square(36, 64, 3, 5, 1)
	r := rng.New(1)
	in := conv.RandInput(r, s)
	u := NewU(s)
	b.SetBytes(int64(Rows(s)*Cols(s)) * 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Im2col(s, u, in)
	}
}

func TestIm2colBlockedMatchesIm2col(t *testing.T) {
	// Unfolding straight out of blocked storage must reproduce the NCHW
	// unfold bit-for-bit — it is a gather, not a computation.
	r := rng.New(8)
	specs := []conv.Spec{
		conv.Square(3, 1, 2, 2, 1),
		conv.Square(9, 3, 7, 3, 1), // channel tail block
		conv.Square(12, 2, 16, 3, 2),
		{Nx: 11, Ny: 5, Nc: 9, Nf: 3, Fx: 3, Fy: 2, Sx: 2, Sy: 1},
	}
	for trial := 0; trial < 10; trial++ {
		specs = append(specs, conv.RandSpec(r, 9))
	}
	for _, s := range specs {
		in := conv.RandInput(r, s)
		want := NewU(s)
		Im2col(s, want, in)
		got := NewU(s)
		Im2colBlocked(s, got, tensor.ToBlocked(in))
		for i := range want.Data {
			if got.Data[i] != want.Data[i] {
				t.Fatalf("%v: Im2colBlocked differs from Im2col at %d", s, i)
			}
		}
	}
}
