package nn

import (
	"math"

	"spgcnn/internal/tensor"
)

// SoftmaxXent is the softmax + cross-entropy loss head used by every
// benchmark network. It is not a Layer: the trainer calls it directly on
// the final logits to obtain the loss and the initial error gradient that
// back-propagation starts from.
type SoftmaxXent struct{}

// Loss computes, for one image, the cross-entropy of softmax(logits)
// against the label, writing dlogits = softmax(logits) − onehot(label)
// (the standard fused gradient). It returns the loss and whether the
// argmax prediction was correct.
func (SoftmaxXent) Loss(logits *tensor.Tensor, label int, dlogits *tensor.Tensor) (loss float64, correct bool) {
	n := logits.Len()
	if label < 0 || label >= n {
		panic("nn: label out of range")
	}
	// Stabilized softmax.
	maxv := logits.Data[0]
	argmax := 0
	for i, v := range logits.Data {
		if v > maxv {
			maxv = v
			argmax = i
		}
	}
	var sum float64
	for _, v := range logits.Data {
		sum += math.Exp(float64(v - maxv))
	}
	logSum := math.Log(sum)
	for i, v := range logits.Data {
		p := math.Exp(float64(v-maxv)) / sum
		dlogits.Data[i] = float32(p)
	}
	dlogits.Data[label] -= 1
	loss = -(float64(logits.Data[label]-maxv) - logSum)
	return loss, argmax == label
}
