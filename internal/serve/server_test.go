package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"spgcnn/internal/core"
	"spgcnn/internal/metrics"
	"spgcnn/internal/netdef"
	"spgcnn/internal/rng"
)

func testServer(t *testing.T, maxDelay time.Duration, maxBatch, queueCap int, reg *metrics.Registry) (*Server, *httptest.Server) {
	t.Helper()
	def, err := netdef.Parse(diffNet)
	if err != nil {
		t.Fatal(err)
	}
	st := core.FPStrategies(1)[1]
	model, err := NewModel(def, ModelConfig{
		Replicas: 1,
		Buckets:  DefaultBuckets(maxBatch),
		Planner:  pinnedPlanner(st),
		Seed:     3,
	})
	if err != nil {
		t.Fatal(err)
	}
	model.Warmup()
	srv, err := New(Config{
		Model:    model,
		MaxBatch: maxBatch,
		MaxDelay: maxDelay,
		QueueCap: queueCap,
		Metrics:  reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close() })
	return srv, ts
}

func postInfer(t *testing.T, url string, input []float32) (inferResponse, int) {
	t.Helper()
	body, _ := json.Marshal(inferRequest{Input: input})
	resp, err := http.Post(url+"/v1/infer", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return inferResponse{}, resp.StatusCode
	}
	var out inferResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out, resp.StatusCode
}

// TestServerCoalescesConcurrentRequests drives C concurrent requests with
// a generous coalescing window and checks that at least one executed
// batch held more than one request, responses carry sane fields, and the
// metrics endpoint exports the serving series mid-run.
func TestServerCoalescesConcurrentRequests(t *testing.T) {
	reg := metrics.NewRegistry()
	srv, ts := testServer(t, 20*time.Millisecond, 4, 16, reg)

	r := rng.New(5)
	input := make([]float32, 14*14)
	for i := range input {
		input[i] = r.Float32()
	}

	const C = 8
	var wg sync.WaitGroup
	sawBatched := false
	var mu sync.Mutex
	for i := 0; i < C; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out, code := postInfer(t, ts.URL, input)
			if code != http.StatusOK {
				t.Errorf("status %d", code)
				return
			}
			if len(out.Output) != 7 {
				t.Errorf("got %d logits, want 7", len(out.Output))
			}
			mu.Lock()
			if out.Batch > 1 {
				sawBatched = true
			}
			mu.Unlock()
		}()
	}
	wg.Wait()
	if !sawBatched {
		t.Error("no request was served in a coalesced batch (batch > 1)")
	}

	st := srv.Stats()
	if st.Requests != C || st.Images != C {
		t.Errorf("stats: %d requests, %d images; want %d each", st.Requests, st.Images, C)
	}
	if st.Batches >= C {
		t.Errorf("%d batches for %d requests — no coalescing happened", st.Batches, C)
	}

	// Mid-run metrics scrape: the serve series must be present.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	body := string(b)
	for _, want := range []string{
		"spg_serve_queue_depth", "spg_serve_requests_total", "spg_serve_batches_total",
		"spg_serve_batch_size", "spg_serve_request_seconds", "spg_serve_goodput_ratio",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %s", want)
		}
	}
}

// TestServerBackpressure503 fills the queue to provable capacity and
// checks the next submission gets 503 with Retry-After while the admitted
// ones still complete. The server is assembled white-box with NO batch
// workers and an hour-long coalescing delay, so "queue full" is a
// deterministic state, not a race against a fast worker draining it.
func TestServerBackpressure503(t *testing.T) {
	def, err := netdef.Parse(diffNet)
	if err != nil {
		t.Fatal(err)
	}
	model, err := NewModel(def, ModelConfig{
		Replicas: 1,
		Buckets:  DefaultBuckets(4),
		Planner:  pinnedPlanner(core.FPStrategies(1)[1]),
		Seed:     3,
	})
	if err != nil {
		t.Fatal(err)
	}
	model.Warmup()

	srv := &Server{model: model, q: newQueue(4, 4, time.Hour), maxBatch: 4}
	srv.bindMetrics(nil)
	srv.mux = http.NewServeMux()
	srv.mux.HandleFunc("/v1/infer", srv.handleInfer)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	input := make([]float32, 14*14)
	body, _ := json.Marshal(inferRequest{Input: input})
	post := func() (int, string) {
		resp, err := http.Post(ts.URL+"/v1/infer", "application/json", bytes.NewReader(body))
		if err != nil {
			return -1, ""
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
		return resp.StatusCode, resp.Header.Get("Retry-After")
	}

	// Fill the queue to capacity; these block until a worker drains them.
	var wg sync.WaitGroup
	statuses := make(chan int, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			code, _ := post()
			statuses <- code
		}()
	}
	deadline := time.Now().Add(10 * time.Second)
	for srv.q.depth() < 4 {
		if time.Now().After(deadline) {
			t.Fatal("timed out waiting for the queue to fill")
		}
		time.Sleep(time.Millisecond)
	}

	// Queue provably full: the next submission must reject.
	code, retryAfter := post()
	if code != http.StatusServiceUnavailable {
		t.Fatalf("submission against a full queue got %d, want 503", code)
	}
	if retryAfter == "" {
		t.Error("503 without Retry-After")
	}
	if got := srv.Stats().Rejected; got != 1 {
		t.Errorf("Stats().Rejected = %d, want 1", got)
	}

	// Start the batch worker: the four admitted requests must drain OK.
	srv.wg.Add(1)
	go srv.worker(0)
	wg.Wait()
	close(statuses)
	for code := range statuses {
		if code != http.StatusOK {
			t.Errorf("admitted request finished with %d, want 200", code)
		}
	}
	srv.Close()
}

// TestServerDrainOnClose submits requests and closes mid-flight: every
// admitted request must be answered (drained), and post-close submissions
// must reject.
func TestServerDrainOnClose(t *testing.T) {
	srv, ts := testServer(t, 5*time.Millisecond, 4, 16, nil)

	input := make([]float32, 14*14)
	const C = 12
	var wg sync.WaitGroup
	var okCount, rejCount int
	var mu sync.Mutex
	for i := 0; i < C; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, code := postInfer(t, ts.URL, input)
			mu.Lock()
			defer mu.Unlock()
			switch code {
			case http.StatusOK:
				okCount++
			case http.StatusServiceUnavailable:
				rejCount++
			default:
				t.Errorf("status %d", code)
			}
		}()
	}
	time.Sleep(2 * time.Millisecond)
	srv.Close() // races the submissions deliberately
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	if okCount+rejCount != C {
		t.Fatalf("%d ok + %d rejected != %d requests (lost responses)", okCount, rejCount, C)
	}
	if _, code := postInfer(t, ts.URL, input); code != http.StatusServiceUnavailable {
		t.Fatalf("post-close request got %d, want 503", code)
	}
}
