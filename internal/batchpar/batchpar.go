// Package batchpar implements the paper's GEMM-in-Parallel scheduling
// (§4.1): instead of splitting one convolution's GEMM across P cores (and
// paying the §3.2 per-core AIT reduction), it runs P independent
// single-threaded kernels on P different training inputs.
//
// The executor is kernel-agnostic: the same batch schedule carries
// unfold+GEMM kernels (the literal GEMM-in-Parallel of §4.1),
// stencil kernels (§4.3's FP deployment) and sparse kernels (§4.2's BP
// deployment). Because kernels are stateless plans, one shared instance
// serves every worker; each worker runs its contiguous chunk of the batch
// through the context's serial view, so per-core AIT stays at the
// single-kernel level while all scratch still comes from the one shared
// arena.
package batchpar

import (
	"fmt"

	"spgcnn/internal/conv"
	"spgcnn/internal/engine"
	"spgcnn/internal/exec"
	"spgcnn/internal/par"
	"spgcnn/internal/tensor"
)

// Executor schedules a per-input kernel across batches of training inputs.
// It is itself an engine.Kernel, so batch-parallel deployments compose
// with everything that consumes the seam.
type Executor struct {
	spec   conv.Spec
	k      engine.Kernel
	name   string
	single engine.SingleOps
}

// New builds an executor fanning gen's kernel for spec s across the
// workers of whatever context each call supplies.
func New(gen engine.Generator, s conv.Spec) *Executor {
	s.MustValidate()
	e := &Executor{spec: s, k: gen.New(s)}
	e.name = fmt.Sprintf("batch-parallel[%s]", e.k.Name())
	return e
}

// Name implements engine.Kernel.
func (e *Executor) Name() string { return e.name }

// Spec implements engine.Kernel.
func (e *Executor) Spec() conv.Spec { return e.spec }

// Inner returns the wrapped per-input kernel.
func (e *Executor) Inner() engine.Kernel { return e.k }

// ForwardBatch computes outs[i] = conv(ins[i], w) for the whole batch.
// Inputs are claimed in dynamically-sized contiguous chunks (guided
// self-scheduling) rather than one static chunk per worker: per-input cost
// is ragged — sparse back-ends especially so — and dynamic claiming lets
// fast workers absorb the tail. Each item's result is computed
// independently by the stateless inner kernel, so chunk boundaries cannot
// affect the bits.
func (e *Executor) ForwardBatch(c *exec.Ctx, outs, ins []*tensor.Tensor, w *tensor.Tensor) {
	if len(outs) != len(ins) {
		panic("batchpar: ForwardBatch batch length mismatch")
	}
	serial := c.Serial()
	par.ForDynamic(len(ins), c.Workers(), 1, func(lo, hi int) {
		e.k.ForwardBatch(serial, outs[lo:hi], ins[lo:hi], w)
	})
}

// BackwardInputBatch computes eis[i] = corr(eos[i], w) for the whole batch,
// with the same dynamic chunking as ForwardBatch (error-gradient sparsity
// makes per-input BP cost the most ragged of the three phases).
func (e *Executor) BackwardInputBatch(c *exec.Ctx, eis, eos []*tensor.Tensor, w *tensor.Tensor) {
	if len(eis) != len(eos) {
		panic("batchpar: BackwardInputBatch batch length mismatch")
	}
	serial := c.Serial()
	par.ForDynamic(len(eos), c.Workers(), 1, func(lo, hi int) {
		e.k.BackwardInputBatch(serial, eis[lo:hi], eos[lo:hi], w)
	})
}

// BackwardWeightsBatch computes dw = Σ_i grad(eos[i], ins[i]): each worker
// sums its chunk's gradients into an arena-backed private accumulator (the
// inner kernel's batch-sum semantics do the per-chunk reduction), then the
// per-worker partials are reduced into dw. dw is overwritten.
//
// Unlike FP/BPI this keeps the STATIC partition: the grouping of partial
// sums follows the chunk boundaries, so dynamic chunking would change the
// floating-point reduction order run to run.
func (e *Executor) BackwardWeightsBatch(c *exec.Ctx, dw *tensor.Tensor, eos, ins []*tensor.Tensor) {
	if len(eos) != len(ins) {
		panic("batchpar: BackwardWeightsBatch batch length mismatch")
	}
	s := e.spec
	conv.CheckWeights(s, dw)
	if len(eos) == 0 {
		dw.Zero()
		return
	}
	used := c.Workers()
	if used > len(eos) {
		used = len(eos)
	}
	serial := c.Serial()
	if used <= 1 {
		e.k.BackwardWeightsBatch(serial, dw, eos, ins)
		return
	}
	var accArr [64]*tensor.Tensor
	accs := accArr[:0]
	if used > len(accArr) {
		accs = make([]*tensor.Tensor, 0, used)
	}
	// Worker 0 writes dw directly; the rest get arena accumulators.
	accs = append(accs, dw)
	for i := 1; i < used; i++ {
		accs = append(accs, c.GetTensor(s.WeightDims()...))
	}
	par.ForWorkers(len(eos), used, func(worker, lo, hi int) {
		if lo > hi {
			lo = hi // empty chunk: the inner call still zeroes the accumulator
		}
		e.k.BackwardWeightsBatch(serial, accs[worker], eos[lo:hi], ins[lo:hi])
	})
	for i := 1; i < used; i++ {
		dw.AddScaled(accs[i], 1)
		c.PutTensor(accs[i])
	}
}

// Forward implements engine.SingleKernel.
func (e *Executor) Forward(out, in, w *tensor.Tensor) { e.single.Forward(e, out, in, w) }

// BackwardInput implements engine.SingleKernel.
func (e *Executor) BackwardInput(ei, eo, w *tensor.Tensor) { e.single.BackwardInput(e, ei, eo, w) }

// BackwardWeights implements engine.SingleKernel.
func (e *Executor) BackwardWeights(dw, eo, in *tensor.Tensor) {
	e.single.BackwardWeights(e, dw, eo, in)
}
