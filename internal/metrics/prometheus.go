package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders the whole registry — every counter, gauge,
// histogram and span — in Prometheus text exposition format (version
// 0.0.4). Families appear in sorted name order and series in sorted label
// order, so the output is deterministic for a fixed registry state.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := append([]string(nil), r.order...)
	r.mu.Unlock()
	sort.Strings(names)

	for _, name := range names {
		r.mu.Lock()
		f := r.families[name]
		keys := append([]string(nil), f.order...)
		r.mu.Unlock()
		sort.Strings(keys)

		promType := f.typ
		if promType == "gaugefunc" {
			promType = "gauge"
		}
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", name, escapeHelp(f.help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, promType); err != nil {
			return err
		}
		for _, key := range keys {
			r.mu.Lock()
			ins := f.series[key]
			r.mu.Unlock()
			if err := writeSeries(w, name, ins); err != nil {
				return err
			}
		}
	}
	return r.writeSpans(w)
}

func writeSeries(w io.Writer, name string, ins *instrument) error {
	lb := renderLabels(ins.labels)
	switch {
	case ins.counter != nil:
		_, err := fmt.Fprintf(w, "%s%s %s\n", name, lb, formatValue(ins.counter.Value()))
		return err
	case ins.gaugeFn != nil:
		_, err := fmt.Fprintf(w, "%s%s %s\n", name, lb, formatValue(ins.gaugeFn()))
		return err
	case ins.gauge != nil:
		_, err := fmt.Fprintf(w, "%s%s %s\n", name, lb, formatValue(ins.gauge.Value()))
		return err
	case ins.hist != nil:
		return writeHistogram(w, name, ins.labels, ins.hist.Snapshot())
	}
	return nil
}

func writeHistogram(w io.Writer, name string, labels []string, s HistSnapshot) error {
	cum := uint64(0)
	for i, bound := range s.Bounds {
		cum += s.Counts[i]
		lb := renderLabels(append(append([]string(nil), labels...), "le", formatValue(bound)))
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, lb, cum); err != nil {
			return err
		}
	}
	cum += s.Counts[len(s.Bounds)]
	lb := renderLabels(append(append([]string(nil), labels...), "le", "+Inf"))
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, lb, cum); err != nil {
		return err
	}
	base := renderLabels(labels)
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, base, formatValue(s.Sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, base, s.Count)
	return err
}

// writeSpans renders every span path as one histogram family
// (spg_span_seconds, labeled span="<path>") plus min/max gauge families.
func (r *Registry) writeSpans(w io.Writer) error {
	paths := r.SpanPaths()
	if len(paths) == 0 {
		return nil
	}
	if _, err := fmt.Fprintf(w, "# HELP spg_span_seconds Observed latency of each instrumentation span (path: layer/phase/strategy).\n# TYPE spg_span_seconds histogram\n"); err != nil {
		return err
	}
	for _, p := range paths {
		r.mu.Lock()
		h := r.spans[p]
		r.mu.Unlock()
		if err := writeHistogram(w, "spg_span_seconds", []string{"span", p}, h.Snapshot()); err != nil {
			return err
		}
	}
	for _, fam := range []struct{ suffix, help string }{
		{"min", "Fastest single observation of each span."},
		{"max", "Slowest single observation of each span."},
	} {
		name := "spg_span_" + fam.suffix + "_seconds"
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n", name, fam.help, name); err != nil {
			return err
		}
		for _, p := range paths {
			st, ok := r.Span(p)
			if !ok || st.Calls == 0 {
				continue
			}
			v := st.Min
			if fam.suffix == "max" {
				v = st.Max
			}
			if _, err := fmt.Fprintf(w, "%s%s %s\n", name, renderLabels([]string{"span", p}), formatValue(v)); err != nil {
				return err
			}
		}
	}
	return nil
}

func renderLabels(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	type kv struct{ k, v string }
	pairs := make([]kv, 0, len(labels)/2)
	for i := 0; i+1 < len(labels); i += 2 {
		pairs = append(pairs, kv{SanitizeName(labels[i]), labels[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool {
		// "le" must stay last so histogram buckets read naturally.
		if (pairs[i].k == "le") != (pairs[j].k == "le") {
			return pairs[j].k == "le"
		}
		return pairs[i].k < pairs[j].k
	})
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", p.k, p.v)
	}
	b.WriteByte('}')
	return b.String()
}

func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
