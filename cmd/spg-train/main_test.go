package main

import "testing"

func TestBuiltinNetworks(t *testing.T) {
	for _, name := range []string{"mnist", "cifar", "imagenet100"} {
		src, ds := builtin(name)
		if src == "" || ds != name {
			t.Fatalf("builtin(%q) = %q dataset, want matching dataset", name, ds)
		}
	}
}

func TestDatasetByName(t *testing.T) {
	for _, name := range []string{"mnist", "cifar", "imagenet100"} {
		if datasetByName(name, 10) == nil {
			t.Fatalf("datasetByName(%q) = nil", name)
		}
	}
	if datasetByName("imagenet22k", 10) != nil {
		t.Fatal("unknown dataset resolved")
	}
}

func TestFindStrategy(t *testing.T) {
	for _, name := range []string{"parallel-gemm", "gemm-in-parallel", "stencil", "sparse"} {
		st, ok := findStrategy(name, 2)
		if !ok || st.Name != name {
			t.Fatalf("findStrategy(%q) failed", name)
		}
	}
	if _, ok := findStrategy("auto", 2); ok {
		t.Fatal("'auto' is not a strategy name and must not resolve")
	}
	// Worker floor.
	if st, ok := findStrategy("parallel-gemm", 0); !ok || st.Name != "parallel-gemm" {
		t.Fatal("workers=0 not floored")
	}
}
