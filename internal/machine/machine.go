// Package machine is an analytical multicore performance model — the
// documented substitution for the paper's 16-core Xeon E5-2650 testbed
// (DESIGN.md §2). It turns the §3 AIT characterization into predicted
// GFlops-per-core curves via a saturating roofline:
//
//	perf(AIT) = Peak · AIT / (AIT + HalfPerfAIT)
//
// capped by a shared-memory-bandwidth ceiling across cores. Each spg-CNN
// technique maps onto the model through exactly the mechanism the paper
// identifies:
//
//   - Parallel-GEMM: row-partitioned MM, every core streams the whole
//     unfolded operand → AIT/core falls with p (ait.MM.AITPerCoreRow).
//   - GEMM-in-Parallel: whole GEMMs per core → AIT/core constant;
//     only shared-bandwidth contention grows with p.
//   - Stencil-Kernel: no unfolding; throughput limited by the generated
//     basic block's loads-per-MAC rather than by operand streaming.
//   - Sparse-Kernel: goodput = useful flops over (layout-transform time +
//     non-zero work time); the transform term dominates past ~90% sparsity,
//     producing Fig. 4e's roll-off.
//
// The executable engines in this repository implement the same strategies
// for real; this model exists so the paper's multicore *figures* can be
// regenerated deterministically on hosts without 16 cores or AVX.
package machine

import (
	"spgcnn/internal/ait"
	"spgcnn/internal/conv"
	"spgcnn/internal/stencil"
)

// Machine holds the calibrated model constants.
type Machine struct {
	// Cores is the physical core count (the paper's machine: 16).
	Cores int
	// PeakGFlopsPerCore is per-core single-precision peak (paper: 41.6).
	PeakGFlopsPerCore float64
	// HalfPerfAIT is the arithmetic intensity (flops per data element) at
	// which a kernel reaches half of peak — the knee of the saturating
	// roofline.
	HalfPerfAIT float64
	// SharedBandwidthGBs is the socket-wide *achievable* streaming
	// bandwidth that all cores' traffic shares (E5-2650: 4×DDR3-1600 is
	// 51.2 GB/s theoretical; ~50% is sustainable under mixed access).
	SharedBandwidthGBs float64
	// StencilLoadCost scales how strongly the stencil basic block's
	// loads-per-MAC ratio depresses its throughput below peak.
	StencilLoadCost float64
	// TransformGBsPerCore is the streaming rate of the sparse kernel's
	// data-layout transformations (strided copies: well below peak
	// bandwidth).
	TransformGBsPerCore float64
	// SparseAxpyEfficiency is the fraction of peak the pointer-shifting
	// axpy kernel sustains on its non-zero work for long channel vectors.
	SparseAxpyEfficiency float64
}

// Paper returns the model calibrated to the paper's testbed (Intel Xeon
// E5-2650, 16 cores, 41.6 GFlops/core peak, OpenBLAS).
func Paper() Machine {
	return Machine{
		Cores:                16,
		PeakGFlopsPerCore:    41.6,
		HalfPerfAIT:          60,
		SharedBandwidthGBs:   25.6,
		StencilLoadCost:      3.0,
		TransformGBsPerCore:  3.0,
		SparseAxpyEfficiency: 0.55,
	}
}

// EffPerCore returns the roofline throughput (GFlops/core) of a kernel
// whose per-core arithmetic intensity is aitPerCore flops/element.
func (m Machine) EffPerCore(aitPerCore float64) float64 {
	if aitPerCore <= 0 {
		return 0
	}
	return m.PeakGFlopsPerCore * aitPerCore / (aitPerCore + m.HalfPerfAIT)
}

// shareBandwidth rescales a per-core rate when p cores' aggregate
// streaming demand (4 bytes per element at the given AIT) exceeds the
// shared bandwidth.
func (m Machine) shareBandwidth(gflopsPerCore, aitPerCore float64, p int) float64 {
	if aitPerCore <= 0 || gflopsPerCore <= 0 {
		return 0
	}
	demand := float64(p) * gflopsPerCore * 4 / aitPerCore // GB/s
	if demand <= m.SharedBandwidthGBs {
		return gflopsPerCore
	}
	return gflopsPerCore * m.SharedBandwidthGBs / demand
}

// unfoldSeconds returns the time of the (single-threaded) unfolding step
// of one phase: the unfolded matrix is written and read once and the
// original input read once, at the strided-copy streaming rate. In the
// baseline frameworks im2col runs serially per training input — only the
// GEMM itself is parallel — which is the Amdahl term that flattens
// Parallel-GEMM's end-to-end scaling (Fig. 9).
func (m Machine) unfoldSeconds(s conv.Spec) float64 {
	bytes := 4 * (2*float64(s.UnfoldedSize()) + float64(s.InputSize()))
	return bytes / (m.TransformGBsPerCore * 1e9)
}

// mmAITPerCore is the per-core AIT of the row-partitioned MM alone (§3.2):
// each core reads its row slices of A and C but ALL of B.
func mmAITPerCore(mm ait.MM, p int) float64 {
	fp := float64(p)
	flops := 2 * float64(mm.M) * float64(mm.N) * float64(mm.K) / fp
	mem := float64(mm.M)*float64(mm.K)/fp + float64(mm.K)*float64(mm.N) + float64(mm.M)*float64(mm.N)/fp
	return flops / mem
}

// parallelGEMMPhaseSeconds returns the modeled time of one phase of
// Unfold+Parallel-GEMM on p cores: serial unfold plus row-partitioned MM.
func (m Machine) parallelGEMMPhaseSeconds(s conv.Spec, phase ait.Phase, p int) float64 {
	mm := ait.MMOf(s, phase)
	a := mmAITPerCore(mm, p)
	rate := m.shareBandwidth(m.EffPerCore(a), a, p)
	return m.unfoldSeconds(s) + float64(mm.Flops())/(rate*1e9*float64(p))
}

// ParallelGEMM predicts GFlops/core for Unfold+Parallel-GEMM on p cores
// for the given phase — the Fig. 3a series.
func (m Machine) ParallelGEMM(s conv.Spec, phase ait.Phase, p int) float64 {
	t := m.parallelGEMMPhaseSeconds(s, phase, p)
	return float64(ait.MMOf(s, phase).Flops()) / t / 1e9 / float64(p)
}

// ParallelGEMMTraining predicts the GFlops/core of the full training step
// (the three MMs of FP, gradient and delta-weight back to back, as Fig. 3a
// times them): total flops over summed per-phase times.
func (m Machine) ParallelGEMMTraining(s conv.Spec, p int) float64 {
	return m.trainingAggregate(s, p, m.ParallelGEMM)
}

// GEMMInParallel predicts GFlops/core for GEMM-in-Parallel on p cores:
// each core runs the entire phase (unfold + single-threaded GEMM) on its
// own training inputs, so per-core time — and AIT — is the single-core
// value regardless of p (§4.1); only shared-bandwidth contention degrades
// it.
func (m Machine) GEMMInParallel(s conv.Spec, phase ait.Phase, p int) float64 {
	t := m.parallelGEMMPhaseSeconds(s, phase, 1)
	rate := float64(ait.MMOf(s, phase).Flops()) / t / 1e9
	// Aggregate contention is charged at the phase's overall AIT
	// (flops over unfold + MM traffic).
	mm := ait.MMOf(s, phase)
	traffic := 2*float64(s.UnfoldedSize()) + float64(s.InputSize()) +
		float64(mm.M)*float64(mm.K) + float64(mm.K)*float64(mm.N) + float64(mm.M)*float64(mm.N)
	a := float64(mm.Flops()) / traffic
	return m.shareBandwidth(rate, a, p)
}

// GEMMInParallelTraining aggregates the three phases like
// ParallelGEMMTraining.
func (m Machine) GEMMInParallelTraining(s conv.Spec, p int) float64 {
	return m.trainingAggregate(s, p, m.GEMMInParallel)
}

func (m Machine) trainingAggregate(s conv.Spec, p int, rate func(conv.Spec, ait.Phase, int) float64) float64 {
	phases := []ait.Phase{ait.FP, ait.BPInput, ait.BPWeights}
	totalFlops := 0.0
	totalTime := 0.0
	for _, ph := range phases {
		f := float64(ait.MMOf(s, ph).Flops())
		r := rate(s, ph, p)
		if r <= 0 {
			return 0
		}
		totalFlops += f
		totalTime += f / (r * 1e9 * float64(p))
	}
	return totalFlops / totalTime / 1e9 / float64(p)
}

// PackedGEMM predicts GFlops/core for the prepacked-operand engine
// (unfold-packed-gemm) on p cores. The engine runs the weight-consuming
// GEMMs in the orientation that makes the constant weight matrix the
// packable operand, so per §3.2 accounting each core reads only its row
// slice of the VARYING operand (the unfolded image or transposed error)
// plus the packed weights — no operand the size of the unfolded matrix is
// read in full per core — and the O(Nf·taps) pack itself is charged once
// per packAmortBatch images instead of per image. BP-dW has no constant
// operand and keeps the Parallel-GEMM rate.
func (m Machine) PackedGEMM(s conv.Spec, phase ait.Phase, p int) float64 {
	if phase == ait.BPWeights {
		return m.ParallelGEMM(s, phase, p)
	}
	// Nominal images sharing one weight pack: a pack survives a whole
	// batch (and across steps until the optimizer writes the weights).
	const packAmortBatch = 8
	mm := ait.MMOf(s, phase)
	fp := float64(p)
	flops := 2 * float64(mm.M) * float64(mm.N) * float64(mm.K)
	taps := float64(s.GroupNc() * s.Fy * s.Fx)
	nf := float64(s.Nf)
	wElems := nf * taps
	pix := flops / (2 * wElems)
	memPerCore := pix*(taps+nf)/fp + wElems*(1+2/(packAmortBatch*fp))
	a := (flops / fp) / memPerCore
	rate := m.shareBandwidth(m.EffPerCore(a), a, p)
	t := m.unfoldSeconds(s) + flops/(rate*1e9*fp)
	return flops / t / 1e9 / fp
}

// Stencil predicts GFlops/core for the Stencil-Kernel (FP) on p cores:
// throughput is peak discounted by the generated basic block's
// loads-per-MAC (register/L1 traffic), with shared bandwidth charged only
// at the convolution's intrinsic AIT (the stencil streams I and O once).
func (m Machine) Stencil(s conv.Spec, p int) float64 {
	plan := stencil.ChoosePlan(s)
	rate := m.PeakGFlopsPerCore / (1 + m.StencilLoadCost*plan.LoadsPerMAC)
	return m.shareBandwidth(rate, ait.Intrinsic(s), p)
}

// SparseGoodput predicts the Sparse-Kernel's BP goodput in GFlops/core on
// p cores at the given EO sparsity (Fig. 4e): useful flops divided by
// layout-transform time plus non-zero work time.
func (m Machine) SparseGoodput(s conv.Spec, sparsity float64, p int) float64 {
	if sparsity < 0 {
		sparsity = 0
	}
	if sparsity > 1 {
		sparsity = 1
	}
	// Useful flops of one BP pass (EI + dW: both Eq. 3 and Eq. 4 scale
	// with nnz), per core.
	denseFlops := 2 * float64(s.FlopsFP()) // EI + dW
	useful := denseFlops * (1 - sparsity) / float64(p)
	// Layout transforms stream EO, W, EI, I and dW once each regardless of
	// sparsity; that work is also divided across cores (each core handles
	// different images).
	transformBytes := 4 * float64(2*s.OutputSize()+2*s.WeightSize()+2*s.InputSize()) / float64(p)
	tTransform := transformBytes / (m.TransformGBsPerCore * 1e9)
	workRate := m.PeakGFlopsPerCore * m.SparseAxpyEfficiency * channelEfficiency(s.Nc)
	tWork := useful / (workRate * 1e9)
	total := tTransform + tWork
	if total <= 0 {
		return 0
	}
	goodput := useful / total / 1e9
	// Aggregate streaming still shares the socket bandwidth.
	return m.shareBandwidth(goodput, ait.Intrinsic(s), p)
}

// channelEfficiency models how much of the axpy rate survives for short
// channel vectors (per-non-zero loop overhead amortizes over Nc).
func channelEfficiency(nc int) float64 {
	return float64(nc) / (float64(nc) + 4)
}

// BlockedConvFP predicts GFlops/core for the channel-blocked direct FP
// engine on p cores (GEMM-in-Parallel schedule: each core runs whole
// images). The layout removes the unfold entirely — the micro-kernel
// panels exist in the weight layout and the input is read in place — so
// traffic per image is the input re-read once per output-feature block,
// plus the output and weights once. The only transform cost left is the
// NCHW boundary conversion of I and O (absent in an end-to-end blocked
// net, charged here to keep the model honest for a single layer).
func (m Machine) BlockedConvFP(s conv.Spec, p int) float64 {
	flops := float64(s.FlopsFP())
	fBlocks := float64((s.Nf + 7) / 8)
	mem := float64(s.InputSize())*fBlocks + float64(s.OutputSize()) + float64(s.WeightSize())
	a := flops / mem
	rate := m.shareBandwidth(m.EffPerCore(a), a, p)
	if rate <= 0 {
		return 0
	}
	convertBytes := 4 * float64(2*s.InputSize()+2*s.OutputSize())
	t := convertBytes/(m.TransformGBsPerCore*1e9) + flops/(rate*1e9)
	return flops / t / 1e9
}

// SparseWeightFP predicts the sparse-weight engine's FP goodput in
// GFlops/core on p cores at the given weight sparsity: useful flops over
// compression time plus non-zero work time, the FP dual of SparseGoodput.
// Compression streams W once per tensor.Ver and survives a whole batch,
// so it is amortized like the packed engine's weight packs.
func (m Machine) SparseWeightFP(s conv.Spec, wSparsity float64, p int) float64 {
	if wSparsity < 0 {
		wSparsity = 0
	}
	if wSparsity > 1 {
		wSparsity = 1
	}
	useful := float64(s.FlopsFP()) * (1 - wSparsity)
	// Weights are read and the CSR plan written once per version, shared
	// across compressAmort images of the batch.
	const compressAmort = 8
	compressBytes := 4 * 2 * float64(s.WeightSize())
	tCompress := compressBytes / (m.TransformGBsPerCore * 1e9 * compressAmort)
	// Each surviving tap is a row-long axpy: the saxpy rate discounted for
	// short output rows (per-tap setup amortizes over OutX) and for the
	// 1-load-1-store-per-MAC balance of axpy versus the 8-wide dot kernels.
	rowEff := float64(s.OutX()) / (float64(s.OutX()) + 8)
	workRate := m.PeakGFlopsPerCore * m.SparseAxpyEfficiency * rowEff * 0.5
	tWork := useful / (workRate * 1e9)
	total := tCompress + tWork
	if total <= 0 {
		return 0
	}
	goodput := useful / total / 1e9
	return m.shareBandwidth(goodput, ait.Intrinsic(s), p)
}

// UnfoldGEMMBP predicts the dense baseline's BP throughput (GFlops/core,
// GEMM-in-Parallel schedule) used as the Fig. 4f denominator: its time is
// sparsity-independent, so its goodput is throughput × (1 − sparsity)
// (Eq. 10).
func (m Machine) UnfoldGEMMBP(s conv.Spec, p int) float64 {
	fEI := float64(ait.MMOf(s, ait.BPInput).Flops())
	fDW := float64(ait.MMOf(s, ait.BPWeights).Flops())
	rEI := m.GEMMInParallel(s, ait.BPInput, p)
	rDW := m.GEMMInParallel(s, ait.BPWeights, p)
	if rEI <= 0 || rDW <= 0 {
		return 0
	}
	t := fEI/(rEI*1e9) + fDW/(rDW*1e9)
	return (fEI + fDW) / t / 1e9
}

// SparseSpeedup predicts Fig. 4f: Sparse-Kernel BP time over the dense
// GEMM-in-Parallel BP time at the given sparsity, on p cores.
func (m Machine) SparseSpeedup(s conv.Spec, sparsity float64, p int) float64 {
	denseFlops := 2 * float64(s.FlopsFP())
	denseRate := m.UnfoldGEMMBP(s, p) * float64(p) * 1e9
	if denseRate <= 0 {
		return 0
	}
	tDense := denseFlops / denseRate
	goodput := m.SparseGoodput(s, sparsity, p) * float64(p) * 1e9
	useful := denseFlops * (1 - sparsity)
	var tSparse float64
	if useful <= 0 {
		// Fully sparse: only the transforms remain.
		transformBytes := 4 * float64(2*s.OutputSize()+2*s.WeightSize()+2*s.InputSize())
		tSparse = transformBytes / (m.TransformGBsPerCore * 1e9 * float64(p))
	} else {
		tSparse = useful / goodput
	}
	if tSparse <= 0 {
		return 0
	}
	return tDense / tSparse
}
