package nn

import (
	"fmt"
	"math"
	"sync"
	"time"

	"spgcnn/internal/exec"
	"spgcnn/internal/par"
	"spgcnn/internal/rng"
	"spgcnn/internal/tensor"
)

// FC is a fully-connected layer y = W·x + b over flattened inputs (the
// classifier head of every benchmark network). The batch is processed with
// GEMM-in-Parallel scheduling: one image per worker; per-worker gradient
// accumulators come from the execution context's arena.
type FC struct {
	name   string
	inDims []int
	inLen  int
	outLen int
	ctx    *exec.Ctx

	W, B   *tensor.Tensor // W: [out][in], B: [out]
	dW, dB *tensor.Tensor
	mu     sync.Mutex // guards dW/dB accumulation across workers
	opt    sgdState   // optimizer config (momentum.go)

	spanFP, spanBP string // probe span names (same scheme as Conv)
}

// NewFCCtx builds a fully-connected layer mapping prod(inDims) -> out,
// scheduling over the given execution context.
func NewFCCtx(name string, inDims []int, out int, c *exec.Ctx, r *rng.RNG) *FC {
	if out < 1 {
		panic("nn: FC output size must be positive")
	}
	if c == nil {
		c = exec.New(1)
	}
	inLen := prod(inDims)
	l := &FC{
		name:   name,
		inDims: append([]int(nil), inDims...),
		inLen:  inLen,
		outLen: out,
		ctx:    c,
		W:      tensor.New(out, inLen),
		B:      tensor.New(out),
		dW:     tensor.New(out, inLen),
		dB:     tensor.New(out),
	}
	l.spanFP = "layer/" + name + "/fp/gemm-in-parallel"
	l.spanBP = "layer/" + name + "/bp/gemm-in-parallel"
	l.W.FillNormal(r, 0, float32(math.Sqrt(2/float64(inLen))))
	return l
}

// NewFC builds a fully-connected layer with a private context of the given
// worker count.
func NewFC(name string, inDims []int, out, workers int, r *rng.RNG) *FC {
	return NewFCCtx(name, inDims, out, exec.New(workers), r)
}

// Name implements Layer.
func (l *FC) Name() string { return l.name }

// InDims implements Layer.
func (l *FC) InDims() []int { return l.inDims }

// OutDims implements Layer.
func (l *FC) OutDims() []int { return []int{l.outLen} }

// Forward implements Layer.
func (l *FC) Forward(outs, ins []*tensor.Tensor) {
	if len(outs) != len(ins) {
		panic(fmt.Sprintf("nn: %s Forward batch mismatch", l.name))
	}
	start := time.Now()
	par.For(len(ins), l.ctx.Workers(), func(i int) {
		x := ins[i].Data
		y := outs[i].Data
		for o := 0; o < l.outLen; o++ {
			row := l.W.Data[o*l.inLen : (o+1)*l.inLen]
			var s float32
			for j, v := range row {
				s += v * x[j]
			}
			y[o] = s + l.B.Data[o]
		}
	})
	l.ctx.Probe().Observe(l.spanFP, time.Since(start).Seconds())
}

// Backward implements Layer: ei = Wᵀ·eo, dW += eo⊗x, dB += eo.
func (l *FC) Backward(eis, eos, ins []*tensor.Tensor) {
	if len(eis) != len(eos) || len(eos) != len(ins) {
		panic(fmt.Sprintf("nn: %s Backward batch mismatch", l.name))
	}
	start := time.Now()
	par.ForWorkers(len(eos), l.ctx.Workers(), func(_, lo, hi int) {
		if lo >= hi {
			return
		}
		dW := l.ctx.GetTensor(l.outLen, l.inLen)
		dB := l.ctx.GetTensor(l.outLen)
		dW.Zero()
		dB.Zero()
		for i := lo; i < hi; i++ {
			eo := eos[i].Data
			x := ins[i].Data
			ei := eis[i].Data
			for j := range ei {
				ei[j] = 0
			}
			for o := 0; o < l.outLen; o++ {
				g := eo[o]
				if g == 0 {
					continue
				}
				wrow := l.W.Data[o*l.inLen : (o+1)*l.inLen]
				drow := dW.Data[o*l.inLen : (o+1)*l.inLen]
				for j, wv := range wrow {
					ei[j] += g * wv
					drow[j] += g * x[j]
				}
				dB.Data[o] += g
			}
		}
		l.mu.Lock()
		l.dW.AddScaled(dW, 1)
		l.dB.AddScaled(dB, 1)
		l.mu.Unlock()
		l.ctx.PutTensor(dB)
		l.ctx.PutTensor(dW)
	})
	l.ctx.Probe().Observe(l.spanBP, time.Since(start).Seconds())
}

// ApplyGrads implements Layer.
func (l *FC) ApplyGrads(lr float32, batch int) {
	l.opt.step(l.W, l.dW, lr, batch)
	l.opt.step(l.B, l.dB, lr, batch)
}

// EpochEnd implements Layer.
func (l *FC) EpochEnd() {}
