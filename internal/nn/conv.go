package nn

import (
	"fmt"
	"math"
	"time"

	"spgcnn/internal/conv"
	"spgcnn/internal/core"
	"spgcnn/internal/exec"
	"spgcnn/internal/rng"
	"spgcnn/internal/tensor"
)

// ConvExecutor abstracts how a convolution layer's batch computations run:
// a fixed core.Exec (one strategy) or a core.AutoConv (spg-CNN's
// self-tuning scheduler). Both satisfy this interface shape; Conv adapts
// them through small funcs to keep the layer independent of the choice.
type ConvExecutor interface {
	Forward(outs, ins []*tensor.Tensor, w *tensor.Tensor)
	EpochEnd()
}

// fixedExec adapts a core.Exec (single strategy for both phases).
type fixedExec struct{ e *core.Exec }

func (f fixedExec) Forward(outs, ins []*tensor.Tensor, w *tensor.Tensor) {
	f.e.Forward(outs, ins, w)
}
func (f fixedExec) backward(eis []*tensor.Tensor, dw *tensor.Tensor, eos, ins []*tensor.Tensor, w *tensor.Tensor) {
	f.e.BackwardInput(eis, eos, w)
	f.e.BackwardWeights(dw, eos, ins)
}
func (f fixedExec) EpochEnd() {}
func (f fixedExec) strategyNames() (fp, bp string) {
	n := f.e.Strategy().Name
	return n, n
}
func (f fixedExec) strategyLayouts() (fp, bp tensor.Layout) {
	l := f.e.Strategy().Layout
	return l, l
}

// splitExec runs different fixed strategies for FP and BP — how the
// paper's composed configurations (e.g. Stencil-Kernel FP + Sparse-Kernel
// BP, Fig. 9) are expressed.
type splitExec struct{ fp, bp *core.Exec }

func (s splitExec) Forward(outs, ins []*tensor.Tensor, w *tensor.Tensor) {
	s.fp.Forward(outs, ins, w)
}
func (s splitExec) backward(eis []*tensor.Tensor, dw *tensor.Tensor, eos, ins []*tensor.Tensor, w *tensor.Tensor) {
	s.bp.BackwardInput(eis, eos, w)
	s.bp.BackwardWeights(dw, eos, ins)
}
func (s splitExec) EpochEnd() {}
func (s splitExec) strategyNames() (fp, bp string) {
	return s.fp.Strategy().Name, s.bp.Strategy().Name
}
func (s splitExec) strategyLayouts() (fp, bp tensor.Layout) {
	return s.fp.Strategy().Layout, s.bp.Strategy().Layout
}

// autoExec adapts core.AutoConv.
type autoExec struct{ a *core.AutoConv }

func (x autoExec) Forward(outs, ins []*tensor.Tensor, w *tensor.Tensor) {
	x.a.Forward(outs, ins, w)
}
func (x autoExec) backward(eis []*tensor.Tensor, dw *tensor.Tensor, eos, ins []*tensor.Tensor, w *tensor.Tensor) {
	x.a.Backward(eis, dw, eos, ins, w)
}
func (x autoExec) EpochEnd() { x.a.EpochEnd() }
func (x autoExec) strategyNames() (fp, bp string) {
	fp, bp = "tuning", "tuning"
	if sel := x.a.FPSelection(); sel.Chosen != nil {
		fp = sel.Chosen.Strategy().Name
	}
	if sel := x.a.BPSelection(); sel.Chosen != nil {
		bp = sel.Chosen.Strategy().Name
	}
	return fp, bp
}
func (x autoExec) strategyLayouts() (fp, bp tensor.Layout) {
	if sel := x.a.FPSelection(); sel.Chosen != nil {
		fp = sel.Chosen.Strategy().Layout
	}
	if sel := x.a.BPSelection(); sel.Chosen != nil {
		bp = sel.Chosen.Strategy().Layout
	}
	return fp, bp
}

type convBackend interface {
	ConvExecutor
	backward(eis []*tensor.Tensor, dw *tensor.Tensor, eos, ins []*tensor.Tensor, w *tensor.Tensor)
	// strategyNames reports the currently deployed FP and BP strategy
	// names — the third level of the layer/phase/strategy span tree.
	strategyNames() (fp, bp string)
	// strategyLayouts reports the activation layouts those strategies
	// compute in (tensor.NCHW until a blocked strategy is deployed).
	strategyLayouts() (fp, bp tensor.Layout)
}

// Conv is a convolution layer with per-feature bias. The execution
// strategy is pluggable: NewConv uses spg-CNN's auto-tuning scheduler;
// NewConvFixed pins one strategy (how the baseline configurations of
// Fig. 9 are built).
type Conv struct {
	name string
	spec conv.Spec
	ctx  *exec.Ctx

	W, B   *tensor.Tensor // weights [Nf][Nc][Fy][Fx], bias [Nf]
	dW, dB *tensor.Tensor
	opt    sgdState // optimizer config (momentum.go)

	exec convBackend

	// EOSparsity accumulates the observed sparsity of the output-error
	// gradients across Backward calls since the last TakeSparsity — the
	// Fig. 3b probe.
	eoSparsitySum float64
	eoBatches     int

	// Cached probe span paths "layer/<name>/<phase>/<strategy>". The auto
	// scheduler deploys strategies lazily and may flip BP at epoch
	// boundaries, so the cache is rebuilt until both names are final and
	// invalidated by EpochEnd.
	spanFP, spanBP string
	spansFinal     bool
}

// NewConvCtx builds an auto-tuned convolution layer (spg-CNN scheduling)
// running under the given execution context.
func NewConvCtx(name string, s conv.Spec, c *exec.Ctx, r *rng.RNG) *Conv {
	l := newConvCommon(name, s, c, r)
	l.exec = autoExec{core.NewAutoConv(s, 0, core.AutoOptions{Ctx: l.ctx})}
	return l
}

// NewConv builds an auto-tuned convolution layer with a private context of
// the given worker count.
func NewConv(name string, s conv.Spec, workers int, r *rng.RNG) *Conv {
	return NewConvCtx(name, s, exec.New(workers), r)
}

// NewConvPlannedCtx builds an auto-tuned convolution layer whose strategy
// selection is delegated to pl — typically one plan.Planner shared by every
// layer of a network (and every replica of a data-parallel trainer), so
// layers with identical geometry tune once and deploy everywhere. A nil
// planner degrades to NewConvCtx's measure-every-time behavior.
func NewConvPlannedCtx(name string, s conv.Spec, pl core.Planner, c *exec.Ctx, r *rng.RNG) *Conv {
	l := newConvCommon(name, s, c, r)
	l.exec = autoExec{core.NewAutoConv(s, 0, core.AutoOptions{Ctx: l.ctx, Planner: pl})}
	return l
}

// NewConvFixedCtx builds a convolution layer pinned to one strategy under
// the given execution context.
func NewConvFixedCtx(name string, s conv.Spec, st core.Strategy, c *exec.Ctx, r *rng.RNG) *Conv {
	l := newConvCommon(name, s, c, r)
	l.exec = fixedExec{core.NewExecCtx(st, s, l.ctx)}
	return l
}

// NewConvFixed builds a convolution layer pinned to one strategy with a
// private context of the given worker count.
func NewConvFixed(name string, s conv.Spec, st core.Strategy, workers int, r *rng.RNG) *Conv {
	return NewConvFixedCtx(name, s, st, exec.New(workers), r)
}

// NewConvSplitCtx builds a convolution layer with separate fixed strategies
// for forward and backward propagation, both under the given context.
func NewConvSplitCtx(name string, s conv.Spec, fp, bp core.Strategy, c *exec.Ctx, r *rng.RNG) *Conv {
	l := newConvCommon(name, s, c, r)
	l.exec = splitExec{fp: core.NewExecCtx(fp, s, l.ctx), bp: core.NewExecCtx(bp, s, l.ctx)}
	return l
}

// NewConvSplit builds a split-strategy convolution layer with a private
// context of the given worker count.
func NewConvSplit(name string, s conv.Spec, fp, bp core.Strategy, workers int, r *rng.RNG) *Conv {
	return NewConvSplitCtx(name, s, fp, bp, exec.New(workers), r)
}

func newConvCommon(name string, s conv.Spec, ctx *exec.Ctx, r *rng.RNG) *Conv {
	s.MustValidate()
	if ctx == nil {
		ctx = exec.New(1)
	}
	c := &Conv{
		name: name,
		spec: s,
		ctx:  ctx,
		W:    conv.NewWeights(s),
		B:    tensor.New(s.Nf),
		dW:   conv.NewWeights(s),
		dB:   tensor.New(s.Nf),
	}
	// He initialization: stddev = sqrt(2 / fan-in). Grouped layers see only
	// their group's channel slab, so fan-in is Nc/G taps.
	fanIn := float64(s.GroupNc() * s.Fy * s.Fx)
	c.W.FillNormal(r, 0, float32(math.Sqrt(2/fanIn)))
	// Track weight versions from the start so engines that cache packed
	// operands (unfoldgemm.PackedKernel) reuse them across batches and
	// steps, invalidating only on ApplyGrads.
	c.W.Bump()
	return c
}

// Name implements Layer.
func (c *Conv) Name() string { return c.name }

// Spec returns the convolution geometry.
func (c *Conv) Spec() conv.Spec { return c.spec }

// Ctx returns the execution context the layer runs under.
func (c *Conv) Ctx() *exec.Ctx { return c.ctx }

// InDims implements Layer.
func (c *Conv) InDims() []int { return []int{c.spec.Nc, c.spec.Ny, c.spec.Nx} }

// OutDims implements Layer.
func (c *Conv) OutDims() []int { return []int{c.spec.Nf, c.spec.OutY(), c.spec.OutX()} }

// refreshSpans rebuilds the cached span paths from the currently deployed
// strategies.
func (c *Conv) refreshSpans() {
	fp, bp := c.exec.strategyNames()
	c.spanFP = "layer/" + c.name + "/fp/" + fp
	c.spanBP = "layer/" + c.name + "/bp/" + bp
	c.spansFinal = fp != "tuning" && bp != "tuning"
}

// Forward implements Layer: convolution plus per-feature bias.
func (c *Conv) Forward(outs, ins []*tensor.Tensor) {
	start := time.Now()
	c.exec.Forward(outs, ins, c.W)
	oy, ox := c.spec.OutY(), c.spec.OutX()
	for _, out := range outs {
		for f := 0; f < c.spec.Nf; f++ {
			b := c.B.Data[f]
			if b == 0 {
				continue
			}
			plane := out.Data[f*oy*ox : (f+1)*oy*ox]
			for i := range plane {
				plane[i] += b
			}
		}
	}
	if !c.spansFinal {
		c.refreshSpans()
	}
	c.ctx.Probe().Observe(c.spanFP, time.Since(start).Seconds())
}

// Backward implements Layer. It also records the error-gradient sparsity
// the Fig. 3b experiment tracks.
func (c *Conv) Backward(eis, eos, ins []*tensor.Tensor) {
	start := time.Now()
	for _, eo := range eos {
		c.eoSparsitySum += eo.Sparsity()
		c.eoBatches++
	}
	dwTmp := c.ctx.GetTensor(c.spec.WeightDims()...)
	c.exec.backward(eis, dwTmp, eos, ins, c.W)
	c.dW.AddScaled(dwTmp, 1)
	c.ctx.PutTensor(dwTmp)
	oy, ox := c.spec.OutY(), c.spec.OutX()
	for _, eo := range eos {
		for f := 0; f < c.spec.Nf; f++ {
			plane := eo.Data[f*oy*ox : (f+1)*oy*ox]
			var sum float32
			for _, v := range plane {
				sum += v
			}
			c.dB.Data[f] += sum
		}
	}
	if !c.spansFinal {
		c.refreshSpans()
	}
	c.ctx.Probe().Observe(c.spanBP, time.Since(start).Seconds())
}

// ApplyGrads implements Layer.
func (c *Conv) ApplyGrads(lr float32, batch int) {
	c.opt.step(c.W, c.dW, lr, batch)
	c.opt.step(c.B, c.dB, lr, batch)
	// The in-place weight update invalidates any cached packed operands.
	c.W.Bump()
}

// EpochEnd implements Layer: forwards to the scheduler (BP re-check). The
// re-check may flip the deployed BP strategy, so the cached span paths are
// invalidated.
func (c *Conv) EpochEnd() {
	c.exec.EpochEnd()
	c.spansFinal = false
}

// TakeSparsity returns the mean observed EO sparsity since the last call
// and resets the probe. Returns 0 with ok=false if nothing was recorded.
func (c *Conv) TakeSparsity() (float64, bool) {
	if c.eoBatches == 0 {
		return 0, false
	}
	s := c.eoSparsitySum / float64(c.eoBatches)
	c.eoSparsitySum, c.eoBatches = 0, 0
	return s, true
}

// Layouts reports the activation layouts of the currently deployed FP and
// BP strategies — the planner's layout verdict surfaced at the layer
// level. Until the scheduler deploys, both report the canonical NCHW.
func (c *Conv) Layouts() (fp, bp tensor.Layout) {
	return c.exec.strategyLayouts()
}

// Retune asks the scheduler to re-select the given phase's strategy
// ("fp", "bp", or "" for both) on its next batch — the layer-level re-tune
// trigger the drift observatory's coupler invokes after invalidating the
// planner's cached verdict. Reports false for layers without a scheduler
// (fixed, split or inference-bucketed execution). Must be called from the
// training goroutine (between batches), like EpochEnd.
func (c *Conv) Retune(phase string) bool {
	a, isAuto := c.exec.(autoExec)
	if !isAuto {
		return false
	}
	a.a.Retune(phase)
	c.spansFinal = false // the re-plan may deploy a different strategy
	return true
}

// Selections returns the spg-CNN scheduler's FP and BP measurement tables
// when this layer is auto-tuned (ok=false for fixed-strategy layers or
// before the first tuned batch).
func (c *Conv) Selections() (fp, bp core.Selection, ok bool) {
	a, isAuto := c.exec.(autoExec)
	if !isAuto {
		return core.Selection{}, core.Selection{}, false
	}
	fp = a.a.FPSelection()
	bp = a.a.BPSelection()
	return fp, bp, fp.Chosen != nil || bp.Chosen != nil
}

// String describes the layer.
func (c *Conv) String() string {
	return fmt.Sprintf("Conv(%s: %v)", c.name, c.spec)
}
