// Package obs is spg-CNN's plan-drift observatory: continuous
// model-vs-measured agreement tracking for every deployed strategy, with
// automatic re-tune triggers when reality drifts away from the plan.
//
// The §4.4 scheduler and the internal/plan cache stand or fall on the
// machine model (and the one-shot measurement it gates) staying
// representative of the running host. Nothing in the measure-and-deploy
// loop notices when a deployed strategy slows down afterwards — co-tenant
// interference, thermal throttling, GC pressure, or sparsity drifting out
// of the band the verdict was tuned for. The observatory closes that gap:
// it rides the same probe/span seam as trace.ProbeSink and metrics.Bind
// (exec.Probe.AddSink), converts each deployed-strategy span into a
// measured-vs-predicted ratio using the planner's own analytical rate
// (plan.ModelRate over internal/machine, placed by internal/ait), and
// maintains per-layer/per-phase EWMA agreement statistics bucketed by
// Fig. 1 region and sparsity band.
//
// When the EWMA ratio deviates from its frozen baseline by more than
// Options.Threshold for Options.Window consecutive observations, the
// observatory emits a drift event — a trace instant, spg_drift_* metric
// series, and the OnDrift callback. The Coupler (coupler.go) wires that
// callback back into the planner: the affected plan keys are invalidated
// and the layer's scheduler latch cleared, so the next batch re-measures
// instead of free-hitting a stale verdict.
//
// Detection is RELATIVE to the observed baseline, not to the model's
// absolute prediction: the machine model is calibrated to the paper's
// hardware, so on an arbitrary host the measured/predicted ratio settles
// at some host-specific constant. The observatory freezes that constant
// after Options.Warmup observations and alarms on departures from it —
// absolute agreement is still reported (Report), it just doesn't alarm.
package obs

import (
	"fmt"
	"strings"
	"sync"

	"spgcnn/internal/ait"
	"spgcnn/internal/conv"
	"spgcnn/internal/exec"
	"spgcnn/internal/machine"
	"spgcnn/internal/metrics"
	"spgcnn/internal/plan"
	"spgcnn/internal/trace"
)

// DefaultThreshold is the drift alarm factor: an observation breaches when
// the smoothed measured/predicted ratio leaves [baseline/t, baseline×t].
// 1.5× is far outside run-to-run timing noise once EWMA-smoothed, yet
// fires quickly under genuine interference (a co-tenant stealing half the
// machine doubles span times).
const DefaultThreshold = 1.5

// DefaultWindow is the number of CONSECUTIVE breaching observations
// required before a drift event fires — single-batch hiccups (a GC cycle,
// a page-fault storm) never trigger a re-tune.
const DefaultWindow = 3

// DefaultAlpha is the EWMA smoothing factor for the agreement ratio.
const DefaultAlpha = 0.25

// DefaultWarmup is the number of observations of a deployed strategy
// before its baseline ratio freezes and drift detection arms.
const DefaultWarmup = 5

// Options configures an Observatory. The zero value is usable: paper
// machine model, GOMAXPROCS-sized worker count, and the default
// threshold/window/alpha/warmup.
type Options struct {
	// Machine is the analytical model predictions come from. Nil uses
	// machine.Paper() — the same default the planner runs with.
	Machine *machine.Machine
	// Workers is the execution context's worker count, used to turn
	// per-core model rates into wall-time predictions. Zero or negative
	// defaults to 1; bind the real context's Workers().
	Workers int
	// Threshold overrides DefaultThreshold (values <= 1 take the default).
	Threshold float64
	// Window overrides DefaultWindow (values < 1 take the default).
	Window int
	// Alpha overrides DefaultAlpha (values outside (0, 1] take the default).
	Alpha float64
	// Warmup overrides DefaultWarmup (values < 1 take the default).
	Warmup int
	// OnDrift, when non-nil, is invoked synchronously (outside the
	// observatory lock, on the goroutine that observed the breaching
	// span) for every drift event — the re-tune trigger seam. See Coupler.
	OnDrift func(DriftEvent)
	// Trace, when non-nil, records drift events as instants on the
	// timeline (category "drift").
	Trace *trace.Emitter
	// Metrics, when non-nil, exports the spg_drift_* series: per-stream
	// agreement gauges and the drift-event counter.
	Metrics *metrics.Registry
}

// DriftEvent describes one fired drift alarm.
type DriftEvent struct {
	// Layer, Phase, Strategy identify the drifting deployment; Spec is the
	// layer's registered geometry.
	Layer    string    `json:"layer"`
	Phase    string    `json:"phase"` // "fp" or "bp"
	Strategy string    `json:"strategy"`
	Spec     conv.Spec `json:"spec"`
	// Region is the deployment's Fig. 1 cell; Band its plan-cache
	// sparsity band at fire time.
	Region int `json:"region"`
	Band   int `json:"band"`
	// Ratio is the EWMA measured/predicted ratio that fired; Baseline the
	// frozen reference it departed from. Ratio/Baseline > 1 means the
	// strategy runs slower than its own steady state (host pressure);
	// < 1 means faster (e.g. interference ended, or sparsity rose).
	Ratio    float64 `json:"ratio"`
	Baseline float64 `json:"baseline"`
	// Observation is the stream's observation count when the event fired.
	Observation int64 `json:"observation"`
}

func (e DriftEvent) String() string {
	return fmt.Sprintf("drift %s/%s [%s, region %d band %d]: ewma %.2fx baseline %.2f at obs %d",
		e.Layer, e.Phase, e.Strategy, e.Region, e.Band, e.Ratio/e.Baseline, e.Baseline, e.Observation)
}

// layerInfo is a registered layer's geometry plus the latest sparsity
// signals the glue feeds in (weight sparsity drives FP model rates and
// bands; gradient sparsity drives BP).
type layerInfo struct {
	spec       conv.Spec
	wSparsity  float64
	eoSparsity float64
}

// streamKey identifies one drift-tracked series: a layer and phase. The
// deployed strategy lives on the stream value — a redeployment resets the
// stream rather than forking it.
type streamKey struct {
	layer string
	phase string
}

// stream is the online state of one (layer, phase) series.
type stream struct {
	strategy string
	rate     float64 // dense-equivalent GFlops/core under the model
	sparsity float64 // sparsity the rate was computed at
	// skipped marks whether the stream's first span was discarded: the
	// scheduler tunes lazily inside the first batch, so that span carries
	// the measurement pass on top of the deployed kernel and would poison
	// the warmup EWMA by an order of magnitude.
	skipped   bool
	ewma      float64
	baseline  float64 // frozen after warmup; 0 while warming
	obs       int64
	breaches  int
	drifts    int
	measured  float64 // total measured seconds
	predicted float64 // total predicted seconds
	ratioG    *metrics.Gauge
	ewmaG     *metrics.Gauge
}

// Observatory implements exec.Sink: attach with ctx.Probe().AddSink so it
// observes the same span stream as the metrics bridge and the tracer.
// Safe for concurrent use (data-parallel replicas share one observatory
// exactly as they share one planner).
type Observatory struct {
	opts Options
	mach machine.Machine

	mu       sync.Mutex
	layers   map[string]*layerInfo
	streams  map[streamKey]*stream
	batch    int
	slowdown float64 // fault-injection factor; 0 or 1 = off
	events   []DriftEvent
	eventCtr *metrics.Counter
}

var _ exec.Sink = (*Observatory)(nil)

// New builds an observatory.
func New(opts Options) *Observatory {
	o := &Observatory{
		opts:    opts,
		layers:  make(map[string]*layerInfo),
		streams: make(map[streamKey]*stream),
		batch:   1,
	}
	if opts.Machine != nil {
		o.mach = *opts.Machine
	} else {
		o.mach = machine.Paper()
	}
	if o.opts.Workers < 1 {
		o.opts.Workers = 1
	}
	if o.opts.Threshold <= 1 {
		o.opts.Threshold = DefaultThreshold
	}
	if o.opts.Window < 1 {
		o.opts.Window = DefaultWindow
	}
	if o.opts.Alpha <= 0 || o.opts.Alpha > 1 {
		o.opts.Alpha = DefaultAlpha
	}
	if o.opts.Warmup < 1 {
		o.opts.Warmup = DefaultWarmup
	}
	if r := o.opts.Metrics; r != nil {
		o.eventCtr = r.Counter("spg_drift_events_total",
			"Drift events fired (EWMA agreement ratio left its baseline band).")
	}
	return o
}

// RegisterLayer declares a convolution layer's geometry so its spans can
// be converted into predictions. Spans of unregistered layers are ignored.
func (o *Observatory) RegisterLayer(name string, s conv.Spec) {
	s.MustValidate()
	o.mu.Lock()
	o.layers[name] = &layerInfo{spec: s.Canon()}
	o.mu.Unlock()
}

// SetBatch sets the minibatch size predictions assume. Ragged final
// batches are absorbed by the EWMA and the consecutive-breach window.
func (o *Observatory) SetBatch(n int) {
	if n < 1 {
		n = 1
	}
	o.mu.Lock()
	o.batch = n
	o.mu.Unlock()
}

// SetSparsity updates a layer's sparsity signals: wSparsity is the weight
// sparsity driving FP predictions, eoSparsity the error-gradient sparsity
// driving BP predictions (the Fig. 3b probe's output — feed it per epoch
// from nn.EpochStats.ConvSparsity). A change re-rates the layer's streams
// WITHOUT resetting drift state: model-rate changes from sparsity are part
// of the plan, not drift. Negative values leave the old signal in place.
func (o *Observatory) SetSparsity(layer string, wSparsity, eoSparsity float64) {
	o.mu.Lock()
	defer o.mu.Unlock()
	li := o.layers[layer]
	if li == nil {
		return
	}
	if wSparsity >= 0 {
		li.wSparsity = wSparsity
	}
	if eoSparsity >= 0 {
		li.eoSparsity = eoSparsity
	}
	for key, st := range o.streams {
		if key.layer != layer {
			continue
		}
		sp := li.wSparsity
		if key.phase == "bp" {
			sp = li.eoSparsity
		}
		if rate, ok := plan.ModelRate(o.mach, li.spec, key.phase, sp, o.opts.Workers, st.strategy); ok {
			// The EWMA and baseline carry the dimensionless measured/
			// predicted ratio, so they survive the re-rate untouched: when
			// reality follows the model (sparse spans speed up as sparsity
			// rises), the ratio is invariant; when it does not, the
			// departure is genuine model error and SHOULD alarm.
			st.rate = rate
			st.sparsity = sp
		}
	}
}

// SetSlowdown installs the fault-injection factor: every subsequently
// observed span time is multiplied by f before accounting, simulating a
// host slowdown (co-tenant interference) without perturbing the workload.
// This is the deterministic seam the drift acceptance test and
// scripts/drift_check.sh inject through. f <= 0 or 1 disables.
func (o *Observatory) SetSlowdown(f float64) {
	o.mu.Lock()
	o.slowdown = f
	o.mu.Unlock()
}

// RecordChoice implements exec.Sink. Deployment decisions reset the
// affected streams lazily (the next span's strategy name won't match), so
// nothing to do here.
func (o *Observatory) RecordChoice(phase, strategy string, seconds float64) {}

// ObserveSpan implements exec.Sink: layer spans ("layer/<name>/<phase>/
// <strategy>") are folded into their stream's agreement state; every other
// span category passes through untouched.
func (o *Observatory) ObserveSpan(name string, seconds float64) {
	// Fast reject before any allocation: the hot path sees pack/, blockw/,
	// step/ and similar non-layer spans too.
	if !strings.HasPrefix(name, "layer/") {
		return
	}
	rest := name[len("layer/"):]
	i := strings.IndexByte(rest, '/')
	if i < 0 {
		return
	}
	layer := rest[:i]
	rest = rest[i+1:]
	j := strings.IndexByte(rest, '/')
	if j < 0 {
		return
	}
	phase, strategy := rest[:j], rest[j+1:]
	if (phase != "fp" && phase != "bp") || strategy == "" || strategy == "tuning" {
		return
	}

	var fire *DriftEvent
	o.mu.Lock()
	li := o.layers[layer]
	if li == nil {
		o.mu.Unlock()
		return
	}
	if o.slowdown > 0 && o.slowdown != 1 {
		seconds *= o.slowdown
	}
	key := streamKey{layer: layer, phase: phase}
	st := o.streams[key]
	if st == nil || st.strategy != strategy {
		// First deployment, or a redeploy (bp-flip, post-drift re-tune):
		// fresh stream state — the old strategy's baseline says nothing
		// about the new one.
		sp := li.wSparsity
		if phase == "bp" {
			sp = li.eoSparsity
		}
		rate, ok := plan.ModelRate(o.mach, li.spec, phase, sp, o.opts.Workers, strategy)
		if !ok {
			// Unmodeled strategy: nothing to compare against. Park a
			// sentinel stream so the lookup stays cheap.
			o.streams[key] = &stream{strategy: strategy}
			o.mu.Unlock()
			return
		}
		st = &stream{strategy: strategy, rate: rate, sparsity: sp}
		if r := o.opts.Metrics; r != nil {
			st.ratioG = r.Gauge("spg_drift_agreement_ratio",
				"Instantaneous measured/predicted span-time ratio per deployed strategy.",
				"layer", layer, "phase", phase)
			st.ewmaG = r.Gauge("spg_drift_ewma_ratio",
				"EWMA-smoothed measured/predicted span-time ratio per deployed strategy.",
				"layer", layer, "phase", phase)
		}
		o.streams[key] = st
	}
	if st.rate <= 0 { // unmodeled sentinel
		o.mu.Unlock()
		return
	}
	if !st.skipped {
		st.skipped = true
		o.mu.Unlock()
		return
	}

	pred := o.predictLocked(li.spec, phase, st.rate)
	if pred <= 0 {
		o.mu.Unlock()
		return
	}
	ratio := seconds / pred
	st.obs++
	st.measured += seconds
	st.predicted += pred
	if st.obs == 1 {
		st.ewma = ratio
	} else {
		st.ewma = o.opts.Alpha*ratio + (1-o.opts.Alpha)*st.ewma
	}
	if st.ratioG != nil {
		st.ratioG.Set(ratio)
		st.ewmaG.Set(st.ewma)
	}
	switch {
	case st.baseline == 0:
		if st.obs >= int64(o.opts.Warmup) {
			st.baseline = st.ewma
		}
	case st.ewma > st.baseline*o.opts.Threshold || st.ewma < st.baseline/o.opts.Threshold:
		st.breaches++
		if st.breaches >= o.opts.Window {
			sp := st.sparsity
			classify := sp
			if phase == "fp" {
				classify = 0 // FP region placement is the dense column
			}
			ev := DriftEvent{
				Layer: layer, Phase: phase, Strategy: strategy,
				Spec:   li.spec,
				Region: int(ait.Classify(li.spec, classify)),
				Band:   plan.Band(sp),
				Ratio:  st.ewma, Baseline: st.baseline,
				Observation: st.obs,
			}
			o.events = append(o.events, ev)
			st.drifts++
			st.breaches = 0
			// Re-arm against the new steady state: baseline moves to the
			// current EWMA so a persistent slowdown doesn't fire every
			// Window observations. The next span is also discarded — when
			// the event triggers a re-tune that redeploys the SAME
			// strategy, that span carries the re-measurement pass and would
			// immediately poison the re-armed stream.
			st.baseline = st.ewma
			st.skipped = false
			fire = &ev
		}
	default:
		st.breaches = 0
	}
	tr, cb, ctr := o.opts.Trace, o.opts.OnDrift, o.eventCtr
	o.mu.Unlock()

	if fire != nil {
		if ctr != nil {
			ctr.Inc()
		}
		tr.Instant("drift", "drift/"+layer+"/"+phase, strategy, fire.Ratio/fire.Baseline)
		if cb != nil {
			cb(*fire)
		}
	}
}

// predictLocked models the wall time of one whole-batch span: batch ×
// per-image dense flops over the strategy's dense-equivalent rate spread
// across the workers. Callers hold o.mu.
func (o *Observatory) predictLocked(s conv.Spec, phase string, rate float64) float64 {
	var flops float64
	if phase == "fp" {
		flops = float64(s.FlopsFP())
	} else {
		flops = float64(s.FlopsBPInput() + s.FlopsBPWeights())
	}
	return float64(o.batch) * flops / (rate * 1e9 * float64(o.opts.Workers))
}

// Events returns a copy of every drift event fired so far, oldest first.
func (o *Observatory) Events() []DriftEvent {
	o.mu.Lock()
	defer o.mu.Unlock()
	return append([]DriftEvent(nil), o.events...)
}
