package explore_test

import (
	"strings"
	"testing"

	"spgcnn/internal/explore"
	"spgcnn/internal/netdef"
)

// TestReportZooMarkers checks the structural content of the report for
// every zoo net: header, one layer block per conv, the six-region table,
// and the capability seam surfacing as a declined list on generalized
// layers (the cmd/spg-plan golden test pins the exact bytes).
func TestReportZooMarkers(t *testing.T) {
	for _, z := range netdef.Zoo() {
		def, err := netdef.Parse(z.Src)
		if err != nil {
			t.Fatalf("%s: %v", z.Name, err)
		}
		var out strings.Builder
		if err := explore.Report(&out, def, explore.Options{}); err != nil {
			t.Fatalf("%s: %v", z.Name, err)
		}
		got := out.String()
		for _, want := range []string{
			"net " + z.Name,
			"modeled at p=16, 85% BP error sparsity",
			"Fig. 1 placement",
			"Region 5 (low AIT, sparse)",
			"total conv flops",
			"fp  1.",
			"bp  1.",
		} {
			if !strings.Contains(got, want) {
				t.Errorf("%s: report missing %q:\n%s", z.Name, want, got)
			}
		}
	}
}

// TestReportShowsCapabilitySeam: a padded layer must list the plain-only
// sparse candidates as declined rather than ranking them.
func TestReportShowsCapabilitySeam(t *testing.T) {
	def, err := netdef.Parse(netdef.ZooDepthwiseNet)
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := explore.Report(&out, def, explore.Options{}); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "declined: ") {
		t.Fatalf("depthwise report shows no declined candidates:\n%s", got)
	}
	if !strings.Contains(got, "sparse-weight") || !strings.Contains(got, "gemm-packed") {
		t.Errorf("expected sparse-weight (padded) and gemm-packed (grouped) among declines:\n%s", got)
	}
}

// TestReportBuildErrorSurfaces: an invalid spec comes back as an error
// from Report, positioned through netdef's validation.
func TestReportBuildErrorSurfaces(t *testing.T) {
	def, err := netdef.Parse(`
input { channels: 3 height: 8 width: 8 }
layer { name: "c" type: "conv" features: 4 kernel: 3 groups: 2 }
layer { type: "fc" outputs: 2 }
`)
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := explore.Report(&out, def, explore.Options{}); err == nil ||
		!strings.Contains(err.Error(), "groups") {
		t.Fatalf("Report error = %v, want groups divisibility error", err)
	}
}
