// Package loadgen drives an spg-serve endpoint with synthetic inference
// traffic and reports throughput and tail latency. It supports the two
// canonical load models:
//
//   - closed loop: C workers, each with one request outstanding — the
//     arrival rate adapts to the server (throughput measurement);
//   - open loop: requests arrive on a fixed schedule regardless of
//     completions — the latency distribution under a target rate
//     (tail-latency measurement; late arrivals queue, they do not skip).
//
// The clock, sleeper and HTTP client are injectable so the report path is
// testable with a deterministic fake server and fake time.
package loadgen

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"spgcnn/internal/rng"
)

// Config describes one load-generation run.
type Config struct {
	// URL is the server base URL (e.g. http://127.0.0.1:8080).
	URL string
	// Concurrency is the closed-loop worker count (also the in-flight cap
	// for open loop). Default 1.
	Concurrency int
	// Requests is the total request budget. Default 100.
	Requests int
	// RateHz, when > 0, switches to open-loop arrivals at that rate.
	RateHz float64
	// InputLen is the flat input length; 0 fetches it from /v1/spec.
	InputLen int
	// Seed seeds the synthetic input generator.
	Seed uint64
	// Timeout bounds each request (default 30s).
	Timeout time.Duration

	// Client, Now and Sleep are injectable for deterministic tests; nil
	// means the real http.DefaultClient / time.Now / time.Sleep.
	Client *http.Client
	Now    func() time.Time
	Sleep  func(time.Duration)
}

// Result is the aggregate outcome of a run.
type Result struct {
	Mode        string // "closed" or "open"
	Concurrency int
	RateHz      float64 // open loop only
	Sent        int
	OK          int
	Rejected    int // 503s
	Failed      int // transport errors and non-200/503 statuses

	Elapsed       time.Duration
	ThroughputRPS float64

	LatMean time.Duration
	LatP50  time.Duration
	LatP95  time.Duration
	LatP99  time.Duration

	BatchMean float64     // mean server-side batch size over OK responses
	BatchHist map[int]int // server-side batch size -> count
}

type inferRequest struct {
	Input []float32 `json:"input"`
}

type inferResponse struct {
	Batch int `json:"batch"`
}

type specResponse struct {
	InputLen int `json:"input_len"`
}

// Run drives the configured load and aggregates the result.
func Run(cfg Config) (*Result, error) {
	if cfg.Concurrency < 1 {
		cfg.Concurrency = 1
	}
	if cfg.Requests <= 0 {
		cfg.Requests = 100
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 30 * time.Second
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: cfg.Timeout}
	}
	now := cfg.Now
	if now == nil {
		now = time.Now
	}
	sleep := cfg.Sleep
	if sleep == nil {
		sleep = time.Sleep
	}

	inputLen := cfg.InputLen
	if inputLen <= 0 {
		var err error
		inputLen, err = fetchInputLen(client, cfg.URL)
		if err != nil {
			return nil, err
		}
	}

	// Pre-encode request bodies: a small pool of distinct synthetic inputs
	// so generation cost never shows up inside the measured window.
	r := rng.New(cfg.Seed)
	pool := make([][]byte, min(cfg.Requests, 16))
	for i := range pool {
		in := make([]float32, inputLen)
		for j := range in {
			in[j] = r.Float32()
		}
		b, err := json.Marshal(inferRequest{Input: in})
		if err != nil {
			return nil, err
		}
		pool[i] = b
	}

	type sample struct {
		lat   time.Duration
		batch int
		code  int // 0 = transport failure
	}
	samples := make([]sample, cfg.Requests)

	shoot := func(i int) {
		start := now()
		resp, err := client.Post(cfg.URL+"/v1/infer", "application/json",
			bytes.NewReader(pool[i%len(pool)]))
		if err != nil {
			samples[i] = sample{code: 0}
			return
		}
		var out inferResponse
		if resp.StatusCode == http.StatusOK {
			_ = json.NewDecoder(resp.Body).Decode(&out)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		samples[i] = sample{lat: now().Sub(start), batch: out.Batch, code: resp.StatusCode}
	}

	res := &Result{Concurrency: cfg.Concurrency, BatchHist: map[int]int{}}
	start := now()

	if cfg.RateHz > 0 {
		// Open loop: arrivals on a fixed schedule; a bounded worker pool
		// absorbs them so a slow server builds queueing delay, not
		// unbounded goroutines.
		res.Mode = "open"
		res.RateHz = cfg.RateHz
		interval := time.Duration(float64(time.Second) / cfg.RateHz)
		jobs := make(chan int, cfg.Requests)
		var wg sync.WaitGroup
		for w := 0; w < cfg.Concurrency; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range jobs {
					shoot(i)
				}
			}()
		}
		next := start
		for i := 0; i < cfg.Requests; i++ {
			if d := next.Sub(now()); d > 0 {
				sleep(d)
			}
			jobs <- i
			next = next.Add(interval)
		}
		close(jobs)
		wg.Wait()
	} else {
		// Closed loop: each worker keeps exactly one request in flight.
		res.Mode = "closed"
		jobs := make(chan int, cfg.Requests)
		for i := 0; i < cfg.Requests; i++ {
			jobs <- i
		}
		close(jobs)
		var wg sync.WaitGroup
		for w := 0; w < cfg.Concurrency; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range jobs {
					shoot(i)
				}
			}()
		}
		wg.Wait()
	}
	res.Elapsed = now().Sub(start)

	var lats []time.Duration
	var latSum time.Duration
	var batchSum int
	for _, s := range samples {
		res.Sent++
		switch s.code {
		case http.StatusOK:
			res.OK++
			lats = append(lats, s.lat)
			latSum += s.lat
			res.BatchHist[s.batch]++
			batchSum += s.batch
		case http.StatusServiceUnavailable:
			res.Rejected++
		default:
			res.Failed++
		}
	}
	if res.Elapsed > 0 {
		res.ThroughputRPS = float64(res.OK) / res.Elapsed.Seconds()
	}
	if len(lats) > 0 {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		res.LatMean = latSum / time.Duration(len(lats))
		res.LatP50 = percentile(lats, 50)
		res.LatP95 = percentile(lats, 95)
		res.LatP99 = percentile(lats, 99)
		res.BatchMean = float64(batchSum) / float64(res.OK)
	}
	return res, nil
}

// percentile returns the nearest-rank p-th percentile of sorted lats.
func percentile(sorted []time.Duration, p int) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	rank := (p*len(sorted) + 99) / 100 // ceil(p/100 * n), nearest-rank
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

func fetchInputLen(client *http.Client, url string) (int, error) {
	resp, err := client.Get(url + "/v1/spec")
	if err != nil {
		return 0, fmt.Errorf("loadgen: fetch spec: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("loadgen: fetch spec: status %d", resp.StatusCode)
	}
	var spec specResponse
	if err := json.NewDecoder(resp.Body).Decode(&spec); err != nil {
		return 0, fmt.Errorf("loadgen: decode spec: %w", err)
	}
	if spec.InputLen <= 0 {
		return 0, fmt.Errorf("loadgen: spec reports input_len %d", spec.InputLen)
	}
	return spec.InputLen, nil
}

// WriteReport renders the run outcome as the stable text format spg-load
// prints (and the golden test pins).
func (r *Result) WriteReport(w io.Writer) {
	fmt.Fprintf(w, "loadgen report (%s loop)\n", r.Mode)
	fmt.Fprintf(w, "  concurrency     %d\n", r.Concurrency)
	if r.Mode == "open" {
		fmt.Fprintf(w, "  target rate     %.1f req/s\n", r.RateHz)
	}
	fmt.Fprintf(w, "  sent            %d\n", r.Sent)
	fmt.Fprintf(w, "  ok              %d\n", r.OK)
	fmt.Fprintf(w, "  rejected (503)  %d\n", r.Rejected)
	fmt.Fprintf(w, "  failed          %d\n", r.Failed)
	fmt.Fprintf(w, "  elapsed         %s\n", fmtDur(r.Elapsed))
	fmt.Fprintf(w, "  throughput      %.1f req/s\n", r.ThroughputRPS)
	fmt.Fprintf(w, "  latency mean    %s\n", fmtDur(r.LatMean))
	fmt.Fprintf(w, "  latency p50     %s\n", fmtDur(r.LatP50))
	fmt.Fprintf(w, "  latency p95     %s\n", fmtDur(r.LatP95))
	fmt.Fprintf(w, "  latency p99     %s\n", fmtDur(r.LatP99))
	fmt.Fprintf(w, "  mean batch      %.2f\n", r.BatchMean)
	if len(r.BatchHist) > 0 {
		sizes := make([]int, 0, len(r.BatchHist))
		for s := range r.BatchHist {
			sizes = append(sizes, s)
		}
		sort.Ints(sizes)
		fmt.Fprintf(w, "  batch histogram\n")
		for _, s := range sizes {
			fmt.Fprintf(w, "    batch=%-3d %d\n", s, r.BatchHist[s])
		}
	}
}

// fmtDur renders durations with stable millisecond precision so reports
// are comparable across runs.
func fmtDur(d time.Duration) string {
	return fmt.Sprintf("%.3fms", float64(d)/float64(time.Millisecond))
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
