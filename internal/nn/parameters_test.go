package nn

import (
	"testing"

	"spgcnn/internal/conv"
	"spgcnn/internal/core"
	"spgcnn/internal/rng"
	"spgcnn/internal/tensor"
)

func TestParametersOrderAndAliasing(t *testing.T) {
	net := tinyTrainNet(rng.New(1))
	ps := net.Parameters()
	wantNames := []string{"conv0/W", "conv0/B", "fc0/W", "fc0/B"}
	if len(ps) != len(wantNames) {
		t.Fatalf("got %d parameters, want %d", len(ps), len(wantNames))
	}
	for i, want := range wantNames {
		if ps[i].Name != want {
			t.Fatalf("parameter %d = %q, want %q", i, ps[i].Name, want)
		}
	}
	// The tensors alias the live model.
	ps[0].Tensor.Data[0] = 42
	if net.ConvLayers()[0].W.Data[0] != 42 {
		t.Fatal("Parameters does not alias live weights")
	}
}

func TestParametersDeterministicAcrossCalls(t *testing.T) {
	net := tinyTrainNet(rng.New(2))
	a := net.Parameters()
	b := net.Parameters()
	for i := range a {
		if a[i].Name != b[i].Name || a[i].Tensor != b[i].Tensor {
			t.Fatal("Parameters not stable across calls")
		}
	}
}

func TestTuningChoicesHarvestAfterAutoTune(t *testing.T) {
	r := rng.New(3)
	s := conv.Square(8, 3, 2, 3, 1)
	cv := NewConv("conv0", s, 1, r)
	re := NewReLU("relu0", cv.OutDims(), 1)
	fc := NewFC("fc0", re.OutDims(), 3, 1, r)
	net := NewNetwork(cv, re, fc)

	// Before any batch: nothing tuned, nothing harvested.
	if len(net.TuningChoices()) != 0 {
		t.Fatal("choices harvested before tuning")
	}

	in := tensor.New(net.InDims()...)
	in.FillNormal(r, 0, 1)
	logits := net.Forward([]*tensor.Tensor{in})
	d := tensor.New(net.OutDims()...)
	SoftmaxXent{}.Loss(logits[0], 1, d)
	net.Backward([]*tensor.Tensor{d}, []*tensor.Tensor{in})

	choices := net.TuningChoices()
	ch, ok := choices["conv0"]
	if !ok {
		t.Fatalf("conv0 missing from harvested choices: %v", choices)
	}
	validFP := map[string]bool{}
	for _, st := range core.FPStrategies(1) {
		validFP[st.Name] = true
	}
	validBP := map[string]bool{}
	for _, st := range core.BPStrategies(1) {
		validBP[st.Name] = true
	}
	if !validFP[ch.FP] || !validBP[ch.BP] {
		t.Fatalf("harvested invalid strategies: %+v", ch)
	}
}
