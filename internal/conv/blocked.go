package conv

import (
	"fmt"

	"spgcnn/internal/tensor"
)

// Blocked-layout shapes for a convolution spec s (tensor.NCHW8):
//
//	input  I  : [ceil(Nc/8)][Ny][Nx][8]
//	output O  : [ceil(Nf/8)][OutY][OutX][8]
//	weights W : [ceil(Nf/8)][ceil(Nc/8)][Fy][Fx][8c][8f]
//
// Tail lanes (channel or feature index past Nc/Nf) are zero-filled by the
// tensor-level transforms, so blocked engines need no masking.

// CheckBlockedInput panics unless t has the blocked input shape and
// layout tag for s.
func CheckBlockedInput(s Spec, t *tensor.Tensor) {
	if t.Rank() != 4 || t.Dim(0) != tensor.Blocks(s.Nc) || t.Dim(1) != s.Ny ||
		t.Dim(2) != s.Nx || t.Dim(3) != tensor.Block || t.Layout != tensor.NCHW8 {
		panic(fmt.Sprintf("conv: blocked input shape %v/%v does not match spec %v (want [%d %d %d %d] nchw8)",
			t.Dims, t.Layout, s, tensor.Blocks(s.Nc), s.Ny, s.Nx, tensor.Block))
	}
}

// CheckBlockedOutput panics unless t has the blocked output shape and
// layout tag for s.
func CheckBlockedOutput(s Spec, t *tensor.Tensor) {
	if t.Rank() != 4 || t.Dim(0) != tensor.Blocks(s.Nf) || t.Dim(1) != s.OutY() ||
		t.Dim(2) != s.OutX() || t.Dim(3) != tensor.Block || t.Layout != tensor.NCHW8 {
		panic(fmt.Sprintf("conv: blocked output shape %v/%v does not match spec %v (want [%d %d %d %d] nchw8)",
			t.Dims, t.Layout, s, tensor.Blocks(s.Nf), s.OutY(), s.OutX(), tensor.Block))
	}
}

// NewBlockedInput allocates a zero blocked input tensor for s.
func NewBlockedInput(s Spec) *tensor.Tensor {
	t := tensor.New(tensor.Blocks(s.Nc), s.Ny, s.Nx, tensor.Block)
	t.Layout = tensor.NCHW8
	return t
}

// NewBlockedOutput allocates a zero blocked output tensor for s.
func NewBlockedOutput(s Spec) *tensor.Tensor {
	t := tensor.New(tensor.Blocks(s.Nf), s.OutY(), s.OutX(), tensor.Block)
	t.Layout = tensor.NCHW8
	return t
}
