// Package conv defines the convolution specification shared by every
// execution engine, plus direct reference implementations of the three
// convolution computations of CNN training:
//
//	FP  — output activations          (paper Eq. 2)
//	BP  — input-error gradients       (paper Eq. 3)
//	SGD — delta-weights               (paper Eq. 4)
//
// The reference implementations are deliberately plain loop nests over the
// defining equations; they are the correctness oracle every optimized
// engine (unfold+GEMM, stencil, sparse) is tested against, and the
// flop/byte accounting here feeds the AIT characterization of §3.
package conv

import (
	"fmt"
	"strings"
)

// Spec is the 2-D convolution geometry, matching the paper's 5-tuple
// ⟨Nf, Fy, Fx, sy, sx⟩ plus the input geometry it is applied to, extended
// with the generalized attributes of the design-space explorer: zero
// padding (Px, Py), dilation (Dx, Dy) and channel groups (Groups).
//
// The zero value of every extension field means "plain": no padding, unit
// dilation, a single group. That convention keeps the zero-extended spec
// byte-compatible with the original 8-field struct everywhere a spec is
// serialized (plan-cache keys in particular: a plain spec marshals to the
// exact JSON it produced before the fields existed).
type Spec struct {
	Nx, Ny int // input spatial width (x) and height (y)
	Nc     int // input channels  (paper: number of input features)
	Nf     int // output features
	Fx, Fy int // kernel width and height
	Sx, Sy int // strides

	// Px, Py are the zero-padding amounts applied symmetrically to each
	// spatial border of the input. 0 = "valid" convolution (the original
	// behavior).
	Px, Py int `json:",omitempty"`
	// Dx, Dy are the kernel dilations: tap (kx, ky) reads input offset
	// (kx·Dx, ky·Dy). 0 is treated as 1 (no dilation).
	Dx, Dy int `json:",omitempty"`
	// Groups partitions channels: input channels and output features are
	// split into Groups equal slices and feature group g convolves only
	// input group g (Groups == Nc is depthwise). 0 is treated as 1.
	Groups int `json:",omitempty"`
}

// DilX returns the effective x dilation (Dx, with 0 meaning 1).
func (s Spec) DilX() int {
	if s.Dx < 1 {
		return 1
	}
	return s.Dx
}

// DilY returns the effective y dilation (Dy, with 0 meaning 1).
func (s Spec) DilY() int {
	if s.Dy < 1 {
		return 1
	}
	return s.Dy
}

// G returns the effective group count (Groups, with 0 meaning 1).
func (s Spec) G() int {
	if s.Groups < 1 {
		return 1
	}
	return s.Groups
}

// GroupNc returns the input channels per group, Nc/G.
func (s Spec) GroupNc() int { return s.Nc / s.G() }

// GroupNf returns the output features per group, Nf/G.
func (s Spec) GroupNf() int { return s.Nf / s.G() }

// KxExtent returns the effective kernel width (Fx−1)·Dx + 1 — the input
// span a kernel row covers under dilation.
func (s Spec) KxExtent() int { return (s.Fx-1)*s.DilX() + 1 }

// KyExtent returns the effective kernel height (Fy−1)·Dy + 1.
func (s Spec) KyExtent() int { return (s.Fy-1)*s.DilY() + 1 }

// Plain reports whether the spec uses none of the generalized attributes
// (no padding, unit dilation, one group) — the geometry every engine
// handled before the spec was generalized. Fast paths that predate the
// generalization gate on Plain and are byte-for-byte unchanged on it.
func (s Spec) Plain() bool {
	return s.Px == 0 && s.Py == 0 && s.DilX() == 1 && s.DilY() == 1 && s.G() == 1
}

// Canon returns the spec with the generalized fields normalized to their
// zero-value spellings (dilation 1 → 0, groups 1 → 0), so that two specs
// describing the same convolution compare equal and hash/serialize
// identically — plan-cache keys use the canonical form, which keeps plain
// dense-band entries written before the fields existed valid.
func (s Spec) Canon() Spec {
	if s.Dx == 1 {
		s.Dx = 0
	}
	if s.Dy == 1 {
		s.Dy = 0
	}
	if s.Groups == 1 {
		s.Groups = 0
	}
	if s.Px < 0 {
		s.Px = 0
	}
	if s.Py < 0 {
		s.Py = 0
	}
	return s
}

// Validate reports whether the spec describes a computable convolution.
func (s Spec) Validate() error {
	switch {
	case s.Nx < 1 || s.Ny < 1:
		return fmt.Errorf("conv: non-positive input size %dx%d", s.Nx, s.Ny)
	case s.Nc < 1 || s.Nf < 1:
		return fmt.Errorf("conv: non-positive feature counts Nc=%d Nf=%d", s.Nc, s.Nf)
	case s.Fx < 1 || s.Fy < 1:
		return fmt.Errorf("conv: non-positive kernel %dx%d", s.Fx, s.Fy)
	case s.Sx < 1 || s.Sy < 1:
		return fmt.Errorf("conv: non-positive stride %dx%d", s.Sx, s.Sy)
	case s.Px < 0 || s.Py < 0:
		return fmt.Errorf("conv: negative padding %dx%d", s.Px, s.Py)
	case s.Dx < 0 || s.Dy < 0:
		return fmt.Errorf("conv: negative dilation %dx%d", s.Dx, s.Dy)
	case s.Groups < 0:
		return fmt.Errorf("conv: negative group count %d", s.Groups)
	case s.Nc%s.G() != 0 || s.Nf%s.G() != 0:
		return fmt.Errorf("conv: groups=%d does not divide channels Nc=%d / features Nf=%d",
			s.G(), s.Nc, s.Nf)
	case s.KxExtent() > s.Nx+2*s.Px || s.KyExtent() > s.Ny+2*s.Py:
		// The effective (dilated) kernel extent must fit the padded input,
		// or there is no valid output position.
		return fmt.Errorf("conv: effective kernel %dx%d (kernel %dx%d, dilation %dx%d) larger than padded input %dx%d",
			s.KxExtent(), s.KyExtent(), s.Fx, s.Fy, s.DilX(), s.DilY(), s.Nx+2*s.Px, s.Ny+2*s.Py)
	}
	return nil
}

// MustValidate panics if the spec is invalid.
func (s Spec) MustValidate() {
	if err := s.Validate(); err != nil {
		panic(err)
	}
}

// OutX returns the output width (Nx + 2·Px − KxExtent)/Sx + 1. For plain
// specs this is the original (Nx − Fx)/Sx + 1.
func (s Spec) OutX() int { return (s.Nx+2*s.Px-s.KxExtent())/s.Sx + 1 }

// OutY returns the output height (Ny + 2·Py − KyExtent)/Sy + 1.
func (s Spec) OutY() int { return (s.Ny+2*s.Py-s.KyExtent())/s.Sy + 1 }

// InputSize returns |I| = Nx·Ny·Nc (Eq. 6).
func (s Spec) InputSize() int64 { return int64(s.Nx) * int64(s.Ny) * int64(s.Nc) }

// WeightSize returns |W| = Nf·Fx·Fy·(Nc/G) (Eq. 7; each feature convolves
// only its group's channels).
func (s Spec) WeightSize() int64 {
	return int64(s.Nf) * int64(s.Fx) * int64(s.Fy) * int64(s.GroupNc())
}

// WeightDims returns the canonical weight tensor shape
// [Nf][Nc/G][Fy][Fx].
func (s Spec) WeightDims() []int { return []int{s.Nf, s.GroupNc(), s.Fy, s.Fx} }

// OutputSize returns |O| = Nf·OutX·OutY. For unit stride this is Eq. 8's
// Nf·(Nx−Fx+1)·(Ny−Fy+1).
func (s Spec) OutputSize() int64 { return int64(s.Nf) * int64(s.OutX()) * int64(s.OutY()) }

// UnfoldedSize returns |U|, the element count of the unfolded input matrix:
// one row per output pixel holding the (Nc/G)·Fx·Fy taps of each of the G
// groups — Nc·Fx·Fy values per pixel in total, matching §3.1 for G = 1.
func (s Spec) UnfoldedSize() int64 {
	return int64(s.OutX()) * int64(s.OutY()) * int64(s.Nc) * int64(s.Fx) * int64(s.Fy)
}

// FlopsFP returns |A| for forward propagation: 2 flops (mul+add) per
// kernel-tap per output element = 2·Nf·OutX·OutY·(Nc/G)·Fy·Fx. This is the
// exact form of the paper's Eq. 5 (which writes Nx·Ny for the spatial
// extent of the output) generalized to grouped convolution; padding taps
// that fall outside the input are counted (they multiply an implicit
// zero), keeping the flop model a pure function of the geometry.
func (s Spec) FlopsFP() int64 {
	return 2 * s.OutputSize() * int64(s.GroupNc()) * int64(s.Fy) * int64(s.Fx)
}

// FlopsBPInput returns the flop count of the input-error gradient (Eq. 3),
// which touches the same (output, tap) pairs as FP.
func (s Spec) FlopsBPInput() int64 { return s.FlopsFP() }

// FlopsBPWeights returns the flop count of the delta-weight computation
// (Eq. 4), also the same tap structure.
func (s Spec) FlopsBPWeights() int64 { return s.FlopsFP() }

// String renders the spec in the paper's Table 1/2 column format:
// Nx(=Ny),Nf,Nc,Fx(=Fy),sx(=sy), with compact suffixes for the
// generalized attributes when present (",p1" padding, ",d2" dilation,
// ",g4" groups). Plain specs render exactly as before the generalization.
func (s Spec) String() string {
	var b strings.Builder
	if s.Nx == s.Ny && s.Fx == s.Fy && s.Sx == s.Sy {
		fmt.Fprintf(&b, "%d,%d,%d,%d,%d", s.Nx, s.Nf, s.Nc, s.Fx, s.Sx)
	} else {
		fmt.Fprintf(&b, "%dx%d,%d,%d,%dx%d,%dx%d", s.Nx, s.Ny, s.Nf, s.Nc, s.Fx, s.Fy, s.Sx, s.Sy)
	}
	if s.Px != 0 || s.Py != 0 {
		if s.Px == s.Py {
			fmt.Fprintf(&b, ",p%d", s.Px)
		} else {
			fmt.Fprintf(&b, ",p%dx%d", s.Px, s.Py)
		}
	}
	if s.DilX() != 1 || s.DilY() != 1 {
		if s.DilX() == s.DilY() {
			fmt.Fprintf(&b, ",d%d", s.DilX())
		} else {
			fmt.Fprintf(&b, ",d%dx%d", s.DilX(), s.DilY())
		}
	}
	if s.G() != 1 {
		fmt.Fprintf(&b, ",g%d", s.G())
	}
	return b.String()
}

// Square is a convenience constructor for square-geometry specs
// (N, Nf, Nc, F, s), the form both paper tables use.
func Square(n, nf, nc, f, stride int) Spec {
	return Spec{Nx: n, Ny: n, Nc: nc, Nf: nf, Fx: f, Fy: f, Sx: stride, Sy: stride}
}
