package bench

import (
	"fmt"

	"spgcnn/internal/ait"
	"spgcnn/internal/conv"
	"spgcnn/internal/core"
	"spgcnn/internal/data"
	"spgcnn/internal/machine"
	"spgcnn/internal/nn"
	"spgcnn/internal/rng"
)

// The five Fig. 9 configurations.
type fig9Config struct {
	name string
	// fp / bp pick the technique per phase for the model; platform scales
	// the baseline's rates (the CAFFE OpenBLAS Parallel-GEMM outruns
	// ADAM+MKL's on this workload in the paper: 273 vs 185 images/sec at
	// their peaks).
	fp, bp   string
	platform float64
}

func fig9Configs() []fig9Config {
	return []fig9Config{
		{"Parallel-GEMM (CAFFE)", "pgemm", "pgemm", 1.0},
		{"Parallel-GEMM (ADAM)", "pgemm", "pgemm", 0.68},
		{"GEMM-in-Parallel (FP and BP)", "gip", "gip", 1.0},
		{"GiP (FP) + Sparse-Kernel (BP)", "gip", "sparse", 1.0},
		{"Stencil (FP) + Sparse-Kernel (BP)", "stencil", "sparse", 1.0},
	}
}

// fig9Cores is Fig. 9's x-axis; 32 is the hyper-threaded point (no extra
// FP units, so the model treats it as 16 physical cores with a small SMT
// latency-hiding bonus for the batch-parallel configurations).
var fig9Cores = []int{1, 2, 4, 8, 16, 32}

// cifarSparsity is the error sparsity of the CIFAR net's conv layers in
// steady training (Fig. 3b: > 85% after epoch 2).
const cifarSparsity = 0.85

// RunFig9 reproduces Fig. 9: end-to-end CIFAR-10 training throughput
// (images/sec) versus core count for the five configurations — modeled on
// the paper's 16-core machine, plus a measured table from real training
// runs on this host.
func RunFig9(o Options) []Table {
	return []Table{fig9Model(o.machineOf()), fig9Measured(o)}
}

func fig9Model(m machine.Machine) Table {
	t := Table{
		Title: "Fig 9 (modeled): end-to-end CIFAR-10 training throughput (images/sec)",
		Note: "conv time from the machine model + fixed non-conv overhead; " +
			"absolute numbers exceed the paper's (framework overheads not modeled) — compare shapes and ratios",
		Columns: coreColsList("Configuration", fig9Cores),
	}
	layers := cifarConvSpecs()
	for _, cfg := range fig9Configs() {
		cells := []any{cfg.name}
		for _, p := range fig9Cores {
			cells = append(cells, fig9ModelThroughput(m, layers, cfg, p))
		}
		t.AddRow(cells...)
	}
	return t
}

func cifarConvSpecs() []conv.Spec {
	var specs []conv.Spec
	for _, l := range Table2() {
		if l.Network == "CIFAR-10" {
			specs = append(specs, l.Spec)
		}
	}
	return specs
}

// fig9ModelThroughput computes modeled images/sec for one configuration.
func fig9ModelThroughput(m machine.Machine, layers []conv.Spec, cfg fig9Config, p int) float64 {
	phys := p
	smt := 1.0
	if p > m.Cores {
		phys = m.Cores
		if cfg.fp != "pgemm" { // batch-parallel configs get a small SMT bonus
			smt = 1.1
		}
	}
	var tImage float64
	for _, s := range layers {
		tImage += fig9PhaseTime(m, s, ait.FP, cfg.fp, cfg.platform, phys)
		tImage += fig9PhaseTime(m, s, ait.BPInput, cfg.bp, cfg.platform, phys)
		tImage += fig9PhaseTime(m, s, ait.BPWeights, cfg.bp, cfg.platform, phys)
	}
	// Non-conv work (pool, ReLU, FC, loss, weight updates): a fixed
	// per-image cost that parallelizes across the batch like GiP.
	const nonConvSeconds = 40e-6
	tImage += nonConvSeconds / float64(phys)
	return smt / tImage
}

func fig9PhaseTime(m machine.Machine, s conv.Spec, phase ait.Phase, tech string, platform float64, p int) float64 {
	flops := float64(ait.MMOf(s, phase).Flops())
	var rate float64 // GFlops per core
	switch tech {
	case "pgemm":
		rate = m.ParallelGEMM(s, phase, p) * platform
	case "gip":
		rate = m.GEMMInParallel(s, phase, p)
	case "stencil":
		if phase == ait.FP {
			rate = m.Stencil(s, p)
		} else {
			rate = m.GEMMInParallel(s, phase, p)
		}
	case "sparse":
		// Dense-equivalent rate: useful work at the sparse kernel's
		// goodput means the dense flop count completes in
		// flops·(1−sp)/goodput seconds.
		goodput := m.SparseGoodput(s, cifarSparsity, p)
		rate = goodput / (1 - cifarSparsity)
	default:
		panic("bench: unknown technique " + tech)
	}
	return flops / (rate * float64(p) * 1e9)
}

// fig9Measured trains the real CIFAR network with each configuration on
// this host and reports measured images/sec.
func fig9Measured(o Options) Table {
	workers := o.workers()
	examples, epochs := 64, 1
	if o.full() {
		examples, epochs = 512, 2
	}
	t := Table{
		Title: "Fig 9 (measured on this host): CIFAR-10 training throughput",
		Note: fmt.Sprintf("%d synthetic images, %d epoch(s), batch 16, %d workers",
			examples, epochs, workers),
		Columns: []string{"Configuration", "images/sec", "final loss"},
	}
	ds := data.CIFAR(examples)
	fp := map[string]core.Strategy{}
	for _, st := range core.FPStrategies(workers) {
		fp[st.Name] = st
	}
	bp := map[string]core.Strategy{}
	for _, st := range core.BPStrategies(workers) {
		bp[st.Name] = st
	}
	configs := []struct {
		name   string
		fp, bp core.Strategy
	}{
		{"Parallel-GEMM (both)", fp["parallel-gemm"], bp["parallel-gemm"]},
		{"GEMM-in-Parallel (both)", fp["gemm-in-parallel"], bp["gemm-in-parallel"]},
		{"GiP (FP) + Sparse (BP)", fp["gemm-in-parallel"], bp["sparse"]},
		{"Stencil (FP) + Sparse (BP)", fp["stencil"], bp["sparse"]},
	}
	for _, cfg := range configs {
		net := buildCIFARNet(cfg.fp, cfg.bp, workers)
		tr := nn.NewTrainer(net, 0.01, 16)
		r := rng.New(0xF199)
		var stats nn.EpochStats
		for e := 0; e < epochs; e++ {
			stats = tr.TrainEpoch(ds, r)
		}
		t.AddRow(cfg.name, stats.ImagesPerSec, stats.Loss)
	}
	return t
}

// buildCIFARNet assembles the Table 2 CIFAR network with split FP/BP
// strategies on every conv layer.
func buildCIFARNet(fp, bp core.Strategy, workers int) *nn.Network {
	r := rng.New(0x0C1F)
	specs := cifarConvSpecs()
	c0 := nn.NewConvSplit("conv0", specs[0], fp, bp, workers, r)
	r0 := nn.NewReLU("relu0", c0.OutDims(), workers)
	p0 := nn.NewMaxPool("pool0", r0.OutDims(), 4, 4, workers)
	c1 := nn.NewConvSplit("conv1", specs[1], fp, bp, workers, r)
	r1 := nn.NewReLU("relu1", c1.OutDims(), workers)
	fc := nn.NewFC("fc0", r1.OutDims(), 10, workers, r)
	return nn.NewNetwork(c0, r0, p0, c1, r1, fc)
}

func coreColsList(first string, cores []int) []string {
	cols := []string{first}
	for _, p := range cores {
		cols = append(cols, fmt.Sprintf("p=%d", p))
	}
	return cols
}
