package metrics

import "spgcnn/internal/trace"

// BindTrace exports a trace recorder's buffer accounting as live gauges,
// so an operator watching /metrics can see whether the flight recorder is
// keeping up (ring overwrites, full-mode drops) before pulling the trace
// file. Gauges are render-time reads of the recorder's atomic counters —
// scraping costs nothing on the training path.
func BindTrace(rec *trace.Recorder, r *Registry) {
	if rec == nil || r == nil {
		return
	}
	r.GaugeFunc("spg_trace_emitted_total", "Trace events emitted since recording began.",
		func() float64 { return float64(rec.Stats().Emitted) })
	r.GaugeFunc("spg_trace_buffered", "Trace events currently held in capture buffers.",
		func() float64 { return float64(rec.Stats().Buffered) })
	r.GaugeFunc("spg_trace_overwritten_total", "Trace events overwritten by the ring (flight-recorder mode).",
		func() float64 { return float64(rec.Stats().Overwritten) })
	r.GaugeFunc("spg_trace_dropped_total", "Trace events dropped at the full-capture cap.",
		func() float64 { return float64(rec.Stats().Dropped) })
	r.GaugeFunc("spg_trace_buffer_used_ratio", "Fraction of trace buffer capacity in use (0..1).",
		func() float64 {
			st := rec.Stats()
			if st.Capacity == 0 {
				return 0
			}
			return float64(st.Buffered) / float64(st.Capacity)
		})
}
