package metrics

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Handler returns the HTTP mux the live endpoint serves:
//
//	/metrics       Prometheus text exposition of the registry
//	/healthz       liveness probe ("ok")
//	/debug/pprof/  the standard Go profiling handlers
func Handler(r *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := r.WritePrometheus(w); err != nil {
			// The connection is already half-written; nothing to do but drop.
			return
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, req *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server is a running metrics endpoint.
type Server struct {
	srv *http.Server
	ln  net.Listener
}

// Serve binds addr (host:port; port 0 picks a free port) and serves the
// registry's Handler until Close. It returns as soon as the listener is
// bound, so Addr is immediately valid.
func Serve(addr string, r *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("metrics: listen %s: %w", addr, err)
	}
	s := &Server{
		srv: &http.Server{Handler: Handler(r), ReadHeaderTimeout: 5 * time.Second},
		ln:  ln,
	}
	go s.srv.Serve(ln) //nolint:errcheck // Serve always returns ErrServerClosed on Close
	return s, nil
}

// Addr returns the bound address, e.g. "127.0.0.1:9090".
func (s *Server) Addr() string { return s.ln.Addr().String() }

// URL returns the scrape URL, e.g. "http://127.0.0.1:9090/metrics".
func (s *Server) URL() string { return "http://" + s.Addr() + "/metrics" }

// Close shuts the endpoint down.
func (s *Server) Close() error { return s.srv.Close() }
