package bench

import (
	"fmt"

	"spgcnn/internal/ait"
)

// The analytical experiments: regenerated from the §3 characterization and
// the internal/machine roofline model calibrated to the paper's 16-core
// Xeon (see DESIGN.md §2 for why multicore figures are modeled rather than
// wall-clocked on this host).

// RunTable1 reproduces Table 1: the six convolutions, their intrinsic AIT,
// the AIT achievable after unfolding, and the Fig. 1 regions they occupy,
// with the paper's published values alongside.
func RunTable1(Options) []Table {
	t := Table{
		Title:   "Table 1: benchmark convolutions and their arithmetic intensity",
		Note:    "model = this implementation's Eqs. 5-8; paper = published values",
		Columns: []string{"ID", "Nx,Nf,Nc,F,s", "AIT (model)", "AIT (paper)", "Unfold AIT (model)", "Unfold AIT (paper)", "r", "Region"},
	}
	for _, row := range Table1() {
		a := ait.Analyze(row.Spec)
		t.AddRow(row.ID, row.Spec.String(), a.IntrinsicAIT, row.PaperIntrinsicAIT,
			a.UnfoldAIT, row.PaperUnfoldAIT, a.Ratio,
			fmt.Sprintf("%d,%d (paper %s)", int(a.DenseRegion), int(a.SparseRegion), row.PaperRegions))
	}
	return []Table{t}
}

// RunFig1 reproduces the Fig. 1 design-space map: for each (feature-count,
// sparsity) cell, the region and the techniques spg-CNN prescribes.
func RunFig1(Options) []Table {
	t := Table{
		Title:   "Fig 1: the convolution design space (AIT x sparsity)",
		Columns: []string{"Output features (AIT ~ 2xNf)", "Sparsity", "Region", "Scales", "1-core fast", "Goodput-limited", "spg-CNN techniques"},
	}
	for _, nf := range []int{2048, 256, 64} {
		for _, sp := range []float64{0.0, 0.9} {
			s := Table1()[0].Spec
			s.Nf = nf
			r := ait.Classify(s, sp)
			p := r.Props()
			t.AddRow(nf, sp, int(r), yn(p.Scalable), yn(p.SingleCoreFast), yn(p.GoodputLimited),
				join(p.Recommendations))
		}
	}
	return []Table{t}
}

func yn(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}

func join(ss []string) string {
	out := ""
	for i, s := range ss {
		if i > 0 {
			out += " + "
		}
		out += s
	}
	return out
}

// RunFig3a reproduces Fig. 3a: Parallel-GEMM GFlops per core versus core
// count for the six Table 1 convolutions (the three training MMs back to
// back, as the paper times them).
func RunFig3a(o Options) []Table {
	m := o.machineOf()
	t := Table{
		Title:   "Fig 3a: Parallel-GEMM scalability (GFlops per core, modeled)",
		Note:    "machine model calibrated to Xeon E5-2650 (41.6 GFlops/core peak)",
		Columns: coreCols("ID"),
	}
	for _, row := range Table1() {
		cells := []any{fmt.Sprintf("ID:%d Reg:%s", row.ID, row.PaperRegions)}
		for _, p := range CoreCounts {
			cells = append(cells, m.ParallelGEMMTraining(row.Spec, p))
		}
		t.AddRow(cells...)
	}
	return []Table{t}
}

// RunFig4a reproduces Fig. 4a: GEMM-in-Parallel GFlops per core.
func RunFig4a(o Options) []Table {
	m := o.machineOf()
	t := Table{
		Title:   "Fig 4a: GEMM-in-Parallel scalability (GFlops per core, modeled)",
		Columns: coreCols("ID"),
	}
	for _, row := range Table1() {
		cells := []any{fmt.Sprintf("ID:%d", row.ID)}
		for _, p := range CoreCounts {
			cells = append(cells, m.GEMMInParallelTraining(row.Spec, p))
		}
		t.AddRow(cells...)
	}
	return []Table{t}
}

// RunFig4b reproduces Fig. 4b: speedup of GEMM-in-Parallel over
// Parallel-GEMM versus core count.
func RunFig4b(o Options) []Table {
	m := o.machineOf()
	t := Table{
		Title:   "Fig 4b: GEMM-in-Parallel speedup over Parallel-GEMM (modeled)",
		Columns: coreCols("ID"),
	}
	for _, row := range Table1() {
		cells := []any{fmt.Sprintf("ID:%d", row.ID)}
		for _, p := range CoreCounts {
			cells = append(cells, m.GEMMInParallelTraining(row.Spec, p)/m.ParallelGEMMTraining(row.Spec, p))
		}
		t.AddRow(cells...)
	}
	return []Table{t}
}

// RunFig4c reproduces Fig. 4c: Stencil-Kernel (FP) GFlops per core.
func RunFig4c(o Options) []Table {
	m := o.machineOf()
	t := Table{
		Title:   "Fig 4c: Stencil-Kernel (FP) scalability (GFlops per core, modeled)",
		Columns: coreCols("ID"),
	}
	for _, row := range Table1() {
		cells := []any{fmt.Sprintf("ID:%d", row.ID)}
		for _, p := range CoreCounts {
			cells = append(cells, m.Stencil(row.Spec, p))
		}
		t.AddRow(cells...)
	}
	return []Table{t}
}

// RunFig4d reproduces Fig. 4d: speedup of Stencil-Kernel (FP) over
// GEMM-in-Parallel.
func RunFig4d(o Options) []Table {
	m := o.machineOf()
	t := Table{
		Title:   "Fig 4d: Stencil-Kernel (FP) speedup over GEMM-in-Parallel (modeled)",
		Note:    "stencil wins below ~128 output features (IDs 0, 5); GiP wins for large convolutions",
		Columns: coreCols("ID"),
	}
	for _, row := range Table1() {
		cells := []any{fmt.Sprintf("ID:%d Nf:%d", row.ID, row.Spec.Nf)}
		for _, p := range CoreCounts {
			cells = append(cells, m.Stencil(row.Spec, p)/m.GEMMInParallel(row.Spec, ait.FP, p))
		}
		t.AddRow(cells...)
	}
	return []Table{t}
}

// RunFig4e reproduces Fig. 4e: Sparse-Kernel (BP) goodput as a function of
// sparsity on 16 cores.
func RunFig4e(o Options) []Table {
	m := o.machineOf()
	t := Table{
		Title:   "Fig 4e: Sparse-Kernel (BP) goodput on 16 cores (total GFlops/sec, modeled)",
		Note:    "includes data-layout transform and CT-CSR construction costs; roll-off past 90% = transform bottleneck",
		Columns: sparsityCols("ID", SparsityLevels),
	}
	for _, row := range Table1() {
		cells := []any{fmt.Sprintf("ID:%d", row.ID)}
		for _, sp := range SparsityLevels {
			cells = append(cells, m.SparseGoodput(row.Spec, sp, 16)*16)
		}
		t.AddRow(cells...)
	}
	return []Table{t}
}

// RunFig4f reproduces Fig. 4f: speedup of Sparse-Kernel (BP) over dense
// GEMM-in-Parallel BP as a function of sparsity.
func RunFig4f(o Options) []Table {
	m := o.machineOf()
	t := Table{
		Title:   "Fig 4f: Sparse-Kernel (BP) speedup over GEMM-in-Parallel vs sparsity (modeled, 16 cores)",
		Note:    "crossover near 50-75% sparsity; 3x+ past 90% for the small-AIT convolutions",
		Columns: sparsityCols("ID", Fig4fSparsities),
	}
	for _, row := range Table1() {
		cells := []any{fmt.Sprintf("ID:%d", row.ID)}
		for _, sp := range Fig4fSparsities {
			cells = append(cells, m.SparseSpeedup(row.Spec, sp, 16))
		}
		t.AddRow(cells...)
	}
	return []Table{t}
}

// RunTable2 prints the Table 2 layer inventory with each layer's AIT
// analysis — the per-layer basis of Fig. 8.
func RunTable2(Options) []Table {
	t := Table{
		Title:   "Table 2: convolution layers of the benchmark networks",
		Columns: []string{"Network", "Layer", "Nx,Nf,Nc,F,s", "Intrinsic AIT", "Unfold AIT", "Region (dense,sparse)"},
	}
	for _, l := range Table2() {
		a := ait.Analyze(l.Spec)
		t.AddRow(l.Network, fmt.Sprintf("L%d", l.Layer), l.Spec.String(),
			a.IntrinsicAIT, a.UnfoldAIT,
			fmt.Sprintf("%d,%d", int(a.DenseRegion), int(a.SparseRegion)))
	}
	return []Table{t}
}

func coreCols(first string) []string {
	cols := []string{first}
	for _, p := range CoreCounts {
		cols = append(cols, fmt.Sprintf("p=%d", p))
	}
	return cols
}

func sparsityCols(first string, levels []float64) []string {
	cols := []string{first}
	for _, s := range levels {
		cols = append(cols, fmt.Sprintf("s=%.2f", s))
	}
	return cols
}
