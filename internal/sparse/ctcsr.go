package sparse

import "fmt"

// CTCSR is the paper's Column Tiled-Compressed Sparse Row format
// (Fig. 5a): the matrix is split into vertical tiles of tileWidth columns,
// and each tile is stored as an independent CSR. Column indices inside a
// tile are tile-relative, so walking one tile touches a compact, contiguous
// region of the value/index arrays — the locality and TLB property §4.2
// relies on.
type CTCSR struct {
	Rows, Cols int
	TileWidth  int
	Tiles      []*CSR // len = ceil(Cols/TileWidth); tile t covers columns [t*TileWidth, ...)
}

// DefaultTileWidth is the column-tile width used when callers do not
// specify one. 64 columns × 4 bytes = 256 B of dense span per row, a few
// rows of which share a cache line stream and sit inside one page, which is
// the regime the paper's TLB argument describes.
const DefaultTileWidth = 64

// FromDenseCT builds a CT-CSR matrix from a row-major dense matrix.
// tileWidth <= 0 selects DefaultTileWidth.
func FromDenseCT(data []float32, rows, cols, tileWidth int) *CTCSR {
	m := &CTCSR{}
	FromDenseCTInto(m, data, rows, cols, tileWidth)
	return m
}

// FromDenseCTInto rebuilds m from a row-major dense matrix, reusing the
// tile skeletons and their Values/ColIdx/RowPtr storage from m's previous
// contents. After the arrays have grown to steady-state capacity,
// recompressing a same-shaped matrix allocates nothing — the property the
// per-step sparse BP kernel depends on. tileWidth <= 0 selects
// DefaultTileWidth.
func FromDenseCTInto(m *CTCSR, data []float32, rows, cols, tileWidth int) {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("sparse: data length %d != %d x %d", len(data), rows, cols))
	}
	if tileWidth <= 0 {
		tileWidth = DefaultTileWidth
	}
	nTiles := (cols + tileWidth - 1) / tileWidth
	if cols == 0 {
		nTiles = 0
	}
	m.Rows, m.Cols, m.TileWidth = rows, cols, tileWidth
	if cap(m.Tiles) < nTiles {
		tiles := make([]*CSR, nTiles)
		copy(tiles, m.Tiles)
		m.Tiles = tiles
	} else {
		m.Tiles = m.Tiles[:nTiles]
	}
	for t := 0; t < nTiles; t++ {
		lo := t * tileWidth
		hi := lo + tileWidth
		if hi > cols {
			hi = cols
		}
		w := hi - lo
		tile := m.Tiles[t]
		if tile == nil {
			tile = &CSR{}
			m.Tiles[t] = tile
		}
		tile.Rows, tile.Cols = rows, w
		if cap(tile.RowPtr) < rows+1 {
			tile.RowPtr = make([]int32, rows+1)
		} else {
			tile.RowPtr = tile.RowPtr[:rows+1]
		}
		tile.RowPtr[0] = 0
		tile.Values = tile.Values[:0]
		tile.ColIdx = tile.ColIdx[:0]
		for i := 0; i < rows; i++ {
			row := data[i*cols+lo : i*cols+hi]
			for j, v := range row {
				if v != 0 {
					tile.Values = append(tile.Values, v)
					tile.ColIdx = append(tile.ColIdx, int32(j))
				}
			}
			tile.RowPtr[i+1] = int32(len(tile.Values))
		}
	}
}

// ToDense expands the matrix back to a row-major dense slice.
func (m *CTCSR) ToDense() []float32 {
	out := make([]float32, m.Rows*m.Cols)
	for t, tile := range m.Tiles {
		lo := t * m.TileWidth
		for i := 0; i < tile.Rows; i++ {
			for p := tile.RowPtr[i]; p < tile.RowPtr[i+1]; p++ {
				out[i*m.Cols+lo+int(tile.ColIdx[p])] = tile.Values[p]
			}
		}
	}
	return out
}

// NNZ returns the number of stored non-zeros across all tiles.
func (m *CTCSR) NNZ() int {
	n := 0
	for _, t := range m.Tiles {
		n += t.NNZ()
	}
	return n
}

// Sparsity returns the fraction of zero elements.
func (m *CTCSR) Sparsity() float64 {
	total := m.Rows * m.Cols
	if total == 0 {
		return 0
	}
	return 1 - float64(m.NNZ())/float64(total)
}

// SpMM computes dense C = (this sparse matrix) · dense B, tile by tile.
// Within a tile, the kernel re-reads only that tile's slice of B rows,
// which is the reuse CT-CSR exists to create.
func (m *CTCSR) SpMM(c, b []float32, bCols int) {
	if len(b) != m.Cols*bCols {
		panic(fmt.Sprintf("sparse: B length %d != %d x %d", len(b), m.Cols, bCols))
	}
	if len(c) != m.Rows*bCols {
		panic(fmt.Sprintf("sparse: C length %d != %d x %d", len(c), m.Rows, bCols))
	}
	for i := range c {
		c[i] = 0
	}
	for t, tile := range m.Tiles {
		colBase := t * m.TileWidth
		for i := 0; i < tile.Rows; i++ {
			crow := c[i*bCols : (i+1)*bCols]
			for p := tile.RowPtr[i]; p < tile.RowPtr[i+1]; p++ {
				v := tile.Values[p]
				brow := b[(colBase+int(tile.ColIdx[p]))*bCols:][:bCols]
				for j := range brow {
					crow[j] += v * brow[j]
				}
			}
		}
	}
}

// VisitTile calls fn(row, col, value) for every non-zero of tile t, with
// col given in whole-matrix coordinates, in row-major tile order. It is the
// traversal the pointer-shifting Sparse-Kernel uses.
func (m *CTCSR) VisitTile(t int, fn func(row, col int, v float32)) {
	tile := m.Tiles[t]
	colBase := t * m.TileWidth
	for i := 0; i < tile.Rows; i++ {
		for p := tile.RowPtr[i]; p < tile.RowPtr[i+1]; p++ {
			fn(i, colBase+int(tile.ColIdx[p]), tile.Values[p])
		}
	}
}

// Visit calls fn for every non-zero of the matrix, tile by tile.
func (m *CTCSR) Visit(fn func(row, col int, v float32)) {
	for t := range m.Tiles {
		m.VisitTile(t, fn)
	}
}
