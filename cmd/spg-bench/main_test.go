package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"spgcnn"
)

func runQuiet(t *testing.T, args ...string) error {
	t.Helper()
	var out, errb bytes.Buffer
	err := run(args, &out, &errb)
	if err != nil {
		t.Logf("stderr:\n%s", errb.String())
	}
	return err
}

func TestListPrintsKinds(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"-list"}, &out, &errb); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"table1", "goodput", "analytical", "measured"} {
		if !strings.Contains(s, want) {
			t.Errorf("-list output missing %q", want)
		}
	}
}

func TestJSONReportSchemaAndDeterminism(t *testing.T) {
	dir := t.TempDir()
	if err := runQuiet(t, "-exp", "table1", "-json", "-out", dir); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "BENCH_table1.json")
	rep, err := spgcnn.LoadBenchReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != spgcnn.BenchSchemaVersion || rep.Experiment != "table1" {
		t.Fatalf("report identity wrong: %+v", rep)
	}
	if rep.Kind != "analytical" || rep.Scale != "quick" || rep.Machine != "paper" {
		t.Fatalf("report fields wrong: kind=%q scale=%q machine=%q", rep.Kind, rep.Scale, rep.Machine)
	}
	if rep.Host.OS == "" || rep.Host.CPUs < 1 {
		t.Fatalf("host fingerprint missing: %+v", rep.Host)
	}
	if len(rep.Tables) == 0 || len(rep.Tables[0].Rows) == 0 {
		t.Fatal("report has no data")
	}

	// An analytical experiment must regenerate byte-identical JSON.
	first, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := runQuiet(t, "-exp", "table1", "-json", "-out", dir); err != nil {
		t.Fatal(err)
	}
	second, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Fatal("regenerated BENCH_table1.json differs byte-for-byte")
	}
}

func TestBaselineCompare(t *testing.T) {
	baseDir, curDir := t.TempDir(), t.TempDir()
	if err := runQuiet(t, "-exp", "table1", "-json", "-out", baseDir); err != nil {
		t.Fatal(err)
	}
	if err := runQuiet(t, "-exp", "table1", "-json", "-out", curDir, "-baseline", baseDir); err != nil {
		t.Fatalf("self-comparison failed: %v", err)
	}

	// Grossly perturb one baseline number: the strict analytical
	// comparison must fail.
	path := filepath.Join(baseDir, "BENCH_table1.json")
	rep, err := spgcnn.LoadBenchReport(path)
	if err != nil {
		t.Fatal(err)
	}
	rep.Tables[0].Rows[0][len(rep.Tables[0].Rows[0])-1] = "99999"
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	err = runQuiet(t, "-exp", "table1", "-json", "-out", curDir, "-baseline", baseDir)
	if err == nil || !strings.Contains(err.Error(), "baseline comparison failed") {
		t.Fatalf("perturbed baseline accepted: %v", err)
	}
}

func TestBaselineRequiresJSON(t *testing.T) {
	if err := runQuiet(t, "-exp", "table1", "-baseline", "x"); err == nil {
		t.Fatal("-baseline without -json accepted")
	}
}

func TestGoodputJSONSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("goodput runs a real training loop")
	}
	dir := t.TempDir()
	if err := runQuiet(t, "-exp", "goodput", "-json", "-out", dir, "-workers", "2"); err != nil {
		t.Fatal(err)
	}
	rep, err := spgcnn.LoadBenchReport(filepath.Join(dir, "BENCH_goodput.json"))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Kind != "measured" || len(rep.Tables) == 0 {
		t.Fatalf("goodput report malformed: kind=%q tables=%d", rep.Kind, len(rep.Tables))
	}
}
