package nn

import (
	"strings"
	"testing"

	"spgcnn/internal/rng"
	"spgcnn/internal/tensor"
)

func TestProfilingRecordsPerLayer(t *testing.T) {
	r := rng.New(1)
	net := tinyTrainNet(r)
	net.EnableProfiling()
	in := tensor.New(net.InDims()...)
	in.FillNormal(r, 0, 1)
	logits := net.Forward([]*tensor.Tensor{in})
	d := tensor.New(net.OutDims()...)
	SoftmaxXent{}.Loss(logits[0], 1, d)
	net.Backward([]*tensor.Tensor{d}, []*tensor.Tensor{in})

	profs := net.Profile()
	if len(profs) != 3 {
		t.Fatalf("profile has %d layers, want 3", len(profs))
	}
	for _, p := range profs {
		if p.ForwardSeconds <= 0 {
			t.Fatalf("layer %s recorded no forward time", p.Name)
		}
		if p.BackwardSeconds <= 0 {
			t.Fatalf("layer %s recorded no backward time", p.Name)
		}
		if p.Calls != 1 {
			t.Fatalf("layer %s calls = %d, want 1", p.Name, p.Calls)
		}
	}
	report := net.ProfileReport()
	if !strings.Contains(report, "conv0") || !strings.Contains(report, "TOTAL") {
		t.Fatalf("report missing expected rows:\n%s", report)
	}
}

func TestProfilingDisabledByDefault(t *testing.T) {
	r := rng.New(2)
	net := tinyTrainNet(r)
	in := tensor.New(net.InDims()...)
	net.Forward([]*tensor.Tensor{in})
	if len(net.Profile()) != 0 {
		t.Fatal("profile recorded without EnableProfiling")
	}
	if !strings.Contains(net.ProfileReport(), "not enabled") {
		t.Fatal("report should say profiling is off")
	}
}

func TestProfileResetAndDisable(t *testing.T) {
	r := rng.New(3)
	net := tinyTrainNet(r)
	net.EnableProfiling()
	in := tensor.New(net.InDims()...)
	net.Forward([]*tensor.Tensor{in})
	net.ResetProfile()
	for _, p := range net.Profile() {
		if p.ForwardSeconds != 0 || p.Calls != 0 {
			t.Fatal("ResetProfile did not clear")
		}
	}
	net.DisableProfiling()
	net.Forward([]*tensor.Tensor{in})
	for _, p := range net.Profile() {
		if p.ForwardSeconds != 0 {
			t.Fatal("recording continued after DisableProfiling")
		}
	}
}
