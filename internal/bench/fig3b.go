package bench

import (
	"fmt"

	"spgcnn/internal/data"
	"spgcnn/internal/netdef"
	"spgcnn/internal/nn"
	"spgcnn/internal/rng"
)

// RunFig3b reproduces Fig. 3b: error-gradient sparsity across training
// epochs for the MNIST, CIFAR and ImageNet-100 benchmarks. This experiment
// runs real SGD on the synthetic datasets and probes the sparsity of each
// conv layer's output-error gradients (nn.Conv's Fig. 3b instrumentation),
// reporting the per-epoch mean across conv layers.
//
// The paper observes > 85% sparsity from epoch 2 onward, rising as the
// model converges; the ReLU and max-pool backward masks of these networks
// produce the same regime.
func RunFig3b(o Options) []Table {
	epochs, examples := 3, 240
	if o.full() {
		epochs, examples = 10, 2000
	}
	workers := o.workers()
	t := Table{
		Title: "Fig 3b: error-gradient sparsity across training epochs (measured)",
		Note: fmt.Sprintf("real SGD on synthetic datasets (%d examples, %d workers); mean over conv layers",
			examples, workers),
		Columns: epochCols(epochs),
	}
	runs := []struct {
		name string
		ds   nn.Dataset
		def  string
	}{
		{"MNIST", data.MNIST(examples), netdef.MNISTNet},
		{"CIFAR", data.CIFAR(examples), netdef.CIFARNet},
		{"ImageNet100", data.ImageNet100(examples), netdef.ImageNet100Net},
	}
	for _, run := range runs {
		st := fixedSerialStrategy(workers)
		net := netdef.MustBuild(run.def, netdef.BuildOptions{Workers: workers, FixedStrategy: &st, Seed: 0x3B})
		tr := nn.NewTrainer(net, 0.01, 16)
		r := rng.New(0x3B1)
		cells := []any{run.name}
		for e := 0; e < epochs; e++ {
			stats := tr.TrainEpoch(run.ds, r)
			var sum float64
			var n int
			for _, s := range stats.ConvSparsity {
				sum += s
				n++
			}
			if n == 0 {
				cells = append(cells, "-")
			} else {
				cells = append(cells, sum/float64(n))
			}
		}
		t.AddRow(cells...)
	}
	return []Table{t}
}

func epochCols(epochs int) []string {
	cols := []string{"Benchmark"}
	for e := 1; e <= epochs; e++ {
		cols = append(cols, fmt.Sprintf("epoch %d", e))
	}
	return cols
}
