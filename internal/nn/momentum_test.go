package nn

import (
	"math"
	"testing"

	"spgcnn/internal/rng"
	"spgcnn/internal/tensor"
)

func TestSGDStepPlainMatchesOldBehaviour(t *testing.T) {
	var s sgdState
	p := tensor.FromSlice([]float32{1, 2}, 2)
	g := tensor.FromSlice([]float32{10, 20}, 2)
	s.step(p, g, 0.1, 2)
	// w -= lr/batch * g = w - 0.05*g
	if p.Data[0] != 0.5 || p.Data[1] != 1 {
		t.Fatalf("plain step wrong: %v", p.Data)
	}
	if g.NNZ() != 0 {
		t.Fatal("gradient not cleared")
	}
}

func TestSGDStepMomentumHandComputed(t *testing.T) {
	var s sgdState
	s.set(0.9, 0)
	p := tensor.FromSlice([]float32{0}, 1)
	// Two steps with constant gradient 1, lr 1, batch 1:
	// v1 = -1, w = -1; v2 = 0.9*(-1) - 1 = -1.9, w = -2.9.
	g := tensor.FromSlice([]float32{1}, 1)
	s.step(p, g, 1, 1)
	if p.Data[0] != -1 {
		t.Fatalf("after step 1: %v", p.Data[0])
	}
	g.Data[0] = 1
	s.step(p, g, 1, 1)
	if math.Abs(float64(p.Data[0])+2.9) > 1e-6 {
		t.Fatalf("after step 2: %v, want -2.9", p.Data[0])
	}
}

func TestWeightDecayShrinksWeights(t *testing.T) {
	var s sgdState
	s.set(0, 0.1)
	p := tensor.FromSlice([]float32{10}, 1)
	g := tensor.FromSlice([]float32{0}, 1) // zero task gradient
	s.step(p, g, 0.5, 1)
	// w -= lr * wd * w = 10 - 0.5*1 = 9.5
	if p.Data[0] != 9.5 {
		t.Fatalf("decayed weight = %v, want 9.5", p.Data[0])
	}
}

func TestMomentumAcceleratesTraining(t *testing.T) {
	// On the same workload, momentum SGD should reach a lower loss than
	// plain SGD in the same number of epochs (standard behaviour on a
	// smooth problem).
	run := func(mu float32) float64 {
		net := tinyTrainNet(rng.New(11))
		tr := NewTrainer(net, 0.02, 4)
		tr.SetMomentum(mu, 0)
		ds := &syntheticDS{n: 32, classes: 4, dims: net.InDims()}
		r := rng.New(12)
		var last EpochStats
		for e := 0; e < 6; e++ {
			last = tr.TrainEpoch(ds, r)
		}
		return last.Loss
	}
	plain := run(0)
	withMomentum := run(0.9)
	if withMomentum >= plain {
		t.Fatalf("momentum did not help: plain loss %v vs momentum loss %v", plain, withMomentum)
	}
}

func TestSetMomentumReachesAllParamLayers(t *testing.T) {
	net := tinyTrainNet(rng.New(13))
	tr := NewTrainer(net, 0.01, 1)
	tr.SetMomentum(0.5, 0.01)
	cv := net.ConvLayers()[0]
	if cv.opt.mu != 0.5 || cv.opt.wd != 0.01 {
		t.Fatal("conv did not receive momentum config")
	}
	for _, l := range net.Layers() {
		if fc, ok := l.(*FC); ok {
			if fc.opt.mu != 0.5 {
				t.Fatal("fc did not receive momentum config")
			}
		}
	}
}
