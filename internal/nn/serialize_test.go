package nn

import (
	"bytes"
	"testing"

	"spgcnn/internal/conv"
	"spgcnn/internal/rng"
	"spgcnn/internal/tensor"
)

func tinySpec() conv.Spec { return conv.Square(6, 3, 2, 3, 1) }

func TestSaveLoadRoundTrip(t *testing.T) {
	r := rng.New(1)
	src := tinyNet(r, 1)
	var buf bytes.Buffer
	if err := src.Save(&buf); err != nil {
		t.Fatal(err)
	}
	// A network built with a different seed has different weights...
	dst := tinyNet(rng.New(999), 1)
	sc, dc := src.ConvLayers()[0], dst.ConvLayers()[0]
	if tensor.MaxAbsDiff(sc.W, dc.W) == 0 {
		t.Fatal("test precondition: weights should differ before Load")
	}
	// ...until restored.
	if err := dst.Load(&buf); err != nil {
		t.Fatal(err)
	}
	if tensor.MaxAbsDiff(sc.W, dc.W) != 0 || tensor.MaxAbsDiff(sc.B, dc.B) != 0 {
		t.Fatal("conv weights not restored")
	}
	// Restored network computes identically.
	in := tensor.New(src.InDims()...)
	in.FillNormal(r, 0, 1)
	a := src.Forward([]*tensor.Tensor{in})[0].Clone()
	b := dst.Forward([]*tensor.Tensor{in})[0]
	if tensor.MaxAbsDiff(a, b) != 0 {
		t.Fatal("restored network computes differently")
	}
}

func TestLoadRejectsShapeMismatch(t *testing.T) {
	r := rng.New(2)
	src := tinyNet(r, 1)
	var buf bytes.Buffer
	if err := src.Save(&buf); err != nil {
		t.Fatal(err)
	}
	// Build a different-geometry network with the same layer names.
	other := NewNetwork(
		NewFC("conv0", []int{8}, 3, 1, r), // name collides, shape differs
	)
	if err := other.Load(&buf); err == nil {
		t.Fatal("Load accepted mismatched network")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	r := rng.New(3)
	net := tinyNet(r, 1)
	if err := net.Load(bytes.NewBufferString("not a gob stream")); err == nil {
		t.Fatal("Load accepted garbage")
	}
}

func TestLoadRejectsPartialSnapshot(t *testing.T) {
	r := rng.New(4)
	// Snapshot from a 1-conv net cannot restore a 2-param-layer net.
	small := NewNetwork(NewFC("fc", []int{4}, 2, 1, r))
	var buf bytes.Buffer
	if err := small.Save(&buf); err != nil {
		t.Fatal(err)
	}
	big := tinyNet(r, 1)
	if err := big.Load(&buf); err == nil {
		t.Fatal("Load accepted a snapshot with missing parameters")
	}
}

func TestSaveRejectsDuplicateLayerNames(t *testing.T) {
	r := rng.New(5)
	net := NewNetwork(
		NewFC("same", []int{4}, 4, 1, r),
		NewFC("same", []int{4}, 2, 1, r),
	)
	var buf bytes.Buffer
	if err := net.Save(&buf); err == nil {
		t.Fatal("Save accepted duplicate layer names")
	}
}

func TestCheckpointResumesTraining(t *testing.T) {
	// Train 2 epochs, checkpoint, train 1 more; separately restore the
	// checkpoint and train 1 epoch with the same data order — identical
	// final weights.
	r1 := rng.New(6)
	netA := tinyTrainNet(rng.New(7))
	tr := NewTrainer(netA, 0.05, 4)
	ds := &syntheticDS{n: 16, classes: 4, dims: netA.InDims()}
	tr.TrainEpoch(ds, r1)
	tr.TrainEpoch(ds, r1)
	var ckpt bytes.Buffer
	if err := netA.Save(&ckpt); err != nil {
		t.Fatal(err)
	}
	epochRNG := rng.New(42)
	tr.TrainEpoch(ds, epochRNG)

	netB := tinyTrainNet(rng.New(999))
	if err := netB.Load(bytes.NewReader(ckpt.Bytes())); err != nil {
		t.Fatal(err)
	}
	trB := NewTrainer(netB, 0.05, 4)
	trB.TrainEpoch(ds, rng.New(42))

	a, b := netA.ConvLayers()[0], netB.ConvLayers()[0]
	if d := tensor.MaxAbsDiff(a.W, b.W); d > 1e-6 {
		t.Fatalf("resumed training diverged: max weight diff %g", d)
	}
}

// tinyTrainNet is a deterministic conv+relu+fc net for training tests.
func tinyTrainNet(r *rng.RNG) *Network {
	s := tinySpec()
	cv := NewConvFixed("conv0", s, serialStrategy(), 1, r)
	re := NewReLU("relu0", cv.OutDims(), 1)
	fc := NewFC("fc0", re.OutDims(), 4, 1, r)
	return NewNetwork(cv, re, fc)
}

// syntheticDS is a minimal in-package Dataset for trainer tests.
type syntheticDS struct {
	n, classes int
	dims       []int
}

func (d *syntheticDS) Len() int     { return d.n }
func (d *syntheticDS) Classes() int { return d.classes }
func (d *syntheticDS) Label(i int) int {
	return i % d.classes
}
func (d *syntheticDS) Image(i int, dst *tensor.Tensor) {
	r := rng.New(uint64(i) * 0x9e3779b97f4a7c15)
	dst.FillNormal(r, float32(d.Label(i)), 1)
}
