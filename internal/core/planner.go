package core

import (
	"spgcnn/internal/conv"
	"spgcnn/internal/exec"
	"spgcnn/internal/tensor"
)

// Planner is the strategy-selection seam of §4.4: given a layer geometry,
// an execution context and sample tensors, it produces the deployed
// verdict for one phase. AutoConv delegates every selection to a Planner,
// so where the verdict comes from — a fresh measurement pass, an
// in-memory share with another layer or replica, or a persistent plan
// cache — is the planner's concern, not the layer's. The caching,
// model-pruning implementation lives in internal/plan; the fallback used
// when no planner is injected measures every candidate on every request
// (the pre-planner behavior).
type Planner interface {
	// PlanFP selects the forward-propagation strategy for s under c,
	// using ins/w as the sample batch if a measurement pass is needed.
	PlanFP(s conv.Spec, c *exec.Ctx, ins []*tensor.Tensor, w *tensor.Tensor, opts TuneOptions) Planned

	// PlanBP selects the back-propagation strategy for s under c. The
	// sample error gradients eos carry the sparsity of the current
	// training phase; planners key their verdicts on it.
	PlanBP(s conv.Spec, c *exec.Ctx, eos, ins []*tensor.Tensor, w *tensor.Tensor, opts TuneOptions) Planned
}

// Planned is a planner's verdict: the selection (chosen exec plus the
// backing measurement table) and where it came from.
type Planned struct {
	Selection
	// FromCache reports that the verdict was deployed from a prior
	// measurement — no tuning pass ran for this request.
	FromCache bool
}

// NewMeasurePlanner returns the fallback planner for the given worker
// count: measure every candidate on every request, no cache — exactly the
// behavior of calling ChooseFP/ChooseBP directly.
func NewMeasurePlanner(workers int) Planner {
	return measurePlanner{fp: FPStrategies(workers), bp: BPStrategies(workers)}
}

// measurePlanner is the planner AutoConv falls back to when none is
// injected: measure every candidate on every request, no cache — exactly
// the behavior of calling ChooseFP/ChooseBP directly.
type measurePlanner struct{ fp, bp []Strategy }

func (m measurePlanner) PlanFP(s conv.Spec, c *exec.Ctx, ins []*tensor.Tensor,
	w *tensor.Tensor, opts TuneOptions) Planned {
	return Planned{Selection: ChooseFP(SupportedStrategies(m.fp, s), s, c, ins, w, opts)}
}

func (m measurePlanner) PlanBP(s conv.Spec, c *exec.Ctx, eos, ins []*tensor.Tensor,
	w *tensor.Tensor, opts TuneOptions) Planned {
	return Planned{Selection: ChooseBP(SupportedStrategies(m.bp, s), s, c, eos, ins, w, opts)}
}
