package nn

import (
	"math"
	"testing"

	"spgcnn/internal/rng"
	"spgcnn/internal/tensor"
)

func TestAvgPoolForward(t *testing.T) {
	l := NewAvgPool("avg", []int{1, 4, 4}, 2, 2, 1)
	in := tensor.FromSlice([]float32{
		1, 2, 3, 4,
		5, 6, 7, 8,
		9, 10, 11, 12,
		13, 14, 15, 16,
	}, 1, 4, 4)
	out := tensor.New(1, 2, 2)
	l.Forward([]*tensor.Tensor{out}, []*tensor.Tensor{in})
	want := []float32{3.5, 5.5, 11.5, 13.5}
	for i := range want {
		if out.Data[i] != want[i] {
			t.Fatalf("avg out = %v, want %v", out.Data, want)
		}
	}
}

func TestAvgPoolBackwardDistributes(t *testing.T) {
	l := NewAvgPool("avg", []int{1, 4, 4}, 2, 2, 1)
	in := tensor.New(1, 4, 4)
	out := tensor.New(1, 2, 2)
	l.Forward([]*tensor.Tensor{out}, []*tensor.Tensor{in})
	eo := tensor.FromSlice([]float32{4, 0, 0, 8}, 1, 2, 2)
	ei := tensor.New(1, 4, 4)
	l.Backward([]*tensor.Tensor{ei}, []*tensor.Tensor{eo}, nil)
	// Each window element gets g/4.
	if ei.At3(0, 0, 0) != 1 || ei.At3(0, 1, 1) != 1 {
		t.Fatalf("top-left window grads wrong: %v", ei.Data)
	}
	if ei.At3(0, 2, 2) != 2 || ei.At3(0, 3, 3) != 2 {
		t.Fatalf("bottom-right window grads wrong: %v", ei.Data)
	}
	if ei.At3(0, 0, 2) != 0 {
		t.Fatal("zero-gradient window leaked")
	}
}

// TestAvgPoolAdjoint: ⟨eo, fwd(x)⟩ == ⟨bwd(eo), x⟩.
func TestAvgPoolAdjoint(t *testing.T) {
	r := rng.New(1)
	l := NewAvgPool("avg", []int{2, 5, 7}, 2, 1, 2)
	in := tensor.New(2, 5, 7)
	in.FillNormal(r, 0, 1)
	out := tensor.New(l.OutDims()...)
	l.Forward([]*tensor.Tensor{out}, []*tensor.Tensor{in})
	eo := tensor.New(l.OutDims()...)
	eo.FillNormal(r, 0, 1)
	ei := tensor.New(2, 5, 7)
	l.Backward([]*tensor.Tensor{ei}, []*tensor.Tensor{eo}, nil)
	var lhs, rhs float64
	for i := range eo.Data {
		lhs += float64(eo.Data[i]) * float64(out.Data[i])
	}
	for i := range in.Data {
		rhs += float64(ei.Data[i]) * float64(in.Data[i])
	}
	if math.Abs(lhs-rhs) > 1e-3*math.Max(1, math.Abs(lhs)) {
		t.Fatalf("avg pool not adjoint: %v vs %v", lhs, rhs)
	}
}

func TestDropoutTraining(t *testing.T) {
	r := rng.New(2)
	l := NewDropout("drop", []int{10000}, 0.3, 1, r)
	in := tensor.New(10000)
	for i := range in.Data {
		in.Data[i] = 1
	}
	out := tensor.New(10000)
	l.Forward([]*tensor.Tensor{out}, []*tensor.Tensor{in})
	zeros := 0
	var sum float64
	for _, v := range out.Data {
		if v == 0 {
			zeros++
		} else {
			sum += float64(v)
		}
	}
	frac := float64(zeros) / 10000
	if frac < 0.27 || frac > 0.33 {
		t.Fatalf("dropout zeroed %.2f, want ~0.30", frac)
	}
	// Inverted dropout preserves the expectation: sum ≈ 10000.
	if sum < 9500 || sum > 10500 {
		t.Fatalf("survivor sum = %v, want ~10000", sum)
	}
}

func TestDropoutBackwardUsesMask(t *testing.T) {
	r := rng.New(3)
	l := NewDropout("drop", []int{1000}, 0.5, 1, r)
	in := tensor.New(1000)
	in.FillUniform(r, 1, 2)
	out := tensor.New(1000)
	l.Forward([]*tensor.Tensor{out}, []*tensor.Tensor{in})
	eo := tensor.New(1000)
	for i := range eo.Data {
		eo.Data[i] = 1
	}
	ei := tensor.New(1000)
	l.Backward([]*tensor.Tensor{ei}, []*tensor.Tensor{eo}, nil)
	for i := range ei.Data {
		fwdDropped := out.Data[i] == 0
		bwdDropped := ei.Data[i] == 0
		if fwdDropped != bwdDropped {
			t.Fatalf("mask mismatch at %d", i)
		}
		if !bwdDropped && ei.Data[i] != 2 {
			t.Fatalf("surviving gradient = %v, want 2 (1/(1-rate))", ei.Data[i])
		}
	}
	// Dropout-induced gradient sparsity — fodder for the Sparse-Kernel.
	if s := ei.Sparsity(); s < 0.4 || s > 0.6 {
		t.Fatalf("gradient sparsity %v, want ~0.5", s)
	}
}

func TestDropoutInferenceIsIdentity(t *testing.T) {
	r := rng.New(4)
	l := NewDropout("drop", []int{64}, 0.9, 1, r)
	l.SetTraining(false)
	in := tensor.New(64)
	in.FillNormal(r, 0, 1)
	out := tensor.New(64)
	l.Forward([]*tensor.Tensor{out}, []*tensor.Tensor{in})
	if tensor.MaxAbsDiff(in, out) != 0 {
		t.Fatal("inference dropout is not identity")
	}
	ei := tensor.New(64)
	l.Backward([]*tensor.Tensor{ei}, []*tensor.Tensor{out}, nil)
	if tensor.MaxAbsDiff(ei, out) != 0 {
		t.Fatal("inference dropout backward is not identity")
	}
}

func TestDropoutRateValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("rate 1.0 accepted")
		}
	}()
	NewDropout("d", []int{4}, 1.0, 1, rng.New(1))
}

func TestAvgPoolWindowValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("oversized window accepted")
		}
	}()
	NewAvgPool("a", []int{1, 4, 4}, 5, 1, 1)
}
