package netdef

import (
	"math"
	"strings"
	"testing"

	"spgcnn/internal/nn"
	"spgcnn/internal/rng"
	"spgcnn/internal/tensor"
)

// TestZooTrainsEndToEnd trains every zoo topology for two minibatch steps
// under the planner (auto-tuned strategy selection) and checks that the
// loss is finite and every conv layer deployed a strategy.
func TestZooTrainsEndToEnd(t *testing.T) {
	for _, z := range Zoo() {
		z := z
		t.Run(z.Name, func(t *testing.T) {
			def, err := Parse(z.Src)
			if err != nil {
				t.Fatalf("Parse: %v", err)
			}
			if def.Name != z.Name {
				t.Fatalf("net name %q, want %q", def.Name, z.Name)
			}
			net, err := Build(def, BuildOptions{Workers: 2, Seed: 11})
			if err != nil {
				t.Fatalf("Build: %v", err)
			}
			r := rng.New(13)
			const batch = 2
			ins := make([]*tensor.Tensor, batch)
			ds := make([]*tensor.Tensor, batch)
			for i := range ins {
				ins[i] = tensor.New(net.InDims()...)
				ins[i].FillNormal(r, 0, 1)
				ds[i] = tensor.New(net.OutDims()...)
			}
			var loss nn.SoftmaxXent
			for step := 0; step < 2; step++ {
				logits := net.Forward(ins)
				for i := range logits {
					l, _ := loss.Loss(logits[i], i%10, ds[i])
					if math.IsNaN(l) || math.IsInf(l, 0) {
						t.Fatalf("step %d: non-finite loss %v", step, l)
					}
				}
				net.Backward(ds, ins)
				net.ApplyGrads(0.01, batch)
			}
			choices := net.TuningChoices()
			for _, c := range net.ConvLayers() {
				if _, ok := choices[c.Name()]; !ok {
					t.Errorf("conv layer %q deployed no strategy", c.Name())
				}
			}
		})
	}
}

// TestParseErrorPositions pins the line:column anchoring of parse errors —
// a bad attribute in a zoo file must be locatable.
func TestParseErrorPositions(t *testing.T) {
	src := "name: \"x\"\ninput { channels: 1 height: 8 width: 8 }\nlayer { type: \"conv\" features: 2 kernel: 3 groups: ! }\n"
	_, err := Parse(src)
	if err == nil {
		t.Fatal("Parse accepted a bad groups value")
	}
	if !strings.Contains(err.Error(), "line 3:52") {
		t.Errorf("error %q does not carry line:column position line 3:52", err)
	}
}

// TestBuildRejectsBadGroups checks that an invalid groups attribute
// surfaces as a Build error (not an engine-time panic).
func TestBuildRejectsBadGroups(t *testing.T) {
	src := `
input { channels: 3 height: 8 width: 8 }
layer { name: "c" type: "conv" features: 4 kernel: 3 groups: 2 }
layer { type: "fc" outputs: 2 }
`
	def, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if _, err := Build(def, BuildOptions{}); err == nil || !strings.Contains(err.Error(), "groups") {
		t.Errorf("Build error = %v, want groups divisibility error", err)
	}
}

// TestBuildRejectsOversizeEffectiveKernel checks the padded/dilated
// geometry validation surfaces through Build.
func TestBuildRejectsOversizeEffectiveKernel(t *testing.T) {
	src := `
input { channels: 1 height: 8 width: 8 }
layer { name: "c" type: "conv" features: 2 kernel: 5 dilation: 3 }
layer { type: "fc" outputs: 2 }
`
	def, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if _, err := Build(def, BuildOptions{}); err == nil || !strings.Contains(err.Error(), "effective kernel") {
		t.Errorf("Build error = %v, want effective-kernel error", err)
	}
}
