package stencil

import (
	"fmt"
	"sync"

	"spgcnn/internal/conv"
	"spgcnn/internal/engine"
	"spgcnn/internal/exec"
	"spgcnn/internal/tensor"
)

// Kernel is a generated stencil convolution plan for one spec. Forward
// propagation is the paper's Stencil-Kernel: a direct register-tiled
// stencil over the input, with the Eq. 21 layout transform for strided
// convolutions and cache tiling along output rows.
//
// The paper deploys the stencil for FP only (BP uses GEMM or the sparse
// kernel); for interface completeness this kernel also provides direct
// (unfold-free) BP implementations built on the same row primitives.
//
// The plan holds no numeric scratch: accumulator tiles and the
// stride-split tensor come from the execution context's arena per batch
// call, and the column-kernel op lists come from a kernel-owned sync.Pool,
// so one instance is safe for concurrent use through the batch entry
// points.
type Kernel struct {
	spec conv.Spec
	plan Plan

	// scratch pools op-list skeletons for the column-resident kernels
	// (unit stride, rows <= 2): ops2 feed both tile rows, ops0/ops1 feed
	// only one.
	scratch sync.Pool

	single engine.SingleOps
}

type fwdScratch struct {
	ops2, ops0, ops1 []tapOp
}

// New generates a kernel for s using the plan chosen by ChoosePlan.
func New(s conv.Spec) *Kernel { return NewWithPlan(ChoosePlan(s)) }

// NewWithPlan generates a kernel for an explicit plan — the ablation entry
// point for sweeping register tiles against the generator's choice.
func NewWithPlan(p Plan) *Kernel {
	p.Spec.MustValidate()
	if p.RY < 1 {
		p.RY = 1
	}
	if p.RY > maxRY {
		p.RY = maxRY
	}
	if p.TileX < 1 {
		p.TileX = p.Spec.OutX()
	}
	k := &Kernel{spec: p.Spec, plan: p}
	k.scratch.New = func() any { return &fwdScratch{} }
	return k
}

var _ engine.BlockedKernel = (*Kernel)(nil)

// Name implements engine.Kernel.
func (k *Kernel) Name() string {
	return fmt.Sprintf("stencil(rx=%d,ry=%d)", k.plan.RX, k.plan.RY)
}

// Spec implements engine.Kernel.
func (k *Kernel) Spec() conv.Spec { return k.spec }

// Plan returns the generated plan.
func (k *Kernel) Plan() Plan { return k.plan }

// strideSplitInto performs the Eq. 21 transform into the scratch tensor:
// dst[c][y][x mod sx][x/sx] = in[c][y][x].
func strideSplitInto(dst, in *tensor.Tensor, sx int) {
	c, h, w := in.Dim(0), in.Dim(1), in.Dim(2)
	wq := dst.Dim(3)
	for ci := 0; ci < c; ci++ {
		for yi := 0; yi < h; yi++ {
			src := in.Row3(ci, yi)
			base := (ci*h + yi) * sx * wq
			for xi := 0; xi < w; xi++ {
				dst.Data[base+(xi%sx)*wq+xi/sx] = src[xi]
			}
		}
	}
}

// srcRow returns the contiguous input row slice whose element x is
// in[c, iy, x·sx + kx], using the stride-split layout when sx > 1.
func (k *Kernel) srcRow(split *tensor.Tensor, in *tensor.Tensor, c, iy, kx int) []float32 {
	s := k.spec
	if s.Sx == 1 {
		return in.Row3(c, iy)[kx:]
	}
	wq := split.Dim(3)
	base := ((c*s.Ny+iy)*s.Sx + kx%s.Sx) * wq
	return split.Data[base+kx/s.Sx:]
}

// ForwardBatch computes Eq. 2 (§4.3) for every sample, sharing one set of
// arena-backed accumulator rows and stride-split scratch across the batch.
func (k *Kernel) ForwardBatch(c *exec.Ctx, outs, ins []*tensor.Tensor, w *tensor.Tensor) {
	if len(outs) != len(ins) {
		panic("stencil: ForwardBatch length mismatch")
	}
	if len(ins) == 0 {
		return
	}
	s := k.spec
	if !s.Plain() {
		k.forwardGeneralBatch(c, outs, ins, w)
		return
	}
	conv.CheckWeights(s, w)
	ox := s.OutX()
	accBacking := c.Get(k.plan.RY * ox)
	var acc [maxRY][]float32
	for i := 0; i < k.plan.RY; i++ {
		acc[i] = accBacking[i*ox : (i+1)*ox]
	}
	var split *tensor.Tensor
	if s.Sx > 1 {
		wq := (s.Nx + s.Sx - 1) / s.Sx
		split = c.GetTensor(s.Nc, s.Ny, s.Sx, wq)
		// The Eq. 21 transform leaves ragged sub-row tails unwritten; zero
		// once so arena reuse can never surface stale values.
		split.Zero()
	}
	sc := k.scratch.Get().(*fwdScratch)
	for i := range ins {
		k.forwardOne(sc, acc[:k.plan.RY], split, outs[i], ins[i], w)
	}
	k.scratch.Put(sc)
	if split != nil {
		c.PutTensor(split)
	}
	c.Put(accBacking)
}

// ForwardBlockedBatch implements engine.BlockedKernel with a convert-at-
// boundary adapter: each blocked sample is unpacked into shared NCHW
// scratch, the register-tiled stencil runs unchanged, and the result is
// re-blocked. The stencil's row-streaming schedule is built around NCHW
// rows, so the O(|I|+|O|) boundary moves cost less than reworking the
// tile generator — this keeps stencil usable inside an end-to-end blocked
// net.
func (k *Kernel) ForwardBlockedBatch(c *exec.Ctx, outs, ins []*tensor.Tensor, w *tensor.Tensor) {
	if len(outs) != len(ins) {
		panic("stencil: ForwardBlockedBatch length mismatch")
	}
	if len(ins) == 0 {
		return
	}
	s := k.spec
	in := c.GetTensor(s.Nc, s.Ny, s.Nx)
	out := c.GetTensor(s.Nf, s.OutY(), s.OutX())
	var ia, oa [1]*tensor.Tensor
	ia[0], oa[0] = in, out
	for i := range ins {
		conv.CheckBlockedInput(s, ins[i])
		conv.CheckBlockedOutput(s, outs[i])
		tensor.FromBlockedInto(in, ins[i])
		k.ForwardBatch(c, oa[:], ia[:], w)
		tensor.ToBlockedInto(outs[i], out)
	}
	c.PutTensor(out)
	c.PutTensor(in)
}

// forwardOne runs the register-tiled stencil for one sample. The loop
// structure is:
//
//	for each feature f, block of RY output rows:
//	  for each cache tile of TileX output columns:
//	    for each channel, each input row feeding the block, each kx:
//	      stream the input row once into the ≤RY accumulator rows it feeds
//
// so each group of input loads is reused by up to RY accumulator rows per
// tap — the spatial reuse of Eq. 16's stencil formulation.
func (k *Kernel) forwardOne(sc *fwdScratch, accT [][]float32, split *tensor.Tensor, out, in, w *tensor.Tensor) {
	s := k.spec
	conv.CheckInput(s, in)
	conv.CheckOutput(s, out)
	src := in
	if s.Sx > 1 {
		strideSplitInto(split, in, s.Sx)
		src = split
	}
	oy, ox := s.OutY(), s.OutX()
	ry := k.plan.RY
	tileX := k.plan.TileX
	var dsts [maxRY][]float32
	var accRows [maxRY][]float32
	var wrows [maxRY][]float32
	var blk [maxRY][]float32
	var kys [maxRY]int
	var ws [maxRY]float32
	for f := 0; f < s.Nf; f++ {
		for yb := 0; yb < oy; yb += ry {
			rows := ry
			if yb+rows > oy {
				rows = oy - yb
			}
			for r := 0; r < rows; r++ {
				acc := accT[r][:ox]
				for i := range acc {
					acc[i] = 0
				}
			}
			iyLo := yb * s.Sy
			iyHi := (yb+rows-1)*s.Sy + s.Fy - 1
			if s.Sx == 1 && rows <= 2 {
				// The column-resident fast path: accumulate the whole
				// Nc·(rows+Fy−1)·Fx reduction for a strip of output
				// columns in registers before storing (tapColumn kernels).
				k.forwardColumns(sc, accT, out, in, w, f, yb, rows, iyLo, iyHi)
				continue
			}
			for xt := 0; xt < ox; xt += tileX {
				n := tileX
				if xt+n > ox {
					n = ox - xt
				}
				for c := 0; c < s.Nc; c++ {
					wBase := (f*s.Nc + c) * s.Fy * s.Fx
					for iy := iyLo; iy <= iyHi; iy++ {
						// Which accumulator rows does input row iy feed,
						// and through which kernel row ky?
						nd := 0
						for r := 0; r < rows; r++ {
							ky := iy - (yb+r)*s.Sy
							if ky >= 0 && ky < s.Fy {
								accRows[nd] = accT[r]
								kys[nd] = ky
								nd++
							}
						}
						if nd == 0 {
							continue
						}
						if s.Sx == 1 {
							// Unit stride, ry > 2 (ablation plans):
							// register-blocked tap reduction per input
							// row (tapblock.go).
							for d := 0; d < nd; d++ {
								wrows[d] = w.Data[wBase+kys[d]*s.Fx:][:s.Fx]
								blk[d] = accRows[d][xt:]
							}
							tapRows(blk[:nd], wrows[:nd], in.Row3(c, iy)[xt:], s.Fx, n)
							continue
						}
						// Strided along x: use the Eq. 21 layout and
						// per-tap streamed accumulation (contiguity holds
						// within one tap but not across taps).
						for kx := 0; kx < s.Fx; kx++ {
							srow := k.srcRow(src, in, c, iy, kx)
							for d := 0; d < nd; d++ {
								ws[d] = w.Data[wBase+kys[d]*s.Fx+kx]
								dsts[d] = accRows[d][xt:]
							}
							saxpyRows(dsts[:nd], ws[:nd], srow[xt:], n)
						}
					}
				}
			}
			for r := 0; r < rows; r++ {
				copy(out.Row3(f, yb+r), accT[r][:ox])
			}
		}
	}
}

// forwardColumns executes one (feature, row-block) of a unit-stride
// convolution with the column-resident kernels: it builds the op lists —
// every (channel, input row) pair, split by which tile rows the input row
// feeds — then reduces each cache tile of output columns entirely in
// registers.
func (k *Kernel) forwardColumns(sc *fwdScratch, accT [][]float32, out, in, w *tensor.Tensor, f, yb, rows, iyLo, iyHi int) {
	s := k.spec
	ox := s.OutX()
	sc.ops2 = sc.ops2[:0]
	sc.ops0 = sc.ops0[:0]
	sc.ops1 = sc.ops1[:0]
	for iy := iyLo; iy <= iyHi; iy++ {
		ky0 := iy - yb*s.Sy
		row0 := ky0 >= 0 && ky0 < s.Fy
		ky1 := -1
		row1 := false
		if rows == 2 {
			ky1 = iy - (yb+1)*s.Sy
			row1 = ky1 >= 0 && ky1 < s.Fy
		}
		if !row0 && !row1 {
			continue
		}
		for c := 0; c < s.Nc; c++ {
			wBase := (f*s.Nc + c) * s.Fy * s.Fx
			src := in.Row3(c, iy)
			switch {
			case row0 && row1:
				sc.ops2 = append(sc.ops2, tapOp{src: src,
					w0: w.Data[wBase+ky0*s.Fx:][:s.Fx],
					w1: w.Data[wBase+ky1*s.Fx:][:s.Fx]})
			case row0:
				sc.ops0 = append(sc.ops0, tapOp{src: src,
					w0: w.Data[wBase+ky0*s.Fx:][:s.Fx]})
			default:
				sc.ops1 = append(sc.ops1, tapOp{src: src,
					w0: w.Data[wBase+ky1*s.Fx:][:s.Fx]})
			}
		}
	}
	acc0 := accT[0][:ox]
	for i := range acc0 {
		acc0[i] = 0
	}
	var acc1 []float32
	if rows == 2 {
		acc1 = accT[1][:ox]
		for i := range acc1 {
			acc1[i] = 0
		}
	}
	tileX := k.plan.TileX
	for xt := 0; xt < ox; xt += tileX {
		n := tileX
		if xt+n > ox {
			n = ox - xt
		}
		if rows == 2 && len(sc.ops2) > 0 {
			tapColumn2(acc0[xt:], acc1[xt:], sc.ops2, s.Fx, xt, n)
		}
		if len(sc.ops0) > 0 {
			tapColumn1(acc0[xt:], sc.ops0, s.Fx, xt, n)
		}
		if rows == 2 && len(sc.ops1) > 0 {
			tapColumn1(acc1[xt:], sc.ops1, s.Fx, xt, n)
		}
		// rows == 1 with ops2 cannot happen (ops2 requires two rows).
	}
	copy(out.Row3(f, yb), acc0)
	if rows == 2 {
		copy(out.Row3(f, yb+1), acc1)
	}
}

// BackwardInputBatch computes Eq. 3 directly (no unfolding): every
// output-error row is streamed once per (c, ky, kx) tap into the
// input-error row it feeds, with strided scatter for sx > 1.
func (k *Kernel) BackwardInputBatch(c *exec.Ctx, eis, eos []*tensor.Tensor, w *tensor.Tensor) {
	if len(eis) != len(eos) {
		panic("stencil: BackwardInputBatch length mismatch")
	}
	s := k.spec
	if !s.Plain() {
		k.backwardInputGeneralBatch(c, eis, eos, w)
		return
	}
	conv.CheckWeights(s, w)
	oy, ox := s.OutY(), s.OutX()
	for i := range eos {
		ei, eo := eis[i], eos[i]
		conv.CheckInput(s, ei)
		conv.CheckOutput(s, eo)
		ei.Zero()
		for f := 0; f < s.Nf; f++ {
			for y := 0; y < oy; y++ {
				erow := eo.Row3(f, y)
				if allZero(erow) {
					continue
				}
				for ch := 0; ch < s.Nc; ch++ {
					wBase := (f*s.Nc + ch) * s.Fy * s.Fx
					for ky := 0; ky < s.Fy; ky++ {
						dst := ei.Row3(ch, y*s.Sy+ky)
						for kx := 0; kx < s.Fx; kx++ {
							wv := w.Data[wBase+ky*s.Fx+kx]
							if wv == 0 {
								continue
							}
							scatterAxpy(dst[kx:], erow, wv, s.Sx, ox)
						}
					}
				}
			}
		}
	}
}

// BackwardWeightsBatch computes dw = Σ_i grad(eos[i], ins[i]) (Eq. 4)
// directly: each tap's gradient is the dot product of the output-error
// plane with the correspondingly shifted (and strided) input plane,
// accumulated over the batch. dw is overwritten.
func (k *Kernel) BackwardWeightsBatch(c *exec.Ctx, dw *tensor.Tensor, eos, ins []*tensor.Tensor) {
	if len(eos) != len(ins) {
		panic("stencil: BackwardWeightsBatch length mismatch")
	}
	s := k.spec
	if !s.Plain() {
		k.backwardWeightsGeneralBatch(c, dw, eos, ins)
		return
	}
	conv.CheckWeights(s, dw)
	dw.Zero()
	oy, ox := s.OutY(), s.OutX()
	for i := range eos {
		eo, in := eos[i], ins[i]
		conv.CheckOutput(s, eo)
		conv.CheckInput(s, in)
		for f := 0; f < s.Nf; f++ {
			for ch := 0; ch < s.Nc; ch++ {
				wBase := (f*s.Nc + ch) * s.Fy * s.Fx
				for ky := 0; ky < s.Fy; ky++ {
					for kx := 0; kx < s.Fx; kx++ {
						var sum float32
						for y := 0; y < oy; y++ {
							erow := eo.Row3(f, y)
							if allZero(erow) {
								continue
							}
							irow := in.Row3(ch, y*s.Sy+ky)
							sum += gatherDot(erow, irow[kx:], s.Sx, ox)
						}
						dw.Data[wBase+ky*s.Fx+kx] += sum
					}
				}
			}
		}
	}
}

func allZero(row []float32) bool {
	for _, v := range row {
		if v != 0 {
			return false
		}
	}
	return true
}

// Forward implements engine.SingleKernel.
func (k *Kernel) Forward(out, in, w *tensor.Tensor) { k.single.Forward(k, out, in, w) }

// BackwardInput implements engine.SingleKernel.
func (k *Kernel) BackwardInput(ei, eo, w *tensor.Tensor) { k.single.BackwardInput(k, ei, eo, w) }

// BackwardWeights implements engine.SingleKernel.
func (k *Kernel) BackwardWeights(dw, eo, in *tensor.Tensor) {
	k.single.BackwardWeights(k, dw, eo, in)
}

// Generator returns the engine.Generator for the stencil technique.
func Generator() engine.Generator {
	return engine.Generator{
		Name: "stencil",
		New:  func(s conv.Spec) engine.Kernel { return New(s) },
	}
}
