package spkernel

import (
	"testing"

	"spgcnn/internal/conv"
	"spgcnn/internal/rng"
	"spgcnn/internal/tensor"
)

// --- fused ReLU-mask BP ---

func maskedCopy(grad *tensor.Tensor, mask []bool) *tensor.Tensor {
	out := grad.Clone()
	for i := range out.Data {
		if !mask[i] {
			out.Data[i] = 0
		}
	}
	return out
}

func randMask(r *rng.RNG, n int, keep float64) []bool {
	m := make([]bool, n)
	for i := range m {
		m[i] = r.Float64() < keep
	}
	return m
}

func TestFusedBackwardMatchesUnfused(t *testing.T) {
	r := rng.New(1)
	for trial := 0; trial < 12; trial++ {
		s := conv.RandSpec(r, 10)
		k := New(s, 0)
		w := conv.RandWeights(r, s)
		in := conv.RandInput(r, s)
		grad := conv.NewOutput(s)
		grad.FillNormal(r, 0, 1)
		mask := randMask(r, grad.Len(), 0.3)
		eo := maskedCopy(grad, mask)

		fusedEI, plainEI := conv.NewInput(s), conv.NewInput(s)
		k.BackwardInputFused(fusedEI, grad, mask, w)
		k.BackwardInput(plainEI, eo, w)
		if !tensor.AlmostEqual(fusedEI, plainEI, 1e-4) {
			t.Fatalf("fused EI differs for %v", s)
		}

		fusedDW, plainDW := conv.NewWeights(s), conv.NewWeights(s)
		k.BackwardWeightsFused(fusedDW, grad, mask, in)
		k.BackwardWeights(plainDW, eo, in)
		if !tensor.AlmostEqual(fusedDW, plainDW, 1e-4) {
			t.Fatalf("fused dW differs for %v", s)
		}
	}
}

func TestFusedMaskLengthCheck(t *testing.T) {
	s := conv.Square(6, 2, 1, 3, 1)
	k := New(s, 0)
	r := rng.New(2)
	defer func() {
		if recover() == nil {
			t.Fatal("short mask accepted")
		}
	}()
	k.BackwardInputFused(conv.NewInput(s), conv.RandOutputError(r, s, 0),
		make([]bool, 3), conv.RandWeights(r, s))
}

func TestFusedAllMaskedGivesZero(t *testing.T) {
	s := conv.Square(8, 3, 2, 3, 1)
	r := rng.New(3)
	k := New(s, 0)
	grad := conv.NewOutput(s)
	grad.FillNormal(r, 0, 1)
	ei := conv.NewInput(s)
	ei.FillUniform(r, 1, 2)
	k.BackwardInputFused(ei, grad, make([]bool, grad.Len()), conv.RandWeights(r, s))
	if ei.NNZ() != 0 {
		t.Fatal("all-masked gradient produced non-zero EI")
	}
}

// --- sparse-weights inference ---

func TestInferenceMatchesReference(t *testing.T) {
	r := rng.New(4)
	for trial := 0; trial < 12; trial++ {
		s := conv.RandSpec(r, 10)
		w := conv.RandWeights(r, s)
		w.Sparsify(r, 0.8) // pruned model
		ik := CompileWeights(s, w)
		in := conv.RandInput(r, s)
		got := conv.NewOutput(s)
		got.FillUniform(r, 5, 6) // must be overwritten
		ik.Forward(got, in)
		want := conv.NewOutput(s)
		conv.ForwardRef(s, want, in, w)
		if !tensor.AlmostEqual(got, want, 1e-4) {
			t.Fatalf("inference differs for %v (max diff %g)", s, tensor.MaxAbsDiff(got, want))
		}
	}
}

func TestInferenceAccounting(t *testing.T) {
	s := conv.Square(8, 2, 2, 2, 1)
	w := conv.NewWeights(s) // 2·2·2·2 = 16 weights
	w.Data[0] = 1
	w.Data[5] = 2
	w.Data[15] = -1
	ik := CompileWeights(s, w)
	if ik.NNZ() != 3 {
		t.Fatalf("NNZ = %d, want 3", ik.NNZ())
	}
	if got := ik.WeightSparsity(); got != 1-3.0/16 {
		t.Fatalf("WeightSparsity = %v", got)
	}
	if ik.Flops() != 2*3*7*7 {
		t.Fatalf("Flops = %d", ik.Flops())
	}
	if ik.Spec() != s {
		t.Fatal("Spec accessor wrong")
	}
}

func TestInferenceFullyPruned(t *testing.T) {
	s := conv.Square(6, 2, 1, 3, 1)
	ik := CompileWeights(s, conv.NewWeights(s))
	r := rng.New(5)
	out := conv.NewOutput(s)
	out.FillUniform(r, 1, 2)
	ik.Forward(out, conv.RandInput(r, s))
	if out.NNZ() != 0 {
		t.Fatal("fully-pruned weights produced non-zero output")
	}
}

func TestInferenceStrided(t *testing.T) {
	r := rng.New(6)
	s := conv.Square(15, 4, 3, 3, 2)
	w := conv.RandWeights(r, s)
	w.Sparsify(r, 0.6)
	in := conv.RandInput(r, s)
	got := conv.NewOutput(s)
	CompileWeights(s, w).Forward(got, in)
	want := conv.NewOutput(s)
	conv.ForwardRef(s, want, in, w)
	if !tensor.AlmostEqual(got, want, 1e-4) {
		t.Fatal("strided inference differs")
	}
}

func BenchmarkInferenceDenseVsSparseWeights(b *testing.B) {
	s := conv.Square(32, 32, 16, 3, 1)
	r := rng.New(1)
	w := conv.RandWeights(r, s)
	w.Sparsify(r, 0.9)
	ik := CompileWeights(s, w)
	in := conv.RandInput(r, s)
	out := conv.NewOutput(s)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ik.Forward(out, in)
	}
	b.ReportMetric(float64(ik.Flops())*float64(b.N)/b.Elapsed().Seconds()/1e9, "goodput-GFlops")
}
