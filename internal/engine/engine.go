// Package engine defines the seam between spg-CNN's scheduler and its
// convolution kernels.
//
// A Kernel is an executable convolution plan for one fixed Spec — the
// product of one of the framework's "code generators" (§4): the
// unfold+GEMM lowering, the stencil basic-block/schedule generator, or the
// sparse CT-CSR kernel generator. Kernels are batch-first and stateless:
// every entry point takes an exec.Ctx and a batch of samples, and all
// scratch memory (unfold buffers, layout-transformed copies, sparse index
// arrays) is acquired from the context's arena for the duration of the
// call. One kernel instance is therefore cheap to build, cheap to hold,
// and safe to invoke concurrently from many goroutines as long as each
// call gets its own output tensors.
//
// Legacy per-sample callers use SingleKernel, which every engine also
// implements via a small SingleOps adapter that wraps each sample in a
// one-element batch against a private serial context.
package engine

import (
	"fmt"
	"sync"

	"spgcnn/internal/conv"
	"spgcnn/internal/exec"
	"spgcnn/internal/tensor"
)

// Kernel executes the three convolution computations of one training step
// (paper Eqs. 2–4) over a batch of training inputs, for the Spec it was
// generated for. Batch slices are parallel: outs[i] pairs with ins[i].
// Implementations are safe for concurrent use — a kernel is a plan, and
// all per-call state lives on the stack or in c's arena.
type Kernel interface {
	// Name identifies the kernel family and configuration, e.g.
	// "unfold-gemm(serial)" or "stencil(rx=2,ry=4)".
	Name() string

	// Spec returns the convolution geometry the kernel was generated for.
	Spec() conv.Spec

	// ForwardBatch computes outs[i] = conv(ins[i], w) (Eq. 2) for every
	// sample in the batch.
	ForwardBatch(c *exec.Ctx, outs, ins []*tensor.Tensor, w *tensor.Tensor)

	// BackwardInputBatch computes eis[i] = corr(eos[i], w) (Eq. 3).
	// Each eis[i] is overwritten.
	BackwardInputBatch(c *exec.Ctx, eis, eos []*tensor.Tensor, w *tensor.Tensor)

	// BackwardWeightsBatch computes dw = Σ_i grad(eos[i], ins[i]) (Eq. 4),
	// the batch-summed weight gradient. dw is overwritten.
	BackwardWeightsBatch(c *exec.Ctx, dw *tensor.Tensor, eos, ins []*tensor.Tensor)
}

// BlockedKernel is implemented by kernels whose forward pass can consume
// and produce channel-blocked (tensor.NCHW8) activations natively — no
// per-call layout conversion. A net whose layers all expose this seam runs
// end-to-end blocked, converting only at ingest and egress.
type BlockedKernel interface {
	Kernel

	// ForwardBlockedBatch computes outs[i] = conv(ins[i], w) where ins and
	// outs have the blocked shapes of conv.CheckBlockedInput/Output. w stays
	// in the canonical [Nf][Nc][Fy][Fx] layout (blocked engines cache their
	// own weight form per tensor.Ver).
	ForwardBlockedBatch(c *exec.Ctx, outs, ins []*tensor.Tensor, w *tensor.Tensor)
}

// SingleKernel is the legacy per-sample seam. Every engine still provides
// it (through SingleOps) for callers that step one sample at a time.
// Unlike the batch entry points, these methods are NOT safe for concurrent
// use on one kernel instance.
type SingleKernel interface {
	Name() string
	Spec() conv.Spec

	// Forward computes out = conv(in, w) (Eq. 2).
	Forward(out, in, w *tensor.Tensor)

	// BackwardInput computes ei = corr(eo, w) (Eq. 3). ei is overwritten.
	BackwardInput(ei, eo, w *tensor.Tensor)

	// BackwardWeights computes dw = grad(eo, in) (Eq. 4). dw is
	// overwritten.
	BackwardWeights(dw, eo, in *tensor.Tensor)
}

// SingleOps adapts the batch seam to the per-sample one. Engines embed a
// SingleOps value and forward their SingleKernel methods through it:
//
//	func (k *Kernel) Forward(out, in, w *tensor.Tensor) { k.single.Forward(k, out, in, w) }
//
// The adapter lazily builds one private serial context (fresh arena, no
// probe sharing) and reuses two one-element batch slices across calls, so
// per-sample stepping stays allocation-free after the first call. Like the
// legacy contract it replaces, a SingleOps value is not safe for
// concurrent use.
type SingleOps struct {
	once sync.Once
	ctx  *exec.Ctx
	a, b [1]*tensor.Tensor
}

// Ctx returns the adapter's private serial context, building it on first
// use.
func (s *SingleOps) Ctx() *exec.Ctx {
	s.once.Do(func() { s.ctx = exec.New(1) })
	return s.ctx
}

// Forward runs k's ForwardBatch on the single sample (out, in).
func (s *SingleOps) Forward(k Kernel, out, in, w *tensor.Tensor) {
	c := s.Ctx()
	s.a[0], s.b[0] = out, in
	k.ForwardBatch(c, s.a[:], s.b[:], w)
	s.a[0], s.b[0] = nil, nil
}

// BackwardInput runs k's BackwardInputBatch on the single sample (ei, eo).
func (s *SingleOps) BackwardInput(k Kernel, ei, eo, w *tensor.Tensor) {
	c := s.Ctx()
	s.a[0], s.b[0] = ei, eo
	k.BackwardInputBatch(c, s.a[:], s.b[:], w)
	s.a[0], s.b[0] = nil, nil
}

// BackwardWeights runs k's BackwardWeightsBatch on the single sample
// (eo, in).
func (s *SingleOps) BackwardWeights(k Kernel, dw, eo, in *tensor.Tensor) {
	c := s.Ctx()
	s.a[0], s.b[0] = eo, in
	k.BackwardWeightsBatch(c, dw, s.a[:], s.b[:])
	s.a[0], s.b[0] = nil, nil
}

// Generator builds a kernel specialized to a spec. It plays the role of
// the paper's code generators: invoked once per (layer, technique), the
// result is then run for every training batch.
type Generator struct {
	// Name identifies the technique, e.g. "stencil".
	Name string
	// New generates a kernel for s. Generators must be safe for concurrent
	// use.
	New func(s conv.Spec) Kernel
	// Supports reports whether the technique can execute the given
	// geometry. nil means every valid spec is supported. Shape-restricted
	// engines (Winograd's fixed 3×3/stride-1 form, FFT's plain geometry,
	// the sparse kernels' ungrouped/undilated loop nests) set this so the
	// planner prunes them from the candidate set instead of crashing at
	// generation time.
	Supports func(s conv.Spec) bool
}

// Supports reports whether generator g can execute s: its Supports
// predicate when set, otherwise any valid spec.
func Supports(g Generator, s conv.Spec) bool {
	if s.Validate() != nil {
		return false
	}
	if g.Supports == nil {
		return true
	}
	return g.Supports(s)
}

// PlainOnly is the Supports predicate of engines that predate the
// generalized spec: they handle exactly the unpadded, undilated,
// ungrouped geometry.
func PlainOnly(s conv.Spec) bool { return s.Plain() }

// Registry is an ordered collection of kernel generators the scheduler
// chooses among.
type Registry struct {
	gens []Generator
}

// Register appends a generator. Duplicate names panic — the scheduler
// reports choices by name, so names must be unambiguous.
func (r *Registry) Register(g Generator) {
	if g.New == nil {
		panic("engine: Register with nil constructor")
	}
	for _, existing := range r.gens {
		if existing.Name == g.Name {
			panic(fmt.Sprintf("engine: duplicate generator %q", g.Name))
		}
	}
	r.gens = append(r.gens, g)
}

// Generators returns the registered generators in registration order.
func (r *Registry) Generators() []Generator {
	return append([]Generator(nil), r.gens...)
}

// Lookup returns the generator with the given name.
func (r *Registry) Lookup(name string) (Generator, bool) {
	for _, g := range r.gens {
		if g.Name == name {
			return g, true
		}
	}
	return Generator{}, false
}
