package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"spgcnn"
)

// update regenerates testdata/golden.txt from the deterministic fake
// server and clock:
//
//	go test ./cmd/spg-load -run Golden -update
var update = flag.Bool("update", false, "rewrite testdata/golden.txt")

// scriptedTransport answers /v1/spec with a fixed input length and
// /v1/infer from a fixed script of (status, batch) pairs, cycling.
type scriptedTransport struct {
	mu     sync.Mutex
	calls  int
	script []scriptedReply
}

type scriptedReply struct {
	status int
	batch  int
}

func (f *scriptedTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	if strings.HasSuffix(req.URL.Path, "/v1/spec") {
		return textResp(http.StatusOK, `{"input_len": 8}`), nil
	}
	if req.Body != nil {
		io.Copy(io.Discard, req.Body)
		req.Body.Close()
	}
	f.mu.Lock()
	rep := f.script[f.calls%len(f.script)]
	f.calls++
	f.mu.Unlock()
	if rep.status != http.StatusOK {
		return textResp(rep.status, `{"error":"busy"}`), nil
	}
	return textResp(http.StatusOK,
		fmt.Sprintf(`{"output":[0.5,0.1],"argmax":0,"batch":%d}`, rep.batch)), nil
}

func textResp(status int, body string) *http.Response {
	return &http.Response{
		StatusCode: status,
		Header:     http.Header{"Content-Type": []string{"application/json"}},
		Body:       io.NopCloser(strings.NewReader(body)),
	}
}

// stepClock advances a fixed amount per reading — with one closed-loop
// worker the sequence of readings, and so every latency and the elapsed
// time, is fully deterministic.
type stepClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *stepClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(time.Millisecond)
	return c.t
}

func withFakes(script []scriptedReply) func(*spgcnn.LoadConfig) {
	return func(cfg *spgcnn.LoadConfig) {
		clock := &stepClock{}
		cfg.Client = &http.Client{Transport: &scriptedTransport{script: script}}
		cfg.Now = clock.now
		cfg.Sleep = func(time.Duration) {}
	}
}

// TestRunGolden pins the spg-load report byte-for-byte against a
// deterministic fake server and clock. Any diff is an intentional format
// change: regenerate with
//
//	go test ./cmd/spg-load -run Golden -update
func TestRunGolden(t *testing.T) {
	loadCfgHook = withFakes([]scriptedReply{
		{http.StatusOK, 4}, {http.StatusOK, 4}, {http.StatusOK, 4},
		{http.StatusOK, 2}, {http.StatusServiceUnavailable, 0},
		{http.StatusOK, 4}, {http.StatusOK, 1}, {http.StatusOK, 2},
	})
	defer func() { loadCfgHook = nil }()

	var out strings.Builder
	if err := run([]string{"-url", "http://fake", "-c", "1", "-n", "8", "-seed", "7"}, &out); err != nil {
		t.Fatal(err)
	}

	goldenPath := filepath.Join("testdata", "golden.txt")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, []byte(out.String()), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatal(err)
	}
	if out.String() != string(want) {
		t.Errorf("output diverged from testdata/golden.txt\n--- got ---\n%s\n--- want ---\n%s",
			out.String(), want)
	}
}

// TestRunOpenLoopMode checks the open-loop header and pacing fields
// render (same fakes, -rate set).
func TestRunOpenLoopMode(t *testing.T) {
	loadCfgHook = withFakes([]scriptedReply{{http.StatusOK, 1}})
	defer func() { loadCfgHook = nil }()

	var out strings.Builder
	if err := run([]string{"-url", "http://fake", "-c", "2", "-n", "4", "-rate", "50"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"open loop", "target rate     50.0 req/s", "ok              4"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("report missing %q:\n%s", want, out.String())
		}
	}
}

// TestRunErrors: an unreachable server is an error, not a zero report.
func TestRunErrors(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-url", "http://127.0.0.1:1", "-n", "1", "-timeout", "100ms"}, &out); err == nil {
		t.Error("expected an error for an unreachable server")
	}
}
