package plan

import (
	"sort"
	"strings"

	"spgcnn/internal/ait"
	"spgcnn/internal/conv"
	"spgcnn/internal/core"
	"spgcnn/internal/machine"
)

// ModelScore is one candidate's analytical prediction from the model-first
// pass: the §3 AIT characterization pushed through the internal/machine
// roofline, expressed as an effective dense-equivalent GFlops/core rate so
// dense throughput and sparse goodput rank on one axis.
type ModelScore struct {
	Strategy      string  `json:"strategy"`
	GFlopsPerCore float64 `json:"gflops_per_core"`
	// Modeled is false when the strategy has no analytical model (custom
	// candidate sets); unmodeled candidates are never pruned.
	Modeled bool `json:"modeled"`
	// Pruned marks candidates the planner excluded from measurement.
	Pruned bool `json:"pruned,omitempty"`
}

// ModelRank runs the model-first pass for one phase: every named candidate
// scored under m at the given worker count and gradient sparsity, returned
// sorted best-first (unmodeled candidates sort last, in input order).
func ModelRank(m machine.Machine, s conv.Spec, phase string, sparsity float64,
	workers int, names []string) []ModelScore {
	if workers < 1 {
		workers = 1
	}
	scores := make([]ModelScore, 0, len(names))
	for _, name := range names {
		rate, ok := ModelRate(m, s, phase, sparsity, workers, name)
		scores = append(scores, ModelScore{Strategy: name, GFlopsPerCore: rate, Modeled: ok})
	}
	sort.SliceStable(scores, func(i, j int) bool {
		if scores[i].Modeled != scores[j].Modeled {
			return scores[i].Modeled
		}
		return scores[i].GFlopsPerCore > scores[j].GFlopsPerCore
	})
	return scores
}

// ModelRate maps a built-in strategy name onto its machine-model
// prediction for the phase, as a dense-equivalent GFlops/core rate.
// Sparse-Kernel goodput is converted to the dense-flops-equivalent rate
// (goodput / non-zero fraction) so its predicted wall time compares
// against dense candidates — and so predicted wall time is always
// denseFlops / (rate × 1e9 × workers), whatever the strategy. ok is
// false for strategies the machine model does not cover (custom
// candidate sets, phases a strategy cannot run). The drift observatory
// (internal/obs) uses this same rate to turn deployed-strategy span
// times into model-vs-measured agreement ratios.
func ModelRate(m machine.Machine, s conv.Spec, phase string, sparsity float64,
	workers int, name string) (float64, bool) {
	switch name {
	case "parallel-gemm":
		if phase == "fp" {
			return m.ParallelGEMM(s, ait.FP, workers), true
		}
		return bpAggregate(s, workers, func(ph ait.Phase) float64 {
			return m.ParallelGEMM(s, ph, workers)
		}), true
	case "gemm-in-parallel":
		if phase == "fp" {
			return m.GEMMInParallel(s, ait.FP, workers), true
		}
		return bpAggregate(s, workers, func(ph ait.Phase) float64 {
			return m.GEMMInParallel(s, ph, workers)
		}), true
	case "gemm-packed":
		// Prepacked weight operand: the model carries the pack-amortization
		// term (machine.PackedGEMM) so the candidate ranks above
		// parallel-gemm exactly where hoisting the pack pays — many output
		// pixels per weight element — and not on degenerate geometries.
		if phase == "fp" {
			return m.PackedGEMM(s, ait.FP, workers), true
		}
		return bpAggregate(s, workers, func(ph ait.Phase) float64 {
			return m.PackedGEMM(s, ph, workers)
		}), true
	case "stencil":
		if phase == "fp" {
			return m.Stencil(s, workers), true
		}
		return 0, false
	case "blocked":
		// Channel-blocked direct FP: unfold-free micro-kernel panels
		// (machine.BlockedConvFP). FP-only — its BP delegates to the serial
		// GEMM, so as a BP candidate it is never the model's pick.
		if phase == "fp" {
			return m.BlockedConvFP(s, workers), true
		}
		return 0, false
	case "sparse-weight":
		// Weight-density-scaled FP goodput, converted to the dense-
		// equivalent rate exactly like the sparse BP kernel below. For this
		// candidate `sparsity` carries the WEIGHT sparsity (plan passes
		// w.Sparsity() to the FP phase).
		if phase != "fp" {
			return 0, false
		}
		dense := 1 - sparsity
		if dense < 0.01 {
			dense = 0.01
		}
		return m.SparseWeightFP(s, sparsity, workers) / dense, true
	case "sparse":
		if phase != "bp" {
			return 0, false
		}
		dense := 1 - sparsity
		if dense < 0.01 {
			dense = 0.01
		}
		return m.SparseGoodput(s, sparsity, workers) / dense, true
	default:
		return 0, false
	}
}

// bpAggregate combines the two backward GEMM phases (Eq. 3 input-error +
// Eq. 4 delta-weights) into one rate: total flops over summed per-phase
// time, per core — the same aggregation machine.trainingAggregate uses for
// full training steps.
func bpAggregate(s conv.Spec, workers int, rate func(ait.Phase) float64) float64 {
	w := float64(workers)
	fEI := float64(ait.MMOf(s, ait.BPInput).Flops())
	fDW := float64(ait.MMOf(s, ait.BPWeights).Flops())
	rEI, rDW := rate(ait.BPInput), rate(ait.BPWeights)
	if rEI <= 0 || rDW <= 0 {
		return 0
	}
	t := fEI/(rEI*1e9*w) + fDW/(rDW*1e9*w)
	return (fEI + fDW) / t / 1e9 / w
}

// MarkPruned applies the planner's prune policy to scores in place —
// which candidates would be excluded from measurement at the given ratio —
// without running any measurement. sparsity drives the Fig. 1 region
// classification guarding region-recommended candidates (pass 0 for FP).
func MarkPruned(cands []core.Strategy, scores []ModelScore, ratio float64,
	s conv.Spec, sparsity float64) {
	prune(cands, scores, ratio, recommendedNames(s, sparsity))
}

// recommendedNames maps the Fig. 1 region prescription for (s, sparsity)
// onto strategy names. Region-recommended candidates are never pruned:
// the region classification is the paper's own ground truth for which
// techniques matter in that corner of the design space, so the roofline
// model is not allowed to overrule it before measurement.
func recommendedNames(s conv.Spec, sparsity float64) map[string]bool {
	out := make(map[string]bool)
	for _, rec := range ait.Classify(s, sparsity).Props().Recommendations {
		switch {
		case strings.HasPrefix(rec, "Parallel-GEMM"):
			out["parallel-gemm"] = true
		case strings.HasPrefix(rec, "GEMM-in-Parallel"):
			out["gemm-in-parallel"] = true
		case strings.HasPrefix(rec, "Stencil"):
			out["stencil"] = true
		case strings.HasPrefix(rec, "Sparse"):
			out["sparse"] = true
		}
	}
	return out
}

// prune marks clearly-dominated candidates in scores and returns the
// surviving strategies in their ORIGINAL candidate order (ChooseFP/Choose-
// BP break measurement ties by order, so reordering would perturb cold-
// path selections). A modeled candidate is pruned when its predicted rate
// falls below ratio × the best modeled rate, unless it is the model's own
// top pick, region-recommended, or unmodeled.
func prune(cands []core.Strategy, scores []ModelScore, ratio float64,
	recommended map[string]bool) (survivors []core.Strategy, pruned []string) {
	best := 0.0
	top := ""
	for _, sc := range scores {
		if sc.Modeled && sc.GFlopsPerCore > best {
			best = sc.GFlopsPerCore
			top = sc.Strategy
		}
	}
	dead := make(map[string]bool)
	if ratio > 0 && best > 0 {
		for i := range scores {
			sc := &scores[i]
			if !sc.Modeled || sc.Strategy == top || recommended[sc.Strategy] {
				continue
			}
			if sc.GFlopsPerCore < ratio*best {
				sc.Pruned = true
				dead[sc.Strategy] = true
			}
		}
	}
	for _, st := range cands {
		if dead[st.Name] {
			pruned = append(pruned, st.Name)
			continue
		}
		survivors = append(survivors, st)
	}
	if len(survivors) == 0 { // unreachable (top always survives); belt and braces
		return cands, nil
	}
	return survivors, pruned
}
