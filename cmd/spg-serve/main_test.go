package main

import (
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"spgcnn"
	"spgcnn/internal/serve/loadgen"
)

// tinyNet keeps the end-to-end test fast: one small conv plus a head.
const tinyNet = `
name: "servetiny"
input { channels: 1 height: 12 width: 12 }
layer { name: "conv0" type: "conv" features: 4 kernel: 3 stride: 1 }
layer { name: "relu0" type: "relu" }
layer { name: "fc0" type: "fc" outputs: 5 }
`

// startServe runs the real spg-serve entrypoint in a goroutine and waits
// for its listener. Returns the bound address, a stop func that drains
// and joins, and the command's stdout (filled after stop).
func startServe(t *testing.T, extraArgs ...string) (addr string, stop func() string) {
	t.Helper()
	dir := t.TempDir()
	netFile := filepath.Join(dir, "net.prototxt")
	if err := os.WriteFile(netFile, []byte(tinyNet), 0o644); err != nil {
		t.Fatal(err)
	}

	ready := make(chan string, 1)
	serveReadyHook = func(a string) { ready <- a }
	stopCh = make(chan struct{})
	t.Cleanup(func() { serveReadyHook = nil; stopCh = nil })

	var out strings.Builder
	errCh := make(chan error, 1)
	args := append([]string{"-file", netFile, "-addr", "127.0.0.1:0"}, extraArgs...)
	go func() { errCh <- run(args, &out) }()

	select {
	case addr = <-ready:
	case err := <-errCh:
		t.Fatalf("spg-serve exited before listening: %v\n%s", err, out.String())
	case <-time.After(30 * time.Second):
		t.Fatal("spg-serve did not come up")
	}
	stopped := false
	stop = func() string {
		if !stopped {
			stopped = true
			close(stopCh)
			if err := <-errCh; err != nil {
				t.Fatalf("spg-serve run: %v\n%s", err, out.String())
			}
		}
		return out.String()
	}
	t.Cleanup(func() { stop() })
	return addr, stop
}

// TestServeEndToEnd boots the real spg-serve command on loopback, drives
// it with the loadgen package under concurrency, scrapes /metrics
// MID-RUN, and checks the load report and the shutdown epilogue agree.
func TestServeEndToEnd(t *testing.T) {
	addr, stop := startServe(t, "-max-batch", "4", "-max-delay", "2ms", "-replicas", "2", "-drift")
	url := "http://" + addr

	// Mid-run scrape: fire a slice of load, then read /metrics while the
	// server is live (the endpoint rides the serve mux, PR 2 shape).
	res1, err := loadgen.Run(loadgen.Config{URL: url, Concurrency: 4, Requests: 40, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	metrics := string(b)
	for _, want := range []string{
		"spg_serve_queue_depth", "spg_serve_requests_total", "spg_serve_batch_size",
		"spg_serve_goodput_ratio", "spg_serve_replicas 2",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("mid-run /metrics missing %q", want)
		}
	}
	if !strings.Contains(metrics, "spg_workers") {
		t.Error("mid-run /metrics missing the bound exec-context series (spg_workers)")
	}
	for _, want := range []string{"spg_runtime_gomaxprocs", "spg_runtime_goroutines", "spg_drift_ewma_ratio"} {
		if !strings.Contains(metrics, want) {
			t.Errorf("mid-run /metrics missing %q", want)
		}
	}

	// /healthz rides along too.
	hc, err := http.Get(url + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, hc.Body)
	hc.Body.Close()
	if hc.StatusCode != http.StatusOK {
		t.Errorf("/healthz = %d", hc.StatusCode)
	}

	// Second slice, then sanity-check the aggregate.
	res2, err := loadgen.Run(loadgen.Config{URL: url, Concurrency: 4, Requests: 40, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	totalOK := res1.OK + res2.OK
	if totalOK != 80 {
		t.Errorf("%d requests succeeded, want 80 (rejected %d+%d, failed %d+%d)",
			totalOK, res1.Rejected, res2.Rejected, res1.Failed, res2.Failed)
	}
	// p99 sanity: positive and under a generous ceiling — this is a
	// correctness bound (nothing hung), not a performance assertion.
	for i, r := range []*loadgen.Result{res1, res2} {
		if r.LatP99 <= 0 || r.LatP99 > 10*time.Second {
			t.Errorf("slice %d: implausible p99 %v", i+1, r.LatP99)
		}
		if r.LatP50 > r.LatP99 {
			t.Errorf("slice %d: p50 %v > p99 %v", i+1, r.LatP50, r.LatP99)
		}
	}

	out := stop()
	if !strings.Contains(out, fmt.Sprintf("served %d requests", totalOK)) {
		t.Errorf("epilogue does not report the %d served requests:\n%s", totalOK, out)
	}
	if !strings.Contains(out, "goodput:") {
		t.Errorf("epilogue missing the goodput line:\n%s", out)
	}
	// The observability epilogue: plan-cache accounting, the deployed
	// strategy per layer and bucket, and the drift agreement report.
	if !strings.Contains(out, "plan cache:") || !strings.Contains(out, "measurement passes") {
		t.Errorf("epilogue missing the plan-cache summary:\n%s", out)
	}
	if !strings.Contains(out, "deployed conv0: batch") {
		t.Errorf("epilogue missing the per-layer deployed strategies:\n%s", out)
	}
	if !strings.Contains(out, "agreement per Fig. 1 region:") {
		t.Errorf("epilogue missing the drift agreement report:\n%s", out)
	}
}

// TestServeCheckpointRoundTrip trains one tiny epoch worth of weights via
// the nn stack's Save (through the facade), serves the checkpoint, and
// checks /v1/spec reflects the description.
func TestServeCheckpointRoundTrip(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "w.ckpt")

	def, err := spgcnn.ParseNet(tinyNet)
	if err != nil {
		t.Fatal(err)
	}
	net, err := spgcnn.BuildNet(def, spgcnn.BuildOptions{Workers: 1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Save(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	addrFile := filepath.Join(dir, "addr")
	addr, _ := startServe(t, "-load", ckpt, "-addr-file", addrFile, "-max-batch", "2")

	// -addr-file wrote the bound address for scripts.
	b, err := os.ReadFile(addrFile)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(string(b)); got != addr {
		t.Errorf("addr-file %q != bound %q", got, addr)
	}

	res, err := loadgen.Run(loadgen.Config{URL: "http://" + addr, Concurrency: 2, Requests: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.OK != 8 {
		t.Errorf("ok %d, want 8", res.OK)
	}
}

// TestRunRejectsBadFlags pins the argument-validation error paths.
func TestRunRejectsBadFlags(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-net", "nope"}, &out); err == nil {
		t.Error("unknown builtin accepted")
	}
	if err := run([]string{"-strategy", "nope"}, &out); err == nil {
		t.Error("unknown strategy accepted")
	}
	if err := run([]string{"-file", "/does/not/exist"}, &out); err == nil {
		t.Error("missing netdef file accepted")
	}
}
