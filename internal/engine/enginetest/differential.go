package enginetest

import (
	"math"
	"testing"

	"spgcnn/internal/conv"
	"spgcnn/internal/engine"
	"spgcnn/internal/exec"
	"spgcnn/internal/refconv"
	"spgcnn/internal/rng"
	"spgcnn/internal/tensor"
)

// DiffOptions tunes the differential sweep.
type DiffOptions struct {
	// Trials is the number of random specs exercised (default 12).
	Trials int
	// MaxDim bounds random spec dimensions (default 10).
	MaxDim int
	// Seed seeds the generator (default 0xD1FF).
	Seed uint64
	// Batch is the batch size driven through the batch seam (default 2).
	Batch int
	// MaxULP is the per-element unit-in-the-last-place budget (default 256,
	// roughly 3e-5 relative — tight enough to catch wrong math, loose
	// enough for reassociated float32 sums).
	MaxULP uint64
	// RelTol admits elements whose relative error (with an absolute floor
	// of 1) is within it even if they blow the ULP budget. The default
	// 1e-5 absorbs catastrophic cancellation — two reassociated sums that
	// both land near zero are many ULP apart yet equally correct.
	// Transform-domain engines (FFT, Winograd) set it higher: their
	// rounding is structural, not a bug.
	RelTol float64
	// SkipBackward skips BP comparison for FP-only engines.
	SkipBackward bool
	// Sparsities are the EO sparsity levels swept in BP comparisons
	// (default 0, 0.25, 0.5, 0.75, 0.9, 0.99).
	Sparsities []float64
	// WeightSparsities, when non-nil, adds FP comparisons with the weight
	// tensor pruned to each level — the sweep weight-sparse engines use to
	// pin their zero-skipping against the dense reference. nil (the
	// default) runs no weight-sparse FP passes.
	WeightSparsities []float64
	// ExtraSpecs are always swept in addition to the built-in and random
	// geometries (e.g. shapes known to cross a kernel's dispatch
	// thresholds).
	ExtraSpecs []conv.Spec
}

func (o *DiffOptions) fill() {
	if o.Trials == 0 {
		o.Trials = 12
	}
	if o.MaxDim == 0 {
		o.MaxDim = 10
	}
	if o.Seed == 0 {
		o.Seed = 0xD1FF
	}
	if o.Batch == 0 {
		o.Batch = 2
	}
	if o.MaxULP == 0 {
		o.MaxULP = 256
	}
	if o.RelTol == 0 {
		o.RelTol = 1e-5
	}
	if o.Sparsities == nil {
		o.Sparsities = []float64{0, 0.25, 0.5, 0.75, 0.9, 0.99}
	}
}

// ulpDist is the distance between two float32 values in units in the last
// place: the number of representable values between them. The bit pattern
// is mapped to a monotonic integer line (two's-complement style fold of
// the sign-magnitude float encoding), so +0 and -0 are adjacent and the
// distance is exact across the whole range. NaN on either side is
// infinitely far.
func ulpDist(a, b float32) uint64 {
	if a == b {
		return 0
	}
	fa, fb := float64(a), float64(b)
	if math.IsNaN(fa) || math.IsNaN(fb) {
		return math.MaxUint64
	}
	return uint64(absDelta(orderedBits(a), orderedBits(b)))
}

func orderedBits(f float32) int64 {
	bits := math.Float32bits(f)
	if bits&0x8000_0000 != 0 {
		return -int64(bits &^ 0x8000_0000)
	}
	return int64(bits)
}

func absDelta(a, b int64) int64 {
	if a > b {
		return a - b
	}
	return b - a
}

// diffCompare checks got against want element-wise under the ULP budget
// (with optional relative-error escape) and reports the worst offender.
func diffCompare(t *testing.T, label string, s conv.Spec, sparsity float64,
	got, want *tensor.Tensor, opts DiffOptions) {
	t.Helper()
	if !got.SameShape(want) {
		t.Fatalf("%s: shape mismatch for %v", label, s)
	}
	var worst uint64
	worstIdx := -1
	for i := range want.Data {
		d := ulpDist(got.Data[i], want.Data[i])
		if d <= opts.MaxULP {
			continue
		}
		if opts.RelTol > 0 {
			g, w := float64(got.Data[i]), float64(want.Data[i])
			if math.Abs(g-w) <= opts.RelTol*math.Max(math.Max(math.Abs(g), math.Abs(w)), 1) {
				continue
			}
		}
		if d > worst {
			worst, worstIdx = d, i
		}
	}
	if worstIdx >= 0 {
		t.Fatalf("%s: %v sparsity %.2f: element %d differs by %d ULP (got %g, want %g; budget %d ULP, reltol %g)",
			label, s, sparsity, worstIdx, worst, got.Data[worstIdx], want.Data[worstIdx],
			opts.MaxULP, opts.RelTol)
	}
}

// RunDifferential fuzzes gen against ref (normally the serial unfold+GEMM
// lowering — the most direct transcription of Eqs. 2–4) over randomized
// geometries and a sweep of error-gradient sparsities from dense to 0.99.
// Both kernels execute batch-first through one shared, NaN-poisoned
// context, and every output element must agree within a tight ULP budget.
// The reference generator is a parameter rather than an import so engine
// packages (whose tests live in the package itself) can pass
// unfoldgemm.Generator(1) without an import cycle through enginetest.
func RunDifferential(t *testing.T, gen, ref engine.Generator, opts DiffOptions) {
	t.Helper()
	opts.fill()
	r := rng.New(opts.Seed)

	c := exec.New(2)
	poisonArena(c)

	specs := []conv.Spec{
		conv.Square(4, 1, 1, 1, 1),
		conv.Square(9, 3, 2, 3, 3),
		conv.Spec{Nx: 11, Ny: 5, Nc: 2, Nf: 3, Fx: 3, Fy: 2, Sx: 2, Sy: 1},
		// Odd prime dims and stride > 1 on both axes: geometries whose
		// GEMM shapes hit every remainder path of the register kernels
		// (partial panels, M/N/K not multiples of the tile widths).
		conv.Spec{Nx: 13, Ny: 7, Nc: 3, Nf: 5, Fx: 3, Fy: 3, Sx: 2, Sy: 2},
		conv.Spec{Nx: 17, Ny: 17, Nc: 1, Nf: 7, Fx: 5, Fy: 1, Sx: 3, Sy: 1},
	}
	specs = append(specs, opts.ExtraSpecs...)
	for i := 0; i < opts.Trials; i++ {
		specs = append(specs, conv.RandSpec(r, opts.MaxDim))
	}

	for _, s := range specs {
		k, kRef := gen.New(s), ref.New(s)
		ins, outs, _, _ := batchFixtures(r, s, opts.Batch, 0)
		w := conv.RandWeights(r, s)

		k.ForwardBatch(c, outs, ins, w)
		wantOuts := make([]*tensor.Tensor, opts.Batch)
		for i := range wantOuts {
			wantOuts[i] = conv.NewOutput(s)
		}
		kRef.ForwardBatch(c, wantOuts, ins, w)
		for i := range outs {
			diffCompare(t, gen.Name+" vs "+ref.Name+" FP", s, 0, outs[i], wantOuts[i], opts)
		}

		for _, ws := range opts.WeightSparsities {
			sw := conv.RandWeights(r, s)
			sw.Sparsify(r, ws)
			sw.Bump()
			k.ForwardBatch(c, outs, ins, sw)
			kRef.ForwardBatch(c, wantOuts, ins, sw)
			for i := range outs {
				diffCompare(t, gen.Name+" vs "+ref.Name+" FP(wsparse)", s, ws, outs[i], wantOuts[i], opts)
			}
		}

		if opts.SkipBackward {
			continue
		}
		for _, sp := range opts.Sparsities {
			_, _, eos, eis := batchFixtures(r, s, opts.Batch, sp)
			for i := range eis {
				eis[i].FillUniform(r, -9, 9) // pre-poison: kernels must overwrite
			}
			k.BackwardInputBatch(c, eis, eos, w)
			dw := conv.NewWeights(s)
			dw.FillUniform(r, -9, 9)
			k.BackwardWeightsBatch(c, dw, eos, ins)

			wantEI := conv.NewInput(s)
			for i := range eis {
				kRef.BackwardInputBatch(c, []*tensor.Tensor{wantEI}, eos[i:i+1], w)
				diffCompare(t, gen.Name+" vs "+ref.Name+" BPI", s, sp, eis[i], wantEI, opts)
			}
			wantDW := conv.NewWeights(s)
			kRef.BackwardWeightsBatch(c, wantDW, eos, ins)
			diffCompare(t, gen.Name+" vs "+ref.Name+" BPW", s, sp, dw, wantDW, opts)
		}
	}

	runGeneralSweep(t, c, gen, r, opts)
}

// generalSpecs is the built-in padded/dilated/grouped geometry sweep.
// The Nc=12, Groups=2 entries exercise NCHW8 tail lanes (one full block
// of 8 plus a 4-wide tail) with a group boundary mid-tensor.
func generalSpecs() []conv.Spec {
	return []conv.Spec{
		// Same-padded 3×3, the workload zoo's bread and butter.
		{Nx: 8, Ny: 8, Nc: 2, Nf: 3, Fx: 3, Fy: 3, Sx: 1, Sy: 1, Px: 1, Py: 1},
		// Strided with asymmetric padding.
		{Nx: 9, Ny: 7, Nc: 2, Nf: 4, Fx: 3, Fy: 3, Sx: 2, Sy: 2, Px: 2, Py: 1},
		// Dilated, extent-preserving (pad = dilation).
		{Nx: 10, Ny: 10, Nc: 2, Nf: 3, Fx: 3, Fy: 3, Sx: 1, Sy: 1, Px: 2, Py: 2, Dx: 2, Dy: 2},
		// Grouped, no padding.
		{Nx: 8, Ny: 8, Nc: 4, Nf: 6, Fx: 3, Fy: 3, Sx: 1, Sy: 1, Groups: 2},
		// Depthwise (groups == channels) with padding.
		{Nx: 7, Ny: 7, Nc: 5, Nf: 5, Fx: 3, Fy: 3, Sx: 1, Sy: 1, Px: 1, Py: 1, Groups: 5},
		// NCHW8 tail lanes (Nc = 12 = 8 + 4) with a group split.
		{Nx: 8, Ny: 8, Nc: 12, Nf: 12, Fx: 3, Fy: 3, Sx: 1, Sy: 1, Px: 1, Py: 1, Groups: 2},
		// Everything at once: rectangular, strided, padded, dilated, grouped.
		{Nx: 11, Ny: 9, Nc: 6, Nf: 9, Fx: 3, Fy: 2, Sx: 2, Sy: 1, Px: 1, Py: 2, Dx: 2, Dy: 1, Groups: 3},
	}
}

// runGeneralSweep drives the generalized-spec battery: every padded/
// dilated/grouped geometry the engine claims support for (via the
// engine.Supports capability seam) is compared against the reference
// oracle under the same ULP budget as the plain sweep. Shape-restricted
// engines decline all of these and run none — exactly the planner's
// pruning contract.
func runGeneralSweep(t *testing.T, c *exec.Ctx, gen engine.Generator, r *rng.RNG, opts DiffOptions) {
	t.Helper()
	specs := generalSpecs()
	for i := 0; i < opts.Trials; i++ {
		specs = append(specs, conv.RandSpecGeneral(r, opts.MaxDim))
	}
	oracle := refconv.Generator()
	ran := 0
	for _, s := range specs {
		s = s.Canon()
		if s.Plain() {
			continue // random generator occasionally draws a plain spec
		}
		if !engine.Supports(gen, s) {
			continue
		}
		ran++
		k, kRef := gen.New(s), oracle.New(s)
		ins, outs, _, _ := batchFixtures(r, s, opts.Batch, 0)
		w := conv.RandWeights(r, s)

		k.ForwardBatch(c, outs, ins, w)
		wantOut := conv.NewOutput(s)
		for i := range outs {
			kRef.ForwardBatch(c, []*tensor.Tensor{wantOut}, ins[i:i+1], w)
			diffCompare(t, gen.Name+" vs oracle FP(general)", s, 0, outs[i], wantOut, opts)
		}

		if opts.SkipBackward {
			continue
		}
		for _, sp := range opts.Sparsities {
			_, _, eos, eis := batchFixtures(r, s, opts.Batch, sp)
			for i := range eis {
				eis[i].FillUniform(r, -9, 9)
			}
			k.BackwardInputBatch(c, eis, eos, w)
			dw := conv.NewWeights(s)
			dw.FillUniform(r, -9, 9)
			k.BackwardWeightsBatch(c, dw, eos, ins)

			wantEI := conv.NewInput(s)
			for i := range eis {
				kRef.BackwardInputBatch(c, []*tensor.Tensor{wantEI}, eos[i:i+1], w)
				diffCompare(t, gen.Name+" vs oracle BPI(general)", s, sp, eis[i], wantEI, opts)
			}
			wantDW := conv.NewWeights(s)
			kRef.BackwardWeightsBatch(c, wantDW, eos, ins)
			diffCompare(t, gen.Name+" vs oracle BPW(general)", s, sp, dw, wantDW, opts)
		}
	}
	if plain := engine.Supports(gen, conv.Square(8, 2, 3, 3, 1)); plain && gen.Supports == nil && ran == 0 {
		t.Fatalf("%s: claims support for every spec but the general sweep ran none", gen.Name)
	}
}
