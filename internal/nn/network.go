package nn

import (
	"fmt"

	"spgcnn/internal/core"
	"spgcnn/internal/tensor"
)

// Network is an ordered stack of layers with preallocated per-batch-slot
// activation and gradient storage, so steady-state training performs no
// tensor allocation.
type Network struct {
	layers []Layer

	// acts[l][i]: output of layer l for batch slot i. grads[l][i]: error
	// gradient of layer l's output for slot i.
	acts  [][]*tensor.Tensor
	grads [][]*tensor.Tensor
	cap   int

	// inference marks a forward-only network: EnsureBatch allocates no
	// gradient storage and Backward panics (serve.go's replicas).
	inference bool

	// profiling state (profile.go).
	profiling bool
	profile   []LayerProfile
}

// NewNetwork validates that consecutive layer shapes chain and returns the
// network.
func NewNetwork(layers ...Layer) *Network {
	if len(layers) == 0 {
		panic("nn: empty network")
	}
	for i := 1; i < len(layers); i++ {
		if prod(layers[i-1].OutDims()) != prod(layers[i].InDims()) {
			panic(fmt.Sprintf("nn: layer %d (%s) output %v does not feed layer %d (%s) input %v",
				i-1, layers[i-1].Name(), layers[i-1].OutDims(),
				i, layers[i].Name(), layers[i].InDims()))
		}
	}
	n := &Network{layers: layers}
	n.acts = make([][]*tensor.Tensor, len(layers))
	n.grads = make([][]*tensor.Tensor, len(layers))
	return n
}

// Layers returns the layer stack.
func (n *Network) Layers() []Layer { return n.layers }

// InDims returns the per-image input shape.
func (n *Network) InDims() []int { return n.layers[0].InDims() }

// OutDims returns the per-image output (logits) shape.
func (n *Network) OutDims() []int { return n.layers[len(n.layers)-1].OutDims() }

// SetInference marks the network forward-only: no gradient storage is
// allocated and Backward panics. Meant for freshly built networks (the
// netdef inference build); gradient slots already allocated stay put.
func (n *Network) SetInference() { n.inference = true }

// Inference reports whether the network is forward-only.
func (n *Network) Inference() bool { return n.inference }

// EnsureBatch grows the preallocated activation/gradient storage to hold
// at least `size` batch slots (activations only on inference networks).
func (n *Network) EnsureBatch(size int) {
	if size <= n.cap {
		return
	}
	for l, layer := range n.layers {
		dims := layer.OutDims()
		for len(n.acts[l]) < size {
			n.acts[l] = append(n.acts[l], tensor.New(dims...))
		}
		if n.inference {
			continue
		}
		for len(n.grads[l]) < size {
			n.grads[l] = append(n.grads[l], tensor.New(layer.InDims()...))
		}
	}
	n.cap = size
}

// reshaped returns ts[i] viewed with the given dims (activations flow
// between layers that may flatten, e.g. pool -> FC).
func reshaped(ts []*tensor.Tensor, dims []int) []*tensor.Tensor {
	out := make([]*tensor.Tensor, len(ts))
	for i, t := range ts {
		if dimsEqual(t.Dims, dims) {
			out[i] = t
		} else {
			out[i] = t.Reshape(dims...)
		}
	}
	return out
}

// Forward runs the batch through every layer and returns the logits
// (aliasing internal storage — valid until the next Forward).
func (n *Network) Forward(ins []*tensor.Tensor) []*tensor.Tensor {
	n.EnsureBatch(len(ins))
	cur := ins
	for l, layer := range n.layers {
		in := reshaped(cur, layer.InDims())
		out := n.acts[l][:len(ins)]
		n.timed(l, false, func() { layer.Forward(out, in) })
		cur = out
	}
	return cur
}

// Backward runs back-propagation from the logits gradients, given the
// original batch inputs, accumulating parameter gradients in each layer.
func (n *Network) Backward(dlogits, ins []*tensor.Tensor) {
	if n.inference {
		panic("nn: Backward on an inference-only network")
	}
	batch := len(dlogits)
	cur := dlogits
	for l := len(n.layers) - 1; l >= 0; l-- {
		layer := n.layers[l]
		var layerIns []*tensor.Tensor
		if l == 0 {
			layerIns = ins
		} else {
			layerIns = n.acts[l-1][:batch]
		}
		layerIns = reshaped(layerIns, layer.InDims())
		eos := reshaped(cur, layer.OutDims())
		eis := n.grads[l][:batch]
		n.timed(l, true, func() { layer.Backward(eis, eos, layerIns) })
		cur = eis
	}
}

// ApplyGrads performs the SGD step on every layer.
func (n *Network) ApplyGrads(lr float32, batch int) {
	for _, layer := range n.layers {
		layer.ApplyGrads(lr, batch)
	}
}

// EpochEnd notifies every layer (spg-CNN BP re-check hook).
func (n *Network) EpochEnd() {
	for _, layer := range n.layers {
		layer.EpochEnd()
	}
}

// TuningChoices harvests the spg-CNN scheduler's current per-layer
// deployments from every auto-tuned conv layer — the network's "best
// configuration" (§1.3), serializable via core.Choices.Save. Layers that
// have not tuned yet (or run fixed strategies) are omitted.
func (n *Network) TuningChoices() core.Choices {
	out := core.Choices{}
	for _, c := range n.ConvLayers() {
		fp, bp, ok := c.Selections()
		if !ok || fp.Chosen == nil || bp.Chosen == nil {
			continue
		}
		out[c.Name()] = core.LayerChoice{
			FP: fp.Chosen.Strategy().Name,
			BP: bp.Chosen.Strategy().Name,
		}
	}
	return out
}

// ConvLayers returns the convolution layers, in order — the Fig. 3b/Fig. 8
// instrumentation points.
func (n *Network) ConvLayers() []*Conv {
	var out []*Conv
	for _, l := range n.layers {
		if c, ok := l.(*Conv); ok {
			out = append(out, c)
		}
	}
	return out
}
