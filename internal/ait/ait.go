// Package ait implements the paper's §3 performance characterization: the
// arithmetic-intensity (AIT) model of a convolution, the AIT degradation
// caused by unfolding, the AIT-per-core degradation caused by partitioning
// a GEMM across cores, and the six-region design space of Fig. 1.
//
// AIT is the ratio of arithmetic operations to memory operations,
// |A| / (|I|+|W|+|O|), with the sizes given by the paper's Eqs. 5–8. With
// |A| counted over the output's spatial extent, the model reproduces the
// paper's Table 1 "Intrinsic AIT" column exactly (362, 2015, 1510, 3561,
// 6567, 1921 for the six benchmark convolutions).
package ait

import (
	"fmt"

	"spgcnn/internal/conv"
)

// Intrinsic returns the convolution's intrinsic arithmetic intensity
// |A| / (|I| + |W| + |O|)  (§3.1).
func Intrinsic(s conv.Spec) float64 {
	mem := s.InputSize() + s.WeightSize() + s.OutputSize()
	return float64(s.FlopsFP()) / float64(mem)
}

// Unfold returns the maximum AIT achievable by Unfold+GEMM,
// |A| / (2|U| + |W| + |O|): the unfolded input is written once and read
// once, hence the factor 2 (§3.1).
func Unfold(s conv.Spec) float64 {
	mem := 2*s.UnfoldedSize() + s.WeightSize() + s.OutputSize()
	return float64(s.FlopsFP()) / float64(mem)
}

// Ratio returns r = (|I|+|W|+|O|) / (2|U|+|W|+|O|), the maximum fraction of
// the intrinsic AIT that Unfold+GEMM can achieve (§3.1). r → 1 as the
// kernel approaches the input size or as the output feature count grows;
// r ≪ 1 for small kernels on large inputs.
func Ratio(s conv.Spec) float64 {
	num := s.InputSize() + s.WeightSize() + s.OutputSize()
	den := 2*s.UnfoldedSize() + s.WeightSize() + s.OutputSize()
	return float64(num) / float64(den)
}

// MM describes the matrix multiply C[M×N] = A[M×K] · B[K×N].
type MM struct{ M, K, N int }

// Flops returns 2·M·N·K.
func (m MM) Flops() int64 { return 2 * int64(m.M) * int64(m.N) * int64(m.K) }

// AIT returns the whole-multiply arithmetic intensity
// 2MNK / (MK + KN + MN). For square n×n matrices this is the paper's 2n/3.
func (m MM) AIT() float64 {
	mem := int64(m.M)*int64(m.K) + int64(m.K)*int64(m.N) + int64(m.M)*int64(m.N)
	return float64(m.Flops()) / float64(mem)
}

// AITPerCore returns the per-core AIT when the multiply is statically
// partitioned across p cores the way Parallel-GEMM partitions it (§3.2):
// each core computes a horizontal or vertical slice of C, whichever is
// better. Row partition: core reads M/p rows of A, ALL of B, M/p rows of
// C. Column partition: all of A, K·N/p of B, M·N/p of C.
//
// For the square case at p = 2 this yields the paper's n/2 (down from the
// serial 2n/3). p ≤ 1 returns the whole-multiply AIT.
func (m MM) AITPerCore(p int) float64 {
	if p <= 1 {
		return m.AIT()
	}
	fp := float64(p)
	fM, fK, fN := float64(m.M), float64(m.K), float64(m.N)
	flops := 2 * fM * fN * fK / fp
	rowMem := fM*fK/fp + fK*fN + fM*fN/fp
	colMem := fM*fK + fK*fN/fp + fM*fN/fp
	mem := rowMem
	if colMem < mem {
		mem = colMem
	}
	return flops / mem
}

// AITPerCoreRow returns the per-core AIT under the row partition only —
// the paper's own §3.2 model, where each core computes M/p rows of C and
// must read ALL of B (this is how BLAS Parallel-GEMM partitions the conv
// GEMMs, whose B operand is the huge unfolded matrix). For the square case
// it generalizes the paper's worked example to 2n/(2+p).
func (m MM) AITPerCoreRow(p int) float64 {
	if p <= 1 {
		return m.AIT()
	}
	fp := float64(p)
	fM, fK, fN := float64(m.M), float64(m.K), float64(m.N)
	flops := 2 * fM * fN * fK / fp
	mem := fM*fK/fp + fK*fN + fM*fN/fp
	return flops / mem
}

// Phase identifies one of the three GEMMs of a training step on one layer.
type Phase int

const (
	// FP is forward propagation: O = W · Uᵀ.
	FP Phase = iota
	// BPInput is the input-error gradient: U_E = Wᵀ · E_O, then fold.
	BPInput
	// BPWeights is the delta-weight computation: dW = E_O · U.
	BPWeights
)

// String names the phase.
func (p Phase) String() string {
	switch p {
	case FP:
		return "FP"
	case BPInput:
		return "BP-EI"
	case BPWeights:
		return "BP-dW"
	default:
		return fmt.Sprintf("Phase(%d)", int(p))
	}
}

// MMOf returns the matrix-multiply dimensions that Unfold+GEMM casts phase
// p of spec s into (§2.3, Fig. 2c):
//
//	FP:        O[Nf × pix]        = W[Nf × NcFyFx] · Uᵀ[NcFyFx × pix]
//	BPInput:   U_E[NcFyFx × pix]  = Wᵀ[NcFyFx × Nf] · E_O[Nf × pix]
//	BPWeights: dW[Nf × NcFyFx]    = E_O[Nf × pix] · U[pix × NcFyFx]
//
// Grouped convolutions shrink the tap dimension to (Nc/G)·Fy·Fx — each
// output feature only reads its group's channel slab — so MM.Flops()
// matches Spec.FlopsFP() for every spec. Padding and dilation enter
// through OutX/OutY; the multiply shape is otherwise unchanged.
func MMOf(s conv.Spec, p Phase) MM {
	pix := s.OutX() * s.OutY()
	taps := s.GroupNc() * s.Fy * s.Fx
	switch p {
	case FP:
		return MM{M: s.Nf, K: taps, N: pix}
	case BPInput:
		return MM{M: taps, K: s.Nf, N: pix}
	case BPWeights:
		return MM{M: s.Nf, K: pix, N: taps}
	default:
		panic(fmt.Sprintf("ait: unknown phase %d", int(p)))
	}
}

// Goodput bounds (§3.3, Eqs. 9–10).

// GoodputUpperBound returns the paper's Eq. 10 bound on the goodput of a
// dense kernel running at the given throughput when the data has the given
// sparsity: (1 − sparsity) × throughput.
func GoodputUpperBound(throughput, sparsity float64) float64 {
	if sparsity < 0 {
		sparsity = 0
	}
	if sparsity > 1 {
		sparsity = 1
	}
	return (1 - sparsity) * throughput
}

// Goodput returns nonZeroFlops / seconds in flops/sec (Eq. 9).
func Goodput(nonZeroFlops int64, seconds float64) float64 {
	if seconds <= 0 {
		return 0
	}
	return float64(nonZeroFlops) / seconds
}
