package gemm

import (
	"testing"
	"testing/quick"

	"spgcnn/internal/rng"
)

func TestPackedMatchesNaive(t *testing.T) {
	r := rng.New(21)
	shapes := []struct{ m, k, n int }{
		{1, 1, 1}, {4, 4, 4}, {5, 3, 7}, {13, 300, 9}, {64, 64, 64},
		{65, 385, 513}, {3, 9, 515}, {70, 10, 4}, {67, 401, 31},
	}
	for _, s := range shapes {
		a := randMatrix(r, s.m, s.k)
		b := randMatrix(r, s.k, s.n)
		want := NewMatrix(s.m, s.n)
		got := NewMatrix(s.m, s.n)
		Naive(want, a, b)
		PackedSerial(got, a, b)
		if !matricesClose(got, want, 1e-3) {
			t.Fatalf("PackedSerial differs from Naive for %dx%dx%d", s.m, s.k, s.n)
		}
	}
}

func TestPackedAccumWithReuse(t *testing.T) {
	r := rng.New(22)
	var buf packBuf
	a := randMatrix(r, 20, 33)
	b := randMatrix(r, 33, 17)
	c := NewMatrix(20, 17)
	PackedAccumWith(&buf, c, a, b)
	PackedAccumWith(&buf, c, a, b) // accumulate again with reused buffers
	want := NewMatrix(20, 17)
	Naive(want, a, b)
	want.Data = append([]float32(nil), want.Data...)
	for i := range want.Data {
		want.Data[i] *= 2
	}
	if !matricesClose(c, FromSlice(want.Data, 20, 17), 1e-3) {
		t.Fatal("PackedAccumWith did not accumulate correctly across reuses")
	}
}

func TestPackedPropertyQuick(t *testing.T) {
	r := rng.New(23)
	if err := quick.Check(func(m8, k8, n8 uint8) bool {
		m, k, n := int(m8%40)+1, int(k8%40)+1, int(n8%40)+1
		a := randMatrix(r, m, k)
		b := randMatrix(r, k, n)
		want := NewMatrix(m, n)
		got := NewMatrix(m, n)
		Serial(want, a, b)
		PackedSerial(got, a, b)
		return matricesClose(got, want, 1e-3)
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestParallelPackedPathMatchesNaive(t *testing.T) {
	// Shapes above packedThreshold route Parallel through the per-worker
	// packed kernel; verify against Naive, including row counts that do
	// not divide evenly across workers.
	r := rng.New(24)
	for _, workers := range []int{1, 2, 3, 7} {
		a := randMatrix(r, 37, 400)
		b := randMatrix(r, 400, 401) // K*N = 160400 >= packedThreshold
		want := NewMatrix(37, 401)
		got := NewMatrix(37, 401)
		Naive(want, a, b)
		Parallel(got, a, b, workers)
		if !matricesClose(got, want, 1e-3) {
			t.Fatalf("parallel packed path differs for workers=%d", workers)
		}
	}
}

func BenchmarkPackedSerial256(b *testing.B) { benchGEMM(b, 256, PackedSerial) }
func BenchmarkPackedSerial512(b *testing.B) { benchGEMM(b, 512, PackedSerial) }
func BenchmarkSerial512(b *testing.B)       { benchGEMM(b, 512, Serial) }
