package tensor

import "fmt"

// Allocation-free variants of the layout transforms, used by kernels that
// run the transform on every invocation (the Sparse-Kernel transforms EO,
// W, EI and I per §4.2) and keep preallocated scratch.

// CHWToHWCInto writes the [H][W][C] layout of src ([C][H][W]) into dst.
func CHWToHWCInto(dst, src *Tensor) {
	if src.Rank() != 3 || dst.Rank() != 3 {
		panic("tensor: CHWToHWCInto needs rank-3 tensors")
	}
	c, h, w := src.Dims[0], src.Dims[1], src.Dims[2]
	if dst.Dims[0] != h || dst.Dims[1] != w || dst.Dims[2] != c {
		panic(fmt.Sprintf("tensor: CHWToHWCInto dst %v incompatible with src %v", dst.Dims, src.Dims))
	}
	for ci := 0; ci < c; ci++ {
		for yi := 0; yi < h; yi++ {
			row := src.Row3(ci, yi)
			base := yi * w * c
			for xi := 0; xi < w; xi++ {
				dst.Data[base+xi*c+ci] = row[xi]
			}
		}
	}
}

// HWCToCHWInto writes the [C][H][W] layout of src ([H][W][C]) into dst.
func HWCToCHWInto(dst, src *Tensor) {
	if src.Rank() != 3 || dst.Rank() != 3 {
		panic("tensor: HWCToCHWInto needs rank-3 tensors")
	}
	h, w, c := src.Dims[0], src.Dims[1], src.Dims[2]
	if dst.Dims[0] != c || dst.Dims[1] != h || dst.Dims[2] != w {
		panic(fmt.Sprintf("tensor: HWCToCHWInto dst %v incompatible with src %v", dst.Dims, src.Dims))
	}
	for yi := 0; yi < h; yi++ {
		for xi := 0; xi < w; xi++ {
			src0 := src.Row3(yi, xi)
			for ci := 0; ci < c; ci++ {
				dst.Data[(ci*h+yi)*w+xi] = src0[ci]
			}
		}
	}
}

// FCKKToKKFCInto writes the [Ky][Kx][F][C] layout of src ([F][C][Ky][Kx])
// into dst.
func FCKKToKKFCInto(dst, src *Tensor) {
	if src.Rank() != 4 || dst.Rank() != 4 {
		panic("tensor: FCKKToKKFCInto needs rank-4 tensors")
	}
	f, c, ky, kx := src.Dims[0], src.Dims[1], src.Dims[2], src.Dims[3]
	if dst.Dims[0] != ky || dst.Dims[1] != kx || dst.Dims[2] != f || dst.Dims[3] != c {
		panic(fmt.Sprintf("tensor: FCKKToKKFCInto dst %v incompatible with src %v", dst.Dims, src.Dims))
	}
	for fi := 0; fi < f; fi++ {
		for ci := 0; ci < c; ci++ {
			srcBase := (fi*c + ci) * ky * kx
			for yi := 0; yi < ky; yi++ {
				for xi := 0; xi < kx; xi++ {
					dst.Data[((yi*kx+xi)*f+fi)*c+ci] = src.Data[srcBase+yi*kx+xi]
				}
			}
		}
	}
}

// KKFCToFCKKInto writes the [F][C][Ky][Kx] layout of src ([Ky][Kx][F][C])
// into dst.
func KKFCToFCKKInto(dst, src *Tensor) {
	if src.Rank() != 4 || dst.Rank() != 4 {
		panic("tensor: KKFCToFCKKInto needs rank-4 tensors")
	}
	ky, kx, f, c := src.Dims[0], src.Dims[1], src.Dims[2], src.Dims[3]
	if dst.Dims[0] != f || dst.Dims[1] != c || dst.Dims[2] != ky || dst.Dims[3] != kx {
		panic(fmt.Sprintf("tensor: KKFCToFCKKInto dst %v incompatible with src %v", dst.Dims, src.Dims))
	}
	for yi := 0; yi < ky; yi++ {
		for xi := 0; xi < kx; xi++ {
			srcBase := (yi*kx + xi) * f * c
			for fi := 0; fi < f; fi++ {
				for ci := 0; ci < c; ci++ {
					dst.Data[((fi*c+ci)*ky+yi)*kx+xi] = src.Data[srcBase+fi*c+ci]
				}
			}
		}
	}
}
