package trace

import (
	"sort"
	"strings"
)

// seconds converts an event duration to seconds.
func seconds(ns int64) float64 { return float64(ns) / 1e9 }

// SpanAgg aggregates every complete event sharing one name.
type SpanAgg struct {
	Name  string
	Calls int
	Total float64 // seconds
	Max   float64 // seconds
}

// Mean returns the mean span duration in seconds.
func (a SpanAgg) Mean() float64 {
	if a.Calls == 0 {
		return 0
	}
	return a.Total / float64(a.Calls)
}

// TopSpans aggregates complete events by name and returns the n entries
// with the largest total time (all of them when n <= 0), ordered by total
// descending, name ascending on ties.
func TopSpans(events []Event, n int) []SpanAgg {
	byName := map[string]*SpanAgg{}
	for _, ev := range events {
		if ev.Phase != 'X' {
			continue
		}
		a := byName[ev.Name]
		if a == nil {
			a = &SpanAgg{Name: ev.Name}
			byName[ev.Name] = a
		}
		d := seconds(ev.Dur)
		a.Calls++
		a.Total += d
		if d > a.Max {
			a.Max = d
		}
	}
	out := make([]SpanAgg, 0, len(byName))
	for _, a := range byName {
		out = append(out, *a)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Total != out[j].Total {
			return out[i].Total > out[j].Total
		}
		return out[i].Name < out[j].Name
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// StragglerStat is one replica's barrier behavior over the capture.
type StragglerStat struct {
	Replica int
	// Steps is the number of per-replica step spans observed.
	Steps int
	// Total/Min/Max summarize the replica's step durations (seconds).
	Total, Min, Max float64
	// BarrierWait is the cumulative time this replica spent finished at
	// the step barrier waiting for the slowest replica (seconds).
	BarrierWait float64
	// SlowestCount is how many steps this replica WAS the slowest — the
	// one every other replica waited on.
	SlowestCount int
}

// Mean returns the replica's mean step duration.
func (s StragglerStat) Mean() float64 {
	if s.Steps == 0 {
		return 0
	}
	return s.Total / float64(s.Steps)
}

// StragglerReport is the per-replica time-at-barrier attribution of a
// data-parallel capture.
type StragglerReport struct {
	Rows []StragglerStat
	// Steps is the number of synchronized step groups analyzed.
	Steps int
	// Syncs / AllReduceSeconds count the parameter-averaging rounds and
	// their total cost.
	Syncs            int
	AllReduceSeconds float64
	// Rechunks counts straggler-mitigation share reassignments observed
	// in the capture ("sync"/"rechunk" instants).
	Rechunks int
	// SlowestReplica is the replica most often slowest (-1 when the
	// capture has no step groups).
	SlowestReplica int
}

// Stragglers derives barrier attribution from per-replica "step" spans
// (cat "step", grouped by Step stamp) and "allreduce" sync spans: within
// each step group the slowest replica defines the barrier release, every
// other replica's wait is the gap to it, and the slowest replica is
// charged with the stall.
func Stragglers(c Capture) StragglerReport {
	type group struct {
		durs map[int]float64 // replica → step seconds
	}
	groups := map[int64]*group{}
	byReplica := map[int]*StragglerStat{}
	rep := StragglerReport{SlowestReplica: -1}

	for _, ev := range c.Events {
		switch {
		case ev.Cat == "step" && ev.Phase == 'X':
			g := groups[ev.Step]
			if g == nil {
				g = &group{durs: map[int]float64{}}
				groups[ev.Step] = g
			}
			r := int(ev.Replica)
			d := seconds(ev.Dur)
			g.durs[r] += d
			st := byReplica[r]
			if st == nil {
				st = &StragglerStat{Replica: r, Min: d}
				byReplica[r] = st
			}
			st.Steps++
			st.Total += d
			if d < st.Min {
				st.Min = d
			}
			if d > st.Max {
				st.Max = d
			}
		case ev.Cat == "sync" && ev.Phase == 'X' && ev.Name == "allreduce":
			rep.Syncs++
			rep.AllReduceSeconds += seconds(ev.Dur)
		case ev.Cat == "sync" && ev.Phase == 'i' && ev.Name == "rechunk":
			rep.Rechunks++
		}
	}

	slowestCounts := map[int]int{}
	for _, g := range groups {
		if len(g.durs) < 2 {
			continue // nothing to wait on
		}
		rep.Steps++
		slowest, max := -1, -1.0
		for r, d := range g.durs {
			if d > max || (d == max && r < slowest) {
				slowest, max = r, d
			}
		}
		slowestCounts[slowest]++
		byReplica[slowest].SlowestCount++
		for r, d := range g.durs {
			if r != slowest {
				byReplica[r].BarrierWait += max - d
			}
		}
	}

	for _, st := range byReplica {
		rep.Rows = append(rep.Rows, *st)
	}
	sort.Slice(rep.Rows, func(i, j int) bool { return rep.Rows[i].Replica < rep.Rows[j].Replica })
	best := -1
	for r, n := range slowestCounts {
		if n > best || (n == best && r < rep.SlowestReplica) {
			rep.SlowestReplica, best = r, n
		}
	}
	return rep
}

// WasteRow attributes one layer's share of the Eq. 9 dense-vs-useful gap.
type WasteRow struct {
	Layer string
	// FPStrategy / BPStrategy are the deployed strategies observed in the
	// capture's layer spans (the one with the most recorded time wins;
	// empty when the capture holds no span for the phase).
	FPStrategy, BPStrategy string
	// FPSeconds / BPSeconds are the layer's recorded phase times.
	FPSeconds, BPSeconds float64
	// DenseFlops is the layer's dense work over the capture (FP + BP).
	DenseFlops float64
	// UsefulFlops discounts BP by the observed gradient sparsity (Eq. 9).
	UsefulFlops float64
	// WastedFlops is the dense-vs-useful gap: BP flops that multiply
	// zeros when a dense engine executes them.
	WastedFlops float64
	// BurnedFlops is the wasted work actually executed: equal to
	// WastedFlops under a dense BP strategy, 0 under the sparse kernel
	// (which skips the zeros — the gap is recovered, not burned).
	BurnedFlops float64
}

// WasteReport is the per-layer goodput-waste attribution of a capture.
type WasteReport struct {
	Rows []WasteRow
	// Epochs is the number of epoch accounting events consumed.
	Epochs int
	// Totals over all rows.
	DenseFlops, UsefulFlops, WastedFlops, BurnedFlops float64
}

// GoodputWaste splits the Eq. 9 dense-vs-useful gap per layer: for every
// epoch event (images processed) and every layer's sparsity sample in
// that epoch, the layer's dense BP flops are split into useful and wasted
// work, and the wasted work is charged as burned when the capture shows a
// dense BP strategy deployed for that layer. Requires the capture's layer
// flop metadata; layers without sparsity samples count as fully useful.
func GoodputWaste(c Capture) WasteReport {
	// images per epoch key (the Step stamp of the epoch event).
	epochImages := map[int64]float64{}
	// layer → epoch key → sparsity.
	sparsity := map[string]map[int64]float64{}
	// layer → phase → strategy → seconds.
	phaseSecs := map[string]map[string]map[string]float64{}

	for _, ev := range c.Events {
		switch {
		case ev.Cat == "epoch" && ev.Phase == 'i':
			epochImages[ev.Step] += ev.Value
		case ev.Cat == "sparsity" && ev.Phase == 'i' && ev.Detail != "":
			m := sparsity[ev.Detail]
			if m == nil {
				m = map[int64]float64{}
				sparsity[ev.Detail] = m
			}
			m[ev.Step] = ev.Value
		case ev.Cat == "layer" && ev.Phase == 'X':
			// "layer/<name>/<phase>/<strategy>"
			parts := strings.Split(ev.Name, "/")
			if len(parts) != 4 {
				continue
			}
			layer, phase, strat := parts[1], parts[2], parts[3]
			pm := phaseSecs[layer]
			if pm == nil {
				pm = map[string]map[string]float64{}
				phaseSecs[layer] = pm
			}
			sm := pm[phase]
			if sm == nil {
				sm = map[string]float64{}
				pm[phase] = sm
			}
			sm[strat] += seconds(ev.Dur)
		}
	}

	rep := WasteReport{Epochs: len(epochImages)}
	for _, l := range c.Layers {
		row := WasteRow{Layer: l.Name}
		row.FPStrategy, row.FPSeconds = dominantStrategy(phaseSecs[l.Name]["fp"])
		row.BPStrategy, row.BPSeconds = dominantStrategy(phaseSecs[l.Name]["bp"])
		for ep, images := range epochImages {
			fp := images * float64(l.FPFlops)
			bp := images * float64(l.BPFlops)
			s := sparsity[l.Name][ep]
			row.DenseFlops += fp + bp
			row.UsefulFlops += fp + bp*(1-s)
			row.WastedFlops += bp * s
		}
		if !strings.HasPrefix(row.BPStrategy, "sparse") {
			row.BurnedFlops = row.WastedFlops
		}
		rep.Rows = append(rep.Rows, row)
		rep.DenseFlops += row.DenseFlops
		rep.UsefulFlops += row.UsefulFlops
		rep.WastedFlops += row.WastedFlops
		rep.BurnedFlops += row.BurnedFlops
	}
	sort.Slice(rep.Rows, func(i, j int) bool {
		a, b := rep.Rows[i], rep.Rows[j]
		if a.BurnedFlops != b.BurnedFlops {
			return a.BurnedFlops > b.BurnedFlops
		}
		if a.WastedFlops != b.WastedFlops {
			return a.WastedFlops > b.WastedFlops
		}
		return a.Layer < b.Layer
	})
	return rep
}

// dominantStrategy picks the strategy with the most recorded time (name
// order breaks ties) and returns it with the phase's total seconds.
func dominantStrategy(byStrat map[string]float64) (string, float64) {
	best, total := "", 0.0
	bestSecs := -1.0
	names := make([]string, 0, len(byStrat))
	for n := range byStrat {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		total += byStrat[n]
		if byStrat[n] > bestSecs {
			best, bestSecs = n, byStrat[n]
		}
	}
	return best, total
}
