package data

import (
	"testing"

	"spgcnn/internal/tensor"
)

func TestDeterminism(t *testing.T) {
	d := MNIST(100)
	a := tensor.New(d.Dims()...)
	b := tensor.New(d.Dims()...)
	d.Image(42, a)
	d.Image(42, b)
	if tensor.MaxAbsDiff(a, b) != 0 {
		t.Fatal("same index produced different images")
	}
	d.Image(43, b)
	if tensor.MaxAbsDiff(a, b) == 0 {
		t.Fatal("different indices produced identical images")
	}
}

func TestLabelsBalanced(t *testing.T) {
	d := CIFAR(100)
	counts := make([]int, d.Classes())
	for i := 0; i < d.Len(); i++ {
		counts[d.Label(i)]++
	}
	for k, c := range counts {
		if c != 10 {
			t.Fatalf("class %d has %d examples, want 10", k, c)
		}
	}
}

func TestDims(t *testing.T) {
	cases := []struct {
		d    *Synthetic
		dims []int
		k    int
	}{
		{MNIST(10), []int{1, 28, 28}, 10},
		{CIFAR(10), []int{3, 36, 36}, 10},
		{ImageNet100(200), []int{3, 32, 32}, 100},
	}
	for _, tc := range cases {
		got := tc.d.Dims()
		for i := range tc.dims {
			if got[i] != tc.dims[i] {
				t.Fatalf("%s dims = %v, want %v", tc.d.Name(), got, tc.dims)
			}
		}
		if tc.d.Classes() != tc.k {
			t.Fatalf("%s classes = %d, want %d", tc.d.Name(), tc.d.Classes(), tc.k)
		}
	}
}

// TestClassSeparability verifies the datasets are learnable: a trivial
// nearest-class-centroid classifier (fit on half the data) must beat
// chance by a wide margin. If this fails, training experiments (Fig. 3b,
// Fig. 9) would be exercising noise.
func TestClassSeparability(t *testing.T) {
	d := MNIST(400)
	dims := d.Dims()
	n := prod(dims)
	centroids := make([][]float64, d.Classes())
	counts := make([]int, d.Classes())
	img := tensor.New(dims...)
	for k := range centroids {
		centroids[k] = make([]float64, n)
	}
	// Fit on the first half (labels cycle, so both halves are balanced).
	half := d.Len() / 2
	for i := 0; i < half; i++ {
		d.Image(i, img)
		k := d.Label(i)
		counts[k]++
		for j, v := range img.Data {
			centroids[k][j] += float64(v)
		}
	}
	for k := range centroids {
		for j := range centroids[k] {
			centroids[k][j] /= float64(counts[k])
		}
	}
	// Test on the second half.
	correct, total := 0, 0
	for i := half; i < d.Len(); i++ {
		d.Image(i, img)
		best, bestDist := -1, 0.0
		for k := range centroids {
			dist := 0.0
			for j, v := range img.Data {
				diff := float64(v) - centroids[k][j]
				dist += diff * diff
			}
			if best == -1 || dist < bestDist {
				best, bestDist = k, dist
			}
		}
		if best == d.Label(i) {
			correct++
		}
		total++
	}
	acc := float64(correct) / float64(total)
	if acc < 0.5 {
		t.Fatalf("nearest-centroid accuracy = %.2f, want >= 0.5 (chance is 0.1)", acc)
	}
}

func prod(dims []int) int {
	p := 1
	for _, d := range dims {
		p *= d
	}
	return p
}

func TestBadConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid config did not panic")
		}
	}()
	New(Config{Examples: 0, Classes: 1, Channels: 1, Height: 1, Width: 1})
}

func TestImageShapeCheck(t *testing.T) {
	d := MNIST(10)
	defer func() {
		if recover() == nil {
			t.Fatal("wrong dst shape did not panic")
		}
	}()
	d.Image(0, tensor.New(3, 3, 3))
}
