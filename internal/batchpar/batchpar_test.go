package batchpar

import (
	"testing"

	"spgcnn/internal/conv"
	"spgcnn/internal/engine"
	"spgcnn/internal/engine/enginetest"
	"spgcnn/internal/exec"
	"spgcnn/internal/rng"
	"spgcnn/internal/spkernel"
	"spgcnn/internal/stencil"
	"spgcnn/internal/tensor"
	"spgcnn/internal/unfoldgemm"
)

func TestDifferentialVsUnfoldGEMM(t *testing.T) {
	gen := engine.Generator{
		Name: "batchpar(unfold-gemm)",
		New:  func(s conv.Spec) engine.Kernel { return New(unfoldgemm.Generator(1), s) },
	}
	enginetest.RunDifferential(t, gen, unfoldgemm.Generator(1), enginetest.DiffOptions{Seed: 0xD1F3, Batch: 4})
}

func makeBatch(r *rng.RNG, s conv.Spec, n int, sparsity float64) (ins, outs, eos, eis []*tensor.Tensor) {
	for i := 0; i < n; i++ {
		ins = append(ins, conv.RandInput(r, s))
		outs = append(outs, conv.NewOutput(s))
		eos = append(eos, conv.RandOutputError(r, s, sparsity))
		eis = append(eis, conv.NewInput(s))
	}
	return
}

func TestBatchForwardMatchesReference(t *testing.T) {
	r := rng.New(1)
	s := conv.Square(10, 4, 3, 3, 1)
	for _, workers := range []int{1, 2, 5, 16} {
		c := exec.New(workers)
		for _, batch := range []int{1, 3, 8, 17} {
			ins, outs, _, _ := makeBatch(r, s, batch, 0)
			w := conv.RandWeights(r, s)
			e := New(unfoldgemm.Generator(1), s)
			e.ForwardBatch(c, outs, ins, w)
			for i := range outs {
				want := conv.NewOutput(s)
				conv.ForwardRef(s, want, ins[i], w)
				if !tensor.AlmostEqual(outs[i], want, 1e-3) {
					t.Fatalf("workers=%d batch=%d: output %d wrong", workers, batch, i)
				}
			}
		}
	}
}

func TestBatchBackwardInput(t *testing.T) {
	r := rng.New(2)
	s := conv.Square(9, 5, 2, 3, 2)
	w := conv.RandWeights(r, s)
	_, _, eos, eis := makeBatch(r, s, 7, 0.7)
	e := New(spkernel.Generator(), s)
	e.BackwardInputBatch(exec.New(3), eis, eos, w)
	for i := range eis {
		want := conv.NewInput(s)
		conv.BackwardInputRef(s, want, eos[i], w)
		if !tensor.AlmostEqual(eis[i], want, 1e-3) {
			t.Fatalf("EI %d wrong", i)
		}
	}
}

func TestBatchBackwardWeightsSumsOverBatch(t *testing.T) {
	r := rng.New(3)
	s := conv.Square(8, 3, 2, 3, 1)
	for _, workers := range []int{1, 2, 4, 9} {
		ins, _, eos, _ := makeBatch(r, s, 6, 0.5)
		e := New(stencil.Generator(), s)
		dw := conv.NewWeights(s)
		dw.FillUniform(r, 5, 6) // must be overwritten
		e.BackwardWeightsBatch(exec.New(workers), dw, eos, ins)
		want := conv.NewWeights(s)
		tmp := conv.NewWeights(s)
		for i := range ins {
			conv.BackwardWeightsRef(s, tmp, eos[i], ins[i])
			want.AddScaled(tmp, 1)
		}
		if !tensor.AlmostEqual(dw, want, 1e-3) {
			t.Fatalf("workers=%d: batch dW differs from per-image sum (max diff %g)",
				workers, tensor.MaxAbsDiff(dw, want))
		}
	}
}

func TestEmptyBatch(t *testing.T) {
	s := conv.Square(6, 2, 1, 2, 1)
	e := New(unfoldgemm.Generator(1), s)
	c := exec.New(4)
	e.ForwardBatch(c, nil, nil, conv.NewWeights(s))
	dw := conv.NewWeights(s)
	dw.Data[0] = 7
	e.BackwardWeightsBatch(c, dw, nil, nil)
	if dw.Data[0] != 0 {
		t.Fatal("BackwardWeightsBatch on empty batch should produce zero gradient")
	}
}

func TestMoreWorkersThanInputs(t *testing.T) {
	r := rng.New(4)
	s := conv.Square(6, 2, 1, 2, 1)
	e := New(unfoldgemm.Generator(1), s)
	ins, outs, _, _ := makeBatch(r, s, 2, 0)
	w := conv.RandWeights(r, s)
	e.ForwardBatch(exec.New(8), outs, ins, w)
	want := conv.NewOutput(s)
	conv.ForwardRef(s, want, ins[1], w)
	if !tensor.AlmostEqual(outs[1], want, 1e-3) {
		t.Fatal("output wrong with workers > batch")
	}
}

func TestMismatchedBatchPanics(t *testing.T) {
	s := conv.Square(6, 2, 1, 2, 1)
	e := New(unfoldgemm.Generator(1), s)
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched batch lengths did not panic")
		}
	}()
	e.ForwardBatch(exec.New(2), make([]*tensor.Tensor, 1), make([]*tensor.Tensor, 2), conv.NewWeights(s))
}

func TestNameAndAccessors(t *testing.T) {
	s := conv.Square(6, 2, 1, 2, 1)
	e := New(stencil.Generator(), s)
	if e.Spec() != s {
		t.Fatal("spec accessor")
	}
	if e.Name() == "" {
		t.Fatal("empty name")
	}
	if e.Inner() == nil || e.Inner().Spec() != s {
		t.Fatal("inner kernel accessor")
	}
}

func TestSingleSampleCompat(t *testing.T) {
	r := rng.New(5)
	s := conv.Square(8, 3, 2, 3, 1)
	e := New(unfoldgemm.Generator(1), s)
	in := conv.RandInput(r, s)
	w := conv.RandWeights(r, s)
	out := conv.NewOutput(s)
	e.Forward(out, in, w)
	want := conv.NewOutput(s)
	conv.ForwardRef(s, want, in, w)
	if !tensor.AlmostEqual(out, want, 1e-3) {
		t.Fatal("single-sample Forward via compat adapter wrong")
	}
}

func BenchmarkGEMMInParallelFP(b *testing.B) {
	r := rng.New(1)
	s := conv.Square(16, 32, 16, 3, 1)
	e := New(unfoldgemm.Generator(1), s)
	c := exec.New(4)
	ins, outs, _, _ := makeBatch(r, s, 16, 0)
	w := conv.RandWeights(r, s)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.ForwardBatch(c, outs, ins, w)
	}
}
