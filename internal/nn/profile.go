package nn

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Per-layer profiling: when enabled, Forward and Backward record wall time
// per layer, giving the per-layer breakdown behind Fig. 8/Fig. 9 — where a
// training step's time actually goes, and therefore which layers the
// spg-CNN techniques can help.

// LayerProfile is one layer's accumulated timings.
type LayerProfile struct {
	Name            string
	ForwardSeconds  float64
	BackwardSeconds float64
	Calls           int
}

// Total returns forward + backward time.
func (p LayerProfile) Total() float64 { return p.ForwardSeconds + p.BackwardSeconds }

// EnableProfiling turns on per-layer timing (off by default; the timer
// calls cost ~100 ns per layer per batch).
func (n *Network) EnableProfiling() {
	if n.profile == nil {
		n.profile = make([]LayerProfile, len(n.layers))
		for i, l := range n.layers {
			n.profile[i].Name = l.Name()
		}
	}
	n.profiling = true
}

// DisableProfiling stops recording (accumulated data is kept).
func (n *Network) DisableProfiling() { n.profiling = false }

// ResetProfile clears accumulated timings.
func (n *Network) ResetProfile() {
	for i := range n.profile {
		n.profile[i].ForwardSeconds = 0
		n.profile[i].BackwardSeconds = 0
		n.profile[i].Calls = 0
	}
}

// Profile returns a copy of the per-layer timings, in layer order.
func (n *Network) Profile() []LayerProfile {
	return append([]LayerProfile(nil), n.profile...)
}

// ProfileReport renders the profile as an aligned table, layers sorted by
// total time descending, with a share column.
func (n *Network) ProfileReport() string {
	profs := n.Profile()
	if len(profs) == 0 {
		return "profiling not enabled\n"
	}
	total := 0.0
	for _, p := range profs {
		total += p.Total()
	}
	sorted := append([]LayerProfile(nil), profs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Total() > sorted[j].Total() })
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %10s %10s %10s %7s\n", "layer", "fwd ms", "bwd ms", "total ms", "share")
	for _, p := range sorted {
		share := 0.0
		if total > 0 {
			share = p.Total() / total * 100
		}
		fmt.Fprintf(&b, "%-12s %10.2f %10.2f %10.2f %6.1f%%\n",
			p.Name, p.ForwardSeconds*1e3, p.BackwardSeconds*1e3, p.Total()*1e3, share)
	}
	fmt.Fprintf(&b, "%-12s %10s %10s %10.2f %6.1f%%\n", "TOTAL", "", "", total*1e3, 100.0)
	return b.String()
}

// timed wraps a layer call with the profiling clock.
func (n *Network) timed(layer int, backward bool, fn func()) {
	if !n.profiling {
		fn()
		return
	}
	start := time.Now()
	fn()
	el := time.Since(start).Seconds()
	p := &n.profile[layer]
	if backward {
		p.BackwardSeconds += el
	} else {
		p.ForwardSeconds += el
		p.Calls++
	}
}
