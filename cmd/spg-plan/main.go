// spg-plan characterizes a convolution: its arithmetic intensity, the AIT
// lost to unfolding, its Fig. 1 region, the stencil generator's register
// tile, the planner's analytical strategy ranking, and — with -tune — what
// the spg-CNN planner measures, picks and caches for it on this host. The
// paper's §3 analysis plus the §4.4 scheduler as a command.
//
// Usage:
//
//	spg-plan -n 36 -nf 64 -nc 3 -f 5 -s 1
//	spg-plan -n 64 -nf 16 -nc 16 -f 11 -s 1 -sparsity 0.9 -tune
//	spg-plan -n 36 -nf 64 -nc 3 -f 5 -tune -plan-cache plans.json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"

	"spgcnn"
	"spgcnn/internal/ait"
	"spgcnn/internal/conv"
	"spgcnn/internal/core"
	"spgcnn/internal/explore"
	"spgcnn/internal/machine"
	"spgcnn/internal/netdef"
	"spgcnn/internal/plan"
	"spgcnn/internal/stencil"
	"spgcnn/internal/tensor"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "spg-plan: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("spg-plan", flag.ContinueOnError)
	var (
		n         = fs.Int("n", 36, "input spatial size (Nx = Ny)")
		nf        = fs.Int("nf", 64, "output features")
		nc        = fs.Int("nc", 3, "input channels")
		f         = fs.Int("f", 5, "kernel size (Fx = Fy)")
		s         = fs.Int("s", 1, "stride")
		sparsity  = fs.Float64("sparsity", 0.85, "assumed BP error sparsity")
		wsparsity = fs.Float64("wsparsity", 0, "assumed FP weight sparsity (fraction of pruned weights)")
		tune      = fs.Bool("tune", false, "also run the planner's measurement pass on this host")
		workers   = fs.Int("workers", 0, "worker cores for the model ranking and -tune (0 = GOMAXPROCS)")
		reps      = fs.Int("reps", 0, "measurement repetitions per candidate for -tune (0 = default)")
		planCache = fs.String("plan-cache", "", "plan cache file for -tune: deploy cached verdicts instead of re-measuring, save updated cache on exit")
		exploreAt = fs.String("explore", "", "whole-net design-space report: a built-in net name, 'all' for the workload zoo, or a netdef file path (ignores the per-conv flags)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *exploreAt != "" {
		return runExplore(stdout, *exploreAt, explore.Options{
			Workers: *workers, Sparsity: *sparsity, WSparsity: *wsparsity,
		})
	}

	spec := conv.Square(*n, *nf, *nc, *f, *s)
	if err := spec.Validate(); err != nil {
		return err
	}
	w := *workers
	if w < 1 {
		w = runtime.GOMAXPROCS(0)
	}

	a := spgcnn.Analyze(spec)
	fmt.Fprintf(stdout, "convolution %s\n", spec)
	fmt.Fprintf(stdout, "  flops (FP)          %d\n", spec.FlopsFP())
	fmt.Fprintf(stdout, "  intrinsic AIT       %.1f\n", a.IntrinsicAIT)
	fmt.Fprintf(stdout, "  unfold+GEMM AIT     %.1f  (r = %.3f: unfolding keeps %.1f%% of the intensity)\n",
		a.UnfoldAIT, a.Ratio, a.Ratio*100)
	fmt.Fprintf(stdout, "  region (dense)      %v\n", a.DenseRegion)
	fmt.Fprintf(stdout, "  region (%.0f%% sparse) %v\n", *sparsity*100, spgcnn.Classify(spec, *sparsity))
	p := spgcnn.Classify(spec, *sparsity).Props()
	fmt.Fprintf(stdout, "  prescribed          %v\n", p.Recommendations)

	sp := stencil.ChoosePlan(spec)
	fmt.Fprintf(stdout, "stencil plan          %v\n", sp)

	m := machine.Paper()
	fmt.Fprintf(stdout, "modeled on the paper's 16-core Xeon (GFlops/core at p=16):\n")
	fmt.Fprintf(stdout, "  Parallel-GEMM (FP)  %.1f\n", m.ParallelGEMM(spec, ait.FP, 16))
	fmt.Fprintf(stdout, "  GEMM-in-Parallel    %.1f\n", m.GEMMInParallel(spec, ait.FP, 16))
	fmt.Fprintf(stdout, "  Stencil-Kernel      %.1f\n", m.Stencil(spec, 16))
	fmt.Fprintf(stdout, "  Sparse BP goodput   %.1f (at %.0f%% sparsity)\n",
		m.SparseGoodput(spec, *sparsity, 16), *sparsity*100)

	// The planner's model-first pass: every candidate ranked on one
	// dense-equivalent axis, with the prune verdicts the planner would
	// apply before measuring.
	fmt.Fprintf(stdout, "planner model ranking (dense-equivalent GFlops/core at p=%d):\n", w)
	fmt.Fprintf(stdout, "  fp keyed on weight band %d (%.0f%% weight sparsity), bp on gradient band %d (%.0f%% error sparsity)\n",
		plan.Band(*wsparsity), *wsparsity*100, plan.Band(*sparsity), *sparsity*100)
	printModelRank(stdout, "fp", w, modelRanking(m, spec, "fp", *wsparsity, w))
	printModelRank(stdout, "bp", w, modelRanking(m, spec, "bp", *sparsity, w))

	if !*tune {
		return nil
	}

	planner := spgcnn.NewPlanner(spgcnn.PlannerOptions{})
	if *planCache != "" {
		loaded, err := planner.LoadFile(*planCache)
		if err != nil {
			return fmt.Errorf("plan cache: %w", err)
		}
		fmt.Fprintf(stdout, "plan cache: loaded %d entries from %s\n", loaded, *planCache)
	}

	fmt.Fprintf(stdout, "measured on this host (%d workers):\n", w)
	ctx := spgcnn.NewCtx(w)
	r := spgcnn.NewRNG(1)
	var ins, eos []*spgcnn.Tensor
	for i := 0; i < w; i++ {
		ins = append(ins, conv.RandInput(r, spec))
		eos = append(eos, conv.RandOutputError(r, spec, *sparsity))
	}
	wts := conv.RandWeights(r, spec)
	if *wsparsity > 0 {
		wts.Sparsify(r, *wsparsity)
		wts.Bump()
	}
	topts := core.TuneOptions{Reps: *reps}

	fpPlan := planner.PlanFP(spec, ctx, ins, wts, topts)
	printMeasured(stdout, "FP", fpPlan, plan.Band(wts.Sparsity()))
	bpPlan := planner.PlanBP(spec, ctx, eos, ins, wts, topts)
	printMeasured(stdout, "BP", bpPlan, plan.Band(*sparsity))

	pst := planner.Stats()
	fmt.Fprintf(stdout, "planner: %d hits, %d misses, %d measurement passes, %d candidates model-pruned\n",
		pst.Hits, pst.Misses, pst.Measurements, pst.Pruned)
	if *planCache != "" {
		if err := planner.SaveFile(*planCache); err != nil {
			return fmt.Errorf("plan cache: %w", err)
		}
		fmt.Fprintf(stdout, "plan cache: saved %d entries to %s\n", planner.Entries(), *planCache)
	}
	return nil
}

// modelRanking runs the planner's model pass over the built-in candidate
// set for one phase, marking the prune verdicts the planner would apply.
func modelRanking(m machine.Machine, spec conv.Spec, phase string, sparsity float64, w int) []plan.ModelScore {
	var cands []core.Strategy
	if phase == "fp" {
		cands = core.FPStrategies(w)
	} else {
		cands = core.BPStrategies(w)
	}
	names := make([]string, len(cands))
	for i, st := range cands {
		names[i] = st.Name
	}
	scores := plan.ModelRank(m, spec, phase, sparsity, w, names)
	plan.MarkPruned(cands, scores, plan.DefaultPruneRatio, spec, sparsity)
	return scores
}

func printModelRank(stdout io.Writer, phase string, w int, scores []plan.ModelScore) {
	for i, sc := range scores {
		head := "  "
		if i == 0 {
			head = phase
		}
		note := ""
		if !sc.Modeled {
			note = "  (unmodeled)"
		} else if sc.Pruned {
			note = "  (pruned before measurement)"
		}
		fmt.Fprintf(stdout, "  %-3s %d. %-18s %-6s %8.1f%s\n",
			head, i+1, sc.Strategy, strategyLayout(sc.Strategy, w), sc.GFlopsPerCore, note)
	}
}

// strategyLayout reports the compute layout a built-in strategy runs in —
// the column spg-plan prints next to each candidate so a blocked pick is
// visible as a layout change, not just a name.
func strategyLayout(name string, w int) tensor.Layout {
	if st, ok := core.StrategyByName(name, w); ok {
		return st.Layout
	}
	return tensor.NCHW
}

// runExplore renders the per-layer design-space report for one or more
// whole networks: 'all' walks the workload zoo, a known name picks one
// built-in description, anything else is read as a netdef file.
func runExplore(stdout io.Writer, target string, opts explore.Options) error {
	var nets []netdef.ZooNet
	if target == "all" {
		nets = netdef.Zoo()
	} else if src, ok := builtinNet(target); ok {
		nets = []netdef.ZooNet{{Name: target, Src: src}}
	} else {
		b, err := os.ReadFile(target)
		if err != nil {
			return fmt.Errorf("explore: %q is neither a built-in net nor a readable netdef file: %w", target, err)
		}
		nets = []netdef.ZooNet{{Name: target, Src: string(b)}}
	}
	for i, zn := range nets {
		if i > 0 {
			fmt.Fprintln(stdout)
		}
		def, err := netdef.Parse(zn.Src)
		if err != nil {
			return err
		}
		if err := explore.Report(stdout, def, opts); err != nil {
			return err
		}
	}
	return nil
}

// builtinNet resolves a name onto one of the compiled-in descriptions.
func builtinNet(name string) (string, bool) {
	switch name {
	case "mnist":
		return netdef.MNISTNet, true
	case "cifar10":
		return netdef.CIFARNet, true
	case "imagenet100":
		return netdef.ImageNet100Net, true
	}
	for _, z := range netdef.Zoo() {
		if z.Name == name {
			return z.Src, true
		}
	}
	return "", false
}

func printMeasured(stdout io.Writer, phase string, pd core.Planned, band int) {
	for _, tm := range pd.Timings {
		fmt.Fprintf(stdout, "  %s %-18s %8.3f ms\n", phase, tm.Strategy.Name, tm.Seconds*1e3)
	}
	provenance := "measured now"
	if pd.FromCache {
		provenance = "deployed from plan cache, no measurement"
	}
	best := pd.Best().Strategy
	fmt.Fprintf(stdout, "  %s chosen: %s (layout %s, band %d, %s)\n",
		phase, best.Name, best.Layout, band, provenance)
}
