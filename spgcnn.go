// Package spgcnn is a pure-Go implementation of spg-CNN, the CNN training
// optimization framework of "Optimizing CNNs on Multicores for
// Scalability, Performance and Goodput" (ASPLOS 2017).
//
// The package is a facade over the implementation packages; it exposes
// everything a downstream user needs:
//
//   - Convolution geometry and analysis: ConvSpec, Analyze, Region — the
//     paper's §3 AIT/sparsity characterization.
//   - Kernels: NewUnfoldGEMM (the Unfold+GEMM baseline, serial or
//     Parallel-GEMM), NewStencil (the §4.3 FP code generator), NewSparse
//     (the §4.2 CT-CSR BP kernel). All satisfy Kernel and compute
//     identical results.
//   - Scheduling: FPStrategies/BPStrategies/NewExec for explicit
//     deployment, NewAutoConv for §4.4's measure-and-pick scheduler.
//   - Training: networks from text descriptions (ParseNet/BuildNet or the
//     built-in benchmark networks), the SGD Trainer, and the synthetic
//     datasets.
//   - Reproduction: Experiments() regenerates every table and figure of
//     the paper's evaluation; PaperMachine() is the calibrated model of
//     the paper's 16-core Xeon.
//
// Quick start (see examples/quickstart for the runnable version):
//
//	spec := spgcnn.Square(36, 64, 3, 5, 1)     // CIFAR-10 layer 0
//	fmt.Println(spgcnn.Analyze(spec))          // AIT, unfold loss, region
//	ctx := spgcnn.NewCtx(4)                    // workers + scratch arena
//	k := spgcnn.NewStencil(spec)               // generate a kernel (stateless plan)
//	k.ForwardBatch(ctx, outs, ins, weights)    // run a batch through the context
//	k.Forward(out, in, weights)                // or one sample, compat adapter
package spgcnn

import (
	"io"

	"spgcnn/internal/ait"
	"spgcnn/internal/bench"
	"spgcnn/internal/conv"
	"spgcnn/internal/core"
	"spgcnn/internal/data"
	"spgcnn/internal/dataparallel"
	"spgcnn/internal/engine"
	"spgcnn/internal/exec"
	"spgcnn/internal/fftconv"
	"spgcnn/internal/machine"
	"spgcnn/internal/metrics"
	"spgcnn/internal/netdef"
	"spgcnn/internal/nn"
	"spgcnn/internal/obs"
	"spgcnn/internal/plan"
	"spgcnn/internal/rng"
	"spgcnn/internal/serve"
	"spgcnn/internal/serve/loadgen"
	"spgcnn/internal/spkernel"
	"spgcnn/internal/stencil"
	"spgcnn/internal/tensor"
	"spgcnn/internal/trace"
	"spgcnn/internal/unfoldgemm"
	"spgcnn/internal/winograd"
)

// Geometry and tensors.

// ConvSpec is the convolution 5-tuple ⟨Nf, Fy, Fx, sy, sx⟩ plus input
// geometry (paper §2.2).
type ConvSpec = conv.Spec

// Tensor is a dense row-major float32 array.
type Tensor = tensor.Tensor

// RNG is the deterministic random generator used throughout.
type RNG = rng.RNG

// Square builds a square-geometry spec (N, Nf, Nc, F, stride) — the form
// the paper's tables use.
func Square(n, nf, nc, f, stride int) ConvSpec { return conv.Square(n, nf, nc, f, stride) }

// NewTensor allocates a zero-filled tensor.
func NewTensor(dims ...int) *Tensor { return tensor.New(dims...) }

// NewRNG returns a seeded deterministic generator.
func NewRNG(seed uint64) *RNG { return rng.New(seed) }

// NewInput, NewWeights and NewOutput allocate correctly-shaped tensors for
// a spec ([Nc][Ny][Nx], [Nf][Nc][Fy][Fx], [Nf][OutY][OutX]).
func NewInput(s ConvSpec) *Tensor   { return conv.NewInput(s) }
func NewWeights(s ConvSpec) *Tensor { return conv.NewWeights(s) }
func NewOutput(s ConvSpec) *Tensor  { return conv.NewOutput(s) }

// Characterization (paper §3).

// Analysis is a convolution's static characterization: intrinsic AIT,
// post-unfolding AIT, the ratio r, and its Fig. 1 regions.
type Analysis = ait.Analysis

// Region is a cell of the Fig. 1 design space.
type Region = ait.Region

// Analyze computes the full characterization of a spec.
func Analyze(s ConvSpec) Analysis { return ait.Analyze(s) }

// Classify places a convolution with the given gradient sparsity in its
// Fig. 1 region.
func Classify(s ConvSpec, sparsity float64) Region { return ait.Classify(s, sparsity) }

// Phase identifies one of the three GEMMs of a training step (FP, the
// input-error gradient, the delta-weights).
type Phase = ait.Phase

// The training phases.
const (
	FP        Phase = ait.FP
	BPInput   Phase = ait.BPInput
	BPWeights Phase = ait.BPWeights
)

// Execution contexts (batch-first execution seam).

// Ctx is the execution context every kernel runs under: a worker count, a
// size-classed scratch arena, and an instrumentation probe. One Ctx is
// typically shared across every layer of a network so scratch buffers are
// reused across kernels and training steps.
type Ctx = exec.Ctx

// Probe is the instrumentation sink carried by a Ctx: named timing spans
// and the §4.4 scheduler's deployment decisions.
type Probe = exec.Probe

// Arena is the size-classed scratch pool carried by a Ctx.
type Arena = tensor.Arena

// ArenaStats is an arena's cumulative acquisition/reuse counters.
type ArenaStats = tensor.ArenaStats

// NewCtx builds an execution context with the given worker count (minimum
// 1), a fresh arena and a fresh probe.
func NewCtx(workers int) *Ctx { return exec.New(workers) }

// NewCtxWithArena builds a context over an existing arena and probe — how
// sub-systems share one scratch pool. Nil arena or probe get fresh ones.
func NewCtxWithArena(workers int, a *Arena, p *Probe) *Ctx {
	return exec.NewWithArena(workers, a, p)
}

// Kernels (paper §4).

// Kernel executes the three convolution computations of one training step
// (Eqs. 2–4). The batch entry points (ForwardBatch and friends) take the
// execution context explicitly and are safe for concurrent use; the
// per-sample methods (Forward and friends) are a convenience adapter over
// a private serial context and are not.
type Kernel interface {
	engine.Kernel
	engine.SingleKernel
}

// NewUnfoldGEMM builds an Unfold+GEMM kernel (§2.3): workers <= 1 gives
// the single-threaded GEMM, workers > 1 the Parallel-GEMM baseline.
func NewUnfoldGEMM(s ConvSpec, workers int) Kernel { return unfoldgemm.New(s, workers) }

// NewStencil generates a Stencil-Kernel (§4.3) with the register tile and
// cache schedule chosen by the basic-block/schedule generators.
func NewStencil(s ConvSpec) Kernel { return stencil.New(s) }

// NewSparse generates a Sparse-Kernel (§4.2). tileWidth <= 0 selects the
// default CT-CSR column-tile width.
func NewSparse(s ConvSpec, tileWidth int) Kernel { return spkernel.New(s, tileWidth) }

// NewFFTConv generates an FFT-based forward-convolution kernel (the
// complementary technique of the paper's related work; unit-stride FP via
// the convolution theorem, everything else via unfold+GEMM fallback).
func NewFFTConv(s ConvSpec) Kernel { return fftconv.New(s) }

// NewWinograd generates a Winograd F(2×2, 3×3) minimal-filtering kernel
// (2.25× fewer multiplies for 3×3 unit-stride convolutions; other
// geometries and BP fall back to unfold+GEMM).
func NewWinograd(s ConvSpec) Kernel { return winograd.New(s) }

// SparseNonZeroFlops returns the useful flop count of one sparse BP
// computation when the error gradient has nnz non-zeros — the numerator of
// the paper's goodput (Eq. 9).
func SparseNonZeroFlops(s ConvSpec, nnz int) int64 { return spkernel.NonZeroFlops(s, nnz) }

// InferenceKernel executes forward propagation with compiled sparse
// (pruned) weights — the weight-sparsity direction of the paper's related
// work, applicable to inference.
type InferenceKernel = spkernel.InferenceKernel

// CompileWeights compiles a pruned weight tensor into an inference kernel
// that executes only the surviving taps.
func CompileWeights(s ConvSpec, w *Tensor) *InferenceKernel {
	return spkernel.CompileWeights(s, w)
}

// Scheduling (paper §4.1, §4.4).

// Strategy couples a kernel generator with a batch schedule.
type Strategy = core.Strategy

// Exec executes one layer phase over batches according to a strategy.
type Exec = core.Exec

// AutoConv is the self-tuning layer executor: it measures every candidate
// strategy and deploys the fastest, re-checking BP periodically.
type AutoConv = core.AutoConv

// FPStrategies and BPStrategies return the paper's candidate sets.
func FPStrategies(workers int) []Strategy { return core.FPStrategies(workers) }
func BPStrategies(workers int) []Strategy { return core.BPStrategies(workers) }

// NewExec instantiates a strategy for a spec with a private context of the
// given worker count.
func NewExec(st Strategy, s ConvSpec, workers int) *Exec { return core.NewExec(st, s, workers) }

// NewExecCtx instantiates a strategy for a spec under a shared execution
// context.
func NewExecCtx(st Strategy, s ConvSpec, c *Ctx) *Exec { return core.NewExecCtx(st, s, c) }

// NewAutoConv builds the §4.4 auto-tuning scheduler for one layer.
func NewAutoConv(s ConvSpec, workers int) *AutoConv {
	return core.NewAutoConv(s, workers, core.AutoOptions{})
}

// Planning (the §4.4 scheduler promoted to a subsystem).

// Planner is the strategy-selection subsystem: an analytical model-first
// pass prunes dominated candidates, measured tuning picks among the
// survivors, and verdicts are cached in memory (shared across layers and
// replicas, concurrent requests single-flighted) and persistently (a
// schema-versioned, host-keyed plan cache file).
type Planner = plan.Planner

// PlannerOptions configures a Planner; the zero value is fully usable.
type PlannerOptions = plan.Options

// PlannerStats are a planner's cumulative counters (cache hits/misses,
// measurement passes, model-pruned candidates, model-vs-measured
// agreement, single-flight waits).
type PlannerStats = plan.Stats

// PlanKey identifies one cached verdict: host fingerprint, geometry,
// worker count, phase and sparsity band.
type PlanKey = plan.Key

// PlanEntry is one cached verdict with its measurement table and the model
// pass that preceded it.
type PlanEntry = plan.Entry

// PlanSchemaVersion stamps plan-cache files; loading a file written under
// a different schema fails instead of misreading.
const PlanSchemaVersion = plan.SchemaVersion

// NewPlanner builds a strategy planner. Thread one through
// BuildOptions.Planner (or share one via NewDataParallelFromDef) so
// same-geometry layers tune once; persist it across runs with its
// SaveFile/LoadFile methods.
func NewPlanner(opts PlannerOptions) *Planner { return plan.New(opts) }

// BindPlannerMetrics exports a planner's counters into a metrics registry.
func BindPlannerMetrics(p *Planner, r *MetricsRegistry) { metrics.BindPlanner(p, r) }

// TuningChoices is a network's serializable per-layer deployment — the
// "best configuration" the scheduler produced (§1.3). Harvest one from a
// trained network with Network.TuningChoices, persist it with its Save
// method, and redeploy via BuildOptions.Choices.
type TuningChoices = core.Choices

// LoadTuningChoices reads a configuration saved by TuningChoices.Save.
func LoadTuningChoices(r io.Reader) (TuningChoices, error) { return core.LoadChoices(r) }

// Training substrate.

// Network is a stack of layers with preallocated batch storage.
type Network = nn.Network

// Trainer runs minibatch SGD.
type Trainer = nn.Trainer

// Dataset is the trainer's data source.
type Dataset = nn.Dataset

// TrainEpochStats reports one training epoch (loss, accuracy, throughput,
// per-layer gradient sparsity, dense and goodput conv work rates).
type TrainEpochStats = nn.EpochStats

// NetDef is a parsed network description.
type NetDef = netdef.NetDef

// BuildOptions controls network construction.
type BuildOptions = netdef.BuildOptions

// ParseNet parses a prototxt-style network description.
func ParseNet(src string) (*NetDef, error) { return netdef.Parse(src) }

// BuildNet constructs a runnable network from a parsed description.
func BuildNet(def *NetDef, opts BuildOptions) (*Network, error) { return netdef.Build(def, opts) }

// NewTrainer builds an SGD trainer.
func NewTrainer(net *Network, lr float32, batch int) *Trainer {
	return nn.NewTrainer(net, lr, batch)
}

// Data-parallel training (the cluster context of the paper's §1/§6).

// DataParallelConfig tunes a synchronous data-parallel run.
type DataParallelConfig = dataparallel.Config

// DataParallelTrainer coordinates model replicas with periodic parameter
// averaging.
type DataParallelTrainer = dataparallel.Trainer

// NewDataParallel builds a data-parallel trainer; build must return
// identically-initialized replicas (same seed).
func NewDataParallel(build func(replica int) *Network, cfg DataParallelConfig) (*DataParallelTrainer, error) {
	return dataparallel.New(build, cfg)
}

// NewDataParallelFromDef builds a data-parallel trainer from one network
// description, with every replica sharing a single strategy planner: an
// N-replica trainer pays for one tuning pass per distinct geometry, not N.
func NewDataParallelFromDef(def *NetDef, opts BuildOptions, cfg DataParallelConfig) (*DataParallelTrainer, error) {
	return dataparallel.NewFromDef(def, opts, cfg)
}

// AllReduceMethod selects the reduction schedule of the parameter sync.
type AllReduceMethod = dataparallel.Method

// Reduction schedules and sparse-exchange modes of the data-parallel
// reduction subsystem.
const (
	AllReduceFlat = dataparallel.MethodFlat
	AllReduceRing = dataparallel.MethodRing
	AllReduceTree = dataparallel.MethodTree
	AllReduceAuto = dataparallel.MethodAuto

	SparseSyncOff   = dataparallel.SparseOff
	SparseSyncAuto  = dataparallel.SparseAuto
	SparseSyncForce = dataparallel.SparseForce
)

// ParseAllReduceMethod validates an -allreduce flag value.
func ParseAllReduceMethod(s string) (AllReduceMethod, error) { return dataparallel.ParseMethod(s) }

// ParseSparseSyncMode validates a -sparse-sync flag value.
func ParseSparseSyncMode(s string) (string, error) { return dataparallel.ParseSparseMode(s) }

// DataParallelSample is one data-parallel epoch in metrics form (spg_dp_*).
type DataParallelSample = metrics.DPSample

// Built-in benchmark network descriptions (Table 2 geometries).
const (
	MNISTNet       = netdef.MNISTNet
	CIFARNet       = netdef.CIFARNet
	ImageNet100Net = netdef.ImageNet100Net
)

// Synthetic benchmark datasets (see DESIGN.md §2 on the substitution for
// the real image sets).
func MNISTData(n int) Dataset       { return data.MNIST(n) }
func CIFARData(n int) Dataset       { return data.CIFAR(n) }
func ImageNet100Data(n int) Dataset { return data.ImageNet100(n) }

// Reproduction harness.

// Experiment regenerates one table or figure of the paper.
type Experiment = bench.Experiment

// ExperimentOptions configures an experiment run ("quick" or "full").
type ExperimentOptions = bench.Options

// ResultTable is a rendered experiment result.
type ResultTable = bench.Table

// Experiments returns every regenerable artifact, in paper order.
func Experiments() []Experiment { return bench.Experiments() }

// LookupExperiment finds an experiment by ID (e.g. "fig4e").
func LookupExperiment(id string) (Experiment, error) { return bench.Lookup(id) }

// PaperMachine returns the analytical model of the paper's 16-core Xeon
// E5-2650 testbed (the documented hardware substitution, DESIGN.md §2).
func PaperMachine() machine.Machine { return machine.Paper() }

// Observability (metrics registry, live export, bench baselines).

// MetricsRegistry holds counters, gauges, latency histograms and the
// hierarchical layer/phase/strategy span tree, and renders itself in
// Prometheus text exposition format.
type MetricsRegistry = metrics.Registry

// MetricsServer is a live metrics endpoint: /metrics (Prometheus text
// format), /healthz, and net/http/pprof under /debug/pprof/.
type MetricsServer = metrics.Server

// EpochSample is one epoch's training statistics in metrics form — the
// per-epoch goodput series of Eq. 9.
type EpochSample = metrics.EpochSample

// MetricsSpanStats is one span's aggregate (calls, total seconds, min,
// max).
type MetricsSpanStats = metrics.SpanStats

// NewMetricsRegistry returns an empty registry.
func NewMetricsRegistry() *MetricsRegistry { return metrics.NewRegistry() }

// BindMetrics attaches a registry to an execution context: every probe
// span and scheduler choice is mirrored live into the registry, and the
// context's worker count and arena statistics are exported as gauges.
func BindMetrics(c *Ctx, r *MetricsRegistry) { metrics.Bind(c, r) }

// ServeMetrics starts the metrics endpoint on addr (":0" picks a free
// port; query the result's Addr or URL). Close the returned server when
// done.
func ServeMetrics(addr string, r *MetricsRegistry) (*MetricsServer, error) {
	return metrics.Serve(addr, r)
}

// BindRuntimeMetrics exports Go runtime health telemetry (GC pause and
// scheduler-latency quantiles, GC cycles, live heap, goroutines,
// GOMAXPROCS) as spg_runtime_* series, sampled at render time.
func BindRuntimeMetrics(r *MetricsRegistry) { metrics.BindRuntime(r) }

// Plan-drift observatory (continuous model-vs-measured agreement tracking
// with automatic re-tune triggers).

// Observatory tracks per-layer/per-phase EWMA agreement between the
// planner's analytical predictions and measured span times, and fires
// drift events when a deployed strategy departs from its own baseline.
// It implements the probe sink seam: attach with Ctx.Probe().AddSink.
type Observatory = obs.Observatory

// ObservatoryOptions configures an Observatory; the zero value is usable.
type ObservatoryOptions = obs.Options

// DriftEvent is one fired drift alarm.
type DriftEvent = obs.DriftEvent

// DriftCoupler turns drift events into re-tune actions: plan-cache
// invalidation immediately, layer re-tunes when Apply runs on the
// training goroutine.
type DriftCoupler = obs.Coupler

// DriftReport is the observatory's exportable agreement report, with
// per-series rows and per-Fig.1-region rollups.
type DriftReport = obs.Report

// DriftRow is one (layer, phase) series of a drift report.
type DriftRow = obs.Row

// DriftRegionRow is a drift report's per-Fig.1-region rollup row.
type DriftRegionRow = obs.RegionRow

// DriftReportSchemaVersion stamps drift report files.
const DriftReportSchemaVersion = obs.ReportSchemaVersion

// NewObservatory builds a drift observatory.
func NewObservatory(o ObservatoryOptions) *Observatory { return obs.New(o) }

// NewDriftCoupler builds the re-tune trigger for a planner; pass its
// OnDrift as ObservatoryOptions.OnDrift.
func NewDriftCoupler(p *Planner) *DriftCoupler { return obs.NewCoupler(p) }

// ReadDriftReportFile reads and schema-validates a drift report.
func ReadDriftReportFile(path string) (DriftReport, error) { return obs.ReadReportFile(path) }

// RegisterObservatoryLayers declares every convolution layer of a network
// with the observatory (geometry for predictions) and, when cp is
// non-nil, with the coupler (re-tune fan-out). Call once per network —
// data-parallel replicas register every replica with the coupler but
// share one observatory stream per layer.
func RegisterObservatoryLayers(o *Observatory, cp *DriftCoupler, net *Network) {
	if o == nil || net == nil {
		return
	}
	for _, c := range net.ConvLayers() {
		o.RegisterLayer(c.Name(), c.Spec())
		if cp != nil {
			cp.Register(c)
		}
	}
}

// BenchSchemaVersion is the schema stamp of machine-readable bench
// reports (BENCH_<exp>.json).
const BenchSchemaVersion = bench.SchemaVersion

// BenchReport is the machine-readable form of one experiment run.
type BenchReport = bench.Report

// NewBenchReport assembles the report for one experiment run.
func NewBenchReport(e Experiment, o ExperimentOptions, tables []ResultTable) BenchReport {
	return bench.NewReport(e, o, tables)
}

// LoadBenchReport reads and schema-validates a BENCH_<exp>.json file.
func LoadBenchReport(path string) (*BenchReport, error) { return bench.LoadReport(path) }

// CompareBenchReports checks a fresh report against a committed baseline:
// structure strictly, numbers within tol for deterministic experiment
// kinds, finiteness and sign for measured ones.
func CompareBenchReports(base, cur *BenchReport, tol float64) error {
	return bench.Compare(base, cur, tol)
}

// HostFingerprint describes the machine a report was generated on.
type HostFingerprint = machine.Host

// HostInfo fingerprints this host.
func HostInfo() HostFingerprint { return machine.HostInfo() }

// Execution tracing (per-step timelines, Perfetto export, straggler and
// goodput-waste attribution).

// TraceRecorder is the low-overhead per-worker event recorder: every
// layer/phase/strategy execution, planner decision, arena growth and
// all-reduce lands on a timeline stamped with step, replica, worker and
// sparsity band. Export with its WriteFile method (Chrome/Perfetto
// trace-event JSON) and analyze with cmd/spg-trace.
type TraceRecorder = trace.Recorder

// TraceEmitter stamps events for one (replica, worker) identity; obtain
// one from TraceRecorder.Emitter. All methods are nil-safe, so call sites
// stay wired when tracing is off.
type TraceEmitter = trace.Emitter

// TraceOptions configures a recorder; the zero value is full capture with
// default bounds.
type TraceOptions = trace.Options

// TraceMode selects full capture or the bounded flight-recorder ring.
type TraceMode = trace.Mode

// The capture modes.
const (
	TraceFull = trace.Full
	TraceRing = trace.Ring
)

// TraceCapture is a recorder's exported snapshot: events, layer flop
// metadata and buffer accounting.
type TraceCapture = trace.Capture

// TraceStats is a recorder's buffer accounting (emitted, buffered,
// overwritten, dropped).
type TraceStats = trace.Stats

// NewTraceRecorder builds a recorder.
func NewTraceRecorder(opts TraceOptions) *TraceRecorder { return trace.New(opts) }

// ParseTraceMode parses "full" or "ring".
func ParseTraceMode(s string) (TraceMode, error) { return trace.ParseMode(s) }

// AttachTraceCtx streams an execution context's probe (layer, kernel and
// tune spans, scheduler choices) and arena growth onto the timeline under
// the given replica identity. The metrics bridge, if bound, keeps
// observing — sinks fan out.
func AttachTraceCtx(rec *TraceRecorder, c *Ctx, replica int) *TraceEmitter {
	e := rec.Emitter(replica, 0)
	if rec == nil || c == nil {
		return e
	}
	c.Probe().AddSink(trace.NewProbeSink(e))
	c.Arena().SetGrowHook(func(bytes int64) {
		e.Instant("arena", "grow", "", float64(bytes))
	})
	return e
}

// BindTraceMetrics exports a recorder's buffer accounting (emitted,
// buffered, overwritten, dropped, used ratio) as live gauges.
func BindTraceMetrics(rec *TraceRecorder, r *MetricsRegistry) { metrics.BindTrace(rec, r) }

// TraceLayerMeta is one layer's per-image flop metadata — what the
// goodput-waste analyzer multiplies sparsity samples against.
type TraceLayerMeta = trace.LayerMeta

// RegisterTraceLayers records every conv layer's flop metadata with the
// recorder, so exported captures carry what waste attribution needs.
func RegisterTraceLayers(rec *TraceRecorder, net *Network) {
	if rec == nil || net == nil {
		return
	}
	for _, c := range net.ConvLayers() {
		spec := c.Spec()
		rec.AddLayerMeta(trace.LayerMeta{
			Name:    c.Name(),
			FPFlops: spec.FlopsFP(),
			BPFlops: spec.FlopsBPInput() + spec.FlopsBPWeights(),
		})
	}
}

// SparsityBand maps a gradient sparsity to its quarter band (0..3) — the
// stamp trace events and plan-cache keys carry.
func SparsityBand(sparsity float64) int { return plan.Band(sparsity) }

// Inference serving.

// ServeModel is a loaded, forward-only network replicated across batch
// workers with one shared read-only parameter set.
type ServeModel = serve.Model

// ServeModelConfig controls replica count, batch-size buckets and
// per-bucket strategy planning of a serving model.
type ServeModelConfig = serve.ModelConfig

// ServeConfig configures the dynamic-batching server around a model.
type ServeConfig = serve.Config

// Server is the dynamic-batching inference server.
type Server = serve.Server

// ServeStats is a snapshot of the server's admission and goodput counters.
type ServeStats = serve.Stats

// NewServeModel builds the forward-only replica set for a description.
func NewServeModel(def *NetDef, cfg ServeModelConfig) (*ServeModel, error) {
	return serve.NewModel(def, cfg)
}

// NewServer starts batch workers over a model and returns the server.
func NewServer(cfg ServeConfig) (*Server, error) { return serve.New(cfg) }

// DefaultServeBuckets returns the power-of-two batch buckets up to maxBatch.
func DefaultServeBuckets(maxBatch int) []int { return serve.DefaultBuckets(maxBatch) }

// LoadConfig configures one load-generation run against a serving endpoint.
type LoadConfig = loadgen.Config

// LoadResult aggregates a load run: throughput, tail latency, batch mix.
type LoadResult = loadgen.Result

// RunLoad drives a serving endpoint with closed- or open-loop traffic.
func RunLoad(cfg LoadConfig) (*LoadResult, error) { return loadgen.Run(cfg) }

// DataParallelStats reports one data-parallel epoch, including the
// per-replica step-time min/max/mean and barrier-wait attribution.
type DataParallelStats = dataparallel.Stats

// DataParallelReplicaStats is one replica's step-time summary.
type DataParallelReplicaStats = dataparallel.ReplicaStats
