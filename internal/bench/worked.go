package bench

import (
	"fmt"

	"spgcnn/internal/conv"
	"spgcnn/internal/gemm"
	"spgcnn/internal/sparse"
	"spgcnn/internal/stencil"
	"spgcnn/internal/unfold"
)

// Worked examples for the paper's illustrative figures (Figs. 2, 5, 6, 7):
// rather than charts, these run the actual code on the figures' toy inputs
// and print what it produced, so the mechanisms are inspectable.

// RunFig2 reproduces Fig. 2: the 3×3 two-channel image of Fig. 2a unfolded
// (Fig. 2b) and multiplied as O = W·Uᵀ (Fig. 2c), checked against direct
// convolution.
func RunFig2(Options) []Table {
	s := conv.Square(3, 2, 2, 2, 1)
	in := conv.NewInput(s)
	// Channel 0 = 1..9, channel 1 = 10..18 (row-major), as a stand-in for
	// Fig. 2a's red/blue planes.
	for i := 0; i < 9; i++ {
		in.Data[i] = float32(1 + i)
		in.Data[9+i] = float32(10 + i)
	}
	u := unfold.NewU(s)
	unfold.Im2col(s, u, in)

	t1 := Table{
		Title:   "Fig 2b: unfolding the 3x3 two-channel image for a 2x2 kernel",
		Note:    "one row per output pixel; channel-0 taps then channel-1 taps",
		Columns: []string{"output pixel", "c0 taps", "c1 taps"},
	}
	for r := 0; r < u.Rows; r++ {
		row := u.Row(r)
		t1.AddRow(fmt.Sprintf("(%d,%d)", r/s.OutX(), r%s.OutX()),
			fmt.Sprintf("%v", row[:4]), fmt.Sprintf("%v", row[4:]))
	}

	// Simple weights: feature 0 averages channel 0's window, feature 1
	// differences the two channels' top-left taps.
	w := conv.NewWeights(s)
	for kx := 0; kx < 4; kx++ {
		w.Data[kx] = 0.25 // f0, c0
	}
	w.Set4(1, 0, 0, 0, 1)
	w.Set4(1, 1, 0, 0, -1)

	out := conv.NewOutput(s)
	gemm.MulTransB(unfold.OutputMatrix(s, out), unfold.WeightMatrix(s, w), u)
	want := conv.NewOutput(s)
	conv.ForwardRef(s, want, in, w)

	t2 := Table{
		Title:   "Fig 2c: O = W·U^T vs direct convolution (Eq. 2)",
		Columns: []string{"feature", "GEMM result", "direct result"},
	}
	for f := 0; f < s.Nf; f++ {
		t2.AddRow(f, fmt.Sprintf("%v", out.Data[f*4:(f+1)*4]),
			fmt.Sprintf("%v", want.Data[f*4:(f+1)*4]))
	}
	return []Table{t1, t2}
}

// RunFig5 reproduces Fig. 5a: a small sparse matrix column-tiled and each
// tile stored in CSR.
func RunFig5(Options) []Table {
	dense := []float32{
		1, 0, 0, 0, 2, 0,
		0, 3, 0, 4, 0, 0,
		0, 0, 5, 0, 0, 6,
	}
	m := sparse.FromDenseCT(dense, 3, 6, 3)
	t := Table{
		Title:   "Fig 5a: CT-CSR layout of a 3x6 matrix with column-tile width 3",
		Note:    "each tile is an independent CSR with tile-relative column indices",
		Columns: []string{"tile", "values", "colIdx (tile-relative)", "rowPtr"},
	}
	for i, tile := range m.Tiles {
		t.AddRow(i, fmt.Sprintf("%v", tile.Values), fmt.Sprintf("%v", tile.ColIdx),
			fmt.Sprintf("%v", tile.RowPtr))
	}
	back := Table{
		Title:   "CT-CSR round trip",
		Columns: []string{"property", "value"},
	}
	back.AddRow("nnz", m.NNZ())
	back.AddRow("sparsity", m.Sparsity())
	ok := true
	rt := m.ToDense()
	for i := range dense {
		if rt[i] != dense[i] {
			ok = false
		}
	}
	back.AddRow("round trip exact", fmt.Sprintf("%v", ok))
	return []Table{t, back}
}

// RunFig6 reproduces Fig. 6: the pointer-shifting scatter of one non-zero
// error gradient — where each (ky, kx) tap's dense channel-vector axpy
// lands in EI.
func RunFig6(Options) []Table {
	s := conv.Square(5, 2, 3, 2, 1)
	t := Table{
		Title:   "Fig 6: pointer shifting for one non-zero EO[f=1, y'=2, x'=1] (Eq. 15)",
		Note:    "each row is one dense axpy: EI[y'+ky, x'+kx, 0..Nc) += v * W'[ky][kx][f][0..Nc)",
		Columns: []string{"ky", "kx", "destination EI vector", "weight vector W'"},
	}
	for ky := 0; ky < s.Fy; ky++ {
		for kx := 0; kx < s.Fx; kx++ {
			t.AddRow(ky, kx,
				fmt.Sprintf("EI[%d, %d, 0:%d]", 2+ky, 1+kx, s.Nc),
				fmt.Sprintf("W'[%d][%d][1][0:%d]", ky, kx, s.Nc))
		}
	}
	t.AddRow("-", "-", fmt.Sprintf("total: %d axpys of length %d for this non-zero", s.Fy*s.Fx, s.Nc), "")
	return []Table{t}
}

// RunFig7 reproduces Fig. 7: the basic-block plan the stencil generator
// produces for the figure's 1×2 kernel, and the plan chosen for each
// Table 1 convolution.
func RunFig7(Options) []Table {
	t := Table{
		Title:   "Fig 7: stencil basic-block plans (the generated register tiles)",
		Note:    "loads/MAC is the §4.3 model the generator minimizes; Fig. 7's example is the 1x2 kernel",
		Columns: []string{"Convolution", "rx", "ry", "tileX", "loads/MAC", "stride split"},
	}
	fig7 := conv.Spec{Nx: 16, Ny: 16, Nc: 1, Nf: 1, Fx: 1, Fy: 2, Sx: 1, Sy: 1}
	p := stencil.ChoosePlan(fig7)
	t.AddRow("Fig 7's 1x2 kernel", p.RX, p.RY, p.TileX, p.LoadsPerMAC, fmt.Sprintf("%v", p.StrideSplit))
	for _, row := range Table1() {
		p := stencil.ChoosePlan(row.Spec)
		t.AddRow(fmt.Sprintf("Table 1 ID %d (%v)", row.ID, row.Spec),
			p.RX, p.RY, p.TileX, p.LoadsPerMAC, fmt.Sprintf("%v", p.StrideSplit))
	}
	return []Table{t}
}
