package nn

import (
	"encoding/gob"
	"fmt"
	"io"
	"sort"

	"spgcnn/internal/tensor"
)

// Model serialization: weights are saved keyed by layer name, so a network
// rebuilt from the same description (same names, same shapes) can restore
// them — the checkpoint mechanism behind spg-train's -save/-load flags.
// Execution strategy is deliberately NOT serialized: the spg-CNN scheduler
// re-measures on the restoring machine (§4.4's choices are
// machine-specific).

// paramOwner is implemented by layers with learnable parameters.
type paramOwner interface {
	// params returns the layer's parameter tensors keyed by a stable
	// within-layer name.
	params() map[string]*tensor.Tensor
}

// paramSetter is implemented by layers whose parameter tensors can be
// replaced wholesale — the aliasing hook ShareParameters builds on.
type paramSetter interface {
	paramOwner
	// setParam points the named parameter at t. Reports false for an
	// unknown name.
	setParam(name string, t *tensor.Tensor) bool
}

func (c *Conv) params() map[string]*tensor.Tensor {
	return map[string]*tensor.Tensor{"W": c.W, "B": c.B}
}

func (c *Conv) setParam(name string, t *tensor.Tensor) bool {
	switch name {
	case "W":
		c.W = t
	case "B":
		c.B = t
	default:
		return false
	}
	return true
}

func (l *FC) params() map[string]*tensor.Tensor {
	return map[string]*tensor.Tensor{"W": l.W, "B": l.B}
}

func (l *FC) setParam(name string, t *tensor.Tensor) bool {
	switch name {
	case "W":
		l.W = t
	case "B":
		l.B = t
	default:
		return false
	}
	return true
}

// ShareParameters points every parameter of this network at the SAME
// tensors as src — not a copy. The networks must have been built from the
// same description (same layer names, same shapes). Afterwards the two
// networks see identical weights forever, which is exactly what a serving
// replica wants: N forward-only replicas share one read-only parameter
// set, and because a shared tensor keeps one data pointer and one version,
// every replica's packed/blocked weight caches key to the same entry.
// Mutating parameters through either network affects both — inference
// replicas never do (Backward panics; ApplyGrads is never called).
func (n *Network) ShareParameters(src *Network) error {
	srcParams := map[string]*tensor.Tensor{}
	for _, p := range src.Parameters() {
		srcParams[p.Name] = p.Tensor
	}
	shared := 0
	for _, layer := range n.layers {
		ps, ok := layer.(paramSetter)
		if !ok {
			if _, owns := layer.(paramOwner); owns {
				return fmt.Errorf("nn: ShareParameters: layer %q owns parameters but cannot alias them", layer.Name())
			}
			continue
		}
		for name, t := range ps.params() {
			key := layer.Name() + "/" + name
			st, ok := srcParams[key]
			if !ok {
				return fmt.Errorf("nn: ShareParameters: source network has no parameter %q", key)
			}
			if !dimsEqual(st.Dims, t.Dims) {
				return fmt.Errorf("nn: ShareParameters: parameter %q shape %v does not match source shape %v",
					key, t.Dims, st.Dims)
			}
			if !ps.setParam(name, st) {
				return fmt.Errorf("nn: ShareParameters: layer %q rejected parameter %q", layer.Name(), name)
			}
			shared++
		}
	}
	if shared != len(srcParams) {
		return fmt.Errorf("nn: ShareParameters: source has %d parameters, this network aliased %d",
			len(srcParams), shared)
	}
	return nil
}

// NamedParam is one learnable parameter tensor with its stable
// "layer/param" key.
type NamedParam struct {
	Name   string
	Tensor *tensor.Tensor
}

// Parameters returns every learnable parameter of the network, in layer
// order with a deterministic within-layer order. The tensors alias the
// network's live weights (mutations affect the model) — the hook that
// weight averaging, regularizers and inspection tools build on.
func (n *Network) Parameters() []NamedParam {
	var out []NamedParam
	for _, layer := range n.layers {
		po, ok := layer.(paramOwner)
		if !ok {
			continue
		}
		params := po.params()
		// Deterministic order: W before B (the only keys in use), then
		// any others lexicographically.
		for _, key := range []string{"W", "B"} {
			if t, ok := params[key]; ok {
				out = append(out, NamedParam{Name: layer.Name() + "/" + key, Tensor: t})
				delete(params, key)
			}
		}
		rest := make([]string, 0, len(params))
		for key := range params {
			rest = append(rest, key)
		}
		sort.Strings(rest)
		for _, key := range rest {
			out = append(out, NamedParam{Name: layer.Name() + "/" + key, Tensor: params[key]})
		}
	}
	return out
}

// savedTensor is the gob wire form of one parameter tensor.
type savedTensor struct {
	Dims []int
	Data []float32
}

// snapshot is the gob wire form of a whole model.
type snapshot struct {
	Version int
	Params  map[string]savedTensor // "layerName/paramName"
}

const snapshotVersion = 1

// Save writes every parameter of the network to w in gob format.
func (n *Network) Save(w io.Writer) error {
	snap := snapshot{Version: snapshotVersion, Params: map[string]savedTensor{}}
	for _, layer := range n.layers {
		po, ok := layer.(paramOwner)
		if !ok {
			continue
		}
		for name, t := range po.params() {
			key := layer.Name() + "/" + name
			if _, dup := snap.Params[key]; dup {
				return fmt.Errorf("nn: duplicate parameter key %q (layer names must be unique)", key)
			}
			snap.Params[key] = savedTensor{Dims: t.Dims, Data: t.Data}
		}
	}
	return gob.NewEncoder(w).Encode(snap)
}

// Load restores parameters saved by Save into this network. Every
// parameter in the snapshot must find a same-shaped destination, and every
// parameter of this network must be present in the snapshot — partial
// restores are an error, not a silent half-initialization.
func (n *Network) Load(r io.Reader) error {
	var snap snapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return fmt.Errorf("nn: decoding snapshot: %w", err)
	}
	if snap.Version != snapshotVersion {
		return fmt.Errorf("nn: snapshot version %d, want %d", snap.Version, snapshotVersion)
	}
	want := map[string]*tensor.Tensor{}
	for _, layer := range n.layers {
		po, ok := layer.(paramOwner)
		if !ok {
			continue
		}
		for name, t := range po.params() {
			want[layer.Name()+"/"+name] = t
		}
	}
	if len(want) != len(snap.Params) {
		return fmt.Errorf("nn: snapshot has %d parameters, network has %d", len(snap.Params), len(want))
	}
	for key, saved := range snap.Params {
		dst, ok := want[key]
		if !ok {
			return fmt.Errorf("nn: snapshot parameter %q has no destination in this network", key)
		}
		if !dimsEqual(saved.Dims, dst.Dims) {
			return fmt.Errorf("nn: parameter %q shape %v does not match network shape %v",
				key, saved.Dims, dst.Dims)
		}
		copy(dst.Data, saved.Data)
	}
	return nil
}
