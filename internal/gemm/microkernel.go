package gemm

// Bounds-check-eliminated micro-kernels: the innermost loops of every dense
// GEMM path in this package, written so the Go compiler's prove pass can
// discharge every bounds check (verify with -gcflags=-d=ssa/check_bce;
// scripts/bce_check.sh gates the functions in this file in CI).
//
// Two idioms keep the loops clean:
//
//   - Streaming slices: instead of indexing a fixed slice with a loop
//     counter, the loop conditions bound len() of every operand and the
//     slices are re-sliced forward each iteration ("for len(ap) >= 4 { ...
//     ap = ap[4:] }"). The loads at constant offsets 0..3 are then provably
//     in bounds.
//   - Guard-break hints: when one slice drives the loop ("for k := range
//     x0") and others are indexed by the same counter, a never-taken
//     "if k >= len(x1) { break }" teaches prove the indexing is safe
//     without any per-element cost beyond one predictable compare.
//
// Every kernel accumulates each output element with a single accumulator
// walking k in strictly increasing order, so swapping a kernel for a wider
// or packed variant of itself is bit-transparent: results are identical to
// the scalar loop it replaces.

// microDot8 is the packed-panel micro-kernel: eight full-K dot products of
// one A row against one interleaved panel (bp[panelW*k+c] = B[k][j+c],
// packed.go). Exactly two slices advance per iteration — the single-stream
// property the panel layout exists to provide — feeding eight accumulator
// chains that stay in registers across the whole reduction, with the K loop
// unrolled 4x. Each sum is one accumulator walking k in increasing order, so
// the kernel is bit-identical to the scalar dot (and to dotRows8).
func microDot8(a, bp []float32) (s0, s1, s2, s3, s4, s5, s6, s7 float32) {
	for len(a) >= 4 && len(bp) >= 32 {
		av := a[0]
		s0 += av * bp[0]
		s1 += av * bp[1]
		s2 += av * bp[2]
		s3 += av * bp[3]
		s4 += av * bp[4]
		s5 += av * bp[5]
		s6 += av * bp[6]
		s7 += av * bp[7]
		av = a[1]
		s0 += av * bp[8]
		s1 += av * bp[9]
		s2 += av * bp[10]
		s3 += av * bp[11]
		s4 += av * bp[12]
		s5 += av * bp[13]
		s6 += av * bp[14]
		s7 += av * bp[15]
		av = a[2]
		s0 += av * bp[16]
		s1 += av * bp[17]
		s2 += av * bp[18]
		s3 += av * bp[19]
		s4 += av * bp[20]
		s5 += av * bp[21]
		s6 += av * bp[22]
		s7 += av * bp[23]
		av = a[3]
		s0 += av * bp[24]
		s1 += av * bp[25]
		s2 += av * bp[26]
		s3 += av * bp[27]
		s4 += av * bp[28]
		s5 += av * bp[29]
		s6 += av * bp[30]
		s7 += av * bp[31]
		a = a[4:]
		bp = bp[32:]
	}
	for len(a) >= 1 && len(bp) >= 8 {
		av := a[0]
		s0 += av * bp[0]
		s1 += av * bp[1]
		s2 += av * bp[2]
		s3 += av * bp[3]
		s4 += av * bp[4]
		s5 += av * bp[5]
		s6 += av * bp[6]
		s7 += av * bp[7]
		a = a[1:]
		bp = bp[8:]
	}
	return
}

// MicroDot8 exposes the packed-panel micro-kernel to engines whose data
// layout manufactures panels without packing (the blocked NCHW8
// convolution reads bp directly out of its weight layout). The wrapper
// carries no indexing of its own, so the BCE gate on this file is
// unaffected.
func MicroDot8(a, bp []float32) (s0, s1, s2, s3, s4, s5, s6, s7 float32) {
	return microDot8(a, bp)
}

// panelTile4x4 computes a 4x4 tile of C += A-rows · B directly from the
// unpacked operands (the pack-free blocked path for cache-resident sizes):
// x0..x3 are the four A rows already sliced to the K block, bp points at
// B's [klo][j] element with the row stride given, and c0..c3 are C-row
// windows at column j. Per k the four B values are contiguous, so only the
// A walk pays the strided access the packed path removes.
func panelTile4x4(c0, c1, c2, c3, x0, x1, x2, x3, bp []float32, stride int) {
	var s00, s01, s02, s03 float32
	var s10, s11, s12, s13 float32
	var s20, s21, s22, s23 float32
	var s30, s31, s32, s33 float32
	for k := 0; k < len(x0); k++ {
		if k >= len(x1) || k >= len(x2) || k >= len(x3) || len(bp) < 4 {
			break
		}
		b0, b1, b2, b3 := bp[0], bp[1], bp[2], bp[3]
		v0, v1, v2, v3 := x0[k], x1[k], x2[k], x3[k]
		s00 += v0 * b0
		s01 += v0 * b1
		s02 += v0 * b2
		s03 += v0 * b3
		s10 += v1 * b0
		s11 += v1 * b1
		s12 += v1 * b2
		s13 += v1 * b3
		s20 += v2 * b0
		s21 += v2 * b1
		s22 += v2 * b2
		s23 += v2 * b3
		s30 += v3 * b0
		s31 += v3 * b1
		s32 += v3 * b2
		s33 += v3 * b3
		// uint compare: proves 0 <= stride <= len(bp) for the re-slice.
		if uint(stride) <= uint(len(bp)) {
			bp = bp[stride:]
		} else {
			bp = bp[:0]
		}
	}
	if len(c0) < 4 || len(c1) < 4 || len(c2) < 4 || len(c3) < 4 {
		return
	}
	c0[0] += s00
	c0[1] += s01
	c0[2] += s02
	c0[3] += s03
	c1[0] += s10
	c1[1] += s11
	c1[2] += s12
	c1[3] += s13
	c2[0] += s20
	c2[1] += s21
	c2[2] += s22
	c2[3] += s23
	c3[0] += s30
	c3[1] += s31
	c3[2] += s32
	c3[3] += s33
}

// dotRows8 returns the eight dot products of a against b0..b7 (each at
// least len(a) long): the row kernel of C = A·Bᵀ, one streamed A row feeding
// eight register-resident sums. Each sum is accumulated in k order with a
// single accumulator, so grouping rows eight at a time is bit-transparent.
func dotRows8(a, b0, b1, b2, b3, b4, b5, b6, b7 []float32) (s0, s1, s2, s3, s4, s5, s6, s7 float32) {
	for len(a) >= 4 && len(b0) >= 4 && len(b1) >= 4 && len(b2) >= 4 && len(b3) >= 4 &&
		len(b4) >= 4 && len(b5) >= 4 && len(b6) >= 4 && len(b7) >= 4 {
		a0, a1, a2, a3 := a[0], a[1], a[2], a[3]
		s0 += a0 * b0[0]
		s0 += a1 * b0[1]
		s0 += a2 * b0[2]
		s0 += a3 * b0[3]
		s1 += a0 * b1[0]
		s1 += a1 * b1[1]
		s1 += a2 * b1[2]
		s1 += a3 * b1[3]
		s2 += a0 * b2[0]
		s2 += a1 * b2[1]
		s2 += a2 * b2[2]
		s2 += a3 * b2[3]
		s3 += a0 * b3[0]
		s3 += a1 * b3[1]
		s3 += a2 * b3[2]
		s3 += a3 * b3[3]
		s4 += a0 * b4[0]
		s4 += a1 * b4[1]
		s4 += a2 * b4[2]
		s4 += a3 * b4[3]
		s5 += a0 * b5[0]
		s5 += a1 * b5[1]
		s5 += a2 * b5[2]
		s5 += a3 * b5[3]
		s6 += a0 * b6[0]
		s6 += a1 * b6[1]
		s6 += a2 * b6[2]
		s6 += a3 * b6[3]
		s7 += a0 * b7[0]
		s7 += a1 * b7[1]
		s7 += a2 * b7[2]
		s7 += a3 * b7[3]
		a = a[4:]
		b0 = b0[4:]
		b1 = b1[4:]
		b2 = b2[4:]
		b3 = b3[4:]
		b4 = b4[4:]
		b5 = b5[4:]
		b6 = b6[4:]
		b7 = b7[4:]
	}
	for k, av := range a {
		if k >= len(b0) || k >= len(b1) || k >= len(b2) || k >= len(b3) ||
			k >= len(b4) || k >= len(b5) || k >= len(b6) || k >= len(b7) {
			break
		}
		s0 += av * b0[k]
		s1 += av * b1[k]
		s2 += av * b2[k]
		s3 += av * b3[k]
		s4 += av * b4[k]
		s5 += av * b5[k]
		s6 += av * b6[k]
		s7 += av * b7[k]
	}
	return
}

// dotRows4 is the four-row variant of dotRows8 for B-row remainders.
func dotRows4(a, b0, b1, b2, b3 []float32) (s0, s1, s2, s3 float32) {
	for len(a) >= 4 && len(b0) >= 4 && len(b1) >= 4 && len(b2) >= 4 && len(b3) >= 4 {
		a0, a1, a2, a3 := a[0], a[1], a[2], a[3]
		s0 += a0 * b0[0]
		s0 += a1 * b0[1]
		s0 += a2 * b0[2]
		s0 += a3 * b0[3]
		s1 += a0 * b1[0]
		s1 += a1 * b1[1]
		s1 += a2 * b1[2]
		s1 += a3 * b1[3]
		s2 += a0 * b2[0]
		s2 += a1 * b2[1]
		s2 += a2 * b2[2]
		s2 += a3 * b2[3]
		s3 += a0 * b3[0]
		s3 += a1 * b3[1]
		s3 += a2 * b3[2]
		s3 += a3 * b3[3]
		a = a[4:]
		b0 = b0[4:]
		b1 = b1[4:]
		b2 = b2[4:]
		b3 = b3[4:]
	}
	for k, av := range a {
		if k >= len(b0) || k >= len(b1) || k >= len(b2) || k >= len(b3) {
			break
		}
		s0 += av * b0[k]
		s1 += av * b1[k]
		s2 += av * b2[k]
		s3 += av * b3[k]
	}
	return
}

// dotRow1 is the single-row dot product (final B-row remainder).
func dotRow1(a, b []float32) float32 {
	var s float32
	for k, av := range a {
		if k >= len(b) {
			break
		}
		s += av * b[k]
	}
	return s
}

// axpyAcc computes dst[i] += w*src[i] over min(len(dst), len(src)) — the
// scatter inner loop of C = Aᵀ·B, 4-wide unrolled. Element order is
// unchanged from the scalar loop, so results are bit-identical.
func axpyAcc(dst, src []float32, w float32) {
	for len(dst) >= 4 && len(src) >= 4 {
		v0, v1, v2, v3 := src[0], src[1], src[2], src[3]
		dst[0] += w * v0
		dst[1] += w * v1
		dst[2] += w * v2
		dst[3] += w * v3
		dst = dst[4:]
		src = src[4:]
	}
	for i := range dst {
		if i >= len(src) {
			break
		}
		dst[i] += w * src[i]
	}
}

// copyStrip8 packs one panel column group from an operand walked in its
// storage orientation: per source row (advanced by stride) it copies 8
// contiguous values to 8 contiguous packed slots — a pure streaming copy.
func copyStrip8(dst, src []float32, stride int) {
	for len(dst) >= 8 && len(src) >= 8 {
		v0, v1, v2, v3 := src[0], src[1], src[2], src[3]
		v4, v5, v6, v7 := src[4], src[5], src[6], src[7]
		dst[0] = v0
		dst[1] = v1
		dst[2] = v2
		dst[3] = v3
		dst[4] = v4
		dst[5] = v5
		dst[6] = v6
		dst[7] = v7
		dst = dst[8:]
		if uint(stride) <= uint(len(src)) {
			src = src[stride:]
		} else {
			src = src[:0]
		}
	}
}

// gatherStrip8 packs one panel column group from an operand walked ACROSS
// its storage orientation (a transposed B): eight source rows advance in
// lockstep, dst[8k+c] = rows[c][k].
func gatherStrip8(dst, r0, r1, r2, r3, r4, r5, r6, r7 []float32) {
	for len(dst) >= 8 && len(r0) >= 1 && len(r1) >= 1 && len(r2) >= 1 && len(r3) >= 1 &&
		len(r4) >= 1 && len(r5) >= 1 && len(r6) >= 1 && len(r7) >= 1 {
		v0, v1, v2, v3 := r0[0], r1[0], r2[0], r3[0]
		v4, v5, v6, v7 := r4[0], r5[0], r6[0], r7[0]
		dst[0] = v0
		dst[1] = v1
		dst[2] = v2
		dst[3] = v3
		dst[4] = v4
		dst[5] = v5
		dst[6] = v6
		dst[7] = v7
		dst = dst[8:]
		r0 = r0[1:]
		r1 = r1[1:]
		r2 = r2[1:]
		r3 = r3[1:]
		r4 = r4[1:]
		r5 = r5[1:]
		r6 = r6[1:]
		r7 = r7[1:]
	}
}
