package metrics

import "strconv"

// DPSample is one data-parallel epoch's scale-out accounting: the
// reduction subsystem's telemetry (schedule, sparse rounds, wire traffic),
// the Eq. 9-style skipped-tail waste term, and the straggler-mitigation
// loop's evidence (per-replica barrier wait, shares, rechunk count).
type DPSample struct {
	Epoch            int
	Replicas         int
	Syncs            int
	SparseSyncs      int
	AllReduceSeconds float64
	AllReduceMethod  string
	MeanDeltaDensity float64 // -1 when no sync measured deltas
	WireBytes        int64
	SkippedImages    int
	SkippedConvFlops float64
	Rechunks         int
	StalenessMax     int
	// BarrierWait / Shares are indexed by replica.
	BarrierWait []float64
	Shares      []int
}

// RecordDataParallel publishes one data-parallel epoch under the spg_dp_*
// namespace: counters for cumulative totals, gauges for last-epoch state,
// and replica-labeled gauges for the straggler surface.
func (r *Registry) RecordDataParallel(s DPSample) {
	r.Gauge("spg_dp_replicas", "Data-parallel replica count.").Set(float64(s.Replicas))
	r.Counter("spg_dp_syncs_total", "Parameter synchronization rounds.").Add(float64(s.Syncs))
	r.Counter("spg_dp_sparse_syncs_total",
		"Synchronization rounds that shipped CT-CSR-compressed parameter deltas.").
		Add(float64(s.SparseSyncs))
	r.Counter("spg_dp_allreduce_seconds_total", "Wall-clock seconds spent in parameter syncs.").
		Add(s.AllReduceSeconds)
	r.Counter("spg_dp_wire_bytes_total",
		"Modeled interconnect traffic of parameter syncs (bytes a scale-out fabric would carry).").
		Add(float64(s.WireBytes))
	r.Counter("spg_dp_skipped_images_total",
		"Trailing examples skipped because they did not fill a global batch (Eq. 9-style waste).").
		Add(float64(s.SkippedImages))
	r.Counter("spg_dp_skipped_conv_flops_total",
		"Convolution work the skipped trailing examples would have cost.").
		Add(s.SkippedConvFlops)
	r.Counter("spg_dp_rechunks_total",
		"Straggler-mitigation share reassignments.").Add(float64(s.Rechunks))
	if s.AllReduceMethod != "" {
		r.Gauge("spg_dp_allreduce_method",
			"Schedule of the last sync (1 = active), labeled by method.",
			"method", s.AllReduceMethod).Set(1)
	}
	if s.MeanDeltaDensity >= 0 {
		r.Gauge("spg_dp_delta_density",
			"Mean measured gradient-delta density of the last epoch's syncs.").
			Set(s.MeanDeltaDensity)
	}
	r.Gauge("spg_dp_staleness_max",
		"Largest fleet step gap observed at a sync (bounded-staleness mode).").
		Set(float64(s.StalenessMax))
	epoch := strconv.Itoa(s.Epoch)
	r.Gauge("spg_dp_wire_bytes_series",
		"Modeled sync wire traffic (per-epoch series).", "epoch", epoch).
		Set(float64(s.WireBytes))
	for w, wait := range s.BarrierWait {
		r.Gauge("spg_dp_barrier_wait_seconds",
			"Cumulative barrier wait of the last epoch, per replica.",
			"replica", strconv.Itoa(w)).Set(wait)
	}
	for w, share := range s.Shares {
		r.Gauge("spg_dp_share",
			"Images-per-step share assigned to the replica after mitigation.",
			"replica", strconv.Itoa(w)).Set(float64(share))
	}
}
