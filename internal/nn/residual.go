package nn

import (
	"fmt"

	"spgcnn/internal/tensor"
)

// Residual skip connections for the strictly-sequential Network: a Tap
// marks the source of a skip and an Add downstream sums the tapped
// activation back in. Forward order visits Tap before Add, so the Add
// reads the Tap's saved batch; backward order visits Add before Tap, so
// the Add deposits the skip gradient for the Tap to fold into its own
// pass-through gradient. The pair shares no parameters — both are
// identities plus one elementwise sum — so any layer stack may sit
// between them as long as the element counts match.

// Tap is the source endpoint of a residual skip connection. Forward is
// the identity; it also retains the batch's outputs for the paired Add.
// Backward adds the gradient the Add deposited to the pass-through
// gradient (the two uses of the tapped activation).
type Tap struct {
	name string
	dims []int

	// saved aliases the layer's own forward outputs (the network's
	// activation storage), valid until the next Forward — the Add reads it
	// within the same pass.
	saved []*tensor.Tensor
	// pending aliases the Add's output gradients for the current backward
	// pass; consumed (and cleared) by this layer's Backward.
	pending []*tensor.Tensor
}

// NewTap builds a skip-connection source over per-image tensors of the
// given dims.
func NewTap(name string, dims []int) *Tap {
	if len(dims) == 0 {
		panic("nn: Tap needs input dims")
	}
	return &Tap{name: name, dims: append([]int(nil), dims...)}
}

// Name implements Layer.
func (l *Tap) Name() string { return l.name }

// InDims implements Layer.
func (l *Tap) InDims() []int { return l.dims }

// OutDims implements Layer.
func (l *Tap) OutDims() []int { return l.dims }

// Forward implements Layer: identity, retaining outs for the paired Add.
func (l *Tap) Forward(outs, ins []*tensor.Tensor) {
	if len(outs) != len(ins) {
		panic(fmt.Sprintf("nn: %s Forward batch mismatch", l.name))
	}
	for i := range ins {
		copy(outs[i].Data, ins[i].Data)
	}
	l.saved = outs
}

// Backward implements Layer: pass-through gradient plus the skip gradient
// the paired Add deposited this pass.
func (l *Tap) Backward(eis, eos, _ []*tensor.Tensor) {
	if len(eis) != len(eos) {
		panic(fmt.Sprintf("nn: %s Backward batch mismatch", l.name))
	}
	if l.pending == nil {
		panic(fmt.Sprintf("nn: %s Backward before its Add's (unpaired tap?)", l.name))
	}
	for i := range eos {
		skip := l.pending[i].Data
		ei, eo := eis[i].Data, eos[i].Data
		for j := range eo {
			ei[j] = eo[j] + skip[j]
		}
	}
	l.pending = nil
}

// ApplyGrads implements Layer (no parameters).
func (l *Tap) ApplyGrads(float32, int) {}

// EpochEnd implements Layer.
func (l *Tap) EpochEnd() {}

// Add is the merge endpoint of a residual skip connection: Forward sums
// the paired Tap's saved activation into the main path, Backward routes
// the gradient both ways (copy downstream, deposit for the Tap).
type Add struct {
	name string
	dims []int
	tap  *Tap
}

// NewAdd builds the merge endpoint over per-image tensors of the given
// dims, summing in the activations of tap (whose element count must
// match; shapes may differ across the skipped stack, e.g. flattened).
func NewAdd(name string, dims []int, tap *Tap) *Add {
	if tap == nil {
		panic("nn: Add needs a tap")
	}
	if prod(dims) != prod(tap.dims) {
		panic(fmt.Sprintf("nn: %s input %v does not match tap %s dims %v",
			name, dims, tap.name, tap.dims))
	}
	return &Add{name: name, dims: append([]int(nil), dims...), tap: tap}
}

// Name implements Layer.
func (l *Add) Name() string { return l.name }

// InDims implements Layer.
func (l *Add) InDims() []int { return l.dims }

// OutDims implements Layer.
func (l *Add) OutDims() []int { return l.dims }

// Forward implements Layer: outs[i] = ins[i] + tapped[i].
func (l *Add) Forward(outs, ins []*tensor.Tensor) {
	if len(outs) != len(ins) {
		panic(fmt.Sprintf("nn: %s Forward batch mismatch", l.name))
	}
	if len(l.tap.saved) < len(ins) {
		panic(fmt.Sprintf("nn: %s Forward before tap %s (is the tap upstream?)", l.name, l.tap.name))
	}
	for i := range ins {
		skip := l.tap.saved[i].Data
		out, in := outs[i].Data, ins[i].Data
		for j := range in {
			out[j] = in[j] + skip[j]
		}
	}
}

// Backward implements Layer: the sum's gradient flows unchanged down the
// main path and is deposited for the Tap's skip path.
func (l *Add) Backward(eis, eos, _ []*tensor.Tensor) {
	if len(eis) != len(eos) {
		panic(fmt.Sprintf("nn: %s Backward batch mismatch", l.name))
	}
	for i := range eos {
		copy(eis[i].Data, eos[i].Data)
	}
	l.tap.pending = eos
}

// ApplyGrads implements Layer (no parameters).
func (l *Add) ApplyGrads(float32, int) {}

// EpochEnd implements Layer.
func (l *Add) EpochEnd() {}
