package serve

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"spgcnn/internal/tensor"
)

func mkReq() *request {
	return &request{input: tensor.New(1), done: make(chan result, 1)}
}

// TestQueueSizeTriggeredFlush: maxBatch requests waiting cut immediately,
// without waiting out the deadline.
func TestQueueSizeTriggeredFlush(t *testing.T) {
	q := newQueue(4, 16, time.Hour) // deadline effectively never
	for i := 0; i < 4; i++ {
		if err := q.submit(mkReq()); err != nil {
			t.Fatal(err)
		}
	}
	got := make(chan int, 1)
	go func() {
		b, ok := q.next()
		if !ok {
			got <- -1
			return
		}
		got <- len(b)
	}()
	select {
	case n := <-got:
		if n != 4 {
			t.Fatalf("cut %d requests, want 4", n)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("size-triggered flush did not fire")
	}
	if d := q.depth(); d != 0 {
		t.Fatalf("queue depth %d after cut, want 0", d)
	}
}

// TestQueueDeadlineTriggeredFlush: a partial batch flushes once the oldest
// request has waited out maxDelay, not before.
func TestQueueDeadlineTriggeredFlush(t *testing.T) {
	const delay = 50 * time.Millisecond
	q := newQueue(8, 16, delay)
	start := time.Now()
	if err := q.submit(mkReq()); err != nil {
		t.Fatal(err)
	}
	batch, ok := q.next()
	elapsed := time.Since(start)
	if !ok || len(batch) != 1 {
		t.Fatalf("next = %d requests, %v; want 1, true", len(batch), ok)
	}
	if elapsed < delay {
		t.Fatalf("flushed after %v, before the %v deadline", elapsed, delay)
	}
	if elapsed > 10*delay {
		t.Fatalf("flushed after %v, deadline was %v", elapsed, delay)
	}
}

// TestQueueGreedyFlush: maxDelay zero cuts whatever is pending without
// waiting for a full batch.
func TestQueueGreedyFlush(t *testing.T) {
	q := newQueue(8, 16, 0)
	q.submit(mkReq())
	q.submit(mkReq())
	batch, ok := q.next()
	if !ok || len(batch) != 2 {
		t.Fatalf("greedy next = %d, %v; want 2, true", len(batch), ok)
	}
}

// TestQueueOverflowRejection: the queue admits exactly its capacity and
// rejects the rest with ErrQueueFull; rejected requests are NOT in the
// queue (admitting again after a cut succeeds).
func TestQueueOverflowRejection(t *testing.T) {
	q := newQueue(2, 4, time.Hour)
	for i := 0; i < 4; i++ {
		if err := q.submit(mkReq()); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	if err := q.submit(mkReq()); err != ErrQueueFull {
		t.Fatalf("overflow submit = %v, want ErrQueueFull", err)
	}
	if b, ok := q.next(); !ok || len(b) != 2 {
		t.Fatalf("next = %d, %v", len(b), ok)
	}
	if err := q.submit(mkReq()); err != nil {
		t.Fatalf("submit after cut: %v", err)
	}
}

// TestQueueShutdownDrain is the no-lost-no-double-completed pin: many
// concurrent submitters race Close while workers drain. Every admitted
// request must come out of next() exactly once, every rejected submitter
// must have gotten ErrClosed/ErrQueueFull, and the two sets must
// partition the submissions.
func TestQueueShutdownDrain(t *testing.T) {
	const submitters = 8
	const perSubmitter = 200
	q := newQueue(4, 64, time.Millisecond)

	var admitted, rejected atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < submitters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perSubmitter; j++ {
				err := q.submit(mkReq())
				switch err {
				case nil:
					admitted.Add(1)
				case ErrQueueFull, ErrClosed:
					rejected.Add(1)
				default:
					t.Errorf("submit: unexpected error %v", err)
				}
			}
		}()
	}

	var drained atomic.Int64
	var workers sync.WaitGroup
	for w := 0; w < 3; w++ {
		workers.Add(1)
		go func() {
			defer workers.Done()
			for {
				batch, ok := q.next()
				if !ok {
					return
				}
				drained.Add(int64(len(batch)))
			}
		}()
	}

	// Close mid-stream: submitters racing close must either get in (and be
	// drained) or see ErrClosed.
	time.Sleep(5 * time.Millisecond)
	q.close()
	wg.Wait()
	workers.Wait()

	if got, want := drained.Load(), admitted.Load(); got != want {
		t.Fatalf("drained %d requests, admitted %d (lost or duplicated)", got, want)
	}
	if admitted.Load()+rejected.Load() != submitters*perSubmitter {
		t.Fatalf("admitted %d + rejected %d != %d submissions",
			admitted.Load(), rejected.Load(), submitters*perSubmitter)
	}
	if _, ok := q.next(); ok {
		t.Fatal("next after drain returned a batch")
	}
	if err := q.submit(mkReq()); err != ErrClosed {
		t.Fatalf("submit after close = %v, want ErrClosed", err)
	}
}
