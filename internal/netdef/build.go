package netdef

import (
	"fmt"

	"spgcnn/internal/conv"
	"spgcnn/internal/core"
	"spgcnn/internal/exec"
	"spgcnn/internal/nn"
	"spgcnn/internal/plan"
	"spgcnn/internal/rng"
)

// BuildOptions controls how a parsed description becomes a runnable
// network.
type BuildOptions struct {
	// Workers is the core count every layer schedules over (default 1).
	// Ignored when Ctx is set.
	Workers int
	// Ctx is the execution context shared by every layer — one arena for
	// all scratch, one probe for all instrumentation. Nil builds a fresh
	// context with Workers workers.
	Ctx *exec.Ctx
	// FixedStrategy pins every convolution to one strategy (how the
	// baseline configurations of Fig. 9 are constructed). Nil selects
	// spg-CNN's auto-tuning scheduler.
	FixedStrategy *core.Strategy
	// Choices deploys a saved tuning configuration: any conv layer named
	// in it gets the recorded FP/BP strategies (taking precedence over
	// FixedStrategy and auto-tuning for that layer).
	Choices core.Choices
	// Planner owns strategy selection for auto-tuned conv layers. Nil
	// builds one fresh plan.Planner per Build call, so same-geometry
	// layers within the network tune once and share the verdict. Pass an
	// explicit planner to share verdicts more widely — across networks,
	// data-parallel replicas, or processes (via its plan cache file).
	Planner core.Planner
	// Seed seeds weight initialization.
	Seed uint64
	// Inference builds a forward-only network (the serving path): conv
	// layers plan one strategy per batch-size bucket instead of carrying
	// the training scheduler, dropout layers run as identity, and the
	// returned network allocates no gradient storage (Backward panics).
	// FixedStrategy and Choices still take precedence per layer.
	Inference bool
	// InferBuckets are the batch-size buckets inference conv layers plan
	// for (sorted internally). Empty plans each observed batch size on
	// first sight. Ignored unless Inference is set.
	InferBuckets []int
}

// Build constructs the network, inferring each layer's input shape from
// the previous layer's output.
func Build(def *NetDef, opts BuildOptions) (*nn.Network, error) {
	ctx := opts.Ctx
	if ctx == nil {
		ctx = exec.New(opts.Workers)
	}
	workers := ctx.Workers()
	planner := opts.Planner
	if planner == nil {
		planner = plan.New(plan.Options{})
	}
	r := rng.New(opts.Seed ^ 0xB111D)
	dims := []int{def.Input.Channels, def.Input.Height, def.Input.Width}
	// Residual wiring: every layer an `add` node names via from= gets a
	// hidden nn.Tap appended right after it; the add node becomes the
	// nn.Add summing the tapped activations back in.
	tapWanted := map[string]bool{}
	for _, l := range def.Layers {
		if l.Type == "add" {
			if from := l.StringField("from", ""); from != "" {
				tapWanted[from] = true
			}
		}
	}
	taps := map[string]*nn.Tap{}
	var layers []nn.Layer
	for i, l := range def.Layers {
		name := nameOr(l, i)
		switch l.Type {
		case "conv":
			if len(dims) != 3 {
				return nil, fmt.Errorf("netdef: layer %q: conv needs a [C][H][W] input, have %v", l.Name, dims)
			}
			nf, err := l.MustField("features")
			if err != nil {
				return nil, err
			}
			k, err := l.MustField("kernel")
			if err != nil {
				return nil, err
			}
			stride := l.Field("stride", 1)
			pad := l.Field("pad", 0)
			s := conv.Spec{
				Nx: dims[2], Ny: dims[1], Nc: dims[0],
				Nf: nf, Fx: k, Fy: k, Sx: stride, Sy: stride,
				Px: pad, Py: pad,
				Dx: l.Field("dilation", 1), Dy: l.Field("dilation", 1),
				Groups: l.Field("groups", 1),
			}.Canon()
			if err := s.Validate(); err != nil {
				return nil, fmt.Errorf("netdef: layer %q: %w", l.Name, err)
			}
			var cl *nn.Conv
			if ch, ok := opts.Choices[name]; ok {
				fp, okFP := core.StrategyByName(ch.FP, workers)
				bp, okBP := core.StrategyByName(ch.BP, workers)
				if !okFP || !okBP {
					return nil, fmt.Errorf("netdef: layer %q: tuning config names unknown strategy (%q/%q)",
						name, ch.FP, ch.BP)
				}
				if !fp.Supports(s) || !bp.Supports(s) {
					return nil, fmt.Errorf("netdef: layer %q: tuning config strategy (%q/%q) does not support spec %v",
						name, ch.FP, ch.BP, s)
				}
				cl = nn.NewConvSplitCtx(name, s, fp, bp, ctx, r)
			} else if opts.FixedStrategy != nil {
				if !opts.FixedStrategy.Supports(s) {
					return nil, fmt.Errorf("netdef: layer %q: fixed strategy %q does not support spec %v",
						name, opts.FixedStrategy.Name, s)
				}
				cl = nn.NewConvFixedCtx(name, s, *opts.FixedStrategy, ctx, r)
			} else if opts.Inference {
				cl = nn.NewConvInferCtx(name, s, planner, opts.InferBuckets, ctx, r)
			} else {
				cl = nn.NewConvPlannedCtx(name, s, planner, ctx, r)
			}
			layers = append(layers, cl)
			dims = cl.OutDims()
		case "relu":
			rl := nn.NewReLU(name, dims, workers)
			layers = append(layers, rl)
		case "maxpool":
			if len(dims) != 3 {
				return nil, fmt.Errorf("netdef: layer %q: maxpool needs a [C][H][W] input, have %v", l.Name, dims)
			}
			k, err := l.MustField("kernel")
			if err != nil {
				return nil, err
			}
			stride := l.Field("stride", k)
			pl := nn.NewMaxPool(name, dims, k, stride, workers)
			layers = append(layers, pl)
			dims = pl.OutDims()
		case "pad":
			if len(dims) != 3 {
				return nil, fmt.Errorf("netdef: layer %q: pad needs a [C][H][W] input, have %v", l.Name, dims)
			}
			py := l.Field("rows", l.Field("size", 0))
			px := l.Field("cols", l.Field("size", 0))
			if py < 0 || px < 0 || (py == 0 && px == 0) {
				return nil, fmt.Errorf("netdef: layer %q: pad needs a positive size (or rows/cols)", l.Name)
			}
			pl := nn.NewPad(name, dims, py, px, workers)
			layers = append(layers, pl)
			dims = pl.OutDims()
		case "avgpool":
			if len(dims) != 3 {
				return nil, fmt.Errorf("netdef: layer %q: avgpool needs a [C][H][W] input, have %v", l.Name, dims)
			}
			k, err := l.MustField("kernel")
			if err != nil {
				return nil, err
			}
			stride := l.Field("stride", k)
			pl := nn.NewAvgPool(name, dims, k, stride, workers)
			layers = append(layers, pl)
			dims = pl.OutDims()
		case "dropout":
			rate := l.FloatField("rate", 0.5)
			if rate < 0 || rate >= 1 {
				return nil, fmt.Errorf("netdef: layer %q: dropout rate %v outside [0, 1)", l.Name, rate)
			}
			dl := nn.NewDropout(name, dims, rate, workers, r.Split())
			if opts.Inference {
				dl.SetTraining(false)
			}
			layers = append(layers, dl)
		case "fc":
			out, err := l.MustField("outputs")
			if err != nil {
				return nil, err
			}
			fl := nn.NewFCCtx(name, dims, out, ctx, r)
			layers = append(layers, fl)
			dims = fl.OutDims()
		case "add":
			from := l.StringField("from", "")
			if from == "" {
				return nil, fmt.Errorf("netdef: layer %q: add needs from: \"<layer>\"", name)
			}
			tap, ok := taps[from]
			if !ok {
				return nil, fmt.Errorf("netdef: layer %q: add from %q does not name an earlier layer", name, from)
			}
			if elems(dims) != elems(tap.OutDims()) {
				return nil, fmt.Errorf("netdef: layer %q: add input %v does not match %q output %v",
					name, dims, from, tap.OutDims())
			}
			layers = append(layers, nn.NewAdd(name, dims, tap))
		default:
			return nil, fmt.Errorf("netdef: layer %q has unknown type %q", l.Name, l.Type)
		}
		if tapWanted[name] {
			tap := nn.NewTap(name+".tap", dims)
			layers = append(layers, tap)
			taps[name] = tap
		}
	}
	net := nn.NewNetwork(layers...)
	if opts.Inference {
		net.SetInference()
	}
	return net, nil
}

func nameOr(l LayerDef, i int) string {
	if l.Name != "" {
		return l.Name
	}
	return fmt.Sprintf("%s%d", l.Type, i)
}

func elems(dims []int) int {
	n := 1
	for _, d := range dims {
		n *= d
	}
	return n
}

// The built-in runnable benchmark networks. Layer-0 conv geometries come
// from the paper's Table 2; pooling bridges the published conv layers.

// MNISTNet is the LeNet-style MNIST network: Table 2's 28,20,1,5,1 conv.
const MNISTNet = `
name: "mnist"
input { channels: 1 height: 28 width: 28 }
layer { name: "conv0" type: "conv" features: 20 kernel: 5 stride: 1 }
layer { name: "relu0" type: "relu" }
layer { name: "pool0" type: "maxpool" kernel: 2 stride: 2 }
layer { name: "fc0" type: "fc" outputs: 10 }
`

// CIFARNet is the CIFAR-10 network with Table 2's two conv layers
// (36,64,3,5,1 and 8,64,64,5,1); a 4×4 pool bridges the 32×32 conv0
// output to conv1's 8×8 input.
const CIFARNet = `
name: "cifar10"
input { channels: 3 height: 36 width: 36 }
layer { name: "conv0" type: "conv" features: 64 kernel: 5 stride: 1 }
layer { name: "relu0" type: "relu" }
layer { name: "pool0" type: "maxpool" kernel: 4 stride: 4 }
layer { name: "conv1" type: "conv" features: 64 kernel: 5 stride: 1 }
layer { name: "relu1" type: "relu" }
layer { name: "fc0" type: "fc" outputs: 10 }
`

// ImageNet100Net is the reduced-scale network used for the Fig. 3b
// sparsity trajectories (see DESIGN.md §2 on scale substitution).
const ImageNet100Net = `
name: "imagenet100"
input { channels: 3 height: 32 width: 32 }
layer { name: "conv0" type: "conv" features: 32 kernel: 5 stride: 1 }
layer { name: "relu0" type: "relu" }
layer { name: "pool0" type: "maxpool" kernel: 2 stride: 2 }
layer { name: "conv1" type: "conv" features: 64 kernel: 3 stride: 1 }
layer { name: "relu1" type: "relu" }
layer { name: "pool1" type: "maxpool" kernel: 2 stride: 2 }
layer { name: "fc0" type: "fc" outputs: 100 }
`

// The workload zoo: small CIFAR-scale topologies exercising the corners
// of the generalized convolution space — depthwise-separable (grouped),
// dilated, bottleneck (1×1-heavy) and residual (add nodes). Each trains
// end-to-end under the planner; spg-plan -explore reports their per-layer
// design-space placement.

// ZooDepthwiseNet is a MobileNet-style depthwise-separable stack: each
// depthwise conv has groups == channels (GroupNc 1), each pointwise conv
// is a 1×1 dense mix.
const ZooDepthwiseNet = `
name: "zoo-depthwise"
input { channels: 3 height: 32 width: 32 }
layer { name: "conv0" type: "conv" features: 16 kernel: 3 pad: 1 }
layer { name: "relu0" type: "relu" }
layer { name: "dw1" type: "conv" features: 16 kernel: 3 pad: 1 groups: 16 }
layer { name: "relu1" type: "relu" }
layer { name: "pw1" type: "conv" features: 32 kernel: 1 }
layer { name: "relu2" type: "relu" }
layer { name: "pool0" type: "maxpool" kernel: 4 stride: 4 }
layer { name: "dw2" type: "conv" features: 32 kernel: 3 pad: 1 groups: 32 }
layer { name: "relu3" type: "relu" }
layer { name: "pw2" type: "conv" features: 64 kernel: 1 }
layer { name: "relu4" type: "relu" }
layer { name: "pool1" type: "maxpool" kernel: 2 stride: 2 }
layer { name: "fc0" type: "fc" outputs: 10 }
`

// ZooDilatedNet grows the receptive field with dilation instead of
// pooling: each conv keeps the 32×32 extent via pad = dilation (3×3
// kernels), doubling the dilation per stage.
const ZooDilatedNet = `
name: "zoo-dilated"
input { channels: 3 height: 32 width: 32 }
layer { name: "conv0" type: "conv" features: 16 kernel: 3 pad: 1 }
layer { name: "relu0" type: "relu" }
layer { name: "conv1" type: "conv" features: 16 kernel: 3 pad: 2 dilation: 2 }
layer { name: "relu1" type: "relu" }
layer { name: "conv2" type: "conv" features: 32 kernel: 3 pad: 4 dilation: 4 }
layer { name: "relu2" type: "relu" }
layer { name: "pool0" type: "maxpool" kernel: 4 stride: 4 }
layer { name: "fc0" type: "fc" outputs: 10 }
`

// ZooBottleneckNet is a 1×1-heavy bottleneck stack: reduce, convolve at
// reduced width, expand — the low-AIT 1×1 geometries that stress the
// GEMM-shaped candidates.
const ZooBottleneckNet = `
name: "zoo-bottleneck"
input { channels: 3 height: 32 width: 32 }
layer { name: "conv0" type: "conv" features: 32 kernel: 3 pad: 1 }
layer { name: "relu0" type: "relu" }
layer { name: "pool0" type: "maxpool" kernel: 2 stride: 2 }
layer { name: "reduce1" type: "conv" features: 16 kernel: 1 }
layer { name: "relu1" type: "relu" }
layer { name: "conv1" type: "conv" features: 16 kernel: 3 pad: 1 }
layer { name: "relu2" type: "relu" }
layer { name: "expand1" type: "conv" features: 64 kernel: 1 }
layer { name: "relu3" type: "relu" }
layer { name: "pool1" type: "maxpool" kernel: 4 stride: 4 }
layer { name: "fc0" type: "fc" outputs: 10 }
`

// ZooResidualNet is a residual CIFAR variant: two padded 3×3 convs whose
// output is summed with the block input via an add node (from: "relu0").
const ZooResidualNet = `
name: "zoo-residual"
input { channels: 3 height: 32 width: 32 }
layer { name: "conv0" type: "conv" features: 16 kernel: 3 pad: 1 }
layer { name: "relu0" type: "relu" }
layer { name: "conv1" type: "conv" features: 16 kernel: 3 pad: 1 }
layer { name: "relu1" type: "relu" }
layer { name: "conv2" type: "conv" features: 16 kernel: 3 pad: 1 }
layer { name: "add1" type: "add" from: "relu0" }
layer { name: "relu2" type: "relu" }
layer { name: "pool0" type: "maxpool" kernel: 4 stride: 4 }
layer { name: "fc0" type: "fc" outputs: 10 }
`

// ZooNet names one workload-zoo description.
type ZooNet struct {
	Name string
	Src  string
}

// Zoo returns the workload-zoo networks in their canonical order.
func Zoo() []ZooNet {
	return []ZooNet{
		{Name: "zoo-depthwise", Src: ZooDepthwiseNet},
		{Name: "zoo-dilated", Src: ZooDilatedNet},
		{Name: "zoo-bottleneck", Src: ZooBottleneckNet},
		{Name: "zoo-residual", Src: ZooResidualNet},
	}
}

// MustBuild parses and builds a built-in description; it panics on error
// (the built-ins are compile-time constants).
func MustBuild(src string, opts BuildOptions) *nn.Network {
	def, err := Parse(src)
	if err != nil {
		panic(err)
	}
	net, err := Build(def, opts)
	if err != nil {
		panic(err)
	}
	return net
}
