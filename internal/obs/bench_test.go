package obs

import (
	"testing"

	"spgcnn/internal/machine"
	"spgcnn/internal/plan"
)

// benchPrediction returns a span length that folds to EWMA ratio 1.0,
// so the envelope never fires mid-benchmark.
func benchPrediction() float64 {
	s := testSpec()
	rate, ok := plan.ModelRate(machine.Paper(), s, "fp", 0, 2, "parallel-gemm")
	if !ok {
		panic("parallel-gemm not modeled")
	}
	return 4 * float64(s.FlopsFP()) / (rate * 1e9 * 2)
}

// BenchmarkObserveSpan measures the steady-state sink cost for a
// registered series: path parse, map lookup, EWMA fold and envelope
// check under the mutex. This is what every kernel span pays once the
// observatory is attached, so it has to stay far inside the probe
// budget (a conv span is tens of microseconds at minimum).
func BenchmarkObserveSpan(b *testing.B) {
	o := New(Options{Workers: 2})
	o.RegisterLayer("c1", testSpec())
	o.SetBatch(4)
	pred := benchPrediction()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o.ObserveSpan("layer/c1/fp/parallel-gemm", pred)
	}
}

// BenchmarkObserveSpanParallel is the same hot path under contention —
// data-parallel replicas share one observatory, so the mutex is the
// scaling question.
func BenchmarkObserveSpanParallel(b *testing.B) {
	o := New(Options{Workers: 2})
	o.RegisterLayer("c1", testSpec())
	o.SetBatch(4)
	pred := benchPrediction()
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			o.ObserveSpan("layer/c1/fp/parallel-gemm", pred)
		}
	})
}

// BenchmarkObserveSpanForeign measures the rejection path: spans that
// are not layer kernels (planner tuning, barriers, allreduce) must be
// shed almost for free, since they share the probe stream.
func BenchmarkObserveSpanForeign(b *testing.B) {
	o := New(Options{Workers: 2})
	o.RegisterLayer("c1", testSpec())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o.ObserveSpan("allreduce/step", 1e-4)
	}
}
