package netdef

import (
	"strings"
	"testing"

	"spgcnn/internal/core"
	"spgcnn/internal/nn"
	"spgcnn/internal/rng"
	"spgcnn/internal/tensor"
)

func TestParseMinimal(t *testing.T) {
	def, err := Parse(`
name: "tiny"
input { channels: 1 height: 8 width: 8 }
# a comment
layer { name: "c" type: "conv" features: 2 kernel: 3 }
layer { type: "relu" }
layer { name: "f" type: "fc" outputs: 4 }
`)
	if err != nil {
		t.Fatal(err)
	}
	if def.Name != "tiny" {
		t.Fatalf("name = %q", def.Name)
	}
	if def.Input != (InputDef{Channels: 1, Height: 8, Width: 8}) {
		t.Fatalf("input = %+v", def.Input)
	}
	if len(def.Layers) != 3 {
		t.Fatalf("layers = %d", len(def.Layers))
	}
	if def.Layers[0].Field("kernel", 0) != 3 || def.Layers[0].Field("stride", 1) != 1 {
		t.Fatal("conv fields wrong")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		src, wantSub string
	}{
		{``, "missing or invalid input"},
		{`input { channels: 1 height: 8 width: 8 }`, "no layers"},
		{`bogus: "x"`, "unknown top-level key"},
		{`name: 5`, "quoted string"},
		{`input { channels: 1`, "expected field name"},
		{"input { channels: 1 height: 8 width: 8 }\nlayer { name: \"x\" }", "no type"},
		{`name: "a" @`, "unexpected character"},
		{`name: "unterminated`, "unterminated string"},
	}
	for _, tc := range cases {
		_, err := Parse(tc.src)
		if err == nil || !strings.Contains(err.Error(), tc.wantSub) {
			t.Errorf("Parse(%q) error = %v, want containing %q", tc.src, err, tc.wantSub)
		}
	}
}

func TestBuildBuiltinsShapeCheck(t *testing.T) {
	for _, src := range []string{MNISTNet, CIFARNet, ImageNet100Net} {
		def, err := Parse(src)
		if err != nil {
			t.Fatalf("%v", err)
		}
		net, err := Build(def, BuildOptions{Workers: 2, Seed: 1})
		if err != nil {
			t.Fatalf("%s: %v", def.Name, err)
		}
		if got := prodInts(net.OutDims()); got != classesOf(def.Name) {
			t.Fatalf("%s: output size %d, want %d", def.Name, got, classesOf(def.Name))
		}
	}
}

func classesOf(name string) int {
	if name == "imagenet100" {
		return 100
	}
	return 10
}

func prodInts(dims []int) int {
	p := 1
	for _, d := range dims {
		p *= d
	}
	return p
}

func TestBuildFixedStrategy(t *testing.T) {
	st := core.FPStrategies(1)[1]
	net := MustBuild(MNISTNet, BuildOptions{Workers: 1, FixedStrategy: &st, Seed: 2})
	// Run one tiny forward/backward to prove it executes.
	in := tensor.New(net.InDims()...)
	r := rng.New(3)
	in.FillNormal(r, 0, 1)
	logits := net.Forward([]*tensor.Tensor{in})
	d := tensor.New(net.OutDims()...)
	nn.SoftmaxXent{}.Loss(logits[0], 3, d)
	net.Backward([]*tensor.Tensor{d}, []*tensor.Tensor{in})
	net.ApplyGrads(0.01, 1)
}

func TestBuildErrors(t *testing.T) {
	cases := []struct {
		src, wantSub string
	}{
		{`input { channels: 1 height: 8 width: 8 }
layer { type: "conv" kernel: 3 }`, "missing field"},
		{`input { channels: 1 height: 8 width: 8 }
layer { type: "conv" features: 2 kernel: 9 }`, "kernel"},
		{`input { channels: 1 height: 8 width: 8 }
layer { type: "warp" }`, "unknown type"},
		{`input { channels: 1 height: 8 width: 8 }
layer { type: "fc" outputs: 4 }
layer { type: "maxpool" kernel: 2 }`, "maxpool needs"},
	}
	for _, tc := range cases {
		def, err := Parse(tc.src)
		if err != nil {
			t.Fatalf("Parse(%q) failed: %v", tc.src, err)
		}
		if _, err := Build(def, BuildOptions{}); err == nil || !strings.Contains(err.Error(), tc.wantSub) {
			t.Errorf("Build(%q) error = %v, want containing %q", tc.src, err, tc.wantSub)
		}
	}
}

func TestDefaultLayerNames(t *testing.T) {
	def, err := Parse(`
input { channels: 1 height: 8 width: 8 }
layer { type: "relu" }
layer { type: "fc" outputs: 2 }
`)
	if err != nil {
		t.Fatal(err)
	}
	net, err := Build(def, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if net.Layers()[0].Name() != "relu0" || net.Layers()[1].Name() != "fc1" {
		t.Fatalf("default names: %q, %q", net.Layers()[0].Name(), net.Layers()[1].Name())
	}
}

func TestParseNeverPanics(t *testing.T) {
	// Robustness: arbitrary mutations of a valid description must either
	// parse or return an error — never panic.
	base := MNISTNet
	r := rng.New(0xF22)
	defer func() {
		if p := recover(); p != nil {
			t.Fatalf("Parse panicked: %v", p)
		}
	}()
	for trial := 0; trial < 500; trial++ {
		b := []byte(base)
		// Apply 1-5 random byte mutations (replace, delete, insert).
		for m := r.Intn(5) + 1; m > 0 && len(b) > 0; m-- {
			pos := r.Intn(len(b))
			switch r.Intn(3) {
			case 0:
				b[pos] = byte(r.Intn(128))
			case 1:
				b = append(b[:pos], b[pos+1:]...)
			default:
				b = append(b[:pos], append([]byte{byte(r.Intn(128))}, b[pos:]...)...)
			}
		}
		def, err := Parse(string(b))
		if err == nil && def != nil {
			// Whatever parsed must also build-or-error without panicking.
			_, _ = Build(def, BuildOptions{})
		}
	}
}

func TestAvgPoolAndDropoutLayers(t *testing.T) {
	def, err := Parse(`
input { channels: 2 height: 8 width: 8 }
layer { name: "c" type: "conv" features: 4 kernel: 3 }
layer { name: "a" type: "avgpool" kernel: 2 stride: 2 }
layer { name: "d" type: "dropout" rate: 0.25 }
layer { name: "f" type: "fc" outputs: 3 }
`)
	if err != nil {
		t.Fatal(err)
	}
	if got := def.Layers[2].FloatField("rate", 0); got != 0.25 {
		t.Fatalf("dropout rate parsed as %v", got)
	}
	net, err := Build(def, BuildOptions{Workers: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// conv: 8->6 (4 feat); avgpool: 6->3; dropout keeps dims; fc: 3.
	if prodInts(net.OutDims()) != 3 {
		t.Fatalf("output dims %v", net.OutDims())
	}
	// A forward/backward pass must run.
	in := tensor.New(net.InDims()...)
	rng.New(2).Float32() // unused warm; keep deterministic imports minimal
	logits := net.Forward([]*tensor.Tensor{in})
	d := tensor.New(net.OutDims()...)
	nn.SoftmaxXent{}.Loss(logits[0], 0, d)
	net.Backward([]*tensor.Tensor{d}, []*tensor.Tensor{in})
}

func TestDropoutRateValidation(t *testing.T) {
	def, err := Parse(`
input { channels: 1 height: 4 width: 4 }
layer { type: "dropout" rate: 1.5 }
layer { type: "fc" outputs: 2 }
`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Build(def, BuildOptions{}); err == nil {
		t.Fatal("rate 1.5 accepted")
	}
}

func TestFloatFieldPromotion(t *testing.T) {
	l := LayerDef{Fields: map[string]int{"x": 3}, Floats: map[string]float64{"y": 0.5}}
	if l.FloatField("x", 0) != 3 || l.FloatField("y", 0) != 0.5 || l.FloatField("z", 7) != 7 {
		t.Fatal("FloatField resolution wrong")
	}
}

func TestBuildDeploysTuningChoices(t *testing.T) {
	choices := core.Choices{
		"conv0": {FP: "stencil", BP: "sparse"},
	}
	def, err := Parse(MNISTNet)
	if err != nil {
		t.Fatal(err)
	}
	net, err := Build(def, BuildOptions{Workers: 1, Seed: 2, Choices: choices})
	if err != nil {
		t.Fatal(err)
	}
	// The layer runs the deployed strategies (fixed, not auto): a
	// forward/backward must execute without a tuning pass, and
	// TuningChoices (auto-harvest) reports nothing for fixed layers.
	in := tensor.New(net.InDims()...)
	logits := net.Forward([]*tensor.Tensor{in})
	d := tensor.New(net.OutDims()...)
	nn.SoftmaxXent{}.Loss(logits[0], 0, d)
	net.Backward([]*tensor.Tensor{d}, []*tensor.Tensor{in})
	if len(net.TuningChoices()) != 0 {
		t.Fatal("fixed-choice layers should not report auto-tuning selections")
	}
}

func TestBuildRejectsBadTuningChoices(t *testing.T) {
	def, err := Parse(MNISTNet)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Build(def, BuildOptions{Choices: core.Choices{"conv0": {FP: "bogus", BP: "sparse"}}})
	if err == nil {
		t.Fatal("bogus strategy name accepted")
	}
}

func TestRoundTripTable2Geometry(t *testing.T) {
	// CIFARNet's conv0 must match Table 2's 36,64,3,5,1 exactly.
	net := MustBuild(CIFARNet, BuildOptions{Seed: 4})
	cv := net.ConvLayers()
	if len(cv) != 2 {
		t.Fatalf("CIFAR net has %d conv layers, want 2", len(cv))
	}
	s0 := cv[0].Spec()
	if s0.Nx != 36 || s0.Nf != 64 || s0.Nc != 3 || s0.Fx != 5 || s0.Sx != 1 {
		t.Fatalf("conv0 spec = %v", s0)
	}
	s1 := cv[1].Spec()
	if s1.Nx != 8 || s1.Nf != 64 || s1.Nc != 64 || s1.Fx != 5 || s1.Sx != 1 {
		t.Fatalf("conv1 spec = %v", s1)
	}
}

func TestBuildBlockedAndSparseWeightStrategies(t *testing.T) {
	// The grown FP engines resolve through the same name registry as the
	// paper's strategies, both as a net-wide FixedStrategy and as a saved
	// per-layer tuning choice, and the layer reports the planned layout.
	for _, name := range []string{"blocked", "sparse-weight"} {
		st, ok := core.StrategyByName(name, 1)
		if !ok {
			t.Fatalf("StrategyByName(%q) unknown", name)
		}
		net := MustBuild(MNISTNet, BuildOptions{Workers: 1, FixedStrategy: &st, Seed: 2})
		in := tensor.New(net.InDims()...)
		r := rng.New(3)
		in.FillNormal(r, 0, 1)
		logits := net.Forward([]*tensor.Tensor{in})
		d := tensor.New(net.OutDims()...)
		nn.SoftmaxXent{}.Loss(logits[0], 3, d)
		net.Backward([]*tensor.Tensor{d}, []*tensor.Tensor{in})
		net.ApplyGrads(0.01, 1)
	}

	choices := core.Choices{"conv0": {FP: "blocked", BP: "gemm-in-parallel"}}
	net := MustBuild(MNISTNet, BuildOptions{Workers: 1, Choices: choices, Seed: 2})
	var cl *nn.Conv
	for _, l := range net.Layers() {
		if c, ok := l.(*nn.Conv); ok {
			cl = c
			break
		}
	}
	if cl == nil {
		t.Fatal("no conv layer built")
	}
	fpL, bpL := cl.Layouts()
	if fpL != tensor.NCHW8 || bpL != tensor.NCHW {
		t.Fatalf("conv0 layouts fp=%v bp=%v, want nchw8/nchw", fpL, bpL)
	}
}
