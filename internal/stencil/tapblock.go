package stencil

// Register-blocked tap kernels for unit-stride convolutions: the faithful
// analogue of the paper's Fig. 7 generated basic block. For each block of
// 4 output columns × N accumulator rows, the 4·N partial sums stay in
// scalar locals across the entire kx reduction — the only memory traffic
// inside the tap loop is the streaming input (whose loads are shared by
// all N rows) and the weight rows. Loads per MAC fall from ~2 (per-MAC
// read-modify-write on the accumulator row) to ~2/Fx + 1/N.
//
// Each tapRowN processes n output columns: dst slices hold n accumulators,
// src at least n+fx-1 input values (element x of row r accumulates
// Σ_kx w_r[kx]·src[x+kx]), and each w* slice that row's fx tap weights.

// tapRow1 reduces one accumulator row.
func tapRow1(d0, src, w0 []float32, fx, n int) {
	d0 = d0[:n]
	w0 = w0[:fx]
	x := 0
	for ; x+4 <= n; x += 4 {
		s00, s01, s02, s03 := d0[x], d0[x+1], d0[x+2], d0[x+3]
		sv := src[x : x+fx+3]
		for kx := 0; kx < fx; kx++ {
			v0, v1, v2, v3 := sv[kx], sv[kx+1], sv[kx+2], sv[kx+3]
			wv := w0[kx]
			s00 += wv * v0
			s01 += wv * v1
			s02 += wv * v2
			s03 += wv * v3
		}
		d0[x], d0[x+1], d0[x+2], d0[x+3] = s00, s01, s02, s03
	}
	for ; x < n; x++ {
		s := d0[x]
		for kx := 0; kx < fx; kx++ {
			s += w0[kx] * src[x+kx]
		}
		d0[x] = s
	}
}

// tapRow2 reduces two accumulator rows, sharing every input load.
func tapRow2(d0, d1, src, w0, w1 []float32, fx, n int) {
	d0 = d0[:n]
	d1 = d1[:n]
	w0 = w0[:fx]
	w1 = w1[:fx]
	x := 0
	for ; x+4 <= n; x += 4 {
		s00, s01, s02, s03 := d0[x], d0[x+1], d0[x+2], d0[x+3]
		s10, s11, s12, s13 := d1[x], d1[x+1], d1[x+2], d1[x+3]
		sv := src[x : x+fx+3]
		for kx := 0; kx < fx; kx++ {
			v0, v1, v2, v3 := sv[kx], sv[kx+1], sv[kx+2], sv[kx+3]
			w0v, w1v := w0[kx], w1[kx]
			s00 += w0v * v0
			s01 += w0v * v1
			s02 += w0v * v2
			s03 += w0v * v3
			s10 += w1v * v0
			s11 += w1v * v1
			s12 += w1v * v2
			s13 += w1v * v3
		}
		d0[x], d0[x+1], d0[x+2], d0[x+3] = s00, s01, s02, s03
		d1[x], d1[x+1], d1[x+2], d1[x+3] = s10, s11, s12, s13
	}
	for ; x < n; x++ {
		sa, sb := d0[x], d1[x]
		for kx := 0; kx < fx; kx++ {
			v := src[x+kx]
			sa += w0[kx] * v
			sb += w1[kx] * v
		}
		d0[x], d1[x] = sa, sb
	}
}

// tapRow3 reduces three accumulator rows.
func tapRow3(d0, d1, d2, src, w0, w1, w2 []float32, fx, n int) {
	d0 = d0[:n]
	d1 = d1[:n]
	d2 = d2[:n]
	w0 = w0[:fx]
	w1 = w1[:fx]
	w2 = w2[:fx]
	x := 0
	for ; x+4 <= n; x += 4 {
		s00, s01, s02, s03 := d0[x], d0[x+1], d0[x+2], d0[x+3]
		s10, s11, s12, s13 := d1[x], d1[x+1], d1[x+2], d1[x+3]
		s20, s21, s22, s23 := d2[x], d2[x+1], d2[x+2], d2[x+3]
		sv := src[x : x+fx+3]
		for kx := 0; kx < fx; kx++ {
			v0, v1, v2, v3 := sv[kx], sv[kx+1], sv[kx+2], sv[kx+3]
			w0v, w1v, w2v := w0[kx], w1[kx], w2[kx]
			s00 += w0v * v0
			s01 += w0v * v1
			s02 += w0v * v2
			s03 += w0v * v3
			s10 += w1v * v0
			s11 += w1v * v1
			s12 += w1v * v2
			s13 += w1v * v3
			s20 += w2v * v0
			s21 += w2v * v1
			s22 += w2v * v2
			s23 += w2v * v3
		}
		d0[x], d0[x+1], d0[x+2], d0[x+3] = s00, s01, s02, s03
		d1[x], d1[x+1], d1[x+2], d1[x+3] = s10, s11, s12, s13
		d2[x], d2[x+1], d2[x+2], d2[x+3] = s20, s21, s22, s23
	}
	for ; x < n; x++ {
		sa, sb, sc := d0[x], d1[x], d2[x]
		for kx := 0; kx < fx; kx++ {
			v := src[x+kx]
			sa += w0[kx] * v
			sb += w1[kx] * v
			sc += w2[kx] * v
		}
		d0[x], d1[x], d2[x] = sa, sb, sc
	}
}

// tapRow4 reduces four accumulator rows — the full register tile
// (16 accumulators + 4 streaming values + 4 weights, matching the plan
// generator's register budget).
func tapRow4(d0, d1, d2, d3, src, w0, w1, w2, w3 []float32, fx, n int) {
	d0 = d0[:n]
	d1 = d1[:n]
	d2 = d2[:n]
	d3 = d3[:n]
	w0 = w0[:fx]
	w1 = w1[:fx]
	w2 = w2[:fx]
	w3 = w3[:fx]
	x := 0
	for ; x+4 <= n; x += 4 {
		s00, s01, s02, s03 := d0[x], d0[x+1], d0[x+2], d0[x+3]
		s10, s11, s12, s13 := d1[x], d1[x+1], d1[x+2], d1[x+3]
		s20, s21, s22, s23 := d2[x], d2[x+1], d2[x+2], d2[x+3]
		s30, s31, s32, s33 := d3[x], d3[x+1], d3[x+2], d3[x+3]
		sv := src[x : x+fx+3]
		for kx := 0; kx < fx; kx++ {
			v0, v1, v2, v3 := sv[kx], sv[kx+1], sv[kx+2], sv[kx+3]
			w0v, w1v, w2v, w3v := w0[kx], w1[kx], w2[kx], w3[kx]
			s00 += w0v * v0
			s01 += w0v * v1
			s02 += w0v * v2
			s03 += w0v * v3
			s10 += w1v * v0
			s11 += w1v * v1
			s12 += w1v * v2
			s13 += w1v * v3
			s20 += w2v * v0
			s21 += w2v * v1
			s22 += w2v * v2
			s23 += w2v * v3
			s30 += w3v * v0
			s31 += w3v * v1
			s32 += w3v * v2
			s33 += w3v * v3
		}
		d0[x], d0[x+1], d0[x+2], d0[x+3] = s00, s01, s02, s03
		d1[x], d1[x+1], d1[x+2], d1[x+3] = s10, s11, s12, s13
		d2[x], d2[x+1], d2[x+2], d2[x+3] = s20, s21, s22, s23
		d3[x], d3[x+1], d3[x+2], d3[x+3] = s30, s31, s32, s33
	}
	for ; x < n; x++ {
		sa, sb, sc, sd := d0[x], d1[x], d2[x], d3[x]
		for kx := 0; kx < fx; kx++ {
			v := src[x+kx]
			sa += w0[kx] * v
			sb += w1[kx] * v
			sc += w2[kx] * v
			sd += w3[kx] * v
		}
		d0[x], d1[x], d2[x], d3[x] = sa, sb, sc, sd
	}
}

// tapOp is one input row's contribution to a 2-row register tile: the
// input row and the two Fx-long weight rows (a shared all-zero row where a
// tile edge row receives no contribution from this input row). The op list
// for one (feature, row-block) covers every (channel, input-row) pair, so
// the column kernel below keeps its accumulators register-resident across
// the ENTIRE Nc·(ry+Fy−1)·Fx reduction — matching the reduction depth that
// makes a GEMM micro-kernel efficient, but on the un-unfolded input.
type tapOp struct {
	src    []float32
	w0, w1 []float32
}

// tapColumn2 accumulates a 2-row × n-column strip over the full op list,
// 4 columns at a time with 8 register-resident partial sums.
func tapColumn2(d0, d1 []float32, ops []tapOp, fx, off, n int) {
	d0 = d0[:n]
	d1 = d1[:n]
	x := 0
	for ; x+4 <= n; x += 4 {
		s00, s01, s02, s03 := d0[x], d0[x+1], d0[x+2], d0[x+3]
		s10, s11, s12, s13 := d1[x], d1[x+1], d1[x+2], d1[x+3]
		for o := range ops {
			op := &ops[o]
			sv := op.src[off+x : off+x+fx+3]
			w0 := op.w0[:fx]
			w1 := op.w1[:fx]
			for kx := 0; kx < fx; kx++ {
				v0, v1, v2, v3 := sv[kx], sv[kx+1], sv[kx+2], sv[kx+3]
				w0v, w1v := w0[kx], w1[kx]
				s00 += w0v * v0
				s01 += w0v * v1
				s02 += w0v * v2
				s03 += w0v * v3
				s10 += w1v * v0
				s11 += w1v * v1
				s12 += w1v * v2
				s13 += w1v * v3
			}
		}
		d0[x], d0[x+1], d0[x+2], d0[x+3] = s00, s01, s02, s03
		d1[x], d1[x+1], d1[x+2], d1[x+3] = s10, s11, s12, s13
	}
	for ; x < n; x++ {
		sa, sb := d0[x], d1[x]
		for o := range ops {
			op := &ops[o]
			for kx := 0; kx < fx; kx++ {
				v := op.src[off+x+kx]
				sa += op.w0[kx] * v
				sb += op.w1[kx] * v
			}
		}
		d0[x], d1[x] = sa, sb
	}
}

// tapColumn1 is the single-row variant (used when the row block is 1 tall:
// last block of an odd-height output, or ry = 1 plans).
func tapColumn1(d0 []float32, ops []tapOp, fx, off, n int) {
	d0 = d0[:n]
	x := 0
	for ; x+4 <= n; x += 4 {
		s00, s01, s02, s03 := d0[x], d0[x+1], d0[x+2], d0[x+3]
		for o := range ops {
			op := &ops[o]
			sv := op.src[off+x : off+x+fx+3]
			w0 := op.w0[:fx]
			for kx := 0; kx < fx; kx++ {
				wv := w0[kx]
				s00 += wv * sv[kx]
				s01 += wv * sv[kx+1]
				s02 += wv * sv[kx+2]
				s03 += wv * sv[kx+3]
			}
		}
		d0[x], d0[x+1], d0[x+2], d0[x+3] = s00, s01, s02, s03
	}
	for ; x < n; x++ {
		s := d0[x]
		for o := range ops {
			op := &ops[o]
			for kx := 0; kx < fx; kx++ {
				s += op.w0[kx] * op.src[off+x+kx]
			}
		}
		d0[x] = s
	}
}

// tapRows dispatches one input row's full tap reduction into up to four
// accumulator rows over n output columns.
func tapRows(dsts [][]float32, ws [][]float32, src []float32, fx, n int) {
	switch len(dsts) {
	case 1:
		tapRow1(dsts[0], src, ws[0], fx, n)
	case 2:
		tapRow2(dsts[0], dsts[1], src, ws[0], ws[1], fx, n)
	case 3:
		tapRow3(dsts[0], dsts[1], dsts[2], src, ws[0], ws[1], ws[2], fx, n)
	case 4:
		tapRow4(dsts[0], dsts[1], dsts[2], dsts[3], src, ws[0], ws[1], ws[2], ws[3], fx, n)
	default:
		for i := range dsts {
			tapRow1(dsts[i], src, ws[i], fx, n)
		}
	}
}
