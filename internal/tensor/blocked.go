package tensor

import "fmt"

// This file implements the channel-blocked NCHWc activation layout
// (Georganas et al., "Anatomy of High-Performance Deep Learning
// Convolutions on SIMD Architectures"): the channel dimension is split
// into blocks of Block lanes and the lane index becomes the
// fastest-varying dimension, so a [C][H][W] activation is stored as
// [ceil(C/Block)][H][W][Block]. With the block factor matching the
// micro-kernel width (gemm.MicroDot8's 8-wide panels), the panels the
// packed GEMM path manufactures by copying fall directly out of the data
// layout: a blocked convolution engine reads its micro-kernel operands
// contiguously with no PackB copies and no im2col.
//
// Channel counts not divisible by Block get a partial tail block whose
// unused lanes are zero-filled. Zero lanes multiply against zero weight
// lanes (BlockWeights pads the same way), so they contribute exact zeros
// and the tail needs no masking in the hot loops.

// Layout identifies the memory layout of a tensor's Data. The zero value
// is the canonical row-major layout, so existing construction sites are
// unchanged.
type Layout uint8

const (
	// NCHW is the canonical layout: activations [C][H][W], weights
	// [F][C][Ky][Kx].
	NCHW Layout = iota
	// NCHW8 is the channel-blocked layout: activations
	// [ceil(C/8)][H][W][8]; weights [ceil(F/8)][ceil(C/8)][Ky][Kx][8c][8f]
	// (BlockWeights).
	NCHW8
)

// String names the layout.
func (l Layout) String() string {
	switch l {
	case NCHW:
		return "nchw"
	case NCHW8:
		return "nchw8"
	default:
		return fmt.Sprintf("layout(%d)", uint8(l))
	}
}

// Block is the channel-block factor of the NCHW8 layout — the width of
// the gemm micro-kernel's interleaved panels.
const Block = 8

// Blocks returns ceil(n/Block): how many channel blocks cover n channels.
func Blocks(n int) int { return (n + Block - 1) / Block }

// ToBlocked converts a [C][H][W] activation to the blocked
// [ceil(C/Block)][H][W][Block] layout (tail lanes zero-filled).
func ToBlocked(t *Tensor) *Tensor {
	if t.Rank() != 3 {
		panic(fmt.Sprintf("tensor: ToBlocked needs rank-3 input, got %v", t.Dims))
	}
	out := New(Blocks(t.Dims[0]), t.Dims[1], t.Dims[2], Block)
	ToBlockedInto(out, t)
	return out
}

// ToBlockedInto converts src ([C][H][W]) into dst
// ([ceil(C/Block)][H][W][Block]), zero-filling tail lanes. dst's layout
// tag is set to NCHW8. It allocates nothing, so steady-state conversion
// at a network's ingest boundary can run entirely out of an arena.
func ToBlockedInto(dst, src *Tensor) {
	if src.Rank() != 3 || dst.Rank() != 4 {
		panic("tensor: ToBlockedInto needs rank-3 src and rank-4 dst")
	}
	c, h, w := src.Dims[0], src.Dims[1], src.Dims[2]
	if dst.Dims[0] != Blocks(c) || dst.Dims[1] != h || dst.Dims[2] != w || dst.Dims[3] != Block {
		panic("tensor: ToBlockedInto dst shape does not match src")
	}
	for ci := 0; ci < c; ci++ {
		cb, lane := ci/Block, ci%Block
		for y := 0; y < h; y++ {
			srow := src.Data[(ci*h+y)*w : (ci*h+y)*w+w]
			drow := dst.Data[((cb*h+y)*w)*Block+lane:]
			blockScatter(drow, srow)
		}
	}
	for ci := c; ci < Blocks(c)*Block; ci++ {
		cb, lane := ci/Block, ci%Block
		for y := 0; y < h; y++ {
			drow := dst.Data[((cb*h+y)*w)*Block+lane:]
			blockZero(drow, w)
		}
	}
	dst.Layout = NCHW8
}

// FromBlocked converts a blocked activation back to [c][H][W], dropping
// the zero tail lanes. c is the true channel count (the blocked shape
// only records ceil(c/Block)).
func FromBlocked(t *Tensor, c int) *Tensor {
	if t.Rank() != 4 {
		panic(fmt.Sprintf("tensor: FromBlocked needs rank-4 input, got %v", t.Dims))
	}
	out := New(c, t.Dims[1], t.Dims[2])
	FromBlockedInto(out, t)
	return out
}

// FromBlockedInto converts src ([ceil(C/Block)][H][W][Block]) into dst
// ([C][H][W]); the true channel count is taken from dst's shape. Like
// ToBlockedInto it allocates nothing.
func FromBlockedInto(dst, src *Tensor) {
	if dst.Rank() != 3 || src.Rank() != 4 {
		panic("tensor: FromBlockedInto needs rank-4 src and rank-3 dst")
	}
	c, h, w := dst.Dims[0], dst.Dims[1], dst.Dims[2]
	if src.Dims[0] != Blocks(c) || src.Dims[1] != h || src.Dims[2] != w || src.Dims[3] != Block {
		panic("tensor: FromBlockedInto src shape does not match dst")
	}
	for ci := 0; ci < c; ci++ {
		cb, lane := ci/Block, ci%Block
		for y := 0; y < h; y++ {
			srow := src.Data[((cb*h+y)*w)*Block+lane:]
			drow := dst.Data[(ci*h+y)*w : (ci*h+y)*w+w]
			blockGather(drow, srow)
		}
	}
	dst.Layout = NCHW
}

// BlockWeights converts convolution weights [F][C][Ky][Kx] to the blocked
// panel layout [ceil(F/Block)][ceil(C/Block)][Ky][Kx][Block c][Block f]:
// for fixed (fo, cb, ky) the Kx·Block×Block sub-block is exactly one
// contiguous k-interleaved micro-kernel panel (bp[Block·k+f], k running
// over (kx, c-lane)), matching gemm.MicroDot8 against a contiguous
// blocked-input row. Tail positions (f >= F or c >= C) are zero.
func BlockWeights(w *Tensor) *Tensor {
	if w.Rank() != 4 {
		panic(fmt.Sprintf("tensor: BlockWeights needs rank-4 input, got %v", w.Dims))
	}
	f, c, ky, kx := w.Dims[0], w.Dims[1], w.Dims[2], w.Dims[3]
	out := New(Blocks(f), Blocks(c), ky, kx, Block, Block)
	BlockWeightsInto(out, w)
	return out
}

// BlockWeightsInto is the allocation-free form of BlockWeights; dst must
// have the blocked rank-6 shape for src's geometry and is fully
// overwritten (tail positions zeroed).
func BlockWeightsInto(dst, src *Tensor) {
	if src.Rank() != 4 || dst.Rank() != 6 {
		panic("tensor: BlockWeightsInto needs rank-4 src and rank-6 dst")
	}
	f, c, ky, kx := src.Dims[0], src.Dims[1], src.Dims[2], src.Dims[3]
	if dst.Dims[0] != Blocks(f) || dst.Dims[1] != Blocks(c) || dst.Dims[2] != ky ||
		dst.Dims[3] != kx || dst.Dims[4] != Block || dst.Dims[5] != Block {
		panic("tensor: BlockWeightsInto dst shape does not match src")
	}
	dst.Zero()
	cbN := Blocks(c)
	for fi := 0; fi < f; fi++ {
		fo, fl := fi/Block, fi%Block
		for ci := 0; ci < c; ci++ {
			cb, cl := ci/Block, ci%Block
			for y := 0; y < ky; y++ {
				srow := src.Data[((fi*c+ci)*ky+y)*kx : ((fi*c+ci)*ky+y)*kx+kx]
				base := ((((fo*cbN+cb)*ky+y)*kx)*Block+cl)*Block + fl
				drow := dst.Data[base:]
				blockScatterW(drow, srow)
			}
		}
	}
	dst.Layout = NCHW8
}

// UnblockWeights inverts BlockWeights, recovering [f][c][Ky][Kx] weights
// from the blocked panel layout (tail lanes discarded).
func UnblockWeights(t *Tensor, f, c int) *Tensor {
	if t.Rank() != 6 {
		panic(fmt.Sprintf("tensor: UnblockWeights needs rank-6 input, got %v", t.Dims))
	}
	ky, kx := t.Dims[2], t.Dims[3]
	cbN := t.Dims[1]
	out := New(f, c, ky, kx)
	for fi := 0; fi < f; fi++ {
		fo, fl := fi/Block, fi%Block
		for ci := 0; ci < c; ci++ {
			cb, cl := ci/Block, ci%Block
			for y := 0; y < ky; y++ {
				for x := 0; x < kx; x++ {
					src := t.Data[((((fo*cbN+cb)*ky+y)*kx+x)*Block+cl)*Block+fl]
					out.Data[((fi*c+ci)*ky+y)*kx+x] = src
				}
			}
		}
	}
	return out
}

// blockScatter writes dst[Block·i] = src[i]: one channel's spatial row
// scattered into its lane of the blocked row.
func blockScatter(dst, src []float32) {
	for _, v := range src {
		if len(dst) < 1 {
			break
		}
		dst[0] = v
		if len(dst) >= Block {
			dst = dst[Block:]
		} else {
			dst = dst[:0]
		}
	}
}

// blockScatterW writes dst[Block·Block·i] = src[i]: one weight row
// scattered across the kx stride of the blocked panel layout.
func blockScatterW(dst, src []float32) {
	const step = Block * Block
	for _, v := range src {
		if len(dst) < 1 {
			break
		}
		dst[0] = v
		if len(dst) >= step {
			dst = dst[step:]
		} else {
			dst = dst[:0]
		}
	}
}

// blockGather reads dst[i] = src[Block·i]: the inverse of blockScatter.
func blockGather(dst, src []float32) {
	for i := range dst {
		if len(src) < 1 {
			break
		}
		dst[i] = src[0]
		if len(src) >= Block {
			src = src[Block:]
		} else {
			src = src[:0]
		}
	}
}

// blockZero clears n lane positions dst[0], dst[Block], ... — the
// zero-fill of a tail block's unused lanes.
func blockZero(dst []float32, n int) {
	for i := 0; i < n; i++ {
		if len(dst) < 1 {
			break
		}
		dst[0] = 0
		if len(dst) >= Block {
			dst = dst[Block:]
		} else {
			dst = dst[:0]
		}
	}
}
