package dataparallel

import (
	"math"
	"testing"

	"spgcnn/internal/rng"
)

// makeViews builds n replica views over params of the given sizes, filled
// deterministically (every replica different).
func makeViews(n int, sizes []int, seed uint64) [][][]float32 {
	r := rng.New(seed)
	views := make([][][]float32, n)
	for w := 0; w < n; w++ {
		views[w] = make([][]float32, len(sizes))
		for j, l := range sizes {
			v := make([]float32, l)
			for i := range v {
				v[i] = r.Float32()*2 - 1
			}
			views[w][j] = v
		}
	}
	return views
}

func cloneViews(views [][][]float32) [][][]float32 {
	out := make([][][]float32, len(views))
	for w := range views {
		out[w] = make([][]float32, len(views[w]))
		for j := range views[w] {
			out[w][j] = append([]float32(nil), views[w][j]...)
		}
	}
	return out
}

// TestRingBitIdenticalToFlat is the pinned dense bit-identity: the chunked
// ring schedule must produce byte-for-byte the same mean as the flat
// float64 path, at replica counts and lengths that exercise partial chunks.
func TestRingBitIdenticalToFlat(t *testing.T) {
	sizes := []int{3, reduceChunkElems, reduceChunkElems*2 + 17, 1000}
	for _, n := range []int{2, 3, 8} {
		flat := makeViews(n, sizes, 42)
		ring := cloneViews(flat)
		NewExchange(MethodFlat, SparseOff, flat, nil).Sync()
		info := NewExchange(MethodRing, SparseOff, ring, nil).Sync()
		if info.Method != MethodRing || info.Sparse {
			t.Fatalf("n=%d: ring sync reported %+v", n, info)
		}
		for w := range flat {
			for j := range flat[w] {
				for i := range flat[w][j] {
					if flat[w][j][i] != ring[w][j][i] {
						t.Fatalf("n=%d replica %d param %d elem %d: flat %v != ring %v",
							n, w, j, i, flat[w][j][i], ring[w][j][i])
					}
				}
			}
		}
	}
}

// TestTreeReduceCorrect checks the hierarchical schedule against a float64
// reference mean — pairwise float32 combining is not bit-identical to the
// flat path, but must stay within a few ulps of the true mean.
func TestTreeReduceCorrect(t *testing.T) {
	sizes := []int{reduceChunkElems + 33}
	for _, n := range []int{2, 3, 5, 8} {
		views := makeViews(n, sizes, 7)
		want := make([]float64, sizes[0])
		for w := range views {
			for i, v := range views[w][0] {
				want[i] += float64(v)
			}
		}
		inv := 1 / float64(n)
		info := NewExchange(MethodTree, SparseOff, views, nil).Sync()
		if info.Method != MethodTree {
			t.Fatalf("n=%d: got method %q", n, info.Method)
		}
		for w := range views {
			for i, got := range views[w][0] {
				ref := want[i] * inv
				if math.Abs(float64(got)-ref) > 1e-5 {
					t.Fatalf("n=%d replica %d elem %d: tree %v, reference %v", n, w, i, got, ref)
				}
			}
		}
	}
}

// TestFlatDriftRegression64Replicas pins the satellite drift fix: with 64
// replicas where replica 0 holds 1.0 and the rest hold 1e-8, the old
// float32 sequential accumulation absorbed every small contribution
// (1 + 1e-8 == 1 in float32) and returned exactly 1/64; the float64 path
// must preserve them.
func TestFlatDriftRegression64Replicas(t *testing.T) {
	const n = 64
	views := make([][][]float32, n)
	for w := range views {
		v := make([]float32, 257)
		val := float32(1e-8)
		if w == 0 {
			val = 1
		}
		for i := range v {
			v[i] = val
		}
		views[w] = [][]float32{v}
	}
	want := float32((1.0 + 63*1e-8) / 64)
	lost := float32(1.0 / 64) // what float32 sequential accumulation returns
	if want == lost {
		t.Fatal("test vector does not distinguish the accumulators")
	}
	for _, m := range []Method{MethodFlat, MethodRing} {
		vs := cloneViews(views)
		NewExchange(m, SparseOff, vs, nil).Sync()
		for w := range vs {
			for i, got := range vs[w][0] {
				if got != want {
					t.Fatalf("%s replica %d elem %d: got %v, want %v (float32 drift would give %v)",
						m, w, i, got, want, lost)
				}
			}
		}
	}
}

// TestSparseExchangeMatchesDense checks the CT-CSR delta exchange: after
// aligned replicas diverge by sparse deltas, a forced sparse sync must
// land every replica on the dense-path mean (within float tolerance) and
// report a plausible density and a wire-byte figure below the dense
// schedules'.
func TestSparseExchangeMatchesDense(t *testing.T) {
	const n, l = 8, 20000
	base := makeViews(1, []int{l}, 3)[0][0]
	views := make([][][]float32, n)
	for w := range views {
		views[w] = [][]float32{append([]float32(nil), base...)}
	}
	// Start from aligned state, then perturb ~5% of each replica.
	ex := NewExchange(MethodRing, SparseForce, views, nil)
	r := rng.New(11)
	for w := range views {
		for i := range views[w][0] {
			if r.Float32() < 0.05 {
				views[w][0][i] += r.Float32() * 0.1
			}
		}
	}
	dense := cloneViews(views)
	info := ex.Sync()
	if !info.Sparse {
		t.Fatalf("forced sparse sync ran dense: %+v", info)
	}
	if info.Density <= 0 || info.Density > 0.1 {
		t.Fatalf("density %v outside the injected ~0.05 band", info.Density)
	}
	denseWire := 2 * int64(n-1) * int64(l) * 4
	if info.WireBytes <= 0 || info.WireBytes >= denseWire {
		t.Fatalf("sparse wire bytes %d not below dense ring %d at 5%% density",
			info.WireBytes, denseWire)
	}
	NewExchange(MethodFlat, SparseOff, dense, nil).Sync()
	for w := range views {
		for i := range views[w][0] {
			if diff := math.Abs(float64(views[w][0][i] - dense[w][0][i])); diff > 1e-6 {
				t.Fatalf("replica %d elem %d: sparse %v vs dense %v (diff %g)",
					w, i, views[w][0][i], dense[w][0][i], diff)
			}
		}
	}
	// A second perturb/sync round exercises the refreshed base snapshot.
	for w := range views {
		for i := range views[w][0] {
			if r.Float32() < 0.02 {
				views[w][0][i] -= r.Float32() * 0.05
			}
		}
	}
	dense2 := cloneViews(views)
	info2 := ex.Sync()
	if !info2.Sparse {
		t.Fatalf("second forced sparse sync ran dense: %+v", info2)
	}
	NewExchange(MethodFlat, SparseOff, dense2, nil).Sync()
	for w := range views {
		for i := range views[w][0] {
			if diff := math.Abs(float64(views[w][0][i] - dense2[w][0][i])); diff > 1e-6 {
				t.Fatalf("round 2 replica %d elem %d: sparse %v vs dense %v",
					w, i, views[w][0][i], dense2[w][0][i])
			}
		}
	}
}

// TestSparseAutoFallsBackDenseBitIdentical pins the band-boundary
// fallback: with fully dense deltas (density 1 > SparseDensityBoundary)
// the auto mode must run the dense schedule and stay bit-identical to the
// plain flat path — the "sparsity 0" bit-identity requirement.
func TestSparseAutoFallsBackDenseBitIdentical(t *testing.T) {
	const n, l = 4, 9000
	base := makeViews(1, []int{l}, 5)[0][0]
	views := make([][][]float32, n)
	for w := range views {
		views[w] = [][]float32{append([]float32(nil), base...)}
	}
	ex := NewExchange(MethodRing, SparseAuto, views, nil)
	r := rng.New(13)
	for w := range views {
		for i := range views[w][0] {
			views[w][0][i] += r.Float32() + 0.5 // every element moves: density 1
		}
	}
	ref := cloneViews(views)
	info := ex.Sync()
	if info.Sparse {
		t.Fatalf("auto mode shipped sparse at density %v", info.Density)
	}
	if info.Density < 0.99 {
		t.Fatalf("measured density %v, want ~1", info.Density)
	}
	NewExchange(MethodFlat, SparseOff, ref, nil).Sync()
	for w := range views {
		for i := range views[w][0] {
			if views[w][0][i] != ref[w][0][i] {
				t.Fatalf("replica %d elem %d: fallback %v != flat %v",
					w, i, views[w][0][i], ref[w][0][i])
			}
		}
	}
	// After the dense fallback refreshed the snapshot, a small follow-up
	// perturbation must go back to shipping sparse.
	for w := range views {
		for i := range views[w][0] {
			if r.Float32() < 0.01 {
				views[w][0][i] += 0.25
			}
		}
	}
	if info := ex.Sync(); !info.Sparse {
		t.Fatalf("auto mode stayed dense at density %v", info.Density)
	}
}

// TestMethodAutoUsesRanker checks that auto mode defers to the wired cost
// model.
func TestMethodAutoUsesRanker(t *testing.T) {
	views := makeViews(4, []int{5000}, 9)
	var sawElems, sawReplicas int
	ex := NewExchange(MethodAuto, SparseOff, views,
		func(elems, replicas int, density float64) (Method, bool) {
			sawElems, sawReplicas = elems, replicas
			return MethodTree, false
		})
	info := ex.Sync()
	if info.Method != MethodTree {
		t.Fatalf("ranker verdict ignored: deployed %q", info.Method)
	}
	if sawElems != 5000 || sawReplicas != 4 {
		t.Fatalf("ranker saw (%d, %d), want (5000, 4)", sawElems, sawReplicas)
	}
}

func TestParseFlags(t *testing.T) {
	if _, err := ParseMethod("bogus"); err == nil {
		t.Fatal("bogus method accepted")
	}
	if m, err := ParseMethod(""); err != nil || m != MethodFlat {
		t.Fatalf("empty method: %v %v", m, err)
	}
	if _, err := ParseSparseMode("bogus"); err == nil {
		t.Fatal("bogus sparse mode accepted")
	}
	if s, err := ParseSparseMode(""); err != nil || s != SparseOff {
		t.Fatalf("empty sparse mode: %v %v", s, err)
	}
}
