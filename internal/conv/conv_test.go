package conv

import (
	"testing"
	"testing/quick"

	"spgcnn/internal/rng"
	"spgcnn/internal/tensor"
)

// RandSpec draws a small random valid spec; it is exported to sibling
// engine test packages via the export_test pattern below.
func randSpec(r *rng.RNG) Spec {
	for {
		s := Spec{
			Nx: r.Intn(14) + 2,
			Ny: r.Intn(14) + 2,
			Nc: r.Intn(5) + 1,
			Nf: r.Intn(6) + 1,
			Fx: r.Intn(4) + 1,
			Fy: r.Intn(4) + 1,
			Sx: r.Intn(3) + 1,
			Sy: r.Intn(3) + 1,
		}
		if s.Validate() == nil {
			return s
		}
	}
}

func randTensors(r *rng.RNG, s Spec) (in, w *tensor.Tensor) {
	in = NewInput(s)
	in.FillNormal(r, 0, 1)
	w = NewWeights(s)
	w.FillNormal(r, 0, 0.5)
	return
}

func TestSpecGeometry(t *testing.T) {
	// Paper Table 1 row ID 0: 32,32,32,4 (N, Nf, Nc, F) with stride 1.
	s := Square(32, 32, 32, 4, 1)
	if s.OutX() != 29 || s.OutY() != 29 {
		t.Fatalf("OutX/Y = %d/%d, want 29/29", s.OutX(), s.OutY())
	}
	if s.InputSize() != 32*32*32 {
		t.Fatalf("InputSize = %d", s.InputSize())
	}
	if s.WeightSize() != 32*32*4*4 {
		t.Fatalf("WeightSize = %d", s.WeightSize())
	}
	if s.OutputSize() != 32*29*29 {
		t.Fatalf("OutputSize = %d", s.OutputSize())
	}
	if s.UnfoldedSize() != 29*29*32*16 {
		t.Fatalf("UnfoldedSize = %d", s.UnfoldedSize())
	}
	if s.FlopsFP() != 2*32*29*29*32*16 {
		t.Fatalf("FlopsFP = %d", s.FlopsFP())
	}
}

func TestSpecStride(t *testing.T) {
	// AlexNet layer 0: 224,96,3,11 stride 4 -> out (224-11)/4+1 = 54.
	s := Square(224, 96, 3, 11, 4)
	if s.OutX() != 54 {
		t.Fatalf("OutX = %d, want 54", s.OutX())
	}
}

func TestValidate(t *testing.T) {
	bad := []Spec{
		{},
		{Nx: 8, Ny: 8, Nc: 1, Nf: 1, Fx: 9, Fy: 3, Sx: 1, Sy: 1},
		{Nx: 8, Ny: 8, Nc: 0, Nf: 1, Fx: 3, Fy: 3, Sx: 1, Sy: 1},
		{Nx: 8, Ny: 8, Nc: 1, Nf: 1, Fx: 3, Fy: 3, Sx: 0, Sy: 1},
		{Nx: -1, Ny: 8, Nc: 1, Nf: 1, Fx: 3, Fy: 3, Sx: 1, Sy: 1},
	}
	for i, s := range bad {
		if s.Validate() == nil {
			t.Fatalf("spec %d (%+v) should be invalid", i, s)
		}
	}
	if err := Square(8, 4, 2, 3, 2).Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
}

func TestSpecString(t *testing.T) {
	if got := Square(36, 64, 3, 5, 1).String(); got != "36,64,3,5,1" {
		t.Fatalf("String = %q", got)
	}
	s := Spec{Nx: 8, Ny: 6, Nc: 1, Nf: 2, Fx: 3, Fy: 2, Sx: 1, Sy: 1}
	if got := s.String(); got == "" {
		t.Fatal("non-square String empty")
	}
}

func TestForwardRefHandComputed(t *testing.T) {
	// 1 channel, 1 feature, 2x2 kernel of ones over a 3x3 ramp: each
	// output is the sum of a 2x2 window.
	s := Square(3, 1, 1, 2, 1)
	in := NewInput(s)
	for i := 0; i < 9; i++ {
		in.Data[i] = float32(i) // 0..8 row-major
	}
	w := NewWeights(s)
	for i := range w.Data {
		w.Data[i] = 1
	}
	out := NewOutput(s)
	ForwardRef(s, out, in, w)
	// windows: (0+1+3+4)=8, (1+2+4+5)=12, (3+4+6+7)=20, (4+5+7+8)=24
	want := []float32{8, 12, 20, 24}
	for i := range want {
		if out.Data[i] != want[i] {
			t.Fatalf("out[%d] = %v, want %v", i, out.Data[i], want[i])
		}
	}
}

func TestForwardRefMultiChannelFig2a(t *testing.T) {
	// Mirrors the structure of the paper's Fig. 2a: 3x3 input, 2 channels,
	// 2 features, 2x2 kernels. Feature output must be the sum over both
	// channels' inner products.
	s := Square(3, 2, 2, 2, 1)
	r := rng.New(42)
	in, w := randTensors(r, s)
	out := NewOutput(s)
	ForwardRef(s, out, in, w)
	// Independently compute output (f=1, y=0, x=1).
	var want float32
	for c := 0; c < 2; c++ {
		for ky := 0; ky < 2; ky++ {
			for kx := 0; kx < 2; kx++ {
				want += in.At3(c, ky, 1+kx) * w.At4(1, c, ky, kx)
			}
		}
	}
	if got := out.At3(1, 0, 1); got != want {
		t.Fatalf("out(1,0,1) = %v, want %v", got, want)
	}
}

func TestBackwardInputScatterMatchesGather(t *testing.T) {
	// The scatter form (adjoint of Eq. 2) and the paper's literal gather
	// form of Eq. 3 must agree, including for strided convolutions.
	r := rng.New(7)
	for trial := 0; trial < 25; trial++ {
		s := randSpec(r)
		_, w := randTensors(r, s)
		eo := NewOutput(s)
		eo.FillNormal(r, 0, 1)
		a := NewInput(s)
		b := NewInput(s)
		BackwardInputRef(s, a, eo, w)
		BackwardInputGatherRef(s, b, eo, w)
		if !tensor.AlmostEqual(a, b, 1e-4) {
			t.Fatalf("scatter/gather disagree for spec %v (max diff %g)", s, tensor.MaxAbsDiff(a, b))
		}
	}
}

func TestBackwardWeightsHandComputed(t *testing.T) {
	// Single output pixel: dW must equal EO[0,0,0] * input window.
	s := Square(2, 1, 1, 2, 1)
	in := NewInput(s)
	copy(in.Data, []float32{1, 2, 3, 4})
	eo := NewOutput(s)
	eo.Data[0] = 2
	dw := NewWeights(s)
	BackwardWeightsRef(s, dw, eo, in)
	want := []float32{2, 4, 6, 8}
	for i := range want {
		if dw.Data[i] != want[i] {
			t.Fatalf("dW[%d] = %v, want %v", i, dw.Data[i], want[i])
		}
	}
}

// TestAdjointProperty verifies the fundamental transpose identity tying
// Eq. 2 to Eq. 3: for any EO and I, ⟨EO, Forward(I)⟩ = ⟨BackwardInput(EO), I⟩.
// This is the property-based check that the two reference kernels are true
// adjoints, which any correct FP/BP pair must satisfy.
func TestAdjointProperty(t *testing.T) {
	r := rng.New(11)
	if err := quick.Check(func(seed uint32) bool {
		rr := rng.New(uint64(seed))
		s := randSpec(rr)
		in, w := randTensors(rr, s)
		eo := NewOutput(s)
		eo.FillNormal(rr, 0, 1)
		out := NewOutput(s)
		ForwardRef(s, out, in, w)
		ei := NewInput(s)
		BackwardInputRef(s, ei, eo, w)
		var lhs, rhs float64
		for i := range out.Data {
			lhs += float64(eo.Data[i]) * float64(out.Data[i])
		}
		for i := range in.Data {
			rhs += float64(ei.Data[i]) * float64(in.Data[i])
		}
		diff := lhs - rhs
		if diff < 0 {
			diff = -diff
		}
		scale := 1.0
		if l := lhs; l < 0 {
			l = -l
			if l > scale {
				scale = l
			}
		} else if l > scale {
			scale = l
		}
		return diff <= 1e-3*scale
	}, &quick.Config{MaxCount: 30, Rand: nil}); err != nil {
		t.Fatal(err)
	}
	_ = r
}

// TestWeightGradientProperty: ⟨EO, Forward(I)⟩ = ⟨dW(EO, I), W⟩ where the
// forward used weights W — the same adjointness in the weight slot.
func TestWeightGradientProperty(t *testing.T) {
	if err := quick.Check(func(seed uint32) bool {
		rr := rng.New(uint64(seed) ^ 0xdead)
		s := randSpec(rr)
		in, w := randTensors(rr, s)
		eo := NewOutput(s)
		eo.FillNormal(rr, 0, 1)
		out := NewOutput(s)
		ForwardRef(s, out, in, w)
		dw := NewWeights(s)
		BackwardWeightsRef(s, dw, eo, in)
		var lhs, rhs float64
		for i := range out.Data {
			lhs += float64(eo.Data[i]) * float64(out.Data[i])
		}
		for i := range w.Data {
			rhs += float64(dw.Data[i]) * float64(w.Data[i])
		}
		diff := lhs - rhs
		if diff < 0 {
			diff = -diff
		}
		scale := lhs
		if scale < 0 {
			scale = -scale
		}
		if scale < 1 {
			scale = 1
		}
		return diff <= 1e-3*scale
	}, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestShapeChecksPanic(t *testing.T) {
	s := Square(4, 2, 1, 2, 1)
	in, w := NewInput(s), NewWeights(s)
	badOut := tensor.New(2, 2, 2) // wrong: should be [2][3][3]
	defer func() {
		if recover() == nil {
			t.Fatal("ForwardRef with wrong output shape did not panic")
		}
	}()
	ForwardRef(s, badOut, in, w)
}

func BenchmarkForwardRefCIFARL1(b *testing.B) {
	s := Square(36, 64, 3, 5, 1)
	r := rng.New(1)
	in, w := randTensors(r, s)
	out := NewOutput(s)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ForwardRef(s, out, in, w)
	}
	b.ReportMetric(float64(s.FlopsFP())*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFlops")
}
