package core

import (
	"testing"
	"time"

	"spgcnn/internal/conv"
	"spgcnn/internal/engine"
	"spgcnn/internal/exec"
	"spgcnn/internal/rng"
	"spgcnn/internal/tensor"
)

// fakeKernel is a no-compute kernel whose backward cost is a pure function
// of the observed gradient sparsity, so scheduler decisions in tests are
// deterministic: timing margins between candidates are ~10x, far beyond
// scheduler-clock noise.
type fakeKernel struct {
	spec   conv.Spec
	name   string
	bpCost func(sparsity float64) time.Duration
}

func (k fakeKernel) Name() string    { return k.name }
func (k fakeKernel) Spec() conv.Spec { return k.spec }

func (k fakeKernel) ForwardBatch(c *exec.Ctx, outs, ins []*tensor.Tensor, w *tensor.Tensor) {
	time.Sleep(50 * time.Microsecond)
}

func (k fakeKernel) BackwardInputBatch(c *exec.Ctx, eis, eos []*tensor.Tensor, w *tensor.Tensor) {
	var sum float64
	for _, eo := range eos {
		sum += eo.Sparsity()
	}
	time.Sleep(k.bpCost(sum / float64(len(eos))))
}

func (k fakeKernel) BackwardWeightsBatch(c *exec.Ctx, dw *tensor.Tensor, eos, ins []*tensor.Tensor) {
}

func fakeStrategy(name string, bpCost func(sparsity float64) time.Duration) Strategy {
	return Strategy{
		Name: name,
		Gen: engine.Generator{
			Name: name,
			New:  func(s conv.Spec) engine.Kernel { return fakeKernel{spec: s, name: name, bpCost: bpCost} },
		},
	}
}

// fakeBPStrategies returns a pair of candidates with opposite sparsity
// preferences: "dense-friendly" costs a constant 2ms, "sparse-friendly"
// costs 20ms on dense gradients but 200µs once sparsity crosses 0.5 —
// a miniature of the paper's GEMM-vs-Sparse-Kernel crossover (Fig. 3b).
func fakeBPStrategies() []Strategy {
	return []Strategy{
		fakeStrategy("dense-friendly", func(float64) time.Duration {
			return 2 * time.Millisecond
		}),
		fakeStrategy("sparse-friendly", func(sp float64) time.Duration {
			if sp >= 0.5 {
				return 200 * time.Microsecond
			}
			return 20 * time.Millisecond
		}),
	}
}

func newFakeAutoConv(s conv.Spec, c *exec.Ctx) *AutoConv {
	return NewAutoConv(s, 0, AutoOptions{
		Ctx:           c,
		RecheckEpochs: 1,
		Tune:          TuneOptions{Reps: 1},
		FP:            []Strategy{fakeStrategy("fake-fp", nil)},
		BP:            fakeBPStrategies(),
	})
}

// TestAutoConvCopiesRetainedGradients is the regression test for the
// scheduler aliasing caller-owned batch tensors: the retained re-tuning
// sample must survive the caller recycling its gradient buffers.
func TestAutoConvCopiesRetainedGradients(t *testing.T) {
	s := conv.Square(8, 2, 2, 3, 1)
	r := rng.New(7)
	a := newFakeAutoConv(s, exec.New(1))

	eos := []*tensor.Tensor{conv.RandOutputError(r, s, 0.9)}
	ins := []*tensor.Tensor{conv.RandInput(r, s)}
	eis := []*tensor.Tensor{conv.NewInput(s)}
	dw := conv.NewWeights(s)

	a.Backward(eis, dw, eos, ins, a.lastWRef)
	wantSp := eos[0].Sparsity()
	wantIn := ins[0].Data[0]

	if &a.lastEOs[0].Data[0] == &eos[0].Data[0] {
		t.Fatal("retained gradient aliases the caller's tensor")
	}
	if &a.lastIns[0].Data[0] == &ins[0].Data[0] {
		t.Fatal("retained input aliases the caller's tensor")
	}

	// The trainer recycles batch storage: overwrite with dense garbage.
	for i := range eos[0].Data {
		eos[0].Data[i] = 1
	}
	for i := range ins[0].Data {
		ins[0].Data[i] = -3
	}

	if got := a.lastEOs[0].Sparsity(); got != wantSp {
		t.Fatalf("retained sample sparsity changed with the caller's buffer: got %v, want %v", got, wantSp)
	}
	if got := a.lastIns[0].Data[0]; got != wantIn {
		t.Fatalf("retained input changed with the caller's buffer: got %v, want %v", got, wantIn)
	}

	// Steady state reuses the retained tensors instead of reallocating.
	prev := a.lastEOs[0]
	a.Backward(eis, dw, eos, ins, nil)
	if a.lastEOs[0] != prev {
		t.Error("retention reallocated despite matching shapes")
	}
	if a.lastEOs[0].Sparsity() != 0 {
		t.Error("second retention did not refresh the sample data")
	}
}

// TestAutoConvEpochEndFlipsBPStrategy drives the §4.4 re-check: tuning on
// dense gradients deploys the dense-friendly candidate; once the retained
// sample turns sparse, EpochEnd must switch the deployment and record the
// flip as a probe choice event — even though the caller mutates its batch
// buffers between Backward and EpochEnd.
func TestAutoConvEpochEndFlipsBPStrategy(t *testing.T) {
	s := conv.Square(8, 2, 2, 3, 1)
	r := rng.New(11)
	c := exec.New(1)
	a := newFakeAutoConv(s, c)

	ins := []*tensor.Tensor{conv.RandInput(r, s)}
	eis := []*tensor.Tensor{conv.NewInput(s)}
	dw := conv.NewWeights(s)

	// Epoch 0: dense gradients. First Backward tunes.
	eos := []*tensor.Tensor{conv.RandOutputError(r, s, 0)}
	a.Backward(eis, dw, eos, ins, nil)
	if got := a.BPSelection().Chosen.Strategy().Name; got != "dense-friendly" {
		t.Fatalf("dense tuning deployed %q, want dense-friendly", got)
	}
	a.EpochEnd() // re-check against the dense sample: no flip
	if got := a.BPSelection().Chosen.Strategy().Name; got != "dense-friendly" {
		t.Fatalf("dense re-check flipped to %q", got)
	}

	// Epoch 1: training converged, gradients now ~95% sparse.
	sparse := conv.RandOutputError(r, s, 0.95)
	copy(eos[0].Data, sparse.Data)
	a.Backward(eis, dw, eos, ins, nil)
	// Caller recycles the batch buffer before the epoch boundary.
	for i := range eos[0].Data {
		eos[0].Data[i] = 1
	}
	a.EpochEnd()

	if got := a.BPSelection().Chosen.Strategy().Name; got != "sparse-friendly" {
		t.Fatalf("sparse re-check deployed %q, want sparse-friendly", got)
	}
	var flips []exec.Choice
	for _, ch := range c.Probe().Choices() {
		if ch.Phase == "bp-flip" {
			flips = append(flips, ch)
		}
	}
	if len(flips) != 1 || flips[0].Strategy != "sparse-friendly" {
		t.Fatalf("bp-flip choice events = %+v, want one sparse-friendly flip", flips)
	}
}
