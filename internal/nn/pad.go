package nn

import (
	"fmt"

	"spgcnn/internal/par"
	"spgcnn/internal/tensor"
)

// Pad adds a border of zeros around each spatial plane; its backward pass
// crops the border gradients away (the exact adjoint). Table 2's note that
// layer-0 input sizes reflect "image padding/cropping" is this layer: it
// lets networks written in the canonical geometry (e.g. AlexNet's padded
// 224→227-style inputs) be expressed with the library's padding-free
// convolutions.
type Pad struct {
	name    string
	inDims  []int
	py, px  int
	workers int
}

// NewPad builds a padding layer over [C][H][W] inputs adding py rows and
// px columns of zeros on each border.
func NewPad(name string, inDims []int, py, px, workers int) *Pad {
	if len(inDims) != 3 {
		panic(fmt.Sprintf("nn: Pad needs [C][H][W] input, got %v", inDims))
	}
	if py < 0 || px < 0 {
		panic("nn: negative padding")
	}
	if workers < 1 {
		workers = 1
	}
	return &Pad{name: name, inDims: append([]int(nil), inDims...), py: py, px: px, workers: workers}
}

// Name implements Layer.
func (l *Pad) Name() string { return l.name }

// InDims implements Layer.
func (l *Pad) InDims() []int { return l.inDims }

// OutDims implements Layer.
func (l *Pad) OutDims() []int {
	return []int{l.inDims[0], l.inDims[1] + 2*l.py, l.inDims[2] + 2*l.px}
}

// Forward implements Layer.
func (l *Pad) Forward(outs, ins []*tensor.Tensor) {
	if len(outs) != len(ins) {
		panic(fmt.Sprintf("nn: %s Forward batch mismatch", l.name))
	}
	c, h, w := l.inDims[0], l.inDims[1], l.inDims[2]
	par.For(len(ins), l.workers, func(i int) {
		in, out := ins[i], outs[i]
		out.Zero()
		for ci := 0; ci < c; ci++ {
			for y := 0; y < h; y++ {
				copy(out.Row3(ci, y+l.py)[l.px:l.px+w], in.Row3(ci, y))
			}
		}
	})
}

// Backward implements Layer: crop the interior gradient.
func (l *Pad) Backward(eis, eos, _ []*tensor.Tensor) {
	if len(eis) != len(eos) {
		panic(fmt.Sprintf("nn: %s Backward batch mismatch", l.name))
	}
	c, h, w := l.inDims[0], l.inDims[1], l.inDims[2]
	par.For(len(eos), l.workers, func(i int) {
		eo, ei := eos[i], eis[i]
		for ci := 0; ci < c; ci++ {
			for y := 0; y < h; y++ {
				copy(ei.Row3(ci, y), eo.Row3(ci, y+l.py)[l.px:l.px+w])
			}
		}
	})
}

// ApplyGrads implements Layer (no parameters).
func (l *Pad) ApplyGrads(float32, int) {}

// EpochEnd implements Layer.
func (l *Pad) EpochEnd() {}
