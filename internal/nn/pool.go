package nn

import (
	"fmt"

	"spgcnn/internal/par"
	"spgcnn/internal/tensor"
)

// MaxPool is a max-pooling layer with a square window and stride. Its
// backward pass routes each output gradient to the argmax input position —
// another source of gradient sparsity (most input positions get zero).
type MaxPool struct {
	name         string
	inDims       []int
	size, stride int
	outH, outW   int
	workers      int
	argmax       [][]int32 // per batch slot: flat input index per output element
}

// NewMaxPool builds a max-pooling layer over [C][H][W] inputs.
func NewMaxPool(name string, inDims []int, size, stride, workers int) *MaxPool {
	if len(inDims) != 3 {
		panic(fmt.Sprintf("nn: MaxPool needs [C][H][W] input, got %v", inDims))
	}
	if size < 1 || stride < 1 {
		panic("nn: MaxPool size/stride must be positive")
	}
	if workers < 1 {
		workers = 1
	}
	h, w := inDims[1], inDims[2]
	if size > h || size > w {
		panic(fmt.Sprintf("nn: MaxPool window %d exceeds input %dx%d", size, h, w))
	}
	return &MaxPool{
		name:    name,
		inDims:  append([]int(nil), inDims...),
		size:    size,
		stride:  stride,
		outH:    (h-size)/stride + 1,
		outW:    (w-size)/stride + 1,
		workers: workers,
	}
}

// Name implements Layer.
func (l *MaxPool) Name() string { return l.name }

// InDims implements Layer.
func (l *MaxPool) InDims() []int { return l.inDims }

// OutDims implements Layer.
func (l *MaxPool) OutDims() []int { return []int{l.inDims[0], l.outH, l.outW} }

func (l *MaxPool) ensureArgmax(n int) {
	outLen := l.inDims[0] * l.outH * l.outW
	for len(l.argmax) < n {
		l.argmax = append(l.argmax, make([]int32, outLen))
	}
}

// Forward implements Layer.
func (l *MaxPool) Forward(outs, ins []*tensor.Tensor) {
	if len(outs) != len(ins) {
		panic(fmt.Sprintf("nn: %s Forward batch mismatch", l.name))
	}
	l.ensureArgmax(len(ins))
	c, h, w := l.inDims[0], l.inDims[1], l.inDims[2]
	par.For(len(ins), l.workers, func(i int) {
		in, out, am := ins[i], outs[i], l.argmax[i]
		o := 0
		for ci := 0; ci < c; ci++ {
			base := ci * h * w
			for oy := 0; oy < l.outH; oy++ {
				for ox := 0; ox < l.outW; ox++ {
					bestIdx := base + oy*l.stride*w + ox*l.stride
					best := in.Data[bestIdx]
					for ky := 0; ky < l.size; ky++ {
						rowBase := base + (oy*l.stride+ky)*w + ox*l.stride
						for kx := 0; kx < l.size; kx++ {
							if v := in.Data[rowBase+kx]; v > best {
								best = v
								bestIdx = rowBase + kx
							}
						}
					}
					out.Data[o] = best
					am[o] = int32(bestIdx)
					o++
				}
			}
		}
	})
}

// Backward implements Layer: scatter each output gradient to its argmax.
func (l *MaxPool) Backward(eis, eos, _ []*tensor.Tensor) {
	if len(eis) != len(eos) {
		panic(fmt.Sprintf("nn: %s Backward batch mismatch", l.name))
	}
	par.For(len(eos), l.workers, func(i int) {
		ei, eo, am := eis[i], eos[i], l.argmax[i]
		ei.Zero()
		for o, v := range eo.Data {
			ei.Data[am[o]] += v
		}
	})
}

// ApplyGrads implements Layer (no parameters).
func (l *MaxPool) ApplyGrads(float32, int) {}

// EpochEnd implements Layer.
func (l *MaxPool) EpochEnd() {}
