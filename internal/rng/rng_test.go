package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical values in 100 draws", same)
	}
}

func TestZeroSeedIsValid(t *testing.T) {
	r := New(0)
	// The state must not be all zeros (which would make xoshiro emit zeros
	// forever); SplitMix64 seeding guarantees this.
	allZero := true
	for i := 0; i < 10; i++ {
		if r.Uint64() != 0 {
			allZero = false
		}
	}
	if allZero {
		t.Fatal("zero seed produced a degenerate all-zero stream")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(7)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat32Range(t *testing.T) {
	r := New(7)
	for i := 0; i < 10000; i++ {
		f := r.Float32()
		if f < 0 || f >= 1 {
			t.Fatalf("Float32 out of [0,1): %v", f)
		}
	}
}

func TestIntnRange(t *testing.T) {
	r := New(3)
	if err := quick.Check(func(n uint16) bool {
		m := int(n%1000) + 1
		v := r.Intn(m)
		return v >= 0 && v < m
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(13)
	const n = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Fatalf("normal variance = %v, want ~1", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(17)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestPermIsShuffled(t *testing.T) {
	r := New(19)
	identity := 0
	const trials = 50
	for i := 0; i < trials; i++ {
		p := r.Perm(20)
		inPlace := 0
		for j, v := range p {
			if v == j {
				inPlace++
			}
		}
		if inPlace == 20 {
			identity++
		}
	}
	if identity == trials {
		t.Fatal("Perm always returned the identity permutation")
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(23)
	child := parent.Split()
	// Child stream should differ from the parent continuation.
	same := 0
	for i := 0; i < 100; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split stream matched parent %d/100 times", same)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkNormFloat64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.NormFloat64()
	}
}
