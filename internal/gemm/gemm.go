// Package gemm is spgcnn's BLAS stand-in: single-precision general matrix
// multiply (SGEMM) in pure Go.
//
// The paper's baseline, Unfold+Parallel-GEMM, links against MKL/OpenBLAS and
// lets the library split one GEMM across all cores. This package provides
// the same two execution modes:
//
//   - Serial: a cache-blocked, register-tiled single-threaded SGEMM
//     (Goto-style loop ordering: pack-free, but blocked over K and M with a
//     4x4 register micro-kernel). This is what GEMM-in-Parallel runs many
//     instances of.
//   - Parallel: the same kernel with the M dimension (rows of C) statically
//     partitioned across workers — the row-partitioning whose AIT-per-core
//     consequences §3.2 analyzes: each worker reads its slice of A, its
//     slice of C, and ALL of B.
//
// All entry points compute C = A·B (optionally accumulating) for row-major
// float32 matrices.
package gemm

import "fmt"

// Matrix is a dense row-major float32 matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float32
}

// NewMatrix allocates a zero matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("gemm: negative matrix dims %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// FromSlice wraps data (len rows*cols) in a Matrix without copying.
func FromSlice(data []float32, rows, cols int) *Matrix {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("gemm: data length %d != %d x %d", len(data), rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: data}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float32 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float32) { m.Data[i*m.Cols+j] = v }

// Row returns row i as a slice aliasing the matrix data.
func (m *Matrix) Row(i int) []float32 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Zero clears the matrix.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Clone deep-copies the matrix.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Transpose returns a new matrix that is the transpose of m.
func (m *Matrix) Transpose() *Matrix {
	t := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			t.Data[j*m.Rows+i] = v
		}
	}
	return t
}

func checkMul(c, a, b *Matrix) {
	if a.Cols != b.Rows || c.Rows != a.Rows || c.Cols != b.Cols {
		panic(fmt.Sprintf("gemm: dimension mismatch C[%dx%d] = A[%dx%d] * B[%dx%d]",
			c.Rows, c.Cols, a.Rows, a.Cols, b.Rows, b.Cols))
	}
}

// Naive computes C = A·B with the textbook triple loop (ikj order so the
// inner loop streams rows). It is the correctness oracle for every other
// kernel in the repository.
func Naive(c, a, b *Matrix) {
	checkMul(c, a, b)
	c.Zero()
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		crow := c.Row(i)
		for k := 0; k < a.Cols; k++ {
			aik := arow[k]
			if aik == 0 {
				continue
			}
			brow := b.Row(k)
			for j := range brow {
				crow[j] += aik * brow[j]
			}
		}
	}
}

// Cache-blocking parameters. kc*4 floats of B rows should fit in L1 next to
// the A block; mc rows of A x kc fits in L2. These are modest because the
// micro-kernel is 4x4 scalar registers (pure Go has no vector registers to
// widen the tile).
const (
	blockKC = 256 // K-dimension block
	blockMC = 64  // M-dimension block
	blockNC = 512 // N-dimension block
)

// usePacked reports whether a GEMM of these dimensions should take the
// packed-panel path (packed.go): enough output rows to amortize the pack,
// and a B footprint past the cache-resident regime where the pack-free
// blocked kernel holds its own.
func usePacked(m, k, n int) bool {
	return m >= minPackedRows && k*n >= minPackedArea
}

// Dispatch limits behind usePacked; variables only so ForcePackedForTest
// can drive small shapes through the packed kernels.
var (
	minPackedRows = packedMinRows
	minPackedArea = packedThreshold
)

// ForcePackedForTest drops the packed-path dispatch limits to 1 so that
// differential tests sweep the packed kernels at every geometry, including
// the small odd shapes that exercise remainder handling. It returns a
// restore function; not for use outside tests.
func ForcePackedForTest() (restore func()) {
	oldRows, oldArea := minPackedRows, minPackedArea
	minPackedRows, minPackedArea = 1, 1
	return func() { minPackedRows, minPackedArea = oldRows, oldArea }
}

// DisablePackedForTest raises the packed-path dispatch limits above any
// realistic size so Serial/SerialAccum run the blocked baseline kernel —
// used by benchmarks that measure the packed path's advantage. It returns
// a restore function; not for use outside tests and benchmarks.
func DisablePackedForTest() (restore func()) {
	oldRows, oldArea := minPackedRows, minPackedArea
	minPackedRows, minPackedArea = 1<<30, 1<<62
	return func() { minPackedRows, minPackedArea = oldRows, oldArea }
}

// Serial computes C = A·B with a single thread: cache blocking with a 4x4
// register-tiled micro-kernel, switching to the packed-panel kernel for
// large operands. C is overwritten.
func Serial(c, a, b *Matrix) {
	checkMul(c, a, b)
	if usePacked(a.Rows, a.Cols, b.Cols) {
		PackedSerial(c, a, b)
		return
	}
	c.Zero()
	serialRange(c, a, b, 0, a.Rows)
}

// SerialAccum computes C += A·B (no zeroing) with a single thread.
func SerialAccum(c, a, b *Matrix) {
	checkMul(c, a, b)
	if usePacked(a.Rows, a.Cols, b.Cols) {
		buf := bufPool.Get().(*packBuf)
		packedAccum(buf, c, a, b)
		bufPool.Put(buf)
		return
	}
	serialRange(c, a, b, 0, a.Rows)
}

// serialRange accumulates rows [mlo, mhi) of C += A·B using blocked loops.
func serialRange(c, a, b *Matrix, mlo, mhi int) {
	K, N := a.Cols, b.Cols
	for kk := 0; kk < K; kk += blockKC {
		kend := min(kk+blockKC, K)
		for mm := mlo; mm < mhi; mm += blockMC {
			mend := min(mm+blockMC, mhi)
			for nn := 0; nn < N; nn += blockNC {
				nend := min(nn+blockNC, N)
				microPanel(c, a, b, mm, mend, kk, kend, nn, nend)
			}
		}
	}
}

// microPanel runs the register-tiled kernel over an (M-block, K-block,
// N-block) panel: 4 rows of C at a time, 4 columns at a time, accumulators
// held in 16 scalar locals that the compiler keeps in registers. The tile
// body lives in panelTile4x4 (microkernel.go), which is bounds-check-free.
func microPanel(c, a, b *Matrix, mlo, mhi, klo, khi, nlo, nhi int) {
	i := mlo
	for ; i+4 <= mhi; i += 4 {
		a0, a1, a2, a3 := a.Row(i), a.Row(i+1), a.Row(i+2), a.Row(i+3)
		c0, c1, c2, c3 := c.Row(i), c.Row(i+1), c.Row(i+2), c.Row(i+3)
		x0, x1, x2, x3 := a0[klo:khi], a1[klo:khi], a2[klo:khi], a3[klo:khi]
		j := nlo
		for ; j+4 <= nhi; j += 4 {
			bp := b.Data[klo*b.Cols+j:]
			panelTile4x4(c0[j:], c1[j:], c2[j:], c3[j:], x0, x1, x2, x3, bp, b.Cols)
		}
		// N remainder for this 4-row strip.
		for ; j < nhi; j++ {
			var s0, s1, s2, s3 float32
			for k := klo; k < khi; k++ {
				bv := b.Row(k)[j]
				s0 += a0[k] * bv
				s1 += a1[k] * bv
				s2 += a2[k] * bv
				s3 += a3[k] * bv
			}
			c0[j] += s0
			c1[j] += s1
			c2[j] += s2
			c3[j] += s3
		}
	}
	// M remainder rows.
	for ; i < mhi; i++ {
		arow := a.Row(i)
		crow := c.Row(i)
		for k := klo; k < khi; k++ {
			aik := arow[k]
			if aik == 0 {
				continue
			}
			brow := b.Row(k)
			for j := nlo; j < nhi; j++ {
				crow[j] += aik * brow[j]
			}
		}
	}
}

// Flops returns the number of floating point operations a GEMM of these
// dimensions performs (2·M·N·K: one multiply plus one add per term).
func Flops(m, n, k int) int64 {
	return 2 * int64(m) * int64(n) * int64(k)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
