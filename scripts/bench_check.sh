#!/bin/sh
# bench_check: regenerate the quick-scale benchmark reports and gate them
# against the committed baselines in baselines/.
#
# Every BENCH_<exp>.json is schema-validated on load; deterministic
# experiments (analytical tables, paper-machine models) must match the
# baseline within the tolerance band, measured experiments are checked
# structurally (same tables/columns/row labels, finite sign-preserving
# numbers). Regenerate a baseline after an intentional change with:
#
#	go run ./cmd/spg-bench -exp <id> -json -out baselines
#
# Usage: scripts/bench_check.sh [tolerance]
set -eu

cd "$(dirname "$0")/.."
tol="${1:-0.05}"

exps=""
for f in baselines/BENCH_*.json; do
	[ -e "$f" ] || { echo "bench_check: no baselines committed" >&2; exit 1; }
	e="${f#baselines/BENCH_}"
	exps="$exps ${e%.json}"
done

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT INT TERM

go build -o "$tmp/spg-bench" ./cmd/spg-bench
for e in $exps; do
	"$tmp/spg-bench" -exp "$e" -scale quick -json -out "$tmp" \
		-baseline baselines -tolerance "$tol"
done

echo "bench_check: $(echo $exps | wc -w | tr -d ' ') experiment(s) match baselines (tolerance $tol)"
