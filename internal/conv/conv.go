// Package conv defines the convolution specification shared by every
// execution engine, plus direct reference implementations of the three
// convolution computations of CNN training:
//
//	FP  — output activations          (paper Eq. 2)
//	BP  — input-error gradients       (paper Eq. 3)
//	SGD — delta-weights               (paper Eq. 4)
//
// The reference implementations are deliberately plain loop nests over the
// defining equations; they are the correctness oracle every optimized
// engine (unfold+GEMM, stencil, sparse) is tested against, and the
// flop/byte accounting here feeds the AIT characterization of §3.
package conv

import "fmt"

// Spec is the 2-D convolution geometry, matching the paper's 5-tuple
// ⟨Nf, Fy, Fx, sy, sx⟩ plus the input geometry it is applied to.
//
// The convolution is "valid": no implicit padding (networks that need
// padding pad explicitly, as Table 2's note on image padding indicates).
type Spec struct {
	Nx, Ny int // input spatial width (x) and height (y)
	Nc     int // input channels  (paper: number of input features)
	Nf     int // output features
	Fx, Fy int // kernel width and height
	Sx, Sy int // strides
}

// Validate reports whether the spec describes a computable convolution.
func (s Spec) Validate() error {
	switch {
	case s.Nx < 1 || s.Ny < 1:
		return fmt.Errorf("conv: non-positive input size %dx%d", s.Nx, s.Ny)
	case s.Nc < 1 || s.Nf < 1:
		return fmt.Errorf("conv: non-positive feature counts Nc=%d Nf=%d", s.Nc, s.Nf)
	case s.Fx < 1 || s.Fy < 1:
		return fmt.Errorf("conv: non-positive kernel %dx%d", s.Fx, s.Fy)
	case s.Sx < 1 || s.Sy < 1:
		return fmt.Errorf("conv: non-positive stride %dx%d", s.Sx, s.Sy)
	case s.Fx > s.Nx || s.Fy > s.Ny:
		return fmt.Errorf("conv: kernel %dx%d larger than input %dx%d", s.Fx, s.Fy, s.Nx, s.Ny)
	}
	return nil
}

// MustValidate panics if the spec is invalid.
func (s Spec) MustValidate() {
	if err := s.Validate(); err != nil {
		panic(err)
	}
}

// OutX returns the output width (Nx - Fx)/Sx + 1.
func (s Spec) OutX() int { return (s.Nx-s.Fx)/s.Sx + 1 }

// OutY returns the output height (Ny - Fy)/Sy + 1.
func (s Spec) OutY() int { return (s.Ny-s.Fy)/s.Sy + 1 }

// InputSize returns |I| = Nx·Ny·Nc (Eq. 6).
func (s Spec) InputSize() int64 { return int64(s.Nx) * int64(s.Ny) * int64(s.Nc) }

// WeightSize returns |W| = Nf·Fx·Fy·Nc (Eq. 7).
func (s Spec) WeightSize() int64 {
	return int64(s.Nf) * int64(s.Fx) * int64(s.Fy) * int64(s.Nc)
}

// OutputSize returns |O| = Nf·OutX·OutY. For unit stride this is Eq. 8's
// Nf·(Nx−Fx+1)·(Ny−Fy+1).
func (s Spec) OutputSize() int64 { return int64(s.Nf) * int64(s.OutX()) * int64(s.OutY()) }

// UnfoldedSize returns |U|, the element count of the unfolded input matrix:
// one row of Nc·Fx·Fy values per output pixel (Eq. in §3.1).
func (s Spec) UnfoldedSize() int64 {
	return int64(s.OutX()) * int64(s.OutY()) * int64(s.Nc) * int64(s.Fx) * int64(s.Fy)
}

// FlopsFP returns |A| for forward propagation: 2 flops (mul+add) per
// kernel-tap per output element = 2·Nf·OutX·OutY·Nc·Fy·Fx. This is the
// exact form of the paper's Eq. 5 (which writes Nx·Ny for the spatial
// extent of the output).
func (s Spec) FlopsFP() int64 {
	return 2 * s.OutputSize() * int64(s.Nc) * int64(s.Fy) * int64(s.Fx)
}

// FlopsBPInput returns the flop count of the input-error gradient (Eq. 3),
// which touches the same (output, tap) pairs as FP.
func (s Spec) FlopsBPInput() int64 { return s.FlopsFP() }

// FlopsBPWeights returns the flop count of the delta-weight computation
// (Eq. 4), also the same tap structure.
func (s Spec) FlopsBPWeights() int64 { return s.FlopsFP() }

// String renders the spec in the paper's Table 1/2 column format:
// Nx(=Ny),Nf,Nc,Fx(=Fy),sx(=sy).
func (s Spec) String() string {
	if s.Nx == s.Ny && s.Fx == s.Fy && s.Sx == s.Sy {
		return fmt.Sprintf("%d,%d,%d,%d,%d", s.Nx, s.Nf, s.Nc, s.Fx, s.Sx)
	}
	return fmt.Sprintf("%dx%d,%d,%d,%dx%d,%dx%d", s.Nx, s.Ny, s.Nf, s.Nc, s.Fx, s.Fy, s.Sx, s.Sy)
}

// Square is a convenience constructor for square-geometry specs
// (N, Nf, Nc, F, s), the form both paper tables use.
func Square(n, nf, nc, f, stride int) Spec {
	return Spec{Nx: n, Ny: n, Nc: nc, Nf: nf, Fx: f, Fy: f, Sx: stride, Sy: stride}
}
