#!/bin/sh
# CI gate: formatting, vet, build, the race-instrumented short test suite,
# the quick-scale benchmark baseline check, and the plan-cache round-trip
# check (warm starts must deploy cached strategy verdicts with zero
# measurement passes).
# Run from the repository root.
set -eux

test -z "$(gofmt -l .)"
go vet ./...
go build ./...
go test -race -short ./...
scripts/bench_check.sh
scripts/plan_check.sh
