package spgcnn_test

// One testing.B benchmark per paper table/figure, each driving the same
// runner `spg-bench -exp <id>` uses (quick scale). Analytical/modeled
// experiments cost microseconds per iteration; measured ones execute real
// kernels or training steps. Run with:
//
//	go test -bench=. -benchmem
//
// The rendered outputs (paper-vs-measured) are recorded in EXPERIMENTS.md;
// `go run ./cmd/spg-bench -all` regenerates them.

import (
	"testing"

	"spgcnn"
)

func benchExperiment(b *testing.B, id string) {
	e, err := spgcnn.LookupExperiment(id)
	if err != nil {
		b.Fatal(err)
	}
	opts := spgcnn.ExperimentOptions{Scale: "quick"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tables := e.Run(opts)
		if len(tables) == 0 {
			b.Fatalf("%s produced no tables", id)
		}
	}
}

// Analytical experiments (the §3 characterization and the machine model).

func BenchmarkTable1(b *testing.B) { benchExperiment(b, "table1") }
func BenchmarkFig1(b *testing.B)   { benchExperiment(b, "fig1") }
func BenchmarkFig3a(b *testing.B)  { benchExperiment(b, "fig3a") }
func BenchmarkFig4a(b *testing.B)  { benchExperiment(b, "fig4a") }
func BenchmarkFig4b(b *testing.B)  { benchExperiment(b, "fig4b") }
func BenchmarkFig4c(b *testing.B)  { benchExperiment(b, "fig4c") }
func BenchmarkFig4d(b *testing.B)  { benchExperiment(b, "fig4d") }
func BenchmarkFig4e(b *testing.B)  { benchExperiment(b, "fig4e") }
func BenchmarkFig4f(b *testing.B)  { benchExperiment(b, "fig4f") }
func BenchmarkTable2(b *testing.B) { benchExperiment(b, "table2") }

// Measured experiments (real kernels / real training on this host).

func BenchmarkFig3b(b *testing.B)        { benchExperiment(b, "fig3b") }
func BenchmarkFig4Measured(b *testing.B) { benchExperiment(b, "fig4-measured") }
func BenchmarkFig8(b *testing.B)         { benchExperiment(b, "fig8") }
func BenchmarkFig9(b *testing.B)         { benchExperiment(b, "fig9") }

// Ablations and extensions (see DESIGN.md §6).

func BenchmarkAblationSpatial(b *testing.B) { benchExperiment(b, "ablation-spatial") }
func BenchmarkAblationRTile(b *testing.B)   { benchExperiment(b, "ablation-rtile") }
func BenchmarkAblationCTCSR(b *testing.B)   { benchExperiment(b, "ablation-ctcsr") }
func BenchmarkAblationMachine(b *testing.B) { benchExperiment(b, "ablation-machine") }
func BenchmarkAblationFFT(b *testing.B)     { benchExperiment(b, "ablation-fft") }
func BenchmarkGoodputTrain(b *testing.B)    { benchExperiment(b, "goodput-train") }

// Per-technique kernel micro-benchmarks on the paper's CIFAR-10 layer 0
// geometry (Table 2: 36,64,3,5,1) — the head-to-head behind Fig. 8's
// CIFAR bars, with GFlops and goodput reported as custom metrics.

func cifarL0() (spec spgcnn.ConvSpec, in, w, out, ei, dw, eoDense, eoSparse *spgcnn.Tensor) {
	spec = spgcnn.Square(36, 64, 3, 5, 1)
	r := spgcnn.NewRNG(1)
	in = spgcnn.NewInput(spec)
	in.FillNormal(r, 0, 1)
	w = spgcnn.NewWeights(spec)
	w.FillNormal(r, 0, 0.1)
	out = spgcnn.NewOutput(spec)
	ei = spgcnn.NewInput(spec)
	dw = spgcnn.NewWeights(spec)
	eoDense = spgcnn.NewOutput(spec)
	eoDense.FillNormal(r, 0, 1)
	eoSparse = eoDense.Clone()
	eoSparse.Sparsify(r, 0.85)
	return
}

func BenchmarkKernelFPUnfoldGEMM(b *testing.B) {
	spec, in, w, out, _, _, _, _ := cifarL0()
	k := spgcnn.NewUnfoldGEMM(spec, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.Forward(out, in, w)
	}
	b.ReportMetric(float64(spec.FlopsFP())*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFlops")
}

func BenchmarkKernelFPStencil(b *testing.B) {
	spec, in, w, out, _, _, _, _ := cifarL0()
	k := spgcnn.NewStencil(spec)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.Forward(out, in, w)
	}
	b.ReportMetric(float64(spec.FlopsFP())*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFlops")
}

func BenchmarkKernelBPDense(b *testing.B) {
	spec, in, w, _, ei, dw, eoDense, _ := cifarL0()
	k := spgcnn.NewUnfoldGEMM(spec, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.BackwardInput(ei, eoDense, w)
		k.BackwardWeights(dw, eoDense, in)
	}
}

func BenchmarkKernelBPSparse85(b *testing.B) {
	spec, in, w, _, ei, dw, _, eoSparse := cifarL0()
	k := spgcnn.NewSparse(spec, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.BackwardInput(ei, eoSparse, w)
		k.BackwardWeights(dw, eoSparse, in)
	}
	useful := float64(2 * spgcnn.SparseNonZeroFlops(spec, eoSparse.NNZ()))
	b.ReportMetric(useful*float64(b.N)/b.Elapsed().Seconds()/1e9, "goodput-GFlops")
}

// End-to-end training-step benchmark on the CIFAR network (the unit of
// Fig. 9's throughput), via the public training API.

func BenchmarkTrainStepCIFAR(b *testing.B) {
	def, err := spgcnn.ParseNet(spgcnn.CIFARNet)
	if err != nil {
		b.Fatal(err)
	}
	st := spgcnn.FPStrategies(1)[1]
	net, err := spgcnn.BuildNet(def, spgcnn.BuildOptions{Workers: 1, FixedStrategy: &st, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	tr := spgcnn.NewTrainer(net, 0.01, 4)
	ds := spgcnn.CIFARData(4)
	r := spgcnn.NewRNG(2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stats := tr.TrainEpoch(ds, r)
		b.ReportMetric(stats.ImagesPerSec, "images/sec")
	}
}

// BenchmarkTrainStepAllocs measures steady-state allocations of one full
// FP+BP step on the CIFAR-10 layer-0 geometry with the paper's composed
// deployment (Stencil-Kernel FP + Sparse-Kernel BP). allocs/op is the
// headline number tracked in results/alloc_baseline.txt: it should stay
// near zero once every engine draws scratch from the execution context's
// arena instead of the Go allocator.
func BenchmarkTrainStepAllocs(b *testing.B) {
	spec := spgcnn.Square(36, 64, 3, 5, 1) // CIFAR-10 layer 0 (Table 2)
	r := spgcnn.NewRNG(9)
	const batch = 4
	var ins, outs, eis, eos []*spgcnn.Tensor
	for i := 0; i < batch; i++ {
		in := spgcnn.NewInput(spec)
		in.FillNormal(r, 0, 1)
		eo := spgcnn.NewOutput(spec)
		eo.FillNormal(r, 0, 1)
		eo.Sparsify(r, 0.85)
		ins = append(ins, in)
		eos = append(eos, eo)
		outs = append(outs, spgcnn.NewOutput(spec))
		eis = append(eis, spgcnn.NewInput(spec))
	}
	w := spgcnn.NewWeights(spec)
	w.FillNormal(r, 0, 0.1)
	dw := spgcnn.NewWeights(spec)

	fe := spgcnn.NewExec(spgcnn.FPStrategies(2)[2], spec, 2) // stencil
	be := spgcnn.NewExec(spgcnn.BPStrategies(2)[2], spec, 2) // sparse

	step := func() {
		fe.Forward(outs, ins, w)
		be.BackwardInput(eis, eos, w)
		be.BackwardWeights(dw, eos, ins)
	}
	step() // warm-up: grow scratch to steady state
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		step()
	}
}
