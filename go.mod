module spgcnn

go 1.22
