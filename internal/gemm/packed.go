package gemm

import "sync"

// Packed-operand SGEMM: the B operand is copied once into column panels of
// panelW columns, interleaved along K (panel element 8k+c holds B[k][j+c]),
// and the inner kernel (microDot8, microkernel.go) streams ONE packed panel
// against one A row — two slice advances per K step feeding eight
// register-resident accumulators. Classical packing (Goto & van de Geijn,
// the paper's [26]) buys contiguity; the interleaved layout additionally
// collapses the eight B-row streams of the dot-orientation kernel into a
// single stream, which is what pushes the pure-Go kernel past the blocked
// RMW tile on this machine.
//
// The pack costs O(K·N) moves against O(M·K·N) arithmetic, so it amortizes
// across the M output rows of a single call — and across an entire batch
// (and training steps) when the packed operand is a constant weight matrix
// reused via PackedB (packedplan.go).
//
// Accumulation order: every output element is one full-K dot product with a
// single accumulator walking k in increasing order — the same order as
// Naive's inner loop and the same order dotRows8 uses, so the packed path
// is bit-identical to the MulTransB row kernel it accelerates.

// panelW is the packed panel width: eight C columns computed per A-row pass,
// matching the eight accumulator chains microDot8 keeps in registers.
const panelW = 8

// packedThreshold selects the packed path in Serial/SerialAccum/Parallel
// once the B footprint (K·N elements) outgrows the regime where the
// pack-free blocked kernel's strided B walk is still cheap. Below it the
// O(K·N) pack is a poor trade for cache-resident operands; above it the
// single-stream panels win decisively (see BenchmarkGemmMicrokernel).
const packedThreshold = 24_576 // K·N elements

// packedMinRows gates the packed path on output height: with fewer rows the
// pack cost is not amortized and the blocked kernel stays ahead.
const packedMinRows = 4

// packBuf holds reusable panel storage for the pack-per-call entry points; a
// zero value is ready to use and grows on demand.
type packBuf struct {
	b []float32
}

// panels returns a buffer of at least n floats, reusing prior storage.
func (p *packBuf) panels(n int) []float32 {
	if cap(p.b) < n {
		p.b = make([]float32, n)
	}
	return p.b[:n]
}

// bufPool recycles packBufs for the pack-per-call paths so steady-state
// training steps do not allocate (Batch runs many Serial instances
// concurrently; sync.Pool keeps them race-free).
var bufPool = sync.Pool{New: func() any { return new(packBuf) }}

// padUp rounds n up to a multiple of panelW.
func padUp(n int) int { return (n + panelW - 1) / panelW * panelW }

// packPanels copies B (K×N row-major) into k-interleaved panels of panelW
// columns: dst[(j/panelW)*K*panelW + k*panelW + c] = B[k][j+c]. Columns past
// N pack as zeros so the kernel needs no column-edge variant. dst must have
// K*padUp(N) elements.
func packPanels(dst []float32, b *Matrix) {
	K, N := b.Rows, b.Cols
	idx := 0
	j := 0
	for ; j+panelW <= N; j += panelW {
		copyStrip8(dst[idx:idx+K*panelW], b.Data[j:], N)
		idx += K * panelW
	}
	if j < N {
		for k := 0; k < K; k++ {
			brow := b.Data[k*N : (k+1)*N]
			for c := 0; c < panelW; c++ {
				if j+c < N {
					dst[idx] = brow[j+c]
				} else {
					dst[idx] = 0
				}
				idx++
			}
		}
	}
}

// packPanelsTrans packs the TRANSPOSE of src (N×K row-major) into the same
// panel layout — the B operand of C = A·srcᵀ without materializing the
// transpose: dst[...] = src[j+c][k]. Each panel gathers eight consecutive
// src rows walked along k (gatherStrip8). Rows past src.Rows pack as zeros.
// dst must have K*padUp(src.Rows) elements.
func packPanelsTrans(dst []float32, src *Matrix) {
	K, N := src.Cols, src.Rows
	idx := 0
	j := 0
	for ; j+panelW <= N; j += panelW {
		gatherStrip8(dst[idx:idx+K*panelW],
			src.Row(j), src.Row(j+1), src.Row(j+2), src.Row(j+3),
			src.Row(j+4), src.Row(j+5), src.Row(j+6), src.Row(j+7))
		idx += K * panelW
	}
	if j < N {
		for k := 0; k < K; k++ {
			for c := 0; c < panelW; c++ {
				if j+c < N {
					dst[idx] = src.Data[(j+c)*K+k]
				} else {
					dst[idx] = 0
				}
				idx++
			}
		}
	}
}

// packedMulRange computes rows [lo, hi) of C = A·B (accum=false overwrites,
// accum=true adds) from pre-packed panels covering all padUp(n) columns.
// n is the live column count (c.Cols).
func packedMulRange(c, a *Matrix, panels []float32, n int, lo, hi int, accum bool) {
	K := a.Cols
	for i := lo; i < hi; i++ {
		arow := a.Row(i)
		crow := c.Row(i)
		j := 0
		for ; j+panelW <= n; j += panelW {
			s0, s1, s2, s3, s4, s5, s6, s7 := microDot8(arow, panels[j*K:(j+panelW)*K])
			if accum {
				crow[j] += s0
				crow[j+1] += s1
				crow[j+2] += s2
				crow[j+3] += s3
				crow[j+4] += s4
				crow[j+5] += s5
				crow[j+6] += s6
				crow[j+7] += s7
			} else {
				crow[j] = s0
				crow[j+1] = s1
				crow[j+2] = s2
				crow[j+3] = s3
				crow[j+4] = s4
				crow[j+5] = s5
				crow[j+6] = s6
				crow[j+7] = s7
			}
		}
		if j < n {
			// Final partial panel: zero-padded columns yield dots that are
			// simply not stored.
			s := [panelW]float32{}
			s[0], s[1], s[2], s[3], s[4], s[5], s[6], s[7] = microDot8(arow, panels[j*K:(j+panelW)*K])
			for c2 := 0; j+c2 < n; c2++ {
				if accum {
					crow[j+c2] += s[c2]
				} else {
					crow[j+c2] = s[c2]
				}
			}
		}
	}
}

// packedAccum computes C += A·B, packing B's panels into buf for the call.
func packedAccum(buf *packBuf, c, a, b *Matrix) {
	panels := buf.panels(b.Rows * padUp(b.Cols))
	packPanels(panels, b)
	packedMulRange(c, a, panels, b.Cols, 0, a.Rows, true)
}

// PackedSerial computes C = A·B through the packed-panel kernel,
// single-threaded. C is overwritten.
func PackedSerial(c, a, b *Matrix) {
	checkMul(c, a, b)
	buf := bufPool.Get().(*packBuf)
	panels := buf.panels(b.Rows * padUp(b.Cols))
	packPanels(panels, b)
	packedMulRange(c, a, panels, b.Cols, 0, a.Rows, false)
	bufPool.Put(buf)
}

// PackedAccumWith computes C += A·B using caller-owned packing storage
// (reusable across calls, e.g. by a conv kernel invoked per image).
func PackedAccumWith(buf *packBuf, c, a, b *Matrix) {
	checkMul(c, a, b)
	packedAccum(buf, c, a, b)
}
