package spkernel

import (
	"testing"

	"spgcnn/internal/conv"
	"spgcnn/internal/engine"
	"spgcnn/internal/engine/enginetest"
	"spgcnn/internal/rng"
	"spgcnn/internal/tensor"
	"spgcnn/internal/unfoldgemm"
)

func TestDifferentialVsUnfoldGEMM(t *testing.T) {
	// The sparse kernel's whole point is the high-sparsity regime, so the
	// sweep leans there on top of the default dense-to-0.99 ladder.
	enginetest.RunDifferential(t, Generator(), unfoldgemm.Generator(1), enginetest.DiffOptions{
		Seed:       0xD1F5,
		Sparsities: []float64{0, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99},
	})
}

func TestConformance(t *testing.T) {
	enginetest.Run(t, Generator(), enginetest.Options{
		Trials: 25,
		Seed:   21,
		ExtraSpecs: []conv.Spec{
			conv.Square(28, 20, 1, 5, 1),  // MNIST L0
			conv.Square(8, 64, 64, 5, 1),  // CIFAR L1
			conv.Square(20, 8, 3, 5, 2),   // strided
			conv.Square(12, 130, 2, 3, 1), // Nf spans >2 CT-CSR tiles
		},
	})
}

func TestConformanceTileWidths(t *testing.T) {
	for _, tw := range []int{1, 3, 16, 1024} {
		tw := tw
		gen := engine.Generator{
			Name: "sparse-tiled",
			New:  func(s conv.Spec) engine.Kernel { return New(s, tw) },
		}
		enginetest.Run(t, gen, enginetest.Options{Trials: 6, Seed: uint64(200 + tw)})
	}
}

func TestFullySparseEOGivesZeroGradients(t *testing.T) {
	s := conv.Square(10, 4, 3, 3, 1)
	r := rng.New(1)
	k := New(s, 0)
	in := conv.RandInput(r, s)
	w := conv.RandWeights(r, s)
	eo := conv.NewOutput(s) // all zeros

	ei := conv.NewInput(s)
	ei.FillUniform(r, 1, 2)
	k.BackwardInput(ei, eo, w)
	if ei.NNZ() != 0 {
		t.Fatal("zero EO produced non-zero EI")
	}
	dw := conv.NewWeights(s)
	dw.FillUniform(r, 1, 2)
	k.BackwardWeights(dw, eo, in)
	if dw.NNZ() != 0 {
		t.Fatal("zero EO produced non-zero dW")
	}
}

func TestSingleNonZeroPointerShift(t *testing.T) {
	// One non-zero EO[f=1, y'=2, x'=1] with stride (2,1) must land
	// exactly on EI[c, 2·2+ky, 1·1+kx] = eo·W[1,c,ky,kx] (Eq. 15).
	s := conv.Spec{Nx: 9, Ny: 9, Nc: 2, Nf: 3, Fx: 2, Fy: 2, Sx: 1, Sy: 2}
	r := rng.New(2)
	w := conv.RandWeights(r, s)
	eo := conv.NewOutput(s)
	eo.Set3(1, 2, 1, 5)
	ei := conv.NewInput(s)
	New(s, 0).BackwardInput(ei, eo, w)
	for c := 0; c < s.Nc; c++ {
		for ky := 0; ky < s.Fy; ky++ {
			for kx := 0; kx < s.Fx; kx++ {
				want := 5 * w.At4(1, c, ky, kx)
				if got := ei.At3(c, 4+ky, 1+kx); got != want {
					t.Fatalf("EI[%d,%d,%d] = %v, want %v", c, 4+ky, 1+kx, got, want)
				}
			}
		}
	}
	// Everything else must be zero: exactly Nc·Fy·Fx positions written.
	if ei.NNZ() > s.Nc*s.Fy*s.Fx {
		t.Fatalf("EI has %d non-zeros, want <= %d", ei.NNZ(), s.Nc*s.Fy*s.Fx)
	}
}

func TestWorkScalesWithNNZ(t *testing.T) {
	// The defining property of the sparse kernel: zero entries cost
	// nothing. We verify semantically (identical results whether zeros are
	// explicit or the tensor is mostly empty) and via NonZeroFlops.
	s := conv.Square(12, 6, 4, 3, 1)
	if NonZeroFlops(s, 0) != 0 {
		t.Fatal("zero nnz should be zero flops")
	}
	if NonZeroFlops(s, 10) != 2*10*3*3*4 {
		t.Fatalf("NonZeroFlops = %d", NonZeroFlops(s, 10))
	}
}

func TestSparseMatchesReferenceAcrossSparsities(t *testing.T) {
	r := rng.New(3)
	s := conv.Square(14, 8, 5, 3, 1)
	k := New(s, 4)
	w := conv.RandWeights(r, s)
	in := conv.RandInput(r, s)
	for _, sp := range []float64{0, 0.25, 0.5, 0.75, 0.9, 0.97, 1} {
		eo := conv.RandOutputError(r, s, sp)
		gotEI, wantEI := conv.NewInput(s), conv.NewInput(s)
		k.BackwardInput(gotEI, eo, w)
		conv.BackwardInputRef(s, wantEI, eo, w)
		if !tensor.AlmostEqual(gotEI, wantEI, 1e-3) {
			t.Fatalf("EI differs at sparsity %v", sp)
		}
		gotDW, wantDW := conv.NewWeights(s), conv.NewWeights(s)
		k.BackwardWeights(gotDW, eo, in)
		conv.BackwardWeightsRef(s, wantDW, eo, in)
		if !tensor.AlmostEqual(gotDW, wantDW, 1e-3) {
			t.Fatalf("dW differs at sparsity %v", sp)
		}
	}
}

func TestAxpy(t *testing.T) {
	for n := 0; n <= 9; n++ {
		dst := make([]float32, n)
		src := make([]float32, n)
		for i := range src {
			dst[i] = float32(i)
			src[i] = float32(i * i)
		}
		axpy(dst, src, 2)
		for i := range dst {
			want := float32(i) + 2*float32(i*i)
			if dst[i] != want {
				t.Fatalf("n=%d: axpy[%d] = %v, want %v", n, i, dst[i], want)
			}
		}
	}
}

func benchBP(b *testing.B, sparsity float64) {
	s := conv.Square(32, 32, 32, 4, 1) // Table 1 ID 0
	r := rng.New(1)
	w := conv.RandWeights(r, s)
	eo := conv.RandOutputError(r, s, sparsity)
	ei := conv.NewInput(s)
	k := New(s, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.BackwardInput(ei, eo, w)
	}
	nzf := NonZeroFlops(s, eo.NNZ())
	b.ReportMetric(float64(nzf)*float64(b.N)/b.Elapsed().Seconds()/1e9, "goodput-GFlops")
}

func BenchmarkBackwardInputSparsity50(b *testing.B) { benchBP(b, 0.50) }
func BenchmarkBackwardInputSparsity85(b *testing.B) { benchBP(b, 0.85) }
func BenchmarkBackwardInputSparsity97(b *testing.B) { benchBP(b, 0.97) }
