package dataparallel

import (
	"testing"
	"time"

	"spgcnn/internal/nn"
	"spgcnn/internal/rng"
	"spgcnn/internal/tensor"
)

// TestInjectedStragglerAttribution pins the straggler surface without
// mitigation: with replica 1 injected slow, the barrier wait must
// concentrate on the OTHER replicas (they finish first and wait), and the
// slow replica itself must wait ~nothing.
func TestInjectedStragglerAttribution(t *testing.T) {
	dp, err := New(func(int) *nn.Network { return buildNet(7) }, Config{
		Replicas: 4, GlobalBatch: 16, LR: 0.05, SyncEvery: 1,
		InjectSlowReplica: 1, InjectSlowPerImage: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	stats := dp.TrainEpoch(ds{n: 64}, rng.New(3))
	slow := stats.Replicas[1]
	var fastWait float64
	for w, r := range stats.Replicas {
		if w != 1 {
			fastWait += r.BarrierWait
		}
	}
	if fastWait <= 0 {
		t.Fatal("no barrier wait attributed to the fast replicas")
	}
	// The injected replica sleeps 2ms × 4 images per step; the fast
	// replicas' mean wait should dwarf the slow one's.
	if slow.BarrierWait > fastWait/3 {
		t.Fatalf("wait did not concentrate on fast replicas: slow %.4fs, fast total %.4fs",
			slow.BarrierWait, fastWait)
	}
	if stats.Rechunks != 0 {
		t.Fatalf("mitigation off but %d rechunks happened", stats.Rechunks)
	}
	for _, r := range stats.Replicas {
		if r.Share != 4 {
			t.Fatalf("shares moved without mitigation: %+v", stats.Replicas)
		}
	}
}

// TestMitigationShrinksStragglerShare closes the loop: with mitigation on,
// the injected slow replica's share must shrink (re-chunked onto the fast
// replicas) and the rechunk events must be reported.
func TestMitigationShrinksStragglerShare(t *testing.T) {
	cfg := Config{
		Replicas: 4, GlobalBatch: 32, LR: 0.05, SyncEvery: 1, Mitigate: true,
		InjectSlowReplica: 1, InjectSlowPerImage: 3 * time.Millisecond,
	}
	dp, err := New(func(int) *nn.Network { return buildNet(7) }, cfg)
	if err != nil {
		t.Fatal(err)
	}
	data := ds{n: 128}
	r := rng.New(3)
	stats := dp.TrainEpoch(data, r)
	if stats.Rechunks == 0 {
		t.Fatal("mitigation never re-chunked against an injected straggler")
	}
	slow := stats.Replicas[1]
	if slow.Share >= 8 {
		t.Fatalf("slow replica share %d did not shrink below the equal share 8 (shares %+v)",
			slow.Share, shares(stats))
	}
	total := 0
	for _, rs := range stats.Replicas {
		total += rs.Share
		if rs.Share < 1 {
			t.Fatalf("share below minimum: %+v", shares(stats))
		}
	}
	if total != cfg.GlobalBatch {
		t.Fatalf("shares %+v do not sum to the global batch %d", shares(stats), cfg.GlobalBatch)
	}
	if stats.Images != 128 {
		t.Fatalf("mitigation changed the trained image count: %d", stats.Images)
	}
	// Replicas must still be in lockstep after the epoch's syncs.
	ref := dp.Replica(0).Parameters()
	for i := 1; i < cfg.Replicas; i++ {
		ps := dp.Replica(i).Parameters()
		for j := range ps {
			if tensor.MaxAbsDiff(ref[j].Tensor, ps[j].Tensor) != 0 {
				t.Fatalf("replica %d out of lockstep after mitigated epoch", i)
			}
		}
	}
}

// TestMitigationRecoversThroughput is the goodput-recovery claim: with the
// same injected straggler, a mitigated epoch must finish measurably faster
// than an unmitigated one (the injected sleep is proportional to the
// slow replica's share, so re-chunking converts dead barrier time into
// useful work on the other replicas).
func TestMitigationRecoversThroughput(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-based")
	}
	run := func(mitigate bool) (Stats, float64) {
		dp, err := New(func(int) *nn.Network { return buildNet(7) }, Config{
			Replicas: 4, GlobalBatch: 32, LR: 0.05, SyncEvery: 1, Mitigate: mitigate,
			InjectSlowReplica: 1, InjectSlowPerImage: 4 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		data := ds{n: 128}
		r := rng.New(3)
		dp.TrainEpoch(data, r) // warm epoch: tuning + (for mitigation) share convergence
		stats := dp.TrainEpoch(data, r)
		return stats, stats.ImagesPerSec
	}
	base, baseIPS := run(false)
	mit, mitIPS := run(true)
	if mitIPS <= baseIPS {
		t.Fatalf("mitigation did not recover throughput: %.1f img/s (mitigated) vs %.1f (baseline)",
			mitIPS, baseIPS)
	}
	baseWait := stragglerWaitOthers(base)
	mitWait := stragglerWaitOthers(mit)
	if mitWait >= baseWait {
		t.Fatalf("re-chunking did not shrink barrier wait: %.4fs vs %.4fs", mitWait, baseWait)
	}
}

func shares(s Stats) []int {
	out := make([]int, len(s.Replicas))
	for i, r := range s.Replicas {
		out[i] = r.Share
	}
	return out
}

// stragglerWaitOthers sums barrier wait over every replica except the
// injected one (index 1 in these tests).
func stragglerWaitOthers(s Stats) float64 {
	var sum float64
	for w, r := range s.Replicas {
		if w != 1 {
			sum += r.BarrierWait
		}
	}
	return sum
}
