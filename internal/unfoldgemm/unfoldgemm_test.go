package unfoldgemm

import (
	"testing"

	"spgcnn/internal/conv"
	"spgcnn/internal/engine/enginetest"
	"spgcnn/internal/exec"
	"spgcnn/internal/rng"
	"spgcnn/internal/tensor"
)

func TestConformanceSerial(t *testing.T) {
	enginetest.Run(t, Generator(1), enginetest.Options{Seed: 1})
}

func TestConformanceParallel4(t *testing.T) {
	enginetest.Run(t, Generator(4), enginetest.Options{Seed: 2})
}

func TestConformanceParallel16(t *testing.T) {
	enginetest.Run(t, Generator(16), enginetest.Options{Trials: 8, Seed: 3})
}

func TestDifferentialParallelVsSerial(t *testing.T) {
	enginetest.RunDifferential(t, Generator(4), Generator(1), enginetest.DiffOptions{Seed: 0xD1F1})
}

func TestDifferentialBatchedVsSerial(t *testing.T) {
	// The stacked BPW GEMM sums a whole image group in one multiply, a
	// structural reassociation of the oracle's per-sample sum — hence the
	// wider relative-error escape (cancellation near zero).
	enginetest.RunDifferential(t, BatchedGenerator(4, 2), Generator(1),
		enginetest.DiffOptions{Seed: 0xD1F2, Batch: 5, RelTol: 1e-4})
}

func TestNames(t *testing.T) {
	s := conv.Square(8, 2, 2, 3, 1)
	if got := New(s, 1).Name(); got != "unfold-gemm(serial)" {
		t.Fatalf("serial name = %q", got)
	}
	if got := New(s, 8).Name(); got != "unfold-parallel-gemm(p=8)" {
		t.Fatalf("parallel name = %q", got)
	}
	if Generator(1).Name != "unfold-gemm" || Generator(2).Name != "unfold-parallel-gemm" {
		t.Fatal("generator names wrong")
	}
	if New(s, 0).Workers() != 1 {
		t.Fatal("workers floor at 1")
	}
}

func TestSerialAndParallelAgree(t *testing.T) {
	r := rng.New(9)
	for trial := 0; trial < 10; trial++ {
		s := conv.RandSpec(r, 10)
		in := conv.RandInput(r, s)
		w := conv.RandWeights(r, s)
		eo := conv.RandOutputError(r, s, 0.6)

		serial, parallel := New(s, 1), New(s, 7)

		o1, o2 := conv.NewOutput(s), conv.NewOutput(s)
		serial.Forward(o1, in, w)
		parallel.Forward(o2, in, w)
		if !tensor.AlmostEqual(o1, o2, 1e-4) {
			t.Fatalf("FP serial/parallel disagree for %v", s)
		}

		e1, e2 := conv.NewInput(s), conv.NewInput(s)
		serial.BackwardInput(e1, eo, w)
		parallel.BackwardInput(e2, eo, w)
		if !tensor.AlmostEqual(e1, e2, 1e-4) {
			t.Fatalf("BP-EI serial/parallel disagree for %v", s)
		}

		d1, d2 := conv.NewWeights(s), conv.NewWeights(s)
		serial.BackwardWeights(d1, eo, in)
		parallel.BackwardWeights(d2, eo, in)
		if !tensor.AlmostEqual(d1, d2, 1e-4) {
			t.Fatalf("BP-dW serial/parallel disagree for %v", s)
		}
	}
}

func benchForward(b *testing.B, s conv.Spec, workers int) {
	r := rng.New(1)
	in := conv.RandInput(r, s)
	w := conv.RandWeights(r, s)
	out := conv.NewOutput(s)
	k := New(s, workers)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.Forward(out, in, w)
	}
	b.ReportMetric(float64(s.FlopsFP())*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFlops")
}

func BenchmarkForwardCIFARL0Serial(b *testing.B) {
	benchForward(b, conv.Square(36, 64, 3, 5, 1), 1)
}

func BenchmarkForwardCIFARL1Serial(b *testing.B) {
	benchForward(b, conv.Square(8, 64, 64, 5, 1), 1)
}

func BenchmarkForwardMNISTL0Serial(b *testing.B) {
	benchForward(b, conv.Square(28, 20, 1, 5, 1), 1)
}

func TestForwardBlockedBatchBitIdentical(t *testing.T) {
	// The blocked entry point unfolds out of blocked storage and re-blocks
	// the output; the GEMM in between is the same code with the same
	// operand order, so results must match ForwardBatch bit-for-bit.
	r := rng.New(21)
	c := exec.New(2)
	for _, s := range []conv.Spec{
		conv.Square(9, 3, 2, 3, 1),
		conv.Square(12, 16, 9, 3, 1),
		{Nx: 11, Ny: 7, Nc: 5, Nf: 10, Fx: 3, Fy: 2, Sx: 2, Sy: 1},
	} {
		for _, workers := range []int{1, 2} {
			k := New(s, workers)
			in := conv.RandInput(r, s)
			w := conv.RandWeights(r, s)
			want := conv.NewOutput(s)
			k.ForwardBatch(c, []*tensor.Tensor{want}, []*tensor.Tensor{in}, w)
			outb := conv.NewBlockedOutput(s)
			k.ForwardBlockedBatch(c, []*tensor.Tensor{outb}, []*tensor.Tensor{tensor.ToBlocked(in)}, w)
			if got := tensor.FromBlocked(outb, s.Nf); !tensor.Identical(got, want) {
				t.Fatalf("%v p=%d: blocked FP differs from NCHW FP", s, workers)
			}
		}
	}
}
