package dataparallel

import (
	"bytes"
	"testing"

	"spgcnn/internal/netdef"
	"spgcnn/internal/rng"
	"spgcnn/internal/trace"
)

// tracedNet includes a relu so BP gradients are genuinely sparse and the
// epoch accounting exercises the sparsity/band path.
const tracedNet = `
name: "traced"
input { channels: 2 height: 10 width: 10 }
layer { name: "conv0" type: "conv" features: 4 kernel: 3 stride: 1 }
layer { name: "relu0" type: "relu" }
layer { name: "fc0" type: "fc" outputs: 4 }
`

// TestTrainEpochTraced drives a 2-replica epoch with a recorder bound and
// checks the full observability surface: per-replica stats, the timeline
// events each analyzer consumes, and a Perfetto export that round-trips.
func TestTrainEpochTraced(t *testing.T) {
	def, err := netdef.Parse(tracedNet)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := NewFromDef(def, netdef.BuildOptions{Workers: 1, Seed: 3},
		Config{Replicas: 2, GlobalBatch: 8, LR: 0.01, SyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Contexts()) != 2 {
		t.Fatalf("contexts = %d, want 2", len(tr.Contexts()))
	}
	rec := trace.New(trace.Options{})
	tr.BindTrace(rec)

	stats := tr.TrainEpoch(ds{n: 16}, rng.New(1))

	// Satellite: per-replica step-time stats.
	if len(stats.Replicas) != 2 {
		t.Fatalf("replica stats = %d rows, want 2", len(stats.Replicas))
	}
	for _, r := range stats.Replicas {
		if r.Steps != 2 {
			t.Fatalf("replica %d steps = %d, want 2", r.Replica, r.Steps)
		}
		if r.Min <= 0 || r.Min > r.Mean() || r.Mean() > r.Max {
			t.Fatalf("replica %d min/mean/max out of order: %+v", r.Replica, r)
		}
	}
	if stats.Seconds <= 0 {
		t.Fatalf("epoch seconds = %v", stats.Seconds)
	}
	if _, ok := stats.ConvSparsity["conv0"]; !ok {
		t.Fatal("conv sparsity missing")
	}
	if stats.ConvGFlops <= 0 || stats.ConvGoodputGFlops <= 0 ||
		stats.ConvGoodputGFlops > stats.ConvGFlops {
		t.Fatalf("work rates wrong: dense %v goodput %v", stats.ConvGFlops, stats.ConvGoodputGFlops)
	}

	c := rec.Capture()
	if err := trace.Validate(c); err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, ev := range c.Events {
		counts[ev.Cat+"/"+ev.Name]++
	}
	if counts["step/step"] != 4 { // 2 replicas × 2 steps
		t.Fatalf("step spans = %d, want 4", counts["step/step"])
	}
	if counts["sync/allreduce"] != 2 {
		t.Fatalf("allreduce spans = %d, want 2", counts["sync/allreduce"])
	}
	if counts["epoch/epoch"] != 1 || counts["sparsity/sparsity/conv0"] != 1 {
		t.Fatalf("epoch accounting events missing: %v", counts)
	}
	// Probe bridge: layer spans and the planner's cold measurement.
	if counts["layer/layer/conv0/fp/"+fpStrategyOf(c)] == 0 {
		t.Fatalf("conv fp layer spans missing: %v", counts)
	}
	measures := 0
	for key, n := range counts {
		if key == "plan/plan/fp/measure" || key == "plan/plan/bp/measure" {
			measures += n
		}
	}
	if measures == 0 {
		t.Fatalf("planner measurement spans missing: %v", counts)
	}

	// Analyzers consume the live capture directly.
	sr := trace.Stragglers(c)
	if sr.Steps != 2 || len(sr.Rows) != 2 || sr.Syncs != 2 {
		t.Fatalf("straggler report = %+v", sr)
	}
	wr := trace.GoodputWaste(c)
	if wr.Epochs != 1 || len(wr.Rows) != 1 || wr.Rows[0].Layer != "conv0" {
		t.Fatalf("waste report = %+v", wr)
	}
	if wr.Rows[0].DenseFlops <= 0 || wr.Rows[0].UsefulFlops <= 0 {
		t.Fatalf("waste row = %+v", wr.Rows[0])
	}

	// The export round-trips through the Perfetto JSON.
	var buf bytes.Buffer
	if err := trace.WriteJSON(&buf, c); err != nil {
		t.Fatal(err)
	}
	back, err := trace.ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Events) != len(c.Events) || len(back.Layers) != 1 {
		t.Fatalf("round trip: %d/%d events, %d layers", len(back.Events), len(c.Events), len(back.Layers))
	}
}

// fpStrategyOf finds the deployed conv0 FP strategy in the capture's layer
// span names.
func fpStrategyOf(c trace.Capture) string {
	for _, ev := range c.Events {
		if ev.Cat == "layer" && len(ev.Name) > len("layer/conv0/fp/") &&
			ev.Name[:len("layer/conv0/fp/")] == "layer/conv0/fp/" {
			return ev.Name[len("layer/conv0/fp/"):]
		}
	}
	return "?"
}

// TestBindTraceNilIsNoop: an unbound trainer must train identically.
func TestBindTraceNilIsNoop(t *testing.T) {
	def, err := netdef.Parse(tracedNet)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := NewFromDef(def, netdef.BuildOptions{Workers: 1, Seed: 3},
		Config{Replicas: 2, GlobalBatch: 8, LR: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	tr.BindTrace(nil)
	stats := tr.TrainEpoch(ds{n: 16}, rng.New(1))
	if stats.Images != 16 || len(stats.Replicas) != 2 {
		t.Fatalf("untraced epoch stats = %+v", stats)
	}
}
