package nn

import (
	"testing"

	"spgcnn/internal/rng"
)

func TestTrainEpochLearnsAndReports(t *testing.T) {
	net := tinyTrainNet(rng.New(1))
	tr := NewTrainer(net, 0.05, 4)
	ds := &syntheticDS{n: 32, classes: 4, dims: net.InDims()}
	r := rng.New(2)
	first := tr.TrainEpoch(ds, r)
	var last EpochStats
	for e := 0; e < 5; e++ {
		last = tr.TrainEpoch(ds, r)
	}
	if !(last.Loss < first.Loss) {
		t.Fatalf("loss did not fall: %v -> %v", first.Loss, last.Loss)
	}
	if last.Epoch != 6 {
		t.Fatalf("epoch counter = %d", last.Epoch)
	}
	if last.Images != 32 || last.ImagesPerSec <= 0 || last.Seconds <= 0 {
		t.Fatalf("throughput accounting wrong: %+v", last)
	}
	if _, ok := last.ConvSparsity["conv0"]; !ok {
		t.Fatal("sparsity probe missing")
	}
}

func TestGoodputBelowDenseThroughput(t *testing.T) {
	// Goodput counts BP work discounted by sparsity, so with any ReLU
	// in the net, goodput < dense rate, and both are positive (Eq. 10).
	net := tinyTrainNet(rng.New(3))
	tr := NewTrainer(net, 0.02, 4)
	ds := &syntheticDS{n: 16, classes: 4, dims: net.InDims()}
	stats := tr.TrainEpoch(ds, rng.New(4))
	if stats.ConvGFlops <= 0 || stats.ConvGoodputGFlops <= 0 {
		t.Fatalf("non-positive rates: %+v", stats)
	}
	if stats.ConvGoodputGFlops >= stats.ConvGFlops {
		t.Fatalf("goodput %v not below dense rate %v", stats.ConvGoodputGFlops, stats.ConvGFlops)
	}
	// Consistency with the probe: useful/dense ratio matches
	// (FP + (1-s)·BP) / (FP + BP) = (1 + 2(1-s)) / 3 for one conv layer.
	s := stats.ConvSparsity["conv0"]
	wantRatio := (1 + 2*(1-s)) / 3
	gotRatio := stats.ConvGoodputGFlops / stats.ConvGFlops
	if diff := gotRatio - wantRatio; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("goodput ratio %v, want %v (sparsity %v)", gotRatio, wantRatio, s)
	}
}

func TestEvaluateDoesNotTrain(t *testing.T) {
	net := tinyTrainNet(rng.New(5))
	tr := NewTrainer(net, 0.05, 4)
	ds := &syntheticDS{n: 16, classes: 4, dims: net.InDims()}
	before := net.ConvLayers()[0].W.Clone()
	loss1, acc1 := tr.Evaluate(ds)
	loss2, acc2 := tr.Evaluate(ds)
	if loss1 != loss2 || acc1 != acc2 {
		t.Fatal("Evaluate is not deterministic")
	}
	after := net.ConvLayers()[0].W
	for i := range before.Data {
		if before.Data[i] != after.Data[i] {
			t.Fatal("Evaluate modified weights")
		}
	}
}

func TestTrainerBatchFloor(t *testing.T) {
	net := tinyTrainNet(rng.New(6))
	tr := NewTrainer(net, 0.05, 0)
	if tr.BatchSize != 1 {
		t.Fatalf("batch floor = %d", tr.BatchSize)
	}
}
