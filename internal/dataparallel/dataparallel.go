// Package dataparallel implements synchronous data-parallel SGD across
// model replicas — the cluster-scale context the paper situates spg-CNN in
// (§1, §6: DistBelief and Adam train large CNNs with many multicore-CPU
// workers; spg-CNN raises each worker's throughput). Workers here are
// goroutines with full model replicas, which makes the scaling structure
// of data parallelism — shard compute, synchronize parameters — executable
// and testable on one machine.
//
// Every global minibatch is sharded across the replicas; each replica runs
// forward/backward on its shard and applies a locally-scaled SGD step, and
// every SyncEvery steps the replicas' parameters are averaged (an
// all-reduce). With SyncEvery = 1 and plain SGD this is mathematically
// identical to single-worker large-batch SGD (the averaging of
// per-shard-scaled steps reconstructs the global gradient average);
// SyncEvery > 1 is local SGD with periodic averaging, trading
// synchronization cost for gradient staleness exactly as the paper's §6
// discussion of parameter-synchronization latency describes.
package dataparallel

import (
	"fmt"
	"math"
	"sync"
	"time"

	"spgcnn/internal/core"
	"spgcnn/internal/exec"
	"spgcnn/internal/machine"
	"spgcnn/internal/netdef"
	"spgcnn/internal/nn"
	"spgcnn/internal/plan"
	"spgcnn/internal/rng"
	"spgcnn/internal/tensor"
	"spgcnn/internal/trace"
)

// Config tunes the data-parallel run.
type Config struct {
	// Replicas is the worker count (>= 1).
	Replicas int
	// LR is the learning rate of the equivalent global-batch SGD.
	LR float32
	// GlobalBatch is the per-step minibatch size, sharded across replicas.
	GlobalBatch int
	// SyncEvery is the parameter-averaging period in steps (default 1 =
	// fully synchronous).
	SyncEvery int

	// AllReduce selects the reduction schedule (default MethodFlat;
	// MethodAuto ranks schedules with the machine.Cluster cost model).
	AllReduce Method
	// SparseSync selects the gradient-delta exchange mode: SparseOff
	// (default) is always-dense, SparseAuto ships CT-CSR deltas while
	// their density stays within the band boundary, SparseForce always
	// ships deltas.
	SparseSync string
	// Staleness enables the bounded-staleness async mode when > 0:
	// replicas run without a per-step barrier and may proceed up to
	// Staleness steps ahead of the slowest replica; parameter averaging
	// happens when a pending sync boundary has quiesced the fleet.
	// 0 = fully synchronous (the default).
	Staleness int
	// Mitigate closes the straggler loop: per-replica barrier-wait
	// attribution feeds an EWMA throughput estimate that re-chunks the
	// next step's shard assignment (slow replicas get fewer images, the
	// LR of each replica's locally-scaled step is rescaled to keep the
	// global update unbiased). Synchronous mode only.
	Mitigate bool
	// InjectSlowReplica / InjectSlowPerImage inject an artificial
	// straggler for benchmarking: replica InjectSlowReplica sleeps
	// InjectSlowPerImage × (its current share) after each step's compute.
	// Inactive unless InjectSlowPerImage > 0.
	InjectSlowReplica  int
	InjectSlowPerImage time.Duration
}

// Trainer coordinates the replicas.
type Trainer struct {
	cfg      Config
	replicas []*nn.Network
	trainers []*shardState
	ctxs     []*exec.Ctx // per-replica execution contexts (NewFromDef only)
	planner  core.Planner
	loss     nn.SoftmaxXent

	steps int
	syncs int

	exchange *Exchange // reduction subsystem (lazy; see ensureExchange)
	shares   []int     // per-replica images per step (sums to GlobalBatch)
	rate     []float64 // per-replica EWMA throughput (images/sec), 0 = unknown

	rec      *trace.Recorder
	coord    *trace.Emitter   // replica -1: all-reduce, planner, epoch accounting
	emitters []*trace.Emitter // one per replica
}

// shardState is one replica's working storage.
type shardState struct {
	inputs  []*tensor.Tensor
	dlogits []*tensor.Tensor
	loss    float64
	correct int
	images  int
	secs    float64 // wall time of the replica's last step
}

// New builds a data-parallel trainer. The builder must return
// identically-initialized networks (call it with the same seed per
// replica); this is verified by comparing the first parameter tensor.
func New(build func(replica int) *nn.Network, cfg Config) (*Trainer, error) {
	if cfg.Replicas < 1 {
		return nil, fmt.Errorf("dataparallel: replicas %d < 1", cfg.Replicas)
	}
	if cfg.GlobalBatch < cfg.Replicas {
		return nil, fmt.Errorf("dataparallel: global batch %d smaller than replica count %d",
			cfg.GlobalBatch, cfg.Replicas)
	}
	if cfg.GlobalBatch%cfg.Replicas != 0 {
		return nil, fmt.Errorf("dataparallel: global batch %d not divisible by %d replicas",
			cfg.GlobalBatch, cfg.Replicas)
	}
	if cfg.SyncEvery < 1 {
		cfg.SyncEvery = 1
	}
	if _, err := ParseMethod(string(cfg.AllReduce)); err != nil {
		return nil, err
	}
	if _, err := ParseSparseMode(cfg.SparseSync); err != nil {
		return nil, err
	}
	if cfg.Staleness < 0 {
		return nil, fmt.Errorf("dataparallel: staleness %d < 0", cfg.Staleness)
	}
	if cfg.InjectSlowPerImage > 0 &&
		(cfg.InjectSlowReplica < 0 || cfg.InjectSlowReplica >= cfg.Replicas) {
		return nil, fmt.Errorf("dataparallel: inject-slow replica %d out of range [0, %d)",
			cfg.InjectSlowReplica, cfg.Replicas)
	}
	t := &Trainer{cfg: cfg}
	t.shares = make([]int, cfg.Replicas)
	t.rate = make([]float64, cfg.Replicas)
	for w := range t.shares {
		t.shares[w] = cfg.GlobalBatch / cfg.Replicas
	}
	for i := 0; i < cfg.Replicas; i++ {
		net := build(i)
		if net == nil {
			return nil, fmt.Errorf("dataparallel: builder returned nil for replica %d", i)
		}
		t.replicas = append(t.replicas, net)
		t.trainers = append(t.trainers, &shardState{})
	}
	if err := t.checkAligned(); err != nil {
		return nil, err
	}
	return t, nil
}

// NewFromDef builds a data-parallel trainer whose replicas are constructed
// from one network description — the common case — with every replica
// sharing a single strategy planner. Replica 0's first measurement of each
// layer geometry is deployed verbatim to replicas 1..N-1 (and concurrent
// first-touch tuning is single-flighted), so an N-replica trainer pays for
// one tuning pass per distinct (geometry, phase, sparsity band), not N.
//
// Each replica still gets its own execution context: scratch arenas and
// probes must not be shared across goroutines that run concurrently. The
// Workers/Ctx fields of opts set the per-replica worker count; opts.Ctx,
// if non-nil, is used for replica 0 only and its worker count is cloned
// for the rest. If opts.Planner is nil a fresh shared plan.Planner is
// created (reachable afterward via Planner()).
func NewFromDef(def *netdef.NetDef, opts netdef.BuildOptions, cfg Config) (*Trainer, error) {
	if opts.Planner == nil {
		opts.Planner = plan.New(plan.Options{})
	}
	ctx0 := opts.Ctx
	workers := opts.Workers
	if ctx0 != nil {
		workers = ctx0.Workers()
	}
	var buildErr error
	var ctxs []*exec.Ctx
	t, err := New(func(replica int) *nn.Network {
		ro := opts
		if replica == 0 && ctx0 != nil {
			ro.Ctx = ctx0
		} else {
			ro.Ctx = exec.New(workers)
		}
		net, err := netdef.Build(def, ro)
		if err != nil {
			if buildErr == nil {
				buildErr = fmt.Errorf("dataparallel: replica %d: %w", replica, err)
			}
			return nil
		}
		ctxs = append(ctxs, ro.Ctx)
		return net
	}, cfg)
	if buildErr != nil {
		return nil, buildErr
	}
	if err != nil {
		return nil, err
	}
	t.ctxs = ctxs
	t.planner = opts.Planner
	return t, nil
}

// Contexts returns the per-replica execution contexts (nil when the
// trainer was built with New, which does not see the builder's contexts).
func (t *Trainer) Contexts() []*exec.Ctx { return t.ctxs }

// AddSink attaches an additional probe sink to every replica's execution
// context — how span observers that span replicas (the drift observatory)
// ride the trainer. Only usable on NewFromDef trainers, whose contexts the
// trainer owns; a no-op otherwise.
func (t *Trainer) AddSink(s exec.Sink) {
	for _, c := range t.ctxs {
		if c != nil {
			c.Probe().AddSink(s)
		}
	}
}

// BindTrace attaches a trace recorder to the trainer: each replica gets an
// emitter (its probe stream — layer, core and tune spans — plus arena
// growth land on its timeline row), the coordinator emitter carries
// all-reduce spans and epoch accounting, the shared planner's activity is
// traced when it is a *plan.Planner, and replica 0's conv layer flop
// metadata is registered for goodput-waste attribution. Call once, before
// training; a nil recorder is a no-op.
func (t *Trainer) BindTrace(rec *trace.Recorder) {
	if rec == nil {
		return
	}
	t.rec = rec
	t.coord = rec.Emitter(-1, 0)
	t.emitters = make([]*trace.Emitter, len(t.replicas))
	for w := range t.replicas {
		em := rec.Emitter(w, 0)
		t.emitters[w] = em
		if w < len(t.ctxs) && t.ctxs[w] != nil {
			t.ctxs[w].Probe().AddSink(trace.NewProbeSink(em))
			em := em
			t.ctxs[w].Arena().SetGrowHook(func(bytes int64) {
				em.Instant("arena", "grow", "", float64(bytes))
			})
		}
	}
	if p, ok := t.planner.(*plan.Planner); ok {
		p.SetTrace(t.coord)
	}
	for _, c := range t.replicas[0].ConvLayers() {
		spec := c.Spec()
		rec.AddLayerMeta(trace.LayerMeta{
			Name:    c.Name(),
			FPFlops: spec.FlopsFP(),
			BPFlops: spec.FlopsBPInput() + spec.FlopsBPWeights(),
		})
	}
}

// em returns replica w's emitter (nil when no recorder is bound — every
// emitter method is nil-safe).
func (t *Trainer) em(w int) *trace.Emitter {
	if w < len(t.emitters) {
		return t.emitters[w]
	}
	return nil
}

// Planner returns the strategy planner the replicas share (nil when the
// trainer was built with New and no planner was threaded through).
func (t *Trainer) Planner() core.Planner { return t.planner }

// checkAligned verifies the replicas start from identical parameters.
func (t *Trainer) checkAligned() error {
	if len(t.replicas) < 2 {
		return nil
	}
	ref := t.replicas[0].Parameters()
	for i := 1; i < len(t.replicas); i++ {
		ps := t.replicas[i].Parameters()
		if len(ps) != len(ref) {
			return fmt.Errorf("dataparallel: replica %d has %d parameters, replica 0 has %d",
				i, len(ps), len(ref))
		}
		for j := range ps {
			if ps[j].Name != ref[j].Name || !ps[j].Tensor.SameShape(ref[j].Tensor) {
				return fmt.Errorf("dataparallel: replica %d parameter %q mismatches replica 0", i, ps[j].Name)
			}
			if tensor.MaxAbsDiff(ps[j].Tensor, ref[j].Tensor) != 0 {
				return fmt.Errorf("dataparallel: replica %d parameter %q initialized differently "+
					"(the builder must use the same seed for every replica)", i, ps[j].Name)
			}
		}
	}
	return nil
}

// ReplicaStats summarizes one replica's step times over an epoch — the
// straggler surface of a synchronous data-parallel run.
type ReplicaStats struct {
	Replica int
	Steps   int
	// Total/Min/Max are the replica's per-step wall times in seconds.
	Total, Min, Max float64
	// BarrierWait is the cumulative time this replica spent finished,
	// waiting at the step barrier for the slowest replica (seconds). In
	// async mode it is the time spent parked by the staleness bound or a
	// pending sync.
	BarrierWait float64
	// Share is the replica's images-per-step share at epoch end
	// (GlobalBatch/Replicas unless straggler mitigation re-chunked it).
	Share int
}

// Mean returns the replica's mean step time.
func (r ReplicaStats) Mean() float64 {
	if r.Steps == 0 {
		return 0
	}
	return r.Total / float64(r.Steps)
}

// Stats reports one epoch.
type Stats struct {
	Loss         float64
	Accuracy     float64
	Images       int
	Seconds      float64
	ImagesPerSec float64
	Steps        int
	Syncs        int
	// Replicas holds per-replica step-time min/max/mean and barrier-wait
	// attribution for this epoch.
	Replicas []ReplicaStats
	// ConvSparsity maps conv layer name to its mean gradient sparsity over
	// the epoch, averaged across replicas.
	ConvSparsity map[string]float64
	// ConvGFlops / ConvGoodputGFlops mirror nn.EpochStats: the dense conv
	// work rate and the Eq. 9 useful-work rate over the global image count.
	ConvGFlops        float64
	ConvGoodputGFlops float64

	// SkippedImages counts trailing examples that did not fill a whole
	// global batch and were never trained on this epoch — an Eq. 9-style
	// waste term (work the epoch was supposed to do but didn't).
	SkippedImages int
	// SkippedConvFlops is the conv work those images would have cost.
	SkippedConvFlops float64

	// AllReduceMethod is the schedule deployed by the last sync of the
	// epoch ("flat", "ring", "tree", with "+sparse" when deltas shipped).
	AllReduceMethod string
	// AllReduceSeconds is the cumulative wall time of this epoch's syncs.
	AllReduceSeconds float64
	// SparseSyncs counts the syncs that shipped CT-CSR deltas (the rest
	// of Syncs ran dense).
	SparseSyncs int
	// MeanDeltaDensity is the mean measured gradient-delta density across
	// syncs that computed deltas (-1 when none did).
	MeanDeltaDensity float64
	// WireBytes is the modeled interconnect traffic of this epoch's syncs
	// (what the rounds would ship on a scale-out fabric).
	WireBytes int64
	// Rechunks counts mitigation share reassignments this epoch.
	Rechunks int
	// StalenessMax is the largest observed step gap between the fastest
	// and slowest replica at a sync point (async mode; 0 when
	// synchronous).
	StalenessMax int
}

// epochSync accumulates sync-round telemetry over one epoch.
type epochSync struct {
	seconds      float64
	wire         int64
	sparse       int
	densitySum   float64
	densityN     int
	method       string
	rechunks     int
	stalenessMax int
}

// TrainEpoch runs one shuffled pass over the dataset. Trailing examples
// that do not fill a whole global batch are skipped (every step must shard
// evenly) and reported as Stats.SkippedImages — an Eq. 9-style waste term;
// size datasets as multiples of GlobalBatch for exact epochs. With
// cfg.Staleness > 0 the bounded-staleness async path runs instead of the
// per-step barrier.
func (t *Trainer) TrainEpoch(ds nn.Dataset, r *rng.RNG) Stats {
	if t.cfg.Staleness > 0 && t.cfg.Replicas >= 2 {
		return t.trainEpochAsync(ds, r)
	}
	cfg := t.cfg
	// Build the reduction subsystem up front: the sparse base snapshot
	// must be taken while the replicas are aligned.
	t.ensureExchange()
	order := r.Perm(ds.Len())
	start := time.Now()
	var totalLoss float64
	correct, images := 0, 0
	epochSyncs := 0
	es := &epochSync{}

	perRep := make([]ReplicaStats, cfg.Replicas)
	for w := range perRep {
		perRep[w] = ReplicaStats{Replica: w, Min: math.MaxFloat64}
	}

	offsets := make([]int, cfg.Replicas)
	for lo := 0; lo+cfg.GlobalBatch <= len(order); lo += cfg.GlobalBatch {
		t.rec.SetStep(int64(t.steps + 1))
		t.ensureBuffers(maxShare(t.shares))
		off := 0
		for w := range offsets {
			offsets[w] = off
			off += t.shares[w]
		}
		var wg sync.WaitGroup
		wg.Add(cfg.Replicas)
		for w := 0; w < cfg.Replicas; w++ {
			go func(w int) {
				defer wg.Done()
				t.runStep(ds, w, order, lo+offsets[w], t.shares[w])
			}(w)
		}
		wg.Wait()
		slowest := 0.0
		for _, st := range t.trainers {
			totalLoss += st.loss
			correct += st.correct
			images += st.images
			if st.secs > slowest {
				slowest = st.secs
			}
		}
		for w, st := range t.trainers {
			r := &perRep[w]
			r.Steps++
			r.Total += st.secs
			if st.secs < r.Min {
				r.Min = st.secs
			}
			if st.secs > r.Max {
				r.Max = st.secs
			}
			if cfg.Replicas >= 2 && st.secs < slowest {
				wait := slowest - st.secs
				r.BarrierWait += wait
				t.em(w).Instant("sync", "barrier", "", wait)
			}
		}
		if cfg.Mitigate {
			t.rechunk(es)
		}
		t.steps++
		if t.steps%cfg.SyncEvery == 0 {
			t.sync(es)
			epochSyncs++
		}
	}
	// Epoch boundary: run every replica's scheduler re-check (§4.4's
	// periodic BP re-measurement). Replicas share the planner, so at most
	// one re-measurement per distinct geometry actually runs; the rest
	// deploy the refreshed verdict from cache.
	for _, net := range t.replicas {
		net.EpochEnd()
	}
	elapsed := time.Since(start).Seconds()
	for w := range perRep {
		if perRep[w].Steps == 0 {
			perRep[w].Min = 0
		}
		perRep[w].Share = t.shares[w]
	}
	stats := Stats{
		Loss:     safeDiv(totalLoss, float64(images)),
		Accuracy: safeDiv(float64(correct), float64(images)),
		Images:   images,
		Seconds:  elapsed,
		Steps:    t.steps,
		Syncs:    epochSyncs,
		Replicas: perRep,
	}
	if elapsed > 0 {
		stats.ImagesPerSec = float64(images) / elapsed
	}
	t.fillSyncStats(&stats, es, len(order)%cfg.GlobalBatch)
	t.convAccounting(&stats, images, elapsed)
	return stats
}

// runStep executes one replica's shard of one global step: share images
// starting at order[base], forward/backward, locally-scaled SGD step. The
// LR is rescaled for unequal mitigation shares so the replica average
// still reconstructs the lr/GlobalBatch global step (at equal shares the
// rescale is exactly cfg.LR, preserving the historical arithmetic).
func (t *Trainer) runStep(ds nn.Dataset, w int, order []int, base, share int) {
	cfg := t.cfg
	st := t.trainers[w]
	net := t.replicas[w]
	stepStart := time.Now()
	t.em(w).Region("step", "step", func() {
		for i := 0; i < share; i++ {
			ds.Image(order[base+i], st.inputs[i])
		}
		logits := net.Forward(st.inputs[:share])
		st.loss, st.correct = 0, 0
		for i := 0; i < share; i++ {
			l, ok := t.loss.Loss(logits[i], ds.Label(order[base+i]), st.dlogits[i])
			st.loss += l
			if ok {
				st.correct++
			}
		}
		st.images = share
		net.Backward(st.dlogits[:share], st.inputs[:share])
		lr := cfg.LR
		if share*cfg.Replicas != cfg.GlobalBatch {
			lr = cfg.LR * float32(share*cfg.Replicas) / float32(cfg.GlobalBatch)
		}
		net.ApplyGrads(lr, share)
		if cfg.InjectSlowPerImage > 0 && w == cfg.InjectSlowReplica {
			time.Sleep(cfg.InjectSlowPerImage * time.Duration(share))
		}
	})
	st.secs = time.Since(stepStart).Seconds()
}

// sync runs one parameter-averaging round through the reduction subsystem
// and records its telemetry.
func (t *Trainer) sync(es *epochSync) {
	t.ensureExchange()
	arStart := time.Now()
	info := t.exchange.Sync()
	dur := time.Since(arStart)
	method := string(info.Method)
	if info.Sparse {
		method += "+sparse"
	}
	t.coord.SpanDetail("sync", "allreduce", method, float64(info.WireBytes), arStart, dur)
	t.syncs++
	es.seconds += dur.Seconds()
	es.wire += info.WireBytes
	es.method = method
	if info.Sparse {
		es.sparse++
	}
	if info.Density >= 0 {
		es.densitySum += info.Density
		es.densityN++
	}
}

// ensureExchange lazily builds the reduction subsystem over the replicas'
// live parameter views, with the machine.Cluster cost model as the
// MethodAuto ranker.
func (t *Trainer) ensureExchange() {
	if t.exchange != nil {
		return
	}
	views := make([][][]float32, len(t.replicas))
	for i, net := range t.replicas {
		ps := net.Parameters()
		views[i] = make([][]float32, len(ps))
		for j, p := range ps {
			views[i][j] = p.Tensor.Data
		}
	}
	cl := machine.DefaultCluster(len(t.replicas))
	ranker := func(elems, replicas int, density float64) (Method, bool) {
		best := cl.BestAllReduce(elems, density)
		return Method(best.Method), best.Sparse
	}
	t.exchange = NewExchange(t.cfg.AllReduce, t.cfg.SparseSync, views, ranker)
}

// rechunk closes the straggler loop: the step that just finished updates
// each replica's EWMA throughput, and shares are reassigned proportionally
// (largest-remainder rounding, minimum 1 image) so next step's barrier
// wait concentrates less on the fast replicas.
func (t *Trainer) rechunk(es *epochSync) {
	n := t.cfg.Replicas
	if n < 2 {
		return
	}
	const alpha = 0.5
	for w, st := range t.trainers {
		if st.secs <= 0 {
			continue
		}
		r := float64(t.shares[w]) / st.secs
		if t.rate[w] == 0 {
			t.rate[w] = r
		} else {
			t.rate[w] = (1-alpha)*t.rate[w] + alpha*r
		}
	}
	var sum float64
	for _, r := range t.rate {
		if r <= 0 {
			return // not every replica measured yet
		}
		sum += r
	}
	b := t.cfg.GlobalBatch
	target := make([]int, n)
	frac := make([]float64, n)
	assigned := 0
	for w := range target {
		ideal := float64(b) * t.rate[w] / sum
		fl := int(ideal)
		if fl < 1 {
			fl = 1
		}
		target[w] = fl
		frac[w] = ideal - float64(fl)
		assigned += fl
	}
	for assigned < b {
		best := 0
		for w := 1; w < n; w++ {
			if frac[w] > frac[best] {
				best = w
			}
		}
		target[best]++
		frac[best] = -1
		assigned++
	}
	for assigned > b {
		best := -1
		for w := 0; w < n; w++ {
			if target[w] > 1 && (best < 0 || frac[w] < frac[best]) {
				best = w
			}
		}
		if best < 0 {
			break
		}
		target[best]--
		frac[best] = 2
		assigned--
	}
	moved := 0
	for w := range target {
		d := target[w] - t.shares[w]
		if d < 0 {
			d = -d
		}
		moved += d
	}
	if moved == 0 {
		return
	}
	copy(t.shares, target)
	es.rechunks++
	t.coord.Instant("sync", "rechunk", "", float64(moved))
}

// fillSyncStats folds the epoch's sync telemetry and the skipped-tail
// waste term into the stats.
func (t *Trainer) fillSyncStats(stats *Stats, es *epochSync, skipped int) {
	stats.SkippedImages = skipped
	if skipped > 0 {
		var perImage float64
		for _, c := range t.replicas[0].ConvLayers() {
			spec := c.Spec()
			perImage += float64(spec.FlopsFP() + spec.FlopsBPInput() + spec.FlopsBPWeights())
		}
		stats.SkippedConvFlops = perImage * float64(skipped)
		t.coord.Instant("epoch", "skipped", "", float64(skipped))
	}
	stats.AllReduceMethod = es.method
	stats.AllReduceSeconds = es.seconds
	stats.SparseSyncs = es.sparse
	stats.MeanDeltaDensity = -1
	if es.densityN > 0 {
		stats.MeanDeltaDensity = es.densitySum / float64(es.densityN)
	}
	stats.WireBytes = es.wire
	stats.Rechunks = es.rechunks
	stats.StalenessMax = es.stalenessMax
}

func maxShare(shares []int) int {
	m := 0
	for _, s := range shares {
		if s > m {
			m = s
		}
	}
	return m
}

// convAccounting fills the epoch's sparsity map and work rates (Eq. 9/10)
// and, when a tracer is bound, emits the epoch accounting events the
// goodput-waste analyzer consumes and refreshes the live sparsity band.
func (t *Trainer) convAccounting(stats *Stats, images int, elapsed float64) {
	stats.ConvSparsity = map[string]float64{}
	counts := map[string]int{}
	for _, net := range t.replicas {
		for _, c := range net.ConvLayers() {
			if s, ok := c.TakeSparsity(); ok {
				stats.ConvSparsity[c.Name()] += s
				counts[c.Name()]++
			}
		}
	}
	meanAll, layers := 0.0, 0
	for name, n := range counts {
		stats.ConvSparsity[name] /= float64(n)
		meanAll += stats.ConvSparsity[name]
		layers++
	}
	var denseFlops, usefulFlops float64
	for _, c := range t.replicas[0].ConvLayers() {
		spec := c.Spec()
		fp := float64(spec.FlopsFP()) * float64(images)
		bp := float64(spec.FlopsBPInput()+spec.FlopsBPWeights()) * float64(images)
		denseFlops += fp + bp
		s, ok := stats.ConvSparsity[c.Name()]
		if !ok {
			s = 0
		}
		usefulFlops += fp + bp*(1-s)
	}
	if elapsed > 0 {
		stats.ConvGFlops = denseFlops / elapsed / 1e9
		stats.ConvGoodputGFlops = usefulFlops / elapsed / 1e9
	}
	if t.rec == nil {
		return
	}
	if layers > 0 {
		t.rec.SetBand(plan.Band(meanAll / float64(layers)))
	}
	t.coord.Instant("epoch", "epoch", "", float64(images))
	for name, s := range stats.ConvSparsity {
		t.coord.Instant("sparsity", "sparsity/"+name, name, s)
	}
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// Replica returns replica i's network (replica 0 is the canonical model
// after a sync).
func (t *Trainer) Replica(i int) *nn.Network { return t.replicas[i] }

// Syncs returns the total number of all-reduce rounds performed.
func (t *Trainer) Syncs() int { return t.syncs }

func (t *Trainer) ensureBuffers(shard int) {
	in := t.replicas[0].InDims()
	out := t.replicas[0].OutDims()
	for _, st := range t.trainers {
		for len(st.inputs) < shard {
			st.inputs = append(st.inputs, tensor.New(in...))
			st.dlogits = append(st.dlogits, tensor.New(out...))
		}
	}
}
