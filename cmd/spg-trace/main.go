// spg-trace summarizes an execution trace captured with spg-train -trace:
// overall capture accounting, the top time-consuming spans, per-replica
// straggler/barrier attribution for data-parallel runs, and the per-layer
// goodput-waste split of Eq. 9 (dense flops vs useful flops, and how much
// of the gap the deployed BP strategy actually burned).
//
// Usage:
//
//	spg-trace trace.json
//	spg-trace -top 5 trace.json
//	spg-trace -check trace.json     # schema-validate only
//	spg-trace -json trace.json      # machine-readable summary
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"text/tabwriter"

	"spgcnn/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "spg-trace: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("spg-trace", flag.ContinueOnError)
	top := fs.Int("top", 10, "rows in the top-spans table")
	check := fs.Bool("check", false, "validate the capture and exit")
	asJSON := fs.Bool("json", false, "emit the summary as machine-readable JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: spg-trace [-top N] [-check] [-json] <trace.json>")
	}
	c, err := trace.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	if err := trace.Validate(c); err != nil {
		return err
	}
	if *check {
		fmt.Fprintf(stdout, "trace OK: %d events, %d layers, mode %s\n",
			len(c.Events), len(c.Layers), c.Mode)
		return nil
	}
	if *asJSON {
		return writeJSONSummary(stdout, c, *top)
	}

	summary(stdout, c)
	topSpans(stdout, c, *top)
	stragglers(stdout, c)
	waste(stdout, c)
	return nil
}

func summary(w io.Writer, c trace.Capture) {
	replicas := map[int32]bool{}
	var minTs, maxEnd int64
	first := true
	for _, ev := range c.Events {
		if ev.Replica >= 0 {
			replicas[ev.Replica] = true
		}
		end := ev.Ts + ev.Dur
		if first || ev.Ts < minTs {
			minTs = ev.Ts
		}
		if first || end > maxEnd {
			maxEnd = end
		}
		first = false
	}
	fmt.Fprintln(w, "trace summary")
	fmt.Fprintf(w, "  events %d  mode %s  emitted %d  overwritten %d  dropped %d\n",
		len(c.Events), c.Mode, c.Stats.Emitted, c.Stats.Overwritten, c.Stats.Dropped)
	fmt.Fprintf(w, "  replicas %d  wall span %s\n", len(replicas), dur(float64(maxEnd-minTs)/1e9))
}

func topSpans(w io.Writer, c trace.Capture, n int) {
	fmt.Fprintf(w, "\ntop spans (by total time)\n")
	rows := trace.TopSpans(c.Events, n)
	if len(rows) == 0 {
		fmt.Fprintln(w, "  no complete spans in capture")
		return
	}
	tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "  name\tcalls\ttotal\tmean\tmax")
	for _, r := range rows {
		fmt.Fprintf(tw, "  %s\t%d\t%s\t%s\t%s\n", r.Name, r.Calls, dur(r.Total), dur(r.Mean()), dur(r.Max))
	}
	tw.Flush()
}

func stragglers(w io.Writer, c trace.Capture) {
	fmt.Fprintf(w, "\nstraggler attribution\n")
	rep := trace.Stragglers(c)
	if len(rep.Rows) == 0 {
		fmt.Fprintln(w, "  no per-replica step spans in capture (single-replica run?)")
		return
	}
	tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "  replica\tsteps\tmin\tmean\tmax\tbarrier wait\tslowest")
	for _, r := range rep.Rows {
		fmt.Fprintf(tw, "  %d\t%d\t%s\t%s\t%s\t%s\t%d of %d\n",
			r.Replica, r.Steps, dur(r.Min), dur(r.Mean()), dur(r.Max),
			dur(r.BarrierWait), r.SlowestCount, rep.Steps)
	}
	tw.Flush()
	if rep.SlowestReplica >= 0 {
		fmt.Fprintf(w, "  slowest replica overall: %d\n", rep.SlowestReplica)
	}
	if rep.Syncs > 0 {
		fmt.Fprintf(w, "  syncs %d  all-reduce total %s\n", rep.Syncs, dur(rep.AllReduceSeconds))
	}
	if rep.Rechunks > 0 {
		fmt.Fprintf(w, "  mitigation rechunks %d\n", rep.Rechunks)
	}
}

func waste(w io.Writer, c trace.Capture) {
	fmt.Fprintf(w, "\ngoodput-waste attribution (Eq. 9)\n")
	rep := trace.GoodputWaste(c)
	if len(rep.Rows) == 0 {
		fmt.Fprintln(w, "  no layer flop metadata in capture")
		return
	}
	tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "  layer\tfp strategy\tbp strategy\tdense\tuseful\twasted\tburned")
	for _, r := range rep.Rows {
		fmt.Fprintf(tw, "  %s\t%s\t%s\t%s\t%s\t%s\t%s\n",
			r.Layer, orDash(r.FPStrategy), orDash(r.BPStrategy),
			flops(r.DenseFlops), flops(r.UsefulFlops), flops(r.WastedFlops), flops(r.BurnedFlops))
	}
	tw.Flush()
	pct := 0.0
	if rep.DenseFlops > 0 {
		pct = 100 * rep.UsefulFlops / rep.DenseFlops
	}
	fmt.Fprintf(w, "  total over %d epoch(s): dense %s, useful %s (%.1f%%), wasted %s, burned %s\n",
		rep.Epochs, flops(rep.DenseFlops), flops(rep.UsefulFlops), pct,
		flops(rep.WastedFlops), flops(rep.BurnedFlops))
}

// jsonSummary is the -json output: the same accounting the text report
// renders, in a stable machine-readable shape for scripts and CI gates.
// Bump Schema on any breaking field change.
type jsonSummary struct {
	Schema     int             `json:"schema"`
	Mode       string          `json:"mode"`
	Events     int             `json:"events"`
	Layers     int             `json:"layers"`
	Replicas   int             `json:"replicas"`
	WallSecs   float64         `json:"wall_seconds"`
	Stats      trace.Stats     `json:"capture_stats"`
	TopSpans   []jsonSpan      `json:"top_spans"`
	Stragglers *jsonStragglers `json:"stragglers,omitempty"`
	Waste      *jsonWaste      `json:"goodput_waste,omitempty"`
}

type jsonSpan struct {
	Name  string  `json:"name"`
	Calls int     `json:"calls"`
	Total float64 `json:"total_seconds"`
	Mean  float64 `json:"mean_seconds"`
	Max   float64 `json:"max_seconds"`
}

type jsonStraggler struct {
	Replica      int     `json:"replica"`
	Steps        int     `json:"steps"`
	MinSecs      float64 `json:"min_seconds"`
	MeanSecs     float64 `json:"mean_seconds"`
	MaxSecs      float64 `json:"max_seconds"`
	BarrierWait  float64 `json:"barrier_wait_seconds"`
	SlowestCount int     `json:"slowest_count"`
}

type jsonStragglers struct {
	Steps          int             `json:"steps"`
	Syncs          int             `json:"syncs"`
	AllReduceSecs  float64         `json:"allreduce_seconds"`
	SlowestReplica int             `json:"slowest_replica"`
	Rechunks       int             `json:"rechunks,omitempty"`
	Rows           []jsonStraggler `json:"rows"`
}

type jsonWasteRow struct {
	Layer       string  `json:"layer"`
	FPStrategy  string  `json:"fp_strategy,omitempty"`
	BPStrategy  string  `json:"bp_strategy,omitempty"`
	DenseFlops  float64 `json:"dense_flops"`
	UsefulFlops float64 `json:"useful_flops"`
	WastedFlops float64 `json:"wasted_flops"`
	BurnedFlops float64 `json:"burned_flops"`
}

type jsonWaste struct {
	Epochs      int            `json:"epochs"`
	DenseFlops  float64        `json:"dense_flops"`
	UsefulFlops float64        `json:"useful_flops"`
	Goodput     float64        `json:"goodput_fraction"`
	WastedFlops float64        `json:"wasted_flops"`
	BurnedFlops float64        `json:"burned_flops"`
	Rows        []jsonWasteRow `json:"rows"`
}

// writeJSONSummary renders the -json report. Field order is fixed by the
// struct declarations and maps are never marshaled directly, so the
// output is byte-deterministic for a given capture.
func writeJSONSummary(w io.Writer, c trace.Capture, top int) error {
	replicas := map[int32]bool{}
	var minTs, maxEnd int64
	first := true
	for _, ev := range c.Events {
		if ev.Replica >= 0 {
			replicas[ev.Replica] = true
		}
		if end := ev.Ts + ev.Dur; first || end > maxEnd {
			maxEnd = end
		}
		if first || ev.Ts < minTs {
			minTs = ev.Ts
		}
		first = false
	}
	out := jsonSummary{
		Schema:   1,
		Mode:     c.Mode,
		Events:   len(c.Events),
		Layers:   len(c.Layers),
		Replicas: len(replicas),
		WallSecs: float64(maxEnd-minTs) / 1e9,
		Stats:    c.Stats,
		TopSpans: []jsonSpan{},
	}
	for _, r := range trace.TopSpans(c.Events, top) {
		out.TopSpans = append(out.TopSpans, jsonSpan{
			Name: r.Name, Calls: r.Calls, Total: r.Total, Mean: r.Mean(), Max: r.Max,
		})
	}
	if rep := trace.Stragglers(c); len(rep.Rows) > 0 {
		js := &jsonStragglers{
			Steps: rep.Steps, Syncs: rep.Syncs,
			AllReduceSecs: rep.AllReduceSeconds, SlowestReplica: rep.SlowestReplica,
			Rechunks: rep.Rechunks,
		}
		for _, r := range rep.Rows {
			js.Rows = append(js.Rows, jsonStraggler{
				Replica: r.Replica, Steps: r.Steps,
				MinSecs: r.Min, MeanSecs: r.Mean(), MaxSecs: r.Max,
				BarrierWait: r.BarrierWait, SlowestCount: r.SlowestCount,
			})
		}
		out.Stragglers = js
	}
	if rep := trace.GoodputWaste(c); len(rep.Rows) > 0 {
		jw := &jsonWaste{
			Epochs:     rep.Epochs,
			DenseFlops: rep.DenseFlops, UsefulFlops: rep.UsefulFlops,
			WastedFlops: rep.WastedFlops, BurnedFlops: rep.BurnedFlops,
		}
		if rep.DenseFlops > 0 {
			jw.Goodput = rep.UsefulFlops / rep.DenseFlops
		}
		for _, r := range rep.Rows {
			jw.Rows = append(jw.Rows, jsonWasteRow{
				Layer: r.Layer, FPStrategy: r.FPStrategy, BPStrategy: r.BPStrategy,
				DenseFlops: r.DenseFlops, UsefulFlops: r.UsefulFlops,
				WastedFlops: r.WastedFlops, BurnedFlops: r.BurnedFlops,
			})
		}
		out.Waste = jw
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

// dur renders seconds at millisecond-or-better granularity.
func dur(s float64) string {
	switch {
	case s >= 1:
		return fmt.Sprintf("%.3fs", s)
	case s >= 1e-3:
		return fmt.Sprintf("%.3fms", s*1e3)
	default:
		return fmt.Sprintf("%.1fus", s*1e6)
	}
}

// flops renders a flop count with an SI suffix.
func flops(f float64) string {
	switch {
	case f >= 1e12:
		return fmt.Sprintf("%.2fTF", f/1e12)
	case f >= 1e9:
		return fmt.Sprintf("%.2fGF", f/1e9)
	case f >= 1e6:
		return fmt.Sprintf("%.2fMF", f/1e6)
	case f >= 1e3:
		return fmt.Sprintf("%.2fKF", f/1e3)
	default:
		return fmt.Sprintf("%.0fF", f)
	}
}
