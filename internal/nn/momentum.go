package nn

import "spgcnn/internal/tensor"

// Momentum SGD with L2 weight decay — the optimizer configuration the
// benchmark models actually train with in practice. Layers with parameters
// implement the optional momentumLayer interface; Trainer.SetMomentum
// applies the setting to every such layer.
//
// The update per parameter tensor is the classical
//
//	v ← µ·v − (lr/batch)·(∂L/∂w + λ·w)
//	w ← w + v
//
// with µ = 0 degrading exactly to the plain SGD step.

type momentumLayer interface {
	SetMomentum(mu, weightDecay float32)
}

// SetMomentum configures momentum µ and L2 weight decay λ on every
// parameterized layer of the network.
func (t *Trainer) SetMomentum(mu, weightDecay float32) {
	for _, l := range t.Net.Layers() {
		if ml, ok := l.(momentumLayer); ok {
			ml.SetMomentum(mu, weightDecay)
		}
	}
}

// sgdState holds one layer's optimizer configuration and velocity buffers.
type sgdState struct {
	mu, wd float32
	vel    map[*tensor.Tensor]*tensor.Tensor // param -> velocity
}

func (s *sgdState) set(mu, wd float32) {
	s.mu, s.wd = mu, wd
}

// step applies the update to one (param, grad) pair and clears the grad.
func (s *sgdState) step(param, grad *tensor.Tensor, lr float32, batch int) {
	if batch < 1 {
		batch = 1
	}
	scale := lr / float32(batch)
	if s.mu == 0 && s.wd == 0 {
		param.AddScaled(grad, -scale)
		grad.Zero()
		return
	}
	if s.vel == nil {
		s.vel = map[*tensor.Tensor]*tensor.Tensor{}
	}
	v, ok := s.vel[param]
	if !ok {
		v = tensor.New(param.Dims...)
		s.vel[param] = v
	}
	for i := range param.Data {
		g := grad.Data[i] + s.wd*param.Data[i]
		v.Data[i] = s.mu*v.Data[i] - scale*g
		param.Data[i] += v.Data[i]
	}
	grad.Zero()
}

// SetMomentum implements momentumLayer for Conv.
func (c *Conv) SetMomentum(mu, weightDecay float32) { c.opt.set(mu, weightDecay) }

// SetMomentum implements momentumLayer for FC.
func (l *FC) SetMomentum(mu, weightDecay float32) { l.opt.set(mu, weightDecay) }
