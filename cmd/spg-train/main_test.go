package main

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
)

// scrape fetches one URL off the live metrics endpoint.
func scrape(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("scraping %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("scraping %s: status %d", url, resp.StatusCode)
	}
	return string(b)
}

func TestMetricsEndpointDuringTraining(t *testing.T) {
	var addr string
	var midTraining, final, health string
	metricsUpHook = func(a string) { addr = a }
	epochHook = func(epoch int) {
		if addr == "" {
			t.Fatal("epoch ran before the metrics endpoint came up")
		}
		switch epoch {
		case 0:
			midTraining = scrape(t, "http://"+addr+"/metrics")
			health = scrape(t, "http://"+addr+"/healthz")
		case 1:
			final = scrape(t, "http://"+addr+"/metrics")
		}
	}
	defer func() { metricsUpHook, epochHook = nil, nil }()

	var out bytes.Buffer
	err := run([]string{
		"-net", "mnist", "-epochs", "2", "-examples", "32", "-batch", "8",
		"-workers", "2", "-strategy", "gemm-in-parallel",
		"-metrics-addr", "127.0.0.1:0",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}

	// Mid-training scrape: per-layer fp and bp spans with nonzero counts.
	var sawFP, sawBP bool
	for _, line := range strings.Split(midTraining, "\n") {
		if !strings.HasPrefix(line, "spg_span_seconds_count{") {
			continue
		}
		var n float64
		if _, err := fmt.Sscanf(line[strings.LastIndexByte(line, ' ')+1:], "%g", &n); err != nil || n <= 0 {
			continue
		}
		if strings.Contains(line, `span="layer/`) && strings.Contains(line, "/fp/") {
			sawFP = true
		}
		if strings.Contains(line, `span="layer/`) && strings.Contains(line, "/bp/") {
			sawBP = true
		}
	}
	if !sawFP || !sawBP {
		t.Fatalf("mid-training scrape missing per-layer spans (fp=%v bp=%v):\n%s",
			sawFP, sawBP, midTraining)
	}

	// The goodput series is recorded before the epoch hook fires.
	for _, want := range []string{
		`spg_conv_goodput_gflops_series{epoch="1"}`,
		"spg_images_per_sec",
		"spg_workers 2",
	} {
		if !strings.Contains(midTraining, want) {
			t.Errorf("mid-training scrape missing %q", want)
		}
	}
	if !strings.Contains(final, `spg_conv_goodput_gflops_series{epoch="2"}`) {
		t.Error("final scrape missing the epoch-2 goodput series")
	}

	if !strings.Contains(health, "ok") {
		t.Errorf("healthz = %q", health)
	}
	if !strings.Contains(out.String(), "metrics endpoint http://") {
		t.Errorf("run output does not announce the metrics endpoint:\n%s", out.String())
	}
}

func TestBuiltinNetworks(t *testing.T) {
	for _, name := range []string{"mnist", "cifar", "imagenet100"} {
		src, ds := builtin(name)
		if src == "" || ds != name {
			t.Fatalf("builtin(%q) = %q dataset, want matching dataset", name, ds)
		}
	}
}

func TestDatasetByName(t *testing.T) {
	for _, name := range []string{"mnist", "cifar", "imagenet100"} {
		if datasetByName(name, 10) == nil {
			t.Fatalf("datasetByName(%q) = nil", name)
		}
	}
	if datasetByName("imagenet22k", 10) != nil {
		t.Fatal("unknown dataset resolved")
	}
}

func TestFindStrategy(t *testing.T) {
	for _, name := range []string{"parallel-gemm", "gemm-in-parallel", "stencil", "sparse"} {
		st, ok := findStrategy(name, 2)
		if !ok || st.Name != name {
			t.Fatalf("findStrategy(%q) failed", name)
		}
	}
	if _, ok := findStrategy("auto", 2); ok {
		t.Fatal("'auto' is not a strategy name and must not resolve")
	}
	// Worker floor.
	if st, ok := findStrategy("parallel-gemm", 0); !ok || st.Name != "parallel-gemm" {
		t.Fatal("workers=0 not floored")
	}
}
