package machine

import (
	"testing"

	"spgcnn/internal/ait"
	"spgcnn/internal/conv"
)

// The six Table 1 convolutions, by paper ID.
var t1 = []conv.Spec{
	conv.Square(32, 32, 32, 4, 1),
	conv.Square(64, 1024, 512, 2, 1),
	conv.Square(256, 256, 128, 3, 1),
	conv.Square(128, 128, 64, 7, 1),
	conv.Square(128, 512, 256, 5, 1),
	conv.Square(64, 64, 16, 11, 1),
}

func TestEffPerCoreSaturates(t *testing.T) {
	m := Paper()
	if m.EffPerCore(0) != 0 {
		t.Fatal("zero AIT should give zero")
	}
	if got := m.EffPerCore(m.HalfPerfAIT); got < 20.7 || got > 20.9 {
		t.Fatalf("half-perf AIT gives %v, want ~peak/2 = 20.8", got)
	}
	if m.EffPerCore(1e9) > m.PeakGFlopsPerCore {
		t.Fatal("efficiency exceeded peak")
	}
	if m.EffPerCore(100) <= m.EffPerCore(10) {
		t.Fatal("efficiency not monotone in AIT")
	}
}

func TestParallelGEMMPerCoreDegrades(t *testing.T) {
	// Fig. 3a: Parallel-GEMM performance per core falls as cores grow, for
	// every Table 1 convolution, with an average drop > 50% at 16 cores
	// (the paper's reported figure).
	m := Paper()
	dropSum := 0.0
	for id, s := range t1 {
		p1 := m.ParallelGEMMTraining(s, 1)
		prev := p1
		for _, p := range []int{2, 4, 8, 16} {
			cur := m.ParallelGEMMTraining(s, p)
			if cur > prev+1e-9 {
				t.Fatalf("ID %d: per-core rate rose from %v to %v at p=%d", id, prev, cur, p)
			}
			prev = cur
		}
		dropSum += 1 - prev/p1
	}
	if avg := dropSum / float64(len(t1)); avg < 0.5 {
		t.Fatalf("average per-core drop at 16 cores = %.0f%%, paper reports > 50%%", avg*100)
	}
}

func TestGEMMInParallelNearlyFlat(t *testing.T) {
	// Fig. 4a: GEMM-in-Parallel per-core performance is roughly steady,
	// dropping < 15% on average at 16 cores.
	m := Paper()
	dropSum := 0.0
	for id, s := range t1 {
		p1 := m.GEMMInParallelTraining(s, 1)
		p16 := m.GEMMInParallelTraining(s, 16)
		if p16 > p1+1e-9 {
			t.Fatalf("ID %d: per-core rate rose with cores", id)
		}
		dropSum += 1 - p16/p1
	}
	if avg := dropSum / float64(len(t1)); avg > 0.15 {
		t.Fatalf("average GiP drop = %.0f%%, paper reports < 15%%", avg*100)
	}
}

func TestGEMMInParallelBeatsParallelGEMMAndGrowsWithCores(t *testing.T) {
	// Fig. 4b: the relative speedup of GEMM-in-Parallel over Parallel-GEMM
	// grows with core count, and convolutions with fewer output features
	// benefit more.
	m := Paper()
	for id, s := range t1 {
		prevSpeedup := 0.0
		for _, p := range []int{1, 2, 4, 8, 16} {
			sp := m.GEMMInParallelTraining(s, p) / m.ParallelGEMMTraining(s, p)
			if sp < prevSpeedup-1e-9 {
				t.Fatalf("ID %d: speedup shrank with cores (%v -> %v at p=%d)", id, prevSpeedup, sp, p)
			}
			prevSpeedup = sp
		}
		if prevSpeedup < 1 {
			t.Fatalf("ID %d: GiP slower than Parallel-GEMM at 16 cores (%v)", id, prevSpeedup)
		}
	}
	// Fewer features (ID 0, Nf=32) must benefit more than many (ID 1, 1024).
	sp0 := m.GEMMInParallelTraining(t1[0], 16) / m.ParallelGEMMTraining(t1[0], 16)
	sp1 := m.GEMMInParallelTraining(t1[1], 16) / m.ParallelGEMMTraining(t1[1], 16)
	if sp0 <= sp1 {
		t.Fatalf("small conv speedup %v not above large conv speedup %v", sp0, sp1)
	}
}

func TestStencilBeatsGiPForSmallConvsOnly(t *testing.T) {
	// Fig. 4d: Stencil-Kernel wins for < 128 output features (IDs 0, 5);
	// GEMM-in-Parallel wins for the larger convolutions (ID 1 at least).
	m := Paper()
	for _, id := range []int{0, 5} {
		st := m.Stencil(t1[id], 16)
		gp := m.GEMMInParallel(t1[id], ait.FP, 16)
		if st <= gp {
			t.Errorf("ID %d (Nf=%d): stencil %v not above GiP %v", id, t1[id].Nf, st, gp)
		}
	}
	st := m.Stencil(t1[1], 16)
	gp := m.GEMMInParallel(t1[1], ait.FP, 16)
	if st >= gp {
		t.Errorf("ID 1 (Nf=1024): stencil %v should lose to GiP %v", st, gp)
	}
}

func TestStencilScalesFlat(t *testing.T) {
	// Fig. 4c: stencil per-core performance barely moves with core count.
	m := Paper()
	for id, s := range t1 {
		p1 := m.Stencil(s, 1)
		p16 := m.Stencil(s, 16)
		if p16 > p1+1e-9 {
			t.Fatalf("ID %d: stencil rate rose with cores", id)
		}
		if 1-p16/p1 > 0.2 {
			t.Fatalf("ID %d: stencil dropped %.0f%% at 16 cores", id, (1-p16/p1)*100)
		}
	}
}

func TestSparseGoodputShape(t *testing.T) {
	// Fig. 4e: goodput is high and fairly steady below ~90% sparsity, then
	// rolls off as the layout transforms become the bottleneck.
	m := Paper()
	for id, s := range t1 {
		g50 := m.SparseGoodput(s, 0.5, 16)
		g90 := m.SparseGoodput(s, 0.9, 16)
		g99 := m.SparseGoodput(s, 0.99, 16)
		if g50 <= 0 || g90 <= 0 || g99 <= 0 {
			t.Fatalf("ID %d: non-positive goodput", id)
		}
		if g99 >= g90 {
			t.Errorf("ID %d: goodput did not roll off past 90%% sparsity (%v -> %v)", id, g90, g99)
		}
		// Goodput never exceeds the Eq. 10 bound shape: it is at most the
		// peak axpy rate.
		if g50 > m.PeakGFlopsPerCore {
			t.Errorf("ID %d: goodput %v above peak", id, g50)
		}
	}
}

func TestSparseSpeedupCrossover(t *testing.T) {
	// Fig. 4f: the sparse kernel consistently outperforms at >= 75%
	// sparsity and is 3x+ faster at >= 90% for the small-AIT convolutions;
	// below ~50% it can lose.
	m := Paper()
	for id, s := range t1 {
		sp75 := m.SparseSpeedup(s, 0.75, 16)
		sp90 := m.SparseSpeedup(s, 0.90, 16)
		if sp75 < 1 {
			t.Errorf("ID %d: speedup at 75%% sparsity = %v, want >= 1", id, sp75)
		}
		if sp90 < sp75 {
			t.Errorf("ID %d: speedup not increasing in sparsity", id)
		}
	}
	// The small convolutions (IDs 0, 5 — Region 5) gain the most at high
	// sparsity because the sparse kernel also avoids the unfold AIT loss.
	if m.SparseSpeedup(t1[0], 0.97, 16) < 3 {
		t.Errorf("ID 0 speedup at 97%% = %v, want >= 3", m.SparseSpeedup(t1[0], 0.97, 16))
	}
}

func TestSparseSpeedupFullySparse(t *testing.T) {
	m := Paper()
	if sp := m.SparseSpeedup(t1[2], 1.0, 16); sp <= 0 {
		t.Fatalf("fully sparse speedup = %v, want positive (transforms only)", sp)
	}
}

func TestSharedBandwidthCap(t *testing.T) {
	m := Paper()
	// A kernel demanding 8 GB/s per core fits alone but not on 16 cores:
	// rate 20 GFlops at AIT 10 elements → 20·4/10 = 8 GB/s demand.
	r1 := m.shareBandwidth(20, 10, 1)
	r16 := m.shareBandwidth(20, 10, 16)
	if r1 != 20 {
		t.Fatalf("single core should be uncapped, got %v", r1)
	}
	if r16 >= r1 {
		t.Fatalf("16-core low-AIT rate %v not capped below 1-core %v", r16, r1)
	}
	// The cap preserves aggregate bandwidth: 16·rate·4/10 = shared BW.
	if agg := 16 * r16 * 4 / 10; agg < m.SharedBandwidthGBs-1e-9 || agg > m.SharedBandwidthGBs+1e-9 {
		t.Fatalf("capped aggregate demand = %v, want %v", agg, m.SharedBandwidthGBs)
	}
	// A high-AIT kernel is unaffected.
	if m.shareBandwidth(40, 1e6, 16) != 40 {
		t.Fatal("high-AIT kernel should not be bandwidth-capped")
	}
}

func TestPaperDefaults(t *testing.T) {
	m := Paper()
	if m.Cores != 16 || m.PeakGFlopsPerCore != 41.6 {
		t.Fatalf("Paper() constants changed: %+v", m)
	}
}

func TestBlockedConvFPBeatsGEMMInParallelOnCIFAR(t *testing.T) {
	// The blocked engine's whole advantage is unfold-free traffic: on the
	// CIFAR L0 geometry (many pixels per weight, Fx·Fy = 25 replication in
	// the unfolded matrix) it must model faster than GEMM-in-Parallel, and
	// it must predict a positive finite rate on every Table 1 geometry.
	m := Paper()
	s := conv.Square(36, 64, 3, 5, 1)
	for _, p := range []int{1, 4, 16} {
		b := m.BlockedConvFP(s, p)
		g := m.GEMMInParallel(s, ait.FP, p)
		if b <= g {
			t.Fatalf("p=%d: BlockedConvFP %.2f <= GEMMInParallel %.2f", p, b, g)
		}
	}
	for _, s := range t1 {
		for _, p := range []int{1, 8, 16} {
			if r := m.BlockedConvFP(s, p); r <= 0 || r > m.PeakGFlopsPerCore {
				t.Fatalf("%v p=%d: BlockedConvFP = %v", s, p, r)
			}
		}
	}
}

func TestSparseWeightFPShape(t *testing.T) {
	// FP goodput must fall monotonically with weight sparsity (less useful
	// work over near-constant overheads) while the dense-equivalent rate
	// (goodput / density) RISES — that is what lets the candidate win the
	// ranking for heavily pruned layers and lose it for dense ones.
	m := Paper()
	s := conv.Square(36, 64, 3, 5, 1)
	prev := m.SparseWeightFP(s, 0, 4)
	if prev <= 0 {
		t.Fatal("dense-weight goodput not positive")
	}
	for _, ws := range []float64{0.25, 0.5, 0.75, 0.9, 0.99} {
		g := m.SparseWeightFP(s, ws, 4)
		if g <= 0 || g >= prev {
			t.Fatalf("goodput not decreasing at ws=%.2f: %v -> %v", ws, prev, g)
		}
		prev = g
	}
	denseEq := func(ws float64) float64 {
		d := 1 - ws
		if d < 0.01 {
			d = 0.01
		}
		return m.SparseWeightFP(s, ws, 4) / d
	}
	if denseEq(0.95) <= denseEq(0) {
		t.Fatal("dense-equivalent rate does not improve with pruning")
	}
	// At 95% weight sparsity the pruned kernel should model clearly faster
	// than the dense baseline (the planner-selection acceptance criterion).
	if denseEq(0.95) <= m.GEMMInParallel(s, ait.FP, 4) {
		t.Fatalf("95%% pruned dense-equivalent %.2f <= GEMM-in-Parallel %.2f",
			denseEq(0.95), m.GEMMInParallel(s, ait.FP, 4))
	}
}
