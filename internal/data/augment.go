package data

import (
	"fmt"

	"spgcnn/internal/rng"
	"spgcnn/internal/tensor"
)

// Data augmentation: the standard transforms CNN training pipelines apply
// per example. Augmented wraps any dataset and applies a deterministic
// per-(example, epoch-salt) horizontal flip and random crop — deterministic
// so training runs remain exactly reproducible, but with a distinct
// augmentation per example index, like a fixed augmentation schedule.

// Augmented decorates a base dataset with flips and shifted crops.
type Augmented struct {
	base interface {
		Len() int
		Classes() int
		Label(i int) int
		Image(i int, dst *tensor.Tensor)
		Dims() []int
	}
	flip     bool
	maxShift int
	seed     uint64
	scratch  *tensor.Tensor
}

// Augment wraps base with horizontal flips (50% of examples) and random
// spatial shifts up to maxShift pixels (content shifted, border
// zero-filled). maxShift 0 disables shifting.
func Augment(base *Synthetic, maxShift int, seed uint64) *Augmented {
	if maxShift < 0 {
		panic(fmt.Sprintf("data: negative maxShift %d", maxShift))
	}
	dims := base.Dims()
	return &Augmented{
		base:     base,
		flip:     true,
		maxShift: maxShift,
		seed:     seed,
		scratch:  tensor.New(dims...),
	}
}

// Len implements nn.Dataset.
func (a *Augmented) Len() int { return a.base.Len() }

// Classes implements nn.Dataset.
func (a *Augmented) Classes() int { return a.base.Classes() }

// Label implements nn.Dataset.
func (a *Augmented) Label(i int) int { return a.base.Label(i) }

// Dims returns the per-image shape (unchanged by augmentation).
func (a *Augmented) Dims() []int { return a.base.Dims() }

// Image implements nn.Dataset: render the base example, then apply the
// example's deterministic flip/shift.
func (a *Augmented) Image(i int, dst *tensor.Tensor) {
	a.base.Image(i, a.scratch)
	r := rng.New(a.seed ^ (0xa076_1d64_78bd_642f * uint64(i+1)))
	doFlip := a.flip && r.Float64() < 0.5
	sy, sx := 0, 0
	if a.maxShift > 0 {
		sy = r.Intn(2*a.maxShift+1) - a.maxShift
		sx = r.Intn(2*a.maxShift+1) - a.maxShift
	}
	c, h, w := a.scratch.Dim(0), a.scratch.Dim(1), a.scratch.Dim(2)
	dst.Zero()
	for ci := 0; ci < c; ci++ {
		for y := 0; y < h; y++ {
			srcY := y - sy
			if srcY < 0 || srcY >= h {
				continue
			}
			srcRow := a.scratch.Row3(ci, srcY)
			dstRow := dst.Row3(ci, y)
			for x := 0; x < w; x++ {
				srcX := x - sx
				if srcX < 0 || srcX >= w {
					continue
				}
				if doFlip {
					dstRow[x] = srcRow[w-1-srcX]
				} else {
					dstRow[x] = srcRow[srcX]
				}
			}
		}
	}
}
