#!/bin/sh
# explore_check: the spg-plan -explore design-space report over the
# workload zoo is a pure function of the netdefs and the paper machine
# model, so it is compared byte-for-byte against the committed golden.
# Regenerate after an intentional change with:
#
#	scripts/explore_check.sh -update
#
# Usage: scripts/explore_check.sh [-update]
set -eu

cd "$(dirname "$0")/.."
golden="cmd/spg-plan/testdata/explore_golden.txt"

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT INT TERM

go run ./cmd/spg-plan -explore all -workers 16 > "$tmp/explore.txt"

if [ "${1:-}" = "-update" ]; then
	cp "$tmp/explore.txt" "$golden"
	echo "explore_check: regenerated $golden"
	exit 0
fi

if ! diff -u "$golden" "$tmp/explore.txt"; then
	echo "explore_check: report diverged from $golden (run scripts/explore_check.sh -update after an intentional change)" >&2
	exit 1
fi
echo "explore_check: zoo design-space report matches $golden"
