package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"spgcnn"
)

// update regenerates testdata/sample_drift.json and testdata/golden.txt
// from the in-test fixture:
//
//	go test ./cmd/spg-doctor -update
var update = flag.Bool("update", false, "rewrite testdata from the fixture")

// sampleReport is a hand-stamped two-layer report: conv0 agrees well in
// both phases but carried one BP drift event; conv1's FP runs at half the
// modeled rate. Every number is a literal, so the exported JSON and the
// rendering are byte-deterministic.
func sampleReport() spgcnn.DriftReport {
	spec := spgcnn.Square(12, 16, 8, 3, 1)
	return spgcnn.DriftReport{
		Schema:  spgcnn.DriftReportSchemaVersion,
		Host:    "linux/amd64/16cpu/go1.24.0/testbed",
		Workers: 4, Threshold: 1.5, Window: 3, Alpha: 0.25, Warmup: 5,
		Rows: []spgcnn.DriftRow{
			{Layer: "conv0", Phase: "bp", Strategy: "sparse", Spec: spec,
				Region: 5, Band: 3, Sparsity: 0.8,
				Calls: 40, MeasuredSeconds: 0.2, PredictedSeconds: 0.19,
				Agreement: 0.95, EWMA: 1.08, Drifts: 1},
			{Layer: "conv0", Phase: "fp", Strategy: "stencil", Spec: spec,
				Region: 1, Band: 0, Sparsity: 0,
				Calls: 40, MeasuredSeconds: 0.1, PredictedSeconds: 0.098,
				Agreement: 0.98, EWMA: 1.02, Drifts: 0},
			{Layer: "conv1", Phase: "fp", Strategy: "parallel-gemm", Spec: spec,
				Region: 0, Band: 0, Sparsity: 0,
				Calls: 40, MeasuredSeconds: 0.3, PredictedSeconds: 0.15,
				Agreement: 0.5, EWMA: 2.0, Drifts: 0},
		},
		Regions: []spgcnn.DriftRegionRow{
			{Region: 0, Series: 1, Calls: 40, MeasuredSeconds: 0.3, PredictedSeconds: 0.15, Agreement: 0.5},
			{Region: 1, Series: 1, Calls: 40, MeasuredSeconds: 0.1, PredictedSeconds: 0.098, Agreement: 0.98},
			{Region: 5, Series: 1, Calls: 40, MeasuredSeconds: 0.2, PredictedSeconds: 0.19, Agreement: 0.95, Drifts: 1},
		},
		Events: []spgcnn.DriftEvent{
			{Layer: "conv0", Phase: "bp", Strategy: "sparse", Spec: spec,
				Region: 5, Band: 3, Ratio: 1.7, Baseline: 1.05, Observation: 23},
		},
	}
}

func samplePath(t *testing.T) string {
	t.Helper()
	path := filepath.Join("testdata", "sample_drift.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := sampleReport().WriteFile(path); err != nil {
			t.Fatal(err)
		}
	}
	return path
}

// TestSampleReportInSync pins testdata/sample_drift.json as the exact
// export of the fixture, so the committed sample can never drift from the
// writer.
func TestSampleReportInSync(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleReport().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(samplePath(t))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("testdata/sample_drift.json is stale; regenerate with -update\n--- exported ---\n%s", buf.String())
	}
}

// TestRunGolden pins the rendering byte-for-byte.
func TestRunGolden(t *testing.T) {
	goldenPath := filepath.Join("testdata", "golden.txt")
	var out strings.Builder
	if err := run([]string{samplePath(t)}, &out); err != nil {
		t.Fatal(err)
	}
	if *update {
		if err := os.WriteFile(goldenPath, []byte(out.String()), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatal(err)
	}
	if out.String() != string(want) {
		t.Errorf("output diverged from testdata/golden.txt\n--- got ---\n%s\n--- want ---\n%s",
			out.String(), want)
	}
}

// TestRunCheckAndGates covers the CI modes: plain validation, the
// drift-count gate and the agreement floor.
func TestRunCheckAndGates(t *testing.T) {
	path := samplePath(t)
	var out strings.Builder
	if err := run([]string{"-check", path}, &out); err != nil {
		t.Fatal(err)
	}
	if got, want := out.String(), "drift report OK: schema 1, 3 series, 1 drift events, agreement 0.730\n"; got != want {
		t.Errorf("-check output = %q, want %q", got, want)
	}
	if err := run([]string{"-check", "-max-drifts", "1", path}, &out); err != nil {
		t.Errorf("-max-drifts 1 should pass with 1 drift: %v", err)
	}
	if err := run([]string{"-check", "-max-drifts", "0", path}, &out); err == nil {
		t.Error("-max-drifts 0 should fail with 1 drift")
	}
	if err := run([]string{"-check", "-min-agreement", "0.5", path}, &out); err != nil {
		t.Errorf("-min-agreement 0.5 should pass at 0.730: %v", err)
	}
	if err := run([]string{"-check", "-min-agreement", "0.9", path}, &out); err == nil {
		t.Error("-min-agreement 0.9 should fail at 0.730")
	}
}

// TestRunErrors verifies bad inputs surface as errors, not panics.
func TestRunErrors(t *testing.T) {
	var out strings.Builder
	if err := run([]string{}, &out); err == nil {
		t.Error("expected a usage error with no arguments")
	}
	if err := run([]string{filepath.Join("testdata", "nope.json")}, &out); err == nil {
		t.Error("expected an error for a missing file")
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"schema": 99}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{bad}, &out); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Errorf("wrong-schema report error = %v", err)
	}
}
