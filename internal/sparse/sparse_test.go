package sparse

import (
	"math"
	"testing"
	"testing/quick"

	"spgcnn/internal/rng"
)

func randSparseDense(r *rng.RNG, rows, cols int, sparsity float64) []float32 {
	d := make([]float32, rows*cols)
	for i := range d {
		if r.Float64() >= sparsity {
			d[i] = float32(r.NormFloat64())
			if d[i] == 0 {
				d[i] = 1
			}
		}
	}
	return d
}

func slicesClose(a, b []float32, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		d := math.Abs(float64(a[i]) - float64(b[i]))
		if d > tol && d > tol*math.Max(math.Abs(float64(a[i])), math.Abs(float64(b[i]))) {
			return false
		}
	}
	return true
}

func denseMM(a []float32, m, k int, b []float32, n int) []float32 {
	c := make([]float32, m*n)
	for i := 0; i < m; i++ {
		for kk := 0; kk < k; kk++ {
			v := a[i*k+kk]
			if v == 0 {
				continue
			}
			for j := 0; j < n; j++ {
				c[i*n+j] += v * b[kk*n+j]
			}
		}
	}
	return c
}

func TestCSRRoundTrip(t *testing.T) {
	r := rng.New(1)
	for _, tc := range []struct {
		rows, cols int
		sparsity   float64
	}{
		{1, 1, 0}, {5, 7, 0.5}, {20, 30, 0.9}, {8, 8, 1.0}, {16, 3, 0},
	} {
		d := randSparseDense(r, tc.rows, tc.cols, tc.sparsity)
		m := FromDense(d, tc.rows, tc.cols)
		if !slicesClose(m.ToDense(), d, 0) {
			t.Fatalf("CSR round trip failed for %+v", tc)
		}
	}
}

func TestCSRKnownLayout(t *testing.T) {
	// 2x3 matrix [[0 5 0],[7 0 9]]
	m := FromDense([]float32{0, 5, 0, 7, 0, 9}, 2, 3)
	if m.NNZ() != 3 {
		t.Fatalf("NNZ = %d, want 3", m.NNZ())
	}
	if m.Values[0] != 5 || m.ColIdx[0] != 1 {
		t.Fatal("first nonzero wrong")
	}
	if m.RowPtr[0] != 0 || m.RowPtr[1] != 1 || m.RowPtr[2] != 3 {
		t.Fatalf("RowPtr = %v", m.RowPtr)
	}
	if m.RowNNZ(0) != 1 || m.RowNNZ(1) != 2 {
		t.Fatal("RowNNZ wrong")
	}
}

func TestCSRSparsity(t *testing.T) {
	m := FromDense([]float32{0, 5, 0, 7, 0, 9, 0, 0}, 2, 4)
	if got := m.Sparsity(); got != 5.0/8.0 {
		t.Fatalf("Sparsity = %v, want 0.625", got)
	}
}

func TestCSRSpMMMatchesDense(t *testing.T) {
	r := rng.New(2)
	for _, tc := range []struct{ m, k, n int }{{1, 1, 1}, {4, 8, 3}, {13, 17, 9}, {32, 64, 16}} {
		a := randSparseDense(r, tc.m, tc.k, 0.8)
		b := randSparseDense(r, tc.k, tc.n, 0)
		want := denseMM(a, tc.m, tc.k, b, tc.n)
		got := make([]float32, tc.m*tc.n)
		FromDense(a, tc.m, tc.k).SpMM(got, b, tc.n)
		if !slicesClose(got, want, 1e-4) {
			t.Fatalf("CSR SpMM differs for %+v", tc)
		}
	}
}

func TestCSRSpMMOverwrites(t *testing.T) {
	a := FromDense([]float32{1, 0, 0, 1}, 2, 2)
	b := []float32{3, 4, 5, 6}
	c := []float32{99, 99, 99, 99}
	a.SpMM(c, b, 2)
	if !slicesClose(c, b, 0) {
		t.Fatal("SpMM did not overwrite destination")
	}
}

func TestCTCSRRoundTrip(t *testing.T) {
	r := rng.New(3)
	for _, tc := range []struct {
		rows, cols, tw int
		sparsity       float64
	}{
		{1, 1, 1, 0}, {5, 7, 3, 0.5}, {20, 130, 64, 0.9}, {8, 64, 64, 0.7},
		{8, 65, 64, 0.7}, {3, 10, 0, 0.5}, // tw=0 -> default
	} {
		d := randSparseDense(r, tc.rows, tc.cols, tc.sparsity)
		m := FromDenseCT(d, tc.rows, tc.cols, tc.tw)
		if !slicesClose(m.ToDense(), d, 0) {
			t.Fatalf("CT-CSR round trip failed for %+v", tc)
		}
	}
}

func TestCTCSRTileCountAndWidths(t *testing.T) {
	m := FromDenseCT(make([]float32, 4*130), 4, 130, 64)
	if len(m.Tiles) != 3 {
		t.Fatalf("tiles = %d, want 3", len(m.Tiles))
	}
	if m.Tiles[0].Cols != 64 || m.Tiles[1].Cols != 64 || m.Tiles[2].Cols != 2 {
		t.Fatalf("tile widths = %d,%d,%d", m.Tiles[0].Cols, m.Tiles[1].Cols, m.Tiles[2].Cols)
	}
}

func TestCTCSRAgreesWithCSR(t *testing.T) {
	r := rng.New(4)
	d := randSparseDense(r, 15, 100, 0.85)
	csr := FromDense(d, 15, 100)
	ct := FromDenseCT(d, 15, 100, 32)
	if csr.NNZ() != ct.NNZ() {
		t.Fatalf("NNZ disagree: CSR %d vs CT-CSR %d", csr.NNZ(), ct.NNZ())
	}
	if math.Abs(csr.Sparsity()-ct.Sparsity()) > 1e-12 {
		t.Fatal("sparsity disagrees")
	}
	b := randSparseDense(r, 100, 7, 0)
	c1 := make([]float32, 15*7)
	c2 := make([]float32, 15*7)
	csr.SpMM(c1, b, 7)
	ct.SpMM(c2, b, 7)
	if !slicesClose(c1, c2, 1e-4) {
		t.Fatal("CT-CSR SpMM differs from CSR SpMM")
	}
}

func TestCTCSRVisitCoversAllNonzeros(t *testing.T) {
	r := rng.New(5)
	d := randSparseDense(r, 9, 70, 0.8)
	m := FromDenseCT(d, 9, 70, 16)
	seen := make(map[[2]int]float32)
	m.Visit(func(row, col int, v float32) {
		key := [2]int{row, col}
		if _, dup := seen[key]; dup {
			t.Fatalf("element (%d,%d) visited twice", row, col)
		}
		seen[key] = v
	})
	for i := 0; i < 9; i++ {
		for j := 0; j < 70; j++ {
			v := d[i*70+j]
			got, ok := seen[[2]int{i, j}]
			if v != 0 && (!ok || got != v) {
				t.Fatalf("nonzero (%d,%d)=%v missed or wrong (%v)", i, j, v, got)
			}
			if v == 0 && ok {
				t.Fatalf("zero (%d,%d) visited", i, j)
			}
		}
	}
}

func TestCTCSRVisitTileOrder(t *testing.T) {
	// Within a tile, visits must be row-major (the pointer-shifting kernel
	// depends on walking a tile's rows consecutively).
	d := []float32{
		1, 0, 2, 0,
		0, 3, 0, 4,
	}
	m := FromDenseCT(d, 2, 4, 2)
	var order [][2]int
	m.VisitTile(0, func(row, col int, v float32) { order = append(order, [2]int{row, col}) })
	want := [][2]int{{0, 0}, {1, 1}}
	if len(order) != len(want) {
		t.Fatalf("tile 0 visited %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("tile 0 visit order %v, want %v", order, want)
		}
	}
}

func TestSpMMPropertyQuick(t *testing.T) {
	r := rng.New(6)
	if err := quick.Check(func(m8, k8, n8, s8, tw8 uint8) bool {
		m, k, n := int(m8%12)+1, int(k8%20)+1, int(n8%10)+1
		tw := int(tw8%8) + 1
		s := float64(s8) / 260
		a := randSparseDense(r, m, k, s)
		b := randSparseDense(r, k, n, 0)
		want := denseMM(a, m, k, b, n)
		c1 := make([]float32, m*n)
		FromDense(a, m, k).SpMM(c1, b, n)
		c2 := make([]float32, m*n)
		FromDenseCT(a, m, k, tw).SpMM(c2, b, n)
		return slicesClose(c1, want, 1e-4) && slicesClose(c2, want, 1e-4)
	}, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyMatrix(t *testing.T) {
	m := FromDense(nil, 0, 0)
	if m.NNZ() != 0 || m.Sparsity() != 0 {
		t.Fatal("empty CSR not empty")
	}
	ct := FromDenseCT(nil, 0, 0, 4)
	if ct.NNZ() != 0 || len(ct.ToDense()) != 0 {
		t.Fatal("empty CT-CSR not empty")
	}
}

func BenchmarkCSRSpMM(b *testing.B) {
	r := rng.New(1)
	a := FromDense(randSparseDense(r, 256, 256, 0.85), 256, 256)
	x := randSparseDense(r, 256, 64, 0)
	c := make([]float32, 256*64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.SpMM(c, x, 64)
	}
}

func BenchmarkCTCSRSpMM(b *testing.B) {
	r := rng.New(1)
	a := FromDenseCT(randSparseDense(r, 256, 256, 0.85), 256, 256, 64)
	x := randSparseDense(r, 256, 64, 0)
	c := make([]float32, 256*64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.SpMM(c, x, 64)
	}
}
