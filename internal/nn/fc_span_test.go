package nn

import (
	"testing"

	"spgcnn/internal/exec"
	"spgcnn/internal/rng"
	"spgcnn/internal/tensor"
)

func TestFCLayerSpans(t *testing.T) {
	ctx := exec.New(1)
	r := rng.New(3)
	l := NewFCCtx("fc0", []int{2, 3, 3}, 4, ctx, r)

	ins := []*tensor.Tensor{tensor.New(2, 3, 3)}
	outs := []*tensor.Tensor{tensor.New(4)}
	eos := []*tensor.Tensor{tensor.New(4)}
	eis := []*tensor.Tensor{tensor.New(2, 3, 3)}
	ins[0].FillNormal(r, 0, 1)
	eos[0].FillNormal(r, 0, 1)

	l.Forward(outs, ins)
	l.Forward(outs, ins)
	l.Backward(eis, eos, ins)

	fp, ok := ctx.Probe().SpanStats("layer/fc0/fp/gemm-in-parallel")
	if !ok || fp.Calls != 2 {
		t.Fatalf("fp span = %+v ok=%v, want 2 calls", fp, ok)
	}
	bp, ok := ctx.Probe().SpanStats("layer/fc0/bp/gemm-in-parallel")
	if !ok || bp.Calls != 1 {
		t.Fatalf("bp span = %+v ok=%v, want 1 call", bp, ok)
	}
}

func TestTrainerOnStepHook(t *testing.T) {
	net := tinyTrainNet(rng.New(1))
	tr := NewTrainer(net, 0.05, 8)
	var steps []int64
	tr.OnStep = func(s int64) { steps = append(steps, s) }
	ds := &syntheticDS{n: 32, classes: 4, dims: net.InDims()}
	r := rng.New(2)
	tr.TrainEpoch(ds, r)
	// 32 examples / batch 8 = 4 steps.
	if len(steps) != 4 {
		t.Fatalf("OnStep fired %d times, want 4", len(steps))
	}
	for i, s := range steps {
		if s != int64(i+1) {
			t.Fatalf("steps = %v, want 1..4", steps)
		}
	}
	tr.TrainEpoch(ds, r)
	// The counter is monotonic across epochs.
	if steps[len(steps)-1] != 8 {
		t.Fatalf("second epoch ended at step %d, want 8", steps[len(steps)-1])
	}
}
