package tensor

import (
	"sync"
	"testing"
)

func TestArenaReusesBuffers(t *testing.T) {
	a := NewArena()
	b1 := a.Get(100)
	if len(b1) != 100 || cap(b1) != 128 {
		t.Fatalf("Get(100): len=%d cap=%d, want 100/128", len(b1), cap(b1))
	}
	b1[0] = 42
	a.Put(b1)
	b2 := a.Get(90) // same class: must reuse the same backing array
	if &b1[0] != &b2[0] {
		t.Fatal("Get after Put did not reuse the buffer")
	}
	if b2[0] != 42 {
		t.Fatal("arena zeroed a buffer: Get promises uninitialized memory")
	}
	st := a.Stats()
	if st.Gets != 2 || st.Hits != 1 || st.Outstanding != 1 {
		t.Fatalf("stats = %+v, want Gets=2 Hits=1 Outstanding=1", st)
	}
	if st.BytesAcquired != 4*(100+90) {
		t.Fatalf("BytesAcquired = %d, want %d", st.BytesAcquired, 4*(100+90))
	}
}

func TestArenaMinClassAndDistinctClasses(t *testing.T) {
	a := NewArena()
	small := a.Get(1)
	if cap(small) != MinArenaClass {
		t.Fatalf("Get(1) cap = %d, want %d (cache-line floor)", cap(small), MinArenaClass)
	}
	a.Put(small)
	big := a.Get(1000)
	if cap(big) != 1024 {
		t.Fatalf("Get(1000) cap = %d, want 1024", cap(big))
	}
	if &big[0] == &small[0] {
		t.Fatal("different size classes shared a buffer")
	}
}

func TestArenaZeroLength(t *testing.T) {
	a := NewArena()
	b := a.Get(0)
	if len(b) != 0 {
		t.Fatalf("Get(0) len = %d", len(b))
	}
	a.Put(b)
}

func TestArenaComplexPool(t *testing.T) {
	a := NewArena()
	c1 := a.GetComplex(50)
	if len(c1) != 50 || cap(c1) != 64 {
		t.Fatalf("GetComplex(50): len=%d cap=%d", len(c1), cap(c1))
	}
	a.PutComplex(c1)
	c2 := a.GetComplex(64)
	if &c1[0] != &c2[0] {
		t.Fatal("complex pool did not reuse buffer")
	}
}

func TestArenaGetTensor(t *testing.T) {
	a := NewArena()
	x := a.GetTensor(3, 4, 5)
	if x.Len() != 60 || x.Dim(0) != 3 || x.Dim(2) != 5 {
		t.Fatalf("GetTensor shape wrong: %v", x.Dims)
	}
	data := &x.Data[0]
	a.PutTensor(x)
	y := a.GetTensor(4, 4, 4) // 64 elems: same class as 60
	if &y.Data[0] != data {
		t.Fatal("GetTensor did not reuse pooled data")
	}
	if x != y {
		t.Fatal("GetTensor did not recycle the tensor header")
	}
}

func TestArenaConcurrent(t *testing.T) {
	a := NewArena()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				b := a.Get(64 + g*100)
				for j := range b {
					b[j] = float32(g)
				}
				a.Put(b)
			}
		}(g)
	}
	wg.Wait()
	st := a.Stats()
	if st.Outstanding != 0 {
		t.Fatalf("Outstanding = %d after balanced Get/Put", st.Outstanding)
	}
	if st.Gets != 8*200 {
		t.Fatalf("Gets = %d, want %d", st.Gets, 8*200)
	}
}

func TestArenaGrowHookFiresOnMissOnly(t *testing.T) {
	a := NewArena()
	var grown []int64
	a.SetGrowHook(func(bytes int64) { grown = append(grown, bytes) })

	buf := a.Get(100) // miss: class 128 floats = 512 bytes
	a.Put(buf)
	if len(grown) != 1 || grown[0] != 512 {
		t.Fatalf("grow events = %v, want [512]", grown)
	}
	buf = a.Get(100) // hit: no growth
	a.Put(buf)
	if len(grown) != 1 {
		t.Fatalf("hit fired grow hook: %v", grown)
	}
	cb := a.GetComplex(100) // miss: class 128 complex128 = 2048 bytes
	a.PutComplex(cb)
	if len(grown) != 2 || grown[1] != 2048 {
		t.Fatalf("complex grow events = %v, want [512 2048]", grown)
	}
	a.SetGrowHook(nil)
	_ = a.Get(1 << 12)
	if len(grown) != 2 {
		t.Fatal("nil hook still fired")
	}
}
