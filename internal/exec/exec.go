// Package exec defines the batch-first execution context every spg-CNN
// convolution engine runs under. A Ctx bundles the three things that used
// to be implicit per-kernel state:
//
//   - the worker pool (degree of parallelism batch schedulers fan out to),
//   - a size-classed tensor.Arena all scratch memory is acquired from, so
//     hot buffers are reused across kernels, layers and training steps,
//   - a Probe collecting per-phase timings and kernel-choice events, which
//     the §4.4 scheduler consumes instead of ad-hoc timing.
//
// Kernels therefore carry no scratch of their own: they are cheap,
// stateless plans, and one instance can execute concurrently on many
// goroutines as long as each call draws its scratch from the (mutex-
// guarded) arena.
package exec

import (
	"time"

	"spgcnn/internal/tensor"
)

// Ctx is one execution context. Construct with New; the zero value is not
// usable. Contexts are safe for concurrent use.
type Ctx struct {
	workers int
	arena   *tensor.Arena
	probe   *Probe
	serial  *Ctx // workers=1 view sharing arena and probe
}

// New builds a context with the given worker count (minimum 1), a fresh
// arena and a fresh probe.
func New(workers int) *Ctx {
	return NewWithArena(workers, tensor.NewArena(), NewProbe())
}

// NewWithArena builds a context over an existing arena and probe — how
// sub-systems share one scratch pool. A nil arena or probe is replaced
// with a fresh one.
func NewWithArena(workers int, a *tensor.Arena, p *Probe) *Ctx {
	if workers < 1 {
		workers = 1
	}
	if a == nil {
		a = tensor.NewArena()
	}
	if p == nil {
		p = NewProbe()
	}
	c := &Ctx{workers: workers, arena: a, probe: p}
	if workers == 1 {
		c.serial = c
	} else {
		c.serial = &Ctx{workers: 1, arena: a, probe: p}
		c.serial.serial = c.serial
	}
	return c
}

// Workers reports the context's degree of parallelism.
func (c *Ctx) Workers() int { return c.workers }

// Arena returns the scratch pool.
func (c *Ctx) Arena() *tensor.Arena { return c.arena }

// Probe returns the instrumentation sink.
func (c *Ctx) Probe() *Probe { return c.probe }

// Serial returns a workers=1 view of this context sharing the same arena
// and probe — what a batch-parallel scheduler hands each worker so the
// per-worker kernels run single-threaded (GEMM-in-Parallel) while still
// drawing from the shared pool.
func (c *Ctx) Serial() *Ctx { return c.serial }

// Get acquires an uninitialized float32 scratch buffer of length n from
// the arena.
func (c *Ctx) Get(n int) []float32 { return c.arena.Get(n) }

// Put releases a buffer obtained from Get.
func (c *Ctx) Put(buf []float32) { c.arena.Put(buf) }

// GetTensor acquires an uninitialized tensor of the given shape from the
// arena.
func (c *Ctx) GetTensor(dims ...int) *tensor.Tensor { return c.arena.GetTensor(dims...) }

// GetTensorLayout acquires an uninitialized tensor of the given shape
// tagged with the given layout — how blocked engines draw NCHW8 scratch
// from the shared arena (the arena itself hands out NCHW-tagged headers).
func (c *Ctx) GetTensorLayout(l tensor.Layout, dims ...int) *tensor.Tensor {
	t := c.arena.GetTensor(dims...)
	t.Layout = l
	return t
}

// PutTensor releases a tensor obtained from GetTensor.
func (c *Ctx) PutTensor(t *tensor.Tensor) { c.arena.PutTensor(t) }

// Measure times fn over reps runs after one warm-up and returns the
// minimum elapsed seconds — the low-noise estimator the scheduler's
// measure-and-deploy pass (§4.4) uses. Every timed run is also recorded
// as a span named name in the probe.
func (c *Ctx) Measure(name string, reps int, fn func()) float64 {
	fn() // warm-up: page in scratch, populate arena free lists
	best := 0.0
	for i := 0; i < reps; i++ {
		start := time.Now()
		fn()
		el := time.Since(start).Seconds()
		c.probe.Observe(name, el)
		if i == 0 || el < best {
			best = el
		}
	}
	return best
}
