package nn

import (
	"fmt"

	"spgcnn/internal/par"
	"spgcnn/internal/tensor"
)

// ReLU is the rectified-linear activation y = max(0, x). Its backward pass
// zeroes every gradient whose input was non-positive — the mechanism that
// makes CNN error gradients sparse in practice, the property the
// Sparse-Kernel exploits (§3.3, Fig. 3b).
type ReLU struct {
	name    string
	dims    []int
	workers int
	// masks[i] saves which elements of batch slot i were positive in the
	// last Forward, for use in Backward.
	masks [][]bool
}

// NewReLU builds a ReLU over per-image tensors of the given dims.
func NewReLU(name string, dims []int, workers int) *ReLU {
	if workers < 1 {
		workers = 1
	}
	return &ReLU{name: name, dims: append([]int(nil), dims...), workers: workers}
}

// Name implements Layer.
func (l *ReLU) Name() string { return l.name }

// InDims implements Layer.
func (l *ReLU) InDims() []int { return l.dims }

// OutDims implements Layer.
func (l *ReLU) OutDims() []int { return l.dims }

func (l *ReLU) ensureMasks(n int) {
	for len(l.masks) < n {
		l.masks = append(l.masks, make([]bool, prod(l.dims)))
	}
}

// Forward implements Layer.
func (l *ReLU) Forward(outs, ins []*tensor.Tensor) {
	if len(outs) != len(ins) {
		panic(fmt.Sprintf("nn: %s Forward batch mismatch", l.name))
	}
	l.ensureMasks(len(ins))
	par.For(len(ins), l.workers, func(i int) {
		in, out, mask := ins[i], outs[i], l.masks[i]
		for j, v := range in.Data {
			if v > 0 {
				out.Data[j] = v
				mask[j] = true
			} else {
				out.Data[j] = 0
				mask[j] = false
			}
		}
	})
}

// Backward implements Layer: gradients pass only where the input was
// positive.
func (l *ReLU) Backward(eis, eos, _ []*tensor.Tensor) {
	if len(eis) != len(eos) {
		panic(fmt.Sprintf("nn: %s Backward batch mismatch", l.name))
	}
	par.For(len(eos), l.workers, func(i int) {
		eo, ei, mask := eos[i], eis[i], l.masks[i]
		for j, v := range eo.Data {
			if mask[j] {
				ei.Data[j] = v
			} else {
				ei.Data[j] = 0
			}
		}
	})
}

// ApplyGrads implements Layer (no parameters).
func (l *ReLU) ApplyGrads(float32, int) {}

// EpochEnd implements Layer.
func (l *ReLU) EpochEnd() {}
