// Pruned inference: train a small network, magnitude-prune its convolution
// weights, compile the survivors into a sparse-weights inference kernel,
// and compare dense vs sparse inference time and accuracy across pruning
// levels — the weight-sparsity counterpart (paper §6, related work) of the
// error-sparsity the Sparse-Kernel exploits during training.
package main

import (
	"fmt"
	"math"
	"sort"
	"time"

	"spgcnn"
)

func main() {
	// 1. Train the MNIST network briefly so the weights mean something.
	def, err := spgcnn.ParseNet(spgcnn.MNISTNet)
	if err != nil {
		panic(err)
	}
	st := spgcnn.FPStrategies(1)[1]
	net, err := spgcnn.BuildNet(def, spgcnn.BuildOptions{Workers: 1, Seed: 7, FixedStrategy: &st})
	if err != nil {
		panic(err)
	}
	ds := spgcnn.MNISTData(128)
	tr := spgcnn.NewTrainer(net, 0.05, 16)
	r := spgcnn.NewRNG(3)
	for e := 0; e < 4; e++ {
		tr.TrainEpoch(ds, r)
	}
	_, baseAcc := tr.Evaluate(ds)
	fmt.Printf("trained MNIST net: accuracy %.1f%%\n\n", baseAcc*100)

	cv := net.ConvLayers()[0]
	spec := cv.Spec()
	dense := spgcnn.NewUnfoldGEMM(spec, 1)

	in := spgcnn.NewInput(spec)
	out := spgcnn.NewOutput(spec)
	img := spgcnn.NewTensor(1, 28, 28)
	ds.Image(0, img)
	copy(in.Data, img.Data)

	fmt.Printf("%-8s %-8s %-12s %-12s %-10s %s\n",
		"pruned", "taps", "dense ms", "sparse ms", "speedup", "max |out diff|")
	for _, frac := range []float64{0, 0.5, 0.8, 0.9, 0.95} {
		pruned := magnitudePrune(cv.W.Clone(), frac)
		ik := spgcnn.CompileWeights(spec, pruned)

		tDense := timeIt(5, func() { dense.Forward(out, in, pruned) })
		ref := out.Clone()
		tSparse := timeIt(5, func() { ik.Forward(out, in) })

		maxDiff := 0.0
		for i := range out.Data {
			d := math.Abs(float64(out.Data[i] - ref.Data[i]))
			if d > maxDiff {
				maxDiff = d
			}
		}
		fmt.Printf("%7.0f%% %-8d %-12.3f %-12.3f %-10.2f %g\n",
			frac*100, ik.NNZ(), tDense*1e3, tSparse*1e3, tDense/tSparse, maxDiff)
	}
	fmt.Println("\n(both kernels compute the identical pruned convolution; the sparse")
	fmt.Println(" kernel's time falls with the surviving tap count)")
}

// magnitudePrune zeroes the fraction of smallest-magnitude weights.
func magnitudePrune(w *spgcnn.Tensor, frac float64) *spgcnn.Tensor {
	if frac <= 0 {
		return w
	}
	mags := make([]float64, len(w.Data))
	for i, v := range w.Data {
		mags[i] = math.Abs(float64(v))
	}
	sorted := append([]float64(nil), mags...)
	sort.Float64s(sorted)
	cut := sorted[int(frac*float64(len(sorted)))]
	for i := range w.Data {
		if mags[i] <= cut {
			w.Data[i] = 0
		}
	}
	return w
}

func timeIt(reps int, fn func()) float64 {
	fn()
	best := 0.0
	for i := 0; i < reps; i++ {
		start := time.Now()
		fn()
		el := time.Since(start).Seconds()
		if i == 0 || el < best {
			best = el
		}
	}
	return best
}
