package tensor

import (
	"testing"

	"spgcnn/internal/rng"
)

// blockedShapes covers channel counts below, at, straddling and well past
// the block factor — tail-block handling is where blocked layouts break.
var blockedShapes = [][3]int{
	{1, 1, 1},
	{3, 4, 5},
	{7, 2, 9},
	{8, 3, 3},
	{9, 5, 2},
	{16, 4, 4},
	{17, 3, 7},
	{24, 1, 11},
}

func TestBlockedRoundTrip(t *testing.T) {
	r := rng.New(0xB10C)
	for _, sh := range blockedShapes {
		c, h, w := sh[0], sh[1], sh[2]
		x := New(c, h, w)
		x.FillUniform(r, -3, 3)
		b := ToBlocked(x)
		if b.Layout != NCHW8 {
			t.Fatalf("ToBlocked(%v) layout = %v, want nchw8", sh, b.Layout)
		}
		if b.Dim(0) != Blocks(c) || b.Dim(3) != Block {
			t.Fatalf("ToBlocked(%v) shape = %v", sh, b.Dims)
		}
		back := FromBlocked(b, c)
		if back.Layout != NCHW {
			t.Fatalf("FromBlocked layout = %v, want nchw", back.Layout)
		}
		if !Identical(back, x) {
			t.Fatalf("round trip not bit-identical for %v", sh)
		}
	}
}

func TestBlockedRoundTripRandom(t *testing.T) {
	r := rng.New(0x5EED)
	for trial := 0; trial < 50; trial++ {
		c := 1 + int(r.Uint64()%20)
		h := 1 + int(r.Uint64()%8)
		w := 1 + int(r.Uint64()%12)
		x := New(c, h, w)
		x.FillUniform(r, -9, 9)
		if got := FromBlocked(ToBlocked(x), c); !Identical(got, x) {
			t.Fatalf("trial %d: round trip differs for [%d %d %d]", trial, c, h, w)
		}
	}
}

func TestToBlockedTailLanesZero(t *testing.T) {
	r := rng.New(7)
	x := New(5, 3, 4) // 3 tail lanes in the single block
	x.FillUniform(r, 1, 2)
	b := ToBlocked(x)
	for y := 0; y < 3; y++ {
		for xx := 0; xx < 4; xx++ {
			for lane := 5; lane < Block; lane++ {
				if v := b.Data[((0*3+y)*4+xx)*Block+lane]; v != 0 {
					t.Fatalf("tail lane (%d,%d,%d) = %v, want 0", y, xx, lane, v)
				}
			}
		}
	}
}

func TestToBlockedPlacement(t *testing.T) {
	// Element (c, y, x) must land at block c/8, lane c%8.
	x := New(10, 2, 3)
	x.Set3(9, 1, 2, 42)
	b := ToBlocked(x)
	if got := b.Data[(((1*2)+1)*3+2)*Block+1]; got != 42 {
		t.Fatalf("blocked placement = %v, want 42", got)
	}
}

func TestBlockWeightsRoundTrip(t *testing.T) {
	r := rng.New(0xBEEF)
	shapes := [][4]int{
		{1, 1, 1, 1},
		{3, 5, 2, 2},
		{8, 8, 3, 3},
		{9, 3, 1, 5},
		{16, 11, 3, 3},
		{20, 17, 2, 4},
	}
	for _, sh := range shapes {
		f, c, ky, kx := sh[0], sh[1], sh[2], sh[3]
		w := New(f, c, ky, kx)
		w.FillUniform(r, -2, 2)
		wb := BlockWeights(w)
		if wb.Layout != NCHW8 {
			t.Fatalf("BlockWeights layout = %v", wb.Layout)
		}
		if back := UnblockWeights(wb, f, c); !Identical(back, w) {
			t.Fatalf("weight round trip differs for %v", sh)
		}
	}
}

func TestBlockWeightsPanelOrder(t *testing.T) {
	// For fixed (fo, cb, ky) the sub-block must be a contiguous
	// micro-kernel panel: bp[(kx*Block+cLane)*Block + fLane] = W[f][c][ky][kx].
	w := New(9, 10, 2, 3)
	w.Set4(8, 9, 1, 2, 7) // f=8 -> fo=1,fl=0; c=9 -> cb=1,cl=1
	wb := BlockWeights(w)
	cbN := Blocks(10)
	base := (((1*cbN+1)*2+1)*3)*Block*Block + (2*Block+1)*Block + 0
	if wb.Data[base] != 7 {
		t.Fatalf("panel slot = %v, want 7", wb.Data[base])
	}
}

func TestClonePreservesLayout(t *testing.T) {
	x := New(3, 2, 2)
	b := ToBlocked(x)
	if c := b.Clone(); c.Layout != NCHW8 {
		t.Fatalf("Clone dropped layout tag: %v", c.Layout)
	}
}

func TestArenaGetTensorResetsLayout(t *testing.T) {
	a := NewArena()
	b := a.GetTensor(1, 2, 2, Block)
	b.Layout = NCHW8
	a.PutTensor(b)
	if got := a.GetTensor(1, 2, 2, Block); got.Layout != NCHW {
		t.Fatalf("recycled tensor kept layout %v", got.Layout)
	}
}

func TestBlockedTransformsZeroAlloc(t *testing.T) {
	r := rng.New(1)
	src := New(11, 6, 7)
	src.FillUniform(r, -1, 1)
	dst := New(Blocks(11), 6, 7, Block)
	back := New(11, 6, 7)
	w := New(9, 11, 3, 3)
	w.FillUniform(r, -1, 1)
	wb := New(Blocks(9), Blocks(11), 3, 3, Block, Block)
	if n := testing.AllocsPerRun(10, func() {
		ToBlockedInto(dst, src)
		FromBlockedInto(back, dst)
		BlockWeightsInto(wb, w)
	}); n != 0 {
		t.Fatalf("blocked transforms allocate %v times per run, want 0", n)
	}
}

func TestFromSliceNegativeDims(t *testing.T) {
	// Satellite regression: (-2)·(-2) == 4 passes the product-vs-length
	// check, so FromSlice used to accept a shape New rejects.
	defer func() {
		if recover() == nil {
			t.Fatal("FromSlice with negative dims did not panic")
		}
	}()
	FromSlice(make([]float32, 4), -2, -2)
}

func TestLayoutString(t *testing.T) {
	if NCHW.String() != "nchw" || NCHW8.String() != "nchw8" {
		t.Fatalf("layout names: %v %v", NCHW, NCHW8)
	}
}
