package stencil

import (
	"testing"

	"spgcnn/internal/conv"
	"spgcnn/internal/engine"
	"spgcnn/internal/engine/enginetest"
	"spgcnn/internal/exec"
	"spgcnn/internal/rng"
	"spgcnn/internal/tensor"
	"spgcnn/internal/unfoldgemm"
)

func TestConformance(t *testing.T) {
	enginetest.Run(t, Generator(), enginetest.Options{
		Trials: 30,
		Seed:   11,
		ExtraSpecs: []conv.Spec{
			conv.Square(28, 20, 1, 5, 1), // MNIST L0
			conv.Square(36, 64, 3, 5, 1), // CIFAR L0
			conv.Square(8, 64, 64, 5, 1), // CIFAR L1
			conv.Square(20, 8, 3, 5, 2),  // strided
			conv.Square(23, 4, 2, 11, 4), // large kernel, large stride
			conv.Square(15, 3, 2, 3, 3),  // stride == kernel
		},
	})
}

func TestDifferentialVsUnfoldGEMM(t *testing.T) {
	enginetest.RunDifferential(t, Generator(), unfoldgemm.Generator(1),
		enginetest.DiffOptions{Seed: 0xD1F4})
}

func TestConformanceEveryRegisterTile(t *testing.T) {
	// Every (rx, ry) register tile the ablation API accepts must be
	// correct, not just the generator's favourite.
	for ry := 1; ry <= maxRY; ry++ {
		ry := ry
		gen := engine.Generator{
			Name: "stencil-fixed-ry",
			New: func(s conv.Spec) engine.Kernel {
				p := ChoosePlan(s)
				p.RY = ry
				return NewWithPlan(p)
			},
		}
		enginetest.Run(t, gen, enginetest.Options{Trials: 8, Seed: uint64(100 + ry)})
	}
}

func TestConformanceTinyTileX(t *testing.T) {
	// A pathological cache tile (1 column) must still be correct.
	gen := engine.Generator{
		Name: "stencil-tile1",
		New: func(s conv.Spec) engine.Kernel {
			p := ChoosePlan(s)
			p.TileX = 1
			return NewWithPlan(p)
		},
	}
	enginetest.Run(t, gen, enginetest.Options{Trials: 10, Seed: 77})
}

func TestChoosePlanPrefersTallTilesForSmallKernels(t *testing.T) {
	// For a small kernel the generator should pick a multi-row tile (load
	// reuse grows with ry) rather than ry = 1.
	p := ChoosePlan(conv.Square(32, 16, 8, 3, 1))
	if p.RY < 2 {
		t.Fatalf("plan for 3x3 kernel chose ry = %d, want >= 2 (plan %v)", p.RY, p)
	}
	if !tileFeasible(p.RX, p.RY) {
		t.Fatalf("plan exceeds register budget: %v", p)
	}
}

func TestChoosePlanRespectsOutputHeight(t *testing.T) {
	// A 1-row output cannot use a taller tile.
	s := conv.Spec{Nx: 32, Ny: 3, Nc: 2, Nf: 2, Fx: 3, Fy: 3, Sx: 1, Sy: 1}
	p := ChoosePlan(s)
	if p.RY != 1 {
		t.Fatalf("RY = %d for single-row output", p.RY)
	}
}

func TestChoosePlanMinimizesModel(t *testing.T) {
	// The chosen tile must not be beaten by any feasible alternative under
	// the model itself.
	for _, s := range []conv.Spec{
		conv.Square(32, 8, 4, 3, 1),
		conv.Square(64, 8, 4, 11, 1),
		conv.Square(16, 8, 4, 1, 1),
	} {
		p := ChoosePlan(s)
		for ry := 1; ry <= maxRY && ry <= s.OutY(); ry++ {
			for rx := 1; tileFeasible(rx, ry); rx++ {
				if l := loadsPerMAC(rx, ry, s.Fx, s.Fy, planVW); l < p.LoadsPerMAC-1e-9 {
					t.Fatalf("plan %v beaten by (rx=%d, ry=%d): %.4f < %.4f", p, rx, ry, l, p.LoadsPerMAC)
				}
			}
		}
	}
}

func TestChoosePlanMatchesFig7(t *testing.T) {
	// The paper's Fig. 7 shows the generated basic block for a 1x2 kernel
	// with a register tile of rx = 1, ry = 2. Our generator must make the
	// same choice for that kernel.
	s := conv.Spec{Nx: 16, Ny: 16, Nc: 1, Nf: 1, Fx: 1, Fy: 2, Sx: 1, Sy: 1}
	p := ChoosePlan(s)
	if p.RX != 1 || p.RY != 2 {
		t.Fatalf("plan for Fig. 7's 1x2 kernel = (rx=%d, ry=%d), paper shows (1, 2)", p.RX, p.RY)
	}
}

func TestLoadsPerMACModel(t *testing.T) {
	// Hand check: rx=1, ry=1, 2x1 kernel (Fig. 7's shape, vw=1):
	// loads = (1+2-1)*(1+0) = 2, macs = 2 → 1.0 loads/MAC.
	if got := loadsPerMAC(1, 1, 1, 2, 1); got != 1.0 {
		t.Fatalf("loadsPerMAC(1,1,1x2) = %v, want 1", got)
	}
	// ry=2 shares the middle row: loads = (2+2-1)*1 = 3 for 4 macs.
	if got := loadsPerMAC(1, 2, 1, 2, 1); got != 0.75 {
		t.Fatalf("loadsPerMAC(1,2,1x2) = %v, want 0.75", got)
	}
}

func TestSaxpyKernels(t *testing.T) {
	r := rng.New(5)
	src := make([]float32, 23)
	for i := range src {
		src[i] = float32(r.NormFloat64())
	}
	mk := func() [][]float32 {
		d := make([][]float32, 4)
		for i := range d {
			d[i] = make([]float32, 23)
			for j := range d[i] {
				d[i][j] = float32(i)
			}
		}
		return d
	}
	ws := []float32{0.5, -1, 2, 3}
	for n := 0; n <= 23; n++ {
		for rows := 1; rows <= 4; rows++ {
			got := mk()
			saxpyRows(got[:rows], ws[:rows], src, n)
			want := mk()
			for ri := 0; ri < rows; ri++ {
				for x := 0; x < n; x++ {
					want[ri][x] += ws[ri] * src[x]
				}
			}
			for ri := 0; ri < rows; ri++ {
				for x := 0; x < 23; x++ {
					if got[ri][x] != want[ri][x] {
						t.Fatalf("saxpyRows(rows=%d, n=%d) row %d col %d: %v != %v",
							rows, n, ri, x, got[ri][x], want[ri][x])
					}
				}
			}
		}
	}
}

func TestGatherDotStrided(t *testing.T) {
	a := []float32{1, 2, 3}
	b := []float32{10, 0, 20, 0, 30, 0}
	if got := gatherDot(a, b, 2, 3); got != 10+40+90 {
		t.Fatalf("gatherDot stride 2 = %v, want 140", got)
	}
	if got := gatherDot(a, b[:3], 1, 3); got != 10+0+60 {
		t.Fatalf("gatherDot stride 1 = %v, want 70", got)
	}
}

func TestScatterAxpyStrided(t *testing.T) {
	dst := make([]float32, 6)
	scatterAxpy(dst, []float32{1, 2, 3}, 2, 2, 3)
	want := []float32{2, 0, 4, 0, 6, 0}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("scatterAxpy = %v, want %v", dst, want)
		}
	}
}

func TestStencilMatchesUnfoldGEMM(t *testing.T) {
	// Cross-engine agreement on a real benchmark layer.
	s := conv.Square(36, 64, 3, 5, 1)
	r := rng.New(1)
	in := conv.RandInput(r, s)
	w := conv.RandWeights(r, s)
	a, b := conv.NewOutput(s), conv.NewOutput(s)
	New(s).Forward(a, in, w)
	unfoldgemm.New(s, 1).Forward(b, in, w)
	if !tensor.AlmostEqual(a, b, 1e-3) {
		t.Fatalf("stencil and unfold-gemm disagree: max diff %g", tensor.MaxAbsDiff(a, b))
	}
}

func benchStencil(b *testing.B, s conv.Spec) {
	r := rng.New(1)
	in := conv.RandInput(r, s)
	w := conv.RandWeights(r, s)
	out := conv.NewOutput(s)
	k := New(s)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.Forward(out, in, w)
	}
	b.ReportMetric(float64(s.FlopsFP())*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFlops")
}

func BenchmarkForwardMNISTL0(b *testing.B) { benchStencil(b, conv.Square(28, 20, 1, 5, 1)) }
func BenchmarkForwardCIFARL0(b *testing.B) { benchStencil(b, conv.Square(36, 64, 3, 5, 1)) }
func BenchmarkForwardCIFARL1(b *testing.B) { benchStencil(b, conv.Square(8, 64, 64, 5, 1)) }
func BenchmarkForwardStrided(b *testing.B) { benchStencil(b, conv.Square(64, 16, 3, 7, 2)) }

func TestForwardBlockedBatchAdapter(t *testing.T) {
	// The convert-at-boundary adapter runs the identical stencil schedule
	// on unpacked scratch, so it must match ForwardBatch bit-for-bit.
	r := rng.New(31)
	c := exec.New(1)
	for _, s := range []conv.Spec{
		conv.Square(9, 3, 2, 3, 1),
		conv.Square(14, 12, 9, 3, 1),
		{Nx: 11, Ny: 7, Nc: 5, Nf: 10, Fx: 3, Fy: 2, Sx: 2, Sy: 1},
	} {
		k := New(s)
		in := conv.RandInput(r, s)
		w := conv.RandWeights(r, s)
		want := conv.NewOutput(s)
		k.ForwardBatch(c, []*tensor.Tensor{want}, []*tensor.Tensor{in}, w)
		outb := conv.NewBlockedOutput(s)
		k.ForwardBlockedBatch(c, []*tensor.Tensor{outb}, []*tensor.Tensor{tensor.ToBlocked(in)}, w)
		if got := tensor.FromBlocked(outb, s.Nf); !tensor.Identical(got, want) {
			t.Fatalf("%v: blocked adapter differs from NCHW FP", s)
		}
	}
}
