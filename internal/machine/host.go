package machine

import (
	"fmt"
	"os"
	"runtime"
)

// Host is the machine fingerprint stamped into every machine-readable
// benchmark report, so a BENCH_*.json baseline records where its numbers
// came from. Baseline comparison deliberately ignores these fields — they
// exist to explain a trajectory, not to gate it.
type Host struct {
	OS        string `json:"os"`
	Arch      string `json:"arch"`
	CPUs      int    `json:"cpus"`
	GoVersion string `json:"go"`
	Hostname  string `json:"hostname,omitempty"`
}

// Fingerprint renders the host as one comparable string — the key the
// persistent plan cache files measured verdicts under, so a cache written
// on one machine never silently deploys on a different one.
func (h Host) Fingerprint() string {
	return fmt.Sprintf("%s/%s/%dcpu/%s/%s", h.OS, h.Arch, h.CPUs, h.GoVersion, h.Hostname)
}

// HostInfo fingerprints the running machine.
func HostInfo() Host {
	h := Host{
		OS:        runtime.GOOS,
		Arch:      runtime.GOARCH,
		CPUs:      runtime.NumCPU(),
		GoVersion: runtime.Version(),
	}
	if name, err := os.Hostname(); err == nil {
		h.Hostname = name
	}
	return h
}
