package machine

import "testing"

func TestCalibrateHostSane(t *testing.T) {
	m := CalibrateHost()
	if m.Cores < 1 {
		t.Fatalf("cores = %d", m.Cores)
	}
	if m.PeakGFlopsPerCore <= 0.1 || m.PeakGFlopsPerCore > 200 {
		t.Fatalf("implausible measured peak %v GFlops", m.PeakGFlopsPerCore)
	}
	if m.SharedBandwidthGBs <= 0.1 || m.SharedBandwidthGBs > 2000 {
		t.Fatalf("implausible bandwidth %v GB/s", m.SharedBandwidthGBs)
	}
	if m.HalfPerfAIT <= 0 {
		t.Fatalf("non-positive knee %v", m.HalfPerfAIT)
	}
	if m.TransformGBsPerCore <= 0 {
		t.Fatalf("non-positive transform rate %v", m.TransformGBsPerCore)
	}
	// The calibrated model must still produce the paper's shape claims:
	// GiP >= Parallel-GEMM at high core counts for a moderate conv.
	s := t1[2]
	if m.GEMMInParallelTraining(s, 16) < m.ParallelGEMMTraining(s, 16) {
		t.Fatal("calibrated model inverted the GiP/Parallel-GEMM ordering")
	}
}
