// Package winograd implements Winograd minimal-filtering convolution
// F(2×2, 3×3) — the "minimizing computation in convolutional neural
// networks" direction of the paper's related work (Cong & Xiao). For
// 3×3 unit-stride kernels it computes each 2×2 output tile with 16
// multiplies instead of the direct method's 36 (2.25× fewer), trading them
// for cheap transform additions:
//
//	Y = Aᵀ [ (G g Gᵀ) ⊙ (Bᵀ d B) ] A
//
// with the canonical F(2,3) matrices
//
//	Bᵀ = ⎡1  0 −1  0⎤   G = ⎡ 1    0    0 ⎤   Aᵀ = ⎡1 1  1  0⎤
//	     ⎢0  1  1  0⎥       ⎢ ½    ½    ½ ⎥        ⎣0 1 −1 −1⎦
//	     ⎢0 −1  1  0⎥       ⎢ ½   −½    ½ ⎥
//	     ⎣0  1  0 −1⎦       ⎣ 0    0    1 ⎦
//
// Other geometries (kernel ≠ 3×3 or stride ≠ 1) fall back to unfold+GEMM,
// as do both back-propagation computations.
package winograd

import (
	"spgcnn/internal/conv"
	"spgcnn/internal/engine"
	"spgcnn/internal/exec"
	"spgcnn/internal/tensor"
	"spgcnn/internal/unfoldgemm"
)

// Kernel is a Winograd F(2×2, 3×3) convolution plan for one spec. The
// transformed-filter and input-tile scratch come from the execution
// context's arena per batch call, so one instance is safe for concurrent
// use through the batch entry points.
type Kernel struct {
	spec     conv.Spec
	fast     bool // 3×3, stride 1
	fallback *unfoldgemm.Kernel
	single   engine.SingleOps
}

// New builds a Winograd kernel for s.
func New(s conv.Spec) *Kernel {
	s.MustValidate()
	return &Kernel{
		spec:     s,
		fast:     s.Fx == 3 && s.Fy == 3 && s.Sx == 1 && s.Sy == 1 && s.Plain(),
		fallback: unfoldgemm.New(s, 1),
	}
}

// Name implements engine.Kernel.
func (k *Kernel) Name() string { return "winograd-f2x2" }

// Spec implements engine.Kernel.
func (k *Kernel) Spec() conv.Spec { return k.spec }

// Fast reports whether the spec takes the Winograd path.
func (k *Kernel) Fast() bool { return k.fast }

// transformFilter computes u = G·g·Gᵀ for one 3×3 filter g into a 16-slot
// destination.
func transformFilter(dst []float32, g []float32) {
	// t = G·g: 4×3.
	var t [12]float32
	for col := 0; col < 3; col++ {
		g0, g1, g2 := g[col], g[3+col], g[6+col]
		t[col] = g0
		t[3+col] = 0.5 * (g0 + g1 + g2)
		t[6+col] = 0.5 * (g0 - g1 + g2)
		t[9+col] = g2
	}
	// u = t·Gᵀ: 4×4.
	for row := 0; row < 4; row++ {
		t0, t1, t2 := t[3*row], t[3*row+1], t[3*row+2]
		dst[4*row] = t0
		dst[4*row+1] = 0.5 * (t0 + t1 + t2)
		dst[4*row+2] = 0.5 * (t0 - t1 + t2)
		dst[4*row+3] = t2
	}
}

// transformInput computes v = Bᵀ·d·B for one 4×4 input tile in place.
func transformInput(d *[16]float32) {
	// rows: t = Bᵀ·d.
	var t [16]float32
	for col := 0; col < 4; col++ {
		d0, d1, d2, d3 := d[col], d[4+col], d[8+col], d[12+col]
		t[col] = d0 - d2
		t[4+col] = d1 + d2
		t[8+col] = d2 - d1
		t[12+col] = d1 - d3
	}
	// cols: v = t·B.
	for row := 0; row < 4; row++ {
		t0, t1, t2, t3 := t[4*row], t[4*row+1], t[4*row+2], t[4*row+3]
		d[4*row] = t0 - t2
		d[4*row+1] = t1 + t2
		d[4*row+2] = t2 - t1
		d[4*row+3] = t1 - t3
	}
}

// transformOutput computes y = Aᵀ·m·A for one 4×4 tile, yielding 2×2.
func transformOutput(m *[16]float32) (y00, y01, y10, y11 float32) {
	// t = Aᵀ·m: 2×4.
	var t [8]float32
	for col := 0; col < 4; col++ {
		m0, m1, m2, m3 := m[col], m[4+col], m[8+col], m[12+col]
		t[col] = m0 + m1 + m2
		t[4+col] = m1 - m2 - m3
	}
	y00 = t[0] + t[1] + t[2]
	y01 = t[1] - t[2] - t[3]
	y10 = t[4] + t[5] + t[6]
	y11 = t[5] - t[6] - t[7]
	return
}

// ForwardBatch computes Eq. 2, via Winograd tiles on the fast path. The
// filter transform is hoisted out of the per-sample loop: weights are
// transformed once per batch call (uw is the flat Nf × Nc × 16 tensor of
// G·g·Gᵀ filters).
func (k *Kernel) ForwardBatch(c *exec.Ctx, outs, ins []*tensor.Tensor, w *tensor.Tensor) {
	if len(outs) != len(ins) {
		panic("winograd: ForwardBatch length mismatch")
	}
	s := k.spec
	if !k.fast {
		k.fallback.ForwardBatch(c, outs, ins, w)
		return
	}
	if len(ins) == 0 {
		return
	}
	conv.CheckWeights(s, w)

	uw := c.Get(s.Nf * s.Nc * 16)
	// Transform every filter once per batch.
	for f := 0; f < s.Nf; f++ {
		for ch := 0; ch < s.Nc; ch++ {
			transformFilter(uw[(f*s.Nc+ch)*16:][:16], w.Data[(f*s.Nc+ch)*9:][:9])
		}
	}
	// v-tiles per channel are cached across features (c innermost would
	// recompute V per (tile, f); caching V per (tile, c) avoids that).
	vtile := c.Get(s.Nc * 16)
	for i := range ins {
		k.forwardOne(uw, vtile, outs[i], ins[i])
	}
	c.Put(vtile)
	c.Put(uw)
}

// forwardOne runs the Winograd tile loop for one sample.
func (k *Kernel) forwardOne(uw, vtile []float32, out, in *tensor.Tensor) {
	s := k.spec
	conv.CheckInput(s, in)
	conv.CheckOutput(s, out)
	oy, ox := s.OutY(), s.OutX()
	tilesY := (oy + 1) / 2
	tilesX := (ox + 1) / 2
	var d [16]float32
	var m [16]float32
	for ty := 0; ty < tilesY; ty++ {
		for tx := 0; tx < tilesX; tx++ {
			// Gather and transform the 4×4 input tile of every channel.
			for c := 0; c < s.Nc; c++ {
				for dy := 0; dy < 4; dy++ {
					iy := ty*2 + dy
					for dx := 0; dx < 4; dx++ {
						ix := tx*2 + dx
						if iy < s.Ny && ix < s.Nx {
							d[dy*4+dx] = in.At3(c, iy, ix)
						} else {
							d[dy*4+dx] = 0
						}
					}
				}
				transformInput(&d)
				copy(vtile[c*16:(c+1)*16], d[:])
			}
			for f := 0; f < s.Nf; f++ {
				for i := range m {
					m[i] = 0
				}
				for c := 0; c < s.Nc; c++ {
					u := uw[(f*s.Nc+c)*16:][:16]
					v := vtile[c*16:][:16]
					for i := 0; i < 16; i++ {
						m[i] += u[i] * v[i]
					}
				}
				y00, y01, y10, y11 := transformOutput(&m)
				oyBase := ty * 2
				oxBase := tx * 2
				out.Set3(f, oyBase, oxBase, y00)
				if oxBase+1 < ox {
					out.Set3(f, oyBase, oxBase+1, y01)
				}
				if oyBase+1 < oy {
					out.Set3(f, oyBase+1, oxBase, y10)
					if oxBase+1 < ox {
						out.Set3(f, oyBase+1, oxBase+1, y11)
					}
				}
			}
		}
	}
}

// BackwardInputBatch implements engine.Kernel via the unfold+GEMM
// fallback.
func (k *Kernel) BackwardInputBatch(c *exec.Ctx, eis, eos []*tensor.Tensor, w *tensor.Tensor) {
	k.fallback.BackwardInputBatch(c, eis, eos, w)
}

// BackwardWeightsBatch implements engine.Kernel via the unfold+GEMM
// fallback.
func (k *Kernel) BackwardWeightsBatch(c *exec.Ctx, dw *tensor.Tensor, eos, ins []*tensor.Tensor) {
	k.fallback.BackwardWeightsBatch(c, dw, eos, ins)
}

// Forward implements engine.SingleKernel.
func (k *Kernel) Forward(out, in, w *tensor.Tensor) { k.single.Forward(k, out, in, w) }

// BackwardInput implements engine.SingleKernel.
func (k *Kernel) BackwardInput(ei, eo, w *tensor.Tensor) { k.single.BackwardInput(k, ei, eo, w) }

// BackwardWeights implements engine.SingleKernel.
func (k *Kernel) BackwardWeights(dw, eo, in *tensor.Tensor) {
	k.single.BackwardWeights(k, dw, eo, in)
}

// Generator returns the engine.Generator for the Winograd technique.
func Generator() engine.Generator {
	return engine.Generator{
		Name: "winograd",
		New:  func(s conv.Spec) engine.Kernel { return New(s) },
		// The F(2,3) transform set is generated for plain geometry; padded,
		// dilated or grouped specs would silently hit the fallback, so
		// decline them and let the planner prune this candidate.
		Supports: engine.PlainOnly,
	}
}

// MultiplyCount returns the number of elementwise multiplies the Winograd
// path performs versus direct convolution for one image — the 36/16 = 2.25
// reduction the method exists for (transform additions excluded).
func (k *Kernel) MultiplyCount() (winograd, direct int64) {
	s := k.spec
	tiles := int64((s.OutY()+1)/2) * int64((s.OutX()+1)/2)
	winograd = tiles * 16 * int64(s.Nf) * int64(s.Nc)
	direct = int64(s.OutY()) * int64(s.OutX()) * 9 * int64(s.Nf) * int64(s.Nc)
	return
}
