package stencil

import (
	"spgcnn/internal/conv"
	"spgcnn/internal/exec"
	"spgcnn/internal/tensor"
)

// Generalized-spec paths: the register-tiled schedule and its specialized
// tap kernels are generated for plain geometry (no padding, unit
// dilation, one group). For generalized specs the stencil stays a direct,
// unfold-free engine but runs these row-streamed loop nests instead: per
// tap, the in-bounds output-column interval is computed once
// (tapBounds) so the inner saxpy/dot/scatter loops carry no per-element
// bounds tests — padding costs interval arithmetic, not branches.

// tapBounds returns the half-open output-column range [lo, hi) for which
// 0 <= x·sx + off < nx, i.e. the columns whose tap read stays inside the
// input row.
func tapBounds(ox, sx, off, nx int) (lo, hi int) {
	lo = 0
	if off < 0 {
		lo = (-off + sx - 1) / sx
	}
	hi = ox
	if m := (nx-1-off)/sx + 1; m < hi {
		hi = m
	}
	if hi < lo {
		hi = lo
	}
	return lo, hi
}

// forwardGeneralBatch computes Eq. 2 for a generalized spec: for each
// (feature, output row), taps are streamed into an arena-backed
// accumulator row; dilated taps read offset kx·dx − px, padding taps are
// clipped by tapBounds, and grouped specs restrict channels to the
// feature's group.
func (k *Kernel) forwardGeneralBatch(c *exec.Ctx, outs, ins []*tensor.Tensor, w *tensor.Tensor) {
	s := k.spec
	conv.CheckWeights(s, w)
	ox := s.OutX()
	acc := c.Get(ox)
	for i := range ins {
		conv.CheckInput(s, ins[i])
		conv.CheckOutput(s, outs[i])
		k.forwardGeneralOne(acc, outs[i], ins[i], w)
	}
	c.Put(acc)
}

func (k *Kernel) forwardGeneralOne(acc []float32, out, in, w *tensor.Tensor) {
	s := k.spec
	oy, ox := s.OutY(), s.OutX()
	gnc, gnf := s.GroupNc(), s.GroupNf()
	dx, dy := s.DilX(), s.DilY()
	acc = acc[:ox]
	for f := 0; f < s.Nf; f++ {
		cbase := (f / gnf) * gnc
		for y := 0; y < oy; y++ {
			for i := range acc {
				acc[i] = 0
			}
			for cc := 0; cc < gnc; cc++ {
				wBase := (f*gnc + cc) * s.Fy * s.Fx
				for ky := 0; ky < s.Fy; ky++ {
					iy := y*s.Sy + ky*dy - s.Py
					if iy < 0 || iy >= s.Ny {
						continue
					}
					irow := in.Row3(cbase+cc, iy)
					for kx := 0; kx < s.Fx; kx++ {
						wv := w.Data[wBase+ky*s.Fx+kx]
						if wv == 0 {
							continue
						}
						off := kx*dx - s.Px
						lo, hi := tapBounds(ox, s.Sx, off, s.Nx)
						for x := lo; x < hi; x++ {
							acc[x] += wv * irow[x*s.Sx+off]
						}
					}
				}
			}
			copy(out.Row3(f, y), acc)
		}
	}
}

// backwardInputGeneralBatch computes Eq. 3 for a generalized spec as the
// adjoint scatter of forwardGeneralOne: each output-error row is streamed
// once per in-group (c, ky, kx) tap into the input-error row it feeds,
// clipped to in-bounds columns (the adjoint of zero padding drops the
// out-of-range taps).
func (k *Kernel) backwardInputGeneralBatch(c *exec.Ctx, eis, eos []*tensor.Tensor, w *tensor.Tensor) {
	s := k.spec
	conv.CheckWeights(s, w)
	oy, ox := s.OutY(), s.OutX()
	gnc, gnf := s.GroupNc(), s.GroupNf()
	dx, dy := s.DilX(), s.DilY()
	for i := range eos {
		ei, eo := eis[i], eos[i]
		conv.CheckInput(s, ei)
		conv.CheckOutput(s, eo)
		ei.Zero()
		for f := 0; f < s.Nf; f++ {
			cbase := (f / gnf) * gnc
			for y := 0; y < oy; y++ {
				erow := eo.Row3(f, y)
				if allZero(erow) {
					continue
				}
				for cc := 0; cc < gnc; cc++ {
					wBase := (f*gnc + cc) * s.Fy * s.Fx
					for ky := 0; ky < s.Fy; ky++ {
						iy := y*s.Sy + ky*dy - s.Py
						if iy < 0 || iy >= s.Ny {
							continue
						}
						dst := ei.Row3(cbase+cc, iy)
						for kx := 0; kx < s.Fx; kx++ {
							wv := w.Data[wBase+ky*s.Fx+kx]
							if wv == 0 {
								continue
							}
							off := kx*dx - s.Px
							lo, hi := tapBounds(ox, s.Sx, off, s.Nx)
							for x := lo; x < hi; x++ {
								dst[x*s.Sx+off] += wv * erow[x]
							}
						}
					}
				}
			}
		}
	}
}

// backwardWeightsGeneralBatch computes Eq. 4 for a generalized spec: each
// tap's gradient is the dot product of the output-error plane with the
// correspondingly shifted/dilated input plane over the in-bounds columns,
// accumulated over the batch. dw is overwritten.
func (k *Kernel) backwardWeightsGeneralBatch(c *exec.Ctx, dw *tensor.Tensor, eos, ins []*tensor.Tensor) {
	s := k.spec
	conv.CheckWeights(s, dw)
	dw.Zero()
	oy, ox := s.OutY(), s.OutX()
	gnc, gnf := s.GroupNc(), s.GroupNf()
	dx, dy := s.DilX(), s.DilY()
	for i := range eos {
		eo, in := eos[i], ins[i]
		conv.CheckOutput(s, eo)
		conv.CheckInput(s, in)
		for f := 0; f < s.Nf; f++ {
			cbase := (f / gnf) * gnc
			for cc := 0; cc < gnc; cc++ {
				wBase := (f*gnc + cc) * s.Fy * s.Fx
				for ky := 0; ky < s.Fy; ky++ {
					for kx := 0; kx < s.Fx; kx++ {
						off := kx*dx - s.Px
						lo, hi := tapBounds(ox, s.Sx, off, s.Nx)
						if lo >= hi {
							continue
						}
						var sum float32
						for y := 0; y < oy; y++ {
							iy := y*s.Sy + ky*dy - s.Py
							if iy < 0 || iy >= s.Ny {
								continue
							}
							erow := eo.Row3(f, y)
							if allZero(erow) {
								continue
							}
							irow := in.Row3(cbase+cc, iy)
							for x := lo; x < hi; x++ {
								sum += erow[x] * irow[x*s.Sx+off]
							}
						}
						dw.Data[wBase+ky*s.Fx+kx] += sum
					}
				}
			}
		}
	}
}
