package dataparallel

import (
	"fmt"
	"math/bits"
	"sync"

	"spgcnn/internal/sparse"
)

// Method selects the reduction schedule of the parameter sync.
type Method string

const (
	// MethodFlat is the historical fully-serial mean: one pass per replica
	// into a float64 scratch vector, then one write-back pass per replica.
	// It is the baseline every other schedule is measured against.
	MethodFlat Method = "flat"
	// MethodRing is the parameter-chunked ring schedule (reduce-scatter +
	// allgather): the element space is cut into cache-sized chunks and N
	// worker goroutines — one per replica — each own an interleaved chunk
	// stream. Within a chunk the float64 accumulator is register/L1
	// resident and replicas are summed in replica-index order, which makes
	// the dense ring mean bit-identical to the flat mean while touching
	// each element exactly once per replica (the flat path re-streams its
	// full-length scratch on every pass). On multicore hosts the chunk
	// streams additionally run in parallel.
	MethodRing Method = "ring"
	// MethodTree is the hierarchical schedule: within each chunk, replica
	// vectors combine pairwise over ceil(log2 N) rounds (replica r absorbs
	// replica r+stride), then the root's pairwise sum is averaged and
	// broadcast. Pairwise accumulation has O(log N) float32 rounding depth
	// — better than the historical serial float32 sum — but is not
	// bit-identical to the flat/ring replica-order float64 sum.
	MethodTree Method = "tree"
	// MethodAuto ranks flat/ring/tree × dense/sparse with the
	// machine.Cluster cost model per (params, replicas, delta density) and
	// deploys the winner, re-ranking as the measured density moves —
	// mirroring how internal/plan picks conv engines per sparsity band.
	MethodAuto Method = "auto"
)

// ParseMethod validates a -allreduce flag value.
func ParseMethod(s string) (Method, error) {
	switch Method(s) {
	case "", MethodFlat:
		return MethodFlat, nil
	case MethodRing, MethodTree, MethodAuto:
		return Method(s), nil
	}
	return "", fmt.Errorf("dataparallel: unknown allreduce method %q (want flat, ring, tree or auto)", s)
}

// Sparse-exchange modes (Config.SparseSync).
const (
	// SparseOff never maintains delta state: the dense path, zero overhead.
	SparseOff = "off"
	// SparseAuto ships CT-CSR deltas when their density is at or below
	// SparseDensityBoundary and falls back to the dense schedule above it.
	SparseAuto = "auto"
	// SparseForce always ships deltas (testing and benchmarking).
	SparseForce = "force"
)

// SparseDensityBoundary is the delta density above which the sparse
// exchange falls back to the dense schedule — the Fig. 1-style band
// boundary (density 0.25 = the 0.75 sparsity crossover internal/plan keys
// its sparse-engine band on). The machine.Cluster time model puts its own
// dense/sparse crossover below this at small replica counts; the band
// boundary is the conservative structural gate.
const SparseDensityBoundary = 0.25

// ParseSparseMode validates a -sparse-sync flag value.
func ParseSparseMode(s string) (string, error) {
	switch s {
	case "", SparseOff:
		return SparseOff, nil
	case SparseAuto, SparseForce:
		return s, nil
	}
	return "", fmt.Errorf("dataparallel: unknown sparse-sync mode %q (want off, auto or force)", s)
}

// reduceChunkElems is the reduce-scatter chunk size in elements: 4096
// floats (16 KiB of operand + 32 KiB of float64 accumulator) keeps the
// working set of one chunk L1/L2-resident, which is where the ring
// schedule's single-pass win over the flat scratch vector comes from.
const reduceChunkElems = 4096

// exchangeTileWidth is the CT-CSR column-tile width of encoded deltas.
// It must stay <= 64 so one uint64 can mask a tile's touched columns
// during the sparse reduce.
const exchangeTileWidth = 64

// chunkRef addresses one contiguous element range of one parameter.
type chunkRef struct {
	param, lo, hi int
}

// SyncInfo describes one completed sync round.
type SyncInfo struct {
	// Method is the deployed schedule ("flat", "ring", "tree").
	Method Method
	// Sparse reports whether CT-CSR deltas were exchanged (false = dense).
	Sparse bool
	// Density is the measured gradient-delta density (-1 when the round
	// never computed deltas, i.e. SparseOff).
	Density float64
	// WireBytes is the traffic this round would put on a scale-out
	// interconnect: dense schedules ship every parameter, the sparse
	// exchange ships only encoded non-zeros (8 bytes each: value + index).
	// On one shared-memory host this is the modeled network cost, not a
	// measured local quantity.
	WireBytes int64
}

// Exchange is the reduction subsystem: it averages the replicas' parameter
// views in place under a selectable schedule, optionally shipping CT-CSR
// compressed parameter deltas instead of dense values. All scratch (chunk
// accumulators, delta buffers, CT-CSR skeletons) is allocated once and
// reused every round.
type Exchange struct {
	method Method
	sparse string

	views  [][][]float32 // replica -> param -> data (aliases live weights)
	chunks []chunkRef
	elems  int64 // total elements across params

	flatAcc []float64   // flat path: scratch sized to the largest param
	workAcc [][]float64 // per-worker chunk accumulators

	// Sparse-exchange state (nil until first needed).
	base   [][]float32       // param -> global snapshot after last sync
	delta  [][][]float32     // replica -> param -> persistent delta buffer
	encs   [][]*sparse.CTCSR // replica -> param -> reusable encoding
	nnz    []int64           // per-replica non-zero count of the last delta pass
	ranker func(elems, replicas int, density float64) (Method, bool)

	lastDensity float64
}

// NewExchange builds the reduction subsystem for the given parameter views
// (views[r][j] aliases replica r's parameter j). The ranker, when non-nil,
// resolves MethodAuto per round; rounds before the first density
// measurement rank at density 1.
func NewExchange(method Method, sparseMode string, views [][][]float32,
	ranker func(elems, replicas int, density float64) (Method, bool)) *Exchange {
	e := &Exchange{
		method:      method,
		sparse:      sparseMode,
		views:       views,
		ranker:      ranker,
		lastDensity: 1,
	}
	if e.method == "" {
		e.method = MethodFlat
	}
	if e.sparse == "" {
		e.sparse = SparseOff
	}
	maxLen := 0
	if len(views) > 0 {
		for j, v := range views[0] {
			l := len(v)
			if l > maxLen {
				maxLen = l
			}
			e.elems += int64(l)
			for lo := 0; lo < l; lo += reduceChunkElems {
				hi := lo + reduceChunkElems
				if hi > l {
					hi = l
				}
				e.chunks = append(e.chunks, chunkRef{param: j, lo: lo, hi: hi})
			}
		}
	}
	e.flatAcc = make([]float64, maxLen)
	e.workAcc = make([][]float64, len(views))
	for w := range e.workAcc {
		e.workAcc[w] = make([]float64, reduceChunkElems)
	}
	if e.sparse != SparseOff && len(views) >= 2 {
		// Snapshot the base now, while the replicas are still aligned —
		// deltas then measure true per-replica divergence. (The reduce is
		// correct for any base: mean = base + avg(view - base); only the
		// density measurement cares.)
		e.ensureSparseState()
	}
	return e
}

// Replicas returns the replica count of the views.
func (e *Exchange) Replicas() int { return len(e.views) }

// Elems returns the total parameter element count.
func (e *Exchange) Elems() int64 { return e.elems }

// Sync averages the replica views in place and returns what happened.
func (e *Exchange) Sync() SyncInfo {
	n := len(e.views)
	if n < 2 {
		return SyncInfo{Method: e.method, Density: -1}
	}
	method := e.method
	sparseWanted := false
	density := -1.0
	if e.sparse != SparseOff {
		e.ensureSparseState()
		density = e.deltaPass()
		e.lastDensity = density
		sparseWanted = e.sparse == SparseForce || density <= SparseDensityBoundary
	}
	if method == MethodAuto {
		method, sparseWanted = e.rank(density, sparseWanted)
	}
	info := SyncInfo{Method: method, Density: density}
	if sparseWanted && e.sparse != SparseOff {
		info.Sparse = true
		info.WireBytes = e.sparseReduce()
		return info
	}
	switch method {
	case MethodRing:
		e.ringReduce()
		info.WireBytes = 2 * int64(n-1) * e.elems * 4
	case MethodTree:
		e.treeReduce()
		info.WireBytes = 2 * int64(n-1) * e.elems * 4
	default:
		info.Method = MethodFlat
		e.flatReduce()
		info.WireBytes = 2 * int64(n) * e.elems * 4
	}
	if e.sparse != SparseOff {
		// The dense round moved every replica to the new mean; refresh the
		// snapshot so the next delta pass diffs against it.
		for j, b := range e.base {
			copy(b, e.views[0][j])
		}
	}
	return info
}

// rank resolves MethodAuto: the cost-model ranker when one is wired,
// otherwise a structural default (ring for the dense exchange; the sparse
// verdict from the density gate stands).
func (e *Exchange) rank(density float64, sparseOK bool) (Method, bool) {
	d := density
	if d < 0 {
		d = e.lastDensity
	}
	if e.ranker != nil {
		m, sp := e.ranker(int(e.elems), len(e.views), d)
		if m == MethodAuto || m == "" {
			m = MethodRing
		}
		// The model can only pick sparse when this round has deltas.
		return m, sp && sparseOK && e.sparse != SparseOff
	}
	return MethodRing, sparseOK
}

// flatReduce is the historical serial schedule, drift-fixed: one pass per
// replica accumulates into a float64 scratch vector (the float32
// sum-into-params[0] of the original implementation lost low-order bits by
// 64 replicas), then one pass per replica writes the mean back.
func (e *Exchange) flatReduce() {
	n := len(e.views)
	inv := 1 / float64(n)
	for j := range e.views[0] {
		l := len(e.views[0][j])
		acc := e.flatAcc[:l]
		for i := range acc {
			acc[i] = 0
		}
		for r := 0; r < n; r++ {
			src := e.views[r][j]
			for i, v := range src {
				acc[i] += float64(v)
			}
		}
		for r := 0; r < n; r++ {
			dst := e.views[r][j]
			for i := range dst {
				dst[i] = float32(acc[i] * inv)
			}
		}
	}
}

// ringReduce runs the parameter-chunked ring schedule: worker goroutine w
// (one per replica) owns the chunk stream c ≡ w (mod N); for each chunk it
// reduce-scatters (sums replicas 0..N-1 in index order into its resident
// float64 accumulator) and allgathers (writes the mean back to every
// replica). Identical element-level operation order to flatReduce keeps
// the result bit-identical; the locality of the chunk accumulator — and,
// with spare cores, the parallel streams — is where the time goes down.
func (e *Exchange) ringReduce() {
	n := len(e.views)
	inv := 1 / float64(n)
	var wg sync.WaitGroup
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			acc := e.workAcc[w]
			for c := w; c < len(e.chunks); c += n {
				ch := e.chunks[c]
				a := acc[:ch.hi-ch.lo]
				src := e.views[0][ch.param][ch.lo:ch.hi]
				for i, v := range src {
					a[i] = float64(v)
				}
				for r := 1; r < n; r++ {
					src := e.views[r][ch.param][ch.lo:ch.hi]
					for i, v := range src {
						a[i] += float64(v)
					}
				}
				for r := 0; r < n; r++ {
					dst := e.views[r][ch.param][ch.lo:ch.hi]
					for i := range dst {
						dst[i] = float32(a[i] * inv)
					}
				}
			}
		}(w)
	}
	wg.Wait()
}

// treeReduce runs the hierarchical schedule chunk-wise: within a chunk,
// rounds of pairwise float32 adds (replica r absorbs r+stride) leave the
// sum at replica 0, whose mean is then broadcast. The whole tree for one
// chunk runs while the chunk is cache-hot.
func (e *Exchange) treeReduce() {
	n := len(e.views)
	inv := float32(1) / float32(n)
	var wg sync.WaitGroup
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for c := w; c < len(e.chunks); c += n {
				ch := e.chunks[c]
				for stride := 1; stride < n; stride *= 2 {
					for r := 0; r+stride < n; r += 2 * stride {
						dst := e.views[r][ch.param][ch.lo:ch.hi]
						src := e.views[r+stride][ch.param][ch.lo:ch.hi]
						for i, v := range src {
							dst[i] += v
						}
					}
				}
				root := e.views[0][ch.param][ch.lo:ch.hi]
				for i := range root {
					root[i] *= inv
				}
				for r := 1; r < n; r++ {
					copy(e.views[r][ch.param][ch.lo:ch.hi], root)
				}
			}
		}(w)
	}
	wg.Wait()
}

// ensureSparseState lazily allocates the delta-exchange state. The base
// snapshot starts from replica 0, which is exact before the first sync
// (replicas start aligned) and is kept current by every sync thereafter.
func (e *Exchange) ensureSparseState() {
	if e.base != nil {
		return
	}
	n := len(e.views)
	e.base = make([][]float32, len(e.views[0]))
	for j, v := range e.views[0] {
		e.base[j] = append([]float32(nil), v...)
	}
	e.delta = make([][][]float32, n)
	e.encs = make([][]*sparse.CTCSR, n)
	e.nnz = make([]int64, n)
	for r := 0; r < n; r++ {
		e.delta[r] = make([][]float32, len(e.views[r]))
		e.encs[r] = make([]*sparse.CTCSR, len(e.views[r]))
		for j, v := range e.views[r] {
			e.delta[r][j] = make([]float32, len(v))
			e.encs[r][j] = &sparse.CTCSR{}
		}
	}
}

// deltaPass computes every replica's parameter delta since the last sync
// into its persistent buffers (one worker goroutine per replica — the
// "replicas prepare their shipment" stage) and returns the overall delta
// density.
func (e *Exchange) deltaPass() float64 {
	n := len(e.views)
	var wg sync.WaitGroup
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			var nnz int64
			for j, cur := range e.views[r] {
				base := e.base[j]
				d := e.delta[r][j]
				for i, v := range cur {
					dv := v - base[i]
					d[i] = dv
					if dv != 0 {
						nnz++
					}
				}
			}
			e.nnz[r] = nnz
		}(r)
	}
	wg.Wait()
	var total int64
	for _, c := range e.nnz {
		total += c
	}
	if e.elems == 0 {
		return 0
	}
	return float64(total) / float64(int64(n)*e.elems)
}

// sparseReduce ships the deltas: each replica's worker re-encodes its
// delta buffers as CT-CSR (FromDenseCTInto reuses the tile skeletons, so
// steady state allocates nothing), then tile streams accumulate the
// replicas' non-zeros in replica-index order into a 64-wide float64
// accumulator and write the new mean back only at touched positions —
// everywhere else base already equals the mean exactly. Returns the
// modeled wire bytes: every encoded non-zero upstream plus the touched
// union broadcast to the other N-1 replicas.
func (e *Exchange) sparseReduce() int64 {
	n := len(e.views)
	var wg sync.WaitGroup
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for j, d := range e.delta[r] {
				sparse.FromDenseCTInto(e.encs[r][j], d, 1, len(d), exchangeTileWidth)
			}
		}(r)
	}
	wg.Wait()

	inv := 1 / float64(n)
	var unionNNZ int64
	var unionMu sync.Mutex
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var acc [exchangeTileWidth]float64
			var localUnion int64
			for j := range e.views[0] {
				tiles := len(e.encs[0][j].Tiles)
				for t := w; t < tiles; t += n {
					var mask uint64
					for r := 0; r < n; r++ {
						tile := e.encs[r][j].Tiles[t]
						for p := tile.RowPtr[0]; p < tile.RowPtr[1]; p++ {
							col := tile.ColIdx[p]
							acc[col] += float64(tile.Values[p])
							mask |= 1 << uint(col)
						}
					}
					if mask == 0 {
						continue
					}
					base := e.base[j]
					colBase := t * exchangeTileWidth
					for m := mask; m != 0; m &= m - 1 {
						b := bits.TrailingZeros64(m)
						i := colBase + b
						mean := base[i] + float32(acc[b]*inv)
						base[i] = mean
						for r := 0; r < n; r++ {
							e.views[r][j][i] = mean
						}
						acc[b] = 0
					}
					localUnion += int64(bits.OnesCount64(mask))
				}
			}
			unionMu.Lock()
			unionNNZ += localUnion
			unionMu.Unlock()
		}(w)
	}
	wg.Wait()

	var shipped int64
	for _, c := range e.nnz {
		shipped += c
	}
	return shipped*8 + unionNNZ*8*int64(n-1)
}
