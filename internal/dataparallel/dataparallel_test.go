package dataparallel

import (
	"testing"

	"spgcnn/internal/conv"
	"spgcnn/internal/core"
	"spgcnn/internal/nn"
	"spgcnn/internal/rng"
	"spgcnn/internal/tensor"
)

// buildNet returns a deterministic conv+relu+fc network; every call with
// the same seed yields identical weights.
func buildNet(seed uint64) *nn.Network {
	r := rng.New(seed)
	s := conv.Square(8, 3, 2, 3, 1)
	st := core.FPStrategies(1)[1]
	cv := nn.NewConvFixed("conv0", s, st, 1, r)
	re := nn.NewReLU("relu0", cv.OutDims(), 1)
	fc := nn.NewFC("fc0", re.OutDims(), 4, 1, r)
	return nn.NewNetwork(cv, re, fc)
}

// ds is a deterministic in-package dataset.
type ds struct{ n int }

func (d ds) Len() int        { return d.n }
func (d ds) Classes() int    { return 4 }
func (d ds) Label(i int) int { return i % 4 }
func (d ds) Image(i int, dst *tensor.Tensor) {
	r := rng.New(uint64(i)*0x9e3779b97f4a7c15 + 7)
	dst.FillNormal(r, float32(i%4), 1)
}

func TestConfigValidation(t *testing.T) {
	build := func(int) *nn.Network { return buildNet(1) }
	cases := []Config{
		{Replicas: 0, GlobalBatch: 4},
		{Replicas: 3, GlobalBatch: 4}, // not divisible
		{Replicas: 8, GlobalBatch: 4}, // batch < replicas
	}
	for _, cfg := range cases {
		cfg.LR = 0.01
		if _, err := New(build, cfg); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
	if _, err := New(build, Config{Replicas: 2, GlobalBatch: 4, LR: 0.01}); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

func TestRejectsMisalignedReplicas(t *testing.T) {
	i := 0
	build := func(int) *nn.Network {
		i++
		return buildNet(uint64(i)) // different seed per replica: invalid
	}
	if _, err := New(build, Config{Replicas: 2, GlobalBatch: 4, LR: 0.01}); err == nil {
		t.Fatal("differently-initialized replicas accepted")
	}
}

// TestSyncEveryOneEqualsSingleWorker is the core equivalence: 2-replica
// fully-synchronous data parallelism must match single-worker global-batch
// SGD step for step (up to float32 reassociation).
func TestSyncEveryOneEqualsSingleWorker(t *testing.T) {
	const globalBatch = 8
	data := ds{n: 32}

	// Single worker.
	single := buildNet(7)
	str := nn.NewTrainer(single, 0.05, globalBatch)
	str.TrainEpoch(data, rng.New(9))

	// Two replicas, sync every step.
	dp, err := New(func(int) *nn.Network { return buildNet(7) },
		Config{Replicas: 2, GlobalBatch: globalBatch, LR: 0.05, SyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	dp.TrainEpoch(data, rng.New(9))

	sp := single.Parameters()
	rp := dp.Replica(0).Parameters()
	for j := range sp {
		if !tensor.AlmostEqual(sp[j].Tensor, rp[j].Tensor, 1e-4) {
			t.Fatalf("parameter %q diverged: max diff %g",
				sp[j].Name, tensor.MaxAbsDiff(sp[j].Tensor, rp[j].Tensor))
		}
	}
}

func TestReplicasLockstepAfterSync(t *testing.T) {
	dp, err := New(func(int) *nn.Network { return buildNet(3) },
		Config{Replicas: 4, GlobalBatch: 8, LR: 0.05, SyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	dp.TrainEpoch(ds{n: 32}, rng.New(4))
	ref := dp.Replica(0).Parameters()
	for i := 1; i < 4; i++ {
		ps := dp.Replica(i).Parameters()
		for j := range ps {
			if tensor.MaxAbsDiff(ref[j].Tensor, ps[j].Tensor) != 0 {
				t.Fatalf("replica %d parameter %q out of lockstep", i, ps[j].Name)
			}
		}
	}
}

func TestLocalSGDTrainsAndSyncsLess(t *testing.T) {
	dp, err := New(func(int) *nn.Network { return buildNet(5) },
		Config{Replicas: 2, GlobalBatch: 8, LR: 0.05, SyncEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	data := ds{n: 64}
	r := rng.New(6)
	first := dp.TrainEpoch(data, r)
	var last Stats
	for e := 0; e < 5; e++ {
		last = dp.TrainEpoch(data, r)
	}
	if !(last.Loss < first.Loss) {
		t.Fatalf("local SGD did not learn: %v -> %v", first.Loss, last.Loss)
	}
	// 64/8 = 8 steps per epoch, sync every 4 -> 2 syncs per epoch.
	if first.Syncs != 2 {
		t.Fatalf("syncs per epoch = %d, want 2", first.Syncs)
	}
	if last.Images != 64 || last.ImagesPerSec <= 0 {
		t.Fatalf("accounting wrong: %+v", last)
	}
}

func TestSingleReplicaDegeneratesToSGD(t *testing.T) {
	dp, err := New(func(int) *nn.Network { return buildNet(8) },
		Config{Replicas: 1, GlobalBatch: 4, LR: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	single := buildNet(8)
	str := nn.NewTrainer(single, 0.05, 4)
	data := ds{n: 16}
	dp.TrainEpoch(data, rng.New(2))
	str.TrainEpoch(data, rng.New(2))
	sp := single.Parameters()
	rp := dp.Replica(0).Parameters()
	for j := range sp {
		if !tensor.AlmostEqual(sp[j].Tensor, rp[j].Tensor, 1e-5) {
			t.Fatalf("single-replica run differs from plain SGD at %q", sp[j].Name)
		}
	}
}
