package par

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestForCoversAllIndices(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 4, 16} {
		for _, n := range []int{0, 1, 2, 7, 100, 1000} {
			hits := make([]int32, n)
			For(n, workers, func(i int) {
				atomic.AddInt32(&hits[i], 1)
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, h)
				}
			}
		}
	}
}

func TestForChunkedPartition(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8} {
		for _, n := range []int{1, 2, 5, 64, 101} {
			var mu sync.Mutex
			covered := make([]bool, n)
			ForChunked(n, workers, func(lo, hi int) {
				if lo < 0 || hi > n || lo > hi {
					t.Errorf("bad range [%d,%d) for n=%d", lo, hi, n)
					return
				}
				mu.Lock()
				defer mu.Unlock()
				for i := lo; i < hi; i++ {
					if covered[i] {
						t.Errorf("index %d covered twice", i)
					}
					covered[i] = true
				}
			})
			for i, c := range covered {
				if !c {
					t.Fatalf("workers=%d n=%d: index %d never covered", workers, n, i)
				}
			}
		}
	}
}

// TestForChunkedBalanced pins the q/q+1 partition: chunk sizes may differ
// by at most one and every worker receives work whenever n >= workers. The
// old ceil partition failed both (n = workers+1 handed the leading workers
// two items and left the trailing half idle).
func TestForChunkedBalanced(t *testing.T) {
	for _, workers := range []int{2, 3, 4, 7, 8} {
		for _, n := range []int{2, 3, 5, 7, 9, 64, 97, 101} {
			if n < workers {
				continue
			}
			var mu sync.Mutex
			var sizes []int
			ForChunked(n, workers, func(lo, hi int) {
				mu.Lock()
				sizes = append(sizes, hi-lo)
				mu.Unlock()
			})
			if len(sizes) != workers {
				t.Fatalf("n=%d workers=%d: %d chunks, want %d", n, workers, len(sizes), workers)
			}
			mn, mx := sizes[0], sizes[0]
			for _, s := range sizes {
				if s < mn {
					mn = s
				}
				if s > mx {
					mx = s
				}
			}
			if mn == 0 {
				t.Fatalf("n=%d workers=%d: a worker got an empty chunk (sizes %v)", n, workers, sizes)
			}
			if mx-mn > 1 {
				t.Fatalf("n=%d workers=%d: chunk imbalance %v", n, workers, sizes)
			}
		}
	}
}

func TestForDynamicCoversAllIndices(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 4, 16} {
		for _, grain := range []int{1, 4, 100} {
			for _, n := range []int{0, 1, 2, 7, 100, 1000} {
				hits := make([]int32, n)
				ForDynamic(n, workers, grain, func(lo, hi int) {
					if lo < 0 || hi > n || lo >= hi {
						t.Errorf("bad range [%d,%d) for n=%d", lo, hi, n)
						return
					}
					for i := lo; i < hi; i++ {
						atomic.AddInt32(&hits[i], 1)
					}
				})
				for i, h := range hits {
					if h != 1 {
						t.Fatalf("workers=%d grain=%d n=%d: index %d visited %d times",
							workers, grain, n, i, h)
					}
				}
			}
		}
	}
}

func TestForDynamicSequentialInline(t *testing.T) {
	calls := 0
	ForDynamic(10, 1, 1, func(lo, hi int) {
		calls++
		if lo != 0 || hi != 10 {
			t.Fatalf("sequential ForDynamic got [%d,%d), want [0,10)", lo, hi)
		}
	})
	if calls != 1 {
		t.Fatalf("sequential ForDynamic called fn %d times, want 1", calls)
	}
}

// TestForDynamicRespectsGrain checks no claimed chunk is smaller than grain
// except the final partial one at the very end of the range.
func TestForDynamicRespectsGrain(t *testing.T) {
	const n, grain = 1000, 16
	var mu sync.Mutex
	short := 0
	ForDynamic(n, 4, grain, func(lo, hi int) {
		if hi-lo < grain {
			mu.Lock()
			short++
			if hi != n {
				t.Errorf("short chunk [%d,%d) not at the tail", lo, hi)
			}
			mu.Unlock()
		}
	})
	if short > 1 {
		t.Fatalf("%d chunks below grain, want at most the final one", short)
	}
}

// TestForDynamicRaggedWork drives deliberately uneven per-index cost to
// exercise concurrent claiming under contention (run with -race).
func TestForDynamicRaggedWork(t *testing.T) {
	const n = 257
	var sum int64
	ForDynamic(n, 8, 1, func(lo, hi int) {
		local := int64(0)
		for i := lo; i < hi; i++ {
			// Quadratic spin: late indices cost far more than early ones.
			for j := 0; j < i*i%4097; j++ {
				local++
			}
			local = local % 1000003
			atomic.AddInt64(&sum, int64(i))
		}
		_ = local
	})
	if sum != int64(n)*int64(n-1)/2 {
		t.Fatalf("sum = %d, want %d", sum, int64(n)*int64(n-1)/2)
	}
}

func TestForChunkedSequentialInline(t *testing.T) {
	calls := 0
	ForChunked(10, 1, func(lo, hi int) {
		calls++
		if lo != 0 || hi != 10 {
			t.Fatalf("sequential ForChunked got [%d,%d), want [0,10)", lo, hi)
		}
	})
	if calls != 1 {
		t.Fatalf("sequential ForChunked called fn %d times, want 1", calls)
	}
}

func TestForProperty(t *testing.T) {
	// Sum over parallel-for equals the closed form for arbitrary n, workers.
	if err := quick.Check(func(n8, w8 uint8) bool {
		n := int(n8)
		w := int(w8%8) + 1
		var sum int64
		For(n, w, func(i int) {
			atomic.AddInt64(&sum, int64(i))
		})
		return sum == int64(n)*int64(n-1)/2
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPoolMap(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var sum int64
	p.Map(1000, func(i int) {
		atomic.AddInt64(&sum, int64(i))
	})
	if sum != 499500 {
		t.Fatalf("sum = %d, want 499500", sum)
	}
}

func TestPoolReuse(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	for round := 0; round < 5; round++ {
		var count int64
		p.Map(100, func(int) { atomic.AddInt64(&count, 1) })
		if count != 100 {
			t.Fatalf("round %d: count = %d, want 100", round, count)
		}
	}
}

func TestPoolSubmitWait(t *testing.T) {
	p := NewPool(3)
	defer p.Close()
	var count int64
	for i := 0; i < 50; i++ {
		p.Submit(func() { atomic.AddInt64(&count, 1) })
	}
	p.Wait()
	if count != 50 {
		t.Fatalf("count = %d, want 50", count)
	}
}

func TestPoolCloseIdempotent(t *testing.T) {
	p := NewPool(1)
	p.Close()
	p.Close() // must not panic or deadlock
}

func TestPoolSubmitAfterClosePanics(t *testing.T) {
	p := NewPool(1)
	p.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("Submit after Close did not panic")
		}
	}()
	p.Submit(func() {})
}

func TestPoolMinWorkers(t *testing.T) {
	p := NewPool(0)
	defer p.Close()
	if p.Workers() != 1 {
		t.Fatalf("Workers() = %d, want 1", p.Workers())
	}
	done := false
	p.Submit(func() { done = true })
	p.Wait()
	if !done {
		t.Fatal("task did not run")
	}
}

func TestMaxWorkersPositive(t *testing.T) {
	if MaxWorkers() < 1 {
		t.Fatalf("MaxWorkers() = %d", MaxWorkers())
	}
}

func BenchmarkForOverheadTiny(b *testing.B) {
	for i := 0; i < b.N; i++ {
		For(8, 4, func(int) {})
	}
}

func BenchmarkPoolMapOverhead(b *testing.B) {
	p := NewPool(4)
	defer p.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Map(8, func(int) {})
	}
}
