package spkernel

import (
	"fmt"

	"spgcnn/internal/sparse"
	"spgcnn/internal/tensor"
)

// Fused ReLU-mask back-propagation: in a CNN, the error gradient a
// convolution layer consumes is almost always the output of a ReLU
// derivative — `eo[i] = grad[i] if activation i was positive else 0` —
// which is precisely what makes it sparse (§3.3). The standard pipeline
// materializes that masked tensor densely and the sparse kernel then
// compresses it; the fused path below builds the CT-CSR representation
// directly from (pre-mask gradient, ReLU mask), skipping the dense
// intermediate entirely. An extension beyond the paper (its future-work
// direction of pushing sparsity exploitation earlier in the pipeline).
//
// The fused entry points are per-sample conveniences; they draw scratch
// from the kernel's private serial context and are therefore, like the
// rest of the SingleKernel surface, not safe for concurrent use.

// buildEOMasked transforms grad to feature-fastest layout into eoHWC,
// applying the mask inline, and compresses the result into ceo. mask is in
// the same [Nf][OutY][OutX] layout as grad; element i passes iff mask[i].
func (k *Kernel) buildEOMasked(ceo *sparse.CTCSR, eoHWC, grad *tensor.Tensor, mask []bool) {
	s := k.spec
	if len(mask) != grad.Len() {
		panic(fmt.Sprintf("spkernel: mask length %d != gradient length %d", len(mask), grad.Len()))
	}
	oy, ox := s.OutY(), s.OutX()
	dst := eoHWC.Data
	for f := 0; f < s.Nf; f++ {
		for y := 0; y < oy; y++ {
			base := (f*oy + y) * ox
			row := grad.Data[base : base+ox]
			mrow := mask[base : base+ox]
			for x := 0; x < ox; x++ {
				v := row[x]
				if !mrow[x] {
					v = 0
				}
				dst[(y*ox+x)*s.Nf+f] = v
			}
		}
	}
	sparse.FromDenseCTInto(ceo, dst, oy*ox, s.Nf, k.tileWidth)
}

// BackwardInputFused computes Eq. 3 for eo = grad⊙mask without
// materializing the masked gradient.
func (k *Kernel) BackwardInputFused(ei, grad *tensor.Tensor, mask []bool, w *tensor.Tensor) {
	s := k.spec
	c := k.single.Ctx()
	sc := k.scratch.Get().(*ceoScratch)
	eoHWC := c.GetTensor(s.OutY(), s.OutX(), s.Nf)
	wKKFC := c.GetTensor(s.Fy, s.Fx, s.Nf, s.Nc)
	eiHWC := c.GetTensor(s.Ny, s.Nx, s.Nc)
	k.buildEOMasked(&sc.ceo, eoHWC, grad, mask)
	tensor.FCKKToKKFCInto(wKKFC, w)
	eiHWC.Zero()
	k.scatterEI(&sc.ceo, wKKFC, eiHWC)
	tensor.HWCToCHWInto(ei, eiHWC)
	c.PutTensor(eiHWC)
	c.PutTensor(wKKFC)
	c.PutTensor(eoHWC)
	k.scratch.Put(sc)
}

// BackwardWeightsFused computes Eq. 4 for eo = grad⊙mask without
// materializing the masked gradient.
func (k *Kernel) BackwardWeightsFused(dw, grad *tensor.Tensor, mask []bool, in *tensor.Tensor) {
	s := k.spec
	c := k.single.Ctx()
	sc := k.scratch.Get().(*ceoScratch)
	eoHWC := c.GetTensor(s.OutY(), s.OutX(), s.Nf)
	inHWC := c.GetTensor(s.Ny, s.Nx, s.Nc)
	dwKK := c.GetTensor(s.Fy, s.Fx, s.Nf, s.Nc)
	k.buildEOMasked(&sc.ceo, eoHWC, grad, mask)
	tensor.CHWToHWCInto(inHWC, in)
	dwKK.Zero()
	k.scatterDW(&sc.ceo, inHWC, dwKK)
	tensor.KKFCToFCKKInto(dw, dwKK)
	c.PutTensor(dwKK)
	c.PutTensor(inHWC)
	c.PutTensor(eoHWC)
	k.scratch.Put(sc)
}
