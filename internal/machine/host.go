package machine

import (
	"os"
	"runtime"
)

// Host is the machine fingerprint stamped into every machine-readable
// benchmark report, so a BENCH_*.json baseline records where its numbers
// came from. Baseline comparison deliberately ignores these fields — they
// exist to explain a trajectory, not to gate it.
type Host struct {
	OS        string `json:"os"`
	Arch      string `json:"arch"`
	CPUs      int    `json:"cpus"`
	GoVersion string `json:"go"`
	Hostname  string `json:"hostname,omitempty"`
}

// HostInfo fingerprints the running machine.
func HostInfo() Host {
	h := Host{
		OS:        runtime.GOOS,
		Arch:      runtime.GOARCH,
		CPUs:      runtime.NumCPU(),
		GoVersion: runtime.Version(),
	}
	if name, err := os.Hostname(); err == nil {
		h.Hostname = name
	}
	return h
}
