package conv

import (
	"fmt"

	"spgcnn/internal/tensor"
)

// Shapes used throughout spgcnn for a convolution spec s:
//
//	input  I  : [Nc][Ny][Nx]        (channel, y, x — x fastest)
//	weights W : [Nf][Nc][Fy][Fx]
//	output O  : [Nf][OutY][OutX]
//	EO        : same shape as O (output-error gradient)
//	EI        : same shape as I (input-error gradient)
//	dW        : same shape as W (delta-weights)

// CheckInput panics unless t has the input shape for s.
func CheckInput(s Spec, t *tensor.Tensor) {
	if t.Rank() != 3 || t.Dim(0) != s.Nc || t.Dim(1) != s.Ny || t.Dim(2) != s.Nx {
		panic(fmt.Sprintf("conv: input shape %v does not match spec %v (want [%d %d %d])",
			t.Dims, s, s.Nc, s.Ny, s.Nx))
	}
}

// CheckWeights panics unless t has the weight shape for s.
func CheckWeights(s Spec, t *tensor.Tensor) {
	if t.Rank() != 4 || t.Dim(0) != s.Nf || t.Dim(1) != s.Nc || t.Dim(2) != s.Fy || t.Dim(3) != s.Fx {
		panic(fmt.Sprintf("conv: weight shape %v does not match spec %v (want [%d %d %d %d])",
			t.Dims, s, s.Nf, s.Nc, s.Fy, s.Fx))
	}
}

// CheckOutput panics unless t has the output shape for s.
func CheckOutput(s Spec, t *tensor.Tensor) {
	if t.Rank() != 3 || t.Dim(0) != s.Nf || t.Dim(1) != s.OutY() || t.Dim(2) != s.OutX() {
		panic(fmt.Sprintf("conv: output shape %v does not match spec %v (want [%d %d %d])",
			t.Dims, s, s.Nf, s.OutY(), s.OutX()))
	}
}

// NewInput allocates a zero input tensor for s.
func NewInput(s Spec) *tensor.Tensor { return tensor.New(s.Nc, s.Ny, s.Nx) }

// NewWeights allocates a zero weight tensor for s.
func NewWeights(s Spec) *tensor.Tensor { return tensor.New(s.Nf, s.Nc, s.Fy, s.Fx) }

// NewOutput allocates a zero output tensor for s.
func NewOutput(s Spec) *tensor.Tensor { return tensor.New(s.Nf, s.OutY(), s.OutX()) }

// ForwardRef computes Eq. 2 directly:
//
//	O[f,y,x] = Σ_{c,ky,kx} I[c, y·sy+ky, x·sx+kx] · W[f,c,ky,kx]
func ForwardRef(s Spec, out, in, w *tensor.Tensor) {
	s.MustValidate()
	CheckInput(s, in)
	CheckWeights(s, w)
	CheckOutput(s, out)
	oy, ox := s.OutY(), s.OutX()
	for f := 0; f < s.Nf; f++ {
		for y := 0; y < oy; y++ {
			for x := 0; x < ox; x++ {
				var sum float32
				for c := 0; c < s.Nc; c++ {
					for ky := 0; ky < s.Fy; ky++ {
						irow := in.Row3(c, y*s.Sy+ky)
						wrow := w.Data[((f*s.Nc+c)*s.Fy+ky)*s.Fx:]
						for kx := 0; kx < s.Fx; kx++ {
							sum += irow[x*s.Sx+kx] * wrow[kx]
						}
					}
				}
				out.Set3(f, y, x, sum)
			}
		}
	}
}

// BackwardInputRef computes Eq. 3 (as the adjoint scatter of Eq. 2, which
// avoids the divisibility bookkeeping of the gather form):
//
//	EI[c, y·sy+ky, x·sx+kx] += EO[f,y,x] · W[f,c,ky,kx]
func BackwardInputRef(s Spec, ei, eo, w *tensor.Tensor) {
	s.MustValidate()
	CheckInput(s, ei)
	CheckWeights(s, w)
	CheckOutput(s, eo)
	ei.Zero()
	oy, ox := s.OutY(), s.OutX()
	for f := 0; f < s.Nf; f++ {
		for y := 0; y < oy; y++ {
			for x := 0; x < ox; x++ {
				e := eo.At3(f, y, x)
				if e == 0 {
					continue
				}
				for c := 0; c < s.Nc; c++ {
					for ky := 0; ky < s.Fy; ky++ {
						erow := ei.Row3(c, y*s.Sy+ky)
						wrow := w.Data[((f*s.Nc+c)*s.Fy+ky)*s.Fx:]
						for kx := 0; kx < s.Fx; kx++ {
							erow[x*s.Sx+kx] += e * wrow[kx]
						}
					}
				}
			}
		}
	}
}

// BackwardInputGatherRef computes Eq. 3 exactly as written in the paper —
// the gather form with the (y−ky)/sy index arithmetic — as a second,
// independently-derived oracle:
//
//	EI[c,y,x] = Σ_{f,ky,kx} EO[f, (y−ky)/sy, (x−kx)/sx] · W[f,c,ky,kx]
//
// where terms are included only when the divisions are exact and in range.
func BackwardInputGatherRef(s Spec, ei, eo, w *tensor.Tensor) {
	s.MustValidate()
	CheckInput(s, ei)
	CheckWeights(s, w)
	CheckOutput(s, eo)
	oy, ox := s.OutY(), s.OutX()
	for c := 0; c < s.Nc; c++ {
		for y := 0; y < s.Ny; y++ {
			for x := 0; x < s.Nx; x++ {
				var sum float32
				for f := 0; f < s.Nf; f++ {
					for ky := 0; ky < s.Fy; ky++ {
						ry := y - ky
						if ry < 0 || ry%s.Sy != 0 || ry/s.Sy >= oy {
							continue
						}
						for kx := 0; kx < s.Fx; kx++ {
							rx := x - kx
							if rx < 0 || rx%s.Sx != 0 || rx/s.Sx >= ox {
								continue
							}
							sum += eo.At3(f, ry/s.Sy, rx/s.Sx) * w.At4(f, c, ky, kx)
						}
					}
				}
				ei.Set3(c, y, x, sum)
			}
		}
	}
}

// BackwardWeightsRef computes Eq. 4 directly:
//
//	dW[f,c,ky,kx] = Σ_{y,x} EO[f,y,x] · I[c, y·sy+ky, x·sx+kx]
func BackwardWeightsRef(s Spec, dw, eo, in *tensor.Tensor) {
	s.MustValidate()
	CheckWeights(s, dw)
	CheckOutput(s, eo)
	CheckInput(s, in)
	dw.Zero()
	oy, ox := s.OutY(), s.OutX()
	for f := 0; f < s.Nf; f++ {
		for y := 0; y < oy; y++ {
			erow := eo.Row3(f, y)
			for x := 0; x < ox; x++ {
				e := erow[x]
				if e == 0 {
					continue
				}
				for c := 0; c < s.Nc; c++ {
					for ky := 0; ky < s.Fy; ky++ {
						irow := in.Row3(c, y*s.Sy+ky)
						drow := dw.Data[((f*s.Nc+c)*s.Fy+ky)*s.Fx:]
						for kx := 0; kx < s.Fx; kx++ {
							drow[kx] += e * irow[x*s.Sx+kx]
						}
					}
				}
			}
		}
	}
}
