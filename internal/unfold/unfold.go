// Package unfold implements the input-unfolding step (im2col) of the
// paper's baseline execution method, Unfold+Parallel-GEMM (§2.3, Fig. 2b),
// together with its adjoint fold (col2im) needed by back-propagation.
//
// Unfolding flattens the inputs of each kernel application into a row
// vector and stacks the rows, turning the convolution into a matrix
// multiply O = W·Uᵀ (Fig. 2c). The cost — the reason §3.1 exists — is that
// each input element is replicated up to Fx·Fy times, inflating memory
// traffic and destroying the convolution's intrinsic arithmetic intensity.
package unfold

import (
	"fmt"

	"spgcnn/internal/conv"
	"spgcnn/internal/gemm"
	"spgcnn/internal/tensor"
)

// Rows returns the number of rows of the unfolded matrix U: one per output
// pixel (OutY·OutX).
func Rows(s conv.Spec) int { return s.OutY() * s.OutX() }

// Cols returns the number of columns of U: one per (channel, ky, kx) tap,
// i.e. Nc·Fy·Fx.
func Cols(s conv.Spec) int { return s.Nc * s.Fy * s.Fx }

// Im2col unfolds input in ([Nc][Ny][Nx]) into the matrix U
// (Rows(s) × Cols(s)): row (y·OutX + x) holds, channel-major then ky then
// kx, the input window that produces output pixel (y, x). This matches the
// paper's Fig. 2b, where each channel's unfolded block is stacked
// left-to-right.
func Im2col(s conv.Spec, u *gemm.Matrix, in *tensor.Tensor) {
	s.MustValidate()
	conv.CheckInput(s, in)
	if u.Rows != Rows(s) || u.Cols != Cols(s) {
		panic(fmt.Sprintf("unfold: U is %dx%d, want %dx%d", u.Rows, u.Cols, Rows(s), Cols(s)))
	}
	oy, ox := s.OutY(), s.OutX()
	fxy := s.Fy * s.Fx
	for y := 0; y < oy; y++ {
		for x := 0; x < ox; x++ {
			dst := u.Row(y*ox + x)
			for c := 0; c < s.Nc; c++ {
				base := c * fxy
				for ky := 0; ky < s.Fy; ky++ {
					src := in.Row3(c, y*s.Sy+ky)[x*s.Sx : x*s.Sx+s.Fx]
					copy(dst[base+ky*s.Fx:base+(ky+1)*s.Fx], src)
				}
			}
		}
	}
}

// NewU allocates the unfolded matrix for s.
func NewU(s conv.Spec) *gemm.Matrix { return gemm.NewMatrix(Rows(s), Cols(s)) }

// Im2colBlocked unfolds a channel-blocked input ([ceil(Nc/8)][Ny][Nx][8],
// tensor.NCHW8) into the same canonical U matrix Im2col produces from an
// NCHW input — the gather-at-boundary adapter that lets the unfold+GEMM
// engines consume blocked activations without a separate layout round
// trip through input space. Column order stays (c, ky, kx), so downstream
// GEMM results are bit-identical to the NCHW path.
func Im2colBlocked(s conv.Spec, u *gemm.Matrix, in *tensor.Tensor) {
	s.MustValidate()
	conv.CheckBlockedInput(s, in)
	if u.Rows != Rows(s) || u.Cols != Cols(s) {
		panic(fmt.Sprintf("unfold: U is %dx%d, want %dx%d", u.Rows, u.Cols, Rows(s), Cols(s)))
	}
	oy, ox := s.OutY(), s.OutX()
	fxy := s.Fy * s.Fx
	rowN := s.Nx * tensor.Block
	for y := 0; y < oy; y++ {
		for x := 0; x < ox; x++ {
			dst := u.Row(y*ox + x)
			for c := 0; c < s.Nc; c++ {
				cb, cl := c/tensor.Block, c%tensor.Block
				base := c * fxy
				for ky := 0; ky < s.Fy; ky++ {
					iOff := (cb*s.Ny+y*s.Sy+ky)*rowN + x*s.Sx*tensor.Block + cl
					gatherLane(dst[base+ky*s.Fx:base+(ky+1)*s.Fx], in.Data[iOff:])
				}
			}
		}
	}
}

// gatherLane copies one channel lane out of blocked storage: dst[i] =
// src[i·Block], for len(dst) elements.
func gatherLane(dst, src []float32) {
	for len(dst) >= 1 && len(src) >= 1 {
		dst[0] = src[0]
		dst = dst[1:]
		if uint(tensor.Block) <= uint(len(src)) {
			src = src[tensor.Block:]
		} else {
			src = src[:0]
		}
	}
}

// Col2im folds the matrix U back into input space, ACCUMULATING overlapping
// windows: in[c, y·sy+ky, x·sx+kx] += U[(y,x), (c,ky,kx)]. It is the exact
// adjoint of Im2col, which is what makes Unfold+GEMM back-propagation
// (EI = fold(Wᵀ·EO)) correct.
func Col2im(s conv.Spec, in *tensor.Tensor, u *gemm.Matrix) {
	s.MustValidate()
	conv.CheckInput(s, in)
	if u.Rows != Rows(s) || u.Cols != Cols(s) {
		panic(fmt.Sprintf("unfold: U is %dx%d, want %dx%d", u.Rows, u.Cols, Rows(s), Cols(s)))
	}
	in.Zero()
	oy, ox := s.OutY(), s.OutX()
	fxy := s.Fy * s.Fx
	for y := 0; y < oy; y++ {
		for x := 0; x < ox; x++ {
			src := u.Row(y*ox + x)
			for c := 0; c < s.Nc; c++ {
				base := c * fxy
				for ky := 0; ky < s.Fy; ky++ {
					dst := in.Row3(c, y*s.Sy+ky)[x*s.Sx : x*s.Sx+s.Fx]
					addTo(dst, src[base+ky*s.Fx:])
				}
			}
		}
	}
}

// addTo accumulates dst[i] += src[i] over len(dst) elements in streaming
// form, so the element loop compiles with no bounds checks (src must be at
// least as long as dst).
func addTo(dst, src []float32) {
	n := len(dst)
	if n > len(src) {
		panic("unfold: addTo source too short")
	}
	src = src[:n]
	for len(dst) >= 4 && len(src) >= 4 {
		dst[0] += src[0]
		dst[1] += src[1]
		dst[2] += src[2]
		dst[3] += src[3]
		dst = dst[4:]
		src = src[4:]
	}
	for len(dst) >= 1 && len(src) >= 1 {
		dst[0] += src[0]
		dst = dst[1:]
		src = src[1:]
	}
}

// WeightMatrix flattens weights [Nf][Nc][Fy][Fx] into the Nf × Cols(s)
// matrix of Fig. 2c: row f is feature f's weights, channel-major. Because
// the canonical weight layout is already row-major in exactly this order,
// this is a reshape (the returned matrix aliases w's data).
func WeightMatrix(s conv.Spec, w *tensor.Tensor) *gemm.Matrix {
	conv.CheckWeights(s, w)
	return gemm.FromSlice(w.Data, s.Nf, Cols(s))
}

// OutputMatrix views output tensor o ([Nf][OutY][OutX]) as the Nf × Rows(s)
// matrix O of Fig. 2c (aliasing o's data).
func OutputMatrix(s conv.Spec, o *tensor.Tensor) *gemm.Matrix {
	conv.CheckOutput(s, o)
	return gemm.FromSlice(o.Data, s.Nf, Rows(s))
}
