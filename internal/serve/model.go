package serve

import (
	"fmt"
	"io"
	"sort"

	"spgcnn/internal/core"
	"spgcnn/internal/exec"
	"spgcnn/internal/netdef"
	"spgcnn/internal/nn"
	"spgcnn/internal/plan"
	"spgcnn/internal/tensor"
)

// DefaultBuckets returns the power-of-two batch-size buckets up to and
// including maxBatch (rounded up): the buckets the planner keys per-bucket
// strategy verdicts under and ragged batches pad to.
func DefaultBuckets(maxBatch int) []int {
	if maxBatch < 1 {
		maxBatch = 1
	}
	var out []int
	for b := 1; ; b *= 2 {
		out = append(out, b)
		if b >= maxBatch {
			return out
		}
	}
}

// ModelConfig controls how a parsed description becomes a serving model.
type ModelConfig struct {
	// Replicas is the number of forward-only network replicas — one per
	// batch-worker goroutine, each with its own exec.Ctx arena, all
	// sharing one read-only parameter set (default 1).
	Replicas int
	// Threads is the worker count of each replica's execution context
	// (default 1): intra-batch parallelism, orthogonal to Replicas.
	Threads int
	// Buckets are the batch-size buckets (sorted internally); ragged
	// batches pad up to the smallest fitting bucket. Empty means
	// DefaultBuckets of the server's MaxBatch.
	Buckets []int
	// Planner owns per-bucket strategy selection, shared by every replica
	// (nil: a fresh plan.Planner, so replicas still share verdicts).
	Planner core.Planner
	// FixedStrategy pins every conv layer to one strategy instead of
	// planner-driven per-bucket selection.
	FixedStrategy *core.Strategy
	// Choices deploys a saved training tuning configuration per layer.
	Choices core.Choices
	// Seed seeds the (soon overwritten or shared) weight initialization.
	Seed uint64
}

// Model is a loaded, forward-only network replicated across batch workers.
// Replica networks share parameter tensors — one weight set in memory, one
// packed/blocked weight-cache entry per kernel — while owning their
// activations, so worker i may run Forward on replica i concurrently with
// every other worker.
type Model struct {
	def      *netdef.NetDef
	replicas []*nn.Network
	ctxs     []*exec.Ctx
	buckets  []int
	pad      []*tensor.Tensor // shared zero inputs for ragged-batch padding
	inDims   []int
	inLen    int
	outLen   int
	flops    int64 // dense forward flops per image (conv + fc)
}

// NewModel builds the replica set for a parsed description. Weights start
// at seeded initialization; call LoadWeights to restore a checkpoint.
func NewModel(def *netdef.NetDef, cfg ModelConfig) (*Model, error) {
	replicas := cfg.Replicas
	if replicas < 1 {
		replicas = 1
	}
	threads := cfg.Threads
	if threads < 1 {
		threads = 1
	}
	buckets := append([]int(nil), cfg.Buckets...)
	if len(buckets) == 0 {
		buckets = DefaultBuckets(1)
	}
	sort.Ints(buckets)
	for _, b := range buckets {
		if b < 1 {
			return nil, fmt.Errorf("serve: bucket %d is not a batch size", b)
		}
	}
	planner := cfg.Planner
	if planner == nil {
		planner = plan.New(plan.Options{})
	}
	m := &Model{def: def, buckets: buckets}
	for i := 0; i < replicas; i++ {
		ctx := exec.New(threads)
		net, err := netdef.Build(def, netdef.BuildOptions{
			Ctx:           ctx,
			Planner:       planner,
			FixedStrategy: cfg.FixedStrategy,
			Choices:       cfg.Choices,
			Seed:          cfg.Seed,
			Inference:     true,
			InferBuckets:  buckets,
		})
		if err != nil {
			return nil, err
		}
		if i > 0 {
			if err := net.ShareParameters(m.replicas[0]); err != nil {
				return nil, err
			}
		}
		net.EnsureBatch(buckets[len(buckets)-1])
		m.replicas = append(m.replicas, net)
		m.ctxs = append(m.ctxs, ctx)
	}
	m.inDims = m.replicas[0].InDims()
	m.inLen = 1
	for _, d := range m.inDims {
		m.inLen *= d
	}
	m.outLen = 1
	for _, d := range m.replicas[0].OutDims() {
		m.outLen *= d
	}
	for _, l := range m.replicas[0].Layers() {
		switch t := l.(type) {
		case *nn.Conv:
			m.flops += t.Spec().FlopsFP()
		case *nn.FC:
			in, out := 1, 1
			for _, d := range t.InDims() {
				in *= d
			}
			for _, d := range t.OutDims() {
				out *= d
			}
			m.flops += int64(2 * in * out)
		}
	}
	maxBucket := buckets[len(buckets)-1]
	m.pad = make([]*tensor.Tensor, maxBucket)
	for i := range m.pad {
		m.pad[i] = tensor.New(m.inDims...)
	}
	return m, nil
}

// LoadWeights restores a checkpoint written by nn's Save into every
// replica at once (the parameter set is shared). Versions bump so any
// packed-operand cache keyed to the initialization weights invalidates.
func (m *Model) LoadWeights(r io.Reader) error {
	if err := m.replicas[0].Load(r); err != nil {
		return err
	}
	for _, p := range m.replicas[0].Parameters() {
		p.Tensor.Bump()
	}
	return nil
}

// Def returns the parsed description the model was built from.
func (m *Model) Def() *netdef.NetDef { return m.def }

// Replicas returns how many independent batch workers the model supports.
func (m *Model) Replicas() int { return len(m.replicas) }

// Ctx returns replica i's execution context (metrics/trace binding).
func (m *Model) Ctx(i int) *exec.Ctx { return m.ctxs[i] }

// Buckets returns the configured batch-size buckets, ascending.
func (m *Model) Buckets() []int { return m.buckets }

// ConvLayers returns replica 0's convolution layers. Replicas share
// geometry and planner verdicts, so replica 0 speaks for the deployment:
// per-bucket strategies via Conv.PlannedBuckets, specs for observability
// registration.
func (m *Model) ConvLayers() []*nn.Conv { return m.replicas[0].ConvLayers() }

// InDims returns the per-image input shape; InLen its flat length.
func (m *Model) InDims() []int { return m.inDims }

// InLen returns the flat per-image input length.
func (m *Model) InLen() int { return m.inLen }

// OutLen returns the flat per-image output (logits) length.
func (m *Model) OutLen() int { return m.outLen }

// FlopsPerImage returns the dense forward flop count of one image — the
// unit of the serving goodput series (padded rows spend it wastefully).
func (m *Model) FlopsPerImage() int64 { return m.flops }

// bucketFor returns the smallest bucket that fits n, or n when none does.
func (m *Model) bucketFor(n int) int {
	for _, b := range m.buckets {
		if b >= n {
			return b
		}
	}
	return n
}

// InferBatch runs ins through replica `replica`, padding the batch with
// shared zero images up to the bucket size, and returns a copy of each
// REAL input's logits (padding rows are dropped) plus the bucket used.
// Each replica may run one InferBatch at a time; distinct replicas run
// concurrently.
func (m *Model) InferBatch(replica int, ins []*tensor.Tensor) ([][]float32, int) {
	if len(ins) == 0 {
		return nil, 0
	}
	bucket := m.bucketFor(len(ins))
	batch := ins
	if bucket > len(ins) {
		batch = make([]*tensor.Tensor, 0, bucket)
		batch = append(batch, ins...)
		batch = append(batch, m.pad[:bucket-len(ins)]...)
	}
	logits := m.replicas[replica].Forward(batch)
	outs := make([][]float32, len(ins))
	for i := range ins {
		outs[i] = append([]float32(nil), logits[i].Data...)
	}
	return outs, bucket
}

// Warmup runs every bucket once on every replica, so per-bucket strategy
// planning (replica 0 measures, the rest deploy from the shared planner's
// cache) and activation allocation happen before the first request.
func (m *Model) Warmup() {
	for r := range m.replicas {
		for _, b := range m.buckets {
			m.InferBatch(r, m.pad[:b])
		}
	}
}
