package serve

import (
	"bytes"
	"sync"
	"testing"

	"spgcnn/internal/core"
	"spgcnn/internal/netdef"
	"spgcnn/internal/plan"
	"spgcnn/internal/rng"
	"spgcnn/internal/tensor"
)

const diffNet = `
name: "difftiny"
input { channels: 1 height: 14 width: 14 }
layer { name: "conv0" type: "conv" features: 6 kernel: 3 stride: 1 }
layer { name: "relu0" type: "relu" }
layer { name: "pool0" type: "maxpool" kernel: 2 stride: 2 }
layer { name: "fc0" type: "fc" outputs: 7 }
`

// pinnedPlanner returns a planner whose FP candidate set is exactly one
// strategy, so the full per-bucket planning machinery runs while the
// deployed engine is bit-comparable to a training-side fixed exec of the
// same strategy. (Engines are NOT bit-identical across strategies — only
// ULP-comparable — so differential tests pin both sides to one.)
func pinnedPlanner(st core.Strategy) *plan.Planner {
	return plan.New(plan.Options{
		FP:   func(int) []core.Strategy { return []core.Strategy{st} },
		BP:   func(int) []core.Strategy { return []core.Strategy{st} },
		Tune: core.TuneOptions{Reps: 1},
	})
}

func randInputs(seed uint64, n int, dims []int) []*tensor.Tensor {
	r := rng.New(seed)
	out := make([]*tensor.Tensor, n)
	for i := range out {
		t := tensor.New(dims...)
		t.FillNormal(r, 0, 1)
		out[i] = t
	}
	return out
}

// TestServeForwardBitIdenticalToTraining pins the serving contract: for
// the same checkpoint and the same strategy, the serve path (bucketed
// planning, weight sharing across replicas, ragged-batch padding) returns
// bit-identical logits to the training network's Forward — for every
// batch size 1..max, on every replica. Padding rows in ragged buckets
// must not leak into real outputs.
func TestServeForwardBitIdenticalToTraining(t *testing.T) {
	def, err := netdef.Parse(diffNet)
	if err != nil {
		t.Fatal(err)
	}
	st := core.FPStrategies(1)[1] // gemm-in-parallel

	// Training side: fixed strategy, seeded weights, saved checkpoint.
	train, err := netdef.Build(def, netdef.BuildOptions{Workers: 1, FixedStrategy: &st, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	var ckpt bytes.Buffer
	if err := train.Save(&ckpt); err != nil {
		t.Fatal(err)
	}

	// Serving side: different init seed — the checkpoint must fully
	// determine the outputs — with per-bucket planning over a pinned
	// candidate set and 2 weight-sharing replicas.
	const maxBatch = 8
	model, err := NewModel(def, ModelConfig{
		Replicas: 2,
		Buckets:  DefaultBuckets(maxBatch),
		Planner:  pinnedPlanner(st),
		Seed:     999,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := model.LoadWeights(bytes.NewReader(ckpt.Bytes())); err != nil {
		t.Fatal(err)
	}

	for b := 1; b <= maxBatch; b++ {
		ins := randInputs(uint64(100+b), b, model.InDims())
		want := train.Forward(ins)
		wantFlat := make([][]float32, b)
		for i := range want {
			wantFlat[i] = append([]float32(nil), want[i].Data...)
		}
		// Both replicas, concurrently — the -race run checks that shared
		// read-only weights and shared zero-padding tensors are safe.
		var wg sync.WaitGroup
		for rep := 0; rep < model.Replicas(); rep++ {
			wg.Add(1)
			go func(rep int) {
				defer wg.Done()
				got, bucket := model.InferBatch(rep, ins)
				if wantBucket := model.bucketFor(b); bucket != wantBucket {
					t.Errorf("batch %d ran in bucket %d, want %d", b, bucket, wantBucket)
				}
				for i := range got {
					for j := range got[i] {
						if got[i][j] != wantFlat[i][j] {
							t.Errorf("replica %d batch %d image %d logit %d: serve %v != train %v",
								rep, b, i, j, got[i][j], wantFlat[i][j])
							return
						}
					}
				}
			}(rep)
		}
		wg.Wait()
		if t.Failed() {
			t.Fatalf("bit-identity broke at batch size %d", b)
		}
	}
}

// TestPaddingRowsDoNotLeak drives a ragged batch whose padded bucket
// sibling is a FULL batch of the same leading images: if padding leaked
// into real rows, the ragged run would differ from the full run's prefix.
func TestPaddingRowsDoNotLeak(t *testing.T) {
	def, err := netdef.Parse(diffNet)
	if err != nil {
		t.Fatal(err)
	}
	st := core.FPStrategies(1)[1]
	model, err := NewModel(def, ModelConfig{
		Buckets: DefaultBuckets(8),
		Planner: pinnedPlanner(st),
		Seed:    11,
	})
	if err != nil {
		t.Fatal(err)
	}
	full := randInputs(7, 8, model.InDims())
	fullOut, _ := model.InferBatch(0, full)
	for _, ragged := range []int{3, 5, 7} {
		raggedOut, bucket := model.InferBatch(0, full[:ragged])
		if bucket <= ragged {
			t.Fatalf("ragged batch %d did not pad (bucket %d)", ragged, bucket)
		}
		if len(raggedOut) != ragged {
			t.Fatalf("ragged batch %d returned %d outputs", ragged, len(raggedOut))
		}
		for i := 0; i < ragged; i++ {
			for j := range raggedOut[i] {
				if raggedOut[i][j] != fullOut[i][j] {
					t.Fatalf("ragged batch %d image %d logit %d: %v != full-batch %v (padding leaked)",
						ragged, i, j, raggedOut[i][j], fullOut[i][j])
				}
			}
		}
	}
}
