package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"text/tabwriter"

	"spgcnn/internal/ait"
	"spgcnn/internal/conv"
	"spgcnn/internal/machine"
	"spgcnn/internal/plan"
)

// ReportSchemaVersion stamps every drift report. Readers (spg-doctor,
// scripts/drift_check.sh) reject other versions instead of misreading.
const ReportSchemaVersion = 1

// Row is one (layer, phase) series of the agreement report.
type Row struct {
	Layer    string    `json:"layer"`
	Phase    string    `json:"phase"`
	Strategy string    `json:"strategy"`
	Spec     conv.Spec `json:"spec"`
	// Region is the series' Fig. 1 cell, Band its plan-cache sparsity
	// band, Sparsity the signal both were derived from.
	Region   int     `json:"region"`
	Band     int     `json:"band"`
	Sparsity float64 `json:"sparsity"`
	// Calls counts observed spans; Measured/Predicted are total seconds.
	Calls            int64   `json:"calls"`
	MeasuredSeconds  float64 `json:"measured_seconds"`
	PredictedSeconds float64 `json:"predicted_seconds"`
	// Agreement is predicted/measured: 1.0 = the model nailed it, < 1 =
	// the host runs slower than modeled, > 1 = faster. EWMA is the
	// smoothed instantaneous measured/predicted ratio (the alarm signal;
	// note the inverted sense vs Agreement).
	Agreement float64 `json:"agreement"`
	EWMA      float64 `json:"ewma_ratio"`
	// Drifts counts events fired on this series.
	Drifts int `json:"drifts"`
}

// RegionRow aggregates rows per Fig. 1 region — the design-space-shaped
// agreement table ROADMAP item 1 asks for.
type RegionRow struct {
	Region           int     `json:"region"`
	Series           int     `json:"series"`
	Calls            int64   `json:"calls"`
	MeasuredSeconds  float64 `json:"measured_seconds"`
	PredictedSeconds float64 `json:"predicted_seconds"`
	Agreement        float64 `json:"agreement"`
	Drifts           int     `json:"drifts"`
}

// Report is the schema-versioned drift/agreement artifact
// (results/drift_report.json).
type Report struct {
	Schema  int    `json:"schema"`
	Host    string `json:"host"`
	Workers int    `json:"workers"`
	// Detector configuration, for provenance.
	Threshold float64 `json:"threshold"`
	Window    int     `json:"window"`
	Alpha     float64 `json:"alpha"`
	Warmup    int     `json:"warmup"`

	Rows    []Row        `json:"rows"`
	Regions []RegionRow  `json:"regions"`
	Events  []DriftEvent `json:"events,omitempty"`
}

// Report snapshots the observatory into its artifact form: rows sorted by
// layer then phase, region aggregation attached, events included.
func (o *Observatory) Report() Report {
	o.mu.Lock()
	defer o.mu.Unlock()
	rep := Report{
		Schema:    ReportSchemaVersion,
		Host:      machine.HostInfo().Fingerprint(),
		Workers:   o.opts.Workers,
		Threshold: o.opts.Threshold,
		Window:    o.opts.Window,
		Alpha:     o.opts.Alpha,
		Warmup:    o.opts.Warmup,
		Events:    append([]DriftEvent(nil), o.events...),
	}
	for key, st := range o.streams {
		if st.rate <= 0 || st.obs == 0 { // unmodeled sentinel or never observed
			continue
		}
		li := o.layers[key.layer]
		classify := st.sparsity
		if key.phase == "fp" {
			classify = 0
		}
		row := Row{
			Layer: key.layer, Phase: key.phase, Strategy: st.strategy,
			Spec:     li.spec,
			Region:   int(ait.Classify(li.spec, classify)),
			Band:     plan.Band(st.sparsity),
			Sparsity: st.sparsity,
			Calls:    st.obs, MeasuredSeconds: st.measured, PredictedSeconds: st.predicted,
			EWMA: st.ewma, Drifts: st.drifts,
		}
		if st.measured > 0 {
			row.Agreement = st.predicted / st.measured
		}
		rep.Rows = append(rep.Rows, row)
	}
	sort.Slice(rep.Rows, func(i, j int) bool {
		if rep.Rows[i].Layer != rep.Rows[j].Layer {
			return rep.Rows[i].Layer < rep.Rows[j].Layer
		}
		return rep.Rows[i].Phase < rep.Rows[j].Phase
	})
	rep.Regions = regionRollup(rep.Rows)
	return rep
}

func regionRollup(rows []Row) []RegionRow {
	agg := make(map[int]*RegionRow)
	for _, r := range rows {
		rr := agg[r.Region]
		if rr == nil {
			rr = &RegionRow{Region: r.Region}
			agg[r.Region] = rr
		}
		rr.Series++
		rr.Calls += r.Calls
		rr.MeasuredSeconds += r.MeasuredSeconds
		rr.PredictedSeconds += r.PredictedSeconds
		rr.Drifts += r.Drifts
	}
	out := make([]RegionRow, 0, len(agg))
	for _, rr := range agg {
		if rr.MeasuredSeconds > 0 {
			rr.Agreement = rr.PredictedSeconds / rr.MeasuredSeconds
		}
		out = append(out, *rr)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Region < out[j].Region })
	return out
}

// WriteJSON writes the report as indented JSON.
func (rep Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// WriteFile writes the report to path atomically (sibling temp + rename).
func (rep Report) WriteFile(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	err = rep.WriteJSON(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// ReadReport decodes and validates a report.
func ReadReport(r io.Reader) (Report, error) {
	var rep Report
	if err := json.NewDecoder(r).Decode(&rep); err != nil {
		return Report{}, fmt.Errorf("obs: decoding report: %w", err)
	}
	if err := rep.Validate(); err != nil {
		return Report{}, err
	}
	return rep, nil
}

// ReadReportFile reads and validates the report at path.
func ReadReportFile(path string) (Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return Report{}, err
	}
	defer f.Close()
	return ReadReport(f)
}

// Validate checks the report's schema and invariants: known schema
// version, phases in {fp, bp}, regions in Fig. 1's six cells, bands
// within plan.BandCount, and finite non-negative statistics. This is the
// gate scripts/drift_check.sh holds the artifact to.
func (rep Report) Validate() error {
	if rep.Schema != ReportSchemaVersion {
		return fmt.Errorf("obs: report schema %d, want %d", rep.Schema, ReportSchemaVersion)
	}
	if rep.Workers < 1 {
		return fmt.Errorf("obs: report workers %d", rep.Workers)
	}
	finite := func(what string, v float64) error {
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			return fmt.Errorf("obs: report %s = %v", what, v)
		}
		return nil
	}
	for _, r := range rep.Rows {
		if r.Layer == "" || r.Strategy == "" {
			return fmt.Errorf("obs: report row with empty layer/strategy: %+v", r)
		}
		if r.Phase != "fp" && r.Phase != "bp" {
			return fmt.Errorf("obs: report row %s has phase %q", r.Layer, r.Phase)
		}
		if r.Region < int(ait.Region0) || r.Region > int(ait.Region5) {
			return fmt.Errorf("obs: report row %s/%s region %d", r.Layer, r.Phase, r.Region)
		}
		if r.Band < 0 || r.Band >= plan.BandCount {
			return fmt.Errorf("obs: report row %s/%s band %d", r.Layer, r.Phase, r.Band)
		}
		if err := r.Spec.Validate(); err != nil {
			return fmt.Errorf("obs: report row %s/%s spec: %w", r.Layer, r.Phase, err)
		}
		if r.Calls < 1 {
			return fmt.Errorf("obs: report row %s/%s with %d calls", r.Layer, r.Phase, r.Calls)
		}
		for _, c := range []struct {
			what string
			v    float64
		}{
			{"measured_seconds", r.MeasuredSeconds},
			{"predicted_seconds", r.PredictedSeconds},
			{"agreement", r.Agreement},
			{"ewma_ratio", r.EWMA},
		} {
			if err := finite(r.Layer+"/"+r.Phase+" "+c.what, c.v); err != nil {
				return err
			}
		}
		if r.Agreement == 0 {
			return fmt.Errorf("obs: report row %s/%s has zero agreement", r.Layer, r.Phase)
		}
	}
	for _, rr := range rep.Regions {
		if rr.Region < int(ait.Region0) || rr.Region > int(ait.Region5) {
			return fmt.Errorf("obs: report region row %d", rr.Region)
		}
		if err := finite(fmt.Sprintf("region %d agreement", rr.Region), rr.Agreement); err != nil {
			return err
		}
	}
	for _, ev := range rep.Events {
		if ev.Phase != "fp" && ev.Phase != "bp" {
			return fmt.Errorf("obs: event %s has phase %q", ev.Layer, ev.Phase)
		}
	}
	return nil
}

// TotalDrifts sums drift events across rows.
func (rep Report) TotalDrifts() int {
	n := 0
	for _, r := range rep.Rows {
		n += r.Drifts
	}
	return n
}

// Agreement returns the report-wide predicted/measured ratio (0 when
// nothing was measured).
func (rep Report) Agreement() float64 {
	var m, p float64
	for _, r := range rep.Rows {
		m += r.MeasuredSeconds
		p += r.PredictedSeconds
	}
	if m == 0 {
		return 0
	}
	return p / m
}

// Render writes the human-readable agreement report: the per-region
// Fig. 1 table, the per-series table, and the drift-event log. Shared by
// `spg-train -drift` and `spg-doctor`.
func (rep Report) Render(w io.Writer) {
	fmt.Fprintf(w, "drift report: host %s, %d workers, threshold %.2fx window %d alpha %.2f warmup %d\n",
		rep.Host, rep.Workers, rep.Threshold, rep.Window, rep.Alpha, rep.Warmup)
	fmt.Fprintf(w, "overall model-vs-measured agreement: %.3f (predicted/measured), %d drift events\n\n",
		rep.Agreement(), len(rep.Events))

	fmt.Fprintln(w, "agreement per Fig. 1 region:")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "region\tseries\tcalls\tmeasured\tpredicted\tagreement\tdrifts")
	for _, rr := range rep.Regions {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%.4fs\t%.4fs\t%.3f\t%d\n",
			ait.Region(rr.Region), rr.Series, rr.Calls,
			rr.MeasuredSeconds, rr.PredictedSeconds, rr.Agreement, rr.Drifts)
	}
	tw.Flush()

	fmt.Fprintln(w, "\nper-series agreement:")
	tw = tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "layer\tphase\tstrategy\tregion\tband\tcalls\tagreement\tewma\tdrifts")
	for _, r := range rep.Rows {
		fmt.Fprintf(tw, "%s\t%s\t%s\t%d\t%d\t%d\t%.3f\t%.3f\t%d\n",
			r.Layer, r.Phase, r.Strategy, r.Region, r.Band, r.Calls, r.Agreement, r.EWMA, r.Drifts)
	}
	tw.Flush()

	if len(rep.Events) > 0 {
		fmt.Fprintln(w, "\ndrift events:")
		for _, ev := range rep.Events {
			fmt.Fprintf(w, "  %s\n", ev)
		}
	}
}
