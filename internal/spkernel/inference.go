package spkernel

import (
	"spgcnn/internal/conv"
	"spgcnn/internal/tensor"
)

// Sparse-weights inference: the complementary direction the paper's
// related work ([42], Liu et al.) covers — exploiting sparsity in the
// *weights* (after pruning) rather than in the error gradients. The
// non-zero positions of a pruned model are known ahead of time, so the
// "code generation" here is a one-time compilation of the weight tensor
// into a tap list; forward propagation then executes only the surviving
// taps as row-level axpys. Applicable to inference only (training changes
// the weights every step), exactly as the paper notes.

// wtap is one surviving weight: its value and coordinates.
type wtap struct {
	f, c, ky, kx int
	v            float32
}

// InferenceKernel executes forward propagation with a compiled sparse
// weight tensor.
type InferenceKernel struct {
	spec conv.Spec
	taps []wtap
	nnz  int
}

// CompileWeights builds an inference kernel from w, keeping only non-zero
// taps. The returned kernel is immutable and safe for concurrent use.
func CompileWeights(s conv.Spec, w *tensor.Tensor) *InferenceKernel {
	s.MustValidate()
	conv.CheckWeights(s, w)
	k := &InferenceKernel{spec: s}
	for f := 0; f < s.Nf; f++ {
		for c := 0; c < s.Nc; c++ {
			for ky := 0; ky < s.Fy; ky++ {
				for kx := 0; kx < s.Fx; kx++ {
					v := w.At4(f, c, ky, kx)
					if v != 0 {
						k.taps = append(k.taps, wtap{f: f, c: c, ky: ky, kx: kx, v: v})
					}
				}
			}
		}
	}
	k.nnz = len(k.taps)
	return k
}

// Spec returns the convolution geometry.
func (k *InferenceKernel) Spec() conv.Spec { return k.spec }

// NNZ returns the number of surviving weight taps.
func (k *InferenceKernel) NNZ() int { return k.nnz }

// WeightSparsity returns the fraction of pruned (zero) weights.
func (k *InferenceKernel) WeightSparsity() float64 {
	total := k.spec.WeightSize()
	if total == 0 {
		return 0
	}
	return 1 - float64(k.nnz)/float64(total)
}

// Flops returns the useful flop count of one Forward: 2 per tap per
// output pixel.
func (k *InferenceKernel) Flops() int64 {
	return 2 * int64(k.nnz) * int64(k.spec.OutX()) * int64(k.spec.OutY())
}

// Forward computes Eq. 2 executing only the non-zero taps: for each tap,
// one shifted row-axpy per output row. out is overwritten.
func (k *InferenceKernel) Forward(out, in *tensor.Tensor) {
	s := k.spec
	conv.CheckInput(s, in)
	conv.CheckOutput(s, out)
	out.Zero()
	oy, ox := s.OutY(), s.OutX()
	for i := range k.taps {
		t := &k.taps[i]
		for y := 0; y < oy; y++ {
			dst := out.Row3(t.f, y)
			src := in.Row3(t.c, y*s.Sy+t.ky)
			if s.Sx == 1 {
				sv := src[t.kx:][:ox]
				v := t.v
				x := 0
				for ; x+4 <= ox; x += 4 {
					dst[x] += v * sv[x]
					dst[x+1] += v * sv[x+1]
					dst[x+2] += v * sv[x+2]
					dst[x+3] += v * sv[x+3]
				}
				for ; x < ox; x++ {
					dst[x] += v * sv[x]
				}
			} else {
				for x := 0; x < ox; x++ {
					dst[x] += t.v * src[x*s.Sx+t.kx]
				}
			}
		}
	}
}
