package data

import (
	"math"
	"testing"

	"spgcnn/internal/tensor"
)

func TestAugmentDeterministic(t *testing.T) {
	aug := Augment(MNIST(50), 2, 99)
	a := tensor.New(aug.Dims()...)
	b := tensor.New(aug.Dims()...)
	aug.Image(7, a)
	aug.Image(7, b)
	if tensor.MaxAbsDiff(a, b) != 0 {
		t.Fatal("augmentation not deterministic per index")
	}
}

func TestAugmentPreservesLabelsAndShape(t *testing.T) {
	base := CIFAR(40)
	aug := Augment(base, 3, 1)
	if aug.Len() != 40 || aug.Classes() != 10 {
		t.Fatal("metadata changed")
	}
	for i := 0; i < 40; i++ {
		if aug.Label(i) != base.Label(i) {
			t.Fatal("labels changed")
		}
	}
}

func TestAugmentChangesSomeImages(t *testing.T) {
	base := MNIST(64)
	aug := Augment(base, 2, 7)
	raw := tensor.New(base.Dims()...)
	mod := tensor.New(base.Dims()...)
	changed := 0
	for i := 0; i < 64; i++ {
		base.Image(i, raw)
		aug.Image(i, mod)
		if tensor.MaxAbsDiff(raw, mod) > 1e-6 {
			changed++
		}
	}
	// Flips hit ~half; shifts most of the rest — expect a clear majority
	// modified but determinism means a fixed count.
	if changed < 32 {
		t.Fatalf("only %d/64 images modified by augmentation", changed)
	}
}

func TestAugmentShiftMovesMass(t *testing.T) {
	// With zero noise and a single blob, the augmented image's center of
	// mass moves by roughly the shift; verify mass is mostly preserved
	// (border clipping loses a little).
	base := New(Config{Name: "t", Examples: 8, Classes: 2, Channels: 1,
		Height: 24, Width: 24, Seed: 5, BlobsPerClass: 1, Noise: 1e-9})
	aug := Augment(base, 4, 11)
	raw := tensor.New(base.Dims()...)
	mod := tensor.New(base.Dims()...)
	for i := 0; i < 8; i++ {
		base.Image(i, raw)
		aug.Image(i, mod)
		var mRaw, mMod float64
		for j := range raw.Data {
			mRaw += math.Abs(float64(raw.Data[j]))
			mMod += math.Abs(float64(mod.Data[j]))
		}
		if mMod < 0.5*mRaw {
			t.Fatalf("example %d lost most of its mass: %v -> %v", i, mRaw, mMod)
		}
	}
}

func TestAugmentTrainsThroughDatasetInterface(t *testing.T) {
	// Augmented must satisfy the nn.Dataset shape used by the trainer; a
	// compile-time style check via a tiny interface assertion.
	var ds interface {
		Len() int
		Classes() int
		Label(int) int
		Image(int, *tensor.Tensor)
	} = Augment(MNIST(8), 1, 1)
	img := tensor.New(1, 28, 28)
	ds.Image(0, img)
	if ds.Len() != 8 {
		t.Fatal("interface adaptation broken")
	}
}

func TestAugmentNegativeShiftPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative shift accepted")
		}
	}()
	Augment(MNIST(4), -1, 0)
}
