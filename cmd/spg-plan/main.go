// spg-plan characterizes a convolution: its arithmetic intensity, the AIT
// lost to unfolding, its Fig. 1 region, the stencil generator's register
// tile, and what the spg-CNN scheduler measures and picks for it on this
// host — the paper's §3 analysis as a command.
//
// Usage:
//
//	spg-plan -n 36 -nf 64 -nc 3 -f 5 -s 1
//	spg-plan -n 64 -nf 16 -nc 16 -f 11 -s 1 -sparsity 0.9 -tune
package main

import (
	"flag"
	"fmt"
	"os"

	"spgcnn"
	"spgcnn/internal/ait"
	"spgcnn/internal/conv"
	"spgcnn/internal/core"
	"spgcnn/internal/machine"
	"spgcnn/internal/stencil"
)

func main() {
	var (
		n        = flag.Int("n", 36, "input spatial size (Nx = Ny)")
		nf       = flag.Int("nf", 64, "output features")
		nc       = flag.Int("nc", 3, "input channels")
		f        = flag.Int("f", 5, "kernel size (Fx = Fy)")
		s        = flag.Int("s", 1, "stride")
		sparsity = flag.Float64("sparsity", 0.85, "assumed BP error sparsity")
		tune     = flag.Bool("tune", false, "also run the scheduler's measurement pass on this host")
		workers  = flag.Int("workers", 0, "worker cores for -tune (0 = GOMAXPROCS)")
	)
	flag.Parse()

	spec := conv.Square(*n, *nf, *nc, *f, *s)
	if err := spec.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "spg-plan: %v\n", err)
		os.Exit(1)
	}
	a := spgcnn.Analyze(spec)
	fmt.Printf("convolution %s\n", spec)
	fmt.Printf("  flops (FP)          %d\n", spec.FlopsFP())
	fmt.Printf("  intrinsic AIT       %.1f\n", a.IntrinsicAIT)
	fmt.Printf("  unfold+GEMM AIT     %.1f  (r = %.3f: unfolding keeps %.1f%% of the intensity)\n",
		a.UnfoldAIT, a.Ratio, a.Ratio*100)
	fmt.Printf("  region (dense)      %v\n", a.DenseRegion)
	fmt.Printf("  region (%.0f%% sparse) %v\n", *sparsity*100, spgcnn.Classify(spec, *sparsity))
	p := spgcnn.Classify(spec, *sparsity).Props()
	fmt.Printf("  prescribed          %v\n", p.Recommendations)

	plan := stencil.ChoosePlan(spec)
	fmt.Printf("stencil plan          %v\n", plan)

	m := machine.Paper()
	fmt.Printf("modeled on the paper's 16-core Xeon (GFlops/core at p=16):\n")
	fmt.Printf("  Parallel-GEMM (FP)  %.1f\n", m.ParallelGEMM(spec, ait.FP, 16))
	fmt.Printf("  GEMM-in-Parallel    %.1f\n", m.GEMMInParallel(spec, ait.FP, 16))
	fmt.Printf("  Stencil-Kernel      %.1f\n", m.Stencil(spec, 16))
	fmt.Printf("  Sparse BP goodput   %.1f (at %.0f%% sparsity)\n",
		m.SparseGoodput(spec, *sparsity, 16), *sparsity*100)

	if *tune {
		w := *workers
		if w < 1 {
			w = 1
		}
		fmt.Printf("measured on this host (%d workers):\n", w)
		ctx := spgcnn.NewCtx(w)
		r := spgcnn.NewRNG(1)
		var ins, eos []*spgcnn.Tensor
		for i := 0; i < w; i++ {
			in := conv.RandInput(r, spec)
			ins = append(ins, in)
			eos = append(eos, conv.RandOutputError(r, spec, *sparsity))
		}
		wts := conv.RandWeights(r, spec)
		fpSel := core.ChooseFP(core.FPStrategies(w), spec, ctx, ins, wts, core.TuneOptions{})
		for _, tm := range fpSel.Timings {
			fmt.Printf("  FP %-18s %8.3f ms\n", tm.Strategy.Name, tm.Seconds*1e3)
		}
		fmt.Printf("  FP chosen: %s\n", fpSel.Best().Strategy.Name)
		bpSel := core.ChooseBP(core.BPStrategies(w), spec, ctx, eos, ins, wts, core.TuneOptions{})
		for _, tm := range bpSel.Timings {
			fmt.Printf("  BP %-18s %8.3f ms\n", tm.Strategy.Name, tm.Seconds*1e3)
		}
		fmt.Printf("  BP chosen: %s\n", bpSel.Best().Strategy.Name)
		st := ctx.Arena().Stats()
		gets := st.Gets
		if gets == 0 {
			gets = 1
		}
		fmt.Printf("  arena: %d scratch acquisitions, %.1f%% served from free lists\n",
			st.Gets, 100*float64(st.Hits)/float64(gets))
	}
}
