package bench

import (
	"fmt"

	"spgcnn/internal/blockedconv"
	"spgcnn/internal/conv"
	"spgcnn/internal/exec"
	"spgcnn/internal/rng"
	"spgcnn/internal/spweight"
	"spgcnn/internal/tensor"
	"spgcnn/internal/unfoldgemm"
)

// RunBlockedConv measures the channel-blocked layout engine and the
// sparse-weight forward kernel (DESIGN.md §10) on this host:
//
//   - the blocked (NCHW8) direct engine against the prepacked unfold+GEMM
//     engine over a training batch, converting activations at the batch
//     boundary — the apples-to-apples configuration the planner ranks;
//   - the same kernel with NCHW8-resident activations (a blocked pipeline
//     feeding ForwardBlockedBatch), isolating the layout-conversion tax;
//   - the sparse-weight CSR kernel against dense unfold+GEMM across weight
//     sparsities, with the goodput (surviving-weight flops per second)
//     that zero-weight skipping actually delivers.
//
// All numbers are wall-clock on this host (KindMeasured): baseline checks
// are structural only.
func RunBlockedConv(o Options) []Table {
	reps := 3
	batch := 8
	var maxFlops int64 = 30e6
	if o.full() {
		reps = 5
		maxFlops = 500e6
	}
	r := rng.New(0xB10C)

	blocked := Table{
		Title: fmt.Sprintf("Convolution FP over a %d-image batch: blocked (NCHW8) engine vs prepacked unfold+GEMM", batch),
		Note: "blocked converts activations at the batch boundary and runs the micro-kernel " +
			"directly on channel blocks (no im2col copy, no weight repacking per call); " +
			"block-weight hits/misses are probe counts over the timed run — one miss per " +
			"weight version is the steady state",
		Columns: []string{"ID", "Spec (scaled)", "Unfold ms", "Packed ms", "Blocked ms",
			"vs unfold", "vs packed", "Blockw hits", "Blockw misses"},
	}
	native := Table{
		Title: "Blocked FP with NCHW8-resident activations: the layout-conversion tax isolated",
		Note: "native keeps activations blocked between layers (ForwardBlockedBatch), removing " +
			"the boundary conversions the planner's model charges the blocked candidate; the " +
			"ratio can dip below 1 when the batch's resident blocked tensors overflow cache " +
			"while the convert path re-reads one hot scratch buffer",
		Columns: []string{"ID", "Spec (scaled)", "Convert+compute ms", "Native ms", "Native speedup"},
	}
	// Table 1's shapes plus two channel-rich deep-layer shapes: channel
	// blocking pays exactly when Nc and Nf fill the 8-wide blocks, which
	// the early-layer Table 1 geometries (few input channels) do not.
	type shape struct {
		ID   string
		Spec conv.Spec
	}
	shapes := make([]shape, 0, 8)
	for _, row := range Table1() {
		shapes = append(shapes, shape{fmt.Sprintf("%d", row.ID), row.Spec})
	}
	shapes = append(shapes,
		shape{"c64", conv.Square(16, 64, 64, 3, 1)},
		shape{"c128", conv.Square(8, 128, 128, 3, 1)})
	for _, row := range shapes {
		s := ScaledForHost(row.Spec, maxFlops)
		w := conv.RandWeights(r, s)
		w.Bump() // trainer-style version tracking enables the block-weight cache
		ins := make([]*tensor.Tensor, batch)
		outs := make([]*tensor.Tensor, batch)
		bins := make([]*tensor.Tensor, batch)
		bouts := make([]*tensor.Tensor, batch)
		for i := range ins {
			ins[i] = conv.RandInput(r, s)
			outs[i] = conv.NewOutput(s)
			bins[i] = tensor.ToBlocked(ins[i])
			bouts[i] = conv.NewBlockedOutput(s)
		}
		base := unfoldgemm.New(s, 1)
		packed := unfoldgemm.NewPacked(s, 1)
		blk := blockedconv.New(s)
		ctx := exec.New(1)

		tBase := minTime(reps, func() { base.ForwardBatch(ctx, outs, ins, w) })
		tPacked := minTime(reps, func() { packed.ForwardBatch(ctx, outs, ins, w) })
		tBlocked := minTime(reps, func() { blk.ForwardBatch(ctx, outs, ins, w) })
		hit, _ := ctx.Probe().SpanStats("blockw/" + s.String() + "/hit")
		miss, _ := ctx.Probe().SpanStats("blockw/" + s.String() + "/miss")
		blocked.AddRow(row.ID, s.String(), tBase*1e3, tPacked*1e3, tBlocked*1e3,
			tBase/tBlocked, tPacked/tBlocked, hit.Calls, miss.Calls)

		tNative := minTime(reps, func() { blk.ForwardBlockedBatch(ctx, bouts, bins, w) })
		native.AddRow(row.ID, s.String(), tBlocked*1e3, tNative*1e3, tBlocked/tNative)
	}

	sparse := Table{
		Title: fmt.Sprintf("Sparse-weight (CSR) FP over a %d-image batch vs dense unfold+GEMM, by weight sparsity", batch),
		Note: "the dense engine's time does not depend on weight content; the speedup is what " +
			"zero-weight skipping buys a pruned layer, and goodput counts only surviving-weight flops",
		Columns: []string{"Weight sparsity", "Dense ms", "CSR ms", "Speedup", "Goodput GFlops"},
	}
	ss := ScaledForHost(conv.Square(36, 64, 16, 5, 1), maxFlops)
	sins := make([]*tensor.Tensor, batch)
	souts := make([]*tensor.Tensor, batch)
	for i := range sins {
		sins[i] = conv.RandInput(r, ss)
		souts[i] = conv.NewOutput(ss)
	}
	dense := unfoldgemm.New(ss, 1)
	csr := spweight.New(ss)
	ctx := exec.New(1)
	for _, ws := range []float64{0, 0.5, 0.8, 0.95} {
		w := conv.RandWeights(r, ss)
		if ws > 0 {
			w.Sparsify(r, ws)
		}
		w.Bump()
		tDense := minTime(reps, func() { dense.ForwardBatch(ctx, souts, sins, w) })
		tCSR := minTime(reps, func() { csr.ForwardBatch(ctx, souts, sins, w) })
		useful := float64(ss.FlopsFP()) * (1 - w.Sparsity()) * float64(batch)
		sparse.AddRow(fmt.Sprintf("%.0f%%", ws*100), tDense*1e3, tCSR*1e3,
			tDense/tCSR, useful/tCSR/1e9)
	}
	return []Table{blocked, native, sparse}
}
