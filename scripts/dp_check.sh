#!/bin/sh
# dp_check: end-to-end gate for the scale-out data-parallel reduction
# subsystem.
#
#   - the pinned equivalence tests run first: the chunked ring schedule
#     must stay bit-identical to the flat reference, and the sparse
#     exchange must fall back to (bit-identical) dense rounds when the
#     delta density saturates;
#   - a training run with an injected straggler and -mitigate must arm
#     the injection, report barrier-wait attribution and engage the
#     re-chunker (the per-epoch sync line carries a "rechunks" count);
#   - the same run without -mitigate must never re-chunk — the
#     false-positive gate;
#   - the committed quick-scale BENCH_scaleout.json baseline must still
#     match: ring/tree beating flat, CT-CSR wire-byte reduction at low
#     density, and the mitigation goodput recovery all sign-gate there.
#
# Usage: scripts/dp_check.sh
set -eu

cd "$(dirname "$0")/.."

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT INT TERM

go test -run 'TestRingBitIdenticalToFlat|TestSparseAutoFallsBackDenseBitIdentical|TestFlatDriftRegression64Replicas' \
	./internal/dataparallel

go build -o "$tmp/spg-train" ./cmd/spg-train
go build -o "$tmp/spg-bench" ./cmd/spg-bench

# Mitigated run: the injected straggler must trip the re-chunker.
mitigated="$("$tmp/spg-train" -net mnist -epochs 2 -examples 96 -batch 16 \
	-replicas 4 -allreduce ring \
	-inject-slow-replica 1 -inject-slow-ms 2.0 -mitigate)"
echo "$mitigated" | grep -q "data-parallel: injecting straggler: replica 1" || {
	echo "dp_check: straggler injection did not arm:" >&2
	echo "$mitigated" >&2
	exit 1
}
echo "$mitigated" | grep -q "straggler mitigation on" || {
	echo "dp_check: -mitigate did not announce itself:" >&2
	echo "$mitigated" >&2
	exit 1
}
echo "$mitigated" | grep -q "rechunks" || {
	echo "dp_check: injected straggler never engaged the re-chunker:" >&2
	echo "$mitigated" >&2
	exit 1
}

# Control run: same straggler, no mitigation. Any re-chunk is a bug.
control="$("$tmp/spg-train" -net mnist -epochs 2 -examples 96 -batch 16 \
	-replicas 4 -allreduce ring \
	-inject-slow-replica 1 -inject-slow-ms 2.0)"
if echo "$control" | grep -q "rechunks"; then
	echo "dp_check: re-chunker ran without -mitigate:" >&2
	echo "$control" >&2
	exit 1
fi

# The committed scale-out baseline gates the performance claims.
"$tmp/spg-bench" -exp scaleout -scale quick -json -out "$tmp" \
	-baseline baselines -tolerance 0.05

echo "dp_check: ring bit-identity pinned; straggler mitigation engaged (control silent); scaleout baseline matches"
