package gemm

import (
	"testing"

	"spgcnn/internal/rng"
	"spgcnn/internal/tensor"
)

func TestPackBMatchesNaive(t *testing.T) {
	r := rng.New(31)
	shapes := []struct{ m, k, n int }{
		{1, 1, 1}, {4, 7, 8}, {5, 3, 7}, {13, 300, 9}, {64, 64, 64},
		{65, 385, 513}, {3, 9, 515}, {37, 41, 43}, {8, 1, 9},
	}
	for _, s := range shapes {
		a := randMatrix(r, s.m, s.k)
		b := randMatrix(r, s.k, s.n)
		want := NewMatrix(s.m, s.n)
		Naive(want, a, b)

		p := PackB(b, nil)
		got := NewMatrix(s.m, s.n)
		MulPacked(got, a, p)
		if !matricesClose(got, want, 1e-3) {
			t.Fatalf("MulPacked differs from Naive for %dx%dx%d", s.m, s.k, s.n)
		}
		// Accumulating twice doubles the result.
		MulPackedAccum(got, a, p)
		for i := range want.Data {
			want.Data[i] *= 2
		}
		if !matricesClose(got, want, 1e-3) {
			t.Fatalf("MulPackedAccum wrong for %dx%dx%d", s.m, s.k, s.n)
		}
		p.Release()
	}
}

func TestPackBTransMatchesMulTransB(t *testing.T) {
	// The packed path must be BIT-identical to the dotRows8 path: both keep
	// one k-ordered accumulator per output element.
	r := rng.New(32)
	for _, s := range []struct{ m, k, n int }{{9, 33, 17}, {64, 576, 128}, {5, 100, 1}} {
		a := randMatrix(r, s.m, s.k)
		src := randMatrix(r, s.n, s.k) // C = A·srcᵀ
		want := NewMatrix(s.m, s.n)
		mulTransBRange(want, a, src, 0, s.m)

		p := PackBTrans(src, nil)
		got := NewMatrix(s.m, s.n)
		MulPacked(got, a, p)
		p.Release()
		for i := range want.Data {
			if want.Data[i] != got.Data[i] {
				t.Fatalf("packed path not bit-identical to dot path at %d: %v != %v",
					i, got.Data[i], want.Data[i])
			}
		}
	}
}

func TestPackedPlanArenaAllocator(t *testing.T) {
	// The Allocator seam: panels drawn from a tensor.Arena are returned to
	// it on Release and reused by the next pack.
	ar := tensor.NewArena()
	r := rng.New(33)
	b := randMatrix(r, 40, 24)
	p := PackB(b, ar)
	if p.Bytes() != 4*40*24 {
		t.Fatalf("Bytes = %d", p.Bytes())
	}
	p.Release()
	p2 := PackB(b, ar)
	defer p2.Release()
	st := ar.Stats()
	if st.Hits == 0 {
		t.Fatal("second pack did not reuse arena storage")
	}
}

func TestParallelMulPacked(t *testing.T) {
	r := rng.New(34)
	for _, workers := range []int{1, 2, 3, 7} {
		a := randMatrix(r, 37, 60) // prime M: ragged split across workers
		b := randMatrix(r, 60, 53)
		want := NewMatrix(37, 53)
		Naive(want, a, b)
		p := PackB(b, nil)
		got := NewMatrix(37, 53)
		ParallelMulPacked(got, a, p, workers)
		p.Release()
		if !matricesClose(got, want, 1e-3) {
			t.Fatalf("ParallelMulPacked wrong for workers=%d", workers)
		}
	}
}

func TestParallelPrimeRows(t *testing.T) {
	// Regression for the static-split tail imbalance: prime row counts must
	// divide across workers without dropping or double-computing rows, on
	// both the blocked (small) and packed (large) parallel paths.
	r := rng.New(35)
	for _, s := range []struct{ m, k, n int }{{101, 30, 40}, {37, 400, 401}} {
		a := randMatrix(r, s.m, s.k)
		b := randMatrix(r, s.k, s.n)
		want := NewMatrix(s.m, s.n)
		Naive(want, a, b)
		for _, workers := range []int{2, 3, 5, 8} {
			got := NewMatrix(s.m, s.n)
			Parallel(got, a, b, workers)
			if !matricesClose(got, want, 1e-3) {
				t.Fatalf("Parallel %dx%dx%d workers=%d wrong", s.m, s.k, s.n, workers)
			}
		}
	}
}

// BenchmarkGemmPackedReuse measures the packed-plan amortization: one PackB
// against the batch-sized stream of MulPacked calls that reuse it, versus
// repacking inside every call (Serial). The gap is the per-call pack cost
// the plan hoists out.
func BenchmarkGemmPackedReuse(b *testing.B) {
	r := rng.New(36)
	const m, k, n = 64, 576, 1024 // CIFAR layer-0 FP GEMM geometry
	a := randMatrix(r, m, k)
	bm := randMatrix(r, k, n)
	c := NewMatrix(m, n)
	p := PackB(bm, nil)
	defer p.Release()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MulPacked(c, a, p)
	}
	b.ReportMetric(float64(Flops(m, n, k))*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFlops")
}

// BenchmarkGemmPackEveryCall is the unamortized baseline for
// BenchmarkGemmPackedReuse: identical GEMM, panels repacked per call.
func BenchmarkGemmPackEveryCall(b *testing.B) {
	r := rng.New(36)
	const m, k, n = 64, 576, 1024
	a := randMatrix(r, m, k)
	bm := randMatrix(r, k, n)
	c := NewMatrix(m, n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		PackedSerial(c, a, bm)
	}
	b.ReportMetric(float64(Flops(m, n, k))*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFlops")
}
