package nn

import (
	"testing"

	"spgcnn/internal/rng"
	"spgcnn/internal/tensor"
)

// TestResidualTapAdd checks the Tap/Add pair around a ReLU: forward must
// compute relu(x) + x and backward must route the sum's gradient down
// both paths (2·g where x > 0, 1·g where x < 0).
func TestResidualTapAdd(t *testing.T) {
	dims := []int{2, 3, 3}
	tap := NewTap("tap", dims)
	net := NewNetwork(tap, NewReLU("relu", dims, 1), NewAdd("add", dims, tap))

	in := tensor.New(dims...)
	r := rng.New(7)
	in.FillNormal(r, 0, 1)
	out := net.Forward([]*tensor.Tensor{in})[0]
	for j, x := range in.Data {
		want := x
		if x > 0 {
			want += x
		}
		if out.Data[j] != want {
			t.Fatalf("forward[%d] = %v, want %v (x=%v)", j, out.Data[j], want, x)
		}
	}

	g := tensor.New(dims...)
	g.FillNormal(r, 0, 1)
	net.Backward([]*tensor.Tensor{g}, []*tensor.Tensor{in})
	// The network's input gradient is the first layer's eis — re-run
	// backward through the layers manually to fetch it: grads[0] is not
	// exported, so check via a second pass on a fresh identical stack.
	tap2 := NewTap("tap", dims)
	relu := NewReLU("relu", dims, 1)
	add := NewAdd("add", dims, tap2)
	a0, a1, a2 := tensor.New(dims...), tensor.New(dims...), tensor.New(dims...)
	tap2.Forward([]*tensor.Tensor{a0}, []*tensor.Tensor{in})
	relu.Forward([]*tensor.Tensor{a1}, []*tensor.Tensor{a0})
	add.Forward([]*tensor.Tensor{a2}, []*tensor.Tensor{a1})
	e2, e1, e0 := tensor.New(dims...), tensor.New(dims...), tensor.New(dims...)
	add.Backward([]*tensor.Tensor{e2}, []*tensor.Tensor{g}, []*tensor.Tensor{a1})
	relu.Backward([]*tensor.Tensor{e1}, []*tensor.Tensor{e2}, []*tensor.Tensor{a0})
	tap2.Backward([]*tensor.Tensor{e0}, []*tensor.Tensor{e1}, []*tensor.Tensor{in})
	for j, x := range in.Data {
		want := g.Data[j]
		if x > 0 {
			want *= 2
		}
		if e0.Data[j] != want {
			t.Fatalf("backward[%d] = %v, want %v (x=%v)", j, e0.Data[j], want, x)
		}
	}
}

// TestAddShapeMismatchPanics pins the constructor check.
func TestAddShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewAdd with mismatched element counts did not panic")
		}
	}()
	NewAdd("add", []int{2, 2}, NewTap("tap", []int{3, 3}))
}
