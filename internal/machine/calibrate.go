package machine

import (
	"time"

	"spgcnn/internal/gemm"
	"spgcnn/internal/par"
	"spgcnn/internal/rng"
)

// Host calibration: measure this machine's achievable single-core compute
// rate and streaming bandwidth and return a Machine model for it, so the
// paper's figures can be regenerated under the host's own roofline
// (`spg-bench -machine host`). This is a quick, deterministic probe — a
// few hundred milliseconds — not a rigorous microbenchmark suite.

// CalibrateHost measures the host and returns a calibrated model.
func CalibrateHost() Machine {
	peak := measureComputeGFlops()
	stream := measureStreamGBs()
	cores := par.MaxWorkers()
	return Machine{
		Cores:             cores,
		PeakGFlopsPerCore: peak,
		// The roofline knee scales with the compute/bandwidth balance:
		// knee = AIT at which streaming at `stream` GB/s sustains half of
		// peak, i.e. 0.5·peak GFlops needs (0.5·peak·4/knee) GB/s.
		HalfPerfAIT: 0.5 * peak * 4 / stream * 4,
		// Shared bandwidth: assume the measured single-core stream rate
		// saturates at ~4 concurrent streams (typical client parts).
		SharedBandwidthGBs:   stream * 4,
		StencilLoadCost:      3.0,
		TransformGBsPerCore:  stream / 2, // strided copies run below peak stream
		SparseAxpyEfficiency: 0.55,
	}
}

// measureComputeGFlops times a cache-resident register-tiled GEMM — the
// closest thing to this implementation's attainable peak.
func measureComputeGFlops() float64 {
	const n = 160 // ~100 KiB per operand: L2-resident
	r := rng.New(1)
	a := gemm.NewMatrix(n, n)
	b := gemm.NewMatrix(n, n)
	c := gemm.NewMatrix(n, n)
	for i := range a.Data {
		a.Data[i] = r.Float32()
		b.Data[i] = r.Float32()
	}
	gemm.Serial(c, a, b) // warm-up
	best := 0.0
	for rep := 0; rep < 3; rep++ {
		start := time.Now()
		gemm.Serial(c, a, b)
		el := time.Since(start).Seconds()
		if rep == 0 || el < best {
			best = el
		}
	}
	return float64(gemm.Flops(n, n, n)) / best / 1e9
}

// measureStreamGBs times a large copy (read + write traffic).
func measureStreamGBs() float64 {
	const n = 8 << 20 // 32 MiB src + dst: beyond LLC on most parts
	src := make([]float32, n)
	dst := make([]float32, n)
	for i := range src {
		src[i] = float32(i)
	}
	copy(dst, src) // warm-up / fault pages
	best := 0.0
	for rep := 0; rep < 3; rep++ {
		start := time.Now()
		copy(dst, src)
		el := time.Since(start).Seconds()
		if rep == 0 || el < best {
			best = el
		}
	}
	return float64(n) * 8 / best / 1e9 // 4 B read + 4 B written per element
}
