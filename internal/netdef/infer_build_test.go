package netdef

import (
	"testing"

	"spgcnn/internal/core"
	"spgcnn/internal/nn"
	"spgcnn/internal/rng"
	"spgcnn/internal/tensor"
)

const inferTestNet = `
name: "tiny"
input { channels: 1 height: 12 width: 12 }
layer { name: "conv0" type: "conv" features: 4 kernel: 3 stride: 1 }
layer { name: "relu0" type: "relu" }
layer { name: "drop0" type: "dropout" rate: 0.5 }
layer { name: "fc0" type: "fc" outputs: 5 }
`

func randBatch(seed uint64, n, c, h, w int) []*tensor.Tensor {
	r := rng.New(seed)
	out := make([]*tensor.Tensor, n)
	for i := range out {
		t := tensor.New(c, h, w)
		t.FillNormal(r, 0, 1)
		out[i] = t
	}
	return out
}

// TestInferenceBuildSharesWeightsAndMatchesTraining pins the serving
// contract: an inference build with parameters ALIASED to a training
// network computes bit-identical logits (same fixed strategy on both
// sides — engines are only ULP-comparable across strategies), runs
// dropout as identity, tracks later weight updates without re-sharing,
// and refuses Backward.
func TestInferenceBuildSharesWeightsAndMatchesTraining(t *testing.T) {
	def, err := Parse(inferTestNet)
	if err != nil {
		t.Fatal(err)
	}
	st := core.FPStrategies(1)[1] // gemm-in-parallel
	train, err := Build(def, BuildOptions{Workers: 1, FixedStrategy: &st, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	infer, err := Build(def, BuildOptions{Workers: 1, FixedStrategy: &st, Seed: 99, Inference: true})
	if err != nil {
		t.Fatal(err)
	}
	if !infer.Inference() {
		t.Fatal("inference build not marked forward-only")
	}
	if err := infer.ShareParameters(train); err != nil {
		t.Fatal(err)
	}
	// Compare against the training network in eval mode — its dropout
	// would otherwise mask activations stochastically.
	for _, l := range train.Layers() {
		if d, ok := l.(*nn.Dropout); ok {
			d.SetTraining(false)
		}
	}

	ins := randBatch(3, 4, 1, 12, 12)
	want := append([]float32(nil), flatten(train.Forward(ins))...)
	got := flatten(infer.Forward(ins))
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("logit %d: inference %v != training %v (bit-identity)", i, got[i], want[i])
		}
	}

	// Aliased parameters follow training-side updates with no re-share.
	train.Parameters()[0].Tensor.Data[0] += 1
	train.Parameters()[0].Tensor.Bump()
	want2 := append([]float32(nil), flatten(train.Forward(ins))...)
	got2 := flatten(infer.Forward(ins))
	for i := range want2 {
		if got2[i] != want2[i] {
			t.Fatalf("after update, logit %d: inference %v != training %v", i, got2[i], want2[i])
		}
	}

	defer func() {
		if recover() == nil {
			t.Fatal("Backward on an inference network should panic")
		}
	}()
	infer.Backward(ins, ins)
}

func flatten(ts []*tensor.Tensor) []float32 {
	var out []float32
	for _, t := range ts {
		out = append(out, t.Data...)
	}
	return out
}

// TestInferenceBucketsPlanPerBatchSize checks the planner-driven bucket
// path: a bucketed inference conv plans the smallest bucket that fits each
// batch and deploys it for subsequent batches.
func TestInferenceBucketsPlanPerBatchSize(t *testing.T) {
	def, err := Parse(inferTestNet)
	if err != nil {
		t.Fatal(err)
	}
	net, err := Build(def, BuildOptions{Workers: 1, Seed: 7, Inference: true, InferBuckets: []int{1, 2, 4}})
	if err != nil {
		t.Fatal(err)
	}
	net.Forward(randBatch(1, 3, 1, 12, 12)) // ragged: lands in bucket 4
	net.Forward(randBatch(2, 1, 1, 12, 12))
	conv0 := net.ConvLayers()[0]
	got := conv0.PlannedBuckets()
	if len(got) != 2 {
		t.Fatalf("planned buckets %v, want exactly {1, 4}", got)
	}
	for _, bk := range []int{1, 4} {
		if got[bk] == "" {
			t.Errorf("bucket %d has no deployed strategy (have %v)", bk, got)
		}
	}
}
