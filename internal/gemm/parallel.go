package gemm

import "spgcnn/internal/par"

// Parallel computes C = A·B with the M dimension (rows of C) statically
// partitioned across workers, the way MKL/OpenBLAS parallelize a GEMM.
//
// This is the paper's "Parallel-GEMM" baseline. Its defining property
// (§3.2) is that worker w computes rows [w·M/P, (w+1)·M/P) of C, which
// requires that slice of A and of C but the ENTIRE B matrix, so the
// arithmetic intensity per core falls as P grows:
//
//	AIT/core = (2·M·N·K/P) / (M·K/P + K·N + M·N/P)
//
// For the square case this is the paper's n/2 at P=2 versus 2n/3 serial.
// Workers <= 1 degrades to Serial.
func Parallel(c, a, b *Matrix, workers int) {
	checkMul(c, a, b)
	c.Zero()
	ParallelAccum(c, a, b, workers)
}

// ParallelAccum computes C += A·B with rows of C divided across workers.
// Large operands pack B's panels ONCE (read-only, shared by every worker)
// and claim rows through par.ForDynamic's guided chunking, so the pack cost
// is paid once per call instead of once per worker and ragged tails cannot
// idle a core.
func ParallelAccum(c, a, b *Matrix, workers int) {
	checkMul(c, a, b)
	if usePacked(a.Rows, a.Cols, b.Cols) {
		buf := bufPool.Get().(*packBuf)
		panels := buf.panels(b.Rows * padUp(b.Cols))
		packPanels(panels, b)
		par.ForDynamic(a.Rows, workers, 1, func(lo, hi int) {
			packedMulRange(c, a, panels, b.Cols, lo, hi, true)
		})
		bufPool.Put(buf)
		return
	}
	par.ForChunked(a.Rows, workers, func(lo, hi int) {
		serialRange(c, a, b, lo, hi)
	})
}

// Batch runs one independent single-threaded GEMM per (c, a, b) triple,
// spreading the instances across workers. This is the execution primitive
// of GEMM-in-Parallel (§4.1): inputs are NOT divided across cores, so the
// per-core AIT — and therefore per-core performance — stays at the
// single-GEMM level no matter how many cores participate.
//
// All three slices must have equal length; instance i computes
// cs[i] = as[i]·bs[i].
func Batch(cs, as, bs []*Matrix, workers int) {
	if len(cs) != len(as) || len(cs) != len(bs) {
		panic("gemm: Batch slice length mismatch")
	}
	for i := range cs {
		checkMul(cs[i], as[i], bs[i])
	}
	par.For(len(cs), workers, func(i int) {
		Serial(cs[i], as[i], bs[i])
	})
}

// MulTransA computes C = Aᵀ·B without materializing the transpose:
// C[i][j] = Σ_k A[k][i]·B[k][j]. Used by the backward-weights GEMM where
// the unfolded input appears transposed. The scatter structure skips
// zero A entries, so sparse error gradients cost only their non-zeros.
func MulTransA(c, a, b *Matrix) {
	if a.Rows != b.Rows || c.Rows != a.Cols || c.Cols != b.Cols {
		panic("gemm: MulTransA dimension mismatch")
	}
	c.Zero()
	for k := 0; k < a.Rows; k++ {
		arow := a.Row(k)
		brow := b.Row(k)
		for i, aki := range arow {
			if aki == 0 {
				continue
			}
			axpyAcc(c.Row(i), brow, aki)
		}
	}
}

// MulTransB computes C = A·Bᵀ without materializing the transpose:
// C[i][j] = Σ_k A[i][k]·B[j][k]. The inner loop is a dot product of two
// contiguous rows — eight B rows at a time (dotRows8) — and large operands
// first pack Bᵀ into interleaved panels so the eight row streams collapse
// into one (microDot8). Both forms keep one k-ordered accumulator per
// element, so they are bit-identical.
func MulTransB(c, a, b *Matrix) {
	if a.Cols != b.Cols || c.Rows != a.Rows || c.Cols != b.Rows {
		panic("gemm: MulTransB dimension mismatch")
	}
	if usePacked(a.Rows, a.Cols, b.Rows) {
		buf := bufPool.Get().(*packBuf)
		panels := buf.panels(b.Cols * padUp(b.Rows))
		packPanelsTrans(panels, b)
		packedMulRange(c, a, panels, b.Rows, 0, a.Rows, false)
		bufPool.Put(buf)
		return
	}
	mulTransBRange(c, a, b, 0, a.Rows)
}
