package unfoldgemm

import (
	"testing"

	"spgcnn/internal/conv"
	"spgcnn/internal/engine/enginetest"
	"spgcnn/internal/exec"
	"spgcnn/internal/gemm"
	"spgcnn/internal/rng"
	"spgcnn/internal/tensor"
)

func TestPackedConformanceSerial(t *testing.T) {
	enginetest.Run(t, PackedGenerator(1), enginetest.Options{Seed: 41})
}

func TestPackedConformanceParallel4(t *testing.T) {
	enginetest.Run(t, PackedGenerator(4), enginetest.Options{Seed: 42})
}

func TestPackedDifferentialVsSerial(t *testing.T) {
	// The prepacked engine against the direct lowering, under the full
	// ULP-budget sparsity sweep.
	enginetest.RunDifferential(t, PackedGenerator(1), Generator(1),
		enginetest.DiffOptions{Seed: 0xD1F4})
}

func TestPackedDifferentialForcedPackedPath(t *testing.T) {
	// Drop the gemm dispatch limits so even the small odd/strided
	// geometries run the packed-panel micro-kernels on BOTH engines; the
	// comparison then exercises prepack-and-reuse against per-call packing
	// across every remainder path.
	restore := gemm.ForcePackedForTest()
	defer restore()
	enginetest.RunDifferential(t, PackedGenerator(4), Generator(1),
		enginetest.DiffOptions{Seed: 0xD1F5})
}

func TestSerialForcedPackedConformance(t *testing.T) {
	// The base engine with every GEMM forced through the packed kernels,
	// validated against the direct reference convolution (independent of
	// the gemm package), so the packed path itself is conformance-swept at
	// small shapes.
	restore := gemm.ForcePackedForTest()
	defer restore()
	enginetest.Run(t, Generator(1), enginetest.Options{Seed: 43})
	enginetest.Run(t, Generator(3), enginetest.Options{Trials: 8, Seed: 44})
}

func TestPackedNames(t *testing.T) {
	s := conv.Square(8, 2, 2, 3, 1)
	if got := NewPacked(s, 1).Name(); got != "unfold-packed-gemm(serial)" {
		t.Fatalf("serial name = %q", got)
	}
	if got := NewPacked(s, 8).Name(); got != "unfold-packed-gemm(p=8)" {
		t.Fatalf("parallel name = %q", got)
	}
	if PackedGenerator(1).Name != "unfold-packed-gemm" {
		t.Fatal("generator name wrong")
	}
}

func TestPackedWeightCacheVersioning(t *testing.T) {
	s := conv.Square(12, 6, 3, 3, 1)
	r := rng.New(7)
	c := exec.New(1)
	k := NewPacked(s, 1)
	base := New(s, 1)

	w := conv.RandWeights(r, s)
	w.Bump() // tracked: Ver = 1
	batch := 3
	var ins, outs, want []*tensor.Tensor
	for i := 0; i < batch; i++ {
		ins = append(ins, conv.RandInput(r, s))
		outs = append(outs, conv.NewOutput(s))
		want = append(want, conv.NewOutput(s))
	}

	spanHit := "pack/" + s.String() + "/hit"
	spanMiss := "pack/" + s.String() + "/miss"

	k.ForwardBatch(c, outs, ins, w)
	if st, _ := c.Probe().SpanStats(spanMiss); st.Calls != 1 {
		t.Fatalf("first call: miss calls = %d, want 1", st.Calls)
	}
	k.ForwardBatch(c, outs, ins, w)
	if st, _ := c.Probe().SpanStats(spanHit); st.Calls != 1 {
		t.Fatalf("second call: hit calls = %d, want 1", st.Calls)
	}

	// Mutate the weights (optimizer step) and bump: cache must invalidate
	// and the new pack must produce the new weights' output.
	for i := range w.Data {
		w.Data[i] *= 1.5
	}
	w.Bump()
	k.ForwardBatch(c, outs, ins, w)
	if st, _ := c.Probe().SpanStats(spanMiss); st.Calls != 2 {
		t.Fatalf("after Bump: miss calls = %d, want 2", st.Calls)
	}
	base.ForwardBatch(c, want, ins, w)
	for i := range outs {
		if !tensor.AlmostEqual(outs[i], want[i], 1e-4) {
			t.Fatal("stale pack survived a weight version bump")
		}
	}

	// Untracked weights (Ver == 0) must repack every call.
	w2 := conv.RandWeights(r, s)
	k.ForwardBatch(c, outs, ins, w2)
	k.ForwardBatch(c, outs, ins, w2)
	if st, _ := c.Probe().SpanStats(spanMiss); st.Calls != 4 {
		t.Fatalf("untracked weights: miss calls = %d, want 4", st.Calls)
	}
}

func TestPackedSingleAgreesWithBase(t *testing.T) {
	r := rng.New(11)
	for trial := 0; trial < 8; trial++ {
		s := conv.RandSpec(r, 10)
		in := conv.RandInput(r, s)
		w := conv.RandWeights(r, s)
		eo := conv.RandOutputError(r, s, 0.5)

		base, packed := New(s, 1), NewPacked(s, 1)

		o1, o2 := conv.NewOutput(s), conv.NewOutput(s)
		base.Forward(o1, in, w)
		packed.Forward(o2, in, w)
		if !tensor.AlmostEqual(o1, o2, 1e-4) {
			t.Fatalf("FP base/packed disagree for %v", s)
		}

		e1, e2 := conv.NewInput(s), conv.NewInput(s)
		base.BackwardInput(e1, eo, w)
		packed.BackwardInput(e2, eo, w)
		if !tensor.AlmostEqual(e1, e2, 1e-4) {
			t.Fatalf("BP-EI base/packed disagree for %v", s)
		}

		d1, d2 := conv.NewWeights(s), conv.NewWeights(s)
		base.BackwardWeights(d1, eo, in)
		packed.BackwardWeights(d2, eo, in)
		if !tensor.AlmostEqual(d1, d2, 1e-4) {
			t.Fatalf("BP-dW base/packed disagree for %v", s)
		}
	}
}

func BenchmarkForwardCIFARL0Packed(b *testing.B) {
	s := conv.Square(36, 64, 3, 5, 1)
	r := rng.New(1)
	in := conv.RandInput(r, s)
	w := conv.RandWeights(r, s)
	w.Bump()
	out := conv.NewOutput(s)
	k := NewPacked(s, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.Forward(out, in, w)
	}
	b.ReportMetric(float64(s.FlopsFP())*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFlops")
}
