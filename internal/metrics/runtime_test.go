package metrics

import (
	"io"
	"math"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"testing"

	rtm "runtime/metrics"

	"spgcnn/internal/exec"
)

// TestRuntimeTelemetryScrape binds the runtime health series plus an
// execution context (for the arena-grow counters) and scrapes a live
// /metrics endpoint: every advertised family must be present with sane
// values — that is the satellite's acceptance.
func TestRuntimeTelemetryScrape(t *testing.T) {
	r := NewRegistry()
	ctx := exec.New(2)
	Bind(ctx, r)
	BindRuntime(r)

	// Force arena growth (fresh allocations) and at least one GC cycle so
	// the counters have moved before the scrape.
	for i := 0; i < 4; i++ {
		buf := ctx.Arena().Get(1 << (10 + i))
		ctx.Arena().Put(buf)
	}
	runtime.GC()

	srv, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get(srv.URL())
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(b)

	for _, want := range []string{
		`spg_runtime_gc_pause_seconds{quantile="0.5"}`,
		`spg_runtime_gc_pause_seconds{quantile="0.95"}`,
		`spg_runtime_gc_pause_seconds{quantile="max"}`,
		`spg_runtime_sched_latency_seconds{quantile="0.5"}`,
		"spg_runtime_gc_cycles_total",
		"spg_runtime_heap_live_bytes",
		"spg_runtime_gomaxprocs",
		"spg_runtime_goroutines",
		"spg_arena_grows_total",
		"spg_arena_grow_bytes_total",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("scrape missing %q", want)
		}
	}
	if t.Failed() {
		t.Fatalf("exposition:\n%s", body)
	}

	// Value sanity: the scraped numbers must reflect the process.
	if v := scrapeValue(t, body, "spg_runtime_gomaxprocs"); v != float64(runtime.GOMAXPROCS(0)) {
		t.Fatalf("gomaxprocs = %v, want %d", v, runtime.GOMAXPROCS(0))
	}
	if v := scrapeValue(t, body, "spg_runtime_gc_cycles_total"); v < 1 {
		t.Fatalf("gc cycles = %v after an explicit runtime.GC()", v)
	}
	if v := scrapeValue(t, body, "spg_runtime_goroutines"); v < 2 {
		t.Fatalf("goroutines = %v", v)
	}
	if v := scrapeValue(t, body, "spg_arena_grows_total"); v < 4 {
		t.Fatalf("arena grows = %v, want >= 4", v)
	}
	if v := scrapeValue(t, body, "spg_arena_grow_bytes_total"); v < 4*4096 {
		t.Fatalf("arena grow bytes = %v", v)
	}
	st := ctx.Arena().Stats()
	if st.Grows < 4 || st.GrowBytes < 4*4096 {
		t.Fatalf("arena stats = %+v", st)
	}
}

// scrapeValue extracts the value of an unlabeled series from a Prometheus
// text exposition.
func scrapeValue(t *testing.T, body, name string) float64 {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		if !strings.HasPrefix(line, name+" ") {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(strings.TrimPrefix(line, name+" ")), 64)
		if err != nil {
			t.Fatalf("parsing %q: %v", line, err)
		}
		return v
	}
	t.Fatalf("series %s not found", name)
	return 0
}

// TestHistQuantile pins the runtime-histogram quantile extraction on a
// hand-built distribution.
func TestHistQuantile(t *testing.T) {
	h := &rtm.Float64Histogram{
		Counts:  []uint64{2, 6, 2},
		Buckets: []float64{0, 1, 2, 3},
	}
	if got := histQuantile(h, 0.5); got != 2 {
		t.Fatalf("p50 = %v, want 2 (upper edge of the median bucket)", got)
	}
	if got := histQuantile(h, 1); got != 3 {
		t.Fatalf("max = %v, want 3", got)
	}
	if got := histQuantile(h, 0.1); got != 1 {
		t.Fatalf("p10 = %v, want 1", got)
	}
	// Last bucket unbounded: max clamps to its finite lower edge.
	inf := &rtm.Float64Histogram{
		Counts:  []uint64{1, 1},
		Buckets: []float64{0, 1, math.Inf(1)},
	}
	if got := histQuantile(inf, 1); got != 1 {
		t.Fatalf("max over +Inf bucket = %v, want 1", got)
	}
	empty := &rtm.Float64Histogram{Counts: []uint64{0}, Buckets: []float64{0, 1}}
	if got := histQuantile(empty, 0.5); got != 0 {
		t.Fatalf("empty histogram quantile = %v", got)
	}
}
