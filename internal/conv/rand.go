package conv

import (
	"spgcnn/internal/rng"
	"spgcnn/internal/tensor"
)

// Helpers for generating random convolution problems. They are used by the
// test suites of every engine package and by the benchmark harness's
// workload generator, so they live here rather than in a _test file.

// RandSpec draws a random valid spec with all dimensions bounded by max
// (spatial sizes in [2, max+1], channels/features in [1, max/2+1], kernels
// and strides small). max must be >= 2.
func RandSpec(r *rng.RNG, max int) Spec {
	if max < 2 {
		max = 2
	}
	for {
		s := Spec{
			Nx: r.Intn(max) + 2,
			Ny: r.Intn(max) + 2,
			Nc: r.Intn(max/2+1) + 1,
			Nf: r.Intn(max/2+1) + 1,
			Fx: r.Intn(4) + 1,
			Fy: r.Intn(4) + 1,
			Sx: r.Intn(3) + 1,
			Sy: r.Intn(3) + 1,
		}
		if s.Validate() == nil {
			return s
		}
	}
}

// RandSpecGeneral draws a random valid spec exercising the generalized
// attributes: padding in [0, 2], dilation in [1, 3], and a group count
// drawn from the divisors the rounded-up channel/feature counts admit.
// Used by the differential sweeps that pit every engine against the
// reference oracle on non-plain geometry.
func RandSpecGeneral(r *rng.RNG, max int) Spec {
	if max < 2 {
		max = 2
	}
	for {
		g := r.Intn(4) + 1
		s := Spec{
			Nx:     r.Intn(max) + 2,
			Ny:     r.Intn(max) + 2,
			Nc:     (r.Intn(max/2+1) + 1) * g,
			Nf:     (r.Intn(max/2+1) + 1) * g,
			Fx:     r.Intn(4) + 1,
			Fy:     r.Intn(4) + 1,
			Sx:     r.Intn(3) + 1,
			Sy:     r.Intn(3) + 1,
			Px:     r.Intn(3),
			Py:     r.Intn(3),
			Dx:     r.Intn(3) + 1,
			Dy:     r.Intn(3) + 1,
			Groups: g,
		}
		s = s.Canon()
		if s.Validate() == nil {
			return s
		}
	}
}

// RandInput returns a normally-distributed random input tensor for s.
func RandInput(r *rng.RNG, s Spec) *tensor.Tensor {
	t := NewInput(s)
	t.FillNormal(r, 0, 1)
	return t
}

// RandWeights returns a normally-distributed random weight tensor for s.
func RandWeights(r *rng.RNG, s Spec) *tensor.Tensor {
	t := NewWeights(s)
	t.FillNormal(r, 0, 0.5)
	return t
}

// RandOutputError returns a random output-error tensor for s with the given
// sparsity — the shape of data the Sparse-Kernel consumes in BP.
func RandOutputError(r *rng.RNG, s Spec, sparsity float64) *tensor.Tensor {
	t := NewOutput(s)
	t.FillNormal(r, 0, 1)
	t.Sparsify(r, sparsity)
	return t
}
