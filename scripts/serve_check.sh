#!/bin/sh
# serve_check: end-to-end gate for the inference serving path.
# Trains a tiny conv+fc network for one epoch, serves its checkpoint with
# spg-serve (dynamic batching, 2 replicas sharing one weight set), drives
# it with spg-load in both loop modes, then:
#
#   - asserts the load report shows every request succeeding with sane
#     latency percentiles and a coalesced (>1) mean server batch;
#   - scrapes /metrics through spg-load -scrape and asserts the serving
#     series (queue depth, batch histogram, goodput ratio) exported;
#   - asserts the server's shutdown epilogue agrees on the request count
#     and prints the goodput line;
#   - runs the spg-load golden-output test, which pins the report
#     rendering byte-for-byte against a deterministic fake server.
#
# Usage: scripts/serve_check.sh
set -eu

cd "$(dirname "$0")/.."

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"; [ -n "${server_pid:-}" ] && kill "$server_pid" 2>/dev/null || true' EXIT INT TERM

cat > "$tmp/net.prototxt" <<'EOF'
name: "servecheck"
input { channels: 1 height: 28 width: 28 }
layer { name: "conv0" type: "conv" features: 4 kernel: 5 stride: 2 }
layer { name: "fc0" type: "fc" outputs: 10 }
EOF

go build -o "$tmp/spg-train" ./cmd/spg-train
go build -o "$tmp/spg-serve" ./cmd/spg-serve
go build -o "$tmp/spg-load" ./cmd/spg-load

"$tmp/spg-train" -file "$tmp/net.prototxt" -dataset mnist -epochs 1 \
	-examples 16 -batch 8 -workers 1 -save "$tmp/w.ckpt" | grep -q "saved checkpoint" || {
	echo "serve_check: training did not save a checkpoint" >&2
	exit 1
}

"$tmp/spg-serve" -file "$tmp/net.prototxt" -load "$tmp/w.ckpt" \
	-addr 127.0.0.1:0 -addr-file "$tmp/addr" -replicas 2 \
	-max-batch 4 -max-delay 2ms > "$tmp/serve.out" 2>&1 &
server_pid=$!

# Wait for the bound address (spg-serve writes it once listening).
for i in $(seq 1 100); do
	[ -s "$tmp/addr" ] && break
	kill -0 "$server_pid" 2>/dev/null || {
		echo "serve_check: spg-serve exited before listening:" >&2
		cat "$tmp/serve.out" >&2
		exit 1
	}
	sleep 0.1
done
[ -s "$tmp/addr" ] || { echo "serve_check: server never wrote -addr-file" >&2; exit 1; }
url="http://$(cat "$tmp/addr")"

# Closed-loop slice with a mid-run metrics scrape.
closed="$("$tmp/spg-load" -url "$url" -c 8 -n 120 -scrape)"
echo "$closed" | grep -q "ok              120" || {
	echo "serve_check: closed-loop run lost requests:" >&2
	echo "$closed" >&2
	exit 1
}
echo "$closed" | grep -q "latency p99" || {
	echo "serve_check: report missing latency percentiles" >&2
	exit 1
}
for series in spg_serve_queue_depth spg_serve_requests_total \
	spg_serve_batches_total spg_serve_batch_size spg_serve_goodput_ratio; do
	echo "$closed" | grep -q "$series" || {
		echo "serve_check: /metrics scrape missing $series:" >&2
		echo "$closed" >&2
		exit 1
	}
done
# Under 8 concurrent closed-loop clients the admission queue must have
# coalesced at least some requests into multi-row batches.
mean_batch="$(echo "$closed" | sed -n 's/^  mean batch      //p')"
case "$mean_batch" in
1.00|0.00|"")
	echo "serve_check: no dynamic batching happened (mean batch '$mean_batch')" >&2
	echo "$closed" >&2
	exit 1
	;;
esac

# Open-loop slice: paced arrivals against the same server.
open="$("$tmp/spg-load" -url "$url" -c 8 -n 60 -rate 300)"
echo "$open" | grep -q "(open loop)" || {
	echo "serve_check: open-loop report mislabeled:" >&2
	echo "$open" >&2
	exit 1
}
echo "$open" | grep -q "ok              60" || {
	echo "serve_check: open-loop run lost requests:" >&2
	echo "$open" >&2
	exit 1
}

# Graceful shutdown: SIGTERM drains and prints the epilogue.
kill "$server_pid"
for i in $(seq 1 100); do
	kill -0 "$server_pid" 2>/dev/null || break
	sleep 0.1
done
server_pid=""
grep -q "served 180 requests" "$tmp/serve.out" || {
	echo "serve_check: server epilogue disagrees on the request count:" >&2
	cat "$tmp/serve.out" >&2
	exit 1
}
grep -q "goodput:" "$tmp/serve.out" || {
	echo "serve_check: server epilogue missing the goodput line:" >&2
	cat "$tmp/serve.out" >&2
	exit 1
}

go test -run TestRunGolden ./cmd/spg-load

echo "serve_check: dynamic batching served both loop modes; metrics, drain and report validated"
