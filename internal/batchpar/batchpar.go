// Package batchpar implements the paper's GEMM-in-Parallel scheduling
// (§4.1): instead of splitting one convolution's GEMM across P cores (and
// paying the §3.2 per-core AIT reduction), it runs P independent
// single-threaded kernels on P different training inputs.
//
// The executor is kernel-agnostic: the same batch schedule carries
// unfold+GEMM kernels (the literal GEMM-in-Parallel of §4.1),
// stencil kernels (§4.3's FP deployment) and sparse kernels (§4.2's BP
// deployment). Each worker owns a private kernel instance — and therefore
// private scratch — so inputs are never divided across cores and per-core
// AIT stays at the single-kernel level.
package batchpar

import (
	"fmt"

	"spgcnn/internal/conv"
	"spgcnn/internal/engine"
	"spgcnn/internal/par"
	"spgcnn/internal/tensor"
)

// Executor schedules a per-input kernel across batches of training inputs.
type Executor struct {
	spec    conv.Spec
	workers int
	kernels []engine.Kernel  // one per worker
	dwAcc   []*tensor.Tensor // per-worker weight-gradient accumulators
	dwTmp   []*tensor.Tensor // per-worker single-input gradient scratch
	name    string
}

// New builds an executor that fans gen's kernels for spec s across the
// given number of workers (minimum 1).
func New(gen engine.Generator, s conv.Spec, workers int) *Executor {
	s.MustValidate()
	if workers < 1 {
		workers = 1
	}
	e := &Executor{
		spec:    s,
		workers: workers,
		kernels: make([]engine.Kernel, workers),
		dwAcc:   make([]*tensor.Tensor, workers),
		dwTmp:   make([]*tensor.Tensor, workers),
	}
	for i := range e.kernels {
		e.kernels[i] = gen.New(s)
		e.dwAcc[i] = conv.NewWeights(s)
		e.dwTmp[i] = conv.NewWeights(s)
	}
	e.name = fmt.Sprintf("batch-parallel[%s, p=%d]", e.kernels[0].Name(), workers)
	return e
}

// Name describes the executor.
func (e *Executor) Name() string { return e.name }

// Workers reports the fan-out.
func (e *Executor) Workers() int { return e.workers }

// Spec returns the convolution geometry.
func (e *Executor) Spec() conv.Spec { return e.spec }

// Forward computes outs[i] = conv(ins[i], w) for the whole batch, one
// worker per contiguous chunk of inputs.
func (e *Executor) Forward(outs, ins []*tensor.Tensor, w *tensor.Tensor) {
	if len(outs) != len(ins) {
		panic("batchpar: Forward batch length mismatch")
	}
	par.ForWorkers(len(ins), e.workers, func(worker, lo, hi int) {
		k := e.kernels[worker]
		for i := lo; i < hi; i++ {
			k.Forward(outs[i], ins[i], w)
		}
	})
}

// BackwardInput computes eis[i] = corr(eos[i], w) for the whole batch.
func (e *Executor) BackwardInput(eis, eos []*tensor.Tensor, w *tensor.Tensor) {
	if len(eis) != len(eos) {
		panic("batchpar: BackwardInput batch length mismatch")
	}
	par.ForWorkers(len(eos), e.workers, func(worker, lo, hi int) {
		k := e.kernels[worker]
		for i := lo; i < hi; i++ {
			k.BackwardInput(eis[i], eos[i], w)
		}
	})
}

// BackwardWeights computes dw = Σ_i grad(eos[i], ins[i]): each worker
// accumulates its chunk's gradients into private scratch, then the
// per-worker partials are reduced into dw. dw is overwritten.
func (e *Executor) BackwardWeights(dw *tensor.Tensor, eos, ins []*tensor.Tensor) {
	if len(eos) != len(ins) {
		panic("batchpar: BackwardWeights batch length mismatch")
	}
	conv.CheckWeights(e.spec, dw)
	used := e.workers
	if used > len(eos) {
		used = len(eos)
	}
	if used < 1 {
		used = 1
	}
	for i := 0; i < used; i++ {
		e.dwAcc[i].Zero()
	}
	par.ForWorkers(len(eos), e.workers, func(worker, lo, hi int) {
		k := e.kernels[worker]
		acc := e.dwAcc[worker]
		tmp := e.dwTmp[worker]
		for i := lo; i < hi; i++ {
			k.BackwardWeights(tmp, eos[i], ins[i])
			acc.AddScaled(tmp, 1)
		}
	})
	dw.Zero()
	for i := 0; i < used; i++ {
		dw.AddScaled(e.dwAcc[i], 1)
	}
}
