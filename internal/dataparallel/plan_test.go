package dataparallel

import (
	"reflect"
	"testing"

	"spgcnn/internal/netdef"
	"spgcnn/internal/plan"
	"spgcnn/internal/rng"
)

// replicaNet is conv+fc with no relu, so gradients stay dense and every
// replica's BP request lands in the same sparsity band.
const replicaNet = `
name: "replicas"
input { channels: 2 height: 10 width: 10 }
layer { name: "conv0" type: "conv" features: 4 kernel: 3 stride: 1 }
layer { name: "fc0" type: "fc" outputs: 4 }
`

// TestSharedPlannerAcrossReplicas trains four replicas with SyncEvery > 1
// (local SGD, so replicas run concurrently between syncs) sharing one
// planner. Run under -race this also hammers the planner's single-flight
// path: all four replicas hit the cold conv key at once on the first step.
// Asserts: one measurement pass per (phase, geometry) for the whole
// trainer — not per replica — and bitwise-identical strategy deployments
// on every replica.
func TestSharedPlannerAcrossReplicas(t *testing.T) {
	def, err := netdef.Parse(replicaNet)
	if err != nil {
		t.Fatal(err)
	}
	planner := plan.New(plan.Options{})
	tr, err := NewFromDef(def, netdef.BuildOptions{Workers: 1, Planner: planner, Seed: 3},
		Config{Replicas: 4, GlobalBatch: 8, LR: 0.01, SyncEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Planner() != planner {
		t.Fatal("trainer lost the shared planner")
	}

	stats := tr.TrainEpoch(ds{n: 16}, rng.New(1))
	if stats.Images != 16 {
		t.Fatalf("trained %d images, want 16", stats.Images)
	}
	if stats.Syncs != 1 {
		t.Fatalf("SyncEvery=2 over 2 steps should sync once, got %d", stats.Syncs)
	}

	// One conv geometry, two phases: exactly 2 measurement passes for the
	// entire 4-replica trainer.
	pst := planner.Stats()
	if pst.Measurements != 2 {
		t.Errorf("%d measurement passes ran across 4 replicas, want 2 (stats %+v)",
			pst.Measurements, pst)
	}
	if pst.Hits+pst.Misses < 8 {
		t.Errorf("expected every replica to request both phases (>= 8 requests), stats %+v", pst)
	}

	// Every replica deployed the same verdicts.
	ref := tr.Replica(0).TuningChoices()
	if len(ref) == 0 {
		t.Fatal("replica 0 recorded no tuning choices")
	}
	for i := 1; i < 4; i++ {
		if got := tr.Replica(i).TuningChoices(); !reflect.DeepEqual(got, ref) {
			t.Errorf("replica %d deployed %v, replica 0 deployed %v", i, got, ref)
		}
	}
}

// TestNewFromDefDefaultsPlanner: NewFromDef without an explicit planner
// still shares one across replicas.
func TestNewFromDefDefaultsPlanner(t *testing.T) {
	def, err := netdef.Parse(replicaNet)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := NewFromDef(def, netdef.BuildOptions{Workers: 1, Seed: 3},
		Config{Replicas: 2, GlobalBatch: 4, LR: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Planner() == nil {
		t.Fatal("NewFromDef did not install a default shared planner")
	}
	tr.TrainEpoch(ds{n: 8}, rng.New(1))
	p, ok := tr.Planner().(*plan.Planner)
	if !ok {
		t.Fatalf("default planner has type %T, want *plan.Planner", tr.Planner())
	}
	if st := p.Stats(); st.Measurements != 2 {
		t.Errorf("%d measurement passes across 2 replicas, want 2", st.Measurements)
	}
}

// TestNewFromDefBuildError: definition errors surface through NewFromDef
// instead of panicking in a replica builder.
func TestNewFromDefBuildError(t *testing.T) {
	def, err := netdef.Parse(`
name: "broken"
input { channels: 1 height: 4 width: 4 }
layer { name: "conv0" type: "conv" features: 2 kernel: 9 }
`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewFromDef(def, netdef.BuildOptions{Workers: 1},
		Config{Replicas: 2, GlobalBatch: 4, LR: 0.01}); err == nil {
		t.Fatal("invalid definition built successfully")
	}
}

// TestTrainEpochRunsEpochEnd: the epoch boundary must reach every
// replica's scheduler (the §4.4 BP re-check). With RecheckEpochs' default
// of 2, two epochs trigger exactly one re-plan per replica — all in-band
// cache hits on the shared planner, zero extra measurement passes.
func TestTrainEpochRunsEpochEnd(t *testing.T) {
	def, err := netdef.Parse(replicaNet)
	if err != nil {
		t.Fatal(err)
	}
	planner := plan.New(plan.Options{})
	tr, err := NewFromDef(def, netdef.BuildOptions{Workers: 1, Planner: planner, Seed: 3},
		Config{Replicas: 2, GlobalBatch: 4, LR: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	tr.TrainEpoch(ds{n: 8}, rng.New(1))
	afterOne := planner.Stats()
	tr.TrainEpoch(ds{n: 8}, rng.New(2))
	afterTwo := planner.Stats()

	// The epoch-2 re-check re-plans BP for each replica; gradients stayed
	// dense (same band), so these are hits, not re-measurements.
	if afterTwo.Measurements != afterOne.Measurements {
		t.Errorf("in-band epoch re-check re-measured: %d -> %d passes",
			afterOne.Measurements, afterTwo.Measurements)
	}
	if afterTwo.Hits <= afterOne.Hits {
		t.Errorf("epoch re-check did not run (hits %d -> %d); is EpochEnd wired into TrainEpoch?",
			afterOne.Hits, afterTwo.Hits)
	}
}
