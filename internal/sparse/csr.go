// Package sparse implements the sparse-matrix storage formats the
// Sparse-Kernel (paper §4.2) is built on:
//
//   - CSR: the classical Compressed Sparse Row format (value array, column
//     index array, row pointer array).
//   - CT-CSR: the paper's Column Tiled-CSR adaptation (Fig. 5a): the matrix
//     is tiled along columns and each tile is stored in CSR. Elements of
//     adjacent rows within a tile are adjacent in memory, improving both
//     cache locality and TLB behaviour when a kernel walks a tile.
package sparse

import "fmt"

// CSR is a sparse rows-by-cols float32 matrix in Compressed Sparse Row
// format. For row i, the non-zeros are Values[RowPtr[i]:RowPtr[i+1]] at
// columns ColIdx[RowPtr[i]:RowPtr[i+1]].
type CSR struct {
	Rows, Cols int
	Values     []float32
	ColIdx     []int32
	RowPtr     []int32
}

// FromDense builds a CSR matrix from a row-major dense matrix, treating
// exact zeros as absent.
func FromDense(data []float32, rows, cols int) *CSR {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("sparse: data length %d != %d x %d", len(data), rows, cols))
	}
	m := &CSR{Rows: rows, Cols: cols, RowPtr: make([]int32, rows+1)}
	nnz := 0
	for _, v := range data {
		if v != 0 {
			nnz++
		}
	}
	m.Values = make([]float32, 0, nnz)
	m.ColIdx = make([]int32, 0, nnz)
	for i := 0; i < rows; i++ {
		row := data[i*cols : (i+1)*cols]
		for j, v := range row {
			if v != 0 {
				m.Values = append(m.Values, v)
				m.ColIdx = append(m.ColIdx, int32(j))
			}
		}
		m.RowPtr[i+1] = int32(len(m.Values))
	}
	return m
}

// ToDense expands the matrix back to a row-major dense slice.
func (m *CSR) ToDense() []float32 {
	out := make([]float32, m.Rows*m.Cols)
	for i := 0; i < m.Rows; i++ {
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			out[i*m.Cols+int(m.ColIdx[p])] = m.Values[p]
		}
	}
	return out
}

// NNZ returns the number of stored non-zeros.
func (m *CSR) NNZ() int { return len(m.Values) }

// Sparsity returns the fraction of zero elements. An empty matrix has
// sparsity 0.
func (m *CSR) Sparsity() float64 {
	total := m.Rows * m.Cols
	if total == 0 {
		return 0
	}
	return 1 - float64(m.NNZ())/float64(total)
}

// RowNNZ returns the number of non-zeros in row i.
func (m *CSR) RowNNZ(i int) int {
	return int(m.RowPtr[i+1] - m.RowPtr[i])
}

// SpMM computes dense C (rows×bCols, row-major) = sparse A · dense B
// (A.Cols×bCols, row-major). Only the non-zero terms of A are touched, so
// the flop count is 2·NNZ·bCols — this is the arithmetic a goodput
// measurement counts as useful.
func (m *CSR) SpMM(c, b []float32, bCols int) {
	if len(b) != m.Cols*bCols {
		panic(fmt.Sprintf("sparse: B length %d != %d x %d", len(b), m.Cols, bCols))
	}
	if len(c) != m.Rows*bCols {
		panic(fmt.Sprintf("sparse: C length %d != %d x %d", len(c), m.Rows, bCols))
	}
	for i := range c {
		c[i] = 0
	}
	for i := 0; i < m.Rows; i++ {
		crow := c[i*bCols : (i+1)*bCols]
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			v := m.Values[p]
			brow := b[int(m.ColIdx[p])*bCols:][:bCols]
			for j := range brow {
				crow[j] += v * brow[j]
			}
		}
	}
}
