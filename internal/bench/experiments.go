package bench

import (
	"fmt"
	"sort"
	"sync"

	"spgcnn/internal/core"
	"spgcnn/internal/machine"
	"spgcnn/internal/par"
)

// Options configures an experiment run.
type Options struct {
	// Scale is "quick" (CI-friendly; default) or "full".
	Scale string
	// Workers is the host parallelism for measured experiments
	// (default: GOMAXPROCS).
	Workers int
	// Machine selects the model behind the modeled figures: "paper" (the
	// default: the paper's 16-core Xeon) or "host" (calibrated to this
	// machine by a quick probe).
	Machine string
}

func (o Options) full() bool { return o.Scale == "full" }

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return par.MaxWorkers()
}

var (
	hostMachineOnce sync.Once
	hostMachine     machine.Machine
)

// machineOf returns the machine model the options select.
func (o Options) machineOf() machine.Machine {
	if o.Machine == "host" {
		hostMachineOnce.Do(func() { hostMachine = machine.CalibrateHost() })
		return hostMachine
	}
	return machine.Paper()
}

// fixedSerialStrategy returns the GEMM-in-Parallel strategy (serial
// kernels, batch parallel) — the neutral executable configuration used
// when an experiment needs *a* correct engine and measures something else
// (e.g. the Fig. 3b sparsity trajectories).
func fixedSerialStrategy(workers int) core.Strategy {
	return core.FPStrategies(workers)[1]
}

// Experiment kinds, by how reproducible the numbers are. Deterministic
// kinds get strict tolerance-band comparison in baseline checks; measured
// kinds vary with the host and only get structural + sanity checks.
const (
	// KindAnalytical is pure closed-form math or a worked example on fixed
	// inputs: byte-deterministic everywhere.
	KindAnalytical = "analytical"
	// KindModeled evaluates the calibrated machine model: deterministic
	// when the paper machine is selected, host-dependent otherwise.
	KindModeled = "modeled"
	// KindMeasured times real kernels or training runs on this host.
	KindMeasured = "measured"
	// KindMixed combines modeled and measured series in one artifact.
	KindMixed = "mixed"
)

// Experiment is one regenerable paper artifact.
type Experiment struct {
	ID   string
	Desc string
	Kind string
	Run  func(Options) []Table
}

// Experiments returns every experiment, in paper order.
func Experiments() []Experiment {
	return []Experiment{
		{"table1", "Table 1: convolution AIT characterization (analytical)", KindAnalytical, RunTable1},
		{"fig1", "Fig 1: AIT x sparsity design-space regions (analytical)", KindAnalytical, RunFig1},
		{"fig2", "Fig 2: unfolding + O = W*U^T worked example (executed)", KindAnalytical, RunFig2},
		{"fig5", "Fig 5a: CT-CSR layout worked example (executed)", KindAnalytical, RunFig5},
		{"fig6", "Fig 6: pointer-shifting trace worked example", KindAnalytical, RunFig6},
		{"fig7", "Fig 7: generated stencil basic-block plans", KindAnalytical, RunFig7},
		{"fig3a", "Fig 3a: Parallel-GEMM scalability (modeled)", KindModeled, RunFig3a},
		{"fig3b", "Fig 3b: gradient sparsity across epochs (measured training)", KindMeasured, RunFig3b},
		{"fig4a", "Fig 4a: GEMM-in-Parallel scalability (modeled)", KindModeled, RunFig4a},
		{"fig4b", "Fig 4b: GiP speedup over Parallel-GEMM (modeled)", KindModeled, RunFig4b},
		{"fig4c", "Fig 4c: Stencil-Kernel scalability (modeled)", KindModeled, RunFig4c},
		{"fig4d", "Fig 4d: Stencil speedup over GiP (modeled)", KindModeled, RunFig4d},
		{"fig4e", "Fig 4e: Sparse-Kernel goodput vs sparsity (modeled)", KindModeled, RunFig4e},
		{"fig4f", "Fig 4f: Sparse speedup over GiP vs sparsity (modeled)", KindModeled, RunFig4f},
		{"fig4-measured", "Fig 4d/4f analogues measured on this host (single-kernel timings)", KindMeasured, RunFig4Measured},
		{"table2", "Table 2: benchmark network layers (analytical)", KindAnalytical, RunTable2},
		{"fig8", "Fig 8: per-layer speedups on real networks (modeled + measured)", KindMixed, RunFig8},
		{"fig9", "Fig 9: end-to-end CIFAR-10 throughput (modeled + measured)", KindMixed, RunFig9},
		{"ablation-spatial", "Ablation: stencil vs unfold speedup vs spatial extent (measured)", KindMeasured, RunAblationSpatial},
		{"ablation-rtile", "Ablation: stencil register-tile sweep vs generator choice (measured)", KindMeasured, RunAblationRTile},
		{"ablation-ctcsr", "Ablation: CT-CSR column-tile width sweep (measured)", KindMeasured, RunAblationCTCSR},
		{"ablation-machine", "Ablation: machine-model sensitivity study (modeled)", KindModeled, RunAblationMachine},
		{"ablation-fft", "Ablation: FFT vs direct convolution vs kernel size (measured)", KindMeasured, RunAblationFFT},
		{"goodput", "Goodput across training: dense vs sparse BP (measured)", KindMeasured, RunGoodputTrain},
		{"microkernel", "Micro-kernel layer: packed-panel GEMM, pack amortization, prepacked engine (measured)", KindMeasured, RunMicrokernel},
		{"blockedconv", "Blocked (NCHW8) engine vs packed unfold+GEMM, conversion tax, sparse-weight goodput (measured)", KindMeasured, RunBlockedConv},
		{"serve", "Serving: dynamic batching vs batch=1 dispatch, batch-size vs goodput curve (measured)", KindMeasured, RunServe},
		{"zoo", "Workload zoo: generalized-spec nets (grouped/dilated/1x1/residual) trained under the planner (measured)", KindMeasured, RunZoo},
		{"scaleout", "Scale-out: ring/tree/sparse allreduce, cluster-model curves, straggler-mitigation goodput (mixed)", KindMixed, RunScaleout},
	}
}

// aliases maps historical experiment IDs onto their current names.
var aliases = map[string]string{
	"goodput-train": "goodput",
}

// Lookup finds an experiment by ID (accepting historical aliases).
func Lookup(id string) (Experiment, error) {
	if canonical, ok := aliases[id]; ok {
		id = canonical
	}
	for _, e := range Experiments() {
		if e.ID == id {
			return e, nil
		}
	}
	var ids []string
	for _, e := range Experiments() {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return Experiment{}, fmt.Errorf("bench: unknown experiment %q (have %v)", id, ids)
}
