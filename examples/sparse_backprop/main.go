// Sparse back-propagation goodput demo (the paper's §4.2 / Fig. 4e-f
// story): sweep the error-gradient sparsity of one convolution and compare
// the dense Unfold+GEMM backward pass against the Sparse-Kernel, reporting
// wall time, throughput and goodput (Eq. 9) for each.
package main

import (
	"flag"
	"fmt"
	"time"

	"spgcnn"
)

func main() {
	var (
		n    = flag.Int("n", 32, "input spatial size")
		nf   = flag.Int("nf", 32, "output features")
		nc   = flag.Int("nc", 32, "input channels")
		f    = flag.Int("f", 4, "kernel size")
		reps = flag.Int("reps", 3, "timing repetitions (min taken)")
	)
	flag.Parse()

	spec := spgcnn.Square(*n, *nf, *nc, *f, 1) // defaults = Table 1 ID 0
	fmt.Printf("convolution %v — BP = input-error (Eq. 3) + delta-weights (Eq. 4)\n", spec)
	fmt.Printf("dense BP flop count: %d\n\n", spec.FlopsBPInput()+spec.FlopsBPWeights())

	r := spgcnn.NewRNG(1)
	in := spgcnn.NewInput(spec)
	in.FillNormal(r, 0, 1)
	w := spgcnn.NewWeights(spec)
	w.FillNormal(r, 0, 0.1)
	ei := spgcnn.NewInput(spec)
	dw := spgcnn.NewWeights(spec)

	dense := spgcnn.NewUnfoldGEMM(spec, 1)
	sparse := spgcnn.NewSparse(spec, 0)

	fmt.Printf("%-9s  %-12s  %-12s  %-14s  %-14s  %s\n",
		"sparsity", "dense ms", "sparse ms", "dense goodput", "sparse goodput", "speedup")
	for _, sp := range []float64{0, 0.5, 0.75, 0.85, 0.9, 0.95, 0.99} {
		eo := spgcnn.NewOutput(spec)
		eo.FillNormal(r, 0, 1)
		eo.Sparsify(r, sp)

		tDense := timeIt(*reps, func() {
			dense.BackwardInput(ei, eo, w)
			dense.BackwardWeights(dw, eo, in)
		})
		tSparse := timeIt(*reps, func() {
			sparse.BackwardInput(ei, eo, w)
			sparse.BackwardWeights(dw, eo, in)
		})

		// Goodput (Eq. 9): non-zero flops over elapsed time. The dense
		// kernel spends the full flop budget but only the non-zero part
		// is useful (Eq. 10's bound); the sparse kernel only ever runs
		// the useful part.
		useful := float64(2 * spgcnn.SparseNonZeroFlops(spec, eo.NNZ()))
		fmt.Printf("%8.2f  %9.3f    %9.3f    %8.2f GF/s   %8.2f GF/s   %6.2fx\n",
			eo.Sparsity(), tDense*1e3, tSparse*1e3,
			useful/tDense/1e9, useful/tSparse/1e9, tDense/tSparse)
	}
	fmt.Println("\n(dense time is sparsity-independent: it multiplies every zero;")
	fmt.Println(" the sparse kernel's floor at extreme sparsity is the layout-transform cost)")
}

func timeIt(reps int, fn func()) float64 {
	fn()
	best := 0.0
	for i := 0; i < reps; i++ {
		start := time.Now()
		fn()
		el := time.Since(start).Seconds()
		if i == 0 || el < best {
			best = el
		}
	}
	return best
}
