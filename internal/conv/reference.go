package conv

import (
	"fmt"

	"spgcnn/internal/tensor"
)

// Shapes used throughout spgcnn for a convolution spec s:
//
//	input  I  : [Nc][Ny][Nx]        (channel, y, x — x fastest)
//	weights W : [Nf][Nc/G][Fy][Fx]
//	output O  : [Nf][OutY][OutX]
//	EO        : same shape as O (output-error gradient)
//	EI        : same shape as I (input-error gradient)
//	dW        : same shape as W (delta-weights)
//
// For grouped convolution (G = s.G() > 1) feature f belongs to group
// g = f/(Nf/G) and convolves only input channels [g·Nc/G, (g+1)·Nc/G);
// its weight slab indexes those channels relative to the group. Padding
// taps that fall outside the input read an implicit zero; dilated taps
// read input offset (kx·Dx, ky·Dy).

// CheckInput panics unless t has the input shape for s.
func CheckInput(s Spec, t *tensor.Tensor) {
	if t.Rank() != 3 || t.Dim(0) != s.Nc || t.Dim(1) != s.Ny || t.Dim(2) != s.Nx {
		panic(fmt.Sprintf("conv: input shape %v does not match spec %v (want [%d %d %d])",
			t.Dims, s, s.Nc, s.Ny, s.Nx))
	}
}

// CheckWeights panics unless t has the weight shape for s.
func CheckWeights(s Spec, t *tensor.Tensor) {
	if t.Rank() != 4 || t.Dim(0) != s.Nf || t.Dim(1) != s.GroupNc() || t.Dim(2) != s.Fy || t.Dim(3) != s.Fx {
		panic(fmt.Sprintf("conv: weight shape %v does not match spec %v (want [%d %d %d %d])",
			t.Dims, s, s.Nf, s.GroupNc(), s.Fy, s.Fx))
	}
}

// CheckOutput panics unless t has the output shape for s.
func CheckOutput(s Spec, t *tensor.Tensor) {
	if t.Rank() != 3 || t.Dim(0) != s.Nf || t.Dim(1) != s.OutY() || t.Dim(2) != s.OutX() {
		panic(fmt.Sprintf("conv: output shape %v does not match spec %v (want [%d %d %d])",
			t.Dims, s, s.Nf, s.OutY(), s.OutX()))
	}
}

// NewInput allocates a zero input tensor for s.
func NewInput(s Spec) *tensor.Tensor { return tensor.New(s.Nc, s.Ny, s.Nx) }

// NewWeights allocates a zero weight tensor for s.
func NewWeights(s Spec) *tensor.Tensor { return tensor.New(s.WeightDims()...) }

// NewOutput allocates a zero output tensor for s.
func NewOutput(s Spec) *tensor.Tensor { return tensor.New(s.Nf, s.OutY(), s.OutX()) }

// ForwardRef computes Eq. 2 directly (generalized with padding, dilation
// and groups):
//
//	O[f,y,x] = Σ_{cc,ky,kx} I[g·Nc/G+cc, y·sy+ky·dy−py, x·sx+kx·dx−px] · W[f,cc,ky,kx]
//
// where g = f/(Nf/G) and out-of-range input positions contribute zero.
// For plain specs the accumulation order (c, ky, kx) is unchanged, so
// results stay bit-identical to the pre-generalization oracle.
func ForwardRef(s Spec, out, in, w *tensor.Tensor) {
	s.MustValidate()
	CheckInput(s, in)
	CheckWeights(s, w)
	CheckOutput(s, out)
	oy, ox := s.OutY(), s.OutX()
	gnc, gnf := s.GroupNc(), s.GroupNf()
	dx, dy := s.DilX(), s.DilY()
	for f := 0; f < s.Nf; f++ {
		cbase := (f / gnf) * gnc
		for y := 0; y < oy; y++ {
			for x := 0; x < ox; x++ {
				var sum float32
				for cc := 0; cc < gnc; cc++ {
					for ky := 0; ky < s.Fy; ky++ {
						iy := y*s.Sy + ky*dy - s.Py
						if iy < 0 || iy >= s.Ny {
							continue
						}
						irow := in.Row3(cbase+cc, iy)
						wrow := w.Data[((f*gnc+cc)*s.Fy+ky)*s.Fx:]
						for kx := 0; kx < s.Fx; kx++ {
							ix := x*s.Sx + kx*dx - s.Px
							if ix < 0 || ix >= s.Nx {
								continue
							}
							sum += irow[ix] * wrow[kx]
						}
					}
				}
				out.Set3(f, y, x, sum)
			}
		}
	}
}

// BackwardInputRef computes Eq. 3 (as the adjoint scatter of Eq. 2, which
// avoids the divisibility bookkeeping of the gather form):
//
//	EI[c, y·sy+ky·dy−py, x·sx+kx·dx−px] += EO[f,y,x] · W[f,cc,ky,kx]
//
// with out-of-range target positions (padding taps) dropped — the exact
// adjoint of zero padding.
func BackwardInputRef(s Spec, ei, eo, w *tensor.Tensor) {
	s.MustValidate()
	CheckInput(s, ei)
	CheckWeights(s, w)
	CheckOutput(s, eo)
	ei.Zero()
	oy, ox := s.OutY(), s.OutX()
	gnc, gnf := s.GroupNc(), s.GroupNf()
	dx, dy := s.DilX(), s.DilY()
	for f := 0; f < s.Nf; f++ {
		cbase := (f / gnf) * gnc
		for y := 0; y < oy; y++ {
			for x := 0; x < ox; x++ {
				e := eo.At3(f, y, x)
				if e == 0 {
					continue
				}
				for cc := 0; cc < gnc; cc++ {
					for ky := 0; ky < s.Fy; ky++ {
						iy := y*s.Sy + ky*dy - s.Py
						if iy < 0 || iy >= s.Ny {
							continue
						}
						erow := ei.Row3(cbase+cc, iy)
						wrow := w.Data[((f*gnc+cc)*s.Fy+ky)*s.Fx:]
						for kx := 0; kx < s.Fx; kx++ {
							ix := x*s.Sx + kx*dx - s.Px
							if ix < 0 || ix >= s.Nx {
								continue
							}
							erow[ix] += e * wrow[kx]
						}
					}
				}
			}
		}
	}
}

// BackwardInputGatherRef computes Eq. 3 exactly as written in the paper —
// the gather form with the (y−ky)/sy index arithmetic — as a second,
// independently-derived oracle:
//
//	EI[c,y,x] = Σ_{f,ky,kx} EO[f, (y+py−ky·dy)/sy, (x+px−kx·dx)/sx] · W[f,cc,ky,kx]
//
// where terms are included only when the divisions are exact and in range
// and f ranges over c's feature group.
func BackwardInputGatherRef(s Spec, ei, eo, w *tensor.Tensor) {
	s.MustValidate()
	CheckInput(s, ei)
	CheckWeights(s, w)
	CheckOutput(s, eo)
	oy, ox := s.OutY(), s.OutX()
	gnc, gnf := s.GroupNc(), s.GroupNf()
	dx, dy := s.DilX(), s.DilY()
	for c := 0; c < s.Nc; c++ {
		g := c / gnc
		cc := c - g*gnc
		for y := 0; y < s.Ny; y++ {
			for x := 0; x < s.Nx; x++ {
				var sum float32
				for ff := 0; ff < gnf; ff++ {
					f := g*gnf + ff
					for ky := 0; ky < s.Fy; ky++ {
						ry := y + s.Py - ky*dy
						if ry < 0 || ry%s.Sy != 0 || ry/s.Sy >= oy {
							continue
						}
						for kx := 0; kx < s.Fx; kx++ {
							rx := x + s.Px - kx*dx
							if rx < 0 || rx%s.Sx != 0 || rx/s.Sx >= ox {
								continue
							}
							sum += eo.At3(f, ry/s.Sy, rx/s.Sx) * w.At4(f, cc, ky, kx)
						}
					}
				}
				ei.Set3(c, y, x, sum)
			}
		}
	}
}

// BackwardWeightsRef computes Eq. 4 directly:
//
//	dW[f,cc,ky,kx] = Σ_{y,x} EO[f,y,x] · I[g·Nc/G+cc, y·sy+ky·dy−py, x·sx+kx·dx−px]
//
// with out-of-range input positions contributing zero.
func BackwardWeightsRef(s Spec, dw, eo, in *tensor.Tensor) {
	s.MustValidate()
	CheckWeights(s, dw)
	CheckOutput(s, eo)
	CheckInput(s, in)
	dw.Zero()
	oy, ox := s.OutY(), s.OutX()
	gnc, gnf := s.GroupNc(), s.GroupNf()
	dx, dy := s.DilX(), s.DilY()
	for f := 0; f < s.Nf; f++ {
		cbase := (f / gnf) * gnc
		for y := 0; y < oy; y++ {
			erow := eo.Row3(f, y)
			for x := 0; x < ox; x++ {
				e := erow[x]
				if e == 0 {
					continue
				}
				for cc := 0; cc < gnc; cc++ {
					for ky := 0; ky < s.Fy; ky++ {
						iy := y*s.Sy + ky*dy - s.Py
						if iy < 0 || iy >= s.Ny {
							continue
						}
						irow := in.Row3(cbase+cc, iy)
						drow := dw.Data[((f*gnc+cc)*s.Fy+ky)*s.Fx:]
						for kx := 0; kx < s.Fx; kx++ {
							ix := x*s.Sx + kx*dx - s.Px
							if ix < 0 || ix >= s.Nx {
								continue
							}
							drow[kx] += e * irow[ix]
						}
					}
				}
			}
		}
	}
}
