package gemm

import (
	"math"
	"testing"
	"testing/quick"

	"spgcnn/internal/rng"
)

func randMatrix(r *rng.RNG, rows, cols int) *Matrix {
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = float32(r.NormFloat64())
	}
	return m
}

func matricesClose(a, b *Matrix, tol float64) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for i := range a.Data {
		x, y := float64(a.Data[i]), float64(b.Data[i])
		d := math.Abs(x - y)
		if d > tol && d > tol*math.Max(math.Abs(x), math.Abs(y)) {
			return false
		}
	}
	return true
}

func TestNaiveKnownValues(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	b := FromSlice([]float32{5, 6, 7, 8}, 2, 2)
	c := NewMatrix(2, 2)
	Naive(c, a, b)
	want := []float32{19, 22, 43, 50}
	for i := range want {
		if c.Data[i] != want[i] {
			t.Fatalf("C[%d] = %v, want %v", i, c.Data[i], want[i])
		}
	}
}

func TestNaiveIdentity(t *testing.T) {
	r := rng.New(1)
	a := randMatrix(r, 7, 7)
	id := NewMatrix(7, 7)
	for i := 0; i < 7; i++ {
		id.Set(i, i, 1)
	}
	c := NewMatrix(7, 7)
	Naive(c, a, id)
	if !matricesClose(c, a, 0) {
		t.Fatal("A·I != A")
	}
}

func TestSerialMatchesNaive(t *testing.T) {
	r := rng.New(2)
	// Shapes chosen to hit the micro-kernel body plus all remainder paths:
	// M%4, N%4, and K beyond one blockKC.
	shapes := []struct{ m, k, n int }{
		{1, 1, 1}, {4, 4, 4}, {5, 3, 7}, {16, 16, 16}, {13, 300, 9},
		{64, 64, 64}, {65, 257, 31}, {3, 9, 513}, {70, 10, 4},
	}
	for _, s := range shapes {
		a := randMatrix(r, s.m, s.k)
		b := randMatrix(r, s.k, s.n)
		want := NewMatrix(s.m, s.n)
		got := NewMatrix(s.m, s.n)
		Naive(want, a, b)
		Serial(got, a, b)
		if !matricesClose(got, want, 1e-4) {
			t.Fatalf("Serial differs from Naive for %dx%dx%d", s.m, s.k, s.n)
		}
	}
}

func TestSerialOverwrites(t *testing.T) {
	r := rng.New(3)
	a := randMatrix(r, 5, 5)
	b := randMatrix(r, 5, 5)
	c := randMatrix(r, 5, 5) // garbage in C
	want := NewMatrix(5, 5)
	Naive(want, a, b)
	Serial(c, a, b)
	if !matricesClose(c, want, 1e-4) {
		t.Fatal("Serial did not overwrite pre-existing C contents")
	}
}

func TestSerialAccumAccumulates(t *testing.T) {
	r := rng.New(4)
	a := randMatrix(r, 6, 6)
	b := randMatrix(r, 6, 6)
	c := NewMatrix(6, 6)
	Serial(c, a, b)
	doubled := c.Clone()
	SerialAccum(doubled, a, b)
	want := c.Clone()
	want.Zero()
	for i := range want.Data {
		want.Data[i] = 2 * c.Data[i]
	}
	if !matricesClose(doubled, want, 1e-4) {
		t.Fatal("SerialAccum did not accumulate C += A·B")
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	r := rng.New(5)
	for _, workers := range []int{1, 2, 3, 4, 16} {
		for _, s := range []struct{ m, k, n int }{{1, 5, 5}, {17, 33, 29}, {64, 16, 48}} {
			a := randMatrix(r, s.m, s.k)
			b := randMatrix(r, s.k, s.n)
			want := NewMatrix(s.m, s.n)
			got := NewMatrix(s.m, s.n)
			Serial(want, a, b)
			Parallel(got, a, b, workers)
			if !matricesClose(got, want, 1e-4) {
				t.Fatalf("Parallel(workers=%d) differs for %dx%dx%d", workers, s.m, s.k, s.n)
			}
		}
	}
}

func TestBatchMatchesSerial(t *testing.T) {
	r := rng.New(6)
	const n = 7
	as := make([]*Matrix, n)
	bs := make([]*Matrix, n)
	cs := make([]*Matrix, n)
	want := make([]*Matrix, n)
	for i := 0; i < n; i++ {
		as[i] = randMatrix(r, 9, 11)
		bs[i] = randMatrix(r, 11, 5)
		cs[i] = NewMatrix(9, 5)
		want[i] = NewMatrix(9, 5)
		Serial(want[i], as[i], bs[i])
	}
	Batch(cs, as, bs, 4)
	for i := 0; i < n; i++ {
		if !matricesClose(cs[i], want[i], 1e-4) {
			t.Fatalf("Batch instance %d differs", i)
		}
	}
}

func TestBatchLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Batch with mismatched slice lengths did not panic")
		}
	}()
	Batch(make([]*Matrix, 1), make([]*Matrix, 2), make([]*Matrix, 2), 1)
}

func TestMulTransA(t *testing.T) {
	r := rng.New(7)
	a := randMatrix(r, 8, 5) // A is 8x5, A^T is 5x8
	b := randMatrix(r, 8, 6)
	got := NewMatrix(5, 6)
	MulTransA(got, a, b)
	want := NewMatrix(5, 6)
	Naive(want, a.Transpose(), b)
	if !matricesClose(got, want, 1e-4) {
		t.Fatal("MulTransA differs from explicit transpose")
	}
}

func TestMulTransB(t *testing.T) {
	r := rng.New(8)
	a := randMatrix(r, 7, 5)
	b := randMatrix(r, 9, 5) // B is 9x5, B^T is 5x9
	got := NewMatrix(7, 9)
	MulTransB(got, a, b)
	want := NewMatrix(7, 9)
	Naive(want, a, b.Transpose())
	if !matricesClose(got, want, 1e-4) {
		t.Fatal("MulTransB differs from explicit transpose")
	}
}

func TestTransposeInvolution(t *testing.T) {
	r := rng.New(9)
	a := randMatrix(r, 5, 9)
	if !matricesClose(a.Transpose().Transpose(), a, 0) {
		t.Fatal("double transpose is not identity")
	}
}

func TestDimensionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched multiply did not panic")
		}
	}()
	Serial(NewMatrix(2, 2), NewMatrix(2, 3), NewMatrix(2, 2))
}

func TestFlops(t *testing.T) {
	if Flops(2, 3, 4) != 48 {
		t.Fatalf("Flops(2,3,4) = %d, want 48", Flops(2, 3, 4))
	}
	// Large dims must not overflow 32 bits.
	if Flops(4096, 4096, 4096) != 2*4096*4096*4096 {
		t.Fatal("Flops overflowed")
	}
}

func TestSerialPropertyQuick(t *testing.T) {
	// Property: Serial agrees with Naive for arbitrary small shapes.
	r := rng.New(10)
	if err := quick.Check(func(m8, k8, n8 uint8) bool {
		m, k, n := int(m8%24)+1, int(k8%24)+1, int(n8%24)+1
		a := randMatrix(r, m, k)
		b := randMatrix(r, k, n)
		want := NewMatrix(m, n)
		got := NewMatrix(m, n)
		Naive(want, a, b)
		Serial(got, a, b)
		return matricesClose(got, want, 1e-4)
	}, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestLinearityProperty(t *testing.T) {
	// Property: A·(B1 + B2) == A·B1 + A·B2.
	r := rng.New(11)
	if err := quick.Check(func(m8, k8, n8 uint8) bool {
		m, k, n := int(m8%16)+1, int(k8%16)+1, int(n8%16)+1
		a := randMatrix(r, m, k)
		b1 := randMatrix(r, k, n)
		b2 := randMatrix(r, k, n)
		sum := NewMatrix(k, n)
		for i := range sum.Data {
			sum.Data[i] = b1.Data[i] + b2.Data[i]
		}
		left := NewMatrix(m, n)
		Serial(left, a, sum)
		right := NewMatrix(m, n)
		Serial(right, a, b1)
		SerialAccum(right, a, b2)
		return matricesClose(left, right, 1e-3)
	}, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func benchGEMM(b *testing.B, n int, fn func(c, x, y *Matrix)) {
	r := rng.New(1)
	x := randMatrix(r, n, n)
	y := randMatrix(r, n, n)
	c := NewMatrix(n, n)
	b.SetBytes(int64(3 * n * n * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fn(c, x, y)
	}
	b.ReportMetric(float64(Flops(n, n, n))*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFlops")
}

func BenchmarkNaive128(b *testing.B)  { benchGEMM(b, 128, Naive) }
func BenchmarkSerial128(b *testing.B) { benchGEMM(b, 128, Serial) }
func BenchmarkSerial256(b *testing.B) { benchGEMM(b, 256, Serial) }
func BenchmarkParallel256(b *testing.B) {
	benchGEMM(b, 256, func(c, x, y *Matrix) { Parallel(c, x, y, 4) })
}
