// Package fftconv implements FFT-based forward convolution — the
// complementary acceleration the paper's related work cites (Mathieu,
// Henaff & LeCun, "Fast training of convolutional networks through FFTs").
//
// For a unit-stride convolution, Eq. 2 is a cross-correlation; flipping
// the kernel turns it into a linear convolution, which the convolution
// theorem evaluates as a pointwise product in the frequency domain:
//
//	O_f = Σ_c valid( IFFT( FFT(pad(I_c)) · FFT(pad(flip(W_fc))) ) )
//
// The asymptotic win over direct convolution grows with kernel size
// (O(P²·log P) per plane versus O(N²·F²)); for the small kernels of most
// CNN layers the transforms dominate, which is why the paper's stencil —
// not the FFT — is the small-kernel answer. This engine exists to make
// that trade-off executable and measurable.
//
// Strided convolutions do not map onto the convolution theorem; this
// kernel transparently falls back to unfold+GEMM for them, and for both
// back-propagation computations (the paper treats FFT as an FP technique).
package fftconv

import (
	"spgcnn/internal/conv"
	"spgcnn/internal/engine"
	"spgcnn/internal/fft"
	"spgcnn/internal/tensor"
	"spgcnn/internal/unfoldgemm"
)

// Kernel is an FFT forward-convolution kernel for one spec.
type Kernel struct {
	spec   conv.Spec
	ph, pw int // padded plane dims (powers of two)

	ifreq [][]complex128 // per-channel input spectra
	wbuf  []complex128   // kernel spectrum scratch
	acc   []complex128   // per-feature accumulator

	fallback *unfoldgemm.Kernel
}

// New builds an FFT convolution kernel for s.
func New(s conv.Spec) *Kernel {
	s.MustValidate()
	k := &Kernel{
		spec:     s,
		ph:       fft.NextPow2(s.Ny + s.Fy - 1),
		pw:       fft.NextPow2(s.Nx + s.Fx - 1),
		fallback: unfoldgemm.New(s, 1),
	}
	if s.Sx == 1 && s.Sy == 1 {
		n := k.ph * k.pw
		k.ifreq = make([][]complex128, s.Nc)
		for c := range k.ifreq {
			k.ifreq[c] = make([]complex128, n)
		}
		k.wbuf = make([]complex128, n)
		k.acc = make([]complex128, n)
	}
	return k
}

// Name implements engine.Kernel.
func (k *Kernel) Name() string { return "fft-conv" }

// Spec implements engine.Kernel.
func (k *Kernel) Spec() conv.Spec { return k.spec }

// PaddedDims returns the transform plane size.
func (k *Kernel) PaddedDims() (h, w int) { return k.ph, k.pw }

// Forward computes Eq. 2 via the convolution theorem for unit-stride
// specs, falling back to unfold+GEMM otherwise.
func (k *Kernel) Forward(out, in, w *tensor.Tensor) {
	s := k.spec
	if s.Sx != 1 || s.Sy != 1 {
		k.fallback.Forward(out, in, w)
		return
	}
	conv.CheckInput(s, in)
	conv.CheckWeights(s, w)
	conv.CheckOutput(s, out)

	// Input spectra, once per channel.
	for c := 0; c < s.Nc; c++ {
		plane := k.ifreq[c]
		for i := range plane {
			plane[i] = 0
		}
		for y := 0; y < s.Ny; y++ {
			row := in.Row3(c, y)
			base := y * k.pw
			for x, v := range row {
				plane[base+x] = complex(float64(v), 0)
			}
		}
		fft.FFT2D(plane, k.ph, k.pw)
	}

	oy, ox := s.OutY(), s.OutX()
	for f := 0; f < s.Nf; f++ {
		for i := range k.acc {
			k.acc[i] = 0
		}
		for c := 0; c < s.Nc; c++ {
			// Flipped, padded kernel spectrum.
			for i := range k.wbuf {
				k.wbuf[i] = 0
			}
			wBase := (f*s.Nc + c) * s.Fy * s.Fx
			for ky := 0; ky < s.Fy; ky++ {
				for kx := 0; kx < s.Fx; kx++ {
					v := w.Data[wBase+ky*s.Fx+kx]
					k.wbuf[(s.Fy-1-ky)*k.pw+(s.Fx-1-kx)] = complex(float64(v), 0)
				}
			}
			fft.FFT2D(k.wbuf, k.ph, k.pw)
			src := k.ifreq[c]
			for i := range k.acc {
				k.acc[i] += src[i] * k.wbuf[i]
			}
		}
		fft.IFFT2D(k.acc, k.ph, k.pw)
		// The correlation's valid region sits at offset (Fy-1, Fx-1) of
		// the linear convolution with the flipped kernel.
		for y := 0; y < oy; y++ {
			dst := out.Row3(f, y)
			base := (y + s.Fy - 1) * k.pw
			for x := 0; x < ox; x++ {
				dst[x] = float32(real(k.acc[base+x+s.Fx-1]))
			}
		}
	}
}

// BackwardInput implements engine.Kernel via the unfold+GEMM fallback.
func (k *Kernel) BackwardInput(ei, eo, w *tensor.Tensor) {
	k.fallback.BackwardInput(ei, eo, w)
}

// BackwardWeights implements engine.Kernel via the unfold+GEMM fallback.
func (k *Kernel) BackwardWeights(dw, eo, in *tensor.Tensor) {
	k.fallback.BackwardWeights(dw, eo, in)
}

// Generator returns the engine.Generator for the FFT technique.
func Generator() engine.Generator {
	return engine.Generator{
		Name: "fft-conv",
		New:  func(s conv.Spec) engine.Kernel { return New(s) },
	}
}
