// Package bench is the experiment harness that regenerates every table and
// figure of the paper's evaluation (the per-experiment index lives in
// DESIGN.md §4). Each experiment is a named runner producing Tables —
// column-aligned text for the terminal, CSV for plotting — from either the
// analytical machine model (multicore shapes; see the substitution note in
// DESIGN.md §2) or real execution on this host (single-core comparisons,
// training runs).
package bench

import (
	"fmt"
	"strings"
)

// Table is a rendered experiment result: a titled grid of string cells.
type Table struct {
	Title   string
	Note    string
	Columns []string
	Rows    [][]string
}

// AddRow appends a row, formatting each cell with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// formatFloat renders with precision appropriate to magnitude, so GFlops
// (tens) and speedups (units) both read naturally.
func formatFloat(v float64) string {
	av := v
	if av < 0 {
		av = -av
	}
	switch {
	case av == 0:
		return "0"
	case av >= 1000:
		return fmt.Sprintf("%.0f", v)
	case av >= 10:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

// Render returns the table as aligned text.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	if t.Note != "" {
		fmt.Fprintf(&b, "   %s\n", t.Note)
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// CSV returns the table in CSV form (quoted cells where needed).
func (t *Table) CSV() string {
	var b strings.Builder
	writeCSVRow(&b, t.Columns)
	for _, row := range t.Rows {
		writeCSVRow(&b, row)
	}
	return b.String()
}

func writeCSVRow(b *strings.Builder, cells []string) {
	for i, c := range cells {
		if i > 0 {
			b.WriteByte(',')
		}
		if strings.ContainsAny(c, ",\"\n") {
			b.WriteByte('"')
			b.WriteString(strings.ReplaceAll(c, `"`, `""`))
			b.WriteByte('"')
		} else {
			b.WriteString(c)
		}
	}
	b.WriteByte('\n')
}
