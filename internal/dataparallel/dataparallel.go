// Package dataparallel implements synchronous data-parallel SGD across
// model replicas — the cluster-scale context the paper situates spg-CNN in
// (§1, §6: DistBelief and Adam train large CNNs with many multicore-CPU
// workers; spg-CNN raises each worker's throughput). Workers here are
// goroutines with full model replicas, which makes the scaling structure
// of data parallelism — shard compute, synchronize parameters — executable
// and testable on one machine.
//
// Every global minibatch is sharded across the replicas; each replica runs
// forward/backward on its shard and applies a locally-scaled SGD step, and
// every SyncEvery steps the replicas' parameters are averaged (an
// all-reduce). With SyncEvery = 1 and plain SGD this is mathematically
// identical to single-worker large-batch SGD (the averaging of
// per-shard-scaled steps reconstructs the global gradient average);
// SyncEvery > 1 is local SGD with periodic averaging, trading
// synchronization cost for gradient staleness exactly as the paper's §6
// discussion of parameter-synchronization latency describes.
package dataparallel

import (
	"fmt"
	"math"
	"sync"
	"time"

	"spgcnn/internal/core"
	"spgcnn/internal/exec"
	"spgcnn/internal/netdef"
	"spgcnn/internal/nn"
	"spgcnn/internal/plan"
	"spgcnn/internal/rng"
	"spgcnn/internal/tensor"
	"spgcnn/internal/trace"
)

// Config tunes the data-parallel run.
type Config struct {
	// Replicas is the worker count (>= 1).
	Replicas int
	// LR is the learning rate of the equivalent global-batch SGD.
	LR float32
	// GlobalBatch is the per-step minibatch size, sharded across replicas.
	GlobalBatch int
	// SyncEvery is the parameter-averaging period in steps (default 1 =
	// fully synchronous).
	SyncEvery int
}

// Trainer coordinates the replicas.
type Trainer struct {
	cfg      Config
	replicas []*nn.Network
	trainers []*shardState
	ctxs     []*exec.Ctx // per-replica execution contexts (NewFromDef only)
	planner  core.Planner
	loss     nn.SoftmaxXent

	steps int
	syncs int

	rec      *trace.Recorder
	coord    *trace.Emitter   // replica -1: all-reduce, planner, epoch accounting
	emitters []*trace.Emitter // one per replica
}

// shardState is one replica's working storage.
type shardState struct {
	inputs  []*tensor.Tensor
	dlogits []*tensor.Tensor
	loss    float64
	correct int
	images  int
	secs    float64 // wall time of the replica's last step
}

// New builds a data-parallel trainer. The builder must return
// identically-initialized networks (call it with the same seed per
// replica); this is verified by comparing the first parameter tensor.
func New(build func(replica int) *nn.Network, cfg Config) (*Trainer, error) {
	if cfg.Replicas < 1 {
		return nil, fmt.Errorf("dataparallel: replicas %d < 1", cfg.Replicas)
	}
	if cfg.GlobalBatch < cfg.Replicas {
		return nil, fmt.Errorf("dataparallel: global batch %d smaller than replica count %d",
			cfg.GlobalBatch, cfg.Replicas)
	}
	if cfg.GlobalBatch%cfg.Replicas != 0 {
		return nil, fmt.Errorf("dataparallel: global batch %d not divisible by %d replicas",
			cfg.GlobalBatch, cfg.Replicas)
	}
	if cfg.SyncEvery < 1 {
		cfg.SyncEvery = 1
	}
	t := &Trainer{cfg: cfg}
	for i := 0; i < cfg.Replicas; i++ {
		net := build(i)
		if net == nil {
			return nil, fmt.Errorf("dataparallel: builder returned nil for replica %d", i)
		}
		t.replicas = append(t.replicas, net)
		t.trainers = append(t.trainers, &shardState{})
	}
	if err := t.checkAligned(); err != nil {
		return nil, err
	}
	return t, nil
}

// NewFromDef builds a data-parallel trainer whose replicas are constructed
// from one network description — the common case — with every replica
// sharing a single strategy planner. Replica 0's first measurement of each
// layer geometry is deployed verbatim to replicas 1..N-1 (and concurrent
// first-touch tuning is single-flighted), so an N-replica trainer pays for
// one tuning pass per distinct (geometry, phase, sparsity band), not N.
//
// Each replica still gets its own execution context: scratch arenas and
// probes must not be shared across goroutines that run concurrently. The
// Workers/Ctx fields of opts set the per-replica worker count; opts.Ctx,
// if non-nil, is used for replica 0 only and its worker count is cloned
// for the rest. If opts.Planner is nil a fresh shared plan.Planner is
// created (reachable afterward via Planner()).
func NewFromDef(def *netdef.NetDef, opts netdef.BuildOptions, cfg Config) (*Trainer, error) {
	if opts.Planner == nil {
		opts.Planner = plan.New(plan.Options{})
	}
	ctx0 := opts.Ctx
	workers := opts.Workers
	if ctx0 != nil {
		workers = ctx0.Workers()
	}
	var buildErr error
	var ctxs []*exec.Ctx
	t, err := New(func(replica int) *nn.Network {
		ro := opts
		if replica == 0 && ctx0 != nil {
			ro.Ctx = ctx0
		} else {
			ro.Ctx = exec.New(workers)
		}
		net, err := netdef.Build(def, ro)
		if err != nil {
			if buildErr == nil {
				buildErr = fmt.Errorf("dataparallel: replica %d: %w", replica, err)
			}
			return nil
		}
		ctxs = append(ctxs, ro.Ctx)
		return net
	}, cfg)
	if buildErr != nil {
		return nil, buildErr
	}
	if err != nil {
		return nil, err
	}
	t.ctxs = ctxs
	t.planner = opts.Planner
	return t, nil
}

// Contexts returns the per-replica execution contexts (nil when the
// trainer was built with New, which does not see the builder's contexts).
func (t *Trainer) Contexts() []*exec.Ctx { return t.ctxs }

// AddSink attaches an additional probe sink to every replica's execution
// context — how span observers that span replicas (the drift observatory)
// ride the trainer. Only usable on NewFromDef trainers, whose contexts the
// trainer owns; a no-op otherwise.
func (t *Trainer) AddSink(s exec.Sink) {
	for _, c := range t.ctxs {
		if c != nil {
			c.Probe().AddSink(s)
		}
	}
}

// BindTrace attaches a trace recorder to the trainer: each replica gets an
// emitter (its probe stream — layer, core and tune spans — plus arena
// growth land on its timeline row), the coordinator emitter carries
// all-reduce spans and epoch accounting, the shared planner's activity is
// traced when it is a *plan.Planner, and replica 0's conv layer flop
// metadata is registered for goodput-waste attribution. Call once, before
// training; a nil recorder is a no-op.
func (t *Trainer) BindTrace(rec *trace.Recorder) {
	if rec == nil {
		return
	}
	t.rec = rec
	t.coord = rec.Emitter(-1, 0)
	t.emitters = make([]*trace.Emitter, len(t.replicas))
	for w := range t.replicas {
		em := rec.Emitter(w, 0)
		t.emitters[w] = em
		if w < len(t.ctxs) && t.ctxs[w] != nil {
			t.ctxs[w].Probe().AddSink(trace.NewProbeSink(em))
			em := em
			t.ctxs[w].Arena().SetGrowHook(func(bytes int64) {
				em.Instant("arena", "grow", "", float64(bytes))
			})
		}
	}
	if p, ok := t.planner.(*plan.Planner); ok {
		p.SetTrace(t.coord)
	}
	for _, c := range t.replicas[0].ConvLayers() {
		spec := c.Spec()
		rec.AddLayerMeta(trace.LayerMeta{
			Name:    c.Name(),
			FPFlops: spec.FlopsFP(),
			BPFlops: spec.FlopsBPInput() + spec.FlopsBPWeights(),
		})
	}
}

// em returns replica w's emitter (nil when no recorder is bound — every
// emitter method is nil-safe).
func (t *Trainer) em(w int) *trace.Emitter {
	if w < len(t.emitters) {
		return t.emitters[w]
	}
	return nil
}

// Planner returns the strategy planner the replicas share (nil when the
// trainer was built with New and no planner was threaded through).
func (t *Trainer) Planner() core.Planner { return t.planner }

// checkAligned verifies the replicas start from identical parameters.
func (t *Trainer) checkAligned() error {
	if len(t.replicas) < 2 {
		return nil
	}
	ref := t.replicas[0].Parameters()
	for i := 1; i < len(t.replicas); i++ {
		ps := t.replicas[i].Parameters()
		if len(ps) != len(ref) {
			return fmt.Errorf("dataparallel: replica %d has %d parameters, replica 0 has %d",
				i, len(ps), len(ref))
		}
		for j := range ps {
			if ps[j].Name != ref[j].Name || !ps[j].Tensor.SameShape(ref[j].Tensor) {
				return fmt.Errorf("dataparallel: replica %d parameter %q mismatches replica 0", i, ps[j].Name)
			}
			if tensor.MaxAbsDiff(ps[j].Tensor, ref[j].Tensor) != 0 {
				return fmt.Errorf("dataparallel: replica %d parameter %q initialized differently "+
					"(the builder must use the same seed for every replica)", i, ps[j].Name)
			}
		}
	}
	return nil
}

// ReplicaStats summarizes one replica's step times over an epoch — the
// straggler surface of a synchronous data-parallel run.
type ReplicaStats struct {
	Replica int
	Steps   int
	// Total/Min/Max are the replica's per-step wall times in seconds.
	Total, Min, Max float64
	// BarrierWait is the cumulative time this replica spent finished,
	// waiting at the step barrier for the slowest replica (seconds).
	BarrierWait float64
}

// Mean returns the replica's mean step time.
func (r ReplicaStats) Mean() float64 {
	if r.Steps == 0 {
		return 0
	}
	return r.Total / float64(r.Steps)
}

// Stats reports one epoch.
type Stats struct {
	Loss         float64
	Accuracy     float64
	Images       int
	Seconds      float64
	ImagesPerSec float64
	Steps        int
	Syncs        int
	// Replicas holds per-replica step-time min/max/mean and barrier-wait
	// attribution for this epoch.
	Replicas []ReplicaStats
	// ConvSparsity maps conv layer name to its mean gradient sparsity over
	// the epoch, averaged across replicas.
	ConvSparsity map[string]float64
	// ConvGFlops / ConvGoodputGFlops mirror nn.EpochStats: the dense conv
	// work rate and the Eq. 9 useful-work rate over the global image count.
	ConvGFlops        float64
	ConvGoodputGFlops float64
}

// TrainEpoch runs one shuffled pass over the dataset. Trailing examples
// that do not fill a whole global batch are skipped (every step must shard
// evenly); size datasets as multiples of GlobalBatch for exact epochs.
func (t *Trainer) TrainEpoch(ds nn.Dataset, r *rng.RNG) Stats {
	cfg := t.cfg
	shard := cfg.GlobalBatch / cfg.Replicas
	t.ensureBuffers(shard)
	order := r.Perm(ds.Len())
	start := time.Now()
	var totalLoss float64
	correct, images := 0, 0
	epochSyncs := 0

	perRep := make([]ReplicaStats, cfg.Replicas)
	for w := range perRep {
		perRep[w] = ReplicaStats{Replica: w, Min: math.MaxFloat64}
	}

	for lo := 0; lo+cfg.GlobalBatch <= len(order); lo += cfg.GlobalBatch {
		t.rec.SetStep(int64(t.steps + 1))
		var wg sync.WaitGroup
		wg.Add(cfg.Replicas)
		for w := 0; w < cfg.Replicas; w++ {
			go func(w int) {
				defer wg.Done()
				st := t.trainers[w]
				net := t.replicas[w]
				base := lo + w*shard
				stepStart := time.Now()
				t.em(w).Region("step", "step", func() {
					for i := 0; i < shard; i++ {
						ds.Image(order[base+i], st.inputs[i])
					}
					logits := net.Forward(st.inputs[:shard])
					st.loss, st.correct = 0, 0
					for i := 0; i < shard; i++ {
						l, ok := t.loss.Loss(logits[i], ds.Label(order[base+i]), st.dlogits[i])
						st.loss += l
						if ok {
							st.correct++
						}
					}
					st.images = shard
					net.Backward(st.dlogits[:shard], st.inputs[:shard])
					// Locally-scaled step: lr/shard per replica; averaging
					// across replicas reconstructs the lr/GlobalBatch global
					// step (see package comment).
					net.ApplyGrads(cfg.LR, shard)
				})
				st.secs = time.Since(stepStart).Seconds()
			}(w)
		}
		wg.Wait()
		slowest := 0.0
		for _, st := range t.trainers {
			totalLoss += st.loss
			correct += st.correct
			images += st.images
			if st.secs > slowest {
				slowest = st.secs
			}
		}
		for w, st := range t.trainers {
			r := &perRep[w]
			r.Steps++
			r.Total += st.secs
			if st.secs < r.Min {
				r.Min = st.secs
			}
			if st.secs > r.Max {
				r.Max = st.secs
			}
			if cfg.Replicas >= 2 && st.secs < slowest {
				wait := slowest - st.secs
				r.BarrierWait += wait
				t.em(w).Instant("sync", "barrier", "", wait)
			}
		}
		t.steps++
		if t.steps%cfg.SyncEvery == 0 {
			arStart := time.Now()
			t.allReduce()
			t.coord.Span("sync", "allreduce", arStart, time.Since(arStart))
			t.syncs++
			epochSyncs++
		}
	}
	// Epoch boundary: run every replica's scheduler re-check (§4.4's
	// periodic BP re-measurement). Replicas share the planner, so at most
	// one re-measurement per distinct geometry actually runs; the rest
	// deploy the refreshed verdict from cache.
	for _, net := range t.replicas {
		net.EpochEnd()
	}
	elapsed := time.Since(start).Seconds()
	for w := range perRep {
		if perRep[w].Steps == 0 {
			perRep[w].Min = 0
		}
	}
	stats := Stats{
		Loss:     safeDiv(totalLoss, float64(images)),
		Accuracy: safeDiv(float64(correct), float64(images)),
		Images:   images,
		Seconds:  elapsed,
		Steps:    t.steps,
		Syncs:    epochSyncs,
		Replicas: perRep,
	}
	if elapsed > 0 {
		stats.ImagesPerSec = float64(images) / elapsed
	}
	t.convAccounting(&stats, images, elapsed)
	return stats
}

// convAccounting fills the epoch's sparsity map and work rates (Eq. 9/10)
// and, when a tracer is bound, emits the epoch accounting events the
// goodput-waste analyzer consumes and refreshes the live sparsity band.
func (t *Trainer) convAccounting(stats *Stats, images int, elapsed float64) {
	stats.ConvSparsity = map[string]float64{}
	counts := map[string]int{}
	for _, net := range t.replicas {
		for _, c := range net.ConvLayers() {
			if s, ok := c.TakeSparsity(); ok {
				stats.ConvSparsity[c.Name()] += s
				counts[c.Name()]++
			}
		}
	}
	meanAll, layers := 0.0, 0
	for name, n := range counts {
		stats.ConvSparsity[name] /= float64(n)
		meanAll += stats.ConvSparsity[name]
		layers++
	}
	var denseFlops, usefulFlops float64
	for _, c := range t.replicas[0].ConvLayers() {
		spec := c.Spec()
		fp := float64(spec.FlopsFP()) * float64(images)
		bp := float64(spec.FlopsBPInput()+spec.FlopsBPWeights()) * float64(images)
		denseFlops += fp + bp
		s, ok := stats.ConvSparsity[c.Name()]
		if !ok {
			s = 0
		}
		usefulFlops += fp + bp*(1-s)
	}
	if elapsed > 0 {
		stats.ConvGFlops = denseFlops / elapsed / 1e9
		stats.ConvGoodputGFlops = usefulFlops / elapsed / 1e9
	}
	if t.rec == nil {
		return
	}
	if layers > 0 {
		t.rec.SetBand(plan.Band(meanAll / float64(layers)))
	}
	t.coord.Instant("epoch", "epoch", "", float64(images))
	for name, s := range stats.ConvSparsity {
		t.coord.Instant("sparsity", "sparsity/"+name, name, s)
	}
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// allReduce averages every parameter across replicas and writes the mean
// back to all of them.
func (t *Trainer) allReduce() {
	if len(t.replicas) < 2 {
		return
	}
	params := make([][]nn.NamedParam, len(t.replicas))
	for i, net := range t.replicas {
		params[i] = net.Parameters()
	}
	inv := 1 / float32(len(t.replicas))
	for j := range params[0] {
		mean := params[0][j].Tensor
		for i := 1; i < len(t.replicas); i++ {
			mean.AddScaled(params[i][j].Tensor, 1)
		}
		mean.Scale(inv)
		for i := 1; i < len(t.replicas); i++ {
			copy(params[i][j].Tensor.Data, mean.Data)
		}
	}
}

// Replica returns replica i's network (replica 0 is the canonical model
// after a sync).
func (t *Trainer) Replica(i int) *nn.Network { return t.replicas[i] }

// Syncs returns the total number of all-reduce rounds performed.
func (t *Trainer) Syncs() int { return t.syncs }

func (t *Trainer) ensureBuffers(shard int) {
	in := t.replicas[0].InDims()
	out := t.replicas[0].OutDims()
	for _, st := range t.trainers {
		for len(st.inputs) < shard {
			st.inputs = append(st.inputs, tensor.New(in...))
			st.dlogits = append(st.dlogits, tensor.New(out...))
		}
	}
}
