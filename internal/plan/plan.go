// Package plan is spg-CNN's strategy-selection subsystem: the paper's
// §4.4 measure-and-deploy scheduler promoted to a first-class planner
// with an analytical front end and a persistent, host-keyed plan cache.
//
// A selection request flows through three stages:
//
//  1. Model-first pass — the §3 AIT characterization (ait.Classify's
//     Fig. 1 region plus the internal/machine roofline rates) ranks the
//     candidate strategies and prunes the clearly-dominated ones, so the
//     measured search runs over a shortlist instead of the full set
//     (the analytical-pruning idea of Li et al., PAPERS.md).
//  2. Measured tuning — core.ChooseFP/ChooseBP time the survivors on
//     sample tensors under the caller's execution context, exactly as the
//     paper's scheduler does.
//  3. Plan cache — the verdict is stored under a Key of host fingerprint
//     × conv.Spec × worker count × sparsity band. Later requests with the
//     same key (another layer with the same geometry, another dataparallel
//     replica, another process loading the saved cache) deploy the cached
//     verdict with zero measurement passes. Concurrent first requests are
//     single-flighted: one caller measures, the rest wait and share.
//
// The Planner satisfies core.Planner, so core.AutoConv, nn.Conv, netdef
// network construction and the CLIs all delegate selection here.
package plan

import (
	"sync"
	"time"

	"spgcnn/internal/conv"
	"spgcnn/internal/core"
	"spgcnn/internal/exec"
	"spgcnn/internal/machine"
	"spgcnn/internal/tensor"
	"spgcnn/internal/trace"
)

// DefaultPruneRatio is the model-prune threshold: a modeled candidate is
// excluded from measurement when its predicted rate is below this fraction
// of the best modeled rate. Deliberately conservative — the model exists
// to skip hopeless candidates, not to decide close races.
const DefaultPruneRatio = 0.2

// Options configures a Planner. The zero value is fully usable: paper
// machine model, this host's fingerprint, the paper's candidate sets, and
// the default prune ratio.
type Options struct {
	// Machine is the analytical model backing the model-first pass.
	// Nil uses machine.Paper().
	Machine *machine.Machine
	// Host overrides the host fingerprint cache keys carry (zero value:
	// machine.HostInfo() of the running process).
	Host machine.Host
	// FP and BP build the candidate sets per worker count (defaults:
	// core.FPStrategies / core.BPStrategies).
	FP, BP func(workers int) []core.Strategy
	// Tune configures measurement passes when the caller's request does
	// not carry its own TuneOptions.
	Tune core.TuneOptions
	// PruneRatio overrides DefaultPruneRatio; negative disables model
	// pruning entirely.
	PruneRatio float64
	// Trace, when non-nil, puts planner activity on the trace timeline:
	// cache hits and single-flight waits as instants, measurement passes
	// as spans carrying the winning strategy. Can also be bound after
	// construction with SetTrace.
	Trace *trace.Emitter
}

// Stats are the planner's cumulative counters — the numbers
// metrics.BindPlanner exports.
type Stats struct {
	// Hits counts requests served from the cache with zero measurement.
	Hits uint64
	// Misses counts requests that entered the measurement path.
	Misses uint64
	// Measurements counts measurement passes actually run (a miss whose
	// single-flight leader is another caller does not measure).
	Measurements uint64
	// Pruned counts candidates the model pass excluded from measurement.
	Pruned uint64
	// ModelAgree / ModelDisagree count measurement passes where the
	// model's top-ranked survivor did / did not win the measurement.
	ModelAgree, ModelDisagree uint64
	// Waits counts requests that blocked on another caller's in-flight
	// measurement of the same key.
	Waits uint64
	// Invalidations counts cached verdicts dropped through Invalidate /
	// InvalidateSpec — the drift observatory's re-tune trigger. Each
	// invalidated key turns the next request for it from a free hit into
	// a fresh measurement pass.
	Invalidations uint64
}

// AgreementRate returns ModelAgree / (ModelAgree + ModelDisagree), or 0
// before any measured comparison.
func (s Stats) AgreementRate() float64 {
	n := s.ModelAgree + s.ModelDisagree
	if n == 0 {
		return 0
	}
	return float64(s.ModelAgree) / float64(n)
}

// Planner owns strategy selection end-to-end. Safe for concurrent use;
// one Planner is typically shared by every layer of a network, every
// replica of a data-parallel trainer, and (via Save/Load) every run on
// the same host.
type Planner struct {
	mach       machine.Machine
	hostInfo   machine.Host
	host       string
	fp, bp     func(workers int) []core.Strategy
	tune       core.TuneOptions
	pruneRatio float64

	mu       sync.Mutex
	entries  map[Key]*Entry
	inflight map[Key]*flight
	st       Stats
	tr       *trace.Emitter
}

var _ core.Planner = (*Planner)(nil)

type flight struct{ done chan struct{} }

// New builds a planner.
func New(opts Options) *Planner {
	p := &Planner{
		hostInfo:   opts.Host,
		fp:         opts.FP,
		bp:         opts.BP,
		tune:       opts.Tune,
		pruneRatio: opts.PruneRatio,
		entries:    make(map[Key]*Entry),
		inflight:   make(map[Key]*flight),
		tr:         opts.Trace,
	}
	if opts.Machine != nil {
		p.mach = *opts.Machine
	} else {
		p.mach = machine.Paper()
	}
	if p.hostInfo == (machine.Host{}) {
		p.hostInfo = machine.HostInfo()
	}
	p.host = p.hostInfo.Fingerprint()
	if p.fp == nil {
		p.fp = core.FPStrategies
	}
	if p.bp == nil {
		p.bp = core.BPStrategies
	}
	switch {
	case p.pruneRatio < 0:
		p.pruneRatio = 0 // disabled
	case p.pruneRatio == 0:
		p.pruneRatio = DefaultPruneRatio
	}
	return p
}

// Host returns the fingerprint the planner keys verdicts under.
func (p *Planner) Host() string { return p.host }

// SetTrace binds (or, with nil, unbinds) a trace emitter after
// construction. The emitter's replica stamp attributes planner events —
// bind the coordinator emitter, since the planner is shared.
func (p *Planner) SetTrace(e *trace.Emitter) {
	p.mu.Lock()
	p.tr = e
	p.mu.Unlock()
}

// Stats returns a snapshot of the planner's counters.
func (p *Planner) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.st
}

// Invalidate drops the cached verdict for exactly k, reporting whether an
// entry was present. The next request for k re-enters the measurement
// path instead of free-hitting — the re-tune primitive the drift
// observatory's trigger callback uses.
func (p *Planner) Invalidate(k Key) bool {
	p.mu.Lock()
	_, ok := p.entries[k]
	if ok {
		delete(p.entries, k)
		p.st.Invalidations++
	}
	tr := p.tr
	p.mu.Unlock()
	if ok {
		tr.Instant("plan", "plan/"+k.Phase+"/invalidate", k.Spec.String(), 0)
	}
	return ok
}

// InvalidateSpec drops every cached verdict for the spec and phase ("fp",
// "bp", or "" for both) on this planner's host — all sparsity bands, batch
// buckets and worker counts — and returns how many entries were dropped.
// Drift is observed per deployed strategy, not per cache band, so the
// trigger path invalidates the whole (spec, phase) family: whichever band
// the next re-check lands in, it re-measures.
func (p *Planner) InvalidateSpec(s conv.Spec, phase string) int {
	s = s.Canon()
	n := 0
	p.mu.Lock()
	for k := range p.entries {
		if k.Spec != s || k.Host != p.host {
			continue
		}
		if phase != "" && k.Phase != phase {
			continue
		}
		delete(p.entries, k)
		n++
	}
	p.st.Invalidations += uint64(n)
	tr := p.tr
	p.mu.Unlock()
	if n > 0 {
		tr.Instant("plan", "plan/invalidate", s.String(), float64(n))
	}
	return n
}

// PlanFP implements core.Planner: forward-propagation selection. FP
// activations are dense, but the WEIGHTS may be pruned — the sparse-weight
// engine's rate scales with weight density — so the key's sparsity band
// carries w.Sparsity(). Dense weights band to 0, which keeps keys (and
// saved caches) from before weight-density keying valid.
func (p *Planner) PlanFP(s conv.Spec, c *exec.Ctx, ins []*tensor.Tensor,
	w *tensor.Tensor, opts core.TuneOptions) core.Planned {
	wSparsity := 0.0
	if w != nil {
		wSparsity = w.Sparsity()
	}
	return p.plan("fp", s, wSparsity, opts.Batch, c, func(survivors []core.Strategy) core.Selection {
		return core.ChooseFP(survivors, s, c, ins, w, p.tuneOpts(opts))
	})
}

// PlanBP implements core.Planner: back-propagation selection, keyed on
// the sample gradients' sparsity band.
func (p *Planner) PlanBP(s conv.Spec, c *exec.Ctx, eos, ins []*tensor.Tensor,
	w *tensor.Tensor, opts core.TuneOptions) core.Planned {
	return p.plan("bp", s, meanSparsity(eos), opts.Batch, c, func(survivors []core.Strategy) core.Selection {
		return core.ChooseBP(survivors, s, c, eos, ins, w, p.tuneOpts(opts))
	})
}

// tuneOpts merges the request's options with the planner defaults
// field-wise: an unset Reps inherits the planner's, while the request's
// batch-bucket key always passes through.
func (p *Planner) tuneOpts(req core.TuneOptions) core.TuneOptions {
	if req.Reps <= 0 {
		req.Reps = p.tune.Reps
	}
	return req
}

func meanSparsity(eos []*tensor.Tensor) float64 {
	if len(eos) == 0 {
		return 0
	}
	sum := 0.0
	for _, eo := range eos {
		sum += eo.Sparsity()
	}
	return sum / float64(len(eos))
}

// candidates builds the phase's candidate set filtered through the
// engine capability seam: strategies whose engines decline s are pruned
// before modeling or measurement, and when nothing survives the reference
// oracle stands in so every valid spec remains plannable.
func (p *Planner) candidates(phase string, workers int, s conv.Spec) []core.Strategy {
	if phase == "fp" {
		return core.SupportedStrategies(p.fp(workers), s)
	}
	return core.SupportedStrategies(p.bp(workers), s)
}

// plan is the shared request path: cache lookup, single-flight dedup, and
// on a genuine miss the model-prune + measure pipeline.
func (p *Planner) plan(phase string, s conv.Spec, sparsity float64, batch int, c *exec.Ctx,
	measure func([]core.Strategy) core.Selection) core.Planned {
	s.MustValidate()
	if c == nil {
		c = exec.New(1)
	}
	if batch < 0 {
		batch = 0
	}
	// Both phases band on their driving sparsity: gradient sparsity for BP,
	// weight sparsity for FP (dense weights band to 0).
	band := Band(sparsity)
	// Canon() folds the spelled-out defaults (dilation 1, groups 1) onto
	// the zero values, so generalized-spec keys never alias plain entries
	// written before the fields existed — and plain specs hash unchanged.
	key := Key{Host: p.host, Spec: s.Canon(), Workers: c.Workers(), Phase: phase, Band: band, Batch: batch}
	for {
		p.mu.Lock()
		if e := p.entries[key]; e != nil {
			entry := *e
			p.mu.Unlock()
			if pd, ok := p.deploy(entry, c); ok {
				p.mu.Lock()
				p.st.Hits++
				tr := p.tr
				p.mu.Unlock()
				tr.Instant("plan", "plan/"+phase+"/hit", entry.Strategy, entry.Seconds)
				return pd
			}
			// The cached strategy no longer resolves against this
			// planner's candidate set: drop the entry and re-measure.
			p.mu.Lock()
			if p.entries[key] != nil && p.entries[key].Strategy == entry.Strategy {
				delete(p.entries, key)
			}
			p.mu.Unlock()
			continue
		}
		if f := p.inflight[key]; f != nil {
			p.st.Waits++
			tr := p.tr
			p.mu.Unlock()
			tr.Instant("plan", "plan/"+phase+"/wait", "", 0)
			<-f.done
			continue // pick the fresh entry up via the cache path
		}
		f := &flight{done: make(chan struct{})}
		p.inflight[key] = f
		p.st.Misses++
		p.mu.Unlock()
		return p.measureMiss(key, sparsity, f, measure)
	}
}

// measureMiss runs the model-first pass and the measured tuning for one
// key, publishes the verdict, and releases the key's waiters.
func (p *Planner) measureMiss(key Key, sparsity float64, f *flight,
	measure func([]core.Strategy) core.Selection) core.Planned {
	published := false
	defer func() {
		p.mu.Lock()
		delete(p.inflight, key)
		p.mu.Unlock()
		close(f.done)
		_ = published
	}()

	cands := p.candidates(key.Phase, key.Workers, key.Spec)
	names := make([]string, len(cands))
	for i, st := range cands {
		names[i] = st.Name
	}
	classifySparsity := sparsity
	if key.Phase == "fp" {
		classifySparsity = 0
	}
	scores := ModelRank(p.mach, key.Spec, key.Phase, sparsity, key.Workers, names)
	survivors, prunedNames := prune(cands, scores, p.pruneRatio,
		recommendedNames(key.Spec, classifySparsity))

	p.mu.Lock()
	tr := p.tr
	p.mu.Unlock()
	measureStart := time.Now()
	sel := measure(survivors)
	winner := sel.Chosen.Strategy().Name
	tr.SpanDetail("plan", "plan/"+key.Phase+"/measure", winner, sel.Best().Seconds,
		measureStart, time.Since(measureStart))

	entry := &Entry{
		Key:      key,
		Strategy: winner,
		Seconds:  sel.Best().Seconds,
		Model:    scores,
		Pruned:   prunedNames,
	}
	for _, tm := range sel.Timings {
		entry.Timings = append(entry.Timings, EntryTiming{Strategy: tm.Strategy.Name, Seconds: tm.Seconds})
	}

	p.mu.Lock()
	p.entries[key] = entry
	p.st.Measurements++
	p.st.Pruned += uint64(len(prunedNames))
	if top := topModeled(scores); top != "" {
		if top == winner {
			p.st.ModelAgree++
		} else {
			p.st.ModelDisagree++
		}
	}
	p.mu.Unlock()
	published = true
	return core.Planned{Selection: sel}
}

// topModeled returns the best-scored modeled, non-pruned candidate.
func topModeled(scores []ModelScore) string {
	for _, sc := range scores { // scores are sorted best-first
		if sc.Modeled && !sc.Pruned {
			return sc.Strategy
		}
	}
	return ""
}

// deploy instantiates a cached verdict under the caller's context with
// zero measurement: the strategy is resolved by name from the candidate
// set, an exec is built, and the deployment is recorded in the context's
// probe (as a choice event, NOT a tune span — warm paths never time).
func (p *Planner) deploy(e Entry, c *exec.Ctx) (core.Planned, bool) {
	cands := p.candidates(e.Phase, c.Workers(), e.Spec)
	st, ok := lookupStrategy(cands, e.Strategy)
	if !ok {
		return core.Planned{}, false
	}
	ex := core.NewExecCtx(st, e.Spec, c)
	sel := core.Selection{Chosen: ex}
	for _, tm := range e.Timings {
		if s2, ok := lookupStrategy(cands, tm.Strategy); ok {
			sel.Timings = append(sel.Timings, core.Timing{Strategy: s2, Seconds: tm.Seconds})
		}
	}
	if len(sel.Timings) == 0 {
		sel.Timings = []core.Timing{{Strategy: st, Seconds: e.Seconds}}
	}
	c.Probe().RecordChoice(e.Phase, e.Strategy, e.Seconds)
	return core.Planned{Selection: sel, FromCache: true}, true
}

func lookupStrategy(cands []core.Strategy, name string) (core.Strategy, bool) {
	for _, st := range cands {
		if st.Name == name {
			return st, true
		}
	}
	return core.Strategy{}, false
}
