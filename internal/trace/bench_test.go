package trace

import (
	"testing"
	"time"
)

// BenchmarkEmitRing measures the per-event cost of the flight-recorder
// path — the number the <5% step-time overhead budget rests on.
func BenchmarkEmitRing(b *testing.B) {
	r := New(Options{Mode: Ring})
	e := r.Emitter(0, 0)
	start := time.Now()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Span("layer", "layer/conv0/fp/stencil", start, time.Millisecond)
	}
}

// BenchmarkEmitRingParallel exercises shard contention with many
// goroutines emitting at once (each gets its own emitter, as replicas do).
func BenchmarkEmitRingParallel(b *testing.B) {
	r := New(Options{Mode: Ring})
	start := time.Now()
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		e := r.Emitter(0, 0)
		for pb.Next() {
			e.Span("layer", "layer/conv0/fp/stencil", start, time.Millisecond)
		}
	})
}

// BenchmarkEmitFull measures the full-capture append path.
func BenchmarkEmitFull(b *testing.B) {
	r := New(Options{Mode: Full, MaxEvents: 1 << 30})
	e := r.Emitter(0, 0)
	start := time.Now()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Span("layer", "layer/conv0/fp/stencil", start, time.Millisecond)
	}
}

// BenchmarkEmitDisabled pins the nil-emitter fast path: tracing off must
// cost nothing at the call sites that stay wired in.
func BenchmarkEmitDisabled(b *testing.B) {
	var r *Recorder
	e := r.Emitter(0, 0)
	start := time.Now()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Span("layer", "layer/conv0/fp/stencil", start, time.Millisecond)
	}
}
