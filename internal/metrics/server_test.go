package metrics

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"

	"spgcnn/internal/exec"
	"spgcnn/internal/trace"
)

// TestConcurrentScrapeWhileRecording hammers /metrics and /healthz from
// several goroutines while a training-shaped workload records spans into
// the same registry through both sinks (metrics bridge + trace recorder)
// on a shared probe. Run under -race this pins the whole observability
// path — probe fan-out, registry render, trace gauge reads — as
// concurrency-safe.
func TestConcurrentScrapeWhileRecording(t *testing.T) {
	r := NewRegistry()
	ctx := exec.New(2)
	rec := trace.New(trace.Options{Mode: trace.Ring, RingSize: 256})
	Bind(ctx, r)
	ctx.Probe().AddSink(trace.NewProbeSink(rec.Emitter(0, 0)))
	BindTrace(rec, r)

	srv, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) (string, error) {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			return "", err
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		return string(b), err
	}

	// Writer: records spans and choices like a live training loop until
	// the scrapers finish.
	stop := make(chan struct{})
	var writer sync.WaitGroup
	writer.Add(1)
	go func() {
		defer writer.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			rec.SetStep(int64(i))
			ctx.Probe().Observe("layer/conv0/fp/stencil", 0.001)
			ctx.Probe().Observe("layer/conv0/bp/sparse", 0.002)
			ctx.Probe().RecordChoice("bp", "sparse", 0.002)
		}
	}()

	const scrapers, rounds = 4, 25
	errs := make(chan error, scrapers)
	var scrape sync.WaitGroup
	for s := 0; s < scrapers; s++ {
		scrape.Add(1)
		go func() {
			defer scrape.Done()
			for i := 0; i < rounds; i++ {
				body, err := get("/metrics")
				if err != nil {
					errs <- err
					return
				}
				if !strings.Contains(body, "spg_trace_emitted_total") {
					errs <- fmt.Errorf("scrape %d missing trace gauges", i)
					return
				}
				if body, err = get("/healthz"); err != nil {
					errs <- err
					return
				} else if !strings.Contains(body, "ok") {
					errs <- fmt.Errorf("healthz said %q", body)
					return
				}
			}
		}()
	}
	scrape.Wait()
	close(stop)
	writer.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}

	// The final scrape must show the recorder's accounting moved.
	body, err := get("/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(body, "spg_trace_buffered") ||
		!strings.Contains(body, "spg_trace_buffer_used_ratio") {
		t.Fatalf("trace gauges missing from exposition:\n%s", body)
	}
	if rec.Stats().Emitted == 0 {
		t.Fatal("no trace events recorded during the scrape storm")
	}
}
