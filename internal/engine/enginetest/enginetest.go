// Package enginetest provides the shared conformance suite every
// convolution kernel must pass: agreement with the direct reference
// implementations of Eqs. 2–4 over randomized geometries, including strided
// and non-square cases, and over sparse error gradients.
//
// The whole suite drives the batch-first seam through ONE shared exec.Ctx
// whose arena free lists are deliberately poisoned with NaNs between
// checks, so a kernel that reads scratch it did not write, or that leaks
// state between calls through recycled buffers, fails loudly. A final
// interleaving pass runs two differently-shaped kernels alternately
// through the same arena and demands bit-identical outputs.
//
// Engine packages call Run from their tests, so a new kernel automatically
// inherits the full battery.
package enginetest

import (
	"math"
	"testing"

	"spgcnn/internal/conv"
	"spgcnn/internal/engine"
	"spgcnn/internal/exec"
	"spgcnn/internal/rng"
	"spgcnn/internal/tensor"
)

// Options tunes the conformance run.
type Options struct {
	// Trials is the number of random specs exercised (default 20).
	Trials int
	// MaxDim bounds random spec dimensions (default 12).
	MaxDim int
	// Seed seeds the generator (default 0xC0FFEE).
	Seed uint64
	// Tol is the comparison tolerance (default 1e-3, loose enough for
	// float32 kernels that reassociate sums).
	Tol float64
	// SkipBackward skips BP checks for FP-only kernels (the paper's
	// Stencil-Kernel is FP-only).
	SkipBackward bool
	// Sparsities are the EO sparsity levels exercised in BP checks
	// (default 0, 0.5, 0.9, 1.0).
	Sparsities []float64
	// ExtraSpecs are always tested in addition to random ones.
	ExtraSpecs []conv.Spec
	// Batch is the batch size driven through the batch entry points
	// (default 3).
	Batch int
}

func (o *Options) fill() {
	if o.Trials == 0 {
		o.Trials = 20
	}
	if o.MaxDim == 0 {
		o.MaxDim = 12
	}
	if o.Seed == 0 {
		o.Seed = 0xC0FFEE
	}
	if o.Tol == 0 {
		o.Tol = 1e-3
	}
	if o.Sparsities == nil {
		o.Sparsities = []float64{0, 0.5, 0.9, 1.0}
	}
	if o.Batch == 0 {
		o.Batch = 3
	}
}

// poisonArena fills the context's free lists with NaN-stuffed buffers
// across a spread of size classes, so any kernel consuming arena scratch
// it did not fully write produces NaNs instead of silently reading zeros.
func poisonArena(c *exec.Ctx) {
	const perClass = 4
	var bufs [][]float32
	for n := 16; n <= 1<<18; n <<= 2 {
		for i := 0; i < perClass; i++ {
			b := c.Get(n)
			for j := range b {
				b[j] = float32(math.NaN())
			}
			bufs = append(bufs, b)
		}
	}
	for _, b := range bufs {
		c.Put(b)
	}
}

// Run executes the conformance suite for the generator.
func Run(t *testing.T, gen engine.Generator, opts Options) {
	t.Helper()
	opts.fill()
	r := rng.New(opts.Seed)

	// One context for the whole suite: every spec reuses the same arena.
	c := exec.New(2)
	poisonArena(c)

	specs := append([]conv.Spec(nil), opts.ExtraSpecs...)
	// Hand-picked edge geometries: 1x1 kernel, kernel == input, single
	// channel/feature, rectangular, strided.
	specs = append(specs,
		conv.Square(4, 1, 1, 1, 1),
		conv.Square(4, 2, 3, 4, 1),
		conv.Square(9, 3, 2, 3, 3),
		conv.Spec{Nx: 11, Ny: 5, Nc: 2, Nf: 3, Fx: 3, Fy: 2, Sx: 2, Sy: 1},
		conv.Square(36, 64, 3, 5, 1), // CIFAR L0 geometry
	)
	for i := 0; i < opts.Trials; i++ {
		specs = append(specs, conv.RandSpec(r, opts.MaxDim))
	}

	for _, s := range specs {
		k := gen.New(s)
		if k.Spec() != s {
			t.Fatalf("%s: Spec() = %v, want %v", gen.Name, k.Spec(), s)
		}
		checkForward(t, c, k, r, opts)
		if !opts.SkipBackward {
			for _, sp := range opts.Sparsities {
				checkBackward(t, c, k, r, sp, opts)
			}
		}
	}

	checkInterleaved(t, gen, r, opts)
}

func batchFixtures(r *rng.RNG, s conv.Spec, n int, sparsity float64) (ins, outs, eos, eis []*tensor.Tensor) {
	for i := 0; i < n; i++ {
		ins = append(ins, conv.RandInput(r, s))
		outs = append(outs, conv.NewOutput(s))
		eos = append(eos, conv.RandOutputError(r, s, sparsity))
		eis = append(eis, conv.NewInput(s))
	}
	return
}

func checkForward(t *testing.T, c *exec.Ctx, k engine.Kernel, r *rng.RNG, opts Options) {
	t.Helper()
	s := k.Spec()
	ins, outs, _, _ := batchFixtures(r, s, opts.Batch, 0)
	w := conv.RandWeights(r, s)
	k.ForwardBatch(c, outs, ins, w)
	want := conv.NewOutput(s)
	for i := range ins {
		conv.ForwardRef(s, want, ins[i], w)
		if !tensor.AlmostEqual(outs[i], want, opts.Tol) {
			t.Fatalf("%s: ForwardBatch[%d] differs from reference for %v (max diff %g)",
				k.Name(), i, s, tensor.MaxAbsDiff(outs[i], want))
		}
	}
	// Repeat invocation must be idempotent (arena scratch reuse must not
	// leak state between calls), and bit-identical to the first run.
	first := outs[opts.Batch-1].Clone()
	k.ForwardBatch(c, outs, ins, w)
	if !tensor.Identical(outs[opts.Batch-1], first) {
		t.Fatalf("%s: second ForwardBatch not bit-identical (stale scratch?) for %v", k.Name(), s)
	}

	// Per-sample compat path must agree with the batch path bit-for-bit.
	if sk, ok := k.(engine.SingleKernel); ok {
		got := conv.NewOutput(s)
		sk.Forward(got, ins[0], w)
		if !tensor.Identical(got, outs[0]) {
			t.Fatalf("%s: single-sample Forward differs from ForwardBatch for %v", k.Name(), s)
		}
	}
}

func checkBackward(t *testing.T, c *exec.Ctx, k engine.Kernel, r *rng.RNG, sparsity float64, opts Options) {
	t.Helper()
	s := k.Spec()
	ins, _, eos, eis := batchFixtures(r, s, opts.Batch, sparsity)
	w := conv.RandWeights(r, s)

	for i := range eis {
		eis[i].FillUniform(r, -9, 9) // pre-poison: kernels must overwrite
	}
	k.BackwardInputBatch(c, eis, eos, w)
	wantEI := conv.NewInput(s)
	for i := range eis {
		conv.BackwardInputRef(s, wantEI, eos[i], w)
		if !tensor.AlmostEqual(eis[i], wantEI, opts.Tol) {
			t.Fatalf("%s: BackwardInputBatch[%d] differs for %v at sparsity %.2f (max diff %g)",
				k.Name(), i, s, sparsity, tensor.MaxAbsDiff(eis[i], wantEI))
		}
	}

	gotDW := conv.NewWeights(s)
	gotDW.FillUniform(r, -9, 9) // pre-poison: dw is overwritten, not accumulated
	k.BackwardWeightsBatch(c, gotDW, eos, ins)
	wantDW := conv.NewWeights(s)
	tmp := conv.NewWeights(s)
	for i := range ins {
		conv.BackwardWeightsRef(s, tmp, eos[i], ins[i])
		wantDW.AddScaled(tmp, 1)
	}
	if !tensor.AlmostEqual(gotDW, wantDW, opts.Tol) {
		t.Fatalf("%s: BackwardWeightsBatch differs from per-sample sum for %v at sparsity %.2f (max diff %g)",
			k.Name(), s, sparsity, tensor.MaxAbsDiff(gotDW, wantDW))
	}
}

// checkInterleaved builds two differently-shaped kernels and alternates
// them through one shared context twice, demanding every pass reproduce
// the first pass bit-for-bit. Because the second round is served entirely
// from arena buffers the other spec just dirtied, any kernel that depends
// on scratch contents (instead of fully writing what it reads) diverges.
func checkInterleaved(t *testing.T, gen engine.Generator, r *rng.RNG, opts Options) {
	t.Helper()
	sA := conv.Square(12, 6, 3, 3, 1)
	sB := conv.Spec{Nx: 10, Ny: 7, Nc: 2, Nf: 4, Fx: 3, Fy: 2, Sx: 2, Sy: 1}
	kA, kB := gen.New(sA), gen.New(sB)

	c := exec.New(2)
	poisonArena(c)

	type fixture struct {
		k              engine.Kernel
		ins, outs, eis []*tensor.Tensor
		eos            []*tensor.Tensor
		w, dw          *tensor.Tensor
		golden         []*tensor.Tensor // outputs of the first pass
	}
	mk := func(k engine.Kernel) *fixture {
		s := k.Spec()
		f := &fixture{k: k, w: conv.RandWeights(r, s), dw: conv.NewWeights(s)}
		f.ins, f.outs, f.eos, f.eis = batchFixtures(r, s, opts.Batch, 0.5)
		return f
	}
	fixtures := []*fixture{mk(kA), mk(kB)}

	pass := func(f *fixture) {
		f.k.ForwardBatch(c, f.outs, f.ins, f.w)
		if !opts.SkipBackward {
			f.k.BackwardInputBatch(c, f.eis, f.eos, f.w)
			f.k.BackwardWeightsBatch(c, f.dw, f.eos, f.ins)
		}
	}
	snapshot := func(f *fixture) []*tensor.Tensor {
		var g []*tensor.Tensor
		for _, o := range f.outs {
			g = append(g, o.Clone())
		}
		for _, e := range f.eis {
			g = append(g, e.Clone())
		}
		return append(g, f.dw.Clone())
	}

	// Round 1 establishes the golden outputs; rounds 2 and 3 interleave the
	// kernels through the now-dirty shared arena.
	for _, f := range fixtures {
		pass(f)
		f.golden = snapshot(f)
	}
	for round := 2; round <= 3; round++ {
		for _, f := range fixtures {
			pass(f)
			got := snapshot(f)
			for i := range got {
				if !tensor.Identical(got[i], f.golden[i]) {
					t.Fatalf("%s: interleaved round %d not bit-identical to round 1 for %v (shared arena reuse)",
						f.k.Name(), round, f.k.Spec())
				}
			}
		}
	}
}
