package engine

import (
	"testing"

	"spgcnn/internal/conv"
	"spgcnn/internal/tensor"
)

type fakeKernel struct{ s conv.Spec }

func (f fakeKernel) Name() string                           { return "fake" }
func (f fakeKernel) Spec() conv.Spec                        { return f.s }
func (f fakeKernel) Forward(_, _, _ *tensor.Tensor)         {}
func (f fakeKernel) BackwardInput(_, _, _ *tensor.Tensor)   {}
func (f fakeKernel) BackwardWeights(_, _, _ *tensor.Tensor) {}

func TestRegistryRegisterLookup(t *testing.T) {
	var r Registry
	r.Register(Generator{Name: "a", New: func(s conv.Spec) Kernel { return fakeKernel{s} }})
	r.Register(Generator{Name: "b", New: func(s conv.Spec) Kernel { return fakeKernel{s} }})
	if len(r.Generators()) != 2 {
		t.Fatalf("Generators = %d entries, want 2", len(r.Generators()))
	}
	g, ok := r.Lookup("b")
	if !ok || g.Name != "b" {
		t.Fatal("Lookup(b) failed")
	}
	if _, ok := r.Lookup("missing"); ok {
		t.Fatal("Lookup(missing) succeeded")
	}
	// Order preserved.
	if r.Generators()[0].Name != "a" {
		t.Fatal("registration order not preserved")
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	var r Registry
	g := Generator{Name: "a", New: func(s conv.Spec) Kernel { return fakeKernel{s} }}
	r.Register(g)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Register did not panic")
		}
	}()
	r.Register(g)
}

func TestRegistryNilConstructorPanics(t *testing.T) {
	var r Registry
	defer func() {
		if recover() == nil {
			t.Fatal("nil constructor Register did not panic")
		}
	}()
	r.Register(Generator{Name: "x"})
}

func TestGeneratorsReturnsCopy(t *testing.T) {
	var r Registry
	r.Register(Generator{Name: "a", New: func(s conv.Spec) Kernel { return fakeKernel{s} }})
	gens := r.Generators()
	gens[0].Name = "mutated"
	if g, _ := r.Lookup("a"); g.Name != "a" {
		t.Fatal("Generators exposed internal slice")
	}
}
