package spgcnn_test

import (
	"testing"

	"spgcnn"
	"spgcnn/internal/tensor"
)

// The facade tests exercise the library exactly as a downstream user
// would: only through the root package.

func TestKernelsAgreeThroughPublicAPI(t *testing.T) {
	spec := spgcnn.Square(12, 8, 3, 3, 1)
	r := spgcnn.NewRNG(1)
	in := spgcnn.NewInput(spec)
	in.FillNormal(r, 0, 1)
	w := spgcnn.NewWeights(spec)
	w.FillNormal(r, 0, 0.5)

	kernels := []spgcnn.Kernel{
		spgcnn.NewUnfoldGEMM(spec, 1),
		spgcnn.NewUnfoldGEMM(spec, 4),
		spgcnn.NewStencil(spec),
		spgcnn.NewSparse(spec, 0),
		spgcnn.NewFFTConv(spec),
		spgcnn.NewWinograd(spec),
	}
	var ref *spgcnn.Tensor
	for _, k := range kernels {
		out := spgcnn.NewOutput(spec)
		k.Forward(out, in, w)
		if ref == nil {
			ref = out
			continue
		}
		if !tensor.AlmostEqual(ref, out, 1e-3) {
			t.Fatalf("%s disagrees with %s", k.Name(), kernels[0].Name())
		}
	}
}

func TestAnalysisThroughPublicAPI(t *testing.T) {
	a := spgcnn.Analyze(spgcnn.Square(32, 32, 32, 4, 1)) // Table 1 ID 0
	if a.IntrinsicAIT < 361 || a.IntrinsicAIT > 363 {
		t.Fatalf("intrinsic AIT = %v, want ~362", a.IntrinsicAIT)
	}
	if spgcnn.Classify(a.Spec, 0.9) != a.SparseRegion {
		t.Fatal("Classify and Analyze disagree")
	}
}

func TestTrainingThroughPublicAPI(t *testing.T) {
	def, err := spgcnn.ParseNet(spgcnn.MNISTNet)
	if err != nil {
		t.Fatal(err)
	}
	net, err := spgcnn.BuildNet(def, spgcnn.BuildOptions{Workers: 2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	tr := spgcnn.NewTrainer(net, 0.02, 8)
	ds := spgcnn.MNISTData(48)
	r := spgcnn.NewRNG(9)
	first := tr.TrainEpoch(ds, r)
	var last = first
	for e := 0; e < 3; e++ {
		last = tr.TrainEpoch(ds, r)
	}
	if !(last.Loss < first.Loss) {
		t.Fatalf("training did not reduce loss: %v -> %v", first.Loss, last.Loss)
	}
	if last.ImagesPerSec <= 0 {
		t.Fatal("throughput not reported")
	}
	if len(last.ConvSparsity) == 0 {
		t.Fatal("sparsity probe empty")
	}
}

func TestExperimentsThroughPublicAPI(t *testing.T) {
	if len(spgcnn.Experiments()) < 14 {
		t.Fatalf("only %d experiments registered", len(spgcnn.Experiments()))
	}
	e, err := spgcnn.LookupExperiment("table1")
	if err != nil {
		t.Fatal(err)
	}
	tabs := e.Run(spgcnn.ExperimentOptions{Scale: "quick", Workers: 1})
	if len(tabs) == 0 || len(tabs[0].Rows) != 6 {
		t.Fatal("table1 experiment malformed")
	}
	if tabs[0].Render() == "" || tabs[0].CSV() == "" {
		t.Fatal("rendering empty")
	}
}

func TestAutoConvThroughPublicAPI(t *testing.T) {
	spec := spgcnn.Square(10, 4, 2, 3, 1)
	a := spgcnn.NewAutoConv(spec, 2)
	r := spgcnn.NewRNG(3)
	ins := []*spgcnn.Tensor{spgcnn.NewInput(spec), spgcnn.NewInput(spec)}
	outs := []*spgcnn.Tensor{spgcnn.NewOutput(spec), spgcnn.NewOutput(spec)}
	for _, in := range ins {
		in.FillNormal(r, 0, 1)
	}
	w := spgcnn.NewWeights(spec)
	w.FillNormal(r, 0, 0.5)
	a.Forward(outs, ins, w)
	if a.FPSelection().Chosen == nil {
		t.Fatal("AutoConv did not tune through the facade")
	}
}

func TestPaperMachine(t *testing.T) {
	m := spgcnn.PaperMachine()
	if m.Cores != 16 {
		t.Fatalf("paper machine cores = %d", m.Cores)
	}
}
