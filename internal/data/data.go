// Package data provides deterministic synthetic image datasets standing in
// for the paper's MNIST, CIFAR-10 and ImageNet benchmarks (the module is
// offline; see DESIGN.md §2 for the substitution rationale).
//
// Each class has a fixed signature — a few Gaussian blobs with
// class-specific positions and per-channel amplitudes — and each example is
// the signature plus per-example positional jitter and pixel noise. The
// classes are therefore genuinely separable: SGD training reduces loss,
// accuracy climbs above chance, and — the property Fig. 3b depends on —
// ReLU-derivative error gradients genuinely sparsify as the model fits.
//
// Everything is derived from explicit seeds: Image(i) always produces the
// same pixels, so experiments are exactly reproducible.
package data

import (
	"fmt"
	"math"

	"spgcnn/internal/rng"
	"spgcnn/internal/tensor"
)

// Synthetic is a deterministic labeled image dataset.
type Synthetic struct {
	name    string
	n       int
	classes int
	c, h, w int
	seed    uint64
	blobs   [][]blob // per class
	noise   float32
}

type blob struct {
	cy, cx float64   // center (fraction of image)
	sigma  float64   // radius (fraction of image)
	amp    []float32 // per-channel amplitude
}

// Config describes a synthetic dataset.
type Config struct {
	Name     string
	Examples int
	Classes  int
	Channels int
	Height   int
	Width    int
	Seed     uint64
	// BlobsPerClass is the number of signature blobs (default 3).
	BlobsPerClass int
	// Noise is the additive pixel-noise stddev (default 0.25).
	Noise float32
}

// New builds a synthetic dataset from the config.
func New(cfg Config) *Synthetic {
	if cfg.Examples < 1 || cfg.Classes < 1 || cfg.Channels < 1 || cfg.Height < 1 || cfg.Width < 1 {
		panic(fmt.Sprintf("data: invalid config %+v", cfg))
	}
	if cfg.BlobsPerClass <= 0 {
		cfg.BlobsPerClass = 3
	}
	if cfg.Noise <= 0 {
		cfg.Noise = 0.25
	}
	d := &Synthetic{
		name:    cfg.Name,
		n:       cfg.Examples,
		classes: cfg.Classes,
		c:       cfg.Channels,
		h:       cfg.Height,
		w:       cfg.Width,
		seed:    cfg.Seed,
		noise:   cfg.Noise,
	}
	d.blobs = make([][]blob, cfg.Classes)
	for k := range d.blobs {
		r := rng.New(cfg.Seed ^ (0x517cc1b727220a95 * uint64(k+1)))
		for b := 0; b < cfg.BlobsPerClass; b++ {
			bl := blob{
				cy:    0.15 + 0.7*r.Float64(),
				cx:    0.15 + 0.7*r.Float64(),
				sigma: 0.06 + 0.10*r.Float64(),
				amp:   make([]float32, cfg.Channels),
			}
			for c := range bl.amp {
				bl.amp[c] = 0.5 + 1.5*r.Float32()
				if r.Float64() < 0.3 {
					bl.amp[c] = -bl.amp[c]
				}
			}
			d.blobs[k] = append(d.blobs[k], bl)
		}
	}
	return d
}

// Name returns the dataset label.
func (d *Synthetic) Name() string { return d.name }

// Len implements nn.Dataset.
func (d *Synthetic) Len() int { return d.n }

// Classes implements nn.Dataset.
func (d *Synthetic) Classes() int { return d.classes }

// Dims returns the per-image [C][H][W] shape.
func (d *Synthetic) Dims() []int { return []int{d.c, d.h, d.w} }

// Label implements nn.Dataset: classes cycle through the index space so
// every epoch is balanced.
func (d *Synthetic) Label(i int) int { return i % d.classes }

// Image implements nn.Dataset: renders example i into dst, which must be
// shaped [C][H][W].
func (d *Synthetic) Image(i int, dst *tensor.Tensor) {
	if dst.Rank() != 3 || dst.Dim(0) != d.c || dst.Dim(1) != d.h || dst.Dim(2) != d.w {
		panic(fmt.Sprintf("data: Image dst shape %v, want [%d %d %d]", dst.Dims, d.c, d.h, d.w))
	}
	label := d.Label(i)
	r := rng.New(d.seed ^ (0x9e3779b97f4a7c15 * uint64(i+1)))
	// Per-example jitter: shift each blob by up to ±7% of the image.
	jy := (r.Float64() - 0.5) * 0.14
	jx := (r.Float64() - 0.5) * 0.14
	dst.Zero()
	fh, fw := float64(d.h), float64(d.w)
	for _, bl := range d.blobs[label] {
		cy := (bl.cy + jy) * fh
		cx := (bl.cx + jx) * fw
		sig := bl.sigma * math.Sqrt(fh*fw)
		inv := 1 / (2 * sig * sig)
		// Render within 3 sigma.
		ylo, yhi := clamp(int(cy-3*sig), 0, d.h), clamp(int(cy+3*sig)+1, 0, d.h)
		xlo, xhi := clamp(int(cx-3*sig), 0, d.w), clamp(int(cx+3*sig)+1, 0, d.w)
		for c := 0; c < d.c; c++ {
			amp := bl.amp[c]
			for y := ylo; y < yhi; y++ {
				dy := float64(y) - cy
				row := dst.Row3(c, y)
				for x := xlo; x < xhi; x++ {
					dx := float64(x) - cx
					row[x] += amp * float32(math.Exp(-(dy*dy+dx*dx)*inv))
				}
			}
		}
	}
	// Additive noise.
	for j := range dst.Data {
		dst.Data[j] += d.noise * float32(r.NormFloat64())
	}
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// The benchmark datasets, with geometries from the paper's §5.1 and
// Table 2 (CIFAR images arrive pre-padded to 36×36, matching Table 2's
// note that layer-0 Nx reflects image padding).

// MNIST returns the MNIST-like set: n 1×28×28 grayscale images, 10 classes.
func MNIST(n int) *Synthetic {
	return New(Config{Name: "MNIST", Examples: n, Classes: 10, Channels: 1, Height: 28, Width: 28, Seed: 0x5151})
}

// CIFAR returns the CIFAR-10-like set: n 3×36×36 RGB images (pre-padded
// from 32×32 per Table 2), 10 classes.
func CIFAR(n int) *Synthetic {
	return New(Config{Name: "CIFAR", Examples: n, Classes: 10, Channels: 3, Height: 36, Width: 36, Seed: 0xC1FA})
}

// ImageNet100 returns the ImageNet-100-like set used by Fig. 3b, at
// reduced spatial scale (3×32×32, 100 classes) so pure-Go training is
// feasible — the sparsity-trajectory property is scale-independent.
func ImageNet100(n int) *Synthetic {
	return New(Config{Name: "ImageNet100", Examples: n, Classes: 100, Channels: 3, Height: 32, Width: 32, Seed: 0x1A6E})
}
