// Package trace is spg-CNN's execution-timeline subsystem: a low-overhead
// flight recorder that captures begin/end events for every layer × phase ×
// strategy execution, planner measurement pass, arena growth and
// data-parallel synchronization barrier, each stamped with the training
// step, replica, worker and the live gradient-sparsity band.
//
// The metrics registry (PR 2) answers "THAT a phase is slow"; this package
// answers "WHEN, and on WHICH replica". Captures export as Chrome/Perfetto
// trace-event JSON (WriteJSON) and feed two analyzers: a straggler
// detector for data-parallel barriers (Stragglers) and a goodput-waste
// attributor that splits the paper's Eq. 9 dense-vs-useful gap per layer
// (GoodputWaste). Regions additionally mirror into Go's runtime/trace and
// carry pprof labels, so native Go tooling sees the same spans.
//
// The recorder is lock-minimal: events land in sharded buffers, each
// emitter handle bound to its own shard, so concurrent replicas never
// contend on one mutex. Ring mode bounds memory by overwriting the oldest
// events (a flight recorder — always capturing, never growing); Full mode
// keeps everything up to a hard cap and counts drops beyond it.
package trace

import (
	"context"
	"fmt"
	"runtime/pprof"
	rtrace "runtime/trace"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Mode selects the recorder's retention policy.
type Mode int

const (
	// Full keeps every event up to MaxEvents, then drops new ones.
	Full Mode = iota
	// Ring bounds memory at RingSize events per shard, overwriting the
	// oldest — flight-recorder semantics.
	Ring
)

// String renders the mode as its CLI spelling.
func (m Mode) String() string {
	if m == Ring {
		return "ring"
	}
	return "full"
}

// ParseMode parses the CLI spelling ("ring" or "full").
func ParseMode(s string) (Mode, error) {
	switch s {
	case "ring":
		return Ring, nil
	case "full":
		return Full, nil
	}
	return Full, fmt.Errorf("trace: unknown mode %q (want ring or full)", s)
}

// DefRingSize is the default per-shard event capacity in Ring mode.
const DefRingSize = 8192

// DefMaxEvents is the default total event cap in Full mode.
const DefMaxEvents = 1 << 20

// DefShards is the default shard count; emitters are distributed
// round-robin, so up to DefShards concurrent emitters never share a lock.
const DefShards = 16

// Options configures a Recorder. The zero value is a Full-mode recorder
// with the default caps.
type Options struct {
	// Mode is the retention policy (default Full).
	Mode Mode
	// RingSize is the per-shard event capacity in Ring mode
	// (default DefRingSize).
	RingSize int
	// MaxEvents caps the total buffered events in Full mode
	// (default DefMaxEvents).
	MaxEvents int
	// Shards is the buffer shard count (default DefShards).
	Shards int
}

// Event is one recorded timeline entry. Complete events (Dur > 0 or
// Phase 'X') are spans; Phase 'i' events are instants.
type Event struct {
	// Name identifies the span, e.g. "layer/conv0/bp/sparse", "step",
	// "allreduce", "plan/bp/measure".
	Name string
	// Cat groups events for filtering: "layer", "core", "tune", "step",
	// "sync", "plan", "arena", "choice", "epoch", "sparsity".
	Cat string
	// Phase is the Chrome trace-event phase: 'X' complete, 'i' instant.
	Phase byte
	// Ts is the start time in nanoseconds since the capture started.
	Ts int64
	// Dur is the span duration in nanoseconds (0 for instants).
	Dur int64
	// Replica is the data-parallel replica index; -1 marks
	// coordinator/planner events that belong to no replica.
	Replica int32
	// Worker is the worker index within the replica.
	Worker int32
	// Step is the global training step at emit time.
	Step int64
	// Band is the live gradient-sparsity band at emit time.
	Band int32
	// Detail is a free-form label (winning strategy, layer name, …).
	Detail string
	// Value is a numeric payload (sparsity, bytes, seconds, images).
	Value float64
}

// Stats summarizes a recorder's buffer state — the numbers
// metrics.BindTrace exports.
type Stats struct {
	// Emitted counts every event offered to the recorder.
	Emitted uint64
	// Buffered counts events currently held.
	Buffered uint64
	// Capacity is the total buffer capacity in events.
	Capacity uint64
	// Overwritten counts ring-mode overwrites of old events.
	Overwritten uint64
	// Dropped counts full-mode events discarded at the cap.
	Dropped uint64
}

// shard is one independently-locked event buffer. Emitters are bound to
// shards round-robin, so concurrent replicas write to different shards.
type shard struct {
	mu      sync.Mutex
	buf     []Event
	next    int  // ring cursor
	wrapped bool // ring has lapped at least once
	_       [40]byte
}

// Recorder is the capture buffer. Construct with New; safe for concurrent
// use. A nil *Recorder is inert: emitters built from it drop everything.
type Recorder struct {
	mode      Mode
	ringSize  int
	maxEvents int
	start     time.Time

	step atomic.Int64
	band atomic.Int32

	nextShard   atomic.Uint32
	shards      []shard
	emitted     atomic.Uint64
	overwritten atomic.Uint64
	dropped     atomic.Uint64
	buffered    atomic.Int64

	mu     sync.Mutex
	layers []LayerMeta
}

// LayerMeta is the static per-layer flop accounting the goodput-waste
// attributor needs: dense per-image flop counts of the forward pass and
// the two backward computations combined.
type LayerMeta struct {
	Name    string `json:"name"`
	FPFlops int64  `json:"fpFlops"`
	BPFlops int64  `json:"bpFlops"`
}

// New builds a recorder. The capture clock starts now.
func New(o Options) *Recorder {
	if o.RingSize <= 0 {
		o.RingSize = DefRingSize
	}
	if o.MaxEvents <= 0 {
		o.MaxEvents = DefMaxEvents
	}
	if o.Shards <= 0 {
		o.Shards = DefShards
	}
	return &Recorder{
		mode:      o.Mode,
		ringSize:  o.RingSize,
		maxEvents: o.MaxEvents,
		start:     time.Now(),
		shards:    make([]shard, o.Shards),
	}
}

// Mode reports the retention policy.
func (r *Recorder) Mode() Mode {
	if r == nil {
		return Full
	}
	return r.mode
}

// SetStep publishes the global training step stamped onto subsequent
// events.
func (r *Recorder) SetStep(step int64) {
	if r != nil {
		r.step.Store(step)
	}
}

// SetBand publishes the live gradient-sparsity band stamped onto
// subsequent events.
func (r *Recorder) SetBand(band int) {
	if r != nil {
		r.band.Store(int32(band))
	}
}

// AddLayerMeta registers one layer's flop accounting for the waste
// attributor; it travels with the capture.
func (r *Recorder) AddLayerMeta(m LayerMeta) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := range r.layers {
		if r.layers[i].Name == m.Name {
			r.layers[i] = m
			return
		}
	}
	r.layers = append(r.layers, m)
}

// Layers returns the registered layer metadata.
func (r *Recorder) Layers() []LayerMeta {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]LayerMeta(nil), r.layers...)
}

// Emitter returns a handle stamping events with the given replica and
// worker. Each emitter binds to one buffer shard (round-robin), so
// emitters on different goroutines do not contend. Replica -1 marks
// coordinator/planner events. Emitters from a nil recorder are inert.
func (r *Recorder) Emitter(replica, worker int) *Emitter {
	if r == nil {
		return nil
	}
	idx := int(r.nextShard.Add(1)-1) % len(r.shards)
	return &Emitter{r: r, shard: &r.shards[idx], replica: int32(replica), worker: int32(worker)}
}

// now returns nanoseconds since capture start.
func (r *Recorder) now() int64 { return int64(time.Since(r.start)) }

// record lands one stamped event in a shard, applying the retention
// policy.
func (r *Recorder) record(s *shard, ev Event) {
	r.emitted.Add(1)
	s.mu.Lock()
	switch r.mode {
	case Ring:
		if s.buf == nil {
			s.buf = make([]Event, 0, r.ringSize)
		}
		if len(s.buf) < r.ringSize {
			s.buf = append(s.buf, ev)
			r.buffered.Add(1)
		} else {
			s.buf[s.next] = ev
			s.wrapped = true
			r.overwritten.Add(1)
		}
		s.next++
		if s.next == r.ringSize {
			s.next = 0
		}
	default: // Full
		if int(r.buffered.Load()) >= r.maxEvents {
			r.dropped.Add(1)
		} else {
			s.buf = append(s.buf, ev)
			r.buffered.Add(1)
		}
	}
	s.mu.Unlock()
}

// Stats snapshots the recorder's buffer counters.
func (r *Recorder) Stats() Stats {
	if r == nil {
		return Stats{}
	}
	capTotal := uint64(r.maxEvents)
	if r.mode == Ring {
		capTotal = uint64(r.ringSize) * uint64(len(r.shards))
	}
	return Stats{
		Emitted:     r.emitted.Load(),
		Buffered:    uint64(r.buffered.Load()),
		Capacity:    capTotal,
		Overwritten: r.overwritten.Load(),
		Dropped:     r.dropped.Load(),
	}
}

// Events returns every buffered event in deterministic order: ascending
// start time, with (replica, worker, cat, name, dur, detail) breaking
// ties. Ring shards are unwrapped oldest-first before the merge.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	var out []Event
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.Lock()
		if s.wrapped {
			out = append(out, s.buf[s.next:]...)
			out = append(out, s.buf[:s.next]...)
		} else {
			out = append(out, s.buf...)
		}
		s.mu.Unlock()
	}
	SortEvents(out)
	return out
}

// Capture snapshots the whole recorder state for export or analysis.
func (r *Recorder) Capture() Capture {
	return Capture{
		Events: r.Events(),
		Layers: r.Layers(),
		Mode:   r.Mode().String(),
		Stats:  r.Stats(),
	}
}

// Capture is a self-contained trace: the event timeline plus the layer
// flop metadata and buffer accounting it was recorded under.
type Capture struct {
	Events []Event
	Layers []LayerMeta
	Mode   string
	Stats  Stats
}

// Emitter stamps and records events for one (replica, worker) identity.
// All methods are nil-safe, so instrumentation points need no guards.
type Emitter struct {
	r       *Recorder
	shard   *shard
	replica int32
	worker  int32
}

// Replica reports the emitter's replica stamp.
func (e *Emitter) Replica() int {
	if e == nil {
		return -1
	}
	return int(e.replica)
}

func (e *Emitter) emit(ev Event) {
	if e == nil || e.r == nil {
		return
	}
	ev.Replica = e.replica
	ev.Worker = e.worker
	ev.Step = e.r.step.Load()
	ev.Band = e.r.band.Load()
	e.r.record(e.shard, ev)
}

// Span records a complete event with an explicit start and duration.
func (e *Emitter) Span(cat, name string, start time.Time, dur time.Duration) {
	if e == nil || e.r == nil {
		return
	}
	ts := int64(start.Sub(e.r.start))
	if ts < 0 {
		ts = 0
	}
	e.emit(Event{Name: name, Cat: cat, Phase: 'X', Ts: ts, Dur: int64(dur)})
}

// SpanDetail records a complete event carrying a label and a numeric
// payload.
func (e *Emitter) SpanDetail(cat, name, detail string, value float64, start time.Time, dur time.Duration) {
	if e == nil || e.r == nil {
		return
	}
	ts := int64(start.Sub(e.r.start))
	if ts < 0 {
		ts = 0
	}
	e.emit(Event{Name: name, Cat: cat, Phase: 'X', Ts: ts, Dur: int64(dur),
		Detail: detail, Value: value})
}

// End records a complete event stamped at its END: the span finished just
// now and lasted the given seconds. This is how post-hoc observations
// (exec.Probe spans, which report elapsed time on completion) land on the
// timeline without changing their call sites.
func (e *Emitter) End(cat, name string, seconds float64) {
	if e == nil || e.r == nil {
		return
	}
	dur := int64(seconds * 1e9)
	ts := e.r.now() - dur
	if ts < 0 {
		ts = 0
	}
	e.emit(Event{Name: name, Cat: cat, Phase: 'X', Ts: ts, Dur: dur})
}

// Instant records a zero-duration marker.
func (e *Emitter) Instant(cat, name, detail string, value float64) {
	if e == nil || e.r == nil {
		return
	}
	e.emit(Event{Name: name, Cat: cat, Phase: 'i', Ts: e.r.now(),
		Detail: detail, Value: value})
}

// Region runs fn as a traced span AND as a runtime/trace region with
// pprof labels (spg_replica, spg_region), so a capture taken with `go
// tool trace` or a labeled CPU profile shows the same structure this
// recorder sees. With a nil emitter fn just runs.
func (e *Emitter) Region(cat, name string, fn func()) {
	if e == nil || e.r == nil {
		WithRegion(name, fn)
		return
	}
	labels := pprof.Labels(
		"spg_replica", strconv.Itoa(int(e.replica)),
		"spg_region", name,
	)
	start := time.Now()
	pprof.Do(context.Background(), labels, func(ctx context.Context) {
		defer rtrace.StartRegion(ctx, name).End()
		fn()
	})
	e.Span(cat, name, start, time.Since(start))
}

// WithRegion runs fn inside a runtime/trace region (no event recording) —
// the integration hook for code paths that must show up in `go tool
// trace` even when no recorder is attached. A no-op wrapper when Go
// execution tracing is inactive.
func WithRegion(name string, fn func()) {
	defer rtrace.StartRegion(context.Background(), name).End()
	fn()
}
