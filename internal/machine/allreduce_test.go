package machine

import (
	"math"
	"testing"
)

func TestAllReduceSecondsStructure(t *testing.T) {
	c := DefaultCluster(8)
	const params = 1 << 20
	flat := c.AllReduceSeconds("flat", params)
	ring := c.AllReduceSeconds("ring", params)
	tree := c.AllReduceSeconds("tree", params)
	for _, v := range []float64{flat, ring, tree} {
		if !(v > 0) || math.IsInf(v, 0) || math.IsNaN(v) {
			t.Fatalf("degenerate cost: flat %v ring %v tree %v", flat, ring, tree)
		}
	}
	// Ring is bandwidth-optimal: it must beat the flat serial schedule for
	// a large vector, and the gap must widen with the replica count.
	if !(ring < flat) {
		t.Fatalf("ring %v not below flat %v", ring, flat)
	}
	c64 := DefaultCluster(64)
	if r := c64.AllReduceSeconds("flat", params) / c64.AllReduceSeconds("ring", params); r < 8 {
		t.Fatalf("flat/ring ratio at 64 nodes only %.1f", r)
	}
	// Tree is latency-optimal: for a tiny vector its log2 rounds must beat
	// ring's 2(N-1) messages.
	tiny := 64
	if !(c64.AllReduceSeconds("tree", tiny) < c64.AllReduceSeconds("ring", tiny)) {
		t.Fatal("tree not latency-optimal for a tiny vector at 64 nodes")
	}
	if c.AllReduceSeconds("ring", 0) != 0 || DefaultCluster(1).AllReduceSeconds("ring", params) != 0 {
		t.Fatal("degenerate rounds must cost zero")
	}
}

func TestSparseAllReduceCrossover(t *testing.T) {
	c := DefaultCluster(8)
	const params = 1 << 20
	dense := c.AllReduceSeconds("ring", params)
	// At high sparsity the delta exchange must win despite its local
	// encode passes; at full density it must lose (8 bytes/element on the
	// wire plus encode, vs 4 dense).
	if sp := c.SparseAllReduceSeconds("ring", params, 0.05); !(sp < dense) {
		t.Fatalf("sparse at 5%% density (%v) not below dense ring (%v)", sp, dense)
	}
	if sp := c.SparseAllReduceSeconds("ring", params, 1.0); !(sp > dense) {
		t.Fatalf("sparse at density 1 (%v) not above dense ring (%v)", sp, dense)
	}
	// Monotone in density.
	prev := -1.0
	for _, d := range []float64{0.01, 0.05, 0.1, 0.25, 0.5, 1.0} {
		s := c.SparseAllReduceSeconds("ring", params, d)
		if s <= prev {
			t.Fatalf("cost not monotone in density at %v", d)
		}
		prev = s
	}
}

func TestRankAllReduce(t *testing.T) {
	c := DefaultCluster(16)
	const params = 1 << 20
	ranked := c.RankAllReduce(params, 0.05)
	if len(ranked) != 6 {
		t.Fatalf("want 6 candidates, got %d", len(ranked))
	}
	for i := 1; i < len(ranked); i++ {
		if ranked[i].Seconds < ranked[i-1].Seconds {
			t.Fatal("ranking not sorted fastest-first")
		}
	}
	best := c.BestAllReduce(params, 0.05)
	if best.Seconds != ranked[0].Seconds {
		t.Fatal("BestAllReduce disagrees with RankAllReduce[0]")
	}
	// 1% deltas on a big vector: a sparse candidate must win clearly.
	if b := c.BestAllReduce(params, 0.01); !b.Sparse {
		t.Fatalf("at 1%% density best is dense %q", b.Method)
	}
	// Unknown density excludes sparse candidates entirely.
	for _, ch := range c.RankAllReduce(params, -1) {
		if ch.Sparse {
			t.Fatal("sparse candidate ranked with unknown density")
		}
	}
	// Dense deltas: dense ring must win.
	if b := c.BestAllReduce(params, 1.0); b.Sparse || b.Method != "ring" {
		t.Fatalf("at density 1 best is %+v, want dense ring", b)
	}
}
