package metrics

import (
	"strings"
	"testing"
	"time"

	"spgcnn/internal/conv"
	"spgcnn/internal/core"
	"spgcnn/internal/engine"
	"spgcnn/internal/exec"
	"spgcnn/internal/plan"
	"spgcnn/internal/rng"
	"spgcnn/internal/tensor"
)

func nopStrategy(name string) core.Strategy {
	return core.Strategy{
		Name: name,
		Gen: engine.Generator{
			Name: name,
			New:  func(s conv.Spec) engine.Kernel { return nopKernel{spec: s, name: name} },
		},
	}
}

type nopKernel struct {
	spec conv.Spec
	name string
}

func (k nopKernel) Name() string    { return k.name }
func (k nopKernel) Spec() conv.Spec { return k.spec }
func (k nopKernel) ForwardBatch(c *exec.Ctx, outs, ins []*tensor.Tensor, w *tensor.Tensor) {
	time.Sleep(10 * time.Microsecond)
}
func (k nopKernel) BackwardInputBatch(c *exec.Ctx, eis, eos []*tensor.Tensor, w *tensor.Tensor) {}
func (k nopKernel) BackwardWeightsBatch(c *exec.Ctx, dw *tensor.Tensor, eos, ins []*tensor.Tensor) {
}

// TestBindPlannerExportsCounters drives one cold and one warm selection
// through a bound planner and checks the gauges land in the Prometheus
// rendering with live values.
func TestBindPlannerExportsCounters(t *testing.T) {
	p := plan.New(plan.Options{
		FP:   func(int) []core.Strategy { return []core.Strategy{nopStrategy("a"), nopStrategy("b")} },
		BP:   func(int) []core.Strategy { return []core.Strategy{nopStrategy("a")} },
		Tune: core.TuneOptions{Reps: 1},
	})
	r := NewRegistry()
	BindPlanner(p, r)

	spec := conv.Square(6, 2, 1, 3, 1)
	rg := rng.New(1)
	ins := []*tensor.Tensor{conv.RandInput(rg, spec)}
	w := conv.RandWeights(rg, spec)
	p.PlanFP(spec, exec.New(1), ins, w, core.TuneOptions{})
	p.PlanFP(spec, exec.New(1), ins, w, core.TuneOptions{})

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"spg_planner_cache_hits_total 1",
		"spg_planner_cache_misses_total 1",
		"spg_planner_measurements_total 1",
		"spg_planner_entries 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("rendering missing %q:\n%s", want, out)
		}
	}
}
