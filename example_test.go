package spgcnn_test

import (
	"fmt"

	"spgcnn"
)

// Characterize a convolution the way the paper's §3 does: intrinsic
// arithmetic intensity, the fraction unfolding preserves, and the Fig. 1
// region with its prescribed techniques.
func ExampleAnalyze() {
	a := spgcnn.Analyze(spgcnn.Square(32, 32, 32, 4, 1)) // Table 1, ID 0
	fmt.Printf("intrinsic AIT %.0f\n", a.IntrinsicAIT)
	fmt.Printf("ratio r %.3f\n", a.Ratio)
	fmt.Printf("dense %v, sparse %v\n", a.DenseRegion, a.SparseRegion)
	fmt.Printf("prescription: %v\n", a.SparseRegion.Props().Recommendations)
	// Output:
	// intrinsic AIT 362
	// ratio r 0.084
	// dense Region 4, sparse Region 5
	// prescription: [Stencil-Kernel (FP) Sparse-Kernel (BP)]
}

// Generate a Stencil-Kernel and verify it agrees with the Unfold+GEMM
// baseline — every kernel in the library computes the identical
// convolution.
func ExampleNewStencil() {
	spec := spgcnn.Square(12, 4, 2, 3, 1)
	r := spgcnn.NewRNG(1)
	in := spgcnn.NewInput(spec)
	in.FillNormal(r, 0, 1)
	w := spgcnn.NewWeights(spec)
	w.FillNormal(r, 0, 0.5)

	a := spgcnn.NewOutput(spec)
	b := spgcnn.NewOutput(spec)
	spgcnn.NewStencil(spec).Forward(a, in, w)
	spgcnn.NewUnfoldGEMM(spec, 1).Forward(b, in, w)

	maxDiff := float32(0)
	for i := range a.Data {
		d := a.Data[i] - b.Data[i]
		if d < 0 {
			d = -d
		}
		if d > maxDiff {
			maxDiff = d
		}
	}
	fmt.Println("kernels agree:", maxDiff < 1e-4)
	// Output:
	// kernels agree: true
}

// One execution context serves every layer: the two convolutions below
// have different geometries, yet their batch calls draw scratch from the
// same size-classed arena, so the second layer (and every later training
// step) reuses the buffers the first acquired instead of allocating.
func ExampleCtx() {
	ctx := spgcnn.NewCtx(2)
	layer0 := spgcnn.Square(16, 8, 3, 5, 1)
	layer1 := spgcnn.Square(12, 16, 8, 3, 1)
	r := spgcnn.NewRNG(7)

	run := func(spec spgcnn.ConvSpec, k spgcnn.Kernel) {
		const batch = 2
		var ins, outs []*spgcnn.Tensor
		for i := 0; i < batch; i++ {
			in := spgcnn.NewInput(spec)
			in.FillNormal(r, 0, 1)
			ins = append(ins, in)
			outs = append(outs, spgcnn.NewOutput(spec))
		}
		w := spgcnn.NewWeights(spec)
		w.FillNormal(r, 0, 0.5)
		k.ForwardBatch(ctx, outs, ins, w)
	}

	run(layer0, spgcnn.NewStencil(layer0))
	before := ctx.Arena().Stats()
	run(layer1, spgcnn.NewUnfoldGEMM(layer1, 1))
	run(layer0, spgcnn.NewStencil(layer0)) // steady state: all scratch reused
	after := ctx.Arena().Stats()

	fmt.Println("later layers acquired scratch:", after.Gets > before.Gets)
	fmt.Println("served from free lists:", after.Hits > before.Hits)
	fmt.Println("buffers leaked:", after.Outstanding)
	// Output:
	// later layers acquired scratch: true
	// served from free lists: true
	// buffers leaked: 0
}

// The Sparse-Kernel touches only the non-zero error gradients; Eq. 9's
// goodput numerator counts exactly that work.
func ExampleSparseNonZeroFlops() {
	spec := spgcnn.Square(36, 64, 3, 5, 1) // CIFAR-10 layer 0
	dense := spec.FlopsBPInput()
	useful := spgcnn.SparseNonZeroFlops(spec, 100) // 100 surviving gradients
	fmt.Printf("dense BP flops:  %d\n", dense)
	fmt.Printf("useful at nnz=100: %d\n", useful)
	// Output:
	// dense BP flops:  9830400
	// useful at nnz=100: 15000
	_ = useful
}

// Parse a network description and inspect its structure.
func ExampleParseNet() {
	def, err := spgcnn.ParseNet(`
name: "tiny"
input { channels: 1 height: 8 width: 8 }
layer { name: "c" type: "conv" features: 2 kernel: 3 }
layer { type: "relu" }
layer { type: "fc" outputs: 4 }
`)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(def.Name, len(def.Layers), "layers")
	// Output:
	// tiny 3 layers
}
