package exec

import "sync"

// Probe is the lightweight instrumentation sink carried by a Ctx: named
// timing spans (per execution phase per strategy) and the scheduler's
// kernel-choice events. All methods are safe for concurrent use and
// nil-safe, so instrumentation points never need guarding.
type Probe struct {
	mu      sync.Mutex
	spans   map[string]*Span
	choices []Choice
	sink    Sink
}

// Sink receives a live copy of everything the probe records — the seam
// the metrics registry attaches through (metrics.Bind) so a running
// training job is scrapeable without polling the probe. Implementations
// must be safe for concurrent use and must not call back into the probe.
type Sink interface {
	// ObserveSpan mirrors Probe.Observe.
	ObserveSpan(name string, seconds float64)
	// RecordChoice mirrors Probe.RecordChoice.
	RecordChoice(phase, strategy string, seconds float64)
}

// Span aggregates the observations of one named instrumentation point.
type Span struct {
	// Calls is the number of observations.
	Calls int64
	// Seconds is the total observed time.
	Seconds float64
	// Min is the fastest single observation.
	Min float64
}

// Choice records one scheduler deployment decision: which strategy won a
// measurement pass and its measured time.
type Choice struct {
	// Phase is "fp" or "bp".
	Phase string
	// Strategy is the winning strategy's name.
	Strategy string
	// Seconds is the winner's measured (minimum) time.
	Seconds float64
}

// NewProbe returns an empty probe.
func NewProbe() *Probe { return &Probe{spans: make(map[string]*Span)} }

// SetSink attaches (or, with nil, detaches) a live mirror of the probe's
// stream. Only one sink is held; attaching replaces the previous one — use
// AddSink (or an explicit MultiSink) when several consumers must observe
// the same probe.
func (p *Probe) SetSink(s Sink) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.sink = s
	p.mu.Unlock()
}

// AddSink attaches s WITHOUT detaching the current sink: when one is
// already held the two are composed through a MultiSink, so the metrics
// bridge and the tracer (or any further consumer) can observe the same
// probe concurrently. A nil s is a no-op.
func (p *Probe) AddSink(s Sink) {
	if p == nil || s == nil {
		return
	}
	p.mu.Lock()
	p.sink = MultiSink(p.sink, s)
	p.mu.Unlock()
}

// multiSink fans the probe stream out to several sinks, in attach order.
type multiSink []Sink

// MultiSink composes sinks into one: every observation is forwarded to
// each non-nil sink in order. Nil sinks are dropped; zero or one survivor
// collapses to nil or the survivor itself (no wrapper on the hot path).
// Nested MultiSinks are flattened, so repeated AddSink calls never build a
// forwarding chain.
func MultiSink(sinks ...Sink) Sink {
	var flat multiSink
	for _, s := range sinks {
		switch v := s.(type) {
		case nil:
			continue
		case multiSink:
			flat = append(flat, v...)
		default:
			flat = append(flat, s)
		}
	}
	switch len(flat) {
	case 0:
		return nil
	case 1:
		return flat[0]
	}
	return flat
}

// ObserveSpan implements Sink.
func (m multiSink) ObserveSpan(name string, seconds float64) {
	for _, s := range m {
		s.ObserveSpan(name, seconds)
	}
}

// RecordChoice implements Sink.
func (m multiSink) RecordChoice(phase, strategy string, seconds float64) {
	for _, s := range m {
		s.RecordChoice(phase, strategy, seconds)
	}
}

// Observe records one timed run of the named span.
func (p *Probe) Observe(name string, seconds float64) {
	if p == nil {
		return
	}
	p.mu.Lock()
	sp := p.spans[name]
	if sp == nil {
		sp = &Span{Min: seconds}
		p.spans[name] = sp
	}
	sp.Calls++
	sp.Seconds += seconds
	if seconds < sp.Min {
		sp.Min = seconds
	}
	sink := p.sink
	p.mu.Unlock()
	if sink != nil {
		sink.ObserveSpan(name, seconds)
	}
}

// SpanStats returns a copy of the named span's aggregate.
func (p *Probe) SpanStats(name string) (Span, bool) {
	if p == nil {
		return Span{}, false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	sp, ok := p.spans[name]
	if !ok {
		return Span{}, false
	}
	return *sp, true
}

// Spans returns a snapshot of every span by name.
func (p *Probe) Spans() map[string]Span {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[string]Span, len(p.spans))
	for name, sp := range p.spans {
		out[name] = *sp
	}
	return out
}

// RecordChoice appends one scheduler deployment decision.
func (p *Probe) RecordChoice(phase, strategy string, seconds float64) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.choices = append(p.choices, Choice{Phase: phase, Strategy: strategy, Seconds: seconds})
	sink := p.sink
	p.mu.Unlock()
	if sink != nil {
		sink.RecordChoice(phase, strategy, seconds)
	}
}

// Choices returns a copy of the recorded deployment decisions, oldest
// first.
func (p *Probe) Choices() []Choice {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]Choice(nil), p.choices...)
}
