package fft

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"

	"spgcnn/internal/rng"
)

func TestNextPow2(t *testing.T) {
	cases := map[int]int{0: 1, 1: 1, 2: 2, 3: 4, 4: 4, 5: 8, 1023: 1024, 1024: 1024, 1025: 2048}
	for in, want := range cases {
		if got := NextPow2(in); got != want {
			t.Errorf("NextPow2(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestIsPow2(t *testing.T) {
	if !IsPow2(1) || !IsPow2(64) || IsPow2(0) || IsPow2(3) || IsPow2(-4) {
		t.Fatal("IsPow2 wrong")
	}
}

func TestFFTImpulse(t *testing.T) {
	// FFT of a unit impulse is all ones.
	x := make([]complex128, 8)
	x[0] = 1
	FFT(x)
	for i, v := range x {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Fatalf("impulse FFT[%d] = %v", i, v)
		}
	}
}

func TestFFTConstant(t *testing.T) {
	// FFT of a constant c has c·N at DC and zero elsewhere.
	x := make([]complex128, 16)
	for i := range x {
		x[i] = 3
	}
	FFT(x)
	if cmplx.Abs(x[0]-48) > 1e-9 {
		t.Fatalf("DC = %v, want 48", x[0])
	}
	for i := 1; i < 16; i++ {
		if cmplx.Abs(x[i]) > 1e-9 {
			t.Fatalf("bin %d = %v, want 0", i, x[i])
		}
	}
}

func TestFFTKnownSinusoid(t *testing.T) {
	// cos(2πk·3/N) puts energy N/2 at bins 3 and N-3.
	const n = 32
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(math.Cos(2*math.Pi*3*float64(i)/n), 0)
	}
	FFT(x)
	for i := 0; i < n; i++ {
		want := 0.0
		if i == 3 || i == n-3 {
			want = n / 2
		}
		if math.Abs(cmplx.Abs(x[i])-want) > 1e-9 {
			t.Fatalf("bin %d magnitude %v, want %v", i, cmplx.Abs(x[i]), want)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	r := rng.New(1)
	for _, n := range []int{1, 2, 8, 64, 512} {
		x := make([]complex128, n)
		orig := make([]complex128, n)
		for i := range x {
			x[i] = complex(r.NormFloat64(), r.NormFloat64())
			orig[i] = x[i]
		}
		FFT(x)
		IFFT(x)
		for i := range x {
			if cmplx.Abs(x[i]-orig[i]) > 1e-9 {
				t.Fatalf("n=%d: round trip diverged at %d", n, i)
			}
		}
	}
}

func TestParseval(t *testing.T) {
	// Σ|x|² = (1/N)·Σ|X|².
	r := rng.New(2)
	const n = 128
	x := make([]complex128, n)
	var timeE float64
	for i := range x {
		x[i] = complex(r.NormFloat64(), 0)
		timeE += real(x[i]) * real(x[i])
	}
	FFT(x)
	var freqE float64
	for _, v := range x {
		freqE += real(v)*real(v) + imag(v)*imag(v)
	}
	if math.Abs(timeE-freqE/n) > 1e-9*timeE {
		t.Fatalf("Parseval violated: %v vs %v", timeE, freqE/n)
	}
}

func TestLinearityQuick(t *testing.T) {
	r := rng.New(3)
	if err := quick.Check(func(seed uint16) bool {
		rr := rng.New(uint64(seed))
		const n = 64
		a := make([]complex128, n)
		b := make([]complex128, n)
		sum := make([]complex128, n)
		for i := range a {
			a[i] = complex(rr.NormFloat64(), 0)
			b[i] = complex(rr.NormFloat64(), 0)
			sum[i] = a[i] + 2*b[i]
		}
		FFT(a)
		FFT(b)
		FFT(sum)
		for i := range sum {
			if cmplx.Abs(sum[i]-(a[i]+2*b[i])) > 1e-9 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
	_ = r
}

func TestNonPow2Panics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-pow2 length accepted")
		}
	}()
	FFT(make([]complex128, 6))
}

func TestConvolve1DMatchesDirect(t *testing.T) {
	r := rng.New(4)
	for trial := 0; trial < 20; trial++ {
		na, nb := r.Intn(20)+1, r.Intn(20)+1
		a := make([]float64, na)
		b := make([]float64, nb)
		for i := range a {
			a[i] = r.NormFloat64()
		}
		for i := range b {
			b[i] = r.NormFloat64()
		}
		got := Convolve1D(a, b)
		want := make([]float64, na+nb-1)
		for i := range a {
			for j := range b {
				want[i+j] += a[i] * b[j]
			}
		}
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-9 {
				t.Fatalf("conv differs at %d: %v vs %v", i, got[i], want[i])
			}
		}
	}
}

func TestFFT2DSeparability(t *testing.T) {
	// A rank-1 plane f(y,x) = g(y)·h(x) transforms to G(ky)·H(kx).
	const h, w = 8, 16
	r := rng.New(5)
	g := make([]complex128, h)
	hh := make([]complex128, w)
	for i := range g {
		g[i] = complex(r.NormFloat64(), 0)
	}
	for i := range hh {
		hh[i] = complex(r.NormFloat64(), 0)
	}
	plane := make([]complex128, h*w)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			plane[y*w+x] = g[y] * hh[x]
		}
	}
	FFT2D(plane, h, w)
	G := append([]complex128(nil), g...)
	H := append([]complex128(nil), hh...)
	FFT(G)
	FFT(H)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if cmplx.Abs(plane[y*w+x]-G[y]*H[x]) > 1e-9 {
				t.Fatalf("separability violated at (%d,%d)", y, x)
			}
		}
	}
}

func TestFFT2DRoundTrip(t *testing.T) {
	r := rng.New(6)
	const h, w = 16, 8
	x := make([]complex128, h*w)
	orig := make([]complex128, h*w)
	for i := range x {
		x[i] = complex(r.NormFloat64(), r.NormFloat64())
		orig[i] = x[i]
	}
	FFT2D(x, h, w)
	IFFT2D(x, h, w)
	for i := range x {
		if cmplx.Abs(x[i]-orig[i]) > 1e-9 {
			t.Fatal("2D round trip diverged")
		}
	}
}

func BenchmarkFFT1024(b *testing.B) {
	x := make([]complex128, 1024)
	for i := range x {
		x[i] = complex(float64(i), 0)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FFT(x)
	}
}

func BenchmarkFFT2D64(b *testing.B) {
	x := make([]complex128, 64*64)
	for i := range x {
		x[i] = complex(float64(i), 0)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FFT2D(x, 64, 64)
	}
}
