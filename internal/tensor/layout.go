package tensor

import "fmt"

// This file implements the data-layout transformations the spg-CNN code
// generators depend on (paper §4.2 "Vectorization" and §4.3 "Strided
// Convolutions"):
//
//   - CHWToHWC / HWCToCHW move the channel (or feature) dimension into the
//     fastest-varying position so a kernel can operate on a contiguous
//     channel vector per spatial location. The Sparse-Kernel transforms
//     weights and outputs so c is fastest, and inputs so f is fastest.
//   - FCKKToKKFC reorders weights [f][c][ky][kx] -> [ky][kx][f][c] so that
//     for fixed kernel coordinates the [f][c] block is a contiguous dense
//     matrix — the W' of Eq. 13.
//   - StrideSplit implements Eq. 21: I[y][x] -> I[y][s][x'] with
//     s = x mod sx, turning strided accesses into unit-stride vector loads.

// CHWToHWC converts a [C][H][W] tensor into [H][W][C] layout.
func CHWToHWC(t *Tensor) *Tensor {
	if t.Rank() != 3 {
		panic(fmt.Sprintf("tensor: CHWToHWC needs rank-3 input, got %v", t.Dims))
	}
	c, h, w := t.Dims[0], t.Dims[1], t.Dims[2]
	out := New(h, w, c)
	for ci := 0; ci < c; ci++ {
		for yi := 0; yi < h; yi++ {
			src := t.Row3(ci, yi)
			for xi := 0; xi < w; xi++ {
				out.Data[(yi*w+xi)*c+ci] = src[xi]
			}
		}
	}
	return out
}

// HWCToCHW converts a [H][W][C] tensor into [C][H][W] layout.
func HWCToCHW(t *Tensor) *Tensor {
	if t.Rank() != 3 {
		panic(fmt.Sprintf("tensor: HWCToCHW needs rank-3 input, got %v", t.Dims))
	}
	h, w, c := t.Dims[0], t.Dims[1], t.Dims[2]
	out := New(c, h, w)
	for yi := 0; yi < h; yi++ {
		for xi := 0; xi < w; xi++ {
			src := t.Row3(yi, xi)
			for ci := 0; ci < c; ci++ {
				out.Data[(ci*h+yi)*w+xi] = src[ci]
			}
		}
	}
	return out
}

// FCKKToKKFC reorders convolution weights from the canonical
// [F][C][Ky][Kx] layout to [Ky][Kx][F][C], so that W'[f][c] for fixed
// (ky, kx) is a contiguous F×C matrix with c fastest (Eq. 13's W').
func FCKKToKKFC(w *Tensor) *Tensor {
	if w.Rank() != 4 {
		panic(fmt.Sprintf("tensor: FCKKToKKFC needs rank-4 input, got %v", w.Dims))
	}
	f, c, ky, kx := w.Dims[0], w.Dims[1], w.Dims[2], w.Dims[3]
	out := New(ky, kx, f, c)
	for fi := 0; fi < f; fi++ {
		for ci := 0; ci < c; ci++ {
			for yi := 0; yi < ky; yi++ {
				for xi := 0; xi < kx; xi++ {
					out.Data[((yi*kx+xi)*f+fi)*c+ci] = w.At4(fi, ci, yi, xi)
				}
			}
		}
	}
	return out
}

// KKFCToFCKK inverts FCKKToKKFC.
func KKFCToFCKK(w *Tensor) *Tensor {
	if w.Rank() != 4 {
		panic(fmt.Sprintf("tensor: KKFCToFCKK needs rank-4 input, got %v", w.Dims))
	}
	ky, kx, f, c := w.Dims[0], w.Dims[1], w.Dims[2], w.Dims[3]
	out := New(f, c, ky, kx)
	for yi := 0; yi < ky; yi++ {
		for xi := 0; xi < kx; xi++ {
			for fi := 0; fi < f; fi++ {
				for ci := 0; ci < c; ci++ {
					out.Data[((fi*c+ci)*ky+yi)*kx+xi] = w.At4(yi, xi, fi, ci)
				}
			}
		}
	}
	return out
}

// StrideSplit implements the paper's Eq. 21 layout transform for strided
// convolutions. The input [C][H][W] becomes [C][H][sx][ceil(W/sx)] where
// element (c, y, s, x') holds I[c][y][x'*sx + s]. Positions past the end of
// a row (when sx does not divide W) are zero-padded, which is harmless
// because a valid convolution never reads them.
func StrideSplit(t *Tensor, sx int) *Tensor {
	if t.Rank() != 3 {
		panic(fmt.Sprintf("tensor: StrideSplit needs rank-3 input, got %v", t.Dims))
	}
	if sx < 1 {
		panic(fmt.Sprintf("tensor: StrideSplit stride %d < 1", sx))
	}
	c, h, w := t.Dims[0], t.Dims[1], t.Dims[2]
	wq := (w + sx - 1) / sx
	out := New(c, h, sx, wq)
	for ci := 0; ci < c; ci++ {
		for yi := 0; yi < h; yi++ {
			src := t.Row3(ci, yi)
			for xi := 0; xi < w; xi++ {
				s := xi % sx
				xq := xi / sx
				out.Data[((ci*h+yi)*sx+s)*wq+xq] = src[xi]
			}
		}
	}
	return out
}

// StrideMerge inverts StrideSplit, recovering the original [C][H][W]
// tensor given the original width w.
func StrideMerge(t *Tensor, w int) *Tensor {
	if t.Rank() != 4 {
		panic(fmt.Sprintf("tensor: StrideMerge needs rank-4 input, got %v", t.Dims))
	}
	c, h, sx, wq := t.Dims[0], t.Dims[1], t.Dims[2], t.Dims[3]
	if wq*sx < w {
		panic(fmt.Sprintf("tensor: StrideMerge width %d exceeds capacity %d", w, wq*sx))
	}
	out := New(c, h, w)
	for ci := 0; ci < c; ci++ {
		for yi := 0; yi < h; yi++ {
			dst := out.Row3(ci, yi)
			for xi := 0; xi < w; xi++ {
				dst[xi] = t.Data[((ci*h+yi)*sx+xi%sx)*wq+xi/sx]
			}
		}
	}
	return out
}

// Pad returns a copy of a [C][H][W] tensor with py rows and px columns of
// zeros added on each spatial border, used by networks whose layer
// geometry requires padding (Table 2 notes image padding/cropping).
func Pad(t *Tensor, py, px int) *Tensor {
	if t.Rank() != 3 {
		panic(fmt.Sprintf("tensor: Pad needs rank-3 input, got %v", t.Dims))
	}
	if py < 0 || px < 0 {
		panic("tensor: negative padding")
	}
	c, h, w := t.Dims[0], t.Dims[1], t.Dims[2]
	out := New(c, h+2*py, w+2*px)
	for ci := 0; ci < c; ci++ {
		for yi := 0; yi < h; yi++ {
			copy(out.Row3(ci, yi+py)[px:px+w], t.Row3(ci, yi))
		}
	}
	return out
}

// CropGrad is the adjoint of Pad: it extracts the interior gradient,
// discarding contributions to the padded border.
func CropGrad(t *Tensor, py, px int) *Tensor {
	if t.Rank() != 3 {
		panic(fmt.Sprintf("tensor: CropGrad needs rank-3 input, got %v", t.Dims))
	}
	c, h, w := t.Dims[0], t.Dims[1], t.Dims[2]
	if h <= 2*py || w <= 2*px {
		panic(fmt.Sprintf("tensor: CropGrad padding (%d,%d) too large for %v", py, px, t.Dims))
	}
	out := New(c, h-2*py, w-2*px)
	for ci := 0; ci < c; ci++ {
		for yi := 0; yi < h-2*py; yi++ {
			copy(out.Row3(ci, yi), t.Row3(ci, yi+py)[px:px+w-2*px])
		}
	}
	return out
}
