package machine

import "math"

// Cluster models the interconnect of a scale-out data-parallel deployment
// — the §6 context where each node runs one spg-CNN worker and parameter
// synchronization rides the network. It extends the single-node roofline
// reasoning of Machine to the reduction step with the standard alpha-beta
// communication model: a message of b bytes between two nodes costs
// alpha + b/beta.
type Cluster struct {
	// Nodes is the replica count.
	Nodes int
	// LinkGBs is the per-node link bandwidth in GB/s (beta). 1.25 GB/s
	// models the 10 GbE fabric of the paper's cluster era.
	LinkGBs float64
	// LatencyUS is the per-message latency in microseconds (alpha).
	LatencyUS float64
	// EncodeGBs is the node-local rate at which a replica can delta,
	// scan and CT-CSR-encode its parameter vector (GB/s of parameter
	// bytes). It prices the sparse exchange's extra local passes; ~4 GB/s
	// matches a single stream-bound core.
	EncodeGBs float64
}

// DefaultCluster returns the modeling defaults for n replicas.
func DefaultCluster(n int) Cluster {
	return Cluster{Nodes: n, LinkGBs: 1.25, LatencyUS: 25, EncodeGBs: 4.0}
}

const bytesPerParam = 4 // float32 parameters on the wire

// alphaSeconds returns the per-message latency in seconds.
func (c Cluster) alphaSeconds() float64 { return c.LatencyUS * 1e-6 }

// linkSeconds returns the time to move b bytes across one link.
func (c Cluster) linkSeconds(b float64) float64 {
	if c.LinkGBs <= 0 {
		return math.Inf(1)
	}
	return b / (c.LinkGBs * 1e9)
}

// AllReduceSeconds models one dense synchronization round of params
// float32 parameters across c.Nodes replicas under the given schedule.
//
//   - "flat": the coordinator gathers every replica's vector and sends the
//     mean back — 2(N-1) full-vector transfers serialized through one link.
//   - "ring": reduce-scatter + allgather — 2(N-1) steps, each moving only
//     P/N of the vector per link, all links busy: bandwidth-optimal.
//   - "tree": 2·ceil(log2 N) full-vector hops — latency-optimal for small
//     vectors, bandwidth-bound for large ones.
//
// Unknown methods price as flat (the conservative upper bound).
func (c Cluster) AllReduceSeconds(method string, params int) float64 {
	n := c.Nodes
	if n < 2 || params <= 0 {
		return 0
	}
	bytes := float64(params) * bytesPerParam
	switch method {
	case "ring":
		steps := float64(2 * (n - 1))
		return steps * (c.alphaSeconds() + c.linkSeconds(bytes/float64(n)))
	case "tree":
		rounds := 2 * math.Ceil(math.Log2(float64(n)))
		return rounds * (c.alphaSeconds() + c.linkSeconds(bytes))
	default: // flat
		steps := float64(2 * (n - 1))
		return steps * (c.alphaSeconds() + c.linkSeconds(bytes))
	}
}

// SparseAllReduceSeconds models one sparse synchronization round: each
// replica deltas + encodes its vector locally (three passes over the
// parameter bytes at EncodeGBs), ships only the non-zeros (8 bytes each:
// value + index) under the given schedule's transfer structure, and the
// touched union broadcasts back. density is the per-replica delta density
// in [0, 1].
func (c Cluster) SparseAllReduceSeconds(method string, params int, density float64) float64 {
	n := c.Nodes
	if n < 2 || params <= 0 {
		return 0
	}
	if density < 0 {
		density = 0
	}
	if density > 1 {
		density = 1
	}
	encode := 0.0
	if c.EncodeGBs > 0 {
		encode = 3 * float64(params) * bytesPerParam / (c.EncodeGBs * 1e9)
	}
	// 8 bytes per shipped non-zero; the broadcast union saturates toward
	// full density as replicas' non-zero sets overlap less, at which point
	// the broadcast reverts to the dense 4-byte representation.
	union := math.Min(1, density*float64(n))
	upBytes := density * float64(params) * 8
	downBytes := math.Min(union*8, bytesPerParam) * float64(params)
	var wire float64
	switch method {
	case "ring":
		steps := float64(n - 1)
		wire = steps*(c.alphaSeconds()+c.linkSeconds(upBytes/float64(n))) +
			steps*(c.alphaSeconds()+c.linkSeconds(downBytes/float64(n)))
	case "tree":
		rounds := math.Ceil(math.Log2(float64(n)))
		wire = rounds*(c.alphaSeconds()+c.linkSeconds(upBytes)) +
			rounds*(c.alphaSeconds()+c.linkSeconds(downBytes))
	default: // flat
		wire = float64(n-1)*(c.alphaSeconds()+c.linkSeconds(upBytes)) +
			float64(n-1)*(c.alphaSeconds()+c.linkSeconds(downBytes))
	}
	return encode + wire
}

// AllReduceChoice is one ranked (schedule, encoding) candidate.
type AllReduceChoice struct {
	Method  string
	Sparse  bool
	Seconds float64
}

// RankAllReduce prices every schedule × encoding for the given round and
// returns them fastest-first. density < 0 means "density unknown" and
// excludes the sparse candidates (a round that never computed deltas
// cannot ship them).
func (c Cluster) RankAllReduce(params int, density float64) []AllReduceChoice {
	methods := []string{"flat", "ring", "tree"}
	var out []AllReduceChoice
	for _, m := range methods {
		out = append(out, AllReduceChoice{Method: m, Seconds: c.AllReduceSeconds(m, params)})
		if density >= 0 {
			out = append(out, AllReduceChoice{
				Method: m, Sparse: true,
				Seconds: c.SparseAllReduceSeconds(m, params, density),
			})
		}
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Seconds < out[j-1].Seconds; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// BestAllReduce returns the fastest (schedule, encoding) for the round.
func (c Cluster) BestAllReduce(params int, density float64) AllReduceChoice {
	return c.RankAllReduce(params, density)[0]
}
