// spg-bench regenerates the tables and figures of the paper's evaluation.
//
// Usage:
//
//	spg-bench -list
//	spg-bench -exp table1
//	spg-bench -exp fig4e -scale full -csv
//	spg-bench -all -out results/
//	spg-bench -exp goodput -json                  # write BENCH_goodput.json
//	spg-bench -exp table1 -json -baseline baselines  # compare vs committed
//
// Modeled experiments print the calibrated machine-model series (the
// paper's 16-core Xeon); measured experiments execute real kernels or
// training runs on this host. See DESIGN.md for the per-experiment index.
//
// -json writes a schema-versioned machine-readable report
// (BENCH_<exp>.json, host-fingerprinted) instead of text output. With
// -baseline DIR each fresh report is additionally compared against
// DIR/BENCH_<exp>.json: strictly for deterministic (analytical/modeled)
// experiments within -tolerance, structurally for measured ones.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"spgcnn"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "spg-bench: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("spg-bench", flag.ContinueOnError)
	var (
		list        = fs.Bool("list", false, "list available experiments")
		exp         = fs.String("exp", "", "experiment ID to run (see -list)")
		all         = fs.Bool("all", false, "run every experiment")
		scale       = fs.String("scale", "quick", "workload scale: quick or full")
		workers     = fs.Int("workers", 0, "host workers for measured experiments (0 = GOMAXPROCS)")
		mach        = fs.String("machine", "paper", "model behind modeled figures: paper (16-core Xeon) or host (calibrated probe)")
		csv         = fs.Bool("csv", false, "emit CSV instead of aligned text")
		jsonOut     = fs.Bool("json", false, "write machine-readable BENCH_<exp>.json reports (into -out, default .)")
		baseline    = fs.String("baseline", "", "directory of committed BENCH_<exp>.json baselines to compare -json reports against")
		tolerance   = fs.Float64("tolerance", 0.05, "relative tolerance band for deterministic baseline comparison")
		out         = fs.String("out", "", "directory to write per-experiment files into (default: stdout; with -json: .)")
		metricsAddr = fs.String("metrics-addr", "", "serve /metrics, /healthz and /debug/pprof on this address while experiments run")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, e := range spgcnn.Experiments() {
			fmt.Fprintf(stdout, "%-14s [%-10s] %s\n", e.ID, e.Kind, e.Desc)
		}
		return nil
	}
	if *scale != "quick" && *scale != "full" {
		return fmt.Errorf("invalid -scale %q (want quick or full)", *scale)
	}
	if *mach != "paper" && *mach != "host" {
		return fmt.Errorf("invalid -machine %q (want paper or host)", *mach)
	}
	if *baseline != "" && !*jsonOut {
		return fmt.Errorf("-baseline requires -json")
	}
	opts := spgcnn.ExperimentOptions{Scale: *scale, Workers: *workers, Machine: *mach}

	if *metricsAddr != "" {
		srv, err := spgcnn.ServeMetrics(*metricsAddr, spgcnn.NewMetricsRegistry())
		if err != nil {
			return fmt.Errorf("metrics endpoint: %w", err)
		}
		defer srv.Close()
		fmt.Fprintf(stderr, "metrics endpoint %s\n", srv.URL())
	}

	var exps []spgcnn.Experiment
	switch {
	case *all:
		exps = spgcnn.Experiments()
	case *exp != "":
		e, err := spgcnn.LookupExperiment(*exp)
		if err != nil {
			return err
		}
		exps = []spgcnn.Experiment{e}
	default:
		return fmt.Errorf("nothing to do: pass -exp <id>, -all, or -list")
	}

	dir := *out
	if *jsonOut && dir == "" {
		dir = "."
	}
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}

	var failures []string
	for _, e := range exps {
		fmt.Fprintf(stderr, "running %s ...\n", e.ID)
		tables := e.Run(opts)

		if *jsonOut {
			rep := spgcnn.NewBenchReport(e, opts, tables)
			path := filepath.Join(dir, "BENCH_"+e.ID+".json")
			if err := rep.WriteFile(path); err != nil {
				return err
			}
			fmt.Fprintf(stderr, "wrote %s\n", path)
			if *baseline != "" {
				basePath := filepath.Join(*baseline, "BENCH_"+e.ID+".json")
				base, err := spgcnn.LoadBenchReport(basePath)
				if err != nil {
					return fmt.Errorf("baseline: %w", err)
				}
				if err := spgcnn.CompareBenchReports(base, &rep, *tolerance); err != nil {
					fmt.Fprintf(stderr, "%v\n", err)
					failures = append(failures, e.ID)
				} else {
					fmt.Fprintf(stderr, "%s matches baseline (tolerance %g)\n", e.ID, *tolerance)
				}
			}
			continue
		}

		var b strings.Builder
		for i, t := range tables {
			if i > 0 {
				b.WriteByte('\n')
			}
			if *csv {
				b.WriteString("# " + t.Title + "\n")
				b.WriteString(t.CSV())
			} else {
				b.WriteString(t.Render())
			}
		}
		if dir == "" {
			fmt.Fprint(stdout, b.String())
			fmt.Fprintln(stdout)
			continue
		}
		ext := ".txt"
		if *csv {
			ext = ".csv"
		}
		path := filepath.Join(dir, e.ID+ext)
		if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stderr, "wrote %s\n", path)
	}
	if len(failures) > 0 {
		return fmt.Errorf("baseline comparison failed for %s", strings.Join(failures, ", "))
	}
	return nil
}
