package trace

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"

	"spgcnn/internal/exec"
)

func TestModeRoundTrip(t *testing.T) {
	for _, m := range []Mode{Full, Ring} {
		got, err := ParseMode(m.String())
		if err != nil || got != m {
			t.Fatalf("ParseMode(%q) = %v, %v", m.String(), got, err)
		}
	}
	if _, err := ParseMode("nope"); err == nil {
		t.Fatal("ParseMode accepted garbage")
	}
}

func TestNilRecorderAndEmitterAreInert(t *testing.T) {
	var r *Recorder
	r.SetStep(1)
	r.SetBand(2)
	r.AddLayerMeta(LayerMeta{Name: "x"})
	if r.Events() != nil || r.Layers() != nil {
		t.Fatal("nil recorder returned data")
	}
	if r.Stats() != (Stats{}) {
		t.Fatal("nil recorder returned stats")
	}
	e := r.Emitter(0, 0)
	e.Span("c", "n", time.Now(), time.Millisecond)
	e.Instant("c", "n", "", 0)
	e.End("c", "n", 0.1)
	ran := false
	e.Region("c", "n", func() { ran = true })
	if !ran {
		t.Fatal("nil emitter Region did not run fn")
	}
	// The sink over a nil emitter must also be inert.
	s := NewProbeSink(e)
	s.ObserveSpan("layer/x/fp/stencil", 0.1)
	s.RecordChoice("fp", "stencil", 0.1)
}

func TestEmitterStampsIdentityStepAndBand(t *testing.T) {
	r := New(Options{})
	r.SetStep(7)
	r.SetBand(3)
	e := r.Emitter(2, 1)
	e.Span("layer", "layer/conv0/fp/stencil", time.Now(), time.Millisecond)
	e.Instant("epoch", "epoch", "detail", 42)
	evs := r.Events()
	if len(evs) != 2 {
		t.Fatalf("events = %d, want 2", len(evs))
	}
	for _, ev := range evs {
		if ev.Replica != 2 || ev.Worker != 1 {
			t.Fatalf("event %q stamped replica %d worker %d, want 2/1", ev.Name, ev.Replica, ev.Worker)
		}
		if ev.Step != 7 || ev.Band != 3 {
			t.Fatalf("event %q stamped step %d band %d, want 7/3", ev.Name, ev.Step, ev.Band)
		}
	}
	if st := r.Stats(); st.Emitted != 2 || st.Buffered != 2 || st.Dropped != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestRingModeBoundsMemoryAndCountsOverwrites(t *testing.T) {
	r := New(Options{Mode: Ring, RingSize: 4, Shards: 1})
	e := r.Emitter(0, 0)
	for i := 0; i < 10; i++ {
		e.Instant("c", "n", "", float64(i))
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("ring held %d events, want 4", len(evs))
	}
	// The survivors must be the NEWEST four, oldest-first.
	for i, ev := range evs {
		if want := float64(6 + i); ev.Value != want {
			t.Fatalf("ring[%d].Value = %v, want %v", i, ev.Value, want)
		}
	}
	st := r.Stats()
	if st.Emitted != 10 || st.Buffered != 4 || st.Overwritten != 6 {
		t.Fatalf("stats = %+v, want emitted 10 buffered 4 overwritten 6", st)
	}
	if st.Capacity != 4 {
		t.Fatalf("capacity = %d, want 4", st.Capacity)
	}
}

func TestFullModeDropsAtCap(t *testing.T) {
	r := New(Options{Mode: Full, MaxEvents: 3, Shards: 1})
	e := r.Emitter(0, 0)
	for i := 0; i < 5; i++ {
		e.Instant("c", "n", "", float64(i))
	}
	evs := r.Events()
	if len(evs) != 3 {
		t.Fatalf("full mode held %d events, want 3", len(evs))
	}
	// Full mode keeps the OLDEST events and drops new arrivals.
	for i, ev := range evs {
		if ev.Value != float64(i) {
			t.Fatalf("full[%d].Value = %v, want %v", i, ev.Value, float64(i))
		}
	}
	if st := r.Stats(); st.Dropped != 2 {
		t.Fatalf("dropped = %d, want 2", st.Dropped)
	}
}

func TestEmittersShardIndependently(t *testing.T) {
	r := New(Options{Mode: Ring, RingSize: 8, Shards: 4})
	var wg sync.WaitGroup
	for rep := 0; rep < 4; rep++ {
		e := r.Emitter(rep, 0)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				e.Instant("c", "n", "", 1)
			}
		}()
	}
	wg.Wait()
	// 4 shards × ring of 8: each replica's emitter kept its newest 8.
	if evs := r.Events(); len(evs) != 32 {
		t.Fatalf("events = %d, want 32", len(evs))
	}
	if st := r.Stats(); st.Emitted != 400 {
		t.Fatalf("emitted = %d, want 400", st.Emitted)
	}
}

func TestEndStampsSpanStart(t *testing.T) {
	r := New(Options{})
	e := r.Emitter(0, 0)
	e.End("layer", "layer/conv0/fp/stencil", 0.010)
	ev := r.Events()[0]
	if ev.Dur != int64(10*time.Millisecond) {
		t.Fatalf("dur = %d, want 10ms", ev.Dur)
	}
	if ev.Ts < 0 {
		t.Fatalf("ts = %d, want >= 0 (clamped)", ev.Ts)
	}
	// A span "older" than the capture clamps to the epoch rather than
	// going negative.
	e.End("layer", "big", 3600)
	for _, ev := range r.Events() {
		if ev.Ts < 0 {
			t.Fatalf("clamp failed: ts = %d", ev.Ts)
		}
	}
}

func TestProbeSinkBridgesSpansAndChoices(t *testing.T) {
	r := New(Options{})
	p := exec.NewProbe()
	p.AddSink(NewProbeSink(r.Emitter(1, 0)))
	p.Observe("layer/conv0/bp/sparse", 0.002)
	p.Observe("tune/fp/stencil", 0.001)
	p.Observe("flat", 0.001)
	p.RecordChoice("bp", "sparse", 0.002)
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("events = %d, want 4", len(evs))
	}
	cats := map[string]string{}
	for _, ev := range evs {
		cats[ev.Name] = ev.Cat
		if ev.Replica != 1 {
			t.Fatalf("event %q replica = %d, want 1", ev.Name, ev.Replica)
		}
	}
	if cats["layer/conv0/bp/sparse"] != "layer" || cats["tune/fp/stencil"] != "tune" ||
		cats["flat"] != "span" || cats["choice/bp"] != "choice" {
		t.Fatalf("categories = %v", cats)
	}
}

func TestRegionRecordsSpanAndRuns(t *testing.T) {
	r := New(Options{})
	e := r.Emitter(0, 0)
	ran := false
	e.Region("step", "step", func() {
		ran = true
		time.Sleep(time.Millisecond)
	})
	if !ran {
		t.Fatal("Region did not run fn")
	}
	evs := r.Events()
	if len(evs) != 1 || evs[0].Name != "step" || evs[0].Phase != 'X' {
		t.Fatalf("events = %+v", evs)
	}
	if evs[0].Dur < int64(time.Millisecond) {
		t.Fatalf("region dur = %d, want >= 1ms", evs[0].Dur)
	}
}

func TestAddLayerMetaUpserts(t *testing.T) {
	r := New(Options{})
	r.AddLayerMeta(LayerMeta{Name: "conv0", FPFlops: 1, BPFlops: 2})
	r.AddLayerMeta(LayerMeta{Name: "conv1", FPFlops: 3, BPFlops: 4})
	r.AddLayerMeta(LayerMeta{Name: "conv0", FPFlops: 10, BPFlops: 20})
	ls := r.Layers()
	if len(ls) != 2 {
		t.Fatalf("layers = %d, want 2", len(ls))
	}
	if ls[0].Name != "conv0" || ls[0].FPFlops != 10 {
		t.Fatalf("upsert failed: %+v", ls[0])
	}
}

// sampleCapture builds a small deterministic two-replica capture by hand
// (fixed timestamps — recorder clocks would vary run to run).
func sampleCapture() Capture {
	ms := int64(time.Millisecond)
	evs := []Event{
		// Step 1: replica 0 fast (2ms), replica 1 slow (5ms).
		{Name: "step", Cat: "step", Phase: 'X', Ts: 0, Dur: 2 * ms, Replica: 0, Step: 1},
		{Name: "step", Cat: "step", Phase: 'X', Ts: 0, Dur: 5 * ms, Replica: 1, Step: 1},
		{Name: "allreduce", Cat: "sync", Phase: 'X', Ts: 5 * ms, Dur: ms, Replica: -1, Step: 1},
		// Step 2: replica 0 slow (6ms), replica 1 fast (3ms).
		{Name: "step", Cat: "step", Phase: 'X', Ts: 6 * ms, Dur: 6 * ms, Replica: 0, Step: 2},
		{Name: "step", Cat: "step", Phase: 'X', Ts: 6 * ms, Dur: 3 * ms, Replica: 1, Step: 2},
		{Name: "allreduce", Cat: "sync", Phase: 'X', Ts: 12 * ms, Dur: ms, Replica: -1, Step: 2},
		// Step 3: replica 1 slow again (4ms vs 2ms).
		{Name: "step", Cat: "step", Phase: 'X', Ts: 13 * ms, Dur: 2 * ms, Replica: 0, Step: 3},
		{Name: "step", Cat: "step", Phase: 'X', Ts: 13 * ms, Dur: 4 * ms, Replica: 1, Step: 3},
		{Name: "allreduce", Cat: "sync", Phase: 'X', Ts: 17 * ms, Dur: ms, Replica: -1, Step: 3},
		// Layer spans: conv0 runs dense BP, conv1 runs the sparse kernel.
		{Name: "layer/conv0/fp/stencil", Cat: "layer", Phase: 'X', Ts: ms, Dur: ms, Replica: 0, Step: 1},
		{Name: "layer/conv0/bp/parallel-gemm", Cat: "layer", Phase: 'X', Ts: 2 * ms, Dur: 2 * ms, Replica: 0, Step: 1},
		{Name: "layer/conv1/fp/stencil", Cat: "layer", Phase: 'X', Ts: 3 * ms, Dur: ms, Replica: 0, Step: 1},
		{Name: "layer/conv1/bp/sparse", Cat: "layer", Phase: 'X', Ts: 4 * ms, Dur: ms, Replica: 0, Step: 1},
		// Planner activity.
		{Name: "plan/bp/measure", Cat: "plan", Phase: 'X', Ts: 0, Dur: 3 * ms, Replica: -1, Step: 1,
			Detail: "sparse", Value: 0.001},
		{Name: "plan/bp/hit", Cat: "plan", Phase: 'i', Ts: 6 * ms, Replica: -1, Step: 2, Detail: "sparse"},
		// Arena growth.
		{Name: "grow", Cat: "arena", Phase: 'i', Ts: ms, Replica: 0, Step: 1, Value: 4096},
		// Epoch accounting: 8 images, conv0 sparsity 0.5, conv1 0.75.
		{Name: "epoch", Cat: "epoch", Phase: 'i', Ts: 18 * ms, Replica: -1, Step: 3, Value: 8},
		{Name: "sparsity/conv0", Cat: "sparsity", Phase: 'i', Ts: 18 * ms, Replica: -1, Step: 3,
			Detail: "conv0", Value: 0.5},
		{Name: "sparsity/conv1", Cat: "sparsity", Phase: 'i', Ts: 18 * ms, Replica: -1, Step: 3,
			Detail: "conv1", Value: 0.75},
	}
	return Capture{
		Events: evs,
		Layers: []LayerMeta{
			{Name: "conv0", FPFlops: 1000, BPFlops: 2000},
			{Name: "conv1", FPFlops: 500, BPFlops: 1000},
		},
		Mode:  "full",
		Stats: Stats{Emitted: uint64(len(evs))},
	}
}

func TestWriteJSONDeterministicAndRoundTrips(t *testing.T) {
	c := sampleCapture()
	var a, b bytes.Buffer
	if err := WriteJSON(&a, c); err != nil {
		t.Fatal(err)
	}
	if err := WriteJSON(&b, c); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("WriteJSON is not deterministic")
	}
	got, err := ReadJSON(bytes.NewReader(a.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(got); err != nil {
		t.Fatal(err)
	}
	if len(got.Events) != len(c.Events) {
		t.Fatalf("round trip lost events: %d -> %d", len(c.Events), len(got.Events))
	}
	if len(got.Layers) != 2 || got.Mode != "full" {
		t.Fatalf("round trip lost sidecar: %+v", got)
	}
	want := append([]Event(nil), c.Events...)
	SortEvents(want)
	for i := range want {
		if got.Events[i] != want[i] {
			t.Fatalf("event %d diverged:\n got %+v\nwant %+v", i, got.Events[i], want[i])
		}
	}
	// The export must name every process row for trace viewers.
	for _, s := range []string{`"process_name"`, `"replica 0"`, `"replica 1"`, `"scheduler"`, `"displayTimeUnit"`} {
		if !strings.Contains(a.String(), s) {
			t.Fatalf("export missing %s", s)
		}
	}
}

func TestReadJSONRejectsMalformed(t *testing.T) {
	for name, in := range map[string]string{
		"not json":      "{",
		"bad phase":     `{"traceEvents":[{"name":"x","ph":"Q","ts":0,"pid":0,"tid":0}]}`,
		"empty name":    `{"traceEvents":[{"name":"","ph":"i","ts":0,"pid":0,"tid":0}]}`,
		"negative ts":   `{"traceEvents":[{"name":"x","ph":"i","ts":-1,"pid":0,"tid":0}]}`,
		"negative pid":  `{"traceEvents":[{"name":"x","ph":"i","ts":0,"pid":-1,"tid":0}]}`,
		"X without dur": `{"traceEvents":[{"name":"x","ph":"X","ts":0,"pid":0,"tid":0}]}`,
	} {
		if _, err := ReadJSON(strings.NewReader(in)); err == nil {
			t.Errorf("%s: ReadJSON accepted malformed input", name)
		}
	}
}

func TestStragglerAttribution(t *testing.T) {
	rep := Stragglers(sampleCapture())
	if rep.Steps != 3 || rep.Syncs != 3 {
		t.Fatalf("steps/syncs = %d/%d, want 3/3", rep.Steps, rep.Syncs)
	}
	if len(rep.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rep.Rows))
	}
	r0, r1 := rep.Rows[0], rep.Rows[1]
	// Replica 1 was slowest in steps 1 and 3, replica 0 in step 2.
	if r1.SlowestCount != 2 || r0.SlowestCount != 1 {
		t.Fatalf("slowest counts = %d/%d, want 1/2", r0.SlowestCount, r1.SlowestCount)
	}
	if rep.SlowestReplica != 1 {
		t.Fatalf("slowest replica = %d, want 1", rep.SlowestReplica)
	}
	// Replica 0 waited 3ms (step 1) + 2ms (step 3); replica 1 waited 3ms.
	if want := 0.005; !close(r0.BarrierWait, want) {
		t.Fatalf("replica 0 barrier wait = %v, want %v", r0.BarrierWait, want)
	}
	if want := 0.003; !close(r1.BarrierWait, want) {
		t.Fatalf("replica 1 barrier wait = %v, want %v", r1.BarrierWait, want)
	}
	if !close(r0.Min, 0.002) || !close(r0.Max, 0.006) || !close(r0.Mean(), 10.0/3/1000) {
		t.Fatalf("replica 0 min/max/mean = %v/%v/%v", r0.Min, r0.Max, r0.Mean())
	}
	if !close(rep.AllReduceSeconds, 0.003) {
		t.Fatalf("allreduce seconds = %v", rep.AllReduceSeconds)
	}
}

func TestGoodputWasteAttribution(t *testing.T) {
	rep := GoodputWaste(sampleCapture())
	if rep.Epochs != 1 || len(rep.Rows) != 2 {
		t.Fatalf("epochs/rows = %d/%d, want 1/2", rep.Epochs, len(rep.Rows))
	}
	// conv0: dense 8×3000 = 24000, wasted 8×2000×0.5 = 8000, burned
	// (dense BP strategy) 8000. conv1: wasted 8×1000×0.75 = 6000 but the
	// sparse kernel recovers it → burned 0. conv0 must rank first.
	c0 := rep.Rows[0]
	if c0.Layer != "conv0" {
		t.Fatalf("top burner = %s, want conv0", c0.Layer)
	}
	if !close(c0.DenseFlops, 24000) || !close(c0.WastedFlops, 8000) || !close(c0.BurnedFlops, 8000) {
		t.Fatalf("conv0 = %+v", c0)
	}
	if c0.BPStrategy != "parallel-gemm" || c0.FPStrategy != "stencil" {
		t.Fatalf("conv0 strategies = %s/%s", c0.FPStrategy, c0.BPStrategy)
	}
	c1 := rep.Rows[1]
	if !close(c1.WastedFlops, 6000) || c1.BurnedFlops != 0 {
		t.Fatalf("conv1 = %+v (sparse kernel must recover the gap)", c1)
	}
	if !close(rep.DenseFlops, 36000) || !close(rep.WastedFlops, 14000) || !close(rep.BurnedFlops, 8000) {
		t.Fatalf("totals = %+v", rep)
	}
	if !close(rep.UsefulFlops, 22000) {
		t.Fatalf("useful = %v, want 22000", rep.UsefulFlops)
	}
}

func TestTopSpans(t *testing.T) {
	spans := TopSpans(sampleCapture().Events, 3)
	if len(spans) != 3 {
		t.Fatalf("spans = %d, want 3", len(spans))
	}
	// step: 2+5+6+3+2+4 = 22ms total dominates.
	if spans[0].Name != "step" || spans[0].Calls != 6 || !close(spans[0].Total, 0.022) {
		t.Fatalf("top span = %+v", spans[0])
	}
	if !close(spans[0].Max, 0.006) || !close(spans[0].Mean(), 0.022/6) {
		t.Fatalf("top span max/mean = %v/%v", spans[0].Max, spans[0].Mean())
	}
	all := TopSpans(sampleCapture().Events, 0)
	if len(all) < 6 {
		t.Fatalf("TopSpans(0) = %d entries, want all", len(all))
	}
}

func close(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < 1e-9
}
