package spweight

// Driver loop of the sparse-weight forward pass. Like gemm's pack/driver
// code, this file is deliberately outside the bce_check protected set: its
// slicings run once per (feature, tap, y) row, not per element — the
// per-element work lives in kernels.go.

import (
	"spgcnn/internal/conv"
	"spgcnn/internal/tensor"
)

// forwardCSR computes one sample's forward pass from the tap plan. The
// output plane for feature f is zeroed, then each tap (in the reference
// (c, ky, kx) order) adds val·I[tap-window] across all output pixels.
// Per-pixel this is the exact reference addition sequence minus the
// zero-weight terms, so the result is bit-identical to the dense engines.
func forwardCSR(s conv.Spec, p *csrPlan, out, in *tensor.Tensor) {
	oy, ox := s.OutY(), s.OutX()
	rowStep := s.Sy * s.Nx
	for f := 0; f < s.Nf; f++ {
		plane := out.Data[f*oy*ox : (f+1)*oy*ox]
		zeroBuf(plane)
		lo, hi := int(p.rowStart[f]), int(p.rowStart[f+1])
		taps := p.off[lo:hi]
		vals := p.val[lo:hi]
		for t := range taps {
			if t >= len(vals) {
				break
			}
			off := int(taps[t])
			v := vals[t]
			for y := 0; y < oy; y++ {
				src := in.Data[off+y*rowStep:]
				dst := plane[y*ox : (y+1)*ox]
				if s.Sx == 1 {
					axpyRow(dst, src, v)
				} else {
					axpyRowStride(dst, src, v, s.Sx)
				}
			}
		}
	}
}
