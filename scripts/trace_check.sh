#!/bin/sh
# trace_check: end-to-end gate for the execution-tracing subsystem.
# Trains a tiny conv+fc network across two data-parallel replicas with the
# flight recorder attached, then:
#
#   - validates the capture with spg-trace -check (Perfetto/Chrome
#     trace-event JSON that round-trips through the reader);
#   - asserts the summarizer attributes stragglers (per-replica barrier
#     table) and goodput waste (per-layer Eq. 9 split) from the capture;
#   - runs the spg-trace golden-output test, which pins the report
#     rendering and the deterministic exporter byte-for-byte.
#
# Usage: scripts/trace_check.sh
set -eu

cd "$(dirname "$0")/.."

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT INT TERM

cat > "$tmp/net.prototxt" <<'EOF'
name: "tracecheck"
input { channels: 1 height: 28 width: 28 }
layer { name: "conv0" type: "conv" features: 4 kernel: 5 stride: 2 }
layer { name: "fc0" type: "fc" outputs: 10 }
EOF

go build -o "$tmp/spg-train" ./cmd/spg-train
go build -o "$tmp/spg-trace" ./cmd/spg-trace

out="$("$tmp/spg-train" -file "$tmp/net.prototxt" -dataset mnist -epochs 1 \
	-examples 16 -batch 8 -workers 2 -replicas 2 \
	-trace "$tmp/trace.json" -trace-mode ring)"
echo "$out" | grep -q "^trace: wrote" || {
	echo "trace_check: traced run did not report writing a capture:" >&2
	echo "$out" >&2
	exit 1
}
echo "$out" | grep -q "barrier wait" || {
	echo "trace_check: traced run did not print the per-replica step table:" >&2
	echo "$out" >&2
	exit 1
}

"$tmp/spg-trace" -check "$tmp/trace.json" | grep -q "^trace OK:" || {
	echo "trace_check: capture failed validation" >&2
	exit 1
}

report="$("$tmp/spg-trace" "$tmp/trace.json")"
for section in "top spans" "straggler attribution" "goodput-waste attribution"; do
	echo "$report" | grep -q "$section" || {
		echo "trace_check: report missing '$section' section:" >&2
		echo "$report" >&2
		exit 1
	}
done
echo "$report" | grep -q "slowest replica overall:" || {
	echo "trace_check: straggler attribution found no step groups:" >&2
	echo "$report" >&2
	exit 1
}
echo "$report" | grep -q "conv0" || {
	echo "trace_check: goodput-waste attribution missing the conv layer row:" >&2
	echo "$report" >&2
	exit 1
}

go test -run 'TestRunGolden|TestSampleTraceInSync' ./cmd/spg-trace

echo "trace_check: 2-replica capture validated; straggler and waste attribution present"
