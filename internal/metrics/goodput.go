package metrics

import "strconv"

// EpochSample is one training epoch's goodput accounting, as produced by
// the trainer: wall-clock progress (images/sec), model progress (loss,
// accuracy) and the paper's Eq. 9 split between dense convolution
// throughput and the useful subset of it.
type EpochSample struct {
	Epoch         int
	Images        int
	Seconds       float64
	ImagesPerSec  float64
	Loss          float64
	Accuracy      float64
	DenseGFlops   float64
	GoodputGFlops float64
	// MeanSparsity is the mean output-error sparsity across conv layers
	// (0 when no conv layer reported).
	MeanSparsity float64
}

// RecordEpoch publishes one epoch's goodput accounting: "current value"
// gauges for dashboards plus an epoch-labeled series of every sample, so a
// single scrape at the end of a run still recovers the whole trajectory.
func (r *Registry) RecordEpoch(s EpochSample) {
	set := func(name, help string, v float64) {
		r.Gauge(name, help).Set(v)
		r.Gauge(name+"_series", help+" (per-epoch series)",
			"epoch", strconv.Itoa(s.Epoch)).Set(v)
	}
	r.Gauge("spg_epoch", "Most recently completed training epoch.").Set(float64(s.Epoch))
	r.Counter("spg_images_total", "Training examples processed.").Add(float64(s.Images))
	r.Counter("spg_train_seconds_total", "Wall-clock seconds spent training.").Add(s.Seconds)
	set("spg_images_per_sec", "Training throughput of the last epoch.", s.ImagesPerSec)
	set("spg_loss", "Mean training loss of the last epoch.", s.Loss)
	set("spg_accuracy", "Training accuracy of the last epoch.", s.Accuracy)
	set("spg_conv_dense_gflops", "Dense convolution work rate of the last epoch.", s.DenseGFlops)
	set("spg_conv_goodput_gflops",
		"Useful convolution work rate of the last epoch (Eq. 9: BP discounted by gradient sparsity).",
		s.GoodputGFlops)
	set("spg_eo_sparsity", "Mean conv output-error gradient sparsity of the last epoch.", s.MeanSparsity)
}
