#!/bin/sh
# CI gate: formatting, vet, build, the race-instrumented short test suite,
# the bounds-check-elimination gate on the hot micro-kernel files, the
# quick-scale benchmark baseline check, the plan-cache round-trip check
# (warm starts must deploy cached strategy verdicts with zero measurement
# passes), the execution-trace capture/attribution check (2-replica
# capture must validate and attribute stragglers and waste), the
# serving check (train -> serve -> load -> validate metrics and drain),
# the design-space explorer golden check (spg-plan -explore over the
# workload zoo must match its committed report byte-for-byte), and the
# drift-observatory check (an injected synthetic slowdown must fire a
# drift event and re-tune; the control run must stay silent), and the
# data-parallel check (ring allreduce bit-identity, straggler mitigation
# engaging under an injected slow replica, scale-out baseline match).
# Run from the repository root.
set -eux

test -z "$(gofmt -l .)"
go vet ./...
go build ./...
go test -race -short ./...
scripts/bce_check.sh
scripts/bench_check.sh
scripts/plan_check.sh
scripts/trace_check.sh
scripts/serve_check.sh
scripts/explore_check.sh
scripts/drift_check.sh
scripts/dp_check.sh
