#!/bin/sh
# CI gate: formatting, vet, build, the race-instrumented short test suite,
# and the quick-scale benchmark baseline check.
# Run from the repository root.
set -eux

test -z "$(gofmt -l .)"
go vet ./...
go build ./...
go test -race -short ./...
scripts/bench_check.sh
